module skewsim

go 1.22
