// Command skewgate is a health-checked failover gateway over a set of
// skewsimd backends (one primary plus read-only followers). Clients
// talk to one stable address; the gateway routes around node death:
//
//   - Reads (POST /v1/search, POST /v1/search/batch, GET /v1/stats)
//     round-robin over every healthy backend whose replication lag is
//     within -max-lag-records; a backend that fails mid-request
//     (connection refused, 5xx) is skipped and the request retried on
//     the next candidate, so a dying primary does not surface as
//     client errors.
//   - Writes (POST /v1/insert, POST /v1/delete, POST /v1/snapshot)
//     forward to the current primary — discovered from each backend's
//     /healthz role, so an operator promoting a follower
//     (POST /v1/admin/promote on the follower) redirects writes
//     automatically. 429/503 responses are retried up to -write-retries
//     times honoring Retry-After; with no live primary the gateway
//     answers 503 with an explanatory reason.
//
// Probing: every -probe-interval each backend's /healthz is fetched
// (liveness + role) and, for followers, /metrics is scraped with the
// same strict parser `skewsim metrics` uses — a follower whose
// exposition is malformed or whose skewsim_replica_lag_records gauge
// exceeds the bound is excluded from read routing until it catches up.
//
// The gateway serves its own GET /healthz (backend table) and
// GET /metrics (skewgate_* families).
//
// Example (1 primary + 1 follower):
//
//	skewgate -addr :9090 -backends http://localhost:8080,http://localhost:8081
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"skewsim/internal/obs"
	"skewsim/internal/promscrape"
)

// lagUnknown marks a follower whose lag could not be scraped; it is
// excluded from read routing until a probe succeeds.
const lagUnknown = int64(-1)

// backend is one skewsimd the gateway routes to, with the prober's
// latest view of it.
type backend struct {
	url string

	healthy atomic.Bool
	primary atomic.Bool
	lag     atomic.Int64 // replica lag in records; 0 for a primary

	healthyGauge *obs.Gauge
	lagGauge     *obs.Gauge
}

// eligibleForReads reports whether reads may land here: alive, and
// either the primary (always current) or a follower within the lag
// bound.
func (b *backend) eligibleForReads(maxLag int64) bool {
	if !b.healthy.Load() {
		return false
	}
	if b.primary.Load() {
		return true
	}
	lag := b.lag.Load()
	return lag >= 0 && lag <= maxLag
}

type gateway struct {
	backends []*backend
	client   *http.Client // forwards: no overall timeout, bounded by the client request context
	probes   *http.Client // probes: hard per-request timeout so a wedged backend can't stall the prober
	logger   *slog.Logger
	maxLag   int64
	retries  int
	rr       atomic.Uint64 // read round-robin cursor

	reg           *obs.Registry
	readsOK       *obs.Counter
	readsFailed   *obs.Counter
	writesOK      *obs.Counter
	writesFailed  *obs.Counter
	failovers     *obs.Counter
	noPrimary     *obs.Counter
	probeFailures *obs.Counter
}

func newGateway(urls []string, client, probes *http.Client, logger *slog.Logger, maxLag int64, retries int) *gateway {
	reg := obs.NewRegistry()
	g := &gateway{
		client:  client,
		probes:  probes,
		logger:  logger,
		maxLag:  maxLag,
		retries: retries,
		reg:     reg,
		readsOK: reg.Counter("skewgate_requests_total",
			"Requests proxied, by kind and outcome.", obs.L("kind", "read"), obs.L("outcome", "ok")),
		readsFailed: reg.Counter("skewgate_requests_total",
			"Requests proxied, by kind and outcome.", obs.L("kind", "read"), obs.L("outcome", "error")),
		writesOK: reg.Counter("skewgate_requests_total",
			"Requests proxied, by kind and outcome.", obs.L("kind", "write"), obs.L("outcome", "ok")),
		writesFailed: reg.Counter("skewgate_requests_total",
			"Requests proxied, by kind and outcome.", obs.L("kind", "write"), obs.L("outcome", "error")),
		failovers: reg.Counter("skewgate_failovers_total",
			"Reads retried on another backend after a backend failed mid-request."),
		noPrimary: reg.Counter("skewgate_no_primary_total",
			"Writes refused because no healthy primary was known."),
		probeFailures: reg.Counter("skewgate_probe_failures_total",
			"Health or metrics probes that failed."),
	}
	for _, u := range urls {
		b := &backend{
			url: strings.TrimRight(u, "/"),
			healthyGauge: reg.Gauge("skewgate_backend_healthy",
				"1 while the backend's /healthz answers.", obs.L("backend", u)),
			lagGauge: reg.Gauge("skewgate_backend_lag_records",
				"Backend replication lag in records (-1 unknown, 0 primary).", obs.L("backend", u)),
		}
		b.lag.Store(lagUnknown)
		g.backends = append(g.backends, b)
	}
	return g
}

// probe refreshes one backend: /healthz for liveness and role, then —
// follower only — a strict /metrics scrape for the replication lag.
func (g *gateway) probe(b *backend) {
	var health struct {
		Status string `json:"status"`
		Role   string `json:"role"`
	}
	ok := func() bool {
		resp, err := g.probes.Get(b.url + "/healthz")
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return false
		}
		return json.NewDecoder(resp.Body).Decode(&health) == nil && health.Status == "ok"
	}()
	wasHealthy := b.healthy.Load()
	b.healthy.Store(ok)
	if !ok {
		b.healthyGauge.Set(0)
		b.lag.Store(lagUnknown)
		b.lagGauge.Set(lagUnknown)
		g.probeFailures.Inc()
		if wasHealthy {
			g.logger.Warn("backend unhealthy", "backend", b.url)
		}
		return
	}
	b.healthyGauge.Set(1)
	wasPrimary := b.primary.Load()
	b.primary.Store(health.Role == "primary")
	if health.Role == "primary" {
		b.lag.Store(0)
		b.lagGauge.Set(0)
	} else {
		lag := lagUnknown
		if fams, err := promscrape.Scrape(g.probes, b.url); err != nil {
			g.probeFailures.Inc()
		} else if v, found := promscrape.Value(fams, "skewsim_replica_lag_records", nil); found {
			lag = int64(v)
		}
		b.lag.Store(lag)
		b.lagGauge.Set(lag)
	}
	if !wasHealthy || wasPrimary != b.primary.Load() {
		g.logger.Info("backend state", "backend", b.url, "role", health.Role, "lag", b.lag.Load())
	}
}

func (g *gateway) probeLoop(interval time.Duration) {
	for _, b := range g.backends {
		g.probe(b)
	}
	tick := time.NewTicker(interval)
	for range tick.C {
		for _, b := range g.backends {
			g.probe(b)
		}
	}
}

// currentPrimary returns the first healthy backend reporting role
// primary (flag order breaks the tie if a stale primary lingers beside
// a promoted follower).
func (g *gateway) currentPrimary() *backend {
	for _, b := range g.backends {
		if b.healthy.Load() && b.primary.Load() {
			return b
		}
	}
	return nil
}

// maxRequestBytes mirrors the daemon's request-body cap; the body must
// be buffered so a failed backend can be retried with the same bytes.
const maxRequestBytes = 64 << 20

// forward replays the client request against target and, on success
// (or a client-error status worth passing through), copies the
// response back. retryable errors (transport, 5xx) return handled =
// false so the caller can try another backend.
func (g *gateway) forward(w http.ResponseWriter, r *http.Request, target string, body []byte) (handled bool, status int, err error) {
	url := target + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, bytes.NewReader(body))
	if err != nil {
		return false, 0, err
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return false, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 500 {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return false, resp.StatusCode, fmt.Errorf("backend %s: status %d", target, resp.StatusCode)
	}
	for _, h := range []string{"Content-Type", "Retry-After", "X-Request-Id"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set("X-Skewgate-Backend", target)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return true, resp.StatusCode, nil
}

// serveRead fails over across eligible backends: start at the
// round-robin cursor, skip ineligible ones, move on when a backend
// dies mid-request. The client sees an error only when every candidate
// failed.
func (g *gateway) serveRead(w http.ResponseWriter, r *http.Request, body []byte) {
	n := len(g.backends)
	start := int(g.rr.Add(1))
	tried := 0
	var lastErr error
	for i := 0; i < n; i++ {
		b := g.backends[(start+i)%n]
		if !b.eligibleForReads(g.maxLag) {
			continue
		}
		if tried > 0 {
			g.failovers.Inc()
		}
		tried++
		handled, _, err := g.forward(w, r, b.url, body)
		if handled {
			g.readsOK.Inc()
			return
		}
		lastErr = err
		// The prober will confirm shortly; stop routing reads here now.
		b.healthy.Store(false)
		b.healthyGauge.Set(0)
		g.logger.Warn("read failover", "backend", b.url, "err", err)
	}
	g.readsFailed.Inc()
	reason := fmt.Sprintf("no backend is healthy and within the staleness bound (%d records)", g.maxLag)
	if lastErr != nil {
		reason = fmt.Sprintf("every eligible backend failed (last: %v)", lastErr)
	}
	gatewayError(w, http.StatusServiceUnavailable, reason)
}

// serveWrite forwards to the current primary with bounded retries:
// transport errors re-resolve the primary (a promotion may have moved
// it), 429/503 honor Retry-After before retrying, anything else passes
// through.
func (g *gateway) serveWrite(w http.ResponseWriter, r *http.Request, body []byte) {
	var lastErr error
	for attempt := 0; attempt <= g.retries; attempt++ {
		p := g.currentPrimary()
		if p == nil {
			g.noPrimary.Inc()
			g.writesFailed.Inc()
			gatewayError(w, http.StatusServiceUnavailable,
				"no healthy primary known; promote a follower (POST /v1/admin/promote) or restart the primary")
			return
		}
		// Peek-forward: issue the request ourselves so a 429/503 can be
		// retried without involving the client.
		url := p.url + r.URL.Path
		if r.URL.RawQuery != "" {
			url += "?" + r.URL.RawQuery
		}
		req, err := http.NewRequestWithContext(r.Context(), r.Method, url, bytes.NewReader(body))
		if err != nil {
			g.writesFailed.Inc()
			gatewayError(w, http.StatusInternalServerError, err.Error())
			return
		}
		if ct := r.Header.Get("Content-Type"); ct != "" {
			req.Header.Set("Content-Type", ct)
		}
		resp, err := g.client.Do(req)
		if err != nil {
			lastErr = err
			p.healthy.Store(false)
			p.healthyGauge.Set(0)
			g.logger.Warn("write forward failed", "backend", p.url, "attempt", attempt+1, "err", err)
			continue
		}
		if (resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable) && attempt < g.retries {
			delay := retryAfter(resp, 250*time.Millisecond)
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			lastErr = fmt.Errorf("primary overloaded (status %d)", resp.StatusCode)
			select {
			case <-r.Context().Done():
				g.writesFailed.Inc()
				gatewayError(w, http.StatusGatewayTimeout, "client gave up while retrying an overloaded primary")
				return
			case <-time.After(delay):
			}
			continue
		}
		for _, h := range []string{"Content-Type", "Retry-After", "X-Request-Id"} {
			if v := resp.Header.Get(h); v != "" {
				w.Header().Set(h, v)
			}
		}
		w.Header().Set("X-Skewgate-Backend", p.url)
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
		resp.Body.Close()
		if resp.StatusCode < 500 {
			g.writesOK.Inc()
		} else {
			g.writesFailed.Inc()
		}
		return
	}
	g.writesFailed.Inc()
	gatewayError(w, http.StatusServiceUnavailable, fmt.Sprintf("write retries exhausted (last: %v)", lastErr))
}

// retryAfter parses a Retry-After seconds value, clamped to [def, 5s].
func retryAfter(resp *http.Response, def time.Duration) time.Duration {
	raw := resp.Header.Get("Retry-After")
	if raw == "" {
		return def
	}
	secs, err := strconv.Atoi(raw)
	if err != nil || secs < 0 {
		return def
	}
	d := time.Duration(secs) * time.Second
	if d < def {
		return def
	}
	if d > 5*time.Second {
		return 5 * time.Second
	}
	return d
}

func gatewayError(w http.ResponseWriter, code int, reason string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": reason})
}

func (g *gateway) handler() http.Handler {
	mux := http.NewServeMux()
	readBody := func(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBytes))
		if err != nil {
			gatewayError(w, http.StatusBadRequest, err.Error())
			return nil, false
		}
		return body, true
	}
	read := func(w http.ResponseWriter, r *http.Request) {
		body, ok := readBody(w, r)
		if !ok {
			return
		}
		g.serveRead(w, r, body)
	}
	write := func(w http.ResponseWriter, r *http.Request) {
		body, ok := readBody(w, r)
		if !ok {
			return
		}
		g.serveWrite(w, r, body)
	}
	mux.HandleFunc("POST /v1/search", read)
	mux.HandleFunc("POST /v1/search/batch", read)
	mux.HandleFunc("GET /v1/stats", read)
	mux.HandleFunc("POST /v1/insert", write)
	mux.HandleFunc("POST /v1/delete", write)
	mux.HandleFunc("POST /v1/snapshot", write)
	mux.Handle("GET /metrics", g.reg.Handler())
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		type row struct {
			URL     string `json:"url"`
			Healthy bool   `json:"healthy"`
			Role    string `json:"role"`
			Lag     int64  `json:"lag_records"`
		}
		rows := make([]row, len(g.backends))
		anyEligible := false
		for i, b := range g.backends {
			role := "follower"
			if b.primary.Load() {
				role = "primary"
			}
			rows[i] = row{URL: b.url, Healthy: b.healthy.Load(), Role: role, Lag: b.lag.Load()}
			if b.eligibleForReads(g.maxLag) {
				anyEligible = true
			}
		}
		status := "ok"
		code := http.StatusOK
		if !anyEligible {
			status, code = "degraded", http.StatusServiceUnavailable
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		_ = json.NewEncoder(w).Encode(map[string]any{"status": status, "backends": rows})
	})
	return mux
}

func main() {
	var (
		addr          = flag.String("addr", ":9090", "gateway listen address")
		backends      = flag.String("backends", "", "comma-separated skewsimd base URLs (primary + followers)")
		probeInterval = flag.Duration("probe-interval", 500*time.Millisecond, "health/lag probe period per backend")
		probeTimeout  = flag.Duration("probe-timeout", 2*time.Second, "per-probe and per-forward HTTP timeout base (forwards use the client request context)")
		maxLag        = flag.Int64("max-lag-records", 10000, "followers lagging more than this many records are excluded from read routing")
		writeRetries  = flag.Int("write-retries", 3, "retries for writes on primary overload (429/503, honoring Retry-After) or failover")
		logFormat     = flag.String("log-format", "text", "log format: text or json")
		logLevel      = flag.String("log-level", "info", "log level: debug, info, warn, or error")
	)
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skewgate: %v\n", err)
		os.Exit(2)
	}
	slog.SetDefault(logger)
	var urls []string
	for _, u := range strings.Split(*backends, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		logger.Error("no backends: pass -backends http://host:8080,http://host:8081")
		os.Exit(2)
	}

	// Forwards have no overall client timeout — they inherit the
	// downstream request's context, so long searches are not cut off by
	// the probe timeout. Probes get a hard per-request bound.
	client := &http.Client{Transport: http.DefaultTransport}
	probeClient := &http.Client{Timeout: *probeTimeout}
	g := newGateway(urls, client, probeClient, logger, *maxLag, *writeRetries)
	go g.probeLoop(*probeInterval)

	logger.Info("skewgate serving", "addr", *addr, "backends", urls,
		"probe_interval", *probeInterval, "max_lag_records", *maxLag)
	hs := &http.Server{
		Addr:              *addr,
		Handler:           g.handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("listener failed", "err", err)
		os.Exit(1)
	}
}
