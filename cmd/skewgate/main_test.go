package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeBackend simulates a skewsimd: /healthz with a mutable role,
// /metrics with a mutable replication-lag gauge, and trivial data
// endpoints that tag responses with the backend's name.
type fakeBackend struct {
	name string
	ts   *httptest.Server

	role     atomic.Value // "primary" | "follower"
	lag      atomic.Int64
	searches atomic.Int64
	inserts  atomic.Int64
	busy     atomic.Int32 // remaining 503 responses for writes
}

func newFakeBackend(t *testing.T, name, role string, lag int64) *fakeBackend {
	t.Helper()
	fb := &fakeBackend{name: name}
	fb.role.Store(role)
	fb.lag.Store(lag)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"status":"ok","role":%q}`, fb.role.Load())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "# HELP skewsim_replica_lag_records Primary WAL records not yet applied locally.\n"+
			"# TYPE skewsim_replica_lag_records gauge\n"+
			"skewsim_replica_lag_records %d\n", fb.lag.Load())
	})
	mux.HandleFunc("POST /v1/search", func(w http.ResponseWriter, r *http.Request) {
		fb.searches.Add(1)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"backend":%q}`, fb.name)
	})
	mux.HandleFunc("POST /v1/insert", func(w http.ResponseWriter, r *http.Request) {
		if fb.busy.Load() > 0 {
			fb.busy.Add(-1)
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		fb.inserts.Add(1)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"backend":%q}`, fb.name)
	})
	fb.ts = httptest.NewServer(mux)
	t.Cleanup(fb.ts.Close)
	return fb
}

// testGateway builds a gateway over the fakes and runs one probe round
// (no background prober — tests drive probes explicitly).
func testGateway(t *testing.T, maxLag int64, fakes ...*fakeBackend) (*gateway, *httptest.Server) {
	t.Helper()
	urls := make([]string, len(fakes))
	for i, fb := range fakes {
		urls[i] = fb.ts.URL
	}
	client := &http.Client{Timeout: 5 * time.Second}
	g := newGateway(urls, client, client, slog.New(slog.NewTextHandler(io.Discard, nil)), maxLag, 3)
	for _, b := range g.backends {
		g.probe(b)
	}
	ts := httptest.NewServer(g.handler())
	t.Cleanup(ts.Close)
	return g, ts
}

func doJSON(t *testing.T, method, url string) (int, map[string]any, http.Header) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(`{"vector":[1]}`))
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	var body map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&body)
	return resp.StatusCode, body, resp.Header
}

// TestGatewayReadsSpreadAndFailOver: reads round-robin over eligible
// backends, and a backend dying mid-stream is retried transparently on
// the survivor — the client never sees the failure.
func TestGatewayReadsSpreadAndFailOver(t *testing.T) {
	primary := newFakeBackend(t, "p", "primary", 0)
	follower := newFakeBackend(t, "f", "follower", 0)
	g, ts := testGateway(t, 100, primary, follower)

	for i := 0; i < 10; i++ {
		code, _, _ := doJSON(t, "POST", ts.URL+"/v1/search")
		if code != http.StatusOK {
			t.Fatalf("search %d: status %d", i, code)
		}
	}
	if primary.searches.Load() == 0 || follower.searches.Load() == 0 {
		t.Fatalf("reads not spread: primary=%d follower=%d",
			primary.searches.Load(), follower.searches.Load())
	}

	// Kill the primary without re-probing: the gateway still believes
	// it is healthy, so roughly half the reads hit the corpse — every
	// one must fail over without a client-visible error.
	primary.ts.Close()
	for i := 0; i < 10; i++ {
		code, body, _ := doJSON(t, "POST", ts.URL+"/v1/search")
		if code != http.StatusOK {
			t.Fatalf("post-kill search %d: status %d", i, code)
		}
		if body["backend"] != "f" {
			t.Fatalf("post-kill search %d answered by %v", i, body["backend"])
		}
	}
	if g.failovers.Value() == 0 {
		t.Fatal("expected at least one recorded failover")
	}
}

// TestGatewayWritesFollowPromotion: writes go only to the primary;
// with the primary dead they 503 with a reason, and resume as soon as
// a probe sees the promoted follower's new role.
func TestGatewayWritesFollowPromotion(t *testing.T) {
	primary := newFakeBackend(t, "p", "primary", 0)
	follower := newFakeBackend(t, "f", "follower", 0)
	g, ts := testGateway(t, 100, primary, follower)

	if code, body, _ := doJSON(t, "POST", ts.URL+"/v1/insert"); code != http.StatusOK || body["backend"] != "p" {
		t.Fatalf("insert: status %d backend %v", code, body["backend"])
	}

	primary.ts.Close()
	// First write: transport errors mark the primary down, and with no
	// other primary known the gateway refuses with an explanation.
	code, body, _ := doJSON(t, "POST", ts.URL+"/v1/insert")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("insert with dead primary: status %d", code)
	}
	if reason, _ := body["error"].(string); !strings.Contains(reason, "primary") {
		t.Fatalf("503 reason %q does not mention the primary", body["error"])
	}

	// Operator promotes the follower; the next probe round notices.
	follower.role.Store("primary")
	for _, b := range g.backends {
		g.probe(b)
	}
	code, body, hdr := doJSON(t, "POST", ts.URL+"/v1/insert")
	if code != http.StatusOK || body["backend"] != "f" {
		t.Fatalf("insert after promotion: status %d backend %v", code, body["backend"])
	}
	if got := hdr.Get("X-Skewgate-Backend"); got != follower.ts.URL {
		t.Fatalf("X-Skewgate-Backend = %q, want %q", got, follower.ts.URL)
	}
}

// TestGatewayWriteRetriesOverload: a primary answering 503 with
// Retry-After is retried inside the gateway; the client sees one 200.
func TestGatewayWriteRetriesOverload(t *testing.T) {
	primary := newFakeBackend(t, "p", "primary", 0)
	primary.busy.Store(2)
	_, ts := testGateway(t, 100, primary)

	code, body, _ := doJSON(t, "POST", ts.URL+"/v1/insert")
	if code != http.StatusOK || body["backend"] != "p" {
		t.Fatalf("insert through overload: status %d body %v", code, body)
	}
	if primary.inserts.Load() != 1 {
		t.Fatalf("primary applied %d inserts, want 1", primary.inserts.Load())
	}
}

// TestGatewayStaleFollowerExcluded: a follower beyond -max-lag-records
// serves no reads, and once every backend is ineligible the gateway
// answers 503 with the staleness bound in the reason.
func TestGatewayStaleFollowerExcluded(t *testing.T) {
	primary := newFakeBackend(t, "p", "primary", 0)
	follower := newFakeBackend(t, "f", "follower", 5000)
	g, ts := testGateway(t, 100, primary, follower)

	for i := 0; i < 6; i++ {
		if code, body, _ := doJSON(t, "POST", ts.URL+"/v1/search"); code != http.StatusOK || body["backend"] != "p" {
			t.Fatalf("search %d: status %d backend %v", i, code, body["backend"])
		}
	}
	if follower.searches.Load() != 0 {
		t.Fatalf("stale follower served %d reads", follower.searches.Load())
	}

	primary.ts.Close()
	for _, b := range g.backends {
		g.probe(b)
	}
	code, body, _ := doJSON(t, "POST", ts.URL+"/v1/search")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("search with only a stale follower: status %d", code)
	}
	if reason, _ := body["error"].(string); !strings.Contains(reason, "staleness") {
		t.Fatalf("503 reason %q does not mention staleness", body["error"])
	}

	// The follower catches up; the next probe readmits it.
	follower.lag.Store(0)
	for _, b := range g.backends {
		g.probe(b)
	}
	if code, body, _ := doJSON(t, "POST", ts.URL+"/v1/search"); code != http.StatusOK || body["backend"] != "f" {
		t.Fatalf("search after catch-up: status %d backend %v", code, body["backend"])
	}
}

// TestGatewayHealthz: the gateway's own health endpoint reports the
// backend table and degrades when nothing is eligible.
func TestGatewayHealthz(t *testing.T) {
	primary := newFakeBackend(t, "p", "primary", 0)
	g, ts := testGateway(t, 100, primary)

	code, body, _ := doJSON(t, "GET", ts.URL+"/healthz")
	if code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz: status %d body %v", code, body)
	}

	primary.ts.Close()
	for _, b := range g.backends {
		g.probe(b)
	}
	code, body, _ = doJSON(t, "GET", ts.URL+"/healthz")
	if code != http.StatusServiceUnavailable || body["status"] != "degraded" {
		t.Fatalf("healthz with dead primary: status %d body %v", code, body)
	}
}

func TestRetryAfterParsing(t *testing.T) {
	mk := func(v string) *http.Response {
		h := http.Header{}
		if v != "" {
			h.Set("Retry-After", v)
		}
		return &http.Response{Header: h}
	}
	def := 250 * time.Millisecond
	cases := []struct {
		raw  string
		want time.Duration
	}{
		{"", def},
		{"garbage", def},
		{"-3", def},
		{"0", def},
		{"1", time.Second},
		{"600", 5 * time.Second},
	}
	for _, tc := range cases {
		if got := retryAfter(mk(tc.raw), def); got != tc.want {
			t.Errorf("retryAfter(%q) = %v, want %v", tc.raw, got, tc.want)
		}
	}
}
