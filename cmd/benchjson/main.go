// Command benchjson converts `go test -bench` text output on stdin into a
// JSON array on stdout, one object per benchmark: name, iterations, and
// every reported metric (ns/op, B/op, allocs/op, plus any custom
// b.ReportMetric units like filters/op or recall). It exists so CI can
// emit a machine-readable perf record (BENCH_PR4.json) per run and the
// benchmark trajectory can be diffed across PRs without scraping text.
//
// Repeated lines for the same benchmark — the shape `-count=N` produces —
// are collapsed into one record carrying the minimum ns/op sample (the
// standard noise filter: the fastest run is the one least disturbed by
// the machine) with its accompanying B/op, allocs/op, and custom
// metrics, plus the sample count, so the JSON says how much evidence is
// behind each number. A single run (count 1) is recorded as such.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem -count=5 ./... | go run ./cmd/benchjson
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark measurement: the minimum-ns/op sample over
// Count runs of the same benchmark.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	Count       int                `json:"count"`
	NsPerOp     float64            `json:"ns_per_op"`
	BPerOp      *float64           `json:"b_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	var results []Result
	byName := make(map[string]int) // name -> index into results
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line) // pass the raw log through for humans
		if strings.HasPrefix(line, "pkg: ") {
			// Benchmark lines carry no package name, and `go test ./...`
			// emits each package's block contiguously under a pkg: header.
			// Scope the -count collapse to the current package so two
			// packages defining the same benchmark name can never merge
			// into one bogus min record.
			byName = make(map[string]int)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Name: fields[0], Iterations: iters, Count: 1}
		for k := 2; k+1 < len(fields); k += 2 {
			v, err := strconv.ParseFloat(fields[k], 64)
			if err != nil {
				continue
			}
			switch unit := fields[k+1]; unit {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				b := v
				r.BPerOp = &b
			case "allocs/op":
				a := v
				r.AllocsPerOp = &a
			default:
				if r.Metrics == nil {
					r.Metrics = make(map[string]float64)
				}
				r.Metrics[unit] = v
			}
		}
		if at, seen := byName[r.Name]; seen {
			// A repeat from -count=N: keep the fastest sample (with the
			// metrics measured alongside it) and bump the evidence count.
			prev := &results[at]
			r.Count = prev.Count + 1
			if r.NsPerOp >= prev.NsPerOp {
				prev.Count = r.Count
				continue
			}
			results[at] = r
			continue
		}
		byName[r.Name] = len(results)
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		// An empty record means the bench pattern matched nothing or the
		// output format changed — either way the perf trajectory would
		// silently go dark, so fail loudly instead of emitting `null`.
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines parsed from input")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
