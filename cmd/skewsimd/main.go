// Command skewsimd serves a sharded, online-mutable SkewSearch index
// over HTTP/JSON: inserts and deletes apply immediately (segmented
// memtable + frozen CSR segments per shard), queries fan out across
// shards, and the whole index can be snapshotted to a file and restored
// at startup.
//
// Endpoints (see internal/server/http.go for request/response bodies):
//
//	POST /v1/insert    add sets, returns assigned ids
//	POST /v1/delete    tombstone ids
//	POST /v1/search    best / first-above-threshold / top-k search
//	GET  /v1/stats     aggregated + per-shard sizes
//	POST /v1/snapshot  persist the index to a server-local file
//
// The engine runs the paper's adversarial scheme by default (-b1), or
// the correlated scheme with -alpha. Item probabilities come from a
// warm-start dataset (-data, the §9 estimation strategy) or from a
// synthetic Zipf profile (-dim/-pmax) when starting empty.
//
// Examples:
//
//	skewsimd -addr :8080 -data s.txt -b1 0.5
//	skewsimd -addr :8080 -dim 4096 -n 100000 -shards 8
//	skewsimd -restore index.snap -data s.txt   # params must match the writer
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"skewsim/internal/bitvec"
	"skewsim/internal/core"
	"skewsim/internal/dataio"
	"skewsim/internal/dist"
	"skewsim/internal/segment"
	"skewsim/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		shards      = flag.Int("shards", 4, "SegmentedIndex shards")
		workers     = flag.Int("workers", 0, "fan-out worker bound (0 = GOMAXPROCS, clamped to shards)")
		memtable    = flag.Int("memtable", 4096, "vectors per memtable before freezing")
		maxSegments = flag.Int("max-segments", 4, "per-shard segment count that triggers compaction")
		reps        = flag.Int("reps", 0, "filter repetitions (0 = ceil(log2 n)+1)")
		b1          = flag.Float64("b1", 0.5, "adversarial similarity threshold")
		alpha       = flag.Float64("alpha", 0, "correlated mode with this correlation (overrides -b1)")
		seed        = flag.Uint64("seed", 1, "random seed")
		n           = flag.Int("n", 1<<16, "expected steady-state dataset size (stopping rule)")
		dim         = flag.Int("dim", 1024, "universe size for the synthetic Zipf profile (no -data)")
		pmax        = flag.Float64("pmax", 0.5, "max item probability for the synthetic Zipf profile")
		dataPath    = flag.String("data", "", "warm-start dataset: estimate probabilities from it and preload it")
		restorePath = flag.String("restore", "", "restore a /v1/snapshot file at startup instead of starting empty")
		snapshotDir = flag.String("snapshot-dir", ".", "directory /v1/snapshot may write into (empty disables the endpoint)")
	)
	flag.Parse()

	var (
		d       *dist.Product
		preload []bitvec.Vector
		err     error
	)
	if *dataPath != "" {
		preload, err = dataio.ReadFile(*dataPath) // .gz dumps stream transparently
		if err != nil {
			log.Fatalf("skewsimd: %v", err)
		}
		if d, err = dist.EstimateProduct(preload, 0); err != nil {
			log.Fatalf("skewsimd: estimating probabilities: %v", err)
		}
	} else {
		if d, err = dist.NewProduct(dist.Zipf(*dim, *pmax, 1.0)); err != nil {
			log.Fatalf("skewsimd: %v", err)
		}
	}

	mode, param := core.Adversarial, *b1
	if *alpha > 0 {
		mode, param = core.Correlated, *alpha
	}
	params, err := core.EngineParams(mode, d, *n, param, core.Options{Seed: *seed, Repetitions: *reps})
	if err != nil {
		log.Fatalf("skewsimd: %v", err)
	}
	cfg := server.Config{
		Shards:  *shards,
		Workers: *workers,
		Segment: segment.Config{
			Params:       params,
			N:            *n,
			MemtableSize: *memtable,
			MaxSegments:  *maxSegments,
		},
	}

	var srv *server.Server
	if *restorePath != "" {
		f, err := os.Open(*restorePath)
		if err != nil {
			log.Fatalf("skewsimd: %v", err)
		}
		srv, err = server.ReadSnapshot(f, cfg)
		f.Close()
		if err != nil {
			log.Fatalf("skewsimd: restoring %s: %v", *restorePath, err)
		}
		log.Printf("restored %d live vectors from %s", srv.Stats().Live, *restorePath)
	} else {
		if srv, err = server.New(cfg); err != nil {
			log.Fatalf("skewsimd: %v", err)
		}
		if len(preload) > 0 {
			if _, err := srv.InsertBatch(preload); err != nil {
				log.Fatalf("skewsimd: preloading: %v", err)
			}
			log.Printf("preloaded %d vectors from %s", len(preload), *dataPath)
		}
	}
	defer srv.Close()

	// Threshold-mode searches that omit a threshold fall back to the
	// mode's verification threshold (b1, or α/1.3 in correlated mode).
	verify, err := core.VerificationThreshold(mode, param)
	if err != nil {
		log.Fatalf("skewsimd: %v", err)
	}
	handler := server.NewHandler(srv, server.HandlerConfig{
		SnapshotDir:      *snapshotDir,
		DefaultThreshold: verify,
	})
	hs := &http.Server{
		Addr:    *addr,
		Handler: handler,
		// Bounded timeouts so a stalled client cannot wedge a serving
		// goroutine indefinitely; body size is capped in the handler.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	log.Printf("skewsimd: %s mode, %d shards, serving on %s", mode, srv.Shards(), *addr)
	if err := hs.ListenAndServe(); err != nil {
		log.Fatal(fmt.Errorf("skewsimd: %w", err))
	}
}
