// Command skewsimd serves a sharded, online-mutable SkewSearch index
// over HTTP/JSON: inserts and deletes apply immediately (segmented
// memtable + frozen CSR segments per shard), queries fan out across
// shards, and the index survives crashes through per-shard write-ahead
// logs (-wal-dir) and/or explicit snapshots (/v1/snapshot + -restore).
//
// Endpoints (see API.md at the repository root for full request and
// response schemas):
//
//	POST /v1/insert    add sets, returns assigned ids
//	POST /v1/delete    tombstone ids
//	POST /v1/search    best / first-above-threshold / top-k search
//	GET  /v1/stats     aggregated + per-shard sizes, incl. WAL sizes
//	POST /v1/snapshot  persist the index to a server-local file
//
// Durability: with -wal-dir every accepted insert/delete is journaled
// before it is applied, completed background freezes checkpoint the log,
// and startup recovers whatever the directory holds — no explicit
// restore step needed after a crash or kill. -fsync picks the policy:
// "always" group-commits an fsync per request batch (survives power
// loss), "never" leaves flushing to the OS (survives process crashes).
// -restore composes with -wal-dir: the snapshot loads first and the log
// tail reconciles on top.
//
// The engine runs the paper's adversarial scheme by default (-b1), or
// the correlated scheme with -alpha. Item probabilities come from a
// warm-start dataset (-data, the §9 estimation strategy) or from a
// synthetic Zipf profile (-dim/-pmax) when starting empty.
//
// Examples:
//
//	skewsimd -addr :8080 -data s.txt -b1 0.5
//	skewsimd -addr :8080 -dim 4096 -n 100000 -shards 8
//	skewsimd -wal-dir ./wal -fsync always -data s.txt    # durable serving
//	skewsimd -restore index.snap -wal-dir ./wal          # snapshot + log tail
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"skewsim/internal/bitvec"
	"skewsim/internal/core"
	"skewsim/internal/dataio"
	"skewsim/internal/dist"
	"skewsim/internal/segment"
	"skewsim/internal/server"
	"skewsim/internal/wal"
)

// byteCount renders a byte total for startup logs.
func byteCount(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		shards      = flag.Int("shards", 4, "SegmentedIndex shards")
		workers     = flag.Int("workers", 0, "fan-out worker bound (0 = GOMAXPROCS, clamped to shards)")
		memtable    = flag.Int("memtable", 4096, "vectors per memtable before freezing")
		maxSegments = flag.Int("max-segments", 4, "per-shard segment count that triggers compaction")
		reps        = flag.Int("reps", 0, "filter repetitions (0 = ceil(log2 n)+1)")
		b1          = flag.Float64("b1", 0.5, "adversarial similarity threshold")
		alpha       = flag.Float64("alpha", 0, "correlated mode with this correlation (overrides -b1)")
		seed        = flag.Uint64("seed", 1, "random seed")
		n           = flag.Int("n", 1<<16, "expected steady-state dataset size (stopping rule)")
		dim         = flag.Int("dim", 1024, "universe size for the synthetic Zipf profile (no -data)")
		pmax        = flag.Float64("pmax", 0.5, "max item probability for the synthetic Zipf profile")
		dataPath    = flag.String("data", "", "warm-start dataset: estimate probabilities from it and preload it")
		restorePath = flag.String("restore", "", "restore a /v1/snapshot file at startup instead of starting empty")
		snapshotDir = flag.String("snapshot-dir", ".", "directory /v1/snapshot may write into (empty disables the endpoint)")
		walDir      = flag.String("wal-dir", "", "write-ahead log root (per-shard logs under it); enables crash recovery at startup")
		fsyncMode   = flag.String("fsync", "always", "WAL fsync policy: always (group commit per batch) or never (OS writeback)")
		walSegBytes = flag.Int64("wal-segment-bytes", 0, "WAL file rotation size (0 = 4 MiB default)")
		drain       = flag.Duration("drain", 15*time.Second, "graceful-shutdown drain window for in-flight requests on SIGINT/SIGTERM")
		maxInflight = flag.Int("max-inflight", 0, "admission bound on concurrent query fan-outs (0 = 4x GOMAXPROCS, negative disables)")
		maxQueue    = flag.Int("max-queue", -1, "admission wait-queue depth past max-inflight; beyond it requests get 429 (0 rejects immediately, negative = 4x max-inflight)")
		defTimeout  = flag.Duration("default-timeout", 0, "deadline for search requests without ?timeout_ms= (0 = none beyond -max-timeout)")
		maxTimeout  = flag.Duration("max-timeout", 30*time.Second, "cap on every search deadline, incl. explicit ?timeout_ms= (0 = uncapped)")
	)
	flag.Parse()

	var (
		d       *dist.Product
		preload []bitvec.Vector
		err     error
	)
	if *dataPath != "" {
		preload, err = dataio.ReadFile(*dataPath) // .gz dumps stream transparently
		if err != nil {
			log.Fatalf("skewsimd: %v", err)
		}
		if d, err = dist.EstimateProduct(preload, 0); err != nil {
			log.Fatalf("skewsimd: estimating probabilities: %v", err)
		}
	} else {
		if d, err = dist.NewProduct(dist.Zipf(*dim, *pmax, 1.0)); err != nil {
			log.Fatalf("skewsimd: %v", err)
		}
	}

	mode, param := core.Adversarial, *b1
	if *alpha > 0 {
		mode, param = core.Correlated, *alpha
	}
	params, err := core.EngineParams(mode, d, *n, param, core.Options{Seed: *seed, Repetitions: *reps})
	if err != nil {
		log.Fatalf("skewsimd: %v", err)
	}
	cfg := server.Config{
		Shards:      *shards,
		Workers:     *workers,
		MaxInFlight: *maxInflight,
		MaxQueue:    *maxQueue,
		Segment: segment.Config{
			Params:       params,
			N:            *n,
			MemtableSize: *memtable,
			MaxSegments:  *maxSegments,
		},
		WALDir: *walDir,
	}
	if *walDir != "" {
		policy, err := wal.ParseSyncPolicy(*fsyncMode)
		if err != nil {
			log.Fatalf("skewsimd: %v", err)
		}
		cfg.WAL = wal.Options{Sync: policy, SegmentBytes: *walSegBytes}
	}

	var srv *server.Server
	if *restorePath != "" {
		f, err := os.Open(*restorePath)
		if err != nil {
			log.Fatalf("skewsimd: %v", err)
		}
		// With -wal-dir this also replays each shard's log tail on top of
		// the snapshot, so a snapshot older than the log loses nothing.
		srv, err = server.ReadSnapshot(f, cfg)
		f.Close()
		if err != nil {
			log.Fatalf("skewsimd: restoring %s: %v", *restorePath, err)
		}
		log.Printf("restored %d live vectors from %s", srv.Stats().Live, *restorePath)
	} else {
		// server.New recovers whatever durable state -wal-dir holds; a
		// fresh directory starts empty.
		if srv, err = server.New(cfg); err != nil {
			log.Fatalf("skewsimd: %v", err)
		}
		// Preload only a server with no durable history: "recovered but
		// everything was deleted" (live 0, log non-empty) must not
		// resurrect the warm-start dataset.
		st := srv.Stats()
		recovered := false
		for _, ps := range st.PerShard {
			if ps.WAL != nil && ps.WAL.LastLSN > 0 {
				recovered = true
				break
			}
		}
		if recovered {
			log.Printf("recovered %d live vectors (%d WAL records, %s) from %s",
				st.Live, st.WALRecords, byteCount(st.WALBytes), *walDir)
		} else if len(preload) > 0 {
			if _, err := srv.InsertBatch(preload); err != nil {
				if !server.NotDurableOnly(err) {
					log.Fatalf("skewsimd: preloading: %v", err)
				}
				// Applied and journaled; only the fsync is unconfirmed —
				// the next start would recover the same state anyway.
				log.Printf("skewsimd: preload applied but not yet durable: %v", err)
			}
			log.Printf("preloaded %d vectors from %s", len(preload), *dataPath)
		}
	}
	// No deferred Close: both exit paths below close srv explicitly,
	// and log.Fatal would skip a defer anyway.

	// Threshold-mode searches that omit a threshold fall back to the
	// mode's verification threshold (b1, or α/1.3 in correlated mode).
	verify, err := core.VerificationThreshold(mode, param)
	if err != nil {
		log.Fatalf("skewsimd: %v", err)
	}
	handler := server.NewHandler(srv, server.HandlerConfig{
		SnapshotDir:      *snapshotDir,
		DefaultThreshold: verify,
		DefaultTimeout:   *defTimeout,
		MaxTimeout:       *maxTimeout,
	})
	hs := &http.Server{
		Addr:    *addr,
		Handler: handler,
		// Bounded timeouts so a stalled client cannot wedge a serving
		// goroutine indefinitely; body size is capped in the handler.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	log.Printf("skewsimd: %s mode, %d shards, serving on %s", mode, srv.Shards(), *addr)

	// Graceful shutdown: SIGINT/SIGTERM stops the listener, drains
	// in-flight requests for up to -drain, then stops the background
	// workers and (srv.Close → shard Close → wal Close) fsyncs and
	// closes each shard's log, so a routine restart loses nothing and
	// recovers instantly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.ListenAndServe() }()
	select {
	case err := <-serveErr:
		srv.Close()
		log.Fatal(fmt.Errorf("skewsimd: %w", err))
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of re-draining
	log.Printf("skewsimd: shutdown signal received, draining for up to %v", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		log.Printf("skewsimd: drain incomplete: %v", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("skewsimd: listener: %v", err)
	}
	srv.Close() // stops shard workers, final WAL sync + close
	log.Printf("skewsimd: shutdown complete (WAL synced and closed)")
}
