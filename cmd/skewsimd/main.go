// Command skewsimd serves a sharded, online-mutable SkewSearch index
// over HTTP/JSON: inserts and deletes apply immediately (segmented
// memtable + frozen CSR segments per shard), queries fan out across
// shards, and the index survives crashes through per-shard write-ahead
// logs (-wal-dir) and/or explicit snapshots (/v1/snapshot + -restore).
//
// Endpoints (see API.md at the repository root for full request and
// response schemas):
//
//	POST /v1/insert    add sets, returns assigned ids
//	POST /v1/delete    tombstone ids
//	POST /v1/search    best / first-above-threshold / top-k search
//	GET  /v1/stats     aggregated + per-shard sizes, incl. WAL sizes
//	GET  /metrics      Prometheus text exposition (see API.md "Metrics")
//	POST /v1/snapshot  persist the index to a server-local file
//
// Durability: with -wal-dir every accepted insert/delete is journaled
// before it is applied, completed background freezes checkpoint the log,
// and startup recovers whatever the directory holds — no explicit
// restore step needed after a crash or kill. -fsync picks the policy:
// "always" group-commits an fsync per request batch (survives power
// loss), "never" leaves flushing to the OS (survives process crashes).
// -restore composes with -wal-dir: the snapshot loads first and the log
// tail reconciles on top.
//
// Observability: logs are structured (log/slog; -log-format text|json,
// -log-level debug|info|warn|error), every request carries an
// X-Request-Id, requests slower than -slow-query-ms are logged with
// their query shape and shard fan-out, and -pprof-addr serves
// net/http/pprof on a separate listener (keep it off public interfaces;
// profiles expose internals).
//
// Replication: -replica-of <primary-url> starts the daemon as a
// read-only follower. It bootstraps from the primary's streamed
// snapshot (or resumes from its persisted cursors), then continuously
// pulls per-shard WAL frames from GET /v1/replica/wal and applies
// them; /healthz reports role "follower" and writes get 403 until
// POST /v1/admin/promote flips it to a primary. The follower's engine
// flags (-shards, -seed, -reps, -b1/-alpha, -n, and -data/-dim/-pmax)
// must match the primary's — shard placement and filter mappings are
// derived from them. cmd/skewgate routes clients across a primary and
// its followers with automatic failover.
//
// The engine runs the paper's adversarial scheme by default (-b1), or
// the correlated scheme with -alpha. Item probabilities come from a
// warm-start dataset (-data, the §9 estimation strategy) or from a
// synthetic Zipf profile (-dim/-pmax) when starting empty.
//
// Examples:
//
//	skewsimd -addr :8080 -data s.txt -b1 0.5
//	skewsimd -addr :8080 -dim 4096 -n 100000 -shards 8
//	skewsimd -wal-dir ./wal -fsync always -data s.txt    # durable serving
//	skewsimd -restore index.snap -wal-dir ./wal          # snapshot + log tail
//	skewsimd -addr :8081 -wal-dir ./wal2 -replica-of http://localhost:8080
//	skewsimd -log-format json -slow-query-ms 250 -pprof-addr 127.0.0.1:6060
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"skewsim/internal/bitvec"
	"skewsim/internal/core"
	"skewsim/internal/dataio"
	"skewsim/internal/dist"
	"skewsim/internal/obs"
	"skewsim/internal/replica"
	"skewsim/internal/segment"
	"skewsim/internal/server"
	"skewsim/internal/wal"
)

// byteCount renders a byte total for startup logs.
func byteCount(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		shards      = flag.Int("shards", 4, "SegmentedIndex shards")
		workers     = flag.Int("workers", 0, "fan-out worker bound (0 = GOMAXPROCS, clamped to shards)")
		memtable    = flag.Int("memtable", 4096, "vectors per memtable before freezing")
		maxSegments = flag.Int("max-segments", 4, "per-shard segment count that triggers compaction")
		reps        = flag.Int("reps", 0, "filter repetitions (0 = ceil(log2 n)+1)")
		b1          = flag.Float64("b1", 0.5, "adversarial similarity threshold")
		alpha       = flag.Float64("alpha", 0, "correlated mode with this correlation (overrides -b1)")
		seed        = flag.Uint64("seed", 1, "random seed")
		n           = flag.Int("n", 1<<16, "expected steady-state dataset size (stopping rule)")
		dim         = flag.Int("dim", 1024, "universe size for the synthetic Zipf profile (no -data)")
		pmax        = flag.Float64("pmax", 0.5, "max item probability for the synthetic Zipf profile")
		dataPath    = flag.String("data", "", "warm-start dataset: estimate probabilities from it and preload it")
		restorePath = flag.String("restore", "", "restore a /v1/snapshot file at startup instead of starting empty")
		snapshotDir = flag.String("snapshot-dir", ".", "directory /v1/snapshot may write into (empty disables the endpoint)")
		walDir      = flag.String("wal-dir", "", "write-ahead log root (per-shard logs under it); enables crash recovery at startup")
		storageDir  = flag.String("storage-dir", "", "segment-file root (per-shard SKSEG1 files under it); persists frozen segments and enables beyond-RAM cold serving")
		residentMB  = flag.Int64("resident-budget-mb", 0, "heap budget in MiB for frozen-segment arenas across all shards; segments past it serve mmap-backed cold (0 = unlimited; requires -storage-dir or -wal-dir)")
		compressSeg = flag.Bool("compress-postings", false, "write segment files with delta+varint compressed posting arenas")
		fsyncMode   = flag.String("fsync", "always", "WAL fsync policy: always (group commit per batch) or never (OS writeback)")
		walSegBytes = flag.Int64("wal-segment-bytes", 0, "WAL file rotation size (0 = 4 MiB default)")
		drain       = flag.Duration("drain", 15*time.Second, "graceful-shutdown drain window for in-flight requests on SIGINT/SIGTERM")
		maxInflight = flag.Int("max-inflight", 0, "admission bound on concurrent query fan-outs (0 = 4x GOMAXPROCS, negative disables)")
		maxQueue    = flag.Int("max-queue", -1, "admission wait-queue depth past max-inflight; beyond it requests get 429 (0 rejects immediately, negative = 4x max-inflight)")
		defTimeout  = flag.Duration("default-timeout", 0, "deadline for search requests without ?timeout_ms= (0 = none beyond -max-timeout)")
		maxTimeout  = flag.Duration("max-timeout", 30*time.Second, "cap on every search deadline, incl. explicit ?timeout_ms= (0 = uncapped)")
		logFormat   = flag.String("log-format", "text", "log format: text (logfmt-style) or json")
		logLevel    = flag.String("log-level", "info", "log level: debug, info, warn, or error")
		slowQueryMS = flag.Int64("slow-query-ms", 0, "log requests slower than this many milliseconds, with query shape and fan-out detail (0 disables)")
		pprofAddr   = flag.String("pprof-addr", "", "serve net/http/pprof on this separate address (empty disables; bind to localhost)")
		replicaOf   = flag.String("replica-of", "", "follow this primary base URL as a read-only replica (requires -wal-dir; engine flags must match the primary's)")
	)
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skewsimd: %v\n", err)
		os.Exit(2)
	}
	slog.SetDefault(logger)
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	var (
		d       *dist.Product
		preload []bitvec.Vector
	)
	if *dataPath != "" {
		preload, err = dataio.ReadFile(*dataPath) // .gz dumps stream transparently
		if err != nil {
			fatal("reading warm-start dataset", "err", err)
		}
		if d, err = dist.EstimateProduct(preload, 0); err != nil {
			fatal("estimating probabilities", "err", err)
		}
	} else {
		if d, err = dist.NewProduct(dist.Zipf(*dim, *pmax, 1.0)); err != nil {
			fatal("building synthetic profile", "err", err)
		}
	}

	mode, param := core.Adversarial, *b1
	if *alpha > 0 {
		mode, param = core.Correlated, *alpha
	}
	params, err := core.EngineParams(mode, d, *n, param, core.Options{Seed: *seed, Repetitions: *reps})
	if err != nil {
		fatal("deriving engine parameters", "err", err)
	}
	metrics := server.NewMetrics(obs.NewRegistry())
	cfg := server.Config{
		Shards:      *shards,
		Workers:     *workers,
		MaxInFlight: *maxInflight,
		MaxQueue:    *maxQueue,
		Metrics:     metrics,
		Segment: segment.Config{
			Params:       params,
			N:            *n,
			MemtableSize: *memtable,
			MaxSegments:  *maxSegments,
		},
		WALDir:           *walDir,
		StorageDir:       *storageDir,
		ResidentBytes:    *residentMB << 20,
		CompressPostings: *compressSeg,
	}
	if *residentMB > 0 && *storageDir == "" && *walDir == "" {
		fatal("-resident-budget-mb requires -storage-dir or -wal-dir (cold segments serve from their files)")
	}
	if *walDir != "" {
		policy, err := wal.ParseSyncPolicy(*fsyncMode)
		if err != nil {
			fatal("parsing -fsync", "err", err)
		}
		cfg.WAL = wal.Options{Sync: policy, SegmentBytes: *walSegBytes}
	}

	var (
		srv *server.Server
		rep *replica.Replicator
	)
	if *replicaOf != "" {
		if *walDir == "" {
			fatal("-replica-of requires -wal-dir (the follower journals its applies and persists its cursors there)")
		}
		if *restorePath != "" {
			fatal("-restore and -replica-of are mutually exclusive (the follower bootstraps from the primary)")
		}
		srv, rep, err = replica.Open(replica.Config{
			Primary: strings.TrimRight(*replicaOf, "/"),
			Server:  cfg,
			Logger:  logger,
			Metrics: replica.NewMetrics(metrics.Registry()),
			OnFatal: func(err error) {
				// The primary truncated past our cursor (or the configs
				// disagree): nothing this process can do. Exit so the
				// supervisor restarts us into a clean bootstrap.
				logger.Error("replication cannot continue; exiting", "err", err)
				os.Exit(1)
			},
		})
		if err != nil {
			fatal("opening follower", "primary", *replicaOf, "err", err)
		}
		rep.Start()
		logger.Info("following primary", "primary", *replicaOf, "live", srv.Stats().Live)
	} else if *restorePath != "" {
		f, err := os.Open(*restorePath)
		if err != nil {
			fatal("opening snapshot", "err", err)
		}
		// With -wal-dir this also replays each shard's log tail on top of
		// the snapshot, so a snapshot older than the log loses nothing.
		srv, err = server.ReadSnapshot(f, cfg)
		f.Close()
		if err != nil {
			fatal("restoring snapshot", "path", *restorePath, "err", err)
		}
		logger.Info("restored snapshot", "path", *restorePath, "live", srv.Stats().Live)
	} else {
		// server.New recovers whatever durable state -wal-dir holds; a
		// fresh directory starts empty.
		if srv, err = server.New(cfg); err != nil {
			fatal("building server", "err", err)
		}
		// Preload only a server with no durable history: "recovered but
		// everything was deleted" (live 0, log non-empty) must not
		// resurrect the warm-start dataset.
		st := srv.Stats()
		recovered := false
		for _, ps := range st.PerShard {
			if ps.WAL != nil && ps.WAL.LastLSN > 0 {
				recovered = true
				break
			}
		}
		if recovered {
			logger.Info("recovered from write-ahead log", "wal_dir", *walDir,
				"live", st.Live, "wal_records", st.WALRecords, "wal_bytes", byteCount(st.WALBytes))
		} else if len(preload) > 0 {
			if _, err := srv.InsertBatch(preload); err != nil {
				if !server.NotDurableOnly(err) {
					fatal("preloading", "err", err)
				}
				// Applied and journaled; only the fsync is unconfirmed —
				// the next start would recover the same state anyway.
				logger.Warn("preload applied but not yet durable", "err", err)
			}
			logger.Info("preloaded warm-start dataset", "path", *dataPath, "vectors", len(preload))
		}
	}
	// No deferred Close: both exit paths below close srv explicitly,
	// and fatal (os.Exit) would skip a defer anyway.

	// Threshold-mode searches that omit a threshold fall back to the
	// mode's verification threshold (b1, or α/1.3 in correlated mode).
	verify, err := core.VerificationThreshold(mode, param)
	if err != nil {
		fatal("deriving verification threshold", "err", err)
	}
	hcfg := server.HandlerConfig{
		SnapshotDir:      *snapshotDir,
		DefaultThreshold: verify,
		DefaultTimeout:   *defTimeout,
		MaxTimeout:       *maxTimeout,
		Metrics:          metrics,
		Logger:           logger,
		SlowQuery:        time.Duration(*slowQueryMS) * time.Millisecond,
	}
	if rep != nil {
		hcfg.Promote = rep.Promote
	}
	handler := server.NewHandler(srv, hcfg)
	hs := &http.Server{
		Addr:    *addr,
		Handler: handler,
		// Bounded timeouts so a stalled client cannot wedge a serving
		// goroutine indefinitely; body size is capped in the handler.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	// pprof on its own listener with an explicit mux: the profiling
	// surface never rides the API address, and importing net/http/pprof
	// does not silently instrument http.DefaultServeMux for the API.
	if *pprofAddr != "" {
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			logger.Info("pprof listening", "addr", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, pmux); err != nil {
				logger.Error("pprof listener failed", "err", err)
			}
		}()
	}

	logger.Info("serving", "mode", mode.String(), "shards", srv.Shards(), "addr", *addr)

	// Graceful shutdown: SIGINT/SIGTERM stops the listener, drains
	// in-flight requests for up to -drain, then stops the background
	// workers and (srv.Close → shard Close → wal Close) fsyncs and
	// closes each shard's log, so a routine restart loses nothing and
	// recovers instantly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.ListenAndServe() }()
	select {
	case err := <-serveErr:
		if rep != nil {
			rep.Stop()
		}
		srv.Close()
		fatal("listener failed", "err", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of re-draining
	logger.Info("shutdown signal received, draining", "window", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		logger.Warn("drain incomplete", "err", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Warn("listener", "err", err)
	}
	if rep != nil {
		rep.Stop() // no new applies once the pullers are down
	}
	srv.Close() // stops shard workers, final WAL sync + close
	logger.Info("shutdown complete (WAL synced and closed)")
}
