// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-csv] [-list] [experiment ids...]
//
// With no ids, every registered experiment runs in order. Ids are the
// paper artifact names used in DESIGN.md: fig1, fig2, table1, sec7adv,
// sec7corr, motivating, scaling, recall.
package main

import (
	"flag"
	"fmt"
	"os"

	"skewsim/internal/experiments"
)

func main() {
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text tables")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	ids := flag.Args()
	if len(ids) == 0 {
		if err := experiments.RunAll(os.Stdout, *csv); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	for _, id := range ids {
		if err := experiments.Run(id, os.Stdout, *csv); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
}
