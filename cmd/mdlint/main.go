// Command mdlint is the documentation link checker the CI docs job
// runs: it validates every inline markdown link in the given files so
// README/API/DESIGN/EXPERIMENTS references cannot rot silently.
//
//	go run ./cmd/mdlint README.md API.md DESIGN.md
//
// Checked:
//   - relative links resolve to an existing file or directory
//     (relative to the markdown file containing them);
//   - intra-file anchors (#section) and anchors on relative links
//     resolve to a heading in the target file, using GitHub's slug
//     rules (lowercase, spaces to dashes, punctuation dropped);
//   - absolute paths are rejected (they cannot work on a clone).
//
// External links (http/https/mailto) are listed with -external but not
// fetched: CI must stay hermetic, and a network flake must not fail the
// build.
//
// Exit status 1 if any link is broken, with one line per finding.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline links [text](target). Images ![alt](target)
// match too via the optional bang. Nested brackets and code spans are
// beyond this checker's ambitions; the repo's docs do not use them in
// links.
var linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// headingRe matches ATX headings; setext headings are not used in this
// repo's docs.
var headingRe = regexp.MustCompile(`(?m)^#{1,6}\s+(.+?)\s*#*\s*$`)

// codeFenceRe strips fenced code blocks so example links inside them
// are not checked.
var codeFenceRe = regexp.MustCompile("(?s)```.*?```")

func main() {
	external := flag.Bool("external", false, "list external links (not fetched)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: mdlint <file.md> [file.md ...]")
		os.Exit(2)
	}
	broken := 0
	for _, path := range flag.Args() {
		broken += checkFile(path, *external)
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "mdlint: %d broken link(s)\n", broken)
		os.Exit(1)
	}
}

func checkFile(path string, listExternal bool) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
		return 1
	}
	text := codeFenceRe.ReplaceAllString(string(data), "")
	broken := 0
	for _, m := range linkRe.FindAllStringSubmatch(text, -1) {
		target := m[1]
		switch {
		case strings.HasPrefix(target, "http://"), strings.HasPrefix(target, "https://"), strings.HasPrefix(target, "mailto:"):
			if listExternal {
				fmt.Printf("%s: external %s\n", path, target)
			}
		case strings.HasPrefix(target, "#"):
			if !anchorExists(text, target[1:]) {
				fmt.Fprintf(os.Stderr, "%s: broken anchor %s\n", path, target)
				broken++
			}
		case filepath.IsAbs(target):
			fmt.Fprintf(os.Stderr, "%s: absolute link %s (must be relative)\n", path, target)
			broken++
		default:
			broken += checkRelative(path, target)
		}
	}
	return broken
}

func checkRelative(from, target string) int {
	file, anchor, hasAnchor := strings.Cut(target, "#")
	full := filepath.Join(filepath.Dir(from), file)
	st, err := os.Stat(full)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: broken link %s (%s does not exist)\n", from, target, full)
		return 1
	}
	if hasAnchor {
		if st.IsDir() {
			fmt.Fprintf(os.Stderr, "%s: anchor on directory link %s\n", from, target)
			return 1
		}
		data, err := os.ReadFile(full)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %s: %v\n", from, target, err)
			return 1
		}
		if !anchorExists(string(data), anchor) {
			fmt.Fprintf(os.Stderr, "%s: broken anchor %s (no such heading in %s)\n", from, target, file)
			return 1
		}
	}
	return 0
}

// anchorExists reports whether any heading in text slugs to anchor.
func anchorExists(text, anchor string) bool {
	for _, h := range headingRe.FindAllStringSubmatch(text, -1) {
		if slugify(h[1]) == strings.ToLower(anchor) {
			return true
		}
	}
	return false
}

// slugify approximates GitHub's heading-to-anchor rule: lowercase,
// strip everything but letters, digits, spaces, and dashes (markdown
// emphasis and backticks included), then spaces to dashes.
func slugify(heading string) string {
	heading = strings.ToLower(heading)
	var b strings.Builder
	for _, r := range heading {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		case r > 127:
			b.WriteRune(r) // GitHub keeps non-ASCII letters
		}
	}
	return b.String()
}
