package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"slices"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// runLoad is the throughput driver for a running skewsimd: it streams
// the -data sets through /v1/insert (in batches) and then fires the
// -queries sets at /v1/search from -concurrency goroutines — or, with
// -search-batch N, at /v1/search/batch with N queries per request,
// driving the daemon's amortizing batch executor — reporting
// requests/s and latency quantiles (mean/p50/p95/p99) for both phases.
// It measures the daemon end to end — JSON decode, shard fan-out,
// segment merge — which is the number the serving-throughput section
// of EXPERIMENTS.md records.
//
// -addr may be repeated (or comma-separated) to spread requests
// round-robin over several targets — a replicated deployment's
// gateway plus direct backends, or a static multi-node setup. Errors
// are counted per target so a sick node stands out in the report.
func runLoad(args []string) {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	var addrs []string
	fs.Func("addr", "skewsimd base URL; repeat or comma-separate for several targets (default http://localhost:8080)", func(v string) error {
		for _, a := range strings.Split(v, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, strings.TrimRight(a, "/"))
			}
		}
		return nil
	})
	dataPath := fs.String("data", "", "sets to insert (optional)")
	queryPath := fs.String("queries", "", "sets to search (optional)")
	concurrency := fs.Int("concurrency", 8, "concurrent client connections")
	batch := fs.Int("batch", 64, "sets per insert request")
	mode := fs.String("mode", "best", "search mode: best | first | topk")
	k := fs.Int("k", 10, "k for topk searches")
	threshold := fs.Float64("threshold", 0.5, "threshold for first searches")
	repeat := fs.Int("repeat", 1, "passes over the query file")
	searchBatch := fs.Int("search-batch", 0, "queries per /v1/search/batch request (0 = single-query /v1/search; modes best and first only)")
	scrape := fs.Bool("scrape-metrics", false, "scrape the daemon's /metrics after the run and print its server-side overload counters")
	_ = fs.Parse(args)
	if *searchBatch < 0 {
		fatal(fmt.Errorf("-search-batch must be >= 0"))
	}
	if *searchBatch > 0 && *mode != "best" && *mode != "first" {
		fatal(fmt.Errorf("-search-batch supports modes best and first, not %q", *mode))
	}
	if *dataPath == "" && *queryPath == "" {
		fatal(fmt.Errorf("load needs -data and/or -queries"))
	}
	if len(addrs) == 0 {
		addrs = []string{"http://localhost:8080"}
	}
	client := &http.Client{Timeout: 30 * time.Second}
	if *scrape {
		// After both phases: put each daemon's own overload accounting
		// next to the client-observed numbers reported above. (fatal
		// exits skip this — a failed run has no meaningful scrape.)
		defer func() {
			for _, a := range addrs {
				scrapeReport(client, a)
			}
		}()
	}
	target := func(i int) string { return addrs[i%len(addrs)] }

	if *dataPath != "" {
		vecs := loadVectors(*dataPath)
		var reqs [][][]uint32
		for start := 0; start < len(vecs); start += *batch {
			end := min(start+*batch, len(vecs))
			sets := make([][]uint32, 0, end-start)
			for _, v := range vecs[start:end] {
				sets = append(sets, v.Bits())
			}
			reqs = append(reqs, sets)
		}
		st := newLoadStats(addrs)
		lat, elapsed := fire(client, *concurrency, len(reqs), func(i int) error {
			return postRetry(client, target(i), "/v1/insert", map[string]interface{}{"sets": reqs[i]}, st)
		})
		report("insert", lat, elapsed, len(vecs), st)
	}
	if *queryPath != "" {
		qs := loadVectors(*queryPath)
		total := len(qs) * *repeat
		if *searchBatch > 0 {
			// Batched search: the query stream is cut into -search-batch
			// slices, each one /v1/search/batch request driving the
			// daemon's amortizing batch executor. Latency quantiles are
			// per request (one batch), items/s counts queries.
			var reqs [][][]uint32
			for start := 0; start < total; start += *searchBatch {
				end := min(start+*searchBatch, total)
				sets := make([][]uint32, 0, end-start)
				for i := start; i < end; i++ {
					sets = append(sets, qs[i%len(qs)].Bits())
				}
				reqs = append(reqs, sets)
			}
			st := newLoadStats(addrs)
			lat, elapsed := fire(client, *concurrency, len(reqs), func(i int) error {
				body := map[string]interface{}{"sets": reqs[i], "mode": *mode}
				if *mode == "first" {
					body["threshold"] = *threshold
				}
				return postRetry(client, target(i), "/v1/search/batch", body, st)
			})
			report("search-batch", lat, elapsed, total, st)
			return
		}
		st := newLoadStats(addrs)
		lat, elapsed := fire(client, *concurrency, total, func(i int) error {
			body := map[string]interface{}{"set": qs[i%len(qs)].Bits(), "mode": *mode}
			switch *mode {
			case "topk":
				body["k"] = *k
			case "first":
				body["threshold"] = *threshold
			}
			return postRetry(client, target(i), "/v1/search", body, st)
		})
		report("search", lat, elapsed, total, st)
	}
}

// loadStats counts the driver's interactions with an overloaded or
// degraded daemon across one phase.
type loadStats struct {
	shed    atomic.Int64 // 429/503 rejections observed (before retries succeeded)
	retried atomic.Int64 // requests that needed at least one retry
	partial atomic.Int64 // 200 responses flagged "partial": true

	// targets and perTarget attribute traffic to each -addr; the map is
	// fully populated up front so workers only touch atomics.
	targets   []string
	perTarget map[string]*targetStats
}

// targetStats is one -addr's share of a phase.
type targetStats struct {
	requests atomic.Int64 // requests routed here (counting each retry once)
	errors   atomic.Int64 // requests that ultimately failed here
	shed     atomic.Int64 // 429/503 rejections this target issued
}

func newLoadStats(addrs []string) *loadStats {
	st := &loadStats{targets: addrs, perTarget: make(map[string]*targetStats, len(addrs))}
	for _, a := range addrs {
		st.perTarget[a] = &targetStats{}
	}
	return st
}

// fire runs n requests through `concurrency` workers, returning the
// per-request latencies and the wall-clock elapsed time.
func fire(client *http.Client, concurrency, n int, do func(i int) error) ([]time.Duration, time.Duration) {
	start := time.Now()
	lat := make([]time.Duration, n)
	var next atomic.Int64
	var failed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < min(concurrency, n); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				t0 := time.Now()
				if err := do(i); err != nil {
					failed.Add(1)
					fmt.Fprintln(os.Stderr, "skewsim load:", err)
				}
				lat[i] = time.Since(t0)
			}
		}()
	}
	wg.Wait()
	if f := failed.Load(); f > 0 {
		fatal(fmt.Errorf("%d/%d requests failed", f, n))
	}
	return lat, time.Since(start)
}

// statusError is a non-200 response; 429 and 503 carry the server's
// Retry-After wish.
type statusError struct {
	status     int
	retryAfter time.Duration
	msg        string
}

func (e *statusError) Error() string { return e.msg }

func (e *statusError) retriable() bool {
	return e.status == http.StatusTooManyRequests || e.status == http.StatusServiceUnavailable
}

// postRetry posts to addr+path with capped exponential backoff on
// 429/503 (an overloaded daemon sheds load expecting exactly this):
// the wait honors Retry-After when the server sends one, doubles up to
// a cap otherwise, and is jittered so a fleet of shed clients does not
// return in lockstep. Other failures are returned immediately.
// Outcomes are attributed to addr in st's per-target table.
func postRetry(client *http.Client, addr, path string, body interface{}, st *loadStats) error {
	const (
		maxAttempts = 8
		baseBackoff = 50 * time.Millisecond
		maxBackoff  = 2 * time.Second
	)
	ts := st.perTarget[addr]
	ts.requests.Add(1)
	backoff := baseBackoff
	for attempt := 0; ; attempt++ {
		err := post(client, addr+path, body, st)
		if err == nil {
			if attempt > 0 {
				st.retried.Add(1)
			}
			return nil
		}
		var se *statusError
		if !errors.As(err, &se) || !se.retriable() || attempt == maxAttempts-1 {
			ts.errors.Add(1)
			return err
		}
		st.shed.Add(1)
		ts.shed.Add(1)
		wait := backoff
		if se.retryAfter > wait {
			wait = se.retryAfter
		}
		// Full jitter on the second half of the window.
		wait = wait/2 + time.Duration(rand.Int63n(int64(wait/2)+1))
		time.Sleep(wait)
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

func post(client *http.Client, url string, body interface{}, st *loadStats) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		se := &statusError{
			status: resp.StatusCode,
			msg:    fmt.Sprintf("%s: %s (%s)", url, resp.Status, e.Error),
		}
		if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
			se.retryAfter = time.Duration(ra) * time.Second
		}
		return se
	}
	// Drain so the connection is reused; note degraded answers.
	var payload struct {
		Partial bool `json:"partial"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		return err
	}
	if payload.Partial {
		st.partial.Add(1)
	}
	return nil
}

func report(phase string, lat []time.Duration, elapsed time.Duration, items int, st *loadStats) {
	if len(lat) == 0 {
		fmt.Printf("%s: 0 requests (empty input)\n", phase)
		return
	}
	var total time.Duration
	for _, l := range lat {
		total += l
	}
	sorted := slices.Clone(lat)
	slices.Sort(sorted)
	q := func(p float64) time.Duration { return sorted[int(p*float64(len(sorted)-1))] }
	fmt.Printf("%s: %d requests (%d items) in %v — %.0f items/s, latency mean %v, p50 %v, p95 %v, p99 %v\n",
		phase, len(lat), items, elapsed.Round(time.Millisecond),
		float64(items)/elapsed.Seconds(),
		total/time.Duration(len(lat)), q(0.50), q(0.95), q(0.99))
	if shed, retried, partial := st.shed.Load(), st.retried.Load(), st.partial.Load(); shed+retried+partial > 0 {
		fmt.Printf("%s: overload: %d shed (429/503), %d requests retried to success, %d partial answers\n",
			phase, shed, retried, partial)
	}
	// With several targets (or any failures), break the traffic down so
	// one sick node is visible next to its healthy peers.
	anyErrors := false
	for _, ts := range st.perTarget {
		if ts.errors.Load() > 0 {
			anyErrors = true
		}
	}
	if len(st.targets) > 1 || anyErrors {
		for _, a := range st.targets {
			ts := st.perTarget[a]
			fmt.Printf("%s: target %s: %d requests, %d errors, %d shed\n",
				phase, a, ts.requests.Load(), ts.errors.Load(), ts.shed.Load())
		}
	}
}

// scrapeReport prints the daemon's server-side overload counters after
// a load run, so the client-observed shed/partial numbers above can be
// cross-checked against what the server accounted for. Counters are
// cumulative since daemon start, not per-run.
func scrapeReport(client *http.Client, addr string) {
	fams, err := scrapeMetrics(client, addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "skewsim load: -scrape-metrics:", err)
		return
	}
	out := func(outcome string) float64 {
		return sumFamily(fams, "skewsim_http_requests_total", map[string]string{"outcome": outcome})
	}
	fmt.Printf("server: requests ok=%.0f partial=%.0f rejected=%.0f shed=%.0f timeout=%.0f error=%.0f (cumulative since daemon start)\n",
		out("ok"), out("partial"), out("rejected"), out("shed"), out("timeout"), out("error"))
	fmt.Printf("server: admission rejected: queue_full=%.0f shed=%.0f; partial fan-outs=%.0f, abandoned shards=%.0f\n",
		sumFamily(fams, "skewsim_admission_rejected_total", map[string]string{"reason": "queue_full"}),
		sumFamily(fams, "skewsim_admission_rejected_total", map[string]string{"reason": "shed"}),
		sumFamily(fams, "skewsim_fanout_partial_total", nil),
		sumFamily(fams, "skewsim_fanout_abandoned_shards_total", nil))
}
