package main

import (
	"strings"
	"testing"
)

const sampleExposition = `# HELP skewsim_http_requests_total API requests served, by endpoint and outcome.
# TYPE skewsim_http_requests_total counter
skewsim_http_requests_total{endpoint="search",outcome="ok"} 41
skewsim_http_requests_total{endpoint="search",outcome="partial"} 2
skewsim_http_requests_total{endpoint="insert",outcome="ok"} 7
# HELP skewsim_http_request_seconds API request latency, by endpoint.
# TYPE skewsim_http_request_seconds histogram
skewsim_http_request_seconds_bucket{endpoint="search",le="0.001"} 40
skewsim_http_request_seconds_bucket{endpoint="search",le="+Inf"} 43
skewsim_http_request_seconds_sum{endpoint="search"} 0.25
skewsim_http_request_seconds_count{endpoint="search"} 43
# HELP skewsim_index_live_vectors Vectors currently live in the index.
# TYPE skewsim_index_live_vectors gauge
skewsim_index_live_vectors 400
`

func TestScrapeParseAndSum(t *testing.T) {
	fams, err := parseExposition(strings.NewReader(sampleExposition))
	if err != nil {
		t.Fatalf("parseExposition: %v", err)
	}
	if err := validateFamilies(fams); err != nil {
		t.Fatalf("validateFamilies: %v", err)
	}
	if got := sumFamily(fams, "skewsim_http_requests_total", nil); got != 50 {
		t.Fatalf("sum of requests = %v, want 50", got)
	}
	if got := sumFamily(fams, "skewsim_http_requests_total", map[string]string{"outcome": "partial"}); got != 2 {
		t.Fatalf("partial requests = %v, want 2", got)
	}
	// Histogram series must not leak into the family sum.
	if got := sumFamily(fams, "skewsim_http_request_seconds", nil); got != 0 {
		t.Fatalf("histogram family plain-sample sum = %v, want 0", got)
	}
	if fams["skewsim_http_request_seconds"].typ != "histogram" {
		t.Fatalf("request_seconds type = %q", fams["skewsim_http_request_seconds"].typ)
	}
}

func TestScrapeLabelEscapes(t *testing.T) {
	in := `# HELP m help
# TYPE m counter
m{path="a\"b\\c\nd"} 1
`
	fams, err := parseExposition(strings.NewReader(in))
	if err != nil {
		t.Fatalf("parseExposition: %v", err)
	}
	got := fams["m"].samples[0].labels["path"]
	if got != "a\"b\\c\nd" {
		t.Fatalf("unescaped label = %q", got)
	}
}

func TestScrapeRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"untyped sample":        "orphan_metric 1\n",
		"bad value":             "# TYPE m counter\n# HELP m h\nm not-a-number\n",
		"unterminated label":    "# TYPE m counter\n# HELP m h\nm{a=\"x} 1\n",
		"unknown type":          "# TYPE m speedometer\n",
		"missing help":          "# TYPE m counter\nm 1\n",
		"inf bucket mismatch":   "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n",
		"buckets without count": "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\n",
	}
	for name, in := range cases {
		fams, err := parseExposition(strings.NewReader(in))
		if err == nil {
			err = validateFamilies(fams)
		}
		if err == nil {
			t.Errorf("%s: accepted malformed exposition", name)
		}
	}
}
