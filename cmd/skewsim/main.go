// Command skewsim runs similarity search and joins over text-format
// datasets using the paper's data structure, with item-level
// probabilities estimated from the data itself (the §9 strategy).
//
// Usage:
//
//	skewsim search -data s.txt -queries q.txt -b1 0.5        # adversarial mode
//	skewsim search -data s.txt -queries q.txt -alpha 0.8     # correlated mode
//	skewsim join   -data s.txt -queries q.txt -threshold 0.6 # R ⋈ S
//	skewsim selfjoin -data s.txt -threshold 0.8              # S ⋈ S
//	skewsim load -addr http://localhost:8080 -data s.txt -queries q.txt
//	                                                         # drive a skewsimd daemon
//	skewsim metrics -addr http://localhost:8080 -require skewsim_http_requests_total
//	                                                         # scrape + validate /metrics
package main

import (
	"flag"
	"fmt"
	"os"

	"skewsim/internal/bitvec"
	"skewsim/internal/core"
	"skewsim/internal/dataio"
	"skewsim/internal/dist"
	"skewsim/internal/join"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "search":
		runSearch(os.Args[2:])
	case "join":
		runJoin(os.Args[2:], false)
	case "selfjoin":
		runJoin(os.Args[2:], true)
	case "load":
		runLoad(os.Args[2:])
	case "metrics":
		runMetrics(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: skewsim <search|join|selfjoin|load|metrics> [flags]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "skewsim:", err)
	os.Exit(1)
}

func loadVectors(path string) []bitvec.Vector {
	vs, err := dataio.ReadFile(path) // transparently gunzips .gz dumps
	if err != nil {
		fatal(err)
	}
	return vs
}

func buildIndex(data []bitvec.Vector, b1, alpha float64, seed uint64) *core.Index {
	// The paper's §9 strategy: probabilities estimated from the data.
	d, err := dist.EstimateProduct(data, 0)
	if err != nil {
		fatal(err)
	}
	var ix *core.Index
	if alpha > 0 {
		ix, err = core.BuildCorrelated(d, data, alpha, core.Options{Seed: seed})
	} else {
		ix, err = core.BuildAdversarial(d, data, b1, core.Options{Seed: seed})
	}
	if err != nil {
		fatal(err)
	}
	return ix
}

func runSearch(args []string) {
	fs := flag.NewFlagSet("search", flag.ExitOnError)
	dataPath := fs.String("data", "", "dataset file (required)")
	queryPath := fs.String("queries", "", "query file (required)")
	b1 := fs.Float64("b1", 0, "similarity threshold (adversarial mode)")
	alpha := fs.Float64("alpha", 0, "correlation (correlated mode)")
	seed := fs.Uint64("seed", 1, "random seed")
	_ = fs.Parse(args)
	if *dataPath == "" || *queryPath == "" || (*b1 <= 0) == (*alpha <= 0) {
		fatal(fmt.Errorf("search needs -data, -queries, and exactly one of -b1/-alpha"))
	}
	data := loadVectors(*dataPath)
	queries := loadVectors(*queryPath)
	ix := buildIndex(data, *b1, *alpha, *seed)
	for i, res := range ix.QueryParallel(queries, 0) {
		if res.Found {
			fmt.Printf("query %d: match id=%d similarity=%.4f (filters=%d candidates=%d)\n",
				i, res.ID, res.Similarity, res.Stats.Filters, res.Stats.Candidates)
		} else {
			fmt.Printf("query %d: no match above %.4f (filters=%d candidates=%d)\n",
				i, ix.Threshold(), res.Stats.Filters, res.Stats.Candidates)
		}
	}
}

func runJoin(args []string, self bool) {
	fs := flag.NewFlagSet("join", flag.ExitOnError)
	dataPath := fs.String("data", "", "dataset file S (required)")
	queryPath := fs.String("queries", "", "dataset file R (required unless selfjoin)")
	threshold := fs.Float64("threshold", 0.7, "similarity threshold")
	seed := fs.Uint64("seed", 1, "random seed")
	_ = fs.Parse(args)
	if *dataPath == "" || (!self && *queryPath == "") {
		fatal(fmt.Errorf("join needs -data (and -queries unless selfjoin)"))
	}
	data := loadVectors(*dataPath)
	ix := buildIndex(data, *threshold, 0, *seed)

	var pairs []join.Pair
	var st join.Stats
	var err error
	if self {
		pairs, st, err = join.SelfJoin(ix, *threshold, bitvec.BraunBlanquetMeasure)
	} else {
		pairs, st, err = join.Run(ix, loadVectors(*queryPath), *threshold, bitvec.BraunBlanquetMeasure)
	}
	if err != nil {
		fatal(err)
	}
	for _, p := range pairs {
		fmt.Printf("%d\t%d\t%.4f\n", p.RIdx, p.SIdx, p.Similarity)
	}
	fmt.Fprintf(os.Stderr, "join: %d queries, %d candidates verified, %d pairs\n",
		st.Queries, st.Candidates, st.Pairs)
}
