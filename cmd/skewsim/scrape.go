package main

import (
	"flag"
	"fmt"
	"net/http"
	"strings"
	"time"

	"skewsim/internal/promscrape"
)

// Client-side scraping lives in internal/promscrape (shared with the
// skewgate health prober); this file keeps the `skewsim metrics`
// subcommand and the thin aliases load.go reports through.

func scrapeMetrics(client *http.Client, addr string) (map[string]*promscrape.Family, error) {
	return promscrape.Scrape(client, addr)
}

func sumFamily(fams map[string]*promscrape.Family, name string, filter map[string]string) float64 {
	return promscrape.Sum(fams, name, filter)
}

// runMetrics is the `skewsim metrics` subcommand: scrape, validate,
// and summarize a daemon's /metrics, failing (exit 1) on malformed
// exposition or missing required families. CI's e2e step drives this.
func runMetrics(args []string) {
	fs := flag.NewFlagSet("metrics", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "skewsimd base URL")
	require := fs.String("require", "", "comma-separated metric families that must be present with at least one sample")
	timeout := fs.Duration("timeout", 10*time.Second, "scrape timeout")
	_ = fs.Parse(args)
	client := &http.Client{Timeout: *timeout}
	fams, err := scrapeMetrics(client, *addr)
	if err != nil {
		fatal(err)
	}
	var missing []string
	if *require != "" {
		for _, name := range strings.Split(*require, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			fam := fams[name]
			if fam == nil || len(fam.Samples) == 0 {
				missing = append(missing, name)
			}
		}
	}
	samples := 0
	for _, fam := range fams {
		samples += len(fam.Samples)
	}
	fmt.Printf("metrics: %d families, %d samples, exposition valid\n", len(fams), samples)
	if len(missing) > 0 {
		fatal(fmt.Errorf("metrics: missing or empty families: %s", strings.Join(missing, ", ")))
	}
}
