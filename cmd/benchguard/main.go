// Command benchguard compares two benchjson perf records and fails when
// a guarded benchmark regressed: new ns/op more than -max-regress above
// old ns/op. It is the CI gate keeping the query-path trajectory
// monotone — the serving benchmarks are too machine-sensitive for hosted
// runners, so the default pattern guards only the QueryPath family, and
// the tolerance is generous (25%) to absorb runner noise on top of the
// -count minimum filtering benchjson already applies.
//
// Usage:
//
//	go run ./cmd/benchguard -old BENCH_PR3.json -new BENCH_PR4.json
//	go run ./cmd/benchguard -old old.json -new new.json -pattern 'QueryPath|Segmented' -max-regress 0.10
//	go run ./cmd/benchguard -new new.json -within 'Benchmark/instrumented=Benchmark/bare' -within-max 0.05
//
// Benchmarks present in only one record are reported but never fail the
// guard (renames and new benchmarks are normal between PRs); a pattern
// that matches nothing in common fails loudly so the gate cannot
// silently go dark.
//
// -within compares pairs INSIDE the candidate record: for each
// comma-separated `name=baseline` pair, the named value must not
// exceed the baseline's by more than -within-max. Each side is a
// benchmark's ns/op, or `name:metric` for one of its custom metrics
// (e.g. `Bench:instr-ns/op=Bench:bare-ns/op` compares two timings the
// benchmark measured interleaved in one run). Both sides come from the
// same record on the same machine, so the bound can be tight (5%)
// where the cross-record gate must absorb runner variance (25%). With
// -within given, -old is optional.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strings"
)

type result struct {
	Name    string             `json:"name"`
	NsPerOp float64            `json:"ns_per_op"`
	Count   int                `json:"count"`
	Metrics map[string]float64 `json:"metrics"`
}

func load(path string) (map[string]result, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rs []result
	if err := json.Unmarshal(raw, &rs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]result, len(rs))
	for _, r := range rs {
		out[r.Name] = r
	}
	return out, nil
}

func main() {
	oldPath := flag.String("old", "", "baseline benchjson record")
	newPath := flag.String("new", "", "candidate benchjson record")
	pattern := flag.String("pattern", "QueryPath", "regexp of benchmark names to guard")
	maxRegress := flag.Float64("max-regress", 0.25, "maximum tolerated ns/op increase (0.25 = +25%)")
	within := flag.String("within", "", "comma-separated name=baseline pairs compared inside the -new record")
	withinMax := flag.Float64("within-max", 0.05, "maximum tolerated ns/op excess for -within pairs (0.05 = +5%)")
	flag.Parse()
	if *newPath == "" || (*oldPath == "" && *within == "") {
		fmt.Fprintln(os.Stderr, "benchguard: -new is required, plus -old and/or -within")
		os.Exit(2)
	}
	news, err := load(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	failed := false
	if *within != "" {
		failed = !checkWithin(news, *within, *withinMax)
	}
	if *oldPath == "" {
		if failed {
			os.Exit(1)
		}
		return
	}
	re, err := regexp.Compile(*pattern)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	olds, err := load(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	compared, regressed := 0, 0
	for name, n := range news {
		if !re.MatchString(name) {
			continue
		}
		o, ok := olds[name]
		if !ok {
			fmt.Printf("NEW       %-55s %12.0f ns/op (no baseline)\n", name, n.NsPerOp)
			continue
		}
		compared++
		ratio := 0.0
		if o.NsPerOp > 0 {
			ratio = n.NsPerOp/o.NsPerOp - 1
		}
		status := "ok"
		if ratio > *maxRegress {
			status = "REGRESSED"
			regressed++
		}
		fmt.Printf("%-9s %-55s %12.0f -> %12.0f ns/op (%+.1f%%)\n", status, name, o.NsPerOp, n.NsPerOp, 100*ratio)
	}
	for name, o := range olds {
		if re.MatchString(name) {
			if _, ok := news[name]; !ok {
				fmt.Printf("GONE      %-55s %12.0f ns/op (not in candidate)\n", name, o.NsPerOp)
			}
		}
	}
	if compared == 0 {
		fmt.Fprintf(os.Stderr, "benchguard: pattern %q matched no benchmark present in both records\n", *pattern)
		os.Exit(1)
	}
	if regressed > 0 {
		fmt.Fprintf(os.Stderr, "benchguard: %d/%d guarded benchmarks regressed more than %.0f%%\n",
			regressed, compared, 100**maxRegress)
		os.Exit(1)
	}
	fmt.Printf("benchguard: %d guarded benchmarks within +%.0f%%\n", compared, 100**maxRegress)
	if failed {
		os.Exit(1)
	}
}

// checkWithin verifies each `name=baseline` pair inside the candidate
// record. A missing side fails loudly — a renamed benchmark or metric
// must not quietly disarm the gate.
func checkWithin(news map[string]result, pairs string, max float64) bool {
	ok := true
	for _, pair := range strings.Split(pairs, ",") {
		name, base, found := strings.Cut(strings.TrimSpace(pair), "=")
		if !found || name == "" || base == "" {
			fmt.Fprintf(os.Stderr, "benchguard: malformed -within pair %q (want name=baseline)\n", pair)
			return false
		}
		nv, okN := valueOf(news, name)
		bv, okB := valueOf(news, base)
		if !okN || !okB {
			fmt.Fprintf(os.Stderr, "benchguard: -within pair %q: benchmark or metric missing from candidate record\n", pair)
			ok = false
			continue
		}
		if bv <= 0 {
			fmt.Fprintf(os.Stderr, "benchguard: -within baseline %s has non-positive value\n", base)
			ok = false
			continue
		}
		ratio := nv/bv - 1
		status := "ok"
		if ratio > max {
			status = "EXCEEDED"
			ok = false
		}
		fmt.Printf("%-9s %-70s %12.0f vs %12.0f (%+.1f%%, bound +%.0f%%)\n",
			status, name+" = "+base, nv, bv, 100*ratio, 100*max)
	}
	return ok
}

// valueOf resolves a -within side: a benchmark name (its ns/op) or
// `name:metric` (one of its custom metrics).
func valueOf(news map[string]result, ref string) (float64, bool) {
	name, metric, has := strings.Cut(ref, ":")
	r, ok := news[name]
	if !ok {
		return 0, false
	}
	if !has {
		return r.NsPerOp, true
	}
	v, ok := r.Metrics[metric]
	return v, ok
}
