// Command benchguard compares two benchjson perf records and fails when
// a guarded benchmark regressed: new ns/op more than -max-regress above
// old ns/op. It is the CI gate keeping the query-path trajectory
// monotone — the serving benchmarks are too machine-sensitive for hosted
// runners, so the default pattern guards only the QueryPath family, and
// the tolerance is generous (25%) to absorb runner noise on top of the
// -count minimum filtering benchjson already applies.
//
// Usage:
//
//	go run ./cmd/benchguard -old BENCH_PR3.json -new BENCH_PR4.json
//	go run ./cmd/benchguard -old old.json -new new.json -pattern 'QueryPath|Segmented' -max-regress 0.10
//
// Benchmarks present in only one record are reported but never fail the
// guard (renames and new benchmarks are normal between PRs); a pattern
// that matches nothing in common fails loudly so the gate cannot
// silently go dark.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
)

type result struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
	Count   int     `json:"count"`
}

func load(path string) (map[string]result, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rs []result
	if err := json.Unmarshal(raw, &rs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]result, len(rs))
	for _, r := range rs {
		out[r.Name] = r
	}
	return out, nil
}

func main() {
	oldPath := flag.String("old", "", "baseline benchjson record")
	newPath := flag.String("new", "", "candidate benchjson record")
	pattern := flag.String("pattern", "QueryPath", "regexp of benchmark names to guard")
	maxRegress := flag.Float64("max-regress", 0.25, "maximum tolerated ns/op increase (0.25 = +25%)")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -old and -new are required")
		os.Exit(2)
	}
	re, err := regexp.Compile(*pattern)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	olds, err := load(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	news, err := load(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	compared, regressed := 0, 0
	for name, n := range news {
		if !re.MatchString(name) {
			continue
		}
		o, ok := olds[name]
		if !ok {
			fmt.Printf("NEW       %-55s %12.0f ns/op (no baseline)\n", name, n.NsPerOp)
			continue
		}
		compared++
		ratio := 0.0
		if o.NsPerOp > 0 {
			ratio = n.NsPerOp/o.NsPerOp - 1
		}
		status := "ok"
		if ratio > *maxRegress {
			status = "REGRESSED"
			regressed++
		}
		fmt.Printf("%-9s %-55s %12.0f -> %12.0f ns/op (%+.1f%%)\n", status, name, o.NsPerOp, n.NsPerOp, 100*ratio)
	}
	for name, o := range olds {
		if re.MatchString(name) {
			if _, ok := news[name]; !ok {
				fmt.Printf("GONE      %-55s %12.0f ns/op (not in candidate)\n", name, o.NsPerOp)
			}
		}
	}
	if compared == 0 {
		fmt.Fprintf(os.Stderr, "benchguard: pattern %q matched no benchmark present in both records\n", *pattern)
		os.Exit(1)
	}
	if regressed > 0 {
		fmt.Fprintf(os.Stderr, "benchguard: %d/%d guarded benchmarks regressed more than %.0f%%\n",
			regressed, compared, 100**maxRegress)
		os.Exit(1)
	}
	fmt.Printf("benchguard: %d guarded benchmarks within +%.0f%%\n", compared, 100**maxRegress)
}
