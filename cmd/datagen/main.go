// Command datagen emits synthetic datasets in the library's text format.
//
// Usage:
//
//	datagen -profile SPOTIFY -n 2000 > spotify.txt     # dataset analog
//	datagen -uniform 0.1 -dim 1000 -n 500 > unif.txt   # product profile
//	datagen -list                                      # available analogs
package main

import (
	"flag"
	"fmt"
	"os"

	"skewsim/internal/datagen"
	"skewsim/internal/dataio"
	"skewsim/internal/dist"
	"skewsim/internal/hashing"
)

func main() {
	profile := flag.String("profile", "", "dataset analog name (see -list)")
	list := flag.Bool("list", false, "list analog names and exit")
	n := flag.Int("n", 1000, "number of vectors")
	seed := flag.Uint64("seed", 1, "random seed")
	uniform := flag.Float64("uniform", 0, "uniform item probability (alternative to -profile)")
	dim := flag.Int("dim", 1000, "dimension for -uniform")
	flag.Parse()

	if *list {
		for _, p := range datagen.Profiles() {
			fmt.Printf("%s\tdim=%d\tpair-ratio=%.1f\n", p.Name, p.Dim, p.PairRatio)
		}
		return
	}

	rng := hashing.NewSplitMix64(*seed)
	switch {
	case *profile != "":
		p, err := datagen.ProfileByName(*profile)
		if err != nil {
			fatal(err)
		}
		if err := dataio.Write(os.Stdout, p.Generate(rng, *n)); err != nil {
			fatal(err)
		}
	case *uniform > 0:
		d, err := dist.NewProduct(dist.Uniform(*dim, *uniform))
		if err != nil {
			fatal(err)
		}
		if err := dataio.Write(os.Stdout, d.SampleN(rng, *n)); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("need -profile or -uniform (or -list)"))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
