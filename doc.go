// Package skewsim is a from-scratch Go reproduction of "Set Similarity
// Search for Skewed Data" (McCauley, Mikkelsen, Pagh — PODS 2018,
// arXiv:1804.03054).
//
// The paper's data structure — a skew-adaptive locality-sensitive
// filtering scheme — lives in internal/core (SkewSearch), built on the
// shared filtering engine in internal/lsf. Baselines (Chosen Path,
// MinHash LSH, prefix filtering, brute force), the probabilistic data
// model, exponent solvers, dataset generators, a similarity-join driver,
// and the experiment harness that regenerates every table and figure of
// the paper are in the sibling internal packages. Candidate
// verification across every layer runs through internal/verify's
// packed popcount engine over internal/bitvec's word-packed vector
// forms. For serving rather
// than experiments, internal/segment makes the index online-mutable
// (memtable + frozen CSR segments, LSM-style), internal/wal makes it
// crash-durable (write-ahead logging with checkpoint truncation), and
// internal/server shards it behind the cmd/skewsimd HTTP daemon.
//
// Start with README.md (package map, quickstart, benchmark headlines);
// API.md documents the daemon's HTTP/JSON endpoints and durability
// semantics; DESIGN.md holds the full architecture inventory and
// EXPERIMENTS.md the paper-vs-measured results.
//
// Quick start:
//
//	go run ./examples/quickstart
//	go run ./examples/serving       # online insert/delete/query
//	go run ./cmd/experiments        # regenerate all paper artifacts
//	go run ./cmd/skewsimd           # HTTP serving daemon (see API.md)
//	go test -bench=. -benchmem      # benchmark harness
package skewsim
