GO ?= go

# Benchmarks covered by the smoke run and the JSON perf record: the
# query-pipeline and build micro-benchmarks the perf trajectory is held
# to, the bitvec merge kernels and serialization, plus the serving
# subsystem (segmented query vs frozen-only, shard fan-out, online
# insert).
BENCH_PATTERN ?= QueryPath|LSFTraversal|BuildSkewSearch|BuildChosenPath|IntersectionSize|SerializeIndex|Segmented|Shard

# The JSON perf record for this PR's benchmark snapshot.
BENCH_OUT ?= BENCH_PR3.json

.PHONY: all build vet test race fuzz bench bench-json

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full suite under the race detector — the concurrency acceptance run
# for the serving subsystem (segment/server stress tests).
race:
	$(GO) test -race ./...

# Short fuzz smoke over the byte-level parsers. Each target gets a few
# seconds of mutation on top of the checked-in seeds.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzRead$$' -fuzztime $(FUZZTIME) ./internal/dataio
	$(GO) test -run '^$$' -fuzz '^FuzzReadIndexFrom$$' -fuzztime $(FUZZTIME) ./internal/lsf
	$(GO) test -run '^$$' -fuzz '^FuzzSerializeRoundTrip$$' -fuzztime $(FUZZTIME) ./internal/lsf

# Smoke-run the micro-benchmarks: one iteration each, with allocation
# counters, so CI catches benchmarks that stop compiling or crash
# without paying for statistically meaningful timings.
bench:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -benchtime=1x ./...

# Same smoke run, converted to a machine-readable perf record
# ($(BENCH_OUT): name, ns/op, B/op, allocs/op, custom metrics per
# benchmark) so the benchmark trajectory can be diffed across PRs. Two
# steps, not a pipe, so a crashing benchmark fails the target instead
# of being swallowed by the converter's exit code; the raw benchmark
# log still reaches the terminal via benchjson's stderr passthrough.
bench-json:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -benchtime=1x ./... > bench.log
	$(GO) run ./cmd/benchjson < bench.log > $(BENCH_OUT); st=$$?; rm -f bench.log; exit $$st
