GO ?= go

# Benchmarks covered by the smoke run and the JSON perf record: the
# query-pipeline and build micro-benchmarks the perf trajectory is held
# to, the bitvec merge and popcount-intersect kernels (Intersect matches
# IntersectionSize, IntersectionSizeSkewed, and the word-level
# IntersectWords kernel benchmark), the packed verification engine, and
# serialization, plus the serving subsystem (segmented query vs
# frozen-only, shard fan-out, online insert) and the write-ahead log
# (append path, batch framing, group commit).
BENCH_PATTERN ?= QueryPath|LSFTraversal|BuildSkewSearch|BuildChosenPath|Intersect|Verify|SerializeIndex|Segmented|Shard|WAL|PostingDecode|SegfileOpen|BloomSkip

# The JSON perf record for this PR's benchmark snapshot, the baseline it
# is guarded against, and the number of samples per benchmark (benchjson
# keeps the per-benchmark minimum — single-sample records were noisy
# enough to fake 18% swings on allocation-free kernels between PRs).
BENCH_OUT ?= BENCH_PR10.json
BENCH_PREV ?= BENCH_PR9.json
BENCH_COUNT ?= 5

.PHONY: all build vet test test-purego race fuzz bench bench-json bench-guard bench-obs-guard docs test-fault test-obs e2e test-cluster test-storage

all: build vet test

# The documentation gate CI's docs job runs: every relative link and
# anchor in the markdown set must resolve (cmd/mdlint), and the godoc
# examples/CLIs must still compile so doc snippets cannot rot.
docs:
	$(GO) run ./cmd/mdlint README.md API.md DESIGN.md EXPERIMENTS.md ROADMAP.md PAPER.md
	$(GO) build ./examples/... ./cmd/...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Same suite with the assembly kernels compiled out (purego build tag):
# proves the portable fallback path — what non-amd64 builds and
# pre-AVX2 CPUs run — stays green, not just compiled.
test-purego:
	$(GO) test -tags purego ./...

# Full suite under the race detector — the concurrency acceptance run
# for the serving subsystem (segment/server stress tests).
race:
	$(GO) test -race ./...

# The failure-path acceptance run: the fault-injection suite
# (internal/faultinject registry + the Fault* tests it arms) under the
# race detector — injected fsync errors must surface as ErrNotDurable,
# a failed checkpoint must leave recovery bit-identical, stalled shards
# must degrade to partial answers within the deadline, overload must
# shed with 429/503 instead of growing goroutines, and the replication
# faults (stalled feed, mid-stream disconnect, torn bootstrap snapshot,
# SIGKILLed primary) must all end in a follower bit-identical to the
# surviving state.
test-fault:
	$(GO) test -race -run 'Fault' ./internal/faultinject ./internal/segment ./internal/server ./internal/replica

# The observability acceptance run: the metrics core under the race
# detector (concurrent registration + observation, exposition golden
# file), the instrumented-handler and stalled-shard metric tests, and
# the scrape parser behind `skewsim metrics` / `skewsim load
# -scrape-metrics`.
test-obs:
	$(GO) test -race ./internal/obs ./internal/promscrape ./cmd/skewsim
	$(GO) test -race -run 'Obs' ./internal/server

# Boot a real daemon, drive it with skewsim load, scrape and validate
# /metrics over the wire (see scripts/e2e_metrics.sh).
e2e:
	sh scripts/e2e_metrics.sh

# The failover acceptance run: boot a primary, a replicating follower,
# and a skewgate in front of both; load through the gateway, SIGKILL
# the primary, and require zero read errors after the probe interval
# plus a successful promotion that restores writes
# (see scripts/e2e_cluster.sh).
test-cluster:
	sh scripts/e2e_cluster.sh

# The beyond-RAM storage acceptance run: the differential suite (frozen
# blob reopened via mmap zero-copy and heap decode, compressed and
# plain, must answer bit-identically to the index that wrote it), the
# resident-budget tiering tests, the cold-segment compaction
# regression, the storage SIGKILL crash matrix (mid segment-file write,
# mid compaction sweep, mid demote/promote), and the concurrent
# query-during-retier stress — all under the race detector.
test-storage:
	$(GO) test -race -run 'FrozenBlob|PostingCodec|Storage|TierRace|Bloom' ./internal/lsf ./internal/segment ./internal/mmapio

# Short fuzz smoke over the byte-level parsers and the intersect kernel
# (assembly vs portable differential). Each target gets a few seconds of
# mutation on top of the checked-in seeds.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzRead$$' -fuzztime $(FUZZTIME) ./internal/dataio
	$(GO) test -run '^$$' -fuzz '^FuzzReadIndexFrom$$' -fuzztime $(FUZZTIME) ./internal/lsf
	$(GO) test -run '^$$' -fuzz '^FuzzSerializeRoundTrip$$' -fuzztime $(FUZZTIME) ./internal/lsf
	$(GO) test -run '^$$' -fuzz '^FuzzPackedRoundTrip$$' -fuzztime $(FUZZTIME) ./internal/bitvec
	$(GO) test -run '^$$' -fuzz '^FuzzIntersectKernel$$' -fuzztime $(FUZZTIME) ./internal/bitvec
	$(GO) test -run '^$$' -fuzz '^FuzzPostingCodec$$' -fuzztime $(FUZZTIME) ./internal/lsf
	$(GO) test -run '^$$' -fuzz '^FuzzSegmentHeader$$' -fuzztime $(FUZZTIME) ./internal/segment

# Smoke-run the micro-benchmarks: one iteration each, with allocation
# counters, so CI catches benchmarks that stop compiling or crash
# without paying for statistically meaningful timings.
bench:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -benchtime=1x ./...

# The measured run, converted to a machine-readable perf record
# ($(BENCH_OUT): name, min ns/op over $(BENCH_COUNT) samples, B/op,
# allocs/op, sample count, custom metrics per benchmark) so the
# benchmark trajectory can be diffed across PRs. Two steps, not a pipe,
# so a crashing benchmark fails the target instead of being swallowed
# by the converter's exit code; the raw benchmark log still reaches the
# terminal via benchjson's stderr passthrough.
bench-json:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -benchtime=1x -count=$(BENCH_COUNT) ./... > bench.log
	$(GO) run ./cmd/benchjson < bench.log > $(BENCH_OUT); st=$$?; rm -f bench.log; exit $$st

# Regression gate: fail when a QueryPath benchmark in $(BENCH_OUT) is
# more than 25% slower than the previous PR's record. Serving and build
# benchmarks are tracked but not gated (too machine-sensitive for
# hosted runners).
bench-guard:
	$(GO) run ./cmd/benchguard -old $(BENCH_PREV) -new $(BENCH_OUT)

# Observability-overhead gate: the instrumented query path must stay
# within 5% of bare. The benchmark interleaves both paths per iteration
# and reports each side as a custom metric, so the comparison shares
# one run's cache and clock state — the only way a 5% bound survives
# shared runners (back-to-back runs drift ~10% by themselves).
bench-obs-guard:
	$(GO) test -run '^$$' -bench 'QueryPathInstrumented' -benchtime=8000x -count=$(BENCH_COUNT) ./internal/segment > bench_obs.log
	$(GO) run ./cmd/benchjson < bench_obs.log > BENCH_OBS.json; st=$$?; rm -f bench_obs.log; exit $$st
	$(GO) run ./cmd/benchguard -new BENCH_OBS.json \
		-within 'BenchmarkQueryPathInstrumented:instr-ns/op=BenchmarkQueryPathInstrumented:bare-ns/op' \
		-within-max 0.05
	rm -f BENCH_OBS.json
