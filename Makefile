GO ?= go

# Benchmarks covered by the smoke run and the JSON perf record: the
# query-pipeline and build micro-benchmarks the perf trajectory is held
# to, plus the bitvec merge kernels and serialization.
BENCH_PATTERN ?= QueryPath|LSFTraversal|BuildSkewSearch|BuildChosenPath|IntersectionSize|SerializeIndex

.PHONY: all build vet test bench bench-json

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Smoke-run the micro-benchmarks: one iteration each, with allocation
# counters, so CI catches benchmarks that stop compiling or crash
# without paying for statistically meaningful timings.
bench:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -benchtime=1x ./...

# Same smoke run, converted to a machine-readable perf record
# (BENCH_PR2.json: name, ns/op, B/op, allocs/op, custom metrics per
# benchmark) so the benchmark trajectory can be diffed across PRs. Two
# steps, not a pipe, so a crashing benchmark fails the target instead
# of being swallowed by the converter's exit code; the raw benchmark
# log still reaches the terminal via benchjson's stderr passthrough.
bench-json:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -benchtime=1x ./... > bench.log
	$(GO) run ./cmd/benchjson < bench.log > BENCH_PR2.json; st=$$?; rm -f bench.log; exit $$st
