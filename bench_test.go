// Benchmark harness: one benchmark per paper artifact (figures, tables,
// worked examples) plus micro-benchmarks for the core operations and
// ablation benchmarks for the design decisions called out in DESIGN.md
// (D1 stopping rule, D2 conditional weighting).
//
// The per-artifact benchmarks run the same code as cmd/experiments with
// reduced configurations so `go test -bench=.` finishes in minutes; the
// rendered tables land in io.Discard — run cmd/experiments to see them.
package skewsim_test

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"testing"

	"skewsim/internal/bitvec"
	"skewsim/internal/bruteforce"
	"skewsim/internal/chosenpath"
	"skewsim/internal/core"
	"skewsim/internal/datagen"
	"skewsim/internal/dist"
	"skewsim/internal/experiments"
	"skewsim/internal/hashing"
	"skewsim/internal/lsf"
	"skewsim/internal/minhash"
	"skewsim/internal/prefix"
	"skewsim/internal/splitsearch"
)

// --- paper artifacts -------------------------------------------------------

func BenchmarkFig1(b *testing.B) {
	cfg := experiments.DefaultFig1Config()
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := t.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2(b *testing.B) {
	cfg := experiments.DefaultFig2Config()
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := t.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1(b *testing.B) {
	cfg := experiments.Table1Config{N: 500, Samples: 100, Seed: 1}
	for i := 0; i < b.N; i++ {
		t, err := experiments.Table1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := t.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSec7Adv(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Sec7Adv()
		if err != nil {
			b.Fatal(err)
		}
		if err := t.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSec7Corr(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Sec7Corr()
		if err != nil {
			b.Fatal(err)
		}
		if err := t.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMotivating(b *testing.B) {
	cfg := experiments.DefaultMotivatingConfig()
	for i := 0; i < b.N; i++ {
		t, err := experiments.Motivating(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := t.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScaling(b *testing.B) {
	cfg := experiments.ScalingConfig{
		Ns:          []int{300, 600, 1200},
		B1:          1.0 / 3,
		C:           15,
		PA:          0.25,
		RareExp:     0.9,
		Queries:     10,
		Repetitions: 4,
		Seed:        7,
	}
	for i := 0; i < b.N; i++ {
		t, err := experiments.Scaling(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := t.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecall(b *testing.B) {
	cfg := experiments.RecallConfig{
		N: 300, Queries: 20, C: 25,
		Alphas: []float64{2.0 / 3}, Seed: 9,
	}
	for i := 0; i < b.N; i++ {
		t, err := experiments.Recall(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := t.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks ------------------------------------------------------

// benchWorkload builds a standard correlated workload once per benchmark.
func benchWorkload(b *testing.B, n int) (*dist.Product, *datagen.CorrelatedWorkload) {
	b.Helper()
	d := dist.MustProduct(dist.Fig1Profile(600, 0.25))
	w, err := datagen.NewCorrelatedWorkload(d, n, 50, 2.0/3, 13)
	if err != nil {
		b.Fatal(err)
	}
	return d, w
}

func BenchmarkBuildSkewSearch(b *testing.B) {
	d, w := benchWorkload(b, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BuildCorrelated(d, w.Data, 2.0/3, core.Options{Seed: uint64(i), Repetitions: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildChosenPath(b *testing.B) {
	d, w := benchWorkload(b, 1000)
	b2 := d.ExpectedBraunBlanquet()
	b1 := d.ExpectedCorrelatedBraunBlanquet(2.0 / 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chosenpath.Build(w.Data, b1*0.85, b2, chosenpath.Options{Seed: uint64(i), Repetitions: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuerySkewSearch(b *testing.B) {
	d, w := benchWorkload(b, 1000)
	ix, err := core.BuildCorrelated(d, w.Data, 2.0/3, core.Options{Seed: 1, Repetitions: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Query(w.Queries[i%len(w.Queries)])
	}
}

func BenchmarkQueryChosenPath(b *testing.B) {
	d, w := benchWorkload(b, 1000)
	b2 := d.ExpectedBraunBlanquet()
	b1 := d.ExpectedCorrelatedBraunBlanquet(2.0 / 3)
	ix, err := chosenpath.Build(w.Data, b1*0.85, b2, chosenpath.Options{Seed: 1, Repetitions: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Query(w.Queries[i%len(w.Queries)])
	}
}

func BenchmarkQueryMinHash(b *testing.B) {
	d, w := benchWorkload(b, 1000)
	_ = d
	ix, err := minhash.Build(w.Data, minhash.Params{K: 3, L: 16}, minhash.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.QueryBest(w.Queries[i%len(w.Queries)])
	}
}

func BenchmarkQueryPrefixFilter(b *testing.B) {
	d, w := benchWorkload(b, 1000)
	ix, err := prefix.Build(w.Data, d.Probs(), 0.5, prefix.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.QueryBest(w.Queries[i%len(w.Queries)])
	}
}

func BenchmarkQueryBruteForce(b *testing.B) {
	_, w := benchWorkload(b, 1000)
	ix, err := bruteforce.Build(w.Data, bruteforce.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.QueryBest(w.Queries[i%len(w.Queries)])
	}
}

func BenchmarkSampleProduct(b *testing.B) {
	d := dist.MustProduct(dist.TwoBlock(400, 0.25, 100000, 0.001))
	rng := hashing.NewSplitMix64(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Sample(rng)
	}
}

func BenchmarkSampleCorrelated(b *testing.B) {
	d := dist.MustProduct(dist.TwoBlock(400, 0.25, 100000, 0.001))
	rng := hashing.NewSplitMix64(3)
	x := d.Sample(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.SampleCorrelated(rng, x, 2.0/3)
	}
}

func BenchmarkIntersectionSize(b *testing.B) {
	d := dist.MustProduct(dist.Uniform(4000, 0.05))
	rng := hashing.NewSplitMix64(5)
	x := d.Sample(rng)
	y := d.Sample(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.IntersectionSize(y)
	}
}

// --- ablations (DESIGN.md D1, D2) -----------------------------------------

// ablationEngines builds two engines sharing the correlated thresholds
// but differing in the stopping rule: the paper's product rule vs a
// Chosen-Path-style fixed depth.
func ablationEngines(b *testing.B, d *dist.Product, n int, alpha float64, seed uint64) (productRule, fixedDepth *lsf.Engine) {
	b.Helper()
	clogn := d.ExpectedSize()
	c := d.C(n)
	delta := 3 / math.Sqrt(alpha*c)
	phat := d.ConditionalProbs(alpha)
	threshold := func(_ bitvec.Vector, j int, i uint32) float64 {
		ph := alpha
		if int(i) < len(phat) {
			ph = phat[i]
		}
		denom := ph*clogn - float64(j)
		if denom <= 1+delta {
			return 1
		}
		return (1 + delta) / denom
	}
	b2 := d.ExpectedBraunBlanquet()
	k := chosenpath.PathLength(n, b2)
	mk := func(stop lsf.StopRule, depth int) *lsf.Engine {
		e, err := lsf.NewEngine(n, lsf.Params{
			Seed: seed, Probs: d.Probs(), Threshold: threshold, Stop: stop, MaxDepth: depth,
		})
		if err != nil {
			b.Fatal(err)
		}
		return e
	}
	return mk(lsf.ProductStopRule(n), 0), mk(lsf.FixedDepthStopRule(k), k+1)
}

// BenchmarkAblationStoppingRule (D1): the paper's per-branch stopping
// rule against a fixed depth, measuring index filter volume (reported as
// filters/op) — the rule is what keeps rare-element branches short.
func BenchmarkAblationStoppingRule(b *testing.B) {
	const n, alpha = 800, 2.0 / 3
	d := dist.MustProduct(dist.Fig1Profile(500, 0.25))
	w, err := datagen.NewCorrelatedWorkload(d, n, 1, alpha, 17)
	if err != nil {
		b.Fatal(err)
	}
	for _, variant := range []struct {
		name  string
		fixed bool
	}{{"product-rule", false}, {"fixed-depth", true}} {
		b.Run(variant.name, func(b *testing.B) {
			total := 0
			for i := 0; i < b.N; i++ {
				prodE, fixE := ablationEngines(b, d, n, alpha, uint64(i))
				e := prodE
				if variant.fixed {
					e = fixE
				}
				ix, err := lsf.BuildIndex(e, w.Data[:200])
				if err != nil {
					b.Fatal(err)
				}
				total += ix.Stats().TotalFilters
			}
			b.ReportMetric(float64(total)/float64(b.N), "filters/op")
		})
	}
}

// BenchmarkAblationConditionalWeighting (D2): correlated workloads
// answered by the correlated thresholds (p̂-weighted) vs the adversarial
// thresholds (uniform 1/(b1|x|−j)); reports candidates/op.
func BenchmarkAblationConditionalWeighting(b *testing.B) {
	const n, alpha = 800, 2.0 / 3
	d := dist.MustProduct(dist.Fig1Profile(500, 0.25))
	w, err := datagen.NewCorrelatedWorkload(d, n, 20, alpha, 19)
	if err != nil {
		b.Fatal(err)
	}
	build := func(seed uint64, correlated bool) *core.Index {
		var ix *core.Index
		var err error
		if correlated {
			ix, err = core.BuildCorrelated(d, w.Data, alpha, core.Options{Seed: seed, Repetitions: 4})
		} else {
			ix, err = core.BuildAdversarial(d, w.Data, alpha/1.3, core.Options{Seed: seed, Repetitions: 4})
		}
		if err != nil {
			b.Fatal(err)
		}
		return ix
	}
	for _, variant := range []struct {
		name       string
		correlated bool
	}{{"phat-weighted", true}, {"uniform-thresholds", false}} {
		b.Run(variant.name, func(b *testing.B) {
			candidates, hits := 0, 0
			for i := 0; i < b.N; i++ {
				ix := build(uint64(i), variant.correlated)
				for k, q := range w.Queries {
					res := ix.Query(q)
					candidates += res.Stats.Candidates
					if res.Found && res.ID == w.Targets[k] {
						hits++
					}
				}
			}
			b.ReportMetric(float64(candidates)/float64(b.N*len(w.Queries)), "candidates/query")
			b.ReportMetric(float64(hits)/float64(b.N*len(w.Queries)), "recall")
		})
	}
}

// --- query pipeline (dedup refactor, batching, parallel queries) -----------

// BenchmarkQueryPath compares the three entry points of the unified
// candidate pipeline on the Fig1 workload. Every op processes the full
// query set, so ns/op and allocs/op are directly comparable between
// variants; run with -benchmem to see the allocation profile of the
// epoch-stamped dedup (the pre-refactor traversal allocated a fresh
// map[int32]struct{} plus one string key per bucket probe per query).
func BenchmarkQueryPath(b *testing.B) {
	d, w := benchWorkload(b, 2000)
	ix, err := core.BuildCorrelated(d, w.Data, 2.0/3, core.Options{Seed: 1, Repetitions: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("single-loop", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, q := range w.Queries {
				ix.Query(q)
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ix.BatchQuery(w.Queries)
		}
	})
	// best-loop vs batch-best is the amortizing-executor comparison:
	// same exhaustive best-match semantics, but batch-best generates
	// filters rep-major and resolves buckets for the whole batch before
	// walking postings, so hash probes and filter generation amortize.
	b.Run("best-loop", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, q := range w.Queries {
				ix.QueryBest(q)
			}
		}
	})
	b.Run("batch-best", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ix.BatchQueryBest(w.Queries)
		}
	})
	for _, workers := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("parallel-%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ix.QueryParallel(w.Queries, workers)
			}
		})
	}
}

// BenchmarkLSFTraversal isolates one lsf repetition's candidate walk (the
// layer the refactor rewrote): exhaustive traversal via CandidateIDs and
// early-exit traversal via Query.
func BenchmarkLSFTraversal(b *testing.B) {
	const n = 2000
	d, w := benchWorkload(b, n)
	clogn := d.ExpectedSize()
	phat := d.ConditionalProbs(2.0 / 3)
	engine, err := lsf.NewEngine(n, lsf.Params{
		Seed:  5,
		Probs: d.Probs(),
		Threshold: func(_ bitvec.Vector, j int, i uint32) float64 {
			ph := 2.0 / 3
			if int(i) < len(phat) {
				ph = phat[i]
			}
			denom := ph*clogn - float64(j)
			if denom <= 1 {
				return 1
			}
			return 1 / denom
		},
		Stop: lsf.ProductStopRule(n),
	})
	if err != nil {
		b.Fatal(err)
	}
	ix, err := lsf.BuildIndexParallel(engine, w.Data, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("candidate-ids", func(b *testing.B) {
		b.ReportAllocs()
		// The appending form with a reused buffer is the steady-state
		// shape of the candidate pipeline: 0 allocs/op once the arenas,
		// pools, and the result buffer have warmed up.
		var buf []int32
		for i := 0; i < b.N; i++ {
			buf, _ = ix.AppendCandidateIDs(buf[:0], w.Queries[i%len(w.Queries)])
		}
	})
	b.Run("candidate-ids-fresh", func(b *testing.B) {
		b.ReportAllocs()
		// The allocating entry point (a fresh result slice per call),
		// kept measured so regressions in CandidateIDs itself — still
		// the public API used by chosenpath and the experiments — are
		// not hidden by the appending benchmark above.
		for i := 0; i < b.N; i++ {
			ix.CandidateIDs(w.Queries[i%len(w.Queries)])
		}
	})
	b.Run("query-early-exit", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ix.Query(w.Queries[i%len(w.Queries)], 0.5, bitvec.BraunBlanquetMeasure)
		}
	})
}

// --- extension subsystems ---------------------------------------------------

func BenchmarkBuildParallelSpeedup(b *testing.B) {
	d, w := benchWorkload(b, 2000)
	for _, workers := range []int{0, -1} {
		name := "serial"
		if workers != 0 {
			name = "gomaxprocs"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.BuildCorrelated(d, w.Data, 2.0/3, core.Options{
					Seed: 3, Repetitions: 4, Workers: workers,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSerializeIndex(b *testing.B) {
	d, w := benchWorkload(b, 1000)
	ix, err := core.BuildCorrelated(d, w.Data, 2.0/3, core.Options{Seed: 1, Repetitions: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var bytesOut int64
	for i := 0; i < b.N; i++ {
		n, err := ix.WriteTo(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		bytesOut = n
	}
	b.ReportMetric(float64(bytesOut), "bytes")
}

func BenchmarkSplitSearchVsSingle(b *testing.B) {
	const b1 = 0.6
	d := dist.MustProduct(dist.TwoBlock(200, 0.3, 6000, 0.01))
	w, err := datagen.NewAdversarialWorkload(d, 600, 30, b1, 23)
	if err != nil {
		b.Fatal(err)
	}
	single, err := core.BuildAdversarial(d, w.Data, b1, core.Options{Seed: 2, Repetitions: 6})
	if err != nil {
		b.Fatal(err)
	}
	split, err := splitsearch.Build(d, w.Data, b1, splitsearch.Options{Seed: 2, Repetitions: 6})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("skewsearch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			single.Query(w.Queries[i%len(w.Queries)])
		}
	})
	b.Run("splitsearch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			split.Query(w.Queries[i%len(w.Queries)])
		}
	})
}

func BenchmarkClusterWeigher(b *testing.B) {
	probs := make([]float64, 800)
	cluster := make([]int32, 800)
	for j := 0; j < 100; j++ {
		for k := 0; k < 8; k++ {
			probs[j*8+k] = 0.02
			cluster[j*8+k] = int32(j)
		}
	}
	cw, err := lsf.NewClusterWeigher(probs, cluster, 0.999)
	if err != nil {
		b.Fatal(err)
	}
	path := []uint32{0, 1, 8, 16}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cw.LogInvP(path, uint32(i%800))
	}
}
