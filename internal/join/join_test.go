package join

import (
	"testing"

	"skewsim/internal/bitvec"
	"skewsim/internal/bruteforce"
	"skewsim/internal/core"
	"skewsim/internal/datagen"
	"skewsim/internal/dist"
	"skewsim/internal/hashing"
	"skewsim/internal/prefix"
)

func TestRunValidation(t *testing.T) {
	if _, _, err := Run(nil, nil, 0.5, bitvec.BraunBlanquetMeasure); err == nil {
		t.Error("nil index should fail")
	}
	bf, _ := bruteforce.Build([]bitvec.Vector{bitvec.New(1)}, bruteforce.Options{})
	if _, _, err := Run(bf, nil, 1.5, bitvec.BraunBlanquetMeasure); err == nil {
		t.Error("bad threshold should fail")
	}
}

func TestRunExactWithBruteForce(t *testing.T) {
	s := []bitvec.Vector{
		bitvec.New(1, 2, 3),
		bitvec.New(4, 5, 6),
		bitvec.New(1, 2, 9),
	}
	r := []bitvec.Vector{
		bitvec.New(1, 2, 3), // matches s[0] (1.0) and s[2] (2/3)
		bitvec.New(7, 8),    // matches nothing
	}
	bf, err := bruteforce.Build(s, bruteforce.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pairs, st, err := Run(bf, r, 0.6, bitvec.BraunBlanquetMeasure)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 2 {
		t.Fatalf("pairs = %+v", pairs)
	}
	if pairs[0].RIdx != 0 || pairs[0].SIdx != 0 || pairs[0].Similarity != 1 {
		t.Errorf("pair[0] = %+v", pairs[0])
	}
	if pairs[1].RIdx != 0 || pairs[1].SIdx != 2 {
		t.Errorf("pair[1] = %+v", pairs[1])
	}
	if st.Queries != 2 || st.Pairs != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRunSortedOutput(t *testing.T) {
	s := []bitvec.Vector{bitvec.New(1), bitvec.New(1), bitvec.New(1)}
	r := []bitvec.Vector{bitvec.New(1), bitvec.New(1)}
	bf, _ := bruteforce.Build(s, bruteforce.Options{})
	pairs, _, err := Run(bf, r, 0.9, bitvec.BraunBlanquetMeasure)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 6 {
		t.Fatalf("want 6 pairs, got %d", len(pairs))
	}
	for i := 1; i < len(pairs); i++ {
		a, b := pairs[i-1], pairs[i]
		if a.RIdx > b.RIdx || (a.RIdx == b.RIdx && a.SIdx >= b.SIdx) {
			t.Fatal("pairs not sorted")
		}
	}
}

func TestSelfJoinSkipsIdentityAndDuplicates(t *testing.T) {
	s := []bitvec.Vector{
		bitvec.New(1, 2),
		bitvec.New(1, 2),
		bitvec.New(9),
	}
	bf, _ := bruteforce.Build(s, bruteforce.Options{})
	pairs, st, err := SelfJoin(bf, 0.9, bitvec.BraunBlanquetMeasure)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 || pairs[0].RIdx != 0 || pairs[0].SIdx != 1 {
		t.Fatalf("pairs = %+v", pairs)
	}
	if st.Pairs != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSelfJoinNilIndex(t *testing.T) {
	if _, _, err := SelfJoin(nil, 0.5, bitvec.BraunBlanquetMeasure); err == nil {
		t.Error("nil index should fail")
	}
}

func TestJoinViaSkewSearchFindsPlantedPairs(t *testing.T) {
	// §1.1: similarity join by repeated SkewSearch queries. Plant
	// correlated pairs between R and S and check they are all recovered
	// (compared against the exact prefix-filter join).
	const (
		nS    = 300
		nR    = 40
		alpha = 0.8
	)
	probs := dist.Uniform(1000, 0.1)
	d := dist.MustProduct(probs)
	w, err := datagen.NewCorrelatedWorkload(d, nS, nR, alpha, 3)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := core.BuildCorrelated(d, w.Data, alpha, core.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	threshold := alpha / 1.3
	got, _, err := Run(ix, w.Queries, threshold, bitvec.BraunBlanquetMeasure)
	if err != nil {
		t.Fatal(err)
	}

	pfx, err := prefix.Build(w.Data, probs, threshold, prefix.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := Run(pfx, w.Queries, threshold, bitvec.BraunBlanquetMeasure)
	if err != nil {
		t.Fatal(err)
	}

	gotSet := map[[2]int]bool{}
	for _, p := range got {
		gotSet[[2]int{p.RIdx, p.SIdx}] = true
	}
	missing := 0
	for _, p := range want {
		if !gotSet[[2]int{p.RIdx, p.SIdx}] {
			missing++
		}
	}
	if len(want) == 0 {
		t.Fatal("exact join found no pairs; workload broken")
	}
	if rate := 1 - float64(missing)/float64(len(want)); rate < 0.9 {
		t.Errorf("join recall %v (%d/%d pairs)", rate, len(want)-missing, len(want))
	}
	// No false positives: every reported pair genuinely meets the
	// threshold (Run verifies, so this is a consistency check).
	for _, p := range got {
		if bitvec.BraunBlanquet(w.Queries[p.RIdx], w.Data[p.SIdx]) < threshold-1e-9 {
			t.Error("join reported sub-threshold pair")
		}
	}
}

func TestSelfJoinOnSkewedData(t *testing.T) {
	// Self-join with near-duplicates planted in a skewed dataset.
	probs := dist.Zipf(600, 1, 0.4)
	d := dist.MustProduct(probs)
	rng := hashing.NewSplitMix64(11)
	data := d.SampleN(rng, 150)
	// Plant two near-duplicate groups by copying vectors.
	data = append(data, data[0], data[1])
	pfx, err := prefix.Build(data, probs, 0.95, prefix.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pairs, _, err := SelfJoin(pfx, 0.95, bitvec.BraunBlanquetMeasure)
	if err != nil {
		t.Fatal(err)
	}
	found := map[[2]int]bool{}
	for _, p := range pairs {
		found[[2]int{p.RIdx, p.SIdx}] = true
	}
	if !found[[2]int{0, 150}] || !found[[2]int{1, 151}] {
		t.Errorf("planted duplicates not all found: %+v", pairs)
	}
}

func TestRunParallelMatchesSerial(t *testing.T) {
	probs := dist.Zipf(500, 1, 0.4)
	d := dist.MustProduct(probs)
	rng := hashing.NewSplitMix64(29)
	s := d.SampleN(rng, 200)
	r := d.SampleN(rng, 60)
	pfx, err := prefix.Build(s, probs, 0.5, prefix.Options{})
	if err != nil {
		t.Fatal(err)
	}
	serial, stSerial, err := Run(pfx, r, 0.5, bitvec.BraunBlanquetMeasure)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8, 0} {
		par, stPar, err := RunParallel(pfx, r, 0.5, bitvec.BraunBlanquetMeasure, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: %d pairs vs %d serial", workers, len(par), len(serial))
		}
		for i := range serial {
			if par[i] != serial[i] {
				t.Fatalf("workers=%d: pair %d differs", workers, i)
			}
		}
		if stPar.Candidates != stSerial.Candidates || stPar.Pairs != stSerial.Pairs {
			t.Fatalf("workers=%d: stats differ: %+v vs %+v", workers, stPar, stSerial)
		}
	}
}

// TestRunParallelClampsTinyBatches: a worker bound far above |R| must
// degrade to the serial path (RunParallel clamps workers to len(r)),
// producing identical pairs with no idle goroutines.
func TestRunParallelClampsTinyBatches(t *testing.T) {
	probs := dist.Zipf(500, 1, 0.4)
	d := dist.MustProduct(probs)
	rng := hashing.NewSplitMix64(31)
	s := d.SampleN(rng, 100)
	r := d.SampleN(rng, 2)
	pfx, err := prefix.Build(s, probs, 0.5, prefix.Options{})
	if err != nil {
		t.Fatal(err)
	}
	serial, stSerial, err := Run(pfx, r, 0.5, bitvec.BraunBlanquetMeasure)
	if err != nil {
		t.Fatal(err)
	}
	par, stPar, err := RunParallel(pfx, r, 0.5, bitvec.BraunBlanquetMeasure, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(serial) || stPar != stSerial {
		t.Fatalf("workers=1024 over %d queries diverged: %d vs %d pairs", len(r), len(par), len(serial))
	}
	for i := range serial {
		if par[i] != serial[i] {
			t.Fatalf("pair %d differs", i)
		}
	}
}

func TestRunParallelValidation(t *testing.T) {
	if _, _, err := RunParallel(nil, nil, 0.5, bitvec.BraunBlanquetMeasure, 2); err == nil {
		t.Error("nil index should fail")
	}
	bf, _ := bruteforce.Build([]bitvec.Vector{bitvec.New(1)}, bruteforce.Options{})
	if _, _, err := RunParallel(bf, nil, -1, bitvec.BraunBlanquetMeasure, 2); err == nil {
		t.Error("bad threshold should fail")
	}
	// Empty query set is fine.
	pairs, st, err := RunParallel(bf, nil, 0.5, bitvec.BraunBlanquetMeasure, 4)
	if err != nil || len(pairs) != 0 || st.Pairs != 0 {
		t.Errorf("empty R: %v %v %v", pairs, st, err)
	}
}
