// Package join implements set similarity join by repeated similarity
// search, the reduction described in §1.1 ("Similarity joins"): to join R
// against an indexed S, run one search per vector of R and verify the
// candidates. With SkewSearch as the index this realizes the paper's
// O(d·|R|·|S|^ρ) join bound; with the prefix or brute-force indexes it is
// exact.
package join

import (
	"cmp"
	"errors"
	"runtime"
	"slices"
	"sync"

	"skewsim/internal/bitvec"
)

// CandidateSource is the minimal interface the driver needs from an
// index: candidate generation plus access to the indexed data. All five
// index types in this library implement it.
type CandidateSource interface {
	Candidates(q bitvec.Vector) []int32
	Data() []bitvec.Vector
}

// sortPairs orders join output deterministically by (RIdx, SIdx).
func sortPairs(pairs []Pair) {
	slices.SortFunc(pairs, func(a, b Pair) int {
		if a.RIdx != b.RIdx {
			return cmp.Compare(a.RIdx, b.RIdx)
		}
		return cmp.Compare(a.SIdx, b.SIdx)
	})
}

// Pair is one joined pair: R[RIdx] matches S[SIdx] with the given
// similarity.
type Pair struct {
	RIdx       int
	SIdx       int
	Similarity float64
}

// Stats summarizes the join's work.
type Stats struct {
	Queries    int
	Candidates int // total distinct candidates verified
	Pairs      int
}

// Run joins every vector of R against the indexed S, returning all pairs
// with measure-similarity at least threshold among the candidates the
// index generates. Pairs are sorted by (RIdx, SIdx).
func Run(index CandidateSource, r []bitvec.Vector, threshold float64, m bitvec.Measure) ([]Pair, Stats, error) {
	if index == nil {
		return nil, Stats{}, errors.New("join: nil index")
	}
	if threshold < 0 || threshold > 1 {
		return nil, Stats{}, errors.New("join: threshold outside [0, 1]")
	}
	data := index.Data()
	var pairs []Pair
	var st Stats
	for ri, q := range r {
		st.Queries++
		for _, id := range index.Candidates(q) {
			st.Candidates++
			if s := m.Similarity(q, data[id]); s >= threshold {
				pairs = append(pairs, Pair{RIdx: ri, SIdx: int(id), Similarity: s})
			}
		}
	}
	sortPairs(pairs)
	st.Pairs = len(pairs)
	return pairs, st, nil
}

// RunParallel is Run with queries fanned out over `workers` goroutines
// (<= 0 selects GOMAXPROCS). All five index types answer read-only
// queries, so sharing the index is safe — each worker draws its own
// pooled visited set from the allocation-light candidate pipeline — and
// both candidate generation and verification run inside the workers,
// streaming pairs without materializing candidate lists. Results are
// identical to Run (same pairs, same sort order). Stats candidates are
// summed across workers.
func RunParallel(index CandidateSource, r []bitvec.Vector, threshold float64, m bitvec.Measure, workers int) ([]Pair, Stats, error) {
	if index == nil {
		return nil, Stats{}, errors.New("join: nil index")
	}
	if threshold < 0 || threshold > 1 {
		return nil, Stats{}, errors.New("join: threshold outside [0, 1]")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(r) {
		workers = len(r)
	}
	if workers <= 1 {
		return Run(index, r, threshold, m)
	}
	data := index.Data()
	perWorker := make([][]Pair, workers)
	candCounts := make([]int, workers)
	var wg sync.WaitGroup
	next := make(chan int)
	go func() {
		for ri := range r {
			next <- ri
		}
		close(next)
	}()
	for wID := 0; wID < workers; wID++ {
		wg.Add(1)
		go func(wID int) {
			defer wg.Done()
			for ri := range next {
				q := r[ri]
				for _, id := range index.Candidates(q) {
					candCounts[wID]++
					if s := m.Similarity(q, data[id]); s >= threshold {
						perWorker[wID] = append(perWorker[wID], Pair{RIdx: ri, SIdx: int(id), Similarity: s})
					}
				}
			}
		}(wID)
	}
	wg.Wait()
	var pairs []Pair
	st := Stats{Queries: len(r)}
	for wID := range perWorker {
		pairs = append(pairs, perWorker[wID]...)
		st.Candidates += candCounts[wID]
	}
	sortPairs(pairs)
	st.Pairs = len(pairs)
	return pairs, st, nil
}

// SelfJoin joins the indexed dataset against itself, skipping the trivial
// identity pairs and reporting each unordered pair once (RIdx < SIdx).
func SelfJoin(index CandidateSource, threshold float64, m bitvec.Measure) ([]Pair, Stats, error) {
	if index == nil {
		return nil, Stats{}, errors.New("join: nil index")
	}
	data := index.Data()
	var pairs []Pair
	var st Stats
	for ri, q := range data {
		st.Queries++
		for _, id := range index.Candidates(q) {
			if int(id) <= ri {
				continue
			}
			st.Candidates++
			if s := m.Similarity(q, data[id]); s >= threshold {
				pairs = append(pairs, Pair{RIdx: ri, SIdx: int(id), Similarity: s})
			}
		}
	}
	sortPairs(pairs)
	st.Pairs = len(pairs)
	return pairs, st, nil
}
