package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Structured logging for the CLIs: one constructor mapping the
// -log-format / -log-level flag values onto log/slog handlers, so every
// binary logs the same way and a log pipeline can switch the whole
// daemon to JSON with one flag.

// NewLogger builds a slog.Logger writing to w. format is "text"
// (logfmt-style key=value, the default) or "json"; level is one of
// "debug", "info", "warn", "error" (default "info").
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lvl = slog.LevelInfo
	case "debug":
		lvl = slog.LevelDebug
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (want debug, info, warn, or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "", "text", "logfmt":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
}
