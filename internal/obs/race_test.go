package obs

import (
	"fmt"
	"io"
	"sync"
	"testing"
)

// TestConcurrentRegistrationAndObserve is the -race acceptance test for
// the registry: goroutines registering fresh children, hammering every
// instrument type, and scraping the exposition all at once. It proves
// the locking discipline (registration under the registry lock,
// observation lock-free, scrape over a snapshot) rather than any
// particular output.
func TestConcurrentRegistrationAndObserve(t *testing.T) {
	reg := NewRegistry()
	base := reg.Counter("race_total", "t", L("who", "base"))
	hist := reg.Histogram("race_seconds", "t", HistogramOpts{MinPow: 0, MaxPow: 20, Scale: 1e-9}, L("who", "base"))
	gauge := reg.Gauge("race_gauge", "t")
	const (
		workers = 8
		iters   = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker registers its own children of the shared
			// families mid-flight...
			mine := reg.Counter("race_total", "t", L("who", fmt.Sprintf("w%d", w)))
			h := reg.Histogram("race_seconds", "t", HistogramOpts{MinPow: 0, MaxPow: 20, Scale: 1e-9}, L("who", fmt.Sprintf("w%d", w)))
			reg.GaugeFunc("race_func", "t", func() float64 { return float64(w) }, L("who", fmt.Sprintf("w%d", w)))
			// ...and observes into both its own and the shared ones.
			for i := 0; i < iters; i++ {
				mine.Inc()
				base.Add(2)
				h.Observe(int64(i))
				hist.Observe(int64(i * w))
				gauge.Set(int64(i))
				if i%100 == 0 {
					if _, err := reg.WriteTo(io.Discard); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got, want := base.Value(), int64(2*workers*iters); got != want {
		t.Errorf("shared counter = %d, want %d", got, want)
	}
	if got, want := hist.Count(), int64(workers*iters); got != want {
		t.Errorf("shared histogram count = %d, want %d", got, want)
	}
	if _, err := reg.WriteTo(io.Discard); err != nil {
		t.Fatal(err)
	}
}

// TestObserveAllocs pins the zero-alloc claim for the hot-path
// instruments.
func TestObserveAllocs(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("alloc_total", "t")
	h := reg.Histogram("alloc_seconds", "t", HistogramOpts{MinPow: 0, MaxPow: 30, Scale: 1e-9})
	g := reg.Gauge("alloc_gauge", "t")
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(7)
		h.Observe(12345)
	}); n != 0 {
		t.Errorf("hot-path observation allocates %.1f per op, want 0", n)
	}
}
