package obs

import (
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition format (version 0.0.4): per family a
// # HELP line, a # TYPE line, then one sample line per child —
// counters and gauges as name{labels} value, histograms as the
// cumulative _bucket series plus _sum and _count. Families are written
// in name order and children in label order, so the output is
// deterministic and diffable (the golden test depends on that).

// ContentType is the Content-Type of the text exposition format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteTo writes the full exposition of every registered family.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	// Snapshot families AND their child lists under the lock
	// (registration appends to children concurrently); the collectors
	// themselves are then read lock-free.
	r.mu.Lock()
	fams := make([]family, 0, len(r.fams))
	for _, f := range r.fams {
		snap := *f
		snap.children = append([]*child(nil), f.children...)
		fams = append(fams, snap)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b []byte
	for _, f := range fams {
		b = append(b, "# HELP "...)
		b = append(b, f.name...)
		b = append(b, ' ')
		b = appendEscapedHelp(b, f.help)
		b = append(b, '\n')
		b = append(b, "# TYPE "...)
		b = append(b, f.name...)
		b = append(b, ' ')
		b = append(b, f.typ.String()...)
		b = append(b, '\n')
		children := f.children
		sort.Slice(children, func(i, j int) bool { return children[i].labelKey < children[j].labelKey })
		for _, c := range children {
			b = c.col.collect(b, f.name, c.labelKey)
		}
	}
	n, err := w.Write(b)
	return int64(n), err
}

// Handler serves the exposition over HTTP (mount at GET /metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		_, _ = r.WriteTo(w)
	})
}

// appendSample writes one sample line: name{labels} value.
func appendSample(b []byte, name, labels string, v float64) []byte {
	b = append(b, name...)
	if labels != "" {
		b = append(b, '{')
		b = append(b, labels...)
		b = append(b, '}')
	}
	b = append(b, ' ')
	b = append(b, formatFloat(v)...)
	b = append(b, '\n')
	return b
}

// formatFloat renders a sample value or bucket bound: integers without
// a fractional part, everything else in Go's shortest 'g' form (the
// format Prometheus parsers accept).
func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// renderLabels renders a sorted label set in exposition syntax without
// the surrounding braces: k1="v1",k2="v2". Values are escaped.
func renderLabels(ls []Label) string {
	if len(ls) == 0 {
		return ""
	}
	var sb strings.Builder
	for i, l := range ls {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		for _, c := range l.Value {
			switch c {
			case '\\':
				sb.WriteString(`\\`)
			case '"':
				sb.WriteString(`\"`)
			case '\n':
				sb.WriteString(`\n`)
			default:
				sb.WriteRune(c)
			}
		}
		sb.WriteByte('"')
	}
	return sb.String()
}

// joinLabels merges a pre-rendered label string with one extra rendered
// pair (the histogram le label).
func joinLabels(labels, extra string) string {
	if labels == "" {
		return extra
	}
	return labels + "," + extra
}

// appendEscapedHelp escapes a HELP string (backslash and newline).
func appendEscapedHelp(b []byte, s string) []byte {
	for _, c := range s {
		switch c {
		case '\\':
			b = append(b, `\\`...)
		case '\n':
			b = append(b, `\n`...)
		default:
			b = append(b, string(c)...)
		}
	}
	return b
}
