package obs

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the exposition golden file")

// buildTestRegistry assembles one of every instrument with values that
// exercise the exposition corners: label escaping, multiple children of
// one family, scrape-time callbacks, histogram overflow, float gauges.
func buildTestRegistry() *Registry {
	reg := NewRegistry()
	c := reg.Counter("skewtest_requests_total", "Requests served.", L("endpoint", "search"), L("outcome", "ok"))
	c.Add(41)
	c.Inc()
	c2 := reg.Counter("skewtest_requests_total", "Requests served.", L("endpoint", "search"), L("outcome", "shed"))
	c2.Add(7)
	esc := reg.Counter("skewtest_escapes_total", "Help with a backslash \\ and\nnewline.",
		L("path", `C:\temp`), L("quote", `say "hi"`), L("nl", "a\nb"))
	esc.Inc()
	g := reg.Gauge("skewtest_inflight", "Queries in flight.")
	g.Set(3)
	reg.GaugeFunc("skewtest_ratio", "A scrape-time float.", func() float64 { return 0.375 })
	reg.CounterFunc("skewtest_derived_total", "A scrape-time counter.", func() float64 { return 12 })
	// Buckets 2^0..2^4 native, scaled 1e-3: le 0.001,0.002,...,0.016,+Inf.
	h := reg.Histogram("skewtest_latency_seconds", "Latency.", HistogramOpts{MinPow: 0, MaxPow: 4, Scale: 1e-3})
	for _, v := range []int64{0, 1, 2, 3, 4, 16, 17, 1000} {
		h.Observe(v)
	}
	return reg
}

func TestExpositionGolden(t *testing.T) {
	var buf bytes.Buffer
	if _, err := buildTestRegistry().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != string(want) {
		t.Errorf("exposition drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestExpositionDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	reg := buildTestRegistry()
	if _, err := reg.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("two scrapes of an idle registry differ")
	}
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h_test", "t", HistogramOpts{MinPow: 2, MaxPow: 6}) // bounds 4,8,16,32,64,+Inf
	cases := []struct {
		v    int64
		want int // bucket index
	}{
		{-5, 0}, {0, 0}, {1, 0}, {4, 0},
		{5, 1}, {8, 1},
		{9, 2}, {16, 2},
		{64, 4},
		{65, 5}, {1 << 40, 5},
	}
	for _, c := range cases {
		before := make([]int64, len(h.buckets))
		for i := range h.buckets {
			before[i] = h.buckets[i].Load()
		}
		h.Observe(c.v)
		for i := range h.buckets {
			d := h.buckets[i].Load() - before[i]
			if (i == c.want) != (d == 1) {
				t.Fatalf("Observe(%d): bucket %d delta %d (want increment only at bucket %d)", c.v, i, d, c.want)
			}
		}
	}
	if got := h.Count(); got != int64(len(cases)) {
		t.Errorf("Count = %d, want %d", got, len(cases))
	}
}

func TestHistogramExpositionInvariants(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("inv_seconds", "t", HistogramOpts{MinPow: 0, MaxPow: 10, Scale: 1e-9})
	for i := int64(0); i < 1000; i += 7 {
		h.Observe(i * i)
	}
	h.ObserveDuration(3 * time.Millisecond)
	var buf bytes.Buffer
	if _, err := reg.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	var (
		prevCum  = math.Inf(-1)
		prevLe   = math.Inf(-1)
		infCount = math.NaN()
		count    = math.NaN()
		buckets  int
	)
	for _, ln := range lines {
		if strings.HasPrefix(ln, "#") {
			continue
		}
		name, rest, _ := strings.Cut(ln, " ")
		v, err := strconv.ParseFloat(rest, 64)
		if err != nil {
			t.Fatalf("bad sample value in %q: %v", ln, err)
		}
		switch {
		case strings.HasPrefix(name, "inv_seconds_bucket"):
			buckets++
			leStr := strings.TrimSuffix(strings.TrimPrefix(name, `inv_seconds_bucket{le="`), `"}`)
			le := math.Inf(1)
			if leStr != "+Inf" {
				if le, err = strconv.ParseFloat(leStr, 64); err != nil {
					t.Fatalf("bad le %q: %v", leStr, err)
				}
			}
			if le <= prevLe {
				t.Errorf("bucket bounds not increasing: %v after %v", le, prevLe)
			}
			if v < prevCum {
				t.Errorf("cumulative bucket counts decreased: %v after %v", v, prevCum)
			}
			prevLe, prevCum = le, v
			if leStr == "+Inf" {
				infCount = v
			}
		case name == "inv_seconds_count":
			count = v
		}
	}
	if buckets == 0 {
		t.Fatal("no bucket lines emitted")
	}
	if math.IsNaN(infCount) {
		t.Fatal("no +Inf bucket emitted")
	}
	if infCount != count {
		t.Errorf("+Inf bucket %v != _count %v", infCount, count)
	}
	if count != float64(h.Count()) {
		t.Errorf("_count %v != Count() %d", count, h.Count())
	}
}

func TestRegistrationPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	reg := NewRegistry()
	reg.Counter("ok_total", "t", L("a", "1"))
	expectPanic("bad metric name", func() { reg.Counter("bad-name", "t") })
	expectPanic("bad label name", func() { reg.Counter("ok2_total", "t", L("bad-label", "x")) })
	expectPanic("reserved le", func() { reg.Histogram("h2", "t", HistogramOpts{MaxPow: 4}, L("le", "x")) })
	expectPanic("type conflict", func() { reg.Gauge("ok_total", "t") })
	expectPanic("duplicate labels", func() { reg.Counter("ok_total", "t", L("a", "1")) })
	expectPanic("bad bucket range", func() { reg.Histogram("h3", "t", HistogramOpts{MinPow: 5, MaxPow: 4}) })
}

func TestLoggerConstruction(t *testing.T) {
	var buf bytes.Buffer
	for _, format := range []string{"text", "json", "logfmt", ""} {
		lg, err := NewLogger(&buf, format, "info")
		if err != nil {
			t.Fatalf("format %q: %v", format, err)
		}
		lg.Info("hello", "k", "v")
	}
	if !strings.Contains(buf.String(), "hello") {
		t.Error("log output missing message")
	}
	buf.Reset()
	lg, err := NewLogger(&buf, "json", "warn")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("dropped")
	lg.Warn("kept")
	if strings.Contains(buf.String(), "dropped") || !strings.Contains(buf.String(), "kept") {
		t.Errorf("level filtering wrong: %q", buf.String())
	}
	if _, err := NewLogger(&buf, "xml", "info"); err == nil {
		t.Error("expected error for unknown format")
	}
	if _, err := NewLogger(&buf, "text", "loud"); err == nil {
		t.Error("expected error for unknown level")
	}
}
