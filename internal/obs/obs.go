// Package obs is the dependency-free observability core behind the
// serving stack: a metric registry (counters, gauges, fixed-bucket
// exponential histograms) whose hot-path cost is an uncontended atomic
// add — no locks, no allocation, no interface dispatch — plus a writer
// that emits the Prometheus text exposition format (expose.go) and a
// structured-logging constructor for the CLIs (log.go).
//
// The module deliberately has zero third-party dependencies, so this
// package reimplements the small slice of a metrics client the daemon
// needs rather than importing one:
//
//   - Counter / Gauge: one atomic int64.
//   - Histogram: power-of-two exponential buckets over an integer value
//     domain (nanoseconds, counts, bytes). Observe computes the bucket
//     with one bits.Len64 and issues two atomic adds (bucket + sum) —
//     there is no per-observation boxing, mutex, or float math. Bucket
//     upper bounds are scaled to the exposed unit (e.g. seconds) only
//     at scrape time.
//   - CounterFunc / GaugeFunc: scrape-time callbacks for values some
//     other structure already maintains (queue depths, file sizes), so
//     instrumentation never has to mirror state it can just read.
//
// Registration is cheap but locked; do it at construction time and keep
// the returned handles. Metric families group children that share a
// name but differ in label values; children must be pre-registered (no
// on-demand label lookup on the hot path, by design). All methods on
// Registry and on the returned instruments are safe for concurrent use.
package obs

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name="value" pair attached to a metric child.
type Label struct {
	Key, Value string
}

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// metricType is the exposition TYPE of a family.
type metricType int

const (
	typeCounter metricType = iota
	typeGauge
	typeHistogram
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// collector is what a registered child knows how to do at scrape time:
// append its sample lines for family name fam with pre-rendered label
// string labels (exposition syntax, without braces; may be empty).
type collector interface {
	collect(b []byte, fam, labels string) []byte
}

// child is one registered metric: a label set plus its collector.
type child struct {
	labels   []Label
	labelKey string // canonical rendered form, used for dedup and sort
	col      collector
}

// family groups the children sharing one metric name.
type family struct {
	name     string
	help     string
	typ      metricType
	children []*child
}

// Registry holds metric families and writes them in the Prometheus text
// exposition format. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// register adds a child under name, creating the family on first use.
// Registration errors are programming errors (bad names, type
// conflicts, duplicate label sets), so they panic.
func (r *Registry) register(name, help string, typ metricType, labels []Label, col collector) {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validLabelName(l.Key) {
			panic(fmt.Sprintf("obs: metric %s: invalid label name %q", name, l.Key))
		}
		if l.Key == "le" {
			panic(fmt.Sprintf("obs: metric %s: label name \"le\" is reserved for histogram buckets", name))
		}
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	key := renderLabels(ls)
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.fams[name]
	if fam == nil {
		fam = &family{name: name, help: help, typ: typ}
		r.fams[name] = fam
	} else if fam.typ != typ {
		panic(fmt.Sprintf("obs: metric %s registered as %s and %s", name, fam.typ, typ))
	}
	for _, c := range fam.children {
		if c.labelKey == key {
			panic(fmt.Sprintf("obs: metric %s{%s} registered twice", name, key))
		}
	}
	fam.children = append(fam.children, &child{labels: ls, labelKey: key, col: col})
}

// Counter registers a monotonically increasing counter. The exposition
// name should end in _total by convention.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.register(name, help, typeCounter, labels, c)
	return c
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — for monotone values another structure already maintains.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, typeCounter, labels, funcCollector(fn))
}

// Gauge registers a gauge (a value that can go up and down).
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.register(name, help, typeGauge, labels, g)
	return g
}

// GaugeFunc registers a gauge whose value is read from fn at scrape
// time. fn must be safe for concurrent use; it is called with no
// registry locks held beyond the scrape snapshot.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, typeGauge, labels, funcCollector(fn))
}

// HistogramOpts sizes a histogram's exponential bucket layout over an
// integer value domain.
type HistogramOpts struct {
	// MinPow and MaxPow bound the finite buckets: upper bounds
	// 2^MinPow, 2^MinPow+1, ..., 2^MaxPow in the *native* unit of the
	// observed values, plus a +Inf overflow bucket. MaxPow must be
	// >= MinPow; MinPow may be 0 (first bucket is "<= 1").
	MinPow, MaxPow int
	// Scale converts the native unit to the exposed unit for the le=""
	// bucket bounds and the _sum line (e.g. 1e-9 for values observed in
	// nanoseconds and exposed in seconds). 0 means 1 (expose the native
	// unit unscaled).
	Scale float64
}

// Histogram registers a fixed-bucket exponential histogram.
func (r *Registry) Histogram(name, help string, opts HistogramOpts, labels ...Label) *Histogram {
	if opts.MaxPow < opts.MinPow || opts.MinPow < 0 || opts.MaxPow > 62 {
		panic(fmt.Sprintf("obs: metric %s: invalid bucket range 2^%d..2^%d", name, opts.MinPow, opts.MaxPow))
	}
	scale := opts.Scale
	if scale == 0 {
		scale = 1
	}
	h := &Histogram{
		minPow:  uint(opts.MinPow),
		scale:   scale,
		buckets: make([]atomic.Int64, opts.MaxPow-opts.MinPow+2), // finite buckets + overflow
	}
	r.register(name, help, typeHistogram, labels, h)
	return h
}

// Counter is a monotone counter. Increment-only; reads are for tests
// and the scrape path.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the exposition to stay a valid
// counter; this is not checked on the hot path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) collect(b []byte, fam, labels string) []byte {
	return appendSample(b, fam, labels, float64(c.v.Load()))
}

// Gauge is a settable instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) collect(b []byte, fam, labels string) []byte {
	return appendSample(b, fam, labels, float64(g.v.Load()))
}

// funcCollector adapts a scrape-time callback.
type funcCollector func() float64

func (f funcCollector) collect(b []byte, fam, labels string) []byte {
	return appendSample(b, fam, labels, f())
}

// Histogram is a fixed-bucket exponential histogram over non-negative
// integer values (durations in nanoseconds, counts, bytes). Bucket i
// counts observations v with v <= 2^(minPow+i); the last bucket is the
// +Inf overflow. Observe is wait-free: one bits.Len64 plus two
// uncontended atomic adds, no allocation, no lock — cheap enough to sit
// on the query path.
type Histogram struct {
	minPow  uint
	scale   float64
	buckets []atomic.Int64 // per-bucket (non-cumulative); cumulated at scrape
	sum     atomic.Int64   // native units
}

// Observe records v (negative values clamp to 0).
func (h *Histogram) Observe(v int64) {
	u := uint64(v)
	if v < 0 {
		u, v = 0, 0
	}
	// Bucket i covers (2^(minPow+i-1), 2^(minPow+i)]; values at or
	// below 2^minPow land in bucket 0.
	var idx int
	if u > 1<<h.minPow {
		idx = bits.Len64((u - 1) >> h.minPow)
	}
	if idx >= len(h.buckets) {
		idx = len(h.buckets) - 1
	}
	h.buckets[idx].Add(1)
	h.sum.Add(v)
}

// ObserveDuration records d in nanoseconds (pair with Scale: 1e-9 to
// expose seconds).
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the sum of observed values in native units.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

func (h *Histogram) collect(b []byte, fam, labels string) []byte {
	// Cumulate into the canonical _bucket/_sum/_count triplet. The
	// per-bucket loads are not a consistent snapshot under concurrent
	// observes — the standard (and accepted) histogram scrape race; the
	// cumulative counts it produces are still monotone per bucket.
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		var le string
		if i == len(h.buckets)-1 {
			le = "+Inf"
		} else {
			le = formatFloat(math.Ldexp(1, int(h.minPow)+i) * h.scale)
		}
		b = appendSample(b, fam+"_bucket", joinLabels(labels, `le="`+le+`"`), float64(cum))
	}
	b = appendSample(b, fam+"_sum", labels, float64(h.sum.Load())*h.scale)
	b = appendSample(b, fam+"_count", labels, float64(cum))
	return b
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}
