package experiments

import (
	"fmt"
	"math"

	"skewsim/internal/bitvec"
	"skewsim/internal/core"
	"skewsim/internal/datagen"
	"skewsim/internal/dist"
	"skewsim/internal/lsf"
)

// AblationConfig parameterizes the design-decision ablations of
// DESIGN.md (D1: stopping rule, D2: conditional weighting).
type AblationConfig struct {
	N           int
	Alpha       float64
	Queries     int
	Repetitions int
	Seed        uint64
}

// DefaultAblationConfig keeps the runtime to a few seconds.
func DefaultAblationConfig() AblationConfig {
	return AblationConfig{N: 800, Alpha: 2.0 / 3, Queries: 30, Repetitions: 4, Seed: 51}
}

// Ablation quantifies the paper's two distinguishing design choices on
// the Figure 1 profile:
//
//   - D1, stopping rule: the per-branch ∏p ≤ 1/n rule vs a Chosen-Path
//     fixed depth, holding the (correlated) thresholds fixed. Measured
//     as index filter volume — the rule is what shortens rare-element
//     branches.
//   - D2, conditional weighting: the p̂-weighted thresholds of §6 vs the
//     uniform adversarial thresholds of §5 on the same correlated
//     workload. Measured as query candidates and recall.
func Ablation(cfg AblationConfig) (*Table, error) {
	if cfg.N < 10 || cfg.Queries < 1 || cfg.Repetitions < 1 {
		return nil, fmt.Errorf("experiments: invalid ablation config %+v", cfg)
	}
	d := dist.MustProduct(dist.Fig1Profile(500, 0.25))
	w, err := datagen.NewCorrelatedWorkload(d, cfg.N, cfg.Queries, cfg.Alpha, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: ablation: %w", err)
	}
	t := &Table{
		Title:   fmt.Sprintf("Ablations (D1 stopping rule, D2 weighting) on fig1 profile, n=%d, alpha=%.3f", cfg.N, cfg.Alpha),
		Columns: []string{"variant", "index filters", "candidates/query", "recall"},
		Notes: []string{
			"D1: fewer filters under the product rule = rare branches terminated early (index-side skew exploitation)",
			"D2: the p̂-weighting buys its asymptotic advantage at a (1+δ) constant cost; at laptop n both reach full recall",
		},
	}

	// D1: shared correlated thresholds, two stopping rules, index volume.
	clogn := d.ExpectedSize()
	c := d.C(cfg.N)
	delta := 3 / math.Sqrt(cfg.Alpha*c)
	phat := d.ConditionalProbs(cfg.Alpha)
	threshold := func(_ bitvec.Vector, j int, i uint32) float64 {
		ph := cfg.Alpha
		if int(i) < len(phat) {
			ph = phat[i]
		}
		denom := ph*clogn - float64(j)
		if denom <= 1+delta {
			return 1
		}
		return (1 + delta) / denom
	}
	// Fixed depth matched to Chosen Path's choice for this b2.
	b2 := d.ExpectedBraunBlanquet()
	k := int(math.Ceil(math.Log(float64(cfg.N)) / math.Log(1/b2)))
	for _, variant := range []struct {
		name string
		stop lsf.StopRule
		dep  int
	}{
		{"D1 product-rule stop", lsf.ProductStopRule(cfg.N), 0},
		{"D1 fixed-depth stop", lsf.FixedDepthStopRule(k), k + 1},
	} {
		engine, err := lsf.NewEngine(cfg.N, lsf.Params{
			Seed: cfg.Seed + 1, Probs: d.Probs(), Threshold: threshold,
			Stop: variant.stop, MaxDepth: variant.dep,
		})
		if err != nil {
			return nil, err
		}
		ix, err := lsf.BuildIndex(engine, w.Data)
		if err != nil {
			return nil, err
		}
		t.AddRow(variant.name, ix.Stats().TotalFilters, "-", "-")
	}

	// D2: full SkewSearch in correlated vs adversarial threshold mode on
	// the same workload.
	for _, variant := range []struct {
		name       string
		correlated bool
	}{
		{"D2 p̂-weighted thresholds (§6)", true},
		{"D2 uniform thresholds (§5)", false},
	} {
		var ix *core.Index
		if variant.correlated {
			ix, err = core.BuildCorrelated(d, w.Data, cfg.Alpha, core.Options{Seed: cfg.Seed + 2, Repetitions: cfg.Repetitions})
		} else {
			ix, err = core.BuildAdversarial(d, w.Data, cfg.Alpha/1.3, core.Options{Seed: cfg.Seed + 2, Repetitions: cfg.Repetitions})
		}
		if err != nil {
			return nil, err
		}
		cands, hits := 0, 0
		for qi, q := range w.Queries {
			res := ix.Query(q)
			cands += res.Stats.Candidates
			if res.Found && res.ID == w.Targets[qi] {
				hits++
			}
		}
		qf := float64(cfg.Queries)
		t.AddRow(variant.name, "-", float64(cands)/qf, float64(hits)/qf)
	}
	return t, nil
}
