package experiments

import (
	"fmt"
	"math"

	"skewsim/internal/rho"
)

// Sec7Adv reproduces the two worked adversarial examples of §7.1: the
// two-block query profile with half the bits at pa = 1/4 and half at
// pb = n^-0.9, solved for b1 = 1/3 and b1 = 2/3, against the exponents
// the paper prints for Chosen Path and prefix filtering.
func Sec7Adv() (*Table, error) {
	t := &Table{
		Title:   "§7.1 worked examples: adversarial query exponents (half pa=1/4, half pb=n^-0.9)",
		Columns: []string{"b1", "n", "rho(SkewSearch)", "paper limit", "rho(ChosenPath)", "paper CP", "prefix exponent", "paper prefix"},
		Notes: []string{
			"success criteria: b1=1/3 SkewSearch -> log(2/3)/log(1/4) ≈ 0.293 vs CP ≈ 0.528; b1=2/3 SkewSearch -> 0 vs CP ≈ 0.195 and prefix Ω(n^0.1)",
		},
	}
	type example struct {
		b1         float64
		paperOurs  string
		paperCP    float64
		paperPrefx string
	}
	limit13 := math.Log(2.0/3) / math.Log(0.25)
	examples := []example{
		{b1: 1.0 / 3, paperOurs: fmt.Sprintf("%.4f", limit13), paperCP: math.Log(1.0/3) / math.Log(0.125), paperPrefx: "1.0 (no guarantee)"},
		{b1: 2.0 / 3, paperOurs: "0 (n^eps)", paperCP: math.Log(2.0/3) / math.Log(0.125), paperPrefx: "0.1 (Omega(n^0.1))"},
	}
	for _, ex := range examples {
		for _, n := range []float64{1e6, 1e12, 1e24} {
			pb := math.Pow(n, -0.9)
			ts := rho.Terms{{P: 0.25, W: 500}, {P: pb, W: 500}}
			ours, err := rho.AdversarialQueryRho(ts, ex.b1)
			if err != nil {
				return nil, fmt.Errorf("experiments: sec7adv: %w", err)
			}
			// Chosen Path on this instance: b2 = mean probability over q.
			meanP := ts.SumP() / ts.Count()
			cp, err := rho.ChosenPathRho(ex.b1, meanP)
			if err != nil {
				return nil, fmt.Errorf("experiments: sec7adv: %w", err)
			}
			pf, err := rho.PrefixFilterExponent(ts, n)
			if err != nil {
				return nil, fmt.Errorf("experiments: sec7adv: %w", err)
			}
			t.AddRow(ex.b1, fmt.Sprintf("%.0e", n), ours, ex.paperOurs, cp, ex.paperCP, pf, ex.paperPrefx)
		}
	}
	return t, nil
}

// Sec7Corr reproduces the §7.2 worked example for correlated queries:
// 4·C·log n bits at pa = 1/4 plus n^0.9·C·log n bits at pb = n^-0.9 with
// α = 2/3. The paper's claim: SkewSearch runs in O(n^ε) for every ε > 0
// while prefix filtering needs Ω(n^0.1); our table shows the solved ρ
// marching to 0 as n grows.
func Sec7Corr() (*Table, error) {
	t := &Table{
		Title:   "§7.2 worked example: correlated exponents (4Clog n bits at 1/4, n^0.9·Clog n bits at n^-0.9, alpha = 2/3)",
		Columns: []string{"n", "rho(SkewSearch)", "rho(ChosenPath)", "prefix exponent", "paper prefix"},
		Notes: []string{
			"success criteria: SkewSearch rho -> 0 with n (the O(n^eps) claim); prefix exponent pinned at 0.1",
		},
	}
	const (
		alpha = 2.0 / 3
		clog  = 100.0
	)
	for _, n := range []float64{1e3, 1e6, 1e12, 1e24, 1e48} {
		ts := rho.Terms{
			{P: 0.25, W: 4 * clog},
			{P: math.Pow(n, -0.9), W: math.Pow(n, 0.9) * clog},
		}
		ours, err := rho.CorrelatedRho(ts, alpha)
		if err != nil {
			return nil, fmt.Errorf("experiments: sec7corr: %w", err)
		}
		cp, err := rho.CorrelatedChosenPath(ts, alpha)
		if err != nil {
			return nil, fmt.Errorf("experiments: sec7corr: %w", err)
		}
		pf, err := rho.PrefixFilterExponent(ts, n)
		if err != nil {
			return nil, fmt.Errorf("experiments: sec7corr: %w", err)
		}
		t.AddRow(fmt.Sprintf("%.0e", n), ours, cp, pf, 0.1)
	}
	return t, nil
}
