package experiments

import (
	"fmt"
	"math"

	"skewsim/internal/datagen"
)

// Fig2Config parameterizes the frequency-spectrum plots.
type Fig2Config struct {
	// N is the notional dataset size used for the y-axis normalization
	// 1 + log_n(p_j) of the paper's plots.
	N int
	// PointsPerDataset is the number of ranks sampled geometrically from
	// each analog's spectrum.
	PointsPerDataset int
}

// DefaultFig2Config mirrors the paper's presentation at laptop scale.
func DefaultFig2Config() Fig2Config {
	return Fig2Config{N: 100000, PointsPerDataset: 12}
}

// Fig2 reproduces Figure 2: the item-frequency distributions of the ten
// dataset analogs, reported exactly as the paper plots them — the y value
// 1 + log_n(p_j) against both x-axes, j/d (left plot) and log_d(j)
// (right plot). A plain Zipfian would be linear in the right plot; the
// analogs are piecewise-linear there by construction, matching §8's
// "piecewise Zipfian" observation.
func Fig2(cfg Fig2Config) (*Table, error) {
	if cfg.N < 2 || cfg.PointsPerDataset < 2 {
		return nil, fmt.Errorf("experiments: fig2 config invalid: %+v", cfg)
	}
	t := &Table{
		Title:   fmt.Sprintf("Figure 2: frequency spectra of dataset analogs (y = 1 + log_n p_j, n = %d)", cfg.N),
		Columns: []string{"dataset", "rank j", "j/d (left x)", "log_d j (right x)", "1+log_n p_j (y)"},
		Notes: []string{
			"success criterion: every analog shows significant skew (y spans >= 0.3) and is piecewise-linear in log_d j",
			"substitution: synthetic analogs of the Mann et al. datasets; see DESIGN.md",
		},
	}
	logn := math.Log(float64(cfg.N))
	for _, prof := range datagen.Profiles() {
		freqs := prof.Frequencies()
		d := len(freqs)
		logd := math.Log(float64(d))
		// Geometric rank sample from 1 to d.
		ratio := math.Pow(float64(d), 1/float64(cfg.PointsPerDataset-1))
		rank := 1.0
		prev := 0
		for k := 0; k < cfg.PointsPerDataset; k++ {
			j := int(math.Round(rank))
			if j < 1 {
				j = 1
			}
			if j > d {
				j = d
			}
			if j != prev {
				p := freqs[j-1]
				y := 1 + math.Log(p)/logn
				t.AddRow(prof.Name, j, float64(j)/float64(d), math.Log(float64(j))/logd, y)
				prev = j
			}
			rank *= ratio
		}
	}
	return t, nil
}
