package experiments

import (
	"fmt"
	"math"

	"skewsim/internal/dist"
)

// MotivatingConfig parameterizes the §1 motivating example.
type MotivatingConfig struct {
	Dim int     // dimension of the harmonic distribution
	I1  float64 // required intersection fraction i1 (relative to |q|)
}

// DefaultMotivatingConfig mirrors the introduction's setting.
func DefaultMotivatingConfig() MotivatingConfig {
	return MotivatingConfig{Dim: 1 << 20, I1: 0.5}
}

// Motivating reproduces the introduction's frequent/rare split argument
// on the harmonic distribution (Pr[x_k = 1] = 1/k).
//
// A single LSH-style search pays ρ = log(i1)/log(i2). The split strategy
// partitions q into two equal-weight halves ("equal-sized vectors" in the
// paper): q_frequent holds the set bits below the index t* where half of
// q's expected weight lies, q_rare the rest. For every ℓ, the planted
// vector overlaps q_frequent in ℓ|q| bits or q_rare in (i1−ℓ)|q| bits, so
// running both half-searches is correct. Each half-search is its own
// similarity instance over a query of size |q|/2, so its exponent uses
// fractions renormalized by the half size:
//
//	ρ_frequent = log(2ℓ) / log(2·i_frequent),
//	ρ_rare     = log(2(i1−ℓ)) / log(2·i_rare),
//
// (the paper's displayed formulas elide this renormalization; without it
// the balanced split never beats the single search, contradicting the
// text's conclusion, so we implement the normalized form). Balancing ℓ
// gives a strictly smaller exponent exactly when i_frequent ≫ i_rare.
func Motivating(cfg MotivatingConfig) (*Table, error) {
	if cfg.Dim < 16 || cfg.I1 <= 0 || cfg.I1 >= 1 {
		return nil, fmt.Errorf("experiments: invalid motivating config %+v", cfg)
	}
	probs := dist.Harmonic(cfg.Dim)

	// Split index t*: half of q's expected weight (Σ p_k) on each side.
	var sum float64
	for _, p := range probs {
		sum += p
	}
	var acc float64
	tStar := 0
	for k, p := range probs {
		acc += p
		if acc >= sum/2 {
			tStar = k
			break
		}
	}

	// Background intersection fractions (normalized by |q| ≈ Σ p_k):
	// i2 = Σ p², split at t*.
	var sumSq, sumSqFreq float64
	for k, p := range probs {
		sumSq += p * p
		if k <= tStar {
			sumSqFreq += p * p
		}
	}
	i2 := sumSq / sum
	iFreq := sumSqFreq / sum
	iRare := i2 - iFreq
	if iRare <= 0 || iFreq <= iRare {
		return nil, fmt.Errorf("experiments: harmonic profile did not produce skewed halves (iFreq=%v iRare=%v)", iFreq, iRare)
	}

	rhoSingle := math.Log(cfg.I1) / math.Log(i2)

	// Balance ℓ over (0, i1) for the renormalized half-search exponents.
	bestL, bestRho := 0.0, math.Inf(1)
	const steps = 20000
	for s := 1; s < steps; s++ {
		l := cfg.I1 * float64(s) / steps
		if 2*l >= 1 || 2*(cfg.I1-l) >= 1 {
			continue // sub-similarity must stay below 1
		}
		rf := math.Log(2*l) / math.Log(2*iFreq)
		rr := math.Log(2*(cfg.I1-l)) / math.Log(2*iRare)
		if r := math.Max(rf, rr); r < bestRho {
			bestRho, bestL = r, l
		}
	}

	t := &Table{
		Title:   fmt.Sprintf("§1 motivating example: harmonic distribution, d = %d, i1 = %.2f", cfg.Dim, cfg.I1),
		Columns: []string{"strategy", "exponent", "detail"},
		Notes: []string{
			"success criterion: balanced split exponent strictly below single-search exponent (skew exploited)",
			fmt.Sprintf("split index t* = %d; i2 = %.5f, i_frequent = %.5f, i_rare = %.6f", tStar, i2, iFreq, iRare),
		},
	}
	t.AddRow("single search (rho = log i1 / log i2)", rhoSingle, fmt.Sprintf("i2 = %.5f", i2))
	t.AddRow("frequent/rare split (balanced)", bestRho, fmt.Sprintf("best l = %.4f", bestL))
	if bestRho >= rhoSingle {
		t.Notes = append(t.Notes, "WARNING: split did not beat single search")
	}
	return t, nil
}
