package experiments

import (
	"fmt"

	"skewsim/internal/datagen"
	"skewsim/internal/dist"
	"skewsim/internal/hashing"
)

// Table1Config parameterizes the independence-ratio measurement.
type Table1Config struct {
	N       int // vectors generated per analog
	Samples int // random subsets I per (dataset, |I|)
	Seed    uint64
}

// DefaultTable1Config keeps the runtime laptop-friendly.
func DefaultTable1Config() Table1Config {
	return Table1Config{N: 2000, Samples: 400, Seed: 20180409}
}

// Table1 reproduces Table 1: for each dataset analog, the ratio between
// the observed expected number of vectors with 1s on a random subset I
// and the number predicted under independence, for |I| = 2 and |I| = 3.
// The paper's measured values on the real datasets are shown alongside
// for shape comparison (the analog generator is calibrated to the |I|=2
// column; see internal/datagen).
func Table1(cfg Table1Config) (*Table, error) {
	if cfg.N < 10 || cfg.Samples < 10 {
		return nil, fmt.Errorf("experiments: table1 config too small: %+v", cfg)
	}
	t := &Table{
		Title:   "Table 1: independence ratios (observed / predicted co-occurrence)",
		Columns: []string{"dataset", "|I|=2 measured", "|I|=2 paper", "|I|=3 measured", "|I|=3 paper"},
		Notes: []string{
			"success criteria: all measured ratios >= 1; |I|=3 >= |I|=2 per dataset; SPOTIFY analog far above AOL analog",
			"measured on weighted random subsets I (probability proportional to item mass) so frequent items dominate as in real co-occurrence counts",
		},
	}
	rng := hashing.NewSplitMix64(cfg.Seed)
	for _, prof := range datagen.Profiles() {
		data := prof.Generate(rng, cfg.N)
		r2 := dist.IndependenceRatioWeighted(data, prof.Dim, 2, cfg.Samples, rng.Next())
		r3 := dist.IndependenceRatioWeighted(data, prof.Dim, 3, cfg.Samples, rng.Next())
		t.AddRow(prof.Name, r2, prof.PairRatio, r3, prof.TripleRatioPaper)
	}
	return t, nil
}
