package experiments

import (
	"fmt"
	"math"

	"skewsim/internal/bruteforce"
	"skewsim/internal/chosenpath"
	"skewsim/internal/core"
	"skewsim/internal/datagen"
	"skewsim/internal/dist"
	"skewsim/internal/prefix"
	"skewsim/internal/rho"
	"skewsim/internal/stats"
)

// ScalingConfig parameterizes the empirical scaling study.
type ScalingConfig struct {
	Ns          []int   // dataset sizes (geometric axis)
	B1          float64 // similarity threshold of the adversarial search
	C           float64 // model constant: Σp = C·ln n
	PA          float64 // frequent-block probability
	RareExp     float64 // rare-block probability = n^-RareExp (§7.1 uses 0.9)
	Queries     int     // queries measured per n
	Repetitions int     // filter instances for both LSF structures
	Seed        uint64
}

// DefaultScalingConfig reproduces the first §7.1 worked example (half the
// query mass on p = 1/4, half on p = n^-0.9, b1 = 1/3), where the
// predicted exponents separate widely: SkewSearch ≈ 0.29, Chosen Path
// ≈ 0.53, prefix filtering ≈ 0.1, brute force 1.
func DefaultScalingConfig() ScalingConfig {
	return ScalingConfig{
		Ns:          []int{500, 1000, 2000, 4000},
		B1:          1.0 / 3,
		C:           20,
		PA:          0.25,
		RareExp:     0.9,
		Queries:     30,
		Repetitions: 8,
		Seed:        97,
	}
}

// Scaling is the library's empirical validation of Theorem 2 against the
// baselines: planted adversarial queries on the §7.1 two-block profile,
// measuring the mean number of candidate occurrences per query (the
// quantity Lemma 7 bounds by n^ρ) for SkewSearch, Chosen Path, prefix
// filtering, and brute force, then fitting empirical exponents against
// the ρ equations. The expected ordering at these exponents:
// prefix < SkewSearch < Chosen Path < brute force, with SkewSearch and
// prefix trading places once all probabilities are Ω(1) (see fig1).
func Scaling(cfg ScalingConfig) (*Table, error) {
	if len(cfg.Ns) < 2 || cfg.Queries < 1 || cfg.Repetitions < 1 {
		return nil, fmt.Errorf("experiments: invalid scaling config %+v", cfg)
	}
	t := &Table{
		Title: fmt.Sprintf("Scaling (§7.1 instance): mean candidates/query vs n (pa=%.2f, pb=n^-%.1f, b1=%.3f, C=%.0f, reps=%d)",
			cfg.PA, cfg.RareExp, cfg.B1, cfg.C, cfg.Repetitions),
		Columns: []string{"n", "SkewSearch", "ChosenPath", "PrefixFilter", "BruteForce", "recall(SkewSearch)", "recall(ChosenPath)"},
		Notes: []string{
			"success criteria: exponent(SkewSearch) < exponent(ChosenPath) < exponent(BruteForce)=1; recalls high",
			"prefix filtering degenerates at this permissive b1 (prefixes are 2/3 of each set, so frequent tokens flood the lists);",
			"the paper's Omega(n^0.1) for it is a best-case lower bound (rarest-token probe), reported below as 'predicted prefix exponent'",
		},
	}

	costSkew := make([]float64, 0, len(cfg.Ns))
	costCP := make([]float64, 0, len(cfg.Ns))
	costPF := make([]float64, 0, len(cfg.Ns))
	costBF := make([]float64, 0, len(cfg.Ns))

	for idx, n := range cfg.Ns {
		logn := math.Log(float64(n))
		pb := math.Pow(float64(n), -cfg.RareExp)
		// Equal mass per block: na·pa = nb·pb = C·ln n / 2.
		na := int(math.Ceil(cfg.C * logn / (2 * cfg.PA)))
		nb := int(math.Ceil(cfg.C * logn / (2 * pb)))
		probs := dist.TwoBlock(na, cfg.PA, nb, pb)
		d := dist.MustProduct(probs)
		w, err := datagen.NewAdversarialWorkload(d, n, cfg.Queries, cfg.B1, cfg.Seed+uint64(idx))
		if err != nil {
			return nil, fmt.Errorf("experiments: scaling n=%d: %w", n, err)
		}

		skew, err := core.BuildAdversarial(d, w.Data, cfg.B1, core.Options{
			Seed: cfg.Seed + 1000, Repetitions: cfg.Repetitions,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: scaling n=%d: %w", n, err)
		}
		b2 := d.ExpectedBraunBlanquet()
		cp, err := chosenpath.Build(w.Data, cfg.B1, b2, chosenpath.Options{
			Seed: cfg.Seed + 2000, Repetitions: cfg.Repetitions,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: scaling n=%d: %w", n, err)
		}
		pf, err := prefix.Build(w.Data, probs, cfg.B1, prefix.Options{})
		if err != nil {
			return nil, fmt.Errorf("experiments: scaling n=%d: %w", n, err)
		}
		bf, err := bruteforce.Build(w.Data, bruteforce.Options{})
		if err != nil {
			return nil, fmt.Errorf("experiments: scaling n=%d: %w", n, err)
		}

		var cSkew, cCP, cPF, cBF float64
		hitSkew, hitCP := 0, 0
		for _, q := range w.Queries {
			rs := skew.QueryBest(q)
			cSkew += float64(rs.Stats.Candidates)
			if rs.Found && rs.Similarity >= cfg.B1-1e-9 {
				hitSkew++
			}
			rc := cp.QueryBest(q)
			cCP += float64(rc.Stats.Candidates)
			if rc.Found && rc.Similarity >= cfg.B1-1e-9 {
				hitCP++
			}
			rp := pf.QueryBest(q)
			cPF += float64(rp.Stats.Candidates)
			rb := bf.QueryBest(q)
			cBF += float64(rb.Stats.Candidates)
		}
		qf := float64(cfg.Queries)
		cSkew, cCP, cPF, cBF = cSkew/qf, cCP/qf, cPF/qf, cBF/qf
		costSkew = append(costSkew, cSkew)
		costCP = append(costCP, cCP)
		costPF = append(costPF, cPF)
		costBF = append(costBF, cBF)
		t.AddRow(n, cSkew, cCP, cPF, cBF, float64(hitSkew)/qf, float64(hitCP)/qf)
	}

	appendFit := func(name string, costs []float64) {
		fit, err := stats.FitExponent(cfg.Ns, costs)
		if err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("%s: exponent fit failed: %v", name, err))
			return
		}
		t.Notes = append(t.Notes, fmt.Sprintf("fitted exponent %s: %.3f (R²=%.3f)", name, fit.Slope, fit.R2))
	}
	appendFit("SkewSearch", costSkew)
	appendFit("ChosenPath", costCP)
	appendFit("PrefixFilter", costPF)
	appendFit("BruteForce", costBF)

	// Predicted exponents at the largest n.
	nMax := cfg.Ns[len(cfg.Ns)-1]
	pbMax := math.Pow(float64(nMax), -cfg.RareExp)
	// Equal-mass blocks put equal numbers of frequent and rare bits in a
	// typical query, so the query composition has equal weights.
	ts := rho.Terms{{P: cfg.PA, W: 1}, {P: pbMax, W: 1}}
	if r, err := rho.AdversarialQueryRho(ts, cfg.B1); err == nil {
		t.Notes = append(t.Notes, fmt.Sprintf("predicted rho SkewSearch: %.3f", r))
	}
	if r, err := rho.ChosenPathRho(cfg.B1, ts.SumP()/ts.Count()); err == nil {
		t.Notes = append(t.Notes, fmt.Sprintf("predicted rho ChosenPath: %.3f", r))
	}
	if r, err := rho.PrefixFilterExponent(ts, float64(nMax)); err == nil {
		t.Notes = append(t.Notes, fmt.Sprintf("predicted prefix exponent: %.3f", r))
	}
	return t, nil
}
