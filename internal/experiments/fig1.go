package experiments

import (
	"fmt"

	"skewsim/internal/rho"
)

// Fig1Config parameterizes the Figure 1 sweep.
type Fig1Config struct {
	Alpha  float64 // correlation of the planted pair (paper: 2/3)
	Points int     // sweep resolution over p ∈ (0, 0.5]
	Half   float64 // weight of each probability block (any positive value)
}

// DefaultFig1Config matches the paper's setting.
func DefaultFig1Config() Fig1Config {
	return Fig1Config{Alpha: 2.0 / 3, Points: 20, Half: 500}
}

// Fig1 reproduces Figure 1: the ρ value of SkewSearch (red line) versus
// Chosen Path (blue line) for the distribution in which half the bits are
// set with probability p and the other half with probability p/8, with
// sought correlation α. Prefix filtering has ρ-value 1 throughout (all
// probabilities are Ω(1)), which the caption notes as the reason it is
// omitted from the plot; we include it as a column.
func Fig1(cfg Fig1Config) (*Table, error) {
	if cfg.Points < 2 {
		return nil, fmt.Errorf("experiments: fig1 needs >= 2 points")
	}
	t := &Table{
		Title:   fmt.Sprintf("Figure 1: rho vs p (alpha = %.4f, profile: half p, half p/8)", cfg.Alpha),
		Columns: []string{"p", "rho(SkewSearch)", "rho(ChosenPath)", "rho(PrefixFilter)"},
		Notes: []string{
			"success criterion: SkewSearch strictly below Chosen Path at every p (they meet only as p -> 0 skew vanishes in the b2 mix)",
			"Chosen Path per §7.2: b2 = E[B(far)] = (65/72)p, b1 = alpha + (1-alpha)b2, rho = log(b1)/log(b2)",
			"prefix filtering: all item probabilities are Omega(1), so no sublinear guarantee (rho = 1)",
		},
	}
	// The figure's x-axis spans p ∈ (0, 1); the ρ equations are valid for
	// any p < 1 even though the sampling model caps p_i at 1/2.
	for k := 1; k <= cfg.Points; k++ {
		p := float64(k) / float64(cfg.Points+1)
		ts := rho.Terms{{P: p, W: cfg.Half}, {P: p / 8, W: cfg.Half}}
		ours, err := rho.CorrelatedRho(ts, cfg.Alpha)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig1 p=%v: %w", p, err)
		}
		cp, err := rho.CorrelatedChosenPath(ts, cfg.Alpha)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig1 p=%v: %w", p, err)
		}
		t.AddRow(p, ours, cp, 1.0)
	}
	return t, nil
}
