// Package experiments regenerates every quantitative artifact of the
// paper (§1's motivating example, the §7 worked examples, §8's figures
// and Table 1) plus the empirical scaling and recall studies that
// validate Theorems 1 and 2 on the simulator. Each experiment is registered by the paper artifact's
// id (fig1, fig2, table1, sec7adv, sec7corr, motivating, scaling,
// recall), plus the library's own studies (ablation, estimated), and
// produces plain-text tables that can also be emitted as CSV.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result: a titled grid of cells with
// optional free-text notes (assumptions, success criteria, paper-quoted
// values).
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes an aligned text table.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s ==\n", t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) error {
		var sb strings.Builder
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if i < len(widths) {
				for pad := len(cell); pad < widths[i]; pad++ {
					sb.WriteByte(' ')
				}
			}
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
		return err
	}
	if err := writeRow(t.Columns); err != nil {
		return err
	}
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := writeRow(sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// CSV writes the table as RFC-4180-ish CSV (quotes only when needed).
func (t *Table) CSV(w io.Writer) error {
	writeLine := func(cells []string) error {
		out := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			out[i] = c
		}
		_, err := fmt.Fprintln(w, strings.Join(out, ","))
		return err
	}
	if err := writeLine(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeLine(row); err != nil {
			return err
		}
	}
	return nil
}
