package experiments

import (
	"strconv"
	"testing"
)

func cell(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tab.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric: %v", row, col, tab.Rows[row][col], err)
	}
	return v
}

func TestFig1SuccessCriterion(t *testing.T) {
	tab, err := Fig1(Fig1Config{Alpha: 2.0 / 3, Points: 10, Half: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 10 {
		t.Fatalf("got %d rows", len(tab.Rows))
	}
	for r := range tab.Rows {
		ours := cell(t, tab, r, 1)
		cp := cell(t, tab, r, 2)
		if ours >= cp {
			t.Errorf("row %d: SkewSearch rho %v not below Chosen Path %v", r, ours, cp)
		}
		if pf := cell(t, tab, r, 3); pf != 1 {
			t.Errorf("row %d: prefix rho %v, want 1", r, pf)
		}
	}
}

func TestFig1ConfigValidation(t *testing.T) {
	if _, err := Fig1(Fig1Config{Alpha: 0.5, Points: 1}); err == nil {
		t.Error("points < 2 should fail")
	}
}

func TestFig2SuccessCriterion(t *testing.T) {
	tab, err := Fig2(Fig2Config{N: 10000, PointsPerDataset: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Group rows per dataset; y must be non-increasing in rank and span
	// a nontrivial range (skew).
	spans := map[string][2]float64{}
	prevY := map[string]float64{}
	for r := range tab.Rows {
		name := tab.Rows[r][0]
		y := cell(t, tab, r, 4)
		if prev, ok := prevY[name]; ok && y > prev+1e-9 {
			t.Errorf("%s: y increased with rank", name)
		}
		prevY[name] = y
		s, ok := spans[name]
		if !ok {
			s = [2]float64{y, y}
		}
		if y < s[0] {
			s[0] = y
		}
		if y > s[1] {
			s[1] = y
		}
		spans[name] = s
	}
	if len(spans) != 10 {
		t.Fatalf("expected 10 datasets, got %d", len(spans))
	}
	for name, s := range spans {
		if s[1]-s[0] < 0.2 {
			t.Errorf("%s: spectrum span %v too flat for a skewed dataset", name, s[1]-s[0])
		}
	}
}

func TestFig2ConfigValidation(t *testing.T) {
	if _, err := Fig2(Fig2Config{N: 1, PointsPerDataset: 5}); err == nil {
		t.Error("bad N should fail")
	}
}

func TestTable1SuccessCriteria(t *testing.T) {
	tab, err := Table1(Table1Config{N: 400, Samples: 150, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 10 {
		t.Fatalf("got %d rows", len(tab.Rows))
	}
	var aol2, spotify2 float64
	for r := range tab.Rows {
		name := tab.Rows[r][0]
		r2 := cell(t, tab, r, 1)
		r3 := cell(t, tab, r, 3)
		if r2 < 0.9 {
			t.Errorf("%s: |I|=2 ratio %v below 1", name, r2)
		}
		if r3 < r2*0.9 {
			t.Errorf("%s: |I|=3 ratio %v not above |I|=2 ratio %v", name, r3, r2)
		}
		switch name {
		case "AOL":
			aol2 = r2
		case "SPOTIFY":
			spotify2 = r2
		}
	}
	if spotify2 < 2*aol2 {
		t.Errorf("SPOTIFY ratio %v should dwarf AOL %v", spotify2, aol2)
	}
}

func TestTable1ConfigValidation(t *testing.T) {
	if _, err := Table1(Table1Config{N: 1, Samples: 1}); err == nil {
		t.Error("tiny config should fail")
	}
}

func TestSec7AdvMatchesPaperNumbers(t *testing.T) {
	tab, err := Sec7Adv()
	if err != nil {
		t.Fatal(err)
	}
	// Rows come in two groups of three (b1 = 1/3, then 2/3), with n
	// increasing within each; the last row of each group is the closest
	// to the asymptotic claim.
	if len(tab.Rows) != 6 {
		t.Fatalf("got %d rows", len(tab.Rows))
	}
	// b1 = 1/3 at n = 1e24: ours ≈ 0.2925, CP ≈ 0.5283.
	if got := cell(t, tab, 2, 2); got < 0.29 || got > 0.30 {
		t.Errorf("b1=1/3 rho = %v, want ≈0.2925", got)
	}
	if got := cell(t, tab, 2, 4); got < 0.52 || got > 0.54 {
		t.Errorf("b1=1/3 CP rho = %v, want ≈0.528", got)
	}
	// b1 = 2/3 at n = 1e24: ours small, CP ≈ 0.195, prefix 0.1.
	if got := cell(t, tab, 5, 2); got > 0.05 {
		t.Errorf("b1=2/3 rho = %v, want near 0", got)
	}
	if got := cell(t, tab, 5, 4); got < 0.19 || got > 0.20 {
		t.Errorf("b1=2/3 CP rho = %v, want ≈0.195", got)
	}
	if got := cell(t, tab, 5, 6); got < 0.099 || got > 0.101 {
		t.Errorf("b1=2/3 prefix exponent = %v, want 0.1", got)
	}
}

func TestSec7CorrMatchesPaperClaims(t *testing.T) {
	tab, err := Sec7Corr()
	if err != nil {
		t.Fatal(err)
	}
	prev := 10.0
	for r := range tab.Rows {
		ours := cell(t, tab, r, 1)
		if ours > prev+1e-12 {
			t.Errorf("row %d: rho %v not decreasing (prev %v)", r, ours, prev)
		}
		prev = ours
		if pf := cell(t, tab, r, 3); pf < 0.099 || pf > 0.101 {
			t.Errorf("row %d: prefix exponent %v, want 0.1", r, pf)
		}
	}
	if prev > 0.02 {
		t.Errorf("final rho %v should be near 0", prev)
	}
}

func TestMotivatingSplitBeatsSingle(t *testing.T) {
	tab, err := Motivating(MotivatingConfig{Dim: 1 << 16, I1: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	single := cell(t, tab, 0, 1)
	split := cell(t, tab, 1, 1)
	if split >= single {
		t.Errorf("split %v should beat single %v", split, single)
	}
	for _, n := range tab.Notes {
		if n == "WARNING: split did not beat single search" {
			t.Error("experiment flagged failure")
		}
	}
}

func TestMotivatingConfigValidation(t *testing.T) {
	if _, err := Motivating(MotivatingConfig{Dim: 2, I1: 0.5}); err == nil {
		t.Error("tiny dim should fail")
	}
	if _, err := Motivating(MotivatingConfig{Dim: 100, I1: 1.5}); err == nil {
		t.Error("bad i1 should fail")
	}
}

func TestScalingSmallConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling experiment is slow")
	}
	tab, err := Scaling(ScalingConfig{
		Ns:          []int{200, 400, 800},
		B1:          1.0 / 3,
		C:           15,
		PA:          0.25,
		RareExp:     0.9,
		Queries:     10,
		Repetitions: 4,
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("got %d rows", len(tab.Rows))
	}
	for r := range tab.Rows {
		skew := cell(t, tab, r, 1)
		bf := cell(t, tab, r, 4)
		if skew >= bf {
			t.Errorf("row %d: SkewSearch %v not below brute force %v", r, skew, bf)
		}
		if recall := cell(t, tab, r, 5); recall < 0.8 {
			t.Errorf("row %d: SkewSearch recall %v", r, recall)
		}
	}
}

func TestScalingConfigValidation(t *testing.T) {
	if _, err := Scaling(ScalingConfig{Ns: []int{100}}); err == nil {
		t.Error("single n should fail")
	}
}

func TestRecallSmallConfig(t *testing.T) {
	tab, err := Recall(RecallConfig{
		N: 250, Queries: 20, C: 25,
		Alphas: []float64{2.0 / 3}, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 { // two profiles × one alpha
		t.Fatalf("got %d rows", len(tab.Rows))
	}
	for r := range tab.Rows {
		if recall := cell(t, tab, r, 2); recall < 0.85 {
			t.Errorf("row %d: recall %v", r, recall)
		}
	}
}

func TestRecallConfigValidation(t *testing.T) {
	if _, err := Recall(RecallConfig{N: 1, Queries: 1, Alphas: []float64{0.5}}); err == nil {
		t.Error("tiny config should fail")
	}
}

func TestAblationSuccessCriteria(t *testing.T) {
	tab, err := Ablation(AblationConfig{N: 400, Alpha: 2.0 / 3, Queries: 15, Repetitions: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("got %d rows", len(tab.Rows))
	}
	productFilters := cell(t, tab, 0, 1)
	fixedFilters := cell(t, tab, 1, 1)
	if productFilters >= fixedFilters {
		t.Errorf("product rule filters %v should be below fixed depth %v", productFilters, fixedFilters)
	}
	for r := 2; r < 4; r++ {
		if recall := cell(t, tab, r, 3); recall < 0.8 {
			t.Errorf("row %d recall %v", r, recall)
		}
	}
}

func TestAblationConfigValidation(t *testing.T) {
	if _, err := Ablation(AblationConfig{N: 1, Queries: 1, Repetitions: 1}); err == nil {
		t.Error("tiny config should fail")
	}
}

func TestEstimatedMatchesKnownProbabilities(t *testing.T) {
	tab, err := Estimated(EstimatedConfig{N: 300, Alpha: 2.0 / 3, Queries: 25, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("got %d rows", len(tab.Rows))
	}
	known := cell(t, tab, 0, 1)
	estimated := cell(t, tab, 1, 1)
	if known < 0.85 {
		t.Errorf("known-probability recall %v", known)
	}
	if estimated < known-0.1 {
		t.Errorf("estimated recall %v far below known %v", estimated, known)
	}
}

func TestEstimatedConfigValidation(t *testing.T) {
	if _, err := Estimated(EstimatedConfig{N: 1, Queries: 0}); err == nil {
		t.Error("tiny config should fail")
	}
}
