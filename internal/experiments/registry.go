package experiments

import (
	"fmt"
	"io"
	"slices"
)

// Runner executes one experiment with its default configuration and
// returns the resulting tables.
type Runner func() ([]*Table, error)

// registry maps experiment ids (the paper artifact names used throughout
// DESIGN.md and EXPERIMENTS.md) to runners.
var registry = map[string]Runner{
	"ablation": func() ([]*Table, error) {
		t, err := Ablation(DefaultAblationConfig())
		return wrap(t, err)
	},
	"estimated": func() ([]*Table, error) {
		t, err := Estimated(DefaultEstimatedConfig())
		return wrap(t, err)
	},
	"fig1": func() ([]*Table, error) {
		t, err := Fig1(DefaultFig1Config())
		return wrap(t, err)
	},
	"fig2": func() ([]*Table, error) {
		t, err := Fig2(DefaultFig2Config())
		return wrap(t, err)
	},
	"table1": func() ([]*Table, error) {
		t, err := Table1(DefaultTable1Config())
		return wrap(t, err)
	},
	"sec7adv": func() ([]*Table, error) {
		t, err := Sec7Adv()
		return wrap(t, err)
	},
	"sec7corr": func() ([]*Table, error) {
		t, err := Sec7Corr()
		return wrap(t, err)
	},
	"motivating": func() ([]*Table, error) {
		t, err := Motivating(DefaultMotivatingConfig())
		return wrap(t, err)
	},
	"scaling": func() ([]*Table, error) {
		t, err := Scaling(DefaultScalingConfig())
		return wrap(t, err)
	},
	"recall": func() ([]*Table, error) {
		t, err := Recall(DefaultRecallConfig())
		return wrap(t, err)
	},
}

func wrap(t *Table, err error) ([]*Table, error) {
	if err != nil {
		return nil, err
	}
	return []*Table{t}, nil
}

// IDs returns the registered experiment ids in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	return ids
}

// Run executes the experiment with the given id and renders its tables to
// w (text format, or CSV when csv is true).
func Run(id string, w io.Writer, csv bool) error {
	r, ok := registry[id]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	tables, err := r()
	if err != nil {
		return fmt.Errorf("experiments: %s: %w", id, err)
	}
	for _, t := range tables {
		if csv {
			if err := t.CSV(w); err != nil {
				return err
			}
		} else if err := t.Render(w); err != nil {
			return err
		}
	}
	return nil
}

// RunAll executes every experiment in id order.
func RunAll(w io.Writer, csv bool) error {
	for _, id := range IDs() {
		if err := Run(id, w, csv); err != nil {
			return err
		}
	}
	return nil
}
