package experiments

import (
	"fmt"
	"math"

	"skewsim/internal/core"
	"skewsim/internal/datagen"
	"skewsim/internal/dist"
)

// RecallConfig parameterizes the correctness study.
type RecallConfig struct {
	N       int
	Queries int
	C       float64 // Σp = C·ln n
	Alphas  []float64
	Seed    uint64
}

// DefaultRecallConfig covers the α range the paper's assumptions allow at
// this scale (Lemma 11 wants C·α ≥ 15).
func DefaultRecallConfig() RecallConfig {
	return RecallConfig{
		N:       600,
		Queries: 50,
		C:       25,
		Alphas:  []float64{0.5, 2.0 / 3, 0.8, 0.95},
		Seed:    71,
	}
}

// Recall validates the correctness side of Theorem 1 (via Lemmas 10/11):
// for planted queries q ~ D_α(x), SkewSearch must return x with high
// probability, on both a uniform profile and the skewed Figure 1 profile.
func Recall(cfg RecallConfig) (*Table, error) {
	if cfg.N < 10 || cfg.Queries < 1 || len(cfg.Alphas) == 0 {
		return nil, fmt.Errorf("experiments: invalid recall config %+v", cfg)
	}
	t := &Table{
		Title:   fmt.Sprintf("Recall of the planted α-correlated vector (n=%d, C=%.0f)", cfg.N, cfg.C),
		Columns: []string{"profile", "alpha", "recall(exact target)", "found(any ≥ b1)"},
		Notes: []string{
			"success criterion: recall ≥ 0.9 everywhere C·α ≥ 15 (Lemma 11's assumption)",
		},
	}
	logn := math.Log(float64(cfg.N))
	sigma := cfg.C * logn // Σp target

	profiles := []struct {
		name  string
		probs func() []float64
	}{
		{"uniform p=0.1", func() []float64 {
			return dist.Uniform(int(math.Ceil(sigma/0.1)), 0.1)
		}},
		{"fig1 (half p, half p/8)", func() []float64 {
			// half at 0.2, half at 0.025: per-dim average 0.1125.
			half := int(math.Ceil(sigma / (2 * 0.1125)))
			return dist.Fig1Profile(half, 0.2)
		}},
	}
	for _, prof := range profiles {
		d := dist.MustProduct(prof.probs())
		for ai, alpha := range cfg.Alphas {
			w, err := datagen.NewCorrelatedWorkload(d, cfg.N, cfg.Queries, alpha, cfg.Seed+uint64(ai))
			if err != nil {
				return nil, fmt.Errorf("experiments: recall: %w", err)
			}
			ix, err := core.BuildCorrelated(d, w.Data, alpha, core.Options{Seed: cfg.Seed + 100})
			if err != nil {
				return nil, fmt.Errorf("experiments: recall: %w", err)
			}
			exact, any := 0, 0
			for k, res := range ix.QueryParallel(w.Queries, 0) {
				if res.Found {
					any++
					if res.ID == w.Targets[k] {
						exact++
					}
				}
			}
			qf := float64(cfg.Queries)
			t.AddRow(prof.name, alpha, float64(exact)/qf, float64(any)/qf)
		}
	}
	return t, nil
}
