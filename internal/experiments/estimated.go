package experiments

import (
	"fmt"

	"skewsim/internal/core"
	"skewsim/internal/datagen"
	"skewsim/internal/dist"
)

// EstimatedConfig parameterizes the §9 estimation study.
type EstimatedConfig struct {
	N       int
	Alpha   float64
	Queries int
	Seed    uint64
}

// DefaultEstimatedConfig keeps runtime to a couple of seconds.
func DefaultEstimatedConfig() EstimatedConfig {
	return EstimatedConfig{N: 500, Alpha: 2.0 / 3, Queries: 40, Seed: 83}
}

// Estimated validates the paper's §9 conjecture that the item-level
// probabilities need not be known: "one can estimate each p_i to very
// high precision by counting the occurrences in the dataset itself,
// leading to the same asymptotic bounds". We build the same correlated
// index twice — once from the true distribution, once from frequencies
// counted on the data (dist.EstimateProduct) — and compare recall and
// candidate work on identical queries.
func Estimated(cfg EstimatedConfig) (*Table, error) {
	if cfg.N < 10 || cfg.Queries < 1 {
		return nil, fmt.Errorf("experiments: invalid estimated config %+v", cfg)
	}
	t := &Table{
		Title:   fmt.Sprintf("§9: known vs estimated probabilities (fig1 profile, n=%d, alpha=%.3f)", cfg.N, cfg.Alpha),
		Columns: []string{"probabilities", "recall", "candidates/query", "filters/query"},
		Notes: []string{
			"success criterion: estimated-probability build matches known-probability recall within a few percent and comparable work",
		},
	}
	trueD := dist.MustProduct(dist.Fig1Profile(450, 0.25))
	w, err := datagen.NewCorrelatedWorkload(trueD, cfg.N, cfg.Queries, cfg.Alpha, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: estimated: %w", err)
	}
	estD, err := dist.EstimateProduct(w.Data, trueD.Dim())
	if err != nil {
		return nil, fmt.Errorf("experiments: estimated: %w", err)
	}
	for _, variant := range []struct {
		name string
		d    *dist.Product
	}{
		{"known (model)", trueD},
		{"estimated (counted)", estD},
	} {
		ix, err := core.BuildCorrelated(variant.d, w.Data, cfg.Alpha, core.Options{Seed: cfg.Seed + 7})
		if err != nil {
			return nil, fmt.Errorf("experiments: estimated: %w", err)
		}
		hits, cands, filters := 0, 0, 0
		for k, res := range ix.QueryParallel(w.Queries, 0) {
			cands += res.Stats.Candidates
			filters += res.Stats.Filters
			if res.Found && res.ID == w.Targets[k] {
				hits++
			}
		}
		qf := float64(cfg.Queries)
		t.AddRow(variant.name, float64(hits)/qf, float64(cands)/qf, float64(filters)/qf)
	}
	return t, nil
}
