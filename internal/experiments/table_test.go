package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Columns: []string{"a", "long-column"},
		Notes:   []string{"a note"},
	}
	tab.AddRow(1, 2.5)
	tab.AddRow("x", "y")
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== demo ==", "a", "long-column", "2.5000", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Separator line present.
	if !strings.Contains(out, "---") {
		t.Error("missing separator")
	}
}

func TestTableAddRowFormatting(t *testing.T) {
	tab := &Table{Columns: []string{"c"}}
	tab.AddRow(0.123456789)
	if tab.Rows[0][0] != "0.1235" {
		t.Errorf("float formatting: %q", tab.Rows[0][0])
	}
	tab.AddRow(42)
	if tab.Rows[1][0] != "42" {
		t.Errorf("int formatting: %q", tab.Rows[1][0])
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{
		Columns: []string{"name", "value"},
	}
	tab.AddRow("plain", 1)
	tab.AddRow("with,comma", 2)
	tab.AddRow(`with"quote`, 3)
	var buf bytes.Buffer
	if err := tab.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines", len(lines))
	}
	if lines[0] != "name,value" {
		t.Errorf("header: %q", lines[0])
	}
	if lines[2] != `"with,comma",2` {
		t.Errorf("comma escaping: %q", lines[2])
	}
	if lines[3] != `"with""quote",3` {
		t.Errorf("quote escaping: %q", lines[3])
	}
}

func TestRegistryIDs(t *testing.T) {
	ids := IDs()
	want := []string{"ablation", "estimated", "fig1", "fig2", "motivating", "recall", "scaling", "sec7adv", "sec7corr", "table1"}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v, want %v", ids, want)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("nope", &buf, false); err == nil {
		t.Error("unknown id should fail")
	}
}

func TestRunRendersCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("fig1", &buf, true); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "p,rho(SkewSearch)") {
		t.Errorf("CSV output wrong: %q", buf.String()[:40])
	}
}
