// Package faultinject is the registry-gated fault-injection seam for
// the serving stack: named injection points compiled into the WAL
// (fsync), the segment worker (checkpoint write, freeze), and the shard
// fan-out (stall) fire a test-installed hook when one is armed and cost
// one atomic load when none is.
//
// The points stay compiled in (no build tag) so the fault suite runs as
// part of the ordinary test tiers; the armed-count fast path keeps the
// production cost of a disarmed point to a single atomic load and
// branch — off the per-candidate hot loops entirely (every wired point
// sits on an IO or fan-out boundary, never inside a traversal).
//
// Hooks are process-global, so tests that arm a point must not run in
// parallel with tests sensitive to it (the fault tests arm, exercise,
// and restore within one test body).
package faultinject

import (
	"sync"
	"sync/atomic"
)

// Point names one compiled-in injection site.
type Point string

// The wired injection points.
const (
	// WALFsync fires inside wal.Log.Commit just before the group-commit
	// fsync; a non-nil return is surfaced exactly as a real fsync
	// failure (segment.ErrNotDurable at the API). Args: none.
	WALFsync Point = "wal.fsync"
	// SegmentCheckpointWrite fires at the top of a checkpoint segment
	// file write (freeze and compaction persistence); a non-nil return
	// simulates disk-full — the file is not written and the log is left
	// un-fenced. Args: the checkpoint sequence number (uint64).
	SegmentCheckpointWrite Point = "segment.checkpoint-write"
	// SegmentSlowFreeze fires at the start of freezing a memtable into
	// a CSR segment; hooks typically sleep to widen the freeze window.
	// The return value is ignored. Args: the memtable size (int).
	SegmentSlowFreeze Point = "segment.slow-freeze"
	// ServerShardStall fires in the query fan-out before a shard is
	// queried; a hook can block (e.g. until the request context is
	// done) to simulate a stalled shard, and a non-nil return marks the
	// shard failed. Args: the request context.Context and the shard
	// number (int).
	ServerShardStall Point = "server.shard-stall"
	// ReplicaFeedStall fires in the replication feed handler
	// (GET /v1/replica/wal) before any frames are read; a hook can block
	// to simulate a stalled primary, and a non-nil return fails the
	// request with a 500. Args: the shard number (int) and the requested
	// from-LSN (uint64).
	ReplicaFeedStall Point = "replica.feed-stall"
	// ReplicaSnapshotTruncate fires in the bootstrap snapshot handler
	// (GET /v1/replica/snapshot) after the header is written; a non-nil
	// return aborts the response mid-stream, handing the follower a
	// truncated snapshot. Args: none.
	ReplicaSnapshotTruncate Point = "replica.snapshot-truncate"
)

// Hook is an injected behaviour. It receives the point's site-specific
// args and may block; a non-nil error is delivered to the injection
// site as if the faulted operation had failed.
type Hook func(args ...any) error

var (
	armed atomic.Int32
	mu    sync.Mutex
	hooks map[Point]Hook
)

// Enabled reports whether any hook is armed — the one-atomic-load fast
// path injection sites branch on (via Fire).
func Enabled() bool { return armed.Load() != 0 }

// Fire invokes the hook armed at point, if any, and returns its error.
// With no hook armed anywhere it costs one atomic load.
func Fire(point Point, args ...any) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.Lock()
	h := hooks[point]
	mu.Unlock()
	if h == nil {
		return nil
	}
	return h(args...)
}

// Set arms hook at point and returns a restore function that reinstates
// whatever was armed before (typically nothing). Tests should defer the
// restore; passing a nil hook disarms the point.
func Set(point Point, hook Hook) (restore func()) {
	mu.Lock()
	defer mu.Unlock()
	if hooks == nil {
		hooks = make(map[Point]Hook)
	}
	prev, hadPrev := hooks[point]
	setLocked(point, hook)
	return func() {
		mu.Lock()
		defer mu.Unlock()
		if hadPrev {
			setLocked(point, prev)
		} else {
			setLocked(point, nil)
		}
	}
}

// setLocked installs or removes a hook and keeps the armed count in
// step. Caller holds mu.
func setLocked(point Point, hook Hook) {
	_, had := hooks[point]
	switch {
	case hook == nil && had:
		delete(hooks, point)
		armed.Add(-1)
	case hook != nil && !had:
		hooks[point] = hook
		armed.Add(1)
	case hook != nil:
		hooks[point] = hook
	}
}
