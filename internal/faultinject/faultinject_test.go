package faultinject

import (
	"errors"
	"testing"
)

func TestFireDisarmed(t *testing.T) {
	if Enabled() {
		t.Fatal("no hook armed, Enabled() = true")
	}
	if err := Fire(WALFsync); err != nil {
		t.Fatalf("disarmed Fire: %v", err)
	}
}

func TestFaultSetFireRestore(t *testing.T) {
	boom := errors.New("boom")
	var got []any
	restore := Set(SegmentCheckpointWrite, func(args ...any) error {
		got = append(got[:0], args...)
		return boom
	})
	if !Enabled() {
		t.Fatal("armed hook, Enabled() = false")
	}
	if err := Fire(SegmentCheckpointWrite, uint64(7)); !errors.Is(err, boom) {
		t.Fatalf("Fire = %v, want boom", err)
	}
	if len(got) != 1 || got[0] != uint64(7) {
		t.Fatalf("hook args = %v", got)
	}
	// Other points stay disarmed.
	if err := Fire(WALFsync); err != nil {
		t.Fatalf("unrelated point fired: %v", err)
	}
	restore()
	if Enabled() {
		t.Fatal("restore left a hook armed")
	}
	if err := Fire(SegmentCheckpointWrite, uint64(8)); err != nil {
		t.Fatalf("restored Fire: %v", err)
	}
}

func TestFaultNestedSetRestoresPrevious(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	r1 := Set(WALFsync, func(...any) error { return errA })
	r2 := Set(WALFsync, func(...any) error { return errB })
	if err := Fire(WALFsync); !errors.Is(err, errB) {
		t.Fatalf("inner hook: %v", err)
	}
	r2()
	if err := Fire(WALFsync); !errors.Is(err, errA) {
		t.Fatalf("after inner restore: %v", err)
	}
	r1()
	if err := Fire(WALFsync); err != nil {
		t.Fatalf("after full restore: %v", err)
	}
	if Enabled() {
		t.Fatal("hooks left armed")
	}
}

func TestFaultSetNilDisarms(t *testing.T) {
	restore := Set(ServerShardStall, func(...any) error { return errors.New("x") })
	Set(ServerShardStall, nil)()
	// The nil Set's restore reinstated the outer hook; the outer restore
	// must still unwind it.
	if err := Fire(ServerShardStall); err == nil {
		t.Fatal("outer hook should be back after nil-set restore")
	}
	restore()
	if Enabled() {
		t.Fatal("hooks left armed")
	}
}
