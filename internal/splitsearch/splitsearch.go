// Package splitsearch implements the frequent/rare query-splitting
// strategy of the paper's introduction (§1, "Motivating example") as a
// working data structure: partition the universe into a frequent part F
// (the most frequent items covering half the expected set mass) and a
// rare part R, index the restrictions of the dataset to each part
// separately, and answer a query by searching both restrictions.
//
// For any x with B(x, q) ≥ b1, writing ℓ for the fraction of the overlap
// that lands in F, either |x∩q∩F| ≥ ℓ|q| or |x∩q∩R| ≥ (b1−ℓ)|q|; the two
// sub-searches cover both cases. Under the balanced-split assumption
// (|x∩F| ≈ |x∩R| ≈ |x|/2, which holds by construction of F for typical
// vectors), the restricted Braun-Blanquet thresholds are 2ℓ and
// 2(b1−ℓ). Candidates from either side are verified against the full
// vectors, so the structure never returns a false positive.
//
// SkewSearch subsumes this two-level scheme (its thresholds adapt per
// item, not per half), which is precisely the paper's point; the package
// exists to make the introduction's argument executable and to serve as
// a baseline in the ablation benchmarks.
package splitsearch

import (
	"cmp"
	"errors"
	"fmt"
	"slices"

	"skewsim/internal/bitvec"
	"skewsim/internal/core"
	"skewsim/internal/dist"
	"skewsim/internal/lsf"
)

// Options tunes the structure.
type Options struct {
	// Ell is the overlap fraction assigned to the frequent side. The
	// guarantee covers overlaps splitting ℓ : b1−ℓ; 0 means b1/2
	// (symmetric). Must lie in (0, b1).
	Ell float64
	// Core options forwarded to both sub-indexes.
	Seed        uint64
	Repetitions int
	Measure     bitvec.Measure
}

// Index is a built split-search structure.
type Index struct {
	data      []bitvec.Vector
	inFreq    []bool // universe partition mask
	freq      *core.Index
	rare      *core.Index
	b1        float64
	ell       float64
	measure   bitvec.Measure
	freqData  []bitvec.Vector
	rareData  []bitvec.Vector
	splitSize int // |F|
	visitPool lsf.VisitedPool
}

// Build partitions the universe of d by descending frequency until half
// of Σp is covered, restricts every vector, and indexes both parts for
// adversarial queries.
func Build(d *dist.Product, data []bitvec.Vector, b1 float64, opt Options) (*Index, error) {
	if d == nil {
		return nil, errors.New("splitsearch: nil distribution")
	}
	if len(data) == 0 {
		return nil, errors.New("splitsearch: empty dataset")
	}
	if b1 <= 0 || b1 > 1 {
		return nil, fmt.Errorf("splitsearch: b1 = %v outside (0, 1]", b1)
	}
	ell := opt.Ell
	if ell == 0 {
		ell = b1 / 2
	}
	if ell <= 0 || ell >= b1 {
		return nil, fmt.Errorf("splitsearch: Ell = %v outside (0, b1)", ell)
	}

	inFreq := partitionByMass(d)
	splitSize := 0
	for _, f := range inFreq {
		if f {
			splitSize++
		}
	}
	if splitSize == 0 || splitSize == d.Dim() {
		return nil, errors.New("splitsearch: distribution has no skew to split on")
	}

	// Restricted probability vectors: the complement part is zeroed so
	// the sub-engines treat out-of-part items as absent.
	freqProbs := make([]float64, d.Dim())
	rareProbs := make([]float64, d.Dim())
	for i := 0; i < d.Dim(); i++ {
		if inFreq[i] {
			freqProbs[i] = d.P(i)
		} else {
			rareProbs[i] = d.P(i)
		}
	}
	freqD, err := dist.NewProduct(freqProbs)
	if err != nil {
		return nil, err
	}
	rareD, err := dist.NewProduct(rareProbs)
	if err != nil {
		return nil, err
	}

	ix := &Index{
		data:      data,
		inFreq:    inFreq,
		b1:        b1,
		ell:       ell,
		measure:   opt.Measure,
		splitSize: splitSize,
	}
	ix.freqData = make([]bitvec.Vector, len(data))
	ix.rareData = make([]bitvec.Vector, len(data))
	for id, x := range data {
		ix.freqData[id], ix.rareData[id] = ix.split(x)
	}

	b1F := clampThreshold(2 * ell)
	b1R := clampThreshold(2 * (b1 - ell))
	copt := core.Options{Seed: opt.Seed, Repetitions: opt.Repetitions, Measure: opt.Measure}
	ix.freq, err = core.BuildAdversarial(freqD, ix.freqData, b1F, copt)
	if err != nil {
		return nil, fmt.Errorf("splitsearch: frequent side: %w", err)
	}
	copt.Seed = opt.Seed + 0x9e3779b97f4a7c15
	ix.rare, err = core.BuildAdversarial(rareD, ix.rareData, b1R, copt)
	if err != nil {
		return nil, fmt.Errorf("splitsearch: rare side: %w", err)
	}
	return ix, nil
}

func clampThreshold(t float64) float64 {
	if t > 1 {
		return 1
	}
	return t
}

// partitionByMass marks the most frequent items covering half of Σp.
func partitionByMass(d *dist.Product) []bool {
	order := make([]int, d.Dim())
	for i := range order {
		order[i] = i
	}
	slices.SortStableFunc(order, func(a, b int) int { return cmp.Compare(d.P(b), d.P(a)) })
	half := d.ExpectedSize() / 2
	mask := make([]bool, d.Dim())
	acc := 0.0
	for _, i := range order {
		if acc >= half {
			break
		}
		mask[i] = true
		acc += d.P(i)
	}
	return mask
}

// split restricts x to the two universe parts.
func (ix *Index) split(x bitvec.Vector) (freq, rare bitvec.Vector) {
	var fb, rb []uint32
	for _, b := range x.Bits() {
		if int(b) < len(ix.inFreq) && ix.inFreq[b] {
			fb = append(fb, b)
		} else {
			rb = append(rb, b)
		}
	}
	return bitvec.FromSorted(fb), bitvec.FromSorted(rb)
}

// SplitSize returns |F|, the number of items on the frequent side.
func (ix *Index) SplitSize() int { return ix.splitSize }

// Data returns the indexed vectors.
func (ix *Index) Data() []bitvec.Vector { return ix.data }

// Result mirrors the other indexes' result type.
type Result struct {
	ID         int
	Similarity float64
	Found      bool
	Stats      Stats
}

// Stats aggregates the two sub-searches.
type Stats struct {
	FreqCandidates int
	RareCandidates int
	Verified       int
}

// Query returns a vector with full similarity at least b1, gathering
// candidates from both restricted searches and verifying against the
// complete vectors.
func (ix *Index) Query(q bitvec.Vector) Result {
	res := Result{ID: -1}
	qF, qR := ix.split(q)
	vis := ix.visitPool.Get(len(ix.data))
	defer ix.visitPool.Put(vis)
	try := func(ids []int32) bool {
		for _, id := range ids {
			if !vis.FirstVisit(id) {
				continue
			}
			res.Stats.Verified++
			if s := ix.measure.Similarity(q, ix.data[id]); s >= ix.b1 {
				res.ID, res.Similarity, res.Found = int(id), s, true
				return true
			}
		}
		return false
	}
	fc := ix.freq.Candidates(qF)
	res.Stats.FreqCandidates = len(fc)
	if try(fc) {
		return res
	}
	rc := ix.rare.Candidates(qR)
	res.Stats.RareCandidates = len(rc)
	try(rc)
	return res
}

// Candidates returns the distinct candidates from both sides (join
// driver interface).
func (ix *Index) Candidates(q bitvec.Vector) []int32 {
	qF, qR := ix.split(q)
	vis := ix.visitPool.Get(len(ix.data))
	defer ix.visitPool.Put(vis)
	var out []int32
	for _, ids := range [][]int32{ix.freq.Candidates(qF), ix.rare.Candidates(qR)} {
		for _, id := range ids {
			if vis.FirstVisit(id) {
				out = append(out, id)
			}
		}
	}
	return out
}
