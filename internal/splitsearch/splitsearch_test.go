package splitsearch

import (
	"testing"

	"skewsim/internal/bitvec"
	"skewsim/internal/datagen"
	"skewsim/internal/dist"
)

func harmonicLike() *dist.Product {
	// Two-block stand-in for the motivating example: 200 frequent items
	// at 0.3 (mass 60) and 6000 rare items at 0.01 (mass 60).
	return dist.MustProduct(dist.TwoBlock(200, 0.3, 6000, 0.01))
}

func TestBuildValidation(t *testing.T) {
	d := harmonicLike()
	data := []bitvec.Vector{bitvec.New(1, 2)}
	if _, err := Build(nil, data, 0.5, Options{}); err == nil {
		t.Error("nil distribution should fail")
	}
	if _, err := Build(d, nil, 0.5, Options{}); err == nil {
		t.Error("empty data should fail")
	}
	for _, b1 := range []float64{0, 1.5} {
		if _, err := Build(d, data, b1, Options{}); err == nil {
			t.Errorf("b1=%v should fail", b1)
		}
	}
	if _, err := Build(d, data, 0.5, Options{Ell: 0.5}); err == nil {
		t.Error("Ell >= b1 should fail")
	}
	if _, err := Build(d, data, 0.5, Options{Ell: -0.1}); err == nil {
		t.Error("negative Ell should fail")
	}
	// A fully uniform distribution cannot be split: the frequent side
	// swallows roughly half the items, which is fine — only a
	// single-item universe degenerates.
	uni := dist.MustProduct([]float64{0.3})
	if _, err := Build(uni, data, 0.5, Options{}); err == nil {
		t.Error("unsplittable universe should fail")
	}
}

func TestPartitionCoversHalfMass(t *testing.T) {
	d := harmonicLike()
	mask := partitionByMass(d)
	acc := 0.0
	for i, f := range mask {
		if f {
			acc += d.P(i)
		}
	}
	if acc < d.ExpectedSize()/2-0.31 || acc > d.ExpectedSize()/2+0.31 {
		t.Errorf("frequent mass %v, want ~%v", acc, d.ExpectedSize()/2)
	}
	// With this profile the frequent side must be exactly the 0.3 block.
	for i := 0; i < 200; i++ {
		if !mask[i] {
			t.Fatalf("frequent item %d not in F", i)
		}
	}
}

func TestSplitPartitionsVectors(t *testing.T) {
	d := harmonicLike()
	w, _ := datagen.NewAdversarialWorkload(d, 50, 1, 0.5, 3)
	ix, err := Build(d, w.Data, 0.5, Options{Seed: 1, Repetitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	for id, x := range w.Data {
		f, r := ix.freqData[id], ix.rareData[id]
		if f.Len()+r.Len() != x.Len() {
			t.Fatal("split lost bits")
		}
		if f.IntersectionSize(r) != 0 {
			t.Fatal("split parts overlap")
		}
		if !f.Union(r).Equal(x) {
			t.Fatal("split does not reassemble")
		}
	}
}

func TestQueryRecallOnPlantedWorkload(t *testing.T) {
	d := harmonicLike()
	const b1 = 0.6
	w, err := datagen.NewAdversarialWorkload(d, 300, 40, b1, 7)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(d, w.Data, b1, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, q := range w.Queries {
		res := ix.Query(q)
		if res.Found {
			found++
			if got := bitvec.BraunBlanquet(q, w.Data[res.ID]); got < b1-1e-9 {
				t.Errorf("returned similarity %v below b1", got)
			}
		}
	}
	if rate := float64(found) / float64(len(w.Queries)); rate < 0.8 {
		t.Errorf("split-search recall %v, want ≥ 0.8", rate)
	}
}

func TestQueryNoFalsePositives(t *testing.T) {
	d := harmonicLike()
	w, _ := datagen.NewAdversarialWorkload(d, 200, 20, 0.6, 9)
	ix, err := Build(d, w.Data, 0.6, Options{Seed: 2, Repetitions: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range w.Queries {
		res := ix.Query(q)
		if res.Found && res.Similarity < 0.6-1e-9 {
			t.Fatal("sub-threshold result returned")
		}
	}
}

func TestCandidatesDistinct(t *testing.T) {
	d := harmonicLike()
	w, _ := datagen.NewAdversarialWorkload(d, 150, 5, 0.5, 11)
	ix, err := Build(d, w.Data, 0.5, Options{Seed: 3, Repetitions: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range w.Queries {
		ids := ix.Candidates(q)
		seen := map[int32]bool{}
		for _, id := range ids {
			if seen[id] {
				t.Fatal("duplicate candidate")
			}
			seen[id] = true
		}
	}
	if len(ix.Data()) != 150 || ix.SplitSize() == 0 {
		t.Error("accessors wrong")
	}
}

func TestEmptyQuery(t *testing.T) {
	d := harmonicLike()
	w, _ := datagen.NewAdversarialWorkload(d, 50, 1, 0.5, 13)
	ix, err := Build(d, w.Data, 0.5, Options{Seed: 4, Repetitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res := ix.Query(bitvec.New()); res.Found {
		t.Error("empty query matched")
	}
}
