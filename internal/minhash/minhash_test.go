package minhash

import (
	"math"
	"testing"

	"skewsim/internal/bitvec"
	"skewsim/internal/datagen"
	"skewsim/internal/dist"
)

func TestDeriveParams(t *testing.T) {
	p, err := DeriveParams(1000, 0.5, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if p.K != 3 { // ceil(ln 1000 / ln 10)
		t.Errorf("K = %d, want 3", p.K)
	}
	wantL := int(math.Ceil(math.Pow(1000, math.Log(2)/math.Log(10))))
	if p.L != wantL {
		t.Errorf("L = %d, want %d", p.L, wantL)
	}
}

func TestDeriveParamsValidation(t *testing.T) {
	if _, err := DeriveParams(1, 0.5, 0.1); err == nil {
		t.Error("n too small should fail")
	}
	for _, c := range [][2]float64{{0.5, 0.5}, {0.1, 0.5}, {0, 0.1}, {1.2, 0.1}} {
		if _, err := DeriveParams(100, c[0], c[1]); err == nil {
			t.Errorf("j1=%v j2=%v should fail", c[0], c[1])
		}
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, Params{K: 1, L: 1}, Options{}); err == nil {
		t.Error("empty data should fail")
	}
	data := []bitvec.Vector{bitvec.New(1)}
	if _, err := Build(data, Params{K: 0, L: 1}, Options{}); err == nil {
		t.Error("K=0 should fail")
	}
	if _, err := Build(data, Params{K: 1, L: 0}, Options{}); err == nil {
		t.Error("L=0 should fail")
	}
}

func TestIdenticalVectorsAlwaysCollide(t *testing.T) {
	data := []bitvec.Vector{
		bitvec.New(1, 2, 3),
		bitvec.New(1, 2, 3),
		bitvec.New(50, 51, 52),
	}
	ix, err := Build(data, Params{K: 2, L: 4}, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res := ix.Query(bitvec.New(1, 2, 3), 1.0)
	if !res.Found || res.Similarity < 1-1e-9 {
		t.Errorf("identical vector not found: %+v", res)
	}
}

func TestEmptyVectorsNeverMatch(t *testing.T) {
	data := []bitvec.Vector{bitvec.New(), bitvec.New(1, 2)}
	ix, err := Build(data, Params{K: 1, L: 2}, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res := ix.Query(bitvec.New(), 0.0); res.Found {
		t.Error("empty query matched something")
	}
	res := ix.QueryBest(bitvec.New())
	if res.Found {
		t.Error("empty QueryBest matched something")
	}
}

func TestMinHashCollisionProbabilityMatchesJaccard(t *testing.T) {
	// Single-row (K=1, L=1) collision probability equals the Jaccard
	// similarity; estimate over many seeds.
	a := bitvec.New(0, 1, 2, 3, 4, 5)
	b := bitvec.New(3, 4, 5, 6, 7, 8)
	want := bitvec.Jaccard(a, b) // 3/9
	coll := 0
	const trials = 4000
	for seed := 0; seed < trials; seed++ {
		ix, err := Build([]bitvec.Vector{a}, Params{K: 1, L: 1}, Options{Seed: uint64(seed)})
		if err != nil {
			t.Fatal(err)
		}
		if ix.signature(0, a) == ix.signature(0, b) {
			coll++
		}
	}
	got := float64(coll) / trials
	if math.Abs(got-want) > 0.025 {
		t.Errorf("collision rate %v, want %v", got, want)
	}
}

func TestRecallOnCorrelatedWorkload(t *testing.T) {
	const (
		n     = 400
		alpha = 0.8
		p     = 0.1
	)
	d := dist.MustProduct(dist.Uniform(1000, p))
	w, err := datagen.NewCorrelatedWorkload(d, n, 30, alpha, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Jaccard thresholds: planted pairs have J ≈ B/(2−B) for
	// near-equal sizes with B ≈ α + (1−α)p.
	bClose := alpha + (1-alpha)*p
	j1 := bClose / (2 - bClose) * 0.8 // slack for sampling noise
	j2 := 0.08
	params, err := DeriveParams(n, j1, j2)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(w.Data, params, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	recovered := 0
	for k, q := range w.Queries {
		res := ix.QueryBest(q)
		if res.Found && res.ID == w.Targets[k] {
			recovered++
		}
	}
	if rate := float64(recovered) / float64(len(w.Queries)); rate < 0.8 {
		t.Errorf("recall %v, want ≥ 0.8 (params %+v)", rate, params)
	}
}

func TestQueryDeterministic(t *testing.T) {
	d := dist.MustProduct(dist.Uniform(400, 0.1))
	w, _ := datagen.NewCorrelatedWorkload(d, 100, 10, 0.8, 9)
	ix1, _ := Build(w.Data, Params{K: 2, L: 8}, Options{Seed: 4})
	ix2, _ := Build(w.Data, Params{K: 2, L: 8}, Options{Seed: 4})
	for _, q := range w.Queries {
		r1, r2 := ix1.QueryBest(q), ix2.QueryBest(q)
		if r1.ID != r2.ID || r1.Stats != r2.Stats {
			t.Fatal("same seed produced different results")
		}
	}
}

func TestQueryStatsAndCandidates(t *testing.T) {
	d := dist.MustProduct(dist.Uniform(400, 0.1))
	w, _ := datagen.NewCorrelatedWorkload(d, 150, 1, 0.8, 11)
	ix, err := Build(w.Data, Params{K: 2, L: 6}, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range w.Data[:20] {
		res := ix.QueryBest(q)
		if res.Stats.Bands != 6 {
			t.Errorf("bands = %d, want 6", res.Stats.Bands)
		}
		if res.Stats.Distinct > res.Stats.Candidates {
			t.Error("distinct exceeds candidates")
		}
		ids := ix.Candidates(q)
		if len(ids) != res.Stats.Distinct {
			t.Errorf("Candidates %d vs distinct %d", len(ids), res.Stats.Distinct)
		}
	}
}

func TestParametersAccessor(t *testing.T) {
	data := []bitvec.Vector{bitvec.New(1)}
	ix, err := Build(data, Params{K: 3, L: 5}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p := ix.Parameters(); p.K != 3 || p.L != 5 {
		t.Errorf("Parameters = %+v", p)
	}
	if len(ix.Data()) != 1 {
		t.Error("Data accessor wrong")
	}
}
