// Package minhash implements the classic MinHash LSH index of Broder et
// al. for Jaccard similarity: L bands, each the concatenation of k
// min-wise hashes. It is the standard randomized baseline the paper's
// related-work section (§1) positions Chosen Path (and hence
// SkewSearch) against, and one of the §8 comparison methods.
//
// For the (j1, j2)-approximate Jaccard problem the textbook parameters
// are k = ⌈ln n / ln(1/j2)⌉ and L = ⌈n^ρ⌉ with ρ = ln(1/j1)/ln(1/j2);
// DeriveParams computes them.
package minhash

import (
	"errors"
	"fmt"
	"math"

	"skewsim/internal/bitvec"
	"skewsim/internal/hashing"
)

// Params holds explicit LSH parameters.
type Params struct {
	K int // rows per band (hashes concatenated per signature)
	L int // bands (independent hash tables)
}

// DeriveParams returns the standard parameters for dataset size n and
// Jaccard thresholds 0 < j2 < j1 ≤ 1.
func DeriveParams(n int, j1, j2 float64) (Params, error) {
	if n < 2 {
		return Params{}, fmt.Errorf("minhash: n = %d too small", n)
	}
	if !(0 < j2 && j2 < j1 && j1 <= 1) {
		return Params{}, fmt.Errorf("minhash: need 0 < j2 < j1 <= 1, got j1=%v j2=%v", j1, j2)
	}
	k := int(math.Ceil(math.Log(float64(n)) / math.Log(1/j2)))
	if k < 1 {
		k = 1
	}
	rho := math.Log(1/j1) / math.Log(1/j2)
	l := int(math.Ceil(math.Pow(float64(n), rho)))
	if l < 1 {
		l = 1
	}
	return Params{K: k, L: l}, nil
}

// Index is a built MinHash LSH table set.
type Index struct {
	data    []bitvec.Vector
	params  Params
	seeds   [][]uint64 // [band][row] hash seeds
	tables  []map[string][]int32
	measure bitvec.Measure
}

// Options tunes the index.
type Options struct {
	Seed    uint64
	Measure bitvec.Measure
}

// Build constructs the L hash tables for the data under the given
// parameters.
func Build(data []bitvec.Vector, p Params, opt Options) (*Index, error) {
	if len(data) == 0 {
		return nil, errors.New("minhash: empty dataset")
	}
	if p.K < 1 || p.L < 1 {
		return nil, fmt.Errorf("minhash: invalid params %+v", p)
	}
	rng := hashing.NewSplitMix64(opt.Seed)
	ix := &Index{
		data:    data,
		params:  p,
		seeds:   make([][]uint64, p.L),
		tables:  make([]map[string][]int32, p.L),
		measure: opt.Measure,
	}
	for b := 0; b < p.L; b++ {
		ix.seeds[b] = make([]uint64, p.K)
		for r := 0; r < p.K; r++ {
			ix.seeds[b][r] = rng.Next()
		}
		ix.tables[b] = make(map[string][]int32, len(data))
	}
	for id, x := range data {
		if x.IsEmpty() {
			continue // empty sets have no min-hash; they match nothing
		}
		for b := 0; b < p.L; b++ {
			key := ix.signature(b, x)
			ix.tables[b][key] = append(ix.tables[b][key], int32(id))
		}
	}
	return ix, nil
}

// signature computes the band-b signature of x: the concatenation of K
// min-wise hash values.
func (ix *Index) signature(b int, x bitvec.Vector) string {
	k := ix.params.K
	buf := make([]byte, 8*k)
	for r := 0; r < k; r++ {
		minV := uint64(math.MaxUint64)
		seed := ix.seeds[b][r]
		for _, e := range x.Bits() {
			if h := mix(seed, e); h < minV {
				minV = h
			}
		}
		for i := 0; i < 8; i++ {
			buf[8*r+i] = byte(minV >> (56 - 8*i))
		}
	}
	return string(buf)
}

// mix hashes one element under one seed (splitmix64 finalizer over
// seed ^ element, a standard strongly-mixing point hash).
func mix(seed uint64, e uint32) uint64 {
	z := seed ^ (uint64(e)+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Params returns the index parameters.
func (ix *Index) Parameters() Params { return ix.params }

// Data returns the indexed vectors.
func (ix *Index) Data() []bitvec.Vector { return ix.data }

// Result mirrors the other indexes' result type.
type Result struct {
	ID         int
	Similarity float64
	Found      bool
	Stats      Stats
}

// Stats counts query work.
type Stats struct {
	Bands      int // bands probed
	Candidates int // candidate occurrences over bands
	Distinct   int // distinct candidates verified
}

// Query returns the first candidate with measure-similarity at least
// threshold, probing bands in order.
func (ix *Index) Query(q bitvec.Vector, threshold float64) Result {
	res := Result{ID: -1}
	if q.IsEmpty() {
		return res
	}
	seen := make(map[int32]struct{})
	for b := 0; b < ix.params.L; b++ {
		res.Stats.Bands++
		for _, id := range ix.tables[b][ix.signature(b, q)] {
			res.Stats.Candidates++
			if _, dup := seen[id]; dup {
				continue
			}
			seen[id] = struct{}{}
			res.Stats.Distinct++
			if s := ix.measure.Similarity(q, ix.data[id]); s >= threshold {
				res.ID, res.Similarity, res.Found = int(id), s, true
				return res
			}
		}
	}
	return res
}

// QueryBest probes every band and returns the most similar candidate.
func (ix *Index) QueryBest(q bitvec.Vector) Result {
	res := Result{ID: -1, Similarity: -1}
	if q.IsEmpty() {
		res.Similarity = 0
		return res
	}
	seen := make(map[int32]struct{})
	for b := 0; b < ix.params.L; b++ {
		res.Stats.Bands++
		for _, id := range ix.tables[b][ix.signature(b, q)] {
			res.Stats.Candidates++
			if _, dup := seen[id]; dup {
				continue
			}
			seen[id] = struct{}{}
			res.Stats.Distinct++
			if s := ix.measure.Similarity(q, ix.data[id]); s > res.Similarity {
				res.ID, res.Similarity, res.Found = int(id), s, true
			}
		}
	}
	if !res.Found {
		res.Similarity = 0
	}
	return res
}

// Candidates returns the distinct candidate ids over all bands.
func (ix *Index) Candidates(q bitvec.Vector) []int32 {
	if q.IsEmpty() {
		return nil
	}
	seen := make(map[int32]struct{})
	var out []int32
	for b := 0; b < ix.params.L; b++ {
		for _, id := range ix.tables[b][ix.signature(b, q)] {
			if _, dup := seen[id]; !dup {
				seen[id] = struct{}{}
				out = append(out, id)
			}
		}
	}
	return out
}
