package verify

import (
	"testing"

	"skewsim/internal/bitvec"
	"skewsim/internal/hashing"
)

// benchSet builds n data vectors of ~bits set bits over dim dimensions.
func benchSet(n, bits, dim int, seed uint64) []bitvec.Vector {
	rng := hashing.NewSplitMix64(seed)
	out := make([]bitvec.Vector, n)
	for i := range out {
		out[i] = randomVector(rng, bits, dim)
	}
	return out
}

// BenchmarkVerifyCandidates measures verifying a fixed candidate list
// against one query — the inner loop of every query layer — through the
// packed popcount engine (with and without a realistic threshold for
// the prune to use) and through the sorted-slice merge it replaced.
func BenchmarkVerifyCandidates(b *testing.B) {
	for _, shape := range []struct {
		name      string
		bits, dim int
	}{
		{"dense-600d", 150, 600},       // Fig1-like: spans pack dense
		{"sparse-100kd", 150, 100_000}, // TwoBlock tail: sparse word arrays
	} {
		data := benchSet(512, shape.bits, shape.dim, 3)
		q := data[0].Union(benchSet(1, shape.bits/3, shape.dim, 99)[0])
		ps := bitvec.NewPackedSet(data)
		ids := make([]int32, len(data))
		for i := range ids {
			ids[i] = int32(i)
		}
		m := bitvec.BraunBlanquetMeasure
		b.Run(shape.name+"/packed-threshold", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ses := Acquire(m, q)
				for _, id := range ids {
					ses.AtLeast(ps, data, id, 0.5)
				}
				Release(ses)
			}
		})
		b.Run(shape.name+"/packed-exact", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ses := Acquire(m, q)
				for _, id := range ids {
					ses.Similarity(ps, data, id)
				}
				Release(ses)
			}
		})
		b.Run(shape.name+"/sorted-merge", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, id := range ids {
					m.Similarity(q, data[id])
				}
			}
		})
	}
}
