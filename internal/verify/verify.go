// Package verify is the candidate-verification engine behind every
// query layer (lsf repetitions, core.Index, segment.SegmentedIndex, the
// server shard router): the "compute the actual similarity of each
// candidate" step every scheme in the paper ends with (§2's measures,
// the verification step of §5's search procedure). It exists because
// end-to-end query cost is dominated by verification — computing a
// set-similarity measure
// between the query and each candidate — and the naive form re-walks
// two sorted uint32 slices per candidate, per repetition, re-processing
// the query from scratch every time.
//
// The engine's unit of work is a Session, acquired from a package-level
// pool once per query and shared across every repetition, segment, and
// shard that query touches:
//
//   - the query's packed form (a dense word bitmap) is materialized
//     exactly once per query; candidates stored in a bitvec.PackedSet
//     are verified by AND+POPCNT over word blocks instead of a
//     galloping merge;
//   - a length-based upper-bound prune skips the intersection entirely
//     when even |x ∩ q| = min(|x|, |q|) could not reach the threshold
//     (for every supported measure the similarity is monotone in the
//     intersection size, so the bound is exact);
//   - the popcount loop early-exits once the running count plus the
//     remaining words' maximum contribution cannot reach the required
//     intersection size.
//
// Results are bit-identical to bitvec.Measure.Similarity: the
// intersection size is exact, and the final similarity is computed by
// the same float64 expression from the same integers. The differential
// tests in this package assert that equivalence for all five measures.
//
// Sessions hold no references into any index, so one Session can verify
// candidates from many PackedSets (every frozen segment of a shard, or
// all shards of a server): the set and the raw vectors are arguments of
// each verification call, supplied by the caller under whatever lock
// guards them. All verification methods are read-only on the Session,
// so a single Session may be used concurrently by multiple goroutines
// (the server fans one out across shards); only Acquire/Release must
// not race with its use.
package verify

import (
	"math"
	"sync"

	"skewsim/internal/bitvec"
)

// Session is the pooled per-query scratch: the query, its dense word
// bitmap, and the measure being verified. Zero value is not usable;
// obtain via Acquire.
type Session struct {
	m      bitvec.Measure
	q      bitvec.Vector
	qlen   int
	qwords []uint64
	// packedQ reports the dense bitmap was built for this query. False
	// for queries whose maximum bit exceeds maxQueryWords·64 (the
	// bitmap would be attacker-sized); those verify through the exact
	// sorted-slice merge instead, same results.
	packedQ bool
}

// maxQueryWords bounds the dense query bitmap at 1 MiB (2^17 words =
// 8.4M bits). Every workload in this repository is orders of magnitude
// below it; a hostile query with one enormous bit id (reachable through
// the serving daemon's JSON API, which accepts arbitrary uint32s) must
// not turn into a half-gigabyte allocation retained by the session
// pool.
const maxQueryWords = 1 << 17

var sessionPool sync.Pool

// Acquire returns a Session for verifying candidates of q under m,
// packing the query once. Steady-state acquisition allocates nothing:
// the session's word bitmap is recycled through a package-level pool
// (scrubbed on Release), shared by every index in the process.
func Acquire(m bitvec.Measure, q bitvec.Vector) *Session {
	s, _ := sessionPool.Get().(*Session)
	if s == nil {
		s = &Session{}
	}
	s.m = m
	s.q = q
	s.qlen = q.Len()
	maxB, ok := q.MaxBit()
	s.packedQ = !ok || int(maxB>>6) < maxQueryWords
	if s.packedQ {
		s.qwords = bitvec.QueryWords(s.qwords, q)
	}
	return s
}

// Release scrubs the query's words from the bitmap (clearing exactly
// the words that were set, not the whole buffer) and returns the
// session to the pool. The session must not be used afterwards.
func Release(s *Session) {
	if s.packedQ {
		qw := s.qwords[:cap(s.qwords)]
		for _, b := range s.q.Bits() {
			qw[b>>6] = 0
		}
	}
	s.q = bitvec.Vector{}
	sessionPool.Put(s)
}

// Measure returns the verification measure the session was acquired for.
func (s *Session) Measure() bitvec.Measure { return s.m }

// Query returns the query vector the session was acquired for.
func (s *Session) Query() bitvec.Vector { return s.q }

// sim evaluates the measure from an exact intersection size, by the
// same expression as bitvec.Measure.Similarity so results are
// bit-identical. inter == 0 is 0 for every measure (including two empty
// vectors, where the formulas would divide by zero).
func (s *Session) sim(inter, lx int) float64 {
	if inter == 0 {
		return 0
	}
	lq := s.qlen
	switch s.m {
	case bitvec.BraunBlanquetMeasure:
		return float64(inter) / float64(max(lx, lq))
	case bitvec.JaccardMeasure:
		return float64(inter) / float64(lx+lq-inter)
	case bitvec.DiceMeasure:
		return 2 * float64(inter) / float64(lx+lq)
	case bitvec.OverlapMeasure:
		return float64(inter) / float64(min(lx, lq))
	case bitvec.CosineMeasure:
		return float64(inter) / math.Sqrt(float64(lx)*float64(lq))
	default:
		panic("verify: invalid measure " + s.m.String())
	}
}

// need returns a conservative lower bound on the smallest intersection
// size whose similarity passes the comparison against t (>= t, or > t
// when strict): every smaller intersection is guaranteed to fail. The
// algebraic estimate is corrected downward by exact evaluation, so a
// float rounding error can only make the bound smaller (costing a
// wasted verification), never larger (which would drop a true match).
func (s *Session) need(lx int, t float64, strict bool) int {
	if t < 0 {
		return 0 // every similarity is >= 0 > t (also keeps the Jaccard
		// estimate's 1+t denominator away from zero)
	}
	lq := s.qlen
	capI := min(lx, lq)
	var est float64
	switch s.m {
	case bitvec.BraunBlanquetMeasure:
		est = t * float64(max(lx, lq))
	case bitvec.JaccardMeasure:
		est = t * float64(lx+lq) / (1 + t)
	case bitvec.DiceMeasure:
		est = t * float64(lx+lq) / 2
	case bitvec.OverlapMeasure:
		est = t * float64(capI)
	case bitvec.CosineMeasure:
		est = t * math.Sqrt(float64(lx)*float64(lq))
	default:
		panic("verify: invalid measure " + s.m.String())
	}
	n := int(math.Ceil(est))
	if n < 0 {
		n = 0
	}
	if n > capI+1 {
		n = capI + 1 // unreachable: prune
	}
	if strict {
		for n > 0 && s.sim(n-1, lx) > t {
			n--
		}
	} else {
		for n > 0 && s.sim(n-1, lx) >= t {
			n--
		}
	}
	return n
}

// Similarity returns the exact similarity of the query and candidate
// id: via popcount over ps when the candidate is packed, falling back
// to the sorted-slice merge otherwise. Identical to
// m.Similarity(q, data[id]) in all cases.
func (s *Session) Similarity(ps *bitvec.PackedSet, data []bitvec.Vector, id int32) float64 {
	x := data[id]
	var inter int
	if s.packedQ && ps != nil && int(id) < ps.Len() {
		inter = ps.IntersectWords(id, s.qwords)
	} else {
		inter = s.q.IntersectionSize(x)
	}
	return s.sim(inter, x.Len())
}

// AtLeast reports whether the candidate's similarity is >= t, returning
// the exact similarity when it is. A failing candidate may be rejected
// by the length prune or the popcount early exit without computing its
// exact intersection; a passing candidate's similarity is always exact.
func (s *Session) AtLeast(ps *bitvec.PackedSet, data []bitvec.Vector, id int32, t float64) (float64, bool) {
	return s.check(ps, data, id, t, false)
}

// MoreThan is AtLeast with a strict comparison (> t), the shape
// best-candidate scans prune with: t is the running best, and only a
// strictly better candidate matters.
func (s *Session) MoreThan(ps *bitvec.PackedSet, data []bitvec.Vector, id int32, t float64) (float64, bool) {
	return s.check(ps, data, id, t, true)
}

func (s *Session) check(ps *bitvec.PackedSet, data []bitvec.Vector, id int32, t float64, strict bool) (float64, bool) {
	x := data[id]
	lx := x.Len()
	need := s.need(lx, t, strict)
	if need > min(lx, s.qlen) {
		return 0, false // even a full overlap cannot pass
	}
	var inter int
	if s.packedQ && ps != nil && int(id) < ps.Len() {
		var ok bool
		inter, ok = ps.IntersectWordsAtLeast(id, s.qwords, need)
		if !ok {
			return 0, false
		}
	} else {
		inter = s.q.IntersectionSize(x)
		if inter < need {
			return 0, false
		}
	}
	sim := s.sim(inter, lx)
	if strict {
		return sim, sim > t
	}
	return sim, sim >= t
}
