package verify

import (
	"math"
	"testing"

	"skewsim/internal/bitvec"
	"skewsim/internal/hashing"
)

var allMeasures = []bitvec.Measure{
	bitvec.BraunBlanquetMeasure,
	bitvec.JaccardMeasure,
	bitvec.DiceMeasure,
	bitvec.OverlapMeasure,
	bitvec.CosineMeasure,
}

func randomVector(rng *hashing.SplitMix64, n, dim int) bitvec.Vector {
	bits := make([]uint32, 0, n)
	for len(bits) < n {
		bits = append(bits, uint32(rng.NextBelow(uint64(dim))))
	}
	return bitvec.New(bits...)
}

// testCorpus builds data vectors across density mixes: concentrated
// small-universe (all-dense packing), spread large-universe (sparse
// packing), and adversarial shapes (empty, single bit, exact copies of
// queries, word-boundary straddlers).
func testCorpus(rng *hashing.SplitMix64) (data, queries []bitvec.Vector) {
	for _, dim := range []int{64, 600, 4096, 1 << 18} {
		for _, n := range []int{0, 1, 7, 64, 150, 400} {
			if n <= dim {
				data = append(data, randomVector(rng, n, dim))
			}
		}
	}
	data = append(data,
		bitvec.New(),
		bitvec.New(63, 64, 127, 128, 191),
		bitvec.New(0, 1<<20),
	)
	queries = append(queries,
		bitvec.New(),
		bitvec.New(0),
		randomVector(rng, 80, 600),
		randomVector(rng, 150, 600),
		randomVector(rng, 30, 1<<18),
		bitvec.New(63, 64, 127, 128, 191),
	)
	// Planted exact and near matches so thresholds around 1.0 exercise
	// the prune's upper edge.
	data = append(data, queries[2], queries[5])
	return data, queries
}

// TestDifferentialSimilarity asserts the packed engine's similarity is
// bit-identical to bitvec.Measure.Similarity over sorted slices, for
// all five measures, across random and adversarial density mixes — the
// equivalence the whole verification rewrite rests on.
func TestDifferentialSimilarity(t *testing.T) {
	rng := hashing.NewSplitMix64(42)
	data, queries := testCorpus(rng)
	ps := bitvec.NewPackedSet(data)
	for _, m := range allMeasures {
		for qi, q := range queries {
			ses := Acquire(m, q)
			for id := range data {
				want := m.Similarity(q, data[id])
				if got := ses.Similarity(ps, data, int32(id)); got != want {
					t.Fatalf("%v query %d vector %d: packed %v, sorted %v", m, qi, id, got, want)
				}
				// The nil-set fallback must agree too (lsf indexes
				// without an attached packing).
				if got := ses.Similarity(nil, data, int32(id)); got != want {
					t.Fatalf("%v query %d vector %d: fallback %v, sorted %v", m, qi, id, got, want)
				}
			}
			Release(ses)
		}
	}
}

// TestDifferentialAtLeast asserts the pruned threshold check never
// diverges from the exact comparison: ok iff Similarity >= t, with the
// exact similarity returned whenever ok.
func TestDifferentialAtLeast(t *testing.T) {
	rng := hashing.NewSplitMix64(43)
	data, queries := testCorpus(rng)
	ps := bitvec.NewPackedSet(data)
	thresholds := []float64{0, 1e-9, 0.1, 0.25, 0.5, 0.51282, 0.75, 0.99, 1}
	for _, m := range allMeasures {
		for qi, q := range queries {
			ses := Acquire(m, q)
			for id := range data {
				want := m.Similarity(q, data[id])
				for _, th := range thresholds {
					sim, ok := ses.AtLeast(ps, data, int32(id), th)
					if ok != (want >= th) {
						t.Fatalf("%v query %d vector %d t=%v: ok = %v, similarity %v", m, qi, id, th, ok, want)
					}
					if ok && sim != want {
						t.Fatalf("%v query %d vector %d t=%v: sim = %v, want %v", m, qi, id, th, sim, want)
					}
					sim, ok = ses.MoreThan(ps, data, int32(id), th)
					if ok != (want > th) {
						t.Fatalf("%v MoreThan query %d vector %d t=%v: ok = %v, similarity %v", m, qi, id, th, ok, want)
					}
					if ok && sim != want {
						t.Fatalf("%v MoreThan query %d vector %d t=%v: sim = %v, want %v", m, qi, id, th, sim, want)
					}
				}
				// The running-best prune of best-candidate scans.
				if sim, ok := ses.MoreThan(ps, data, int32(id), -1); !ok || sim != want {
					t.Fatalf("%v query %d vector %d: MoreThan(-1) = (%v, %v), want (%v, true)", m, qi, id, sim, ok, want)
				}
			}
			Release(ses)
		}
	}
}

// TestNeedBounds pins the prune's core invariant: need(lx, t) never
// exceeds the smallest intersection whose similarity passes, so pruning
// can never drop a true match.
func TestNeedBounds(t *testing.T) {
	q := randomVector(hashing.NewSplitMix64(44), 120, 4096)
	for _, m := range allMeasures {
		ses := Acquire(m, q)
		lq := q.Len()
		for _, lx := range []int{0, 1, 5, lq - 1, lq, lq + 1, 3 * lq} {
			for _, th := range []float64{0, 0.001, 0.3, 0.5, 0.9, 1} {
				for _, strict := range []bool{false, true} {
					need := ses.need(lx, th, strict)
					if need < 0 {
						t.Fatalf("%v lx=%d t=%v: negative need %d", m, lx, th, need)
					}
					if need > 0 {
						// Everything below need must fail.
						s := ses.sim(need-1, lx)
						if (!strict && s >= th) || (strict && s > th) {
							t.Fatalf("%v lx=%d t=%v strict=%v: sim(need-1=%d) = %v passes", m, lx, th, strict, need-1, s)
						}
					}
				}
			}
		}
		Release(ses)
	}
}

// TestExactMatchBoundary pins the prune at the t = 1 upper edge, where
// an off-by-one in need() would drop exact matches.
func TestExactMatchBoundary(t *testing.T) {
	rng := hashing.NewSplitMix64(45)
	data := []bitvec.Vector{
		randomVector(rng, 50, 512),
		randomVector(rng, 50, 512),
		randomVector(rng, 50, 512),
	}
	q := data[1] // exact match in the middle
	ps := bitvec.NewPackedSet(data)
	ses := Acquire(bitvec.JaccardMeasure, q)
	defer Release(ses)
	if sim, ok := ses.AtLeast(ps, data, 1, 1); !ok || sim != 1 {
		t.Fatalf("AtLeast(self, 1) = (%v, %v), want (1, true)", sim, ok)
	}
	if _, ok := ses.AtLeast(ps, data, 1, math.Nextafter(1, 2)); ok {
		t.Fatalf("AtLeast above 1 should fail")
	}
	if _, ok := ses.MoreThan(ps, data, 1, 1); ok {
		t.Fatalf("MoreThan(self, 1) should fail (similarity is exactly 1)")
	}
}

// TestOversizedQueryFallsBack pins the dense-bitmap bound: a query with
// a hostile bit id (the serving JSON API accepts arbitrary uint32s)
// must not allocate a giant bitmap, and must still verify exactly via
// the sorted-slice path.
func TestOversizedQueryFallsBack(t *testing.T) {
	rng := hashing.NewSplitMix64(47)
	data := []bitvec.Vector{
		randomVector(rng, 100, 1024),
		bitvec.New(3, 4294967295), // data sharing the hostile bit
	}
	ps := bitvec.NewPackedSet(data)
	q := bitvec.New(3, 7, 4294967295) // max bit demands a ~512MB bitmap
	for _, m := range allMeasures {
		ses := Acquire(m, q)
		if ses.packedQ {
			t.Fatalf("%v: oversized query packed a dense bitmap", m)
		}
		if cap(ses.qwords) > maxQueryWords {
			t.Fatalf("%v: session bitmap grew to %d words", m, cap(ses.qwords))
		}
		for id := range data {
			want := m.Similarity(q, data[id])
			if got := ses.Similarity(ps, data, int32(id)); got != want {
				t.Fatalf("%v vector %d: got %v want %v", m, id, got, want)
			}
			sim, ok := ses.AtLeast(ps, data, int32(id), 0.1)
			if ok != (want >= 0.1) || (ok && sim != want) {
				t.Fatalf("%v vector %d: AtLeast = (%v, %v), similarity %v", m, id, sim, ok, want)
			}
		}
		Release(ses)
	}
	// The pool must still hand out working packed sessions afterwards.
	q2 := randomVector(rng, 50, 1024)
	ses := Acquire(bitvec.JaccardMeasure, q2)
	defer Release(ses)
	if want := bitvec.JaccardMeasure.Similarity(q2, data[0]); ses.Similarity(ps, data, 0) != want {
		t.Fatalf("post-oversize session verifies wrong")
	}
}

// TestSessionReuse exercises the pool scrub: interleaved queries of very
// different shapes must not leak bits between sessions.
func TestSessionReuse(t *testing.T) {
	rng := hashing.NewSplitMix64(46)
	data := []bitvec.Vector{randomVector(rng, 200, 2048)}
	ps := bitvec.NewPackedSet(data)
	queries := []bitvec.Vector{
		randomVector(rng, 500, 2048),
		bitvec.New(1),
		randomVector(rng, 10, 1<<16),
		bitvec.New(),
		randomVector(rng, 300, 2048),
	}
	for round := 0; round < 3; round++ {
		for _, m := range allMeasures {
			for _, q := range queries {
				ses := Acquire(m, q)
				want := m.Similarity(q, data[0])
				if got := ses.Similarity(ps, data, 0); got != want {
					t.Fatalf("round %d %v: got %v want %v (stale bitmap?)", round, m, got, want)
				}
				Release(ses)
			}
		}
	}
}
