package replica

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"skewsim/internal/faultinject"
	"skewsim/internal/obs"
	"skewsim/internal/server"
	"skewsim/internal/wal"
)

// Fault suite for replication (runs under `make test-fault`): a primary
// whose feed stalls, a feed connection cut mid-stream, a torn bootstrap
// snapshot, and a primary SIGKILLed after the follower caught up. The
// invariant throughout is the cursor discipline — the follower may
// re-pull but never skips, so every fault ends in convergence to the
// primary's exact state.

// faultMetrics builds a Metrics on a throwaway registry so tests can
// read the fetch/bootstrap counters directly.
func faultMetrics() *Metrics { return NewMetrics(obs.NewRegistry()) }

// TestFaultReplicaFeedStall: the primary's feed handler fails (500) for
// a while; the follower counts fetch errors, keeps retrying, and
// converges once the feed recovers.
func TestFaultReplicaFeedStall(t *testing.T) {
	primary, ts := startPrimary(t, t.TempDir())
	if _, err := primary.InsertBatch(sampleVectors(t, 150, 11)); err != nil {
		t.Fatalf("InsertBatch: %v", err)
	}

	// Fail every feed request until disarmed.
	var stalled atomic.Bool
	stalled.Store(true)
	restore := faultinject.Set(faultinject.ReplicaFeedStall, func(args ...any) error {
		if stalled.Load() {
			return errors.New("injected feed stall")
		}
		return nil
	})
	defer restore()

	m := faultMetrics()
	fsrv, rep, err := Open(Config{
		Primary:  ts.URL,
		Server:   followerConfig(t, t.TempDir()),
		Interval: 10 * time.Millisecond,
		Metrics:  m,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer fsrv.Close()
	defer rep.Stop()
	rep.Start()

	// The stall must surface as fetch errors, not silence.
	deadline := time.Now().Add(5 * time.Second)
	for m.FetchErrors.Value() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d fetch errors recorded during stall", m.FetchErrors.Value())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if rep.lagRecords() != 0 && allCaughtUp(rep) {
		t.Fatal("follower claims caught up while the feed is stalled")
	}

	stalled.Store(false)
	waitCaughtUp(t, rep, 10*time.Second)
	assertAgree(t, fsrv, primary, sampleVectors(t, 20, 71))
}

// TestFaultReplicaFeedDisconnectResume: the first few feed responses
// are cut mid-body. Each cut is a fetch error (torn frames never
// apply), the follower resumes from its applied cursor, and when the
// dust settles the records-applied counter equals exactly the cursor
// advance — nothing was applied twice.
func TestFaultReplicaFeedDisconnectResume(t *testing.T) {
	psrv, err := server.New(followerConfig(t, t.TempDir()))
	if err != nil {
		t.Fatalf("New primary: %v", err)
	}
	inner := server.NewHandler(psrv, server.HandlerConfig{})
	var cuts atomic.Int32
	cuts.Store(4)
	proxy := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/replica/wal") && cuts.Load() > 0 {
			rec := httptest.NewRecorder()
			inner.ServeHTTP(rec, r)
			if rec.Code == http.StatusOK && rec.Body.Len() > 1 && cuts.Add(-1) >= 0 {
				for k, vs := range rec.Header() {
					if k == "Content-Length" {
						continue
					}
					for _, v := range vs {
						w.Header().Add(k, v)
					}
				}
				w.WriteHeader(rec.Code)
				w.(http.Flusher).Flush()
				_, _ = w.Write(rec.Body.Bytes()[:rec.Body.Len()/2])
				panic(http.ErrAbortHandler) // cut the connection mid-stream
			}
			for k, vs := range rec.Header() {
				for _, v := range vs {
					w.Header().Add(k, v)
				}
			}
			w.WriteHeader(rec.Code)
			_, _ = w.Write(rec.Body.Bytes())
			return
		}
		inner.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(proxy)
	t.Cleanup(func() { ts.Close(); psrv.Close() })

	if _, err := psrv.InsertBatch(sampleVectors(t, 200, 13)); err != nil {
		t.Fatalf("InsertBatch: %v", err)
	}

	m := faultMetrics()
	fsrv, rep, err := Open(Config{
		Primary:  ts.URL,
		Server:   followerConfig(t, t.TempDir()),
		Interval: 10 * time.Millisecond,
		Metrics:  m,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer fsrv.Close()
	defer rep.Stop()
	before := rep.Cursors()
	rep.Start()
	waitCaughtUp(t, rep, 10*time.Second)

	if cuts.Load() > 0 {
		t.Fatalf("proxy cut only %d connections", 4-cuts.Load())
	}
	if m.FetchErrors.Value() == 0 {
		t.Fatal("mid-stream cuts recorded no fetch errors")
	}
	// Exactly one apply per shipped record: the counter must equal the
	// cursor advance, or some cut re-applied records it already had.
	var advance int64
	for i, c := range rep.Cursors() {
		advance += int64(c - before[i])
	}
	if got := m.RecordsApplied.Value(); got != advance {
		t.Fatalf("records applied %d != cursor advance %d (duplicate applies)", got, advance)
	}
	assertAgree(t, fsrv, psrv, sampleVectors(t, 20, 72))
}

// TestFaultReplicaSnapshotTruncatedBootstrap: the primary tears the
// bootstrap snapshot stream twice; each torn attempt leaves no partial
// state behind and the third attempt bootstraps cleanly.
func TestFaultReplicaSnapshotTruncatedBootstrap(t *testing.T) {
	primary, ts := startPrimary(t, t.TempDir())
	if _, err := primary.InsertBatch(sampleVectors(t, 120, 17)); err != nil {
		t.Fatalf("InsertBatch: %v", err)
	}

	var tears atomic.Int32
	tears.Store(2)
	restore := faultinject.Set(faultinject.ReplicaSnapshotTruncate, func(args ...any) error {
		if tears.Add(-1) >= 0 {
			return errors.New("injected snapshot tear")
		}
		return nil
	})
	defer restore()

	m := faultMetrics()
	fdir := t.TempDir()
	fsrv, rep, err := Open(Config{
		Primary:  ts.URL,
		Server:   followerConfig(t, fdir),
		StateDir: fdir,
		Interval: 10 * time.Millisecond,
		Metrics:  m,
	})
	if err != nil {
		t.Fatalf("Open after torn snapshots: %v", err)
	}
	defer fsrv.Close()
	defer rep.Stop()

	if tears.Load() >= 0 {
		t.Fatalf("snapshot tear fired only %d times", 2-tears.Load())
	}
	if got := m.Bootstraps.Value(); got != 1 {
		t.Fatalf("bootstraps counted %d, want 1 (only the clean attempt)", got)
	}
	// A torn attempt must not leave a spool temp file behind.
	if _, err := os.Stat(filepath.Join(fdir, bootSnapFile+".tmp")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("torn bootstrap left %s.tmp behind (stat err %v)", bootSnapFile, err)
	}
	rep.Start()
	waitCaughtUp(t, rep, 10*time.Second)
	assertAgree(t, fsrv, primary, sampleVectors(t, 20, 73))
}

const (
	envPrimaryDir = "SKEWSIM_REPLICA_PRIMARY_DIR"
)

// TestReplicaPrimaryHelper is the sacrificial primary: re-executed by
// TestFaultReplicaPrimaryKillPromote, it serves a fully-synced durable
// server over HTTP, applies a deterministic workload, announces DONE,
// and blocks until SIGKILLed.
func TestReplicaPrimaryHelper(t *testing.T) {
	dir := os.Getenv(envPrimaryDir)
	if dir == "" {
		t.Skip("primary helper: run only as a subprocess")
	}
	cfg := followerConfig(t, dir)
	cfg.WAL.Sync = wal.SyncAlways // every acked write survives the SIGKILL
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatalf("helper New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("helper listen: %v", err)
	}
	go http.Serve(ln, server.NewHandler(srv, server.HandlerConfig{})) //nolint:errcheck
	fmt.Printf("ADDR http://%s\n", ln.Addr())

	ids, err := srv.InsertBatch(sampleVectors(t, 180, 21))
	if err != nil {
		t.Fatalf("helper InsertBatch: %v", err)
	}
	for i := 0; i < len(ids); i += 7 {
		srv.Delete(ids[i])
	}
	fmt.Println("DONE")
	select {} // hold state until the parent SIGKILLs us
}

// TestFaultReplicaPrimaryKillPromote: the full failover drill. A
// subprocess primary (SyncAlways) applies a workload, the follower
// catches up, the primary is SIGKILLed, the follower is promoted — and
// its state must be bit-identical (candidate sets and similarities) to
// a reference recovered from the dead primary's own WAL, i.e. nothing
// acked was lost and nothing was invented. The promoted node then
// accepts writes.
func TestFaultReplicaPrimaryKillPromote(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	pdir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=TestReplicaPrimaryHelper$")
	cmd.Env = append(os.Environ(), envPrimaryDir+"="+pdir)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("StdoutPipe: %v", err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting helper: %v", err)
	}
	t.Cleanup(func() { _ = cmd.Process.Kill(); _, _ = cmd.Process.Wait() })

	sc := bufio.NewScanner(stdout)
	readUntil := func(prefix string) string {
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, prefix) {
				return strings.TrimSpace(strings.TrimPrefix(line, prefix))
			}
		}
		t.Fatalf("helper exited before printing %q (scan err %v)", prefix, sc.Err())
		return ""
	}
	addr := readUntil("ADDR ")

	fsrv, rep, err := Open(Config{
		Primary:  addr,
		Server:   followerConfig(t, t.TempDir()),
		Interval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer fsrv.Close()
	defer rep.Stop()
	rep.Start()

	readUntil("DONE")
	// Quiesce: asynchronous shipping only promises the applied prefix,
	// so catch up fully before pulling the trigger.
	waitCaughtUp(t, rep, 15*time.Second)

	if err := cmd.Process.Kill(); err != nil { // SIGKILL, no shutdown path runs
		t.Fatalf("killing primary: %v", err)
	}
	_, _ = cmd.Process.Wait()

	if err := rep.Promote(); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if fsrv.IsReadOnly() {
		t.Fatal("promoted follower still read-only")
	}

	// Reference: recover the dead primary's WAL in-process. SyncAlways
	// means every acked write is on disk, so the promoted follower must
	// match it exactly.
	refCfg := followerConfig(t, pdir)
	refCfg.WAL.Sync = wal.SyncAlways
	ref, err := server.New(refCfg)
	if err != nil {
		t.Fatalf("recovering reference from dead primary's WAL: %v", err)
	}
	defer ref.Close()
	assertAgree(t, fsrv, ref, sampleVectors(t, 25, 74))

	if _, err := fsrv.Insert(sampleVectors(t, 1, 75)[0]); err != nil {
		t.Fatalf("insert on promoted node: %v", err)
	}
}
