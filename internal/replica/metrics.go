package replica

import "skewsim/internal/obs"

// Metrics instruments a follower's replication: fetch and apply
// counters at construction, the lag gauges once a Replicator exists
// (they close over its cursors). One Replicator per Metrics.
type Metrics struct {
	reg *obs.Registry

	// Fetches counts completed feed requests (frames or a clean 204);
	// FetchErrors counts failed ones (transport, status, parse).
	Fetches     *obs.Counter
	FetchErrors *obs.Counter
	// RecordsApplied counts feed records applied into the local server.
	RecordsApplied *obs.Counter
	// Bootstraps counts full snapshot bootstraps (fresh follower, or a
	// restart after the primary truncated past our cursor).
	Bootstraps *obs.Counter
}

// NewMetrics registers the replication counters on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		reg: reg,
		Fetches: reg.Counter("skewsim_replica_fetches_total",
			"Replication feed requests, by outcome.", obs.L("outcome", "ok")),
		FetchErrors: reg.Counter("skewsim_replica_fetches_total",
			"Replication feed requests, by outcome.", obs.L("outcome", "error")),
		RecordsApplied: reg.Counter("skewsim_replica_records_applied_total",
			"WAL records applied from the primary's feed."),
		Bootstraps: reg.Counter("skewsim_replica_bootstraps_total",
			"Full snapshot bootstraps from the primary."),
	}
}

// registerLagGauges registers the scrape-time lag gauges over r: how
// many primary records the cursors trail by, and for how long the
// stalest shard has not been caught up. The failover gateway reads
// lag_records to decide whether a follower is close enough to serve.
func (m *Metrics) registerLagGauges(r *Replicator) {
	m.reg.GaugeFunc("skewsim_replica_lag_records",
		"Primary WAL records not yet applied locally, summed over shards.",
		func() float64 { return float64(r.lagRecords()) })
	m.reg.GaugeFunc("skewsim_replica_lag_seconds",
		"Seconds since the stalest shard was last caught up (0 when current).",
		func() float64 { return r.lagSeconds() })
}
