package replica

import (
	"net/http/httptest"
	"slices"
	"testing"
	"time"

	"skewsim/internal/bitvec"
	"skewsim/internal/core"
	"skewsim/internal/dist"
	"skewsim/internal/hashing"
	"skewsim/internal/segment"
	"skewsim/internal/server"
	"skewsim/internal/wal"
)

// followerConfig builds a durable server config over dir with the same
// engines every test shares (identical Params + shard count on both
// sides is the replication contract).
func followerConfig(t testing.TB, dir string) server.Config {
	t.Helper()
	d, err := dist.NewProduct(dist.Zipf(64, 0.5, 1.0))
	if err != nil {
		t.Fatalf("NewProduct: %v", err)
	}
	params, err := core.EngineParams(core.Adversarial, d, 512, 0.5, core.Options{Seed: 19, Repetitions: 3})
	if err != nil {
		t.Fatalf("EngineParams: %v", err)
	}
	return server.Config{
		Shards:  3,
		Segment: segment.Config{Params: params, N: 512, MemtableSize: 32, MaxSegments: 3},
		WALDir:  dir,
		WAL:     wal.Options{Sync: wal.SyncNever, SegmentBytes: 1 << 12},
	}
}

func sampleVectors(t testing.TB, n int, seed uint64) []bitvec.Vector {
	t.Helper()
	d := dist.MustProduct(dist.Zipf(64, 0.5, 1.0))
	return d.SampleN(hashing.NewSplitMix64(seed), n)
}

// startPrimary spins up a durable primary with its HTTP face.
func startPrimary(t *testing.T, dir string) (*server.Server, *httptest.Server) {
	t.Helper()
	srv, err := server.New(followerConfig(t, dir))
	if err != nil {
		t.Fatalf("New primary: %v", err)
	}
	ts := httptest.NewServer(server.NewHandler(srv, server.HandlerConfig{}))
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts
}

// waitCaughtUp polls until every shard's feed has reported caught-up
// (a 204) at some point AFTER this call began, with lag 0. The "after"
// matters: caughtUp flags and lastSeen headers go stale between pull
// ticks, so a shard can look drained on data observed before the
// primary's final writes. Callers quiesce the primary first, so a
// fresh 204 per shard proves the follower really holds everything.
func waitCaughtUp(t *testing.T, r *Replicator, deadline time.Duration) {
	t.Helper()
	start := time.Now()
	stop := start.Add(deadline)
	for time.Now().Before(stop) {
		if r.lagRecords() == 0 && allCaughtUpSince(r, start) {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("follower not caught up after %v (lag %d records)", deadline, r.lagRecords())
}

func allCaughtUpSince(r *Replicator, since time.Time) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, up := range r.caughtUp {
		if !up || r.lastCaught[i].Before(since) {
			return false
		}
	}
	return true
}

func allCaughtUp(r *Replicator) bool {
	return allCaughtUpSince(r, time.Time{})
}

// assertAgree compares two servers' answers: identical live counts and
// identical top-k lists over a probe batch.
func assertAgree(t *testing.T, got, want *server.Server, queries []bitvec.Vector) {
	t.Helper()
	if g, w := got.Stats().Live, want.Stats().Live; g != w {
		t.Fatalf("live: follower %d, primary %d", g, w)
	}
	for qi, q := range queries {
		gm, _ := got.TopK(q, 10, bitvec.BraunBlanquetMeasure)
		wm, _ := want.TopK(q, 10, bitvec.BraunBlanquetMeasure)
		if !slices.Equal(gm, wm) {
			t.Fatalf("query %d: top-k differs\nfollower: %v\nprimary:  %v", qi, gm, wm)
		}
	}
}

// TestFollowerCatchUpAndPromote: a fresh follower bootstraps, streams
// the live feed, converges to the primary's exact state, and keeps
// accepting writes after promotion.
func TestFollowerCatchUpAndPromote(t *testing.T) {
	primary, ts := startPrimary(t, t.TempDir())
	pre := sampleVectors(t, 200, 5)
	if _, err := primary.InsertBatch(pre); err != nil {
		t.Fatalf("InsertBatch: %v", err)
	}

	fsrv, rep, err := Open(Config{
		Primary:  ts.URL,
		Server:   followerConfig(t, t.TempDir()),
		Interval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer fsrv.Close()
	defer rep.Stop()
	if !fsrv.IsReadOnly() {
		t.Fatal("follower not read-only")
	}
	rep.Start()

	// Writes racing the catch-up must ship too.
	ids, err := primary.InsertBatch(sampleVectors(t, 150, 6))
	if err != nil {
		t.Fatalf("InsertBatch 2: %v", err)
	}
	for i := 0; i < len(ids); i += 5 {
		primary.Delete(ids[i])
	}
	waitCaughtUp(t, rep, 10*time.Second)
	assertAgree(t, fsrv, primary, sampleVectors(t, 20, 77))

	if err := rep.Promote(); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if fsrv.IsReadOnly() {
		t.Fatal("promoted follower still read-only")
	}
	// Fresh inserts must not collide with replicated ids.
	newID, err := fsrv.Insert(bitvec.New(1, 2, 3))
	if err != nil {
		t.Fatalf("post-promotion insert: %v", err)
	}
	for _, old := range ids {
		if newID == old {
			t.Fatalf("promoted primary reused id %d", newID)
		}
	}
}

// TestFollowerRestartResumesFromCursors: stop a follower mid-life,
// reopen over the same directories, and the second incarnation resumes
// from the persisted cursors (no bootstrap) and converges.
func TestFollowerRestartResumesFromCursors(t *testing.T) {
	primary, ts := startPrimary(t, t.TempDir())
	if _, err := primary.InsertBatch(sampleVectors(t, 120, 8)); err != nil {
		t.Fatalf("InsertBatch: %v", err)
	}
	fdir := t.TempDir()
	cfg := Config{Primary: ts.URL, Server: followerConfig(t, fdir), Interval: 10 * time.Millisecond}
	fsrv, rep, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	rep.Start()
	waitCaughtUp(t, rep, 10*time.Second)
	rep.Stop()
	fsrv.Close()

	// More primary writes while the follower is down.
	if _, err := primary.InsertBatch(sampleVectors(t, 80, 9)); err != nil {
		t.Fatalf("InsertBatch 2: %v", err)
	}

	cfg.Server = followerConfig(t, fdir)
	fsrv2, rep2, err := Open(cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer fsrv2.Close()
	defer rep2.Stop()
	rep2.Start()
	waitCaughtUp(t, rep2, 10*time.Second)
	assertAgree(t, fsrv2, primary, sampleVectors(t, 20, 78))
}
