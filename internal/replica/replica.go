// Package replica implements the follower side of WAL log shipping: a
// read-only server that continuously pulls per-shard record frames
// from a primary's replication feed (GET /v1/replica/wal), applies
// them through the server's idempotent reconciliation path, and
// persists its applied cursors so a restart resumes where it left off.
// A follower too far behind the primary's checkpoint fence (the feed
// answers 410 Gone) bootstraps from the primary's streamed snapshot
// (GET /v1/replica/snapshot) instead.
//
// Cursor discipline: a cursor is written to disk only after the
// records at or below it are applied (and journaled to the follower's
// own WAL), so it may under-report progress — a crash between apply
// and persist re-pulls records the apply path skips idempotently — but
// never over-report, which would silently lose records.
package replica

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"skewsim/internal/dataio"
	"skewsim/internal/server"
	"skewsim/internal/wal"
)

// errGone marks a feed cursor the primary has checkpoint-truncated.
var errGone = errors.New("replica: feed position compacted away (410)")

// Config wires a follower.
type Config struct {
	// Primary is the primary's base URL, e.g. "http://10.0.0.1:8080".
	Primary string
	// Server configures the follower's own server. WALDir should be set
	// so the follower is durable in its own right; the shard count must
	// match the primary's (validated against the feed's header).
	Server server.Config
	// StateDir holds the cursor file. Defaults to Server.WALDir.
	StateDir string
	// Client issues the feed and snapshot requests. Defaults to a
	// plain client; per-request deadlines come from FetchTimeout.
	Client *http.Client
	// Interval is the poll delay while caught up. Default 200ms.
	Interval time.Duration
	// FetchTimeout bounds one feed request. Default 10s.
	FetchTimeout time.Duration
	// Logger receives replication progress and errors. Nil uses
	// slog.Default.
	Logger *slog.Logger
	// Metrics, when non-nil, counts fetches/applies/bootstraps and
	// exposes the replication lag gauges.
	Metrics *Metrics
	// OnFatal is invoked (once) when replication cannot continue: the
	// primary truncated past our cursor mid-run (a restart will
	// re-bootstrap), or the shard counts disagree. The daemon exits
	// from it; nil just logs.
	OnFatal func(error)
}

// cursorFile is the JSON state persisted under StateDir; bootSnapFile
// is the bootstrap snapshot kept on disk so a restarted follower can
// rebuild the pre-bootstrap base (its local WAL only journals records
// applied from the feed AFTER the bootstrap cut).
const (
	cursorFile   = "replica-cursors.json"
	bootSnapFile = "replica-boot.snap"
)

type cursorState struct {
	Primary string   `json:"primary"`
	Cursors []uint64 `json:"cursors"`
}

// Replicator pulls one primary's shards into a local follower server.
type Replicator struct {
	cfg     Config
	srv     *server.Server
	client  *http.Client
	logger  *slog.Logger
	metrics *Metrics

	mu         sync.Mutex
	cursors    []uint64    // applied primary LSN per shard
	lastSeen   []uint64    // primary head per shard, from feed headers
	caughtUp   []bool      // shard saw 204 more recently than new frames
	lastCaught []time.Time // when the shard was last caught up
	fatalOnce  sync.Once
	persistMu  sync.Mutex // serializes cursor-file writes across pullers

	stopOnce sync.Once
	stop     chan struct{}
	done     sync.WaitGroup
}

// Open builds the follower: a locally recovered server when a cursor
// file from an earlier run exists, otherwise a fresh bootstrap from
// the primary's snapshot stream (retried a few times — a torn stream
// leaves nothing behind). The returned server is read-only; call
// rep.Start to begin catch-up and rep.Promote to take over as primary.
// The caller owns closing the server (after stopping the replicator).
func Open(cfg Config) (*server.Server, *Replicator, error) {
	if cfg.Primary == "" {
		return nil, nil, errors.New("replica: Config.Primary required")
	}
	if cfg.StateDir == "" {
		cfg.StateDir = cfg.Server.WALDir
	}
	if cfg.StateDir == "" {
		return nil, nil, errors.New("replica: Config.StateDir (or Server.WALDir) required")
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 200 * time.Millisecond
	}
	if cfg.FetchTimeout <= 0 {
		cfg.FetchTimeout = 10 * time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}

	var srv *server.Server
	var cursors []uint64
	state, err := loadCursors(filepath.Join(cfg.StateDir, cursorFile))
	switch {
	case err == nil:
		// Warm start: the persisted bootstrap snapshot rebuilds the base
		// the local WAL predates, then local WAL recovery reconciles the
		// feed records journaled since (snapshot ids present win, deletes
		// re-apply — the standard idempotent path). The cursor file, not
		// the snapshot header, carries the resume position: it is at
		// least as new.
		snapPath := filepath.Join(cfg.StateDir, bootSnapFile)
		if f, ferr := os.Open(snapPath); ferr == nil {
			srv, _, err = server.ReadReplicaSnapshot(f, cfg.Server)
			f.Close()
			if err != nil {
				return nil, nil, fmt.Errorf("replica: restoring bootstrap snapshot: %w", err)
			}
		} else {
			srv, err = server.New(cfg.Server)
			if err != nil {
				return nil, nil, fmt.Errorf("replica: recovering local state: %w", err)
			}
		}
		cursors = state.Cursors
		if len(cursors) != srv.Shards() {
			srv.Close()
			return nil, nil, fmt.Errorf("replica: cursor file has %d shards, server %d", len(cursors), srv.Shards())
		}
	case errors.Is(err, os.ErrNotExist):
		srv, cursors, err = bootstrap(cfg)
		if err != nil {
			return nil, nil, err
		}
	default:
		return nil, nil, fmt.Errorf("replica: reading cursor file: %w", err)
	}

	srv.SetReadOnly(true)
	r := &Replicator{
		cfg:        cfg,
		srv:        srv,
		client:     cfg.Client,
		logger:     cfg.Logger,
		metrics:    cfg.Metrics,
		cursors:    cursors,
		lastSeen:   append([]uint64(nil), cursors...),
		caughtUp:   make([]bool, len(cursors)),
		lastCaught: make([]time.Time, len(cursors)),
		stop:       make(chan struct{}),
	}
	now := time.Now()
	for i := range r.lastCaught {
		r.lastCaught[i] = now
	}
	if r.metrics != nil {
		r.metrics.registerLagGauges(r)
	}
	return srv, r, nil
}

// bootstrap wipes any partial local state and rebuilds the follower
// from the primary's SKREP1 snapshot stream. Up to three attempts: a
// torn stream (primary fault, network cut) removes everything it wrote
// before the retry, so a half-applied bootstrap can never be mistaken
// for a complete one.
func bootstrap(cfg Config) (*server.Server, []uint64, error) {
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		if attempt > 0 {
			time.Sleep(time.Duration(attempt) * 500 * time.Millisecond)
		}
		srv, cursors, err := bootstrapOnce(cfg)
		if err == nil {
			return srv, cursors, nil
		}
		lastErr = err
		cfg.Logger.Warn("replica bootstrap attempt failed", "attempt", attempt+1, "err", err)
	}
	return nil, nil, fmt.Errorf("replica: bootstrap failed: %w", lastErr)
}

func bootstrapOnce(cfg Config) (*server.Server, []uint64, error) {
	// Clean slate: a partial earlier bootstrap (torn snapshot, crash)
	// must leave nothing a reconciliation could mistake for real state.
	if cfg.Server.WALDir != "" {
		if err := os.RemoveAll(cfg.Server.WALDir); err != nil {
			return nil, nil, fmt.Errorf("replica: clearing wal dir: %w", err)
		}
	}
	if err := os.MkdirAll(cfg.StateDir, 0o755); err != nil {
		return nil, nil, err
	}
	if cfg.Server.WALDir != "" {
		if err := os.MkdirAll(cfg.Server.WALDir, 0o755); err != nil {
			return nil, nil, err
		}
	}
	resp, err := cfg.Client.Get(cfg.Primary + "/v1/replica/snapshot")
	if err != nil {
		return nil, nil, fmt.Errorf("replica: snapshot request: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, nil, fmt.Errorf("replica: snapshot request: status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	// Spool the stream to disk first: restarts rebuild the bootstrap
	// base from this file (the local WAL only journals records applied
	// after the cut), and a torn download dies here, before anything is
	// restored.
	snapPath := filepath.Join(cfg.StateDir, bootSnapFile)
	tmp := snapPath + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return nil, nil, fmt.Errorf("replica: spooling snapshot: %w", err)
	}
	_, err = io.Copy(f, resp.Body)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return nil, nil, fmt.Errorf("replica: spooling snapshot: %w", err)
	}
	rf, err := os.Open(tmp)
	if err != nil {
		return nil, nil, err
	}
	srv, cursors, err := server.ReadReplicaSnapshot(rf, cfg.Server)
	rf.Close()
	if err != nil {
		os.Remove(tmp)
		return nil, nil, fmt.Errorf("replica: restoring snapshot: %w", err)
	}
	if err := os.Rename(tmp, snapPath); err != nil {
		srv.Close()
		return nil, nil, err
	}
	if err := saveCursors(cfg.StateDir, cursorState{Primary: cfg.Primary, Cursors: cursors}); err != nil {
		srv.Close()
		return nil, nil, err
	}
	if cfg.Metrics != nil {
		cfg.Metrics.Bootstraps.Inc()
	}
	cfg.Logger.Info("replica bootstrapped from primary snapshot",
		"primary", cfg.Primary, "shards", len(cursors))
	return srv, cursors, nil
}

func loadCursors(path string) (cursorState, error) {
	var st cursorState
	raw, err := os.ReadFile(path)
	if err != nil {
		return st, err
	}
	if err := json.Unmarshal(raw, &st); err != nil {
		return st, fmt.Errorf("parsing %s: %w", path, err)
	}
	return st, nil
}

// saveCursors writes the cursor file atomically (temp + rename): a
// crash mid-write leaves the previous cursors, which only re-pull.
func saveCursors(dir string, st cursorState) error {
	raw, err := json.Marshal(st)
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, cursorFile+".tmp")
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return fmt.Errorf("replica: writing cursor file: %w", err)
	}
	return os.Rename(tmp, filepath.Join(dir, cursorFile))
}

// Start launches one puller goroutine per shard.
func (r *Replicator) Start() {
	for shard := range r.cursors {
		r.done.Add(1)
		go r.pullLoop(shard)
	}
}

// Stop halts every puller and waits for them. Idempotent.
func (r *Replicator) Stop() {
	r.stopOnce.Do(func() { close(r.stop) })
	r.done.Wait()
}

// Promote turns the follower into a primary: stop replicating, re-seed
// the id counter past everything replicated applies produced, and
// accept writes. The caller (skewsimd wires this to
// POST /v1/admin/promote) keeps serving on the same listener.
func (r *Replicator) Promote() error {
	r.Stop()
	r.srv.ReseedNextID()
	r.srv.SetReadOnly(false)
	r.logger.Info("promoted to primary", "was_following", r.cfg.Primary)
	return nil
}

// Cursors returns a copy of the applied primary LSN per shard.
func (r *Replicator) Cursors() []uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]uint64(nil), r.cursors...)
}

// lagRecords sums, over shards, how far the cursor trails the newest
// primary LSN the feed has reported.
func (r *Replicator) lagRecords() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var lag uint64
	for i, cur := range r.cursors {
		if r.lastSeen[i] > cur {
			lag += r.lastSeen[i] - cur
		}
	}
	return lag
}

// lagSeconds is 0 while every shard is caught up, else the age of the
// stalest shard's last caught-up moment.
func (r *Replicator) lagSeconds() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var worst float64
	for i := range r.cursors {
		if r.caughtUp[i] {
			continue
		}
		if age := time.Since(r.lastCaught[i]).Seconds(); age > worst {
			worst = age
		}
	}
	return worst
}

func (r *Replicator) fatal(err error) {
	r.fatalOnce.Do(func() {
		r.logger.Error("replication cannot continue", "err", err)
		if r.cfg.OnFatal != nil {
			r.cfg.OnFatal(err)
		}
	})
}

// pullLoop drains shard's feed until stopped: pull again immediately
// while frames arrive, poll at the configured interval once caught up
// or after a transient error, bail out through fatal() on a 410 (the
// primary truncated past us — a restart re-bootstraps).
func (r *Replicator) pullLoop(shard int) {
	defer r.done.Done()
	for {
		select {
		case <-r.stop:
			return
		default:
		}
		applied, err := r.pullOnce(shard)
		switch {
		case errors.Is(err, errGone):
			// The primary checkpoint-truncated past our cursor; only a
			// fresh bootstrap helps. Drop the cursor file so the next
			// start (the daemon exits via OnFatal) takes that path.
			if rmErr := os.Remove(filepath.Join(r.cfg.StateDir, cursorFile)); rmErr != nil && !errors.Is(rmErr, os.ErrNotExist) {
				r.logger.Warn("removing stale cursor file", "err", rmErr)
			}
			r.fatal(fmt.Errorf("shard %d: %w", shard, err))
			return
		case err != nil:
			if r.metrics != nil {
				r.metrics.FetchErrors.Inc()
			}
			r.logger.Warn("replica fetch failed", "shard", shard, "err", err)
		case applied > 0:
			continue // backlog: keep pulling without delay
		}
		select {
		case <-r.stop:
			return
		case <-time.After(r.cfg.Interval):
		}
	}
}

// pullOnce issues one feed request for shard and applies its records.
// Returns how many records were applied; errGone means the position is
// compacted away.
func (r *Replicator) pullOnce(shard int) (int, error) {
	r.mu.Lock()
	cursor := r.cursors[shard]
	r.mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.FetchTimeout)
	defer cancel()
	url := fmt.Sprintf("%s/v1/replica/wal?shard=%d&from_lsn=%d", r.cfg.Primary, shard, cursor+1)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()

	if sc := resp.Header.Get("X-Skewsim-Shard-Count"); sc != "" {
		if n, err := strconv.Atoi(sc); err == nil && n != r.srv.Shards() {
			err := fmt.Errorf("replica: primary has %d shards, follower %d — placement would diverge", n, r.srv.Shards())
			r.fatal(err)
			return 0, err
		}
	}
	switch resp.StatusCode {
	case http.StatusNoContent:
		r.mu.Lock()
		r.lastSeen[shard] = cursor
		r.caughtUp[shard] = true
		r.lastCaught[shard] = time.Now()
		r.mu.Unlock()
		if r.metrics != nil {
			r.metrics.Fetches.Inc()
		}
		return 0, nil
	case http.StatusGone:
		return 0, errGone
	case http.StatusOK:
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return 0, fmt.Errorf("feed status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}

	first, err := strconv.ParseUint(resp.Header.Get("X-Skewsim-First-Lsn"), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad X-Skewsim-First-Lsn: %w", err)
	}
	last, err := strconv.ParseUint(resp.Header.Get("X-Skewsim-Last-Lsn"), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad X-Skewsim-Last-Lsn: %w", err)
	}
	if first > cursor+1 {
		err := fmt.Errorf("replica: shard %d feed gap: cursor %d, stream starts at %d", shard, cursor, first)
		r.fatal(err)
		return 0, err
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, fmt.Errorf("reading feed body: %w", err)
	}
	recs, err := decodeFrames(body)
	if err != nil {
		return 0, err
	}
	if got := first + uint64(len(recs)) - 1; got != last {
		return 0, fmt.Errorf("feed body ends at lsn %d, header says %d", got, last)
	}
	if err := r.srv.ApplyReplicated(shard, recs); err != nil {
		return 0, err
	}
	r.mu.Lock()
	r.cursors[shard] = last
	if last > r.lastSeen[shard] {
		r.lastSeen[shard] = last
	}
	r.caughtUp[shard] = false
	cursors := append([]uint64(nil), r.cursors...)
	r.mu.Unlock()
	// Persist after apply: the on-disk cursor must never lead the
	// applied state. A failed write only re-pulls after a restart.
	// Serialized across pullers — they share one temp file.
	r.persistMu.Lock()
	err = saveCursors(r.cfg.StateDir, cursorState{Primary: r.cfg.Primary, Cursors: cursors})
	r.persistMu.Unlock()
	if err != nil {
		r.logger.Warn("replica cursor persist failed", "err", err)
	}
	if r.metrics != nil {
		r.metrics.Fetches.Inc()
		r.metrics.RecordsApplied.Add(int64(len(recs)))
	}
	return len(recs), nil
}

// decodeFrames parses a feed body (CRC frames of record payloads) into
// records.
func decodeFrames(body []byte) ([]wal.Record, error) {
	var recs []wal.Record
	fr := dataio.NewFrameReader(bytes.NewReader(body))
	for {
		payload, err := fr.Next()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return nil, fmt.Errorf("replica: feed frame: %w", err)
		}
		rec, err := wal.DecodeRecord(payload)
		if err != nil {
			return nil, fmt.Errorf("replica: feed record: %w", err)
		}
		recs = append(recs, rec)
	}
}
