package core

import (
	"cmp"
	"slices"

	"skewsim/internal/bitvec"
	"skewsim/internal/verify"
)

// Match is one entry of a top-k result list.
type Match struct {
	ID         int
	Similarity float64
}

// QueryTopK returns the k most similar indexed vectors among the
// candidates sharing a filter with q in any repetition, sorted by
// decreasing similarity (ties by ascending id, so results are
// deterministic). Fewer than k matches are returned when the candidate
// set is smaller; like all filter queries this examines candidates only,
// so vectors sharing no filter with q cannot appear even if similar —
// recall follows the same Lemma 5 analysis as Query.
func (ix *Index) QueryTopK(q bitvec.Vector, k int) ([]Match, Stats) {
	var stats Stats
	if k <= 0 {
		return nil, stats
	}
	vis := ix.visitPool.Get(len(ix.data))
	defer ix.visitPool.Put(vis)
	ses := verify.Acquire(ix.measure, q)
	defer verify.Release(ses)
	var matches []Match
	for _, rep := range ix.reps {
		st := rep.ForEachCandidate(q, func(id int32) bool {
			if !vis.FirstVisit(id) {
				return true
			}
			// Top-k needs every positive similarity exactly (any of them
			// can end up in the cut), so this is the unpruned popcount
			// path: packed query, no threshold skip.
			s := ses.Similarity(ix.packed, ix.data, id)
			if s > 0 {
				matches = append(matches, Match{ID: int(id), Similarity: s})
			}
			return true
		})
		stats.add(st)
	}
	slices.SortFunc(matches, func(a, b Match) int {
		if a.Similarity != b.Similarity {
			return cmp.Compare(b.Similarity, a.Similarity)
		}
		return cmp.Compare(a.ID, b.ID)
	})
	if len(matches) > k {
		matches = matches[:k]
	}
	return matches, stats
}
