package core

import (
	"sort"

	"skewsim/internal/bitvec"
)

// Match is one entry of a top-k result list.
type Match struct {
	ID         int
	Similarity float64
}

// QueryTopK returns the k most similar indexed vectors among the
// candidates sharing a filter with q in any repetition, sorted by
// decreasing similarity (ties by ascending id, so results are
// deterministic). Fewer than k matches are returned when the candidate
// set is smaller; like all filter queries this examines candidates only,
// so vectors sharing no filter with q cannot appear even if similar —
// recall follows the same Lemma 5 analysis as Query.
func (ix *Index) QueryTopK(q bitvec.Vector, k int) ([]Match, Stats) {
	var stats Stats
	if k <= 0 {
		return nil, stats
	}
	vis := ix.visitPool.Get(len(ix.data))
	defer ix.visitPool.Put(vis)
	var matches []Match
	for _, rep := range ix.reps {
		ids, st := rep.CandidateIDs(q)
		stats.add(st)
		for _, id := range ids {
			if !vis.FirstVisit(id) {
				continue
			}
			s := ix.measure.Similarity(q, ix.data[id])
			if s > 0 {
				matches = append(matches, Match{ID: int(id), Similarity: s})
			}
		}
	}
	sort.Slice(matches, func(a, b int) bool {
		if matches[a].Similarity != matches[b].Similarity {
			return matches[a].Similarity > matches[b].Similarity
		}
		return matches[a].ID < matches[b].ID
	})
	if len(matches) > k {
		matches = matches[:k]
	}
	return matches, stats
}
