package core

import (
	"context"

	"skewsim/internal/bitvec"
	"skewsim/internal/lsf"
	"skewsim/internal/verify"
)

// QueryContext is Query with cooperative cancellation: the context is
// polled inside the repetition traversals (filter generation and
// posting-block walks), so a query abandoned by its caller stops within
// one posting block instead of running to completion. On cancellation
// the partial Result is returned alongside the context error — and the
// linear-scan fallback is NOT taken, even if every repetition that ran
// truncated: truncation means "work budget hit, degrade to exact
// scanning", which a canceled query must never amplify into a full
// scan. An un-cancelable context (context.Background) costs one nil
// compare per checkpoint.
func (ix *Index) QueryContext(ctx context.Context, q bitvec.Vector) (Result, error) {
	cc := lsf.NewCancelCheck(ctx)
	if cc == nil {
		return ix.Query(q), nil
	}
	var res Result
	res.ID = -1
	ses := verify.Acquire(ix.measure, q)
	defer verify.Release(ses)
	vis := ix.visitPool.Get(len(ix.data))
	defer ix.visitPool.Put(vis)
	allTruncated := true
	for _, rep := range ix.reps {
		st, err := rep.ForEachCandidateCancel(q, cc, func(id int32) bool {
			if !vis.FirstVisit(id) {
				return true
			}
			if sim, ok := ses.AtLeast(ix.packed, ix.data, id, ix.threshold); ok {
				res.ID, res.Similarity, res.Found = int(id), sim, true
				return false
			}
			return true
		})
		res.Stats.add(st)
		if err != nil {
			return res, err
		}
		if !st.Truncated {
			allTruncated = false
		}
		if res.Found {
			return res, nil
		}
	}
	if allTruncated && ix.fallback {
		res.Stats.FellBack = true
		id, sim, found := ix.linearScan(ses)
		if found {
			res.ID, res.Similarity, res.Found = id, sim, true
		}
	}
	return res, nil
}

// QueryBestContext is QueryBest with cooperative cancellation (see
// QueryContext). The partial best-so-far accompanies a cancellation
// error; callers must treat it as incomplete.
func (ix *Index) QueryBestContext(ctx context.Context, q bitvec.Vector) (Result, error) {
	cc := lsf.NewCancelCheck(ctx)
	if cc == nil {
		return ix.QueryBest(q), nil
	}
	var res Result
	res.ID = -1
	res.Similarity = -1
	ses := verify.Acquire(ix.measure, q)
	defer verify.Release(ses)
	vis := ix.visitPool.Get(len(ix.data))
	defer ix.visitPool.Put(vis)
	for _, rep := range ix.reps {
		st, err := rep.ForEachCandidateCancel(q, cc, func(id int32) bool {
			if !vis.FirstVisit(id) {
				return true
			}
			if sim, ok := ses.MoreThan(ix.packed, ix.data, id, res.Similarity); ok {
				res.ID, res.Similarity, res.Found = int(id), sim, true
			}
			return true
		})
		res.Stats.add(st)
		if err != nil {
			if !res.Found {
				res.Similarity = 0
			}
			return res, err
		}
	}
	if !res.Found {
		res.Similarity = 0
	}
	return res, nil
}
