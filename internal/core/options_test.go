package core

import (
	"bytes"
	"testing"

	"skewsim/internal/bitvec"
	"skewsim/internal/dist"
	"skewsim/internal/lsf"
)

func TestWorkersProduceIdenticalIndex(t *testing.T) {
	d := dist.MustProduct(dist.Fig1Profile(300, 0.2))
	w, _ := NewTestCorrelatedWorkload(d, 200, 15, 0.7, 41)
	serial, err := BuildCorrelated(d, w.Data, 0.7, Options{Seed: 11, Repetitions: 3})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := BuildCorrelated(d, w.Data, 0.7, Options{Seed: 11, Repetitions: 3, Workers: -1})
	if err != nil {
		t.Fatal(err)
	}
	if serial.BuildStats() != parallel.BuildStats() {
		t.Fatalf("build stats differ: %+v vs %+v", serial.BuildStats(), parallel.BuildStats())
	}
	for _, q := range w.Queries {
		r1, r2 := serial.Query(q), parallel.Query(q)
		if r1.Found != r2.Found || r1.ID != r2.ID || r1.Stats != r2.Stats {
			t.Fatal("parallel-built index answers differently")
		}
	}
}

func TestCustomWeigherWiredThrough(t *testing.T) {
	// A weigher that makes everything maximally rare: every path becomes
	// a single-element filter, so total filters ≈ reps · Σ|x| · s·... —
	// at minimum, the filter count must differ from the default build.
	d := dist.MustProduct(dist.Uniform(400, 0.25))
	w, _ := NewTestCorrelatedWorkload(d, 100, 5, 0.7, 43)

	def, err := BuildCorrelated(d, w.Data, 0.7, Options{Seed: 1, Repetitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	cw, err := lsf.NewClusterWeigher(d.Probs(), allOneCluster(d.Dim()), 0.9999)
	if err != nil {
		t.Fatal(err)
	}
	// With one giant cluster almost no path ever completes, so cap the
	// search aggressively; the point is only that the weigher changes
	// the build.
	clustered, err := BuildCorrelated(d, w.Data, 0.7, Options{
		Seed: 1, Repetitions: 2, Weigher: cw, MaxDepth: 4, MaxFiltersPerVector: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if def.BuildStats().TotalFilters == clustered.BuildStats().TotalFilters {
		t.Error("custom weigher had no effect on the build")
	}
}

func allOneCluster(dim int) []int32 {
	c := make([]int32, dim)
	return c // all zeros: one big cluster
}

func TestCustomWeigherBlocksSerialization(t *testing.T) {
	d := dist.MustProduct(dist.Uniform(300, 0.2))
	w, _ := NewTestCorrelatedWorkload(d, 80, 2, 0.7, 47)
	cw, err := lsf.NewClusterWeigher(d.Probs(), allOneCluster(d.Dim()), 0.99)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildCorrelated(d, w.Data, 0.7, Options{
		Seed: 1, Repetitions: 1, Weigher: cw, MaxDepth: 3, MaxFiltersPerVector: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err == nil {
		t.Fatal("serializing a custom-weigher index must fail")
	}
}

func TestAlternativeVerificationMeasure(t *testing.T) {
	// DESIGN D5: the engine supports measures beyond Braun-Blanquet. With
	// Jaccard verification the planted pair (α = 0.8, J ≈ 0.7) still
	// clears the α/1.3 bar and is recovered.
	d := dist.MustProduct(dist.Uniform(1000, 0.1))
	w, err := NewTestCorrelatedWorkload(d, 250, 25, 0.8, 59)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildCorrelated(d, w.Data, 0.8, Options{
		Seed: 5, Measure: bitvec.JaccardMeasure,
	})
	if err != nil {
		t.Fatal(err)
	}
	recovered := 0
	for k, q := range w.Queries {
		res := ix.Query(q)
		if res.Found && res.ID == w.Targets[k] {
			recovered++
		}
	}
	if rate := float64(recovered) / float64(len(w.Queries)); rate < 0.85 {
		t.Errorf("Jaccard-verified recall %v", rate)
	}
}
