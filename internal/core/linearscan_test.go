package core

import (
	"testing"

	"skewsim/internal/bitvec"
	"skewsim/internal/hashing"
	"skewsim/internal/verify"
)

// TestLinearScanParallelMatchesSerial pins the fallback scan's parallel
// fan-out (datasets at or above linearScanSerialCutoff) to the serial
// reference semantics: the lowest-id maximum under the measure, found
// iff it clears the threshold. White-box: the scan depends only on
// data/measure/threshold/packed, so the index is assembled directly.
func TestLinearScanParallelMatchesSerial(t *testing.T) {
	rng := hashing.NewSplitMix64(21)
	n := linearScanSerialCutoff + 513 // force the parallel branch
	data := make([]bitvec.Vector, n)
	for i := range data {
		bits := make([]uint32, 0, 24)
		for len(bits) < 24 {
			bits = append(bits, uint32(rng.NextBelow(512)))
		}
		data[i] = bitvec.New(bits...)
	}
	// Plant duplicates so ties exist and the lowest-id winner matters.
	data[100] = data[4000]
	data[n-1] = data[50]
	for _, m := range []bitvec.Measure{bitvec.BraunBlanquetMeasure, bitvec.JaccardMeasure} {
		ix := &Index{
			data:      data,
			measure:   m,
			threshold: 0.4,
			packed:    bitvec.NewPackedSet(data),
		}
		for qi := 0; qi < 32; qi++ {
			q := data[int(rng.NextBelow(uint64(n)))]
			if qi%4 == 0 {
				bits := make([]uint32, 0, 24)
				for len(bits) < 24 {
					bits = append(bits, uint32(rng.NextBelow(512)))
				}
				q = bitvec.New(bits...) // non-planted query: may miss threshold
			}
			// Serial reference, straight from the measure.
			wantID, wantSim := -1, -1.0
			for id, x := range data {
				if s := m.Similarity(q, x); s > wantSim {
					wantID, wantSim = id, s
				}
			}
			wantFound := wantID >= 0 && wantSim >= ix.threshold
			ses := verify.Acquire(m, q)
			gotID, gotSim, gotFound := ix.linearScan(ses)
			verify.Release(ses)
			if gotFound != wantFound {
				t.Fatalf("measure %v query %d: found = %v, want %v", m, qi, gotFound, wantFound)
			}
			if wantFound && (gotID != wantID || gotSim != wantSim) {
				t.Fatalf("measure %v query %d: got (%d, %v), want (%d, %v)", m, qi, gotID, gotSim, wantID, wantSim)
			}
		}
	}
}
