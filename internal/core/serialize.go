package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"skewsim/internal/bitvec"
	"skewsim/internal/dist"
	"skewsim/internal/lsf"
)

// Serialization of a SkewSearch index. The header stores the mode, its
// parameter (b1 or α), the verification measure, the engine limits, and
// the per-repetition hash seeds; the body is one lsf bucket dump per
// repetition. The distribution and the data vectors are NOT stored — the
// caller supplies them on load (they are the caller's inputs, typically
// already persisted elsewhere), and the thresholds are reconstructed
// deterministically from them plus the stored parameters.
//
// Format (little-endian):
//
//	magic    [8]byte "SKEWSIM1"
//	mode     uint8 (0 adversarial, 1 correlated)
//	measure  uint8
//	fallback uint8 (1 = enabled)
//	param    float64 (b1 or alpha)
//	n        uint64 (dataset size; validated on load)
//	maxDepth, maxFilters uint64
//	reps     uint32, then reps × (seed uint64)
//	reps × lsf index dump

var coreMagic = [8]byte{'S', 'K', 'E', 'W', 'S', 'I', 'M', '1'}

// WriteTo serializes the index. It implements io.WriterTo. Indexes built
// with a custom Weigher cannot be serialized: the weigher is arbitrary
// code that ReadIndex could not reconstruct.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	if ix.customWeigher {
		return 0, errors.New("core: cannot serialize an index built with a custom Weigher")
	}
	bw := bufio.NewWriter(w)
	var n int64
	write := func(v interface{}) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	param := ix.b1
	if ix.mode == Correlated {
		param = ix.alpha
	}
	fallbackByte := uint8(0)
	if ix.fallback {
		fallbackByte = 1
	}
	for _, v := range []interface{}{
		coreMagic, uint8(ix.mode), uint8(ix.measure), fallbackByte,
		param, uint64(len(ix.data)), uint64(ix.maxDepth), uint64(ix.maxFilters),
		uint32(len(ix.reps)),
	} {
		if err := write(v); err != nil {
			return n, err
		}
	}
	for _, s := range ix.seeds {
		if err := write(s); err != nil {
			return n, err
		}
	}
	if err := bw.Flush(); err != nil {
		return n, err
	}
	for _, rep := range ix.reps {
		m, err := rep.WriteTo(w)
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// ReadIndex reconstructs an index previously serialized with WriteTo.
// d and data must be the same distribution and dataset the index was
// built over; the dataset size is validated, and every bucket id is
// bounds-checked against it.
func ReadIndex(r io.Reader, d *dist.Product, data []bitvec.Vector) (*Index, error) {
	if d == nil {
		return nil, errors.New("core: nil distribution")
	}
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("core: reading magic: %w", err)
	}
	if magic != coreMagic {
		return nil, fmt.Errorf("core: bad magic %q", magic)
	}
	var modeB, measureB, fallbackB uint8
	var param float64
	var nStored, maxDepth, maxFilters uint64
	var reps uint32
	for _, v := range []interface{}{&modeB, &measureB, &fallbackB, &param, &nStored, &maxDepth, &maxFilters, &reps} {
		if err := binary.Read(br, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("core: reading header: %w", err)
		}
	}
	if uint64(len(data)) != nStored {
		return nil, fmt.Errorf("core: index built over %d vectors, got %d", nStored, len(data))
	}
	if reps == 0 || reps > 1<<16 {
		return nil, fmt.Errorf("core: implausible repetition count %d", reps)
	}
	if math.IsNaN(param) || param <= 0 || param > 1 {
		return nil, fmt.Errorf("core: stored parameter %v outside (0, 1]", param)
	}
	mode := Mode(modeB)
	if mode != Adversarial && mode != Correlated {
		return nil, fmt.Errorf("core: unknown mode byte %d", modeB)
	}

	ix := &Index{
		mode:       mode,
		d:          d,
		data:       data,
		measure:    bitvec.Measure(measureB),
		fallback:   fallbackB == 1,
		seeds:      make([]uint64, reps),
		maxDepth:   int(maxDepth),
		maxFilters: int(maxFilters),
		reps:       make([]*lsf.Index, reps),
	}
	var threshold lsf.ThresholdFunc
	if mode == Adversarial {
		ix.b1 = param
		ix.threshold = param
		threshold = adversarialThreshold(param)
	} else {
		ix.alpha = param
		ix.threshold = param / 1.3
		threshold = correlatedThreshold(d, len(data), param)
	}
	for i := range ix.seeds {
		if err := binary.Read(br, binary.LittleEndian, &ix.seeds[i]); err != nil {
			return nil, fmt.Errorf("core: reading seed %d: %w", i, err)
		}
	}
	for i := range ix.reps {
		engine, err := lsf.NewEngine(len(data), lsf.Params{
			Seed:                ix.seeds[i],
			Probs:               d.Probs(),
			Threshold:           threshold,
			Stop:                lsf.ProductStopRule(len(data)),
			MaxDepth:            ix.maxDepth,
			MaxFiltersPerVector: ix.maxFilters,
		})
		if err != nil {
			return nil, err
		}
		ix.reps[i], err = lsf.ReadIndexFrom(br, engine, data)
		if err != nil {
			return nil, fmt.Errorf("core: repetition %d: %w", i, err)
		}
	}
	// The packed verification forms are never serialized: they are a
	// deterministic function of the data, so rebuilding them here keeps
	// the on-disk format byte-identical to pre-packed versions.
	ix.attachPacked()
	return ix, nil
}
