package core

import (
	"sync"
	"testing"

	"skewsim/internal/bitvec"
	"skewsim/internal/bruteforce"
	"skewsim/internal/dist"
)

func topkFixture(t *testing.T) (*Index, *bruteforce.Index, *testFixtureWorkload) {
	t.Helper()
	d := dist.MustProduct(dist.Uniform(900, 0.1))
	w, err := NewTestCorrelatedWorkload(d, 300, 25, 0.8, 53)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildCorrelated(d, w.Data, 0.8, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	bf, err := bruteforce.Build(w.Data, bruteforce.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return ix, bf, &testFixtureWorkload{w.Queries, w.Targets}
}

type testFixtureWorkload struct {
	Queries []bitvec.Vector
	Targets []int
}

func TestQueryTopKSortedAndBounded(t *testing.T) {
	ix, _, w := topkFixture(t)
	for _, q := range w.Queries {
		matches, stats := ix.QueryTopK(q, 5)
		if len(matches) > 5 {
			t.Fatalf("got %d matches", len(matches))
		}
		for i := 1; i < len(matches); i++ {
			a, b := matches[i-1], matches[i]
			if a.Similarity < b.Similarity ||
				(a.Similarity == b.Similarity && a.ID > b.ID) {
				t.Fatal("matches not sorted")
			}
		}
		if stats.Repetitions != ix.Repetitions() {
			t.Fatal("stats not aggregated over repetitions")
		}
	}
}

func TestQueryTopKTopHitMatchesGroundTruth(t *testing.T) {
	ix, bf, w := topkFixture(t)
	agree := 0
	for _, q := range w.Queries {
		got, _ := ix.QueryTopK(q, 1)
		want := bf.QueryTopK(q, 1)
		if len(got) == 1 && len(want) == 1 && got[0].ID == want[0].ID {
			agree++
		}
	}
	// The top hit is the planted partner (far above the noise floor), so
	// the filter index should find it nearly always.
	if rate := float64(agree) / float64(len(w.Queries)); rate < 0.9 {
		t.Errorf("top-1 agreement with brute force: %v", rate)
	}
}

func TestQueryTopKDegenerate(t *testing.T) {
	ix, _, w := topkFixture(t)
	if m, _ := ix.QueryTopK(w.Queries[0], 0); m != nil {
		t.Error("k=0 should return nil")
	}
	if m, _ := ix.QueryTopK(w.Queries[0], -3); m != nil {
		t.Error("negative k should return nil")
	}
	// Huge k returns at most the candidate count, all positive-sim.
	m, _ := ix.QueryTopK(w.Queries[0], 1<<20)
	for _, e := range m {
		if e.Similarity <= 0 {
			t.Error("zero-similarity entry included")
		}
	}
}

func TestBruteForceTopKExactness(t *testing.T) {
	_, bf, w := topkFixture(t)
	q := w.Queries[0]
	m := bf.QueryTopK(q, 10)
	for i := 1; i < len(m); i++ {
		if m[i-1].Similarity < m[i].Similarity {
			t.Fatal("ground truth not sorted")
		}
	}
	if bf.QueryTopK(q, 0) != nil {
		t.Error("k=0 should return nil")
	}
}

// TestConcurrentQueriesAreSafe exercises read-only query concurrency on a
// shared index (run with -race to catch violations).
func TestConcurrentQueriesAreSafe(t *testing.T) {
	ix, _, w := topkFixture(t)
	var wg sync.WaitGroup
	results := make([][]int, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for _, q := range w.Queries {
				res := ix.Query(q)
				results[g] = append(results[g], res.ID)
				ix.QueryBest(q)
				ix.QueryTopK(q, 3)
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < 8; g++ {
		for i := range results[0] {
			if results[g][i] != results[0][i] {
				t.Fatal("concurrent queries returned inconsistent results")
			}
		}
	}
}
