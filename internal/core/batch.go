package core

import (
	"skewsim/internal/bitvec"
	"skewsim/internal/lsf"
	"skewsim/internal/verify"
)

// BatchQuery answers the queries in input order through Query. Results
// are identical to calling Query in a loop; the batch form exists so
// callers have one entry point whether they parallelize or not.
func (ix *Index) BatchQuery(qs []bitvec.Vector) []Result {
	out := make([]Result, len(qs))
	for k, q := range qs {
		out[k] = ix.Query(q)
	}
	return out
}

// QueryParallel is BatchQuery fanned out over `workers` goroutines
// (workers <= 0 selects GOMAXPROCS), mirroring the Workers option of
// preprocessing. The index is read-only during queries — the underlying
// lsf repetitions hand each goroutine its own pooled visited set — so the
// results are identical to BatchQuery, in input order.
func (ix *Index) QueryParallel(qs []bitvec.Vector, workers int) []Result {
	out := make([]Result, len(qs))
	lsf.ForEachParallel(len(qs), workers, func(k int) {
		out[k] = ix.Query(qs[k])
	})
	return out
}

// BatchCandidates returns Candidates for every query, fanned out over
// `workers` goroutines (workers <= 0 selects GOMAXPROCS). For callers
// that want raw candidate sets in bulk; note the join driver verifies
// inside its own workers instead of materializing these.
func (ix *Index) BatchCandidates(qs []bitvec.Vector, workers int) [][]int32 {
	out := make([][]int32, len(qs))
	lsf.ForEachParallel(len(qs), workers, func(k int) {
		out[k] = ix.Candidates(qs[k])
	})
	return out
}

// BatchQueryBest answers QueryBest for every query through the
// amortizing batch executor: each repetition is visited once per batch.
// For one repetition, filter generation and bucket resolution run for
// all queries back to back — one hot pass over the repetition's engine
// tables and key table, with the resolved posting spans accumulated in
// one arena — before any posting is walked. Per-query verification
// state (the packed verify session, the cross-repetition visited set,
// the running best) persists across repetitions.
//
// Results and stats are bit-identical to calling QueryBest in a loop:
// within a query, spans are walked in exactly the single-query order
// (repetition order, then filter order, then posting order), and the
// per-repetition Distinct accounting keeps its own dedup scope just
// like the underlying traversal.
func (ix *Index) BatchQueryBest(qs []bitvec.Vector) []Result {
	nq := len(qs)
	if nq == 0 {
		return nil
	}
	out := make([]Result, nq)
	ses := make([]*verify.Session, nq)
	vis := make([]*lsf.Visited, nq)
	for k, q := range qs {
		out[k].ID = -1
		out[k].Similarity = -1
		ses[k] = verify.Acquire(ix.measure, q)
		vis[k] = ix.visitPool.Get(len(ix.data))
	}
	defer func() {
		for k := range ses {
			verify.Release(ses[k])
			ix.visitPool.Put(vis[k])
		}
	}()

	var fs lsf.FilterSet
	var refs []lsf.PostingRef
	bounds := make([]int, nq+1)
	for _, rep := range ix.reps {
		// Phase 1: one generation+resolution sweep over the whole batch.
		refs = refs[:0]
		for k, q := range qs {
			var nf int
			refs, nf, _ = rep.AppendFilterRefs(q, &fs, refs)
			bounds[k+1] = len(refs)
			out[k].Stats.Repetitions++
			out[k].Stats.Filters += nf
		}
		// Phase 2: walk each query's resolved spans in filter order.
		for k := range qs {
			res := &out[k]
			// repVis scopes Distinct to this repetition, mirroring the
			// per-traversal dedup of the single-query path; vis[k] is the
			// cross-repetition dedup that gates verification.
			repVis := ix.visitPool.Get(len(ix.data))
			for _, r := range refs[bounds[k]:bounds[k+1]] {
				for _, id := range rep.RefIDs(r) {
					res.Stats.Candidates++
					if !repVis.FirstVisit(id) {
						continue
					}
					res.Stats.Distinct++
					if !vis[k].FirstVisit(id) {
						continue
					}
					if sim, ok := ses[k].MoreThan(ix.packed, ix.data, id, res.Similarity); ok {
						res.ID, res.Similarity, res.Found = int(id), sim, true
					}
				}
			}
			ix.visitPool.Put(repVis)
		}
	}
	for k := range out {
		if !out[k].Found {
			out[k].Similarity = 0
		}
	}
	return out
}
