package core

import (
	"skewsim/internal/bitvec"
	"skewsim/internal/lsf"
)

// BatchQuery answers the queries in input order through Query. Results
// are identical to calling Query in a loop; the batch form exists so
// callers have one entry point whether they parallelize or not.
func (ix *Index) BatchQuery(qs []bitvec.Vector) []Result {
	out := make([]Result, len(qs))
	for k, q := range qs {
		out[k] = ix.Query(q)
	}
	return out
}

// QueryParallel is BatchQuery fanned out over `workers` goroutines
// (workers <= 0 selects GOMAXPROCS), mirroring the Workers option of
// preprocessing. The index is read-only during queries — the underlying
// lsf repetitions hand each goroutine its own pooled visited set — so the
// results are identical to BatchQuery, in input order.
func (ix *Index) QueryParallel(qs []bitvec.Vector, workers int) []Result {
	out := make([]Result, len(qs))
	lsf.ForEachParallel(len(qs), workers, func(k int) {
		out[k] = ix.Query(qs[k])
	})
	return out
}

// BatchCandidates returns Candidates for every query, fanned out over
// `workers` goroutines (workers <= 0 selects GOMAXPROCS). For callers
// that want raw candidate sets in bulk; note the join driver verifies
// inside its own workers instead of materializing these.
func (ix *Index) BatchCandidates(qs []bitvec.Vector, workers int) [][]int32 {
	out := make([][]int32, len(qs))
	lsf.ForEachParallel(len(qs), workers, func(k int) {
		out[k] = ix.Candidates(qs[k])
	})
	return out
}
