package core

import (
	"math"
	"testing"

	"skewsim/internal/bitvec"
	"skewsim/internal/datagen"
	"skewsim/internal/dist"
)

func TestModeString(t *testing.T) {
	if Adversarial.String() != "adversarial" || Correlated.String() != "correlated" {
		t.Error("mode names wrong")
	}
	if Mode(9).String() == "" {
		t.Error("unknown mode should still render")
	}
}

func TestBuildValidation(t *testing.T) {
	d := dist.MustProduct(dist.Uniform(100, 0.1))
	data := []bitvec.Vector{bitvec.New(1, 2)}

	if _, err := BuildAdversarial(nil, data, 0.5, Options{}); err == nil {
		t.Error("nil distribution should fail")
	}
	if _, err := BuildAdversarial(d, nil, 0.5, Options{}); err == nil {
		t.Error("empty data should fail")
	}
	for _, b1 := range []float64{0, -1, 1.5} {
		if _, err := BuildAdversarial(d, data, b1, Options{}); err == nil {
			t.Errorf("b1=%v should fail", b1)
		}
	}
	if _, err := BuildCorrelated(nil, data, 0.5, Options{}); err == nil {
		t.Error("nil distribution should fail")
	}
	if _, err := BuildCorrelated(d, nil, 0.5, Options{}); err == nil {
		t.Error("empty data should fail")
	}
	for _, a := range []float64{0, -1, 1.01} {
		if _, err := BuildCorrelated(d, data, a, Options{}); err == nil {
			t.Errorf("alpha=%v should fail", a)
		}
	}
	if _, err := BuildAdversarial(d, data, 0.5, Options{Repetitions: -1}); err == nil {
		t.Error("negative repetitions should fail")
	}
}

func TestIndexAccessors(t *testing.T) {
	d := dist.MustProduct(dist.Uniform(200, 0.1))
	w, err := NewTestCorrelatedWorkload(d, 100, 5, 0.8, 1)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildCorrelated(d, w.Data, 0.8, Options{Seed: 1, Repetitions: 3})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Mode() != Correlated {
		t.Error("mode accessor wrong")
	}
	if got := ix.Threshold(); math.Abs(got-0.8/1.3) > 1e-12 {
		t.Errorf("threshold %v, want α/1.3", got)
	}
	if ix.Repetitions() != 3 {
		t.Errorf("repetitions %d", ix.Repetitions())
	}
	if len(ix.Data()) != 100 {
		t.Error("data accessor wrong")
	}
	bs := ix.BuildStats()
	if bs.Vectors != 100 || bs.TotalFilters <= 0 {
		t.Errorf("build stats %+v", bs)
	}
}

// NewTestCorrelatedWorkload re-exports datagen's workload builder under a
// local name so configuration stays in one place for this package's tests.
func NewTestCorrelatedWorkload(d *dist.Product, n, q int, alpha float64, seed uint64) (*datagen.CorrelatedWorkload, error) {
	return datagen.NewCorrelatedWorkload(d, n, q, alpha, seed)
}

func TestCorrelatedRecallUniform(t *testing.T) {
	// Theorem 1's headline behaviour on a no-skew instance: the planted
	// target must be recovered for nearly every query.
	const (
		n     = 500
		dim   = 1200
		p     = 0.1
		alpha = 0.8
	)
	d := dist.MustProduct(dist.Uniform(dim, p))
	w, err := NewTestCorrelatedWorkload(d, n, 40, alpha, 7)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildCorrelated(d, w.Data, alpha, Options{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	recovered := 0
	for k, q := range w.Queries {
		res := ix.Query(q)
		if res.Found && res.ID == w.Targets[k] {
			recovered++
		}
	}
	if rate := float64(recovered) / float64(len(w.Queries)); rate < 0.9 {
		t.Errorf("recall %v, want ≥ 0.9", rate)
	}
}

func TestCorrelatedRecallSkewed(t *testing.T) {
	// The same guarantee must hold under heavy skew (half p, half p/8:
	// Figure 1's profile).
	const (
		n     = 400
		alpha = 2.0 / 3
	)
	profile := dist.Fig1Profile(900, 0.24) // Σp ≈ 121
	d := dist.MustProduct(profile)
	w, err := NewTestCorrelatedWorkload(d, n, 40, alpha, 13)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildCorrelated(d, w.Data, alpha, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	recovered := 0
	for k, q := range w.Queries {
		res := ix.Query(q)
		if res.Found && res.ID == w.Targets[k] {
			recovered++
		}
	}
	if rate := float64(recovered) / float64(len(w.Queries)); rate < 0.9 {
		t.Errorf("recall %v, want ≥ 0.9", rate)
	}
}

func TestCorrelatedNoFalsePositivesAboveThreshold(t *testing.T) {
	// Any returned vector must genuinely meet the verification threshold.
	d := dist.MustProduct(dist.Uniform(1000, 0.1))
	w, _ := NewTestCorrelatedWorkload(d, 300, 30, 0.7, 3)
	ix, err := BuildCorrelated(d, w.Data, 0.7, Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range w.Queries {
		res := ix.Query(q)
		if res.Found {
			if got := bitvec.BraunBlanquet(q, w.Data[res.ID]); got < ix.Threshold()-1e-9 {
				t.Errorf("returned similarity %v below threshold %v", got, ix.Threshold())
			}
		}
	}
}

func TestAdversarialRecall(t *testing.T) {
	const (
		n  = 400
		b1 = 0.6
	)
	d := dist.MustProduct(dist.Uniform(1000, 0.12))
	w, err := datagen.NewAdversarialWorkload(d, n, 40, b1, 21)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildAdversarial(d, w.Data, b1, Options{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for k, q := range w.Queries {
		res := ix.Query(q)
		if res.Found {
			found++
			if got := bitvec.BraunBlanquet(q, w.Data[res.ID]); got < b1-1e-9 {
				t.Errorf("query %d: returned sim %v below b1", k, got)
			}
		}
	}
	// Theorem 2 promises per-instance success ≥ 1/2 after boosting; with
	// log n repetitions the empirical rate should be near-perfect.
	if rate := float64(found) / float64(len(w.Queries)); rate < 0.85 {
		t.Errorf("adversarial recall %v, want ≥ 0.85", rate)
	}
}

func TestAdversarialSkewedQueryCheaperThanUniform(t *testing.T) {
	// §7.1's message: at equal b1, Σp and |q|, a distribution with very
	// rare tokens gives a much smaller exponent. Here theory predicts
	// ρ ≈ 0.31 for uniform p = 0.25 versus ρ ≈ 0.13 for the two-block
	// profile with half the mass on p = 0.0025 tokens, so candidate
	// counts should separate clearly.
	const n = 600
	b1 := 0.65

	uniform := dist.MustProduct(dist.Uniform(720, 0.25))                // Σp = 180
	skewed := dist.MustProduct(dist.TwoBlock(360, 0.25, 36000, 0.0025)) // Σp = 90+90 = 180

	costs := make(map[string]float64)
	for name, d := range map[string]*dist.Product{"uniform": uniform, "skewed": skewed} {
		w, err := datagen.NewAdversarialWorkload(d, n, 30, b1, 17)
		if err != nil {
			t.Fatal(err)
		}
		ix, err := BuildAdversarial(d, w.Data, b1, Options{Seed: 4, Repetitions: 6})
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, q := range w.Queries {
			res := ix.QueryBest(q)
			total += res.Stats.Candidates
		}
		costs[name] = float64(total) / 30
	}
	t.Logf("mean candidates: uniform %v, skewed %v", costs["uniform"], costs["skewed"])
	if costs["skewed"] >= costs["uniform"] {
		t.Errorf("skewed queries (%v) should be cheaper than uniform (%v)", costs["skewed"], costs["uniform"])
	}
}

func TestQueryDeterministic(t *testing.T) {
	d := dist.MustProduct(dist.Uniform(600, 0.1))
	w, _ := NewTestCorrelatedWorkload(d, 200, 10, 0.7, 5)
	ix1, err := BuildCorrelated(d, w.Data, 0.7, Options{Seed: 42, Repetitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	ix2, err := BuildCorrelated(d, w.Data, 0.7, Options{Seed: 42, Repetitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range w.Queries {
		r1, r2 := ix1.Query(q), ix2.Query(q)
		if r1.Found != r2.Found || r1.ID != r2.ID || r1.Stats != r2.Stats {
			t.Fatal("same seed produced different query results")
		}
	}
}

func TestQueryEmptyVector(t *testing.T) {
	d := dist.MustProduct(dist.Uniform(300, 0.1))
	w, _ := NewTestCorrelatedWorkload(d, 100, 1, 0.7, 9)
	ix, err := BuildCorrelated(d, w.Data, 0.7, Options{Seed: 2, Repetitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	res := ix.Query(bitvec.New())
	if res.Found {
		t.Error("empty query should find nothing")
	}
}

func TestFallbackOnTruncation(t *testing.T) {
	// Force truncation with an absurdly small work budget; the index must
	// fall back to a linear scan and still answer correctly.
	d := dist.MustProduct(dist.Uniform(800, 0.12))
	w, _ := NewTestCorrelatedWorkload(d, 150, 10, 0.9, 11)
	ix, err := BuildCorrelated(d, w.Data, 0.9, Options{
		Seed:                3,
		Repetitions:         2,
		MaxFiltersPerVector: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	sawFallback := false
	for k, q := range w.Queries {
		res := ix.Query(q)
		if res.Stats.FellBack {
			sawFallback = true
			if !res.Found || res.ID != w.Targets[k] {
				t.Errorf("fallback failed to recover planted target")
			}
		}
	}
	if !sawFallback {
		t.Skip("budget did not truncate; configuration too generous")
	}
}

func TestFallbackDisabled(t *testing.T) {
	d := dist.MustProduct(dist.Uniform(800, 0.12))
	w, _ := NewTestCorrelatedWorkload(d, 150, 5, 0.9, 12)
	ix, err := BuildCorrelated(d, w.Data, 0.9, Options{
		Seed:                3,
		Repetitions:         2,
		MaxFiltersPerVector: 1,
		DisableFallback:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range w.Queries {
		if res := ix.Query(q); res.Stats.FellBack {
			t.Error("fallback ran despite being disabled")
		}
	}
}

func TestQueryBestReturnsPlantedPair(t *testing.T) {
	d := dist.MustProduct(dist.Uniform(1000, 0.1))
	w, _ := NewTestCorrelatedWorkload(d, 300, 25, 0.8, 15)
	ix, err := BuildCorrelated(d, w.Data, 0.8, Options{Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	hit := 0
	for k, q := range w.Queries {
		res := ix.QueryBest(q)
		if res.Found && res.ID == w.Targets[k] {
			hit++
		}
	}
	if rate := float64(hit) / float64(len(w.Queries)); rate < 0.9 {
		t.Errorf("QueryBest recall %v", rate)
	}
}

func TestPredictedQueryRho(t *testing.T) {
	d := dist.MustProduct(dist.Uniform(600, 0.1))
	w, _ := NewTestCorrelatedWorkload(d, 200, 2, 0.7, 19)

	corr, err := BuildCorrelated(d, w.Data, 0.7, Options{Seed: 1, Repetitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := corr.PredictedQueryRho(w.Queries[0])
	if err != nil {
		t.Fatal(err)
	}
	// Uniform closed form: log(p̂)/log(p).
	want := math.Log(0.1*0.3+0.7) / math.Log(0.1)
	if math.Abs(r1-want) > 1e-6 {
		t.Errorf("correlated rho %v, want %v", r1, want)
	}

	adv, err := BuildAdversarial(d, w.Data, 0.5, Options{Seed: 1, Repetitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := adv.PredictedQueryRho(w.Queries[0])
	if err != nil {
		t.Fatal(err)
	}
	wantAdv := math.Log(0.5) / math.Log(0.1)
	if math.Abs(r2-wantAdv) > 1e-6 {
		t.Errorf("adversarial rho %v, want %v", r2, wantAdv)
	}
}

func TestStatsAccumulate(t *testing.T) {
	d := dist.MustProduct(dist.Uniform(600, 0.1))
	w, _ := NewTestCorrelatedWorkload(d, 200, 5, 0.7, 23)
	ix, err := BuildCorrelated(d, w.Data, 0.7, Options{Seed: 6, Repetitions: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range w.Queries {
		res := ix.QueryBest(q)
		if res.Stats.Repetitions != 5 {
			t.Errorf("QueryBest must touch all repetitions, got %d", res.Stats.Repetitions)
		}
		if res.Stats.Distinct > res.Stats.Candidates {
			t.Error("distinct exceeds candidates")
		}
	}
}
