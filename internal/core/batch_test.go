package core

import (
	"testing"

	"skewsim/internal/bitvec"
	"skewsim/internal/dist"
	"skewsim/internal/hashing"
)

// TestBatchQueryBestBitIdentical is the batch executor's acceptance
// test at the core layer: BatchQueryBest must reproduce a loop of
// QueryBest bit for bit — ids, similarities, found flags, AND the full
// work stats — because within each query it walks candidates in
// exactly the single-query order.
func TestBatchQueryBestBitIdentical(t *testing.T) {
	d := dist.MustProduct(dist.Zipf(96, 0.6, 1.2))
	rng := hashing.NewSplitMix64(17)
	data := d.SampleN(rng, 400)
	ix, err := BuildCorrelated(d, data, 0.7, Options{Seed: 11, Repetitions: 4})
	if err != nil {
		t.Fatalf("BuildCorrelated: %v", err)
	}
	// Query mix: planted-style perturbations of data vectors, fresh
	// samples, an empty vector, and a duplicate (exercises batch state
	// isolation between identical queries).
	var qs []bitvec.Vector
	for i := 0; i < 40; i++ {
		qs = append(qs, d.Sample(rng))
	}
	qs = append(qs, bitvec.New(), data[7], data[7])

	want := make([]Result, len(qs))
	for k, q := range qs {
		want[k] = ix.QueryBest(q)
	}
	got := ix.BatchQueryBest(qs)
	if len(got) != len(want) {
		t.Fatalf("BatchQueryBest returned %d results, want %d", len(got), len(want))
	}
	for k := range want {
		if got[k] != want[k] {
			t.Errorf("query %d: batch %+v != single %+v", k, got[k], want[k])
		}
	}

	if out := ix.BatchQueryBest(nil); out != nil {
		t.Errorf("empty batch should return nil, got %v", out)
	}
}
