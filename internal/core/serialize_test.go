package core

import (
	"bytes"
	"strings"
	"testing"

	"skewsim/internal/datagen"
	"skewsim/internal/dist"
)

func buildForSerialization(t *testing.T, mode Mode) (*Index, *dist.Product, *datagen.CorrelatedWorkload) {
	t.Helper()
	d := dist.MustProduct(dist.Fig1Profile(400, 0.2))
	w, err := NewTestCorrelatedWorkload(d, 250, 20, 0.75, 31)
	if err != nil {
		t.Fatal(err)
	}
	var ix *Index
	if mode == Correlated {
		ix, err = BuildCorrelated(d, w.Data, 0.75, Options{Seed: 7, Repetitions: 4})
	} else {
		ix, err = BuildAdversarial(d, w.Data, 0.55, Options{Seed: 7, Repetitions: 4})
	}
	if err != nil {
		t.Fatal(err)
	}
	return ix, d, w
}

func TestSerializeRoundTripCorrelated(t *testing.T) {
	ix, d, w := buildForSerialization(t, Correlated)
	var buf bytes.Buffer
	n, err := ix.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	back, err := ReadIndex(&buf, d, w.Data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Mode() != Correlated || back.Repetitions() != ix.Repetitions() || back.Threshold() != ix.Threshold() {
		t.Fatal("restored parameters differ")
	}
	for _, q := range w.Queries {
		r1, r2 := ix.Query(q), back.Query(q)
		if r1.Found != r2.Found || r1.ID != r2.ID || r1.Stats != r2.Stats {
			t.Fatal("restored index answers differently")
		}
	}
}

func TestSerializeRoundTripAdversarial(t *testing.T) {
	ix, d, w := buildForSerialization(t, Adversarial)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadIndex(&buf, d, w.Data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Mode() != Adversarial || back.Threshold() != 0.55 {
		t.Fatal("restored parameters differ")
	}
	for _, q := range w.Queries {
		r1, r2 := ix.QueryBest(q), back.QueryBest(q)
		if r1.ID != r2.ID || r1.Similarity != r2.Similarity {
			t.Fatal("restored index answers differently")
		}
	}
}

func TestReadIndexValidation(t *testing.T) {
	ix, d, w := buildForSerialization(t, Correlated)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	if _, err := ReadIndex(bytes.NewReader(raw), nil, w.Data); err == nil {
		t.Error("nil distribution accepted")
	}
	if _, err := ReadIndex(strings.NewReader("garbage!!"), d, w.Data); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadIndex(bytes.NewReader(raw), d, w.Data[:10]); err == nil {
		t.Error("dataset size mismatch accepted")
	}
	for _, cut := range []int{4, 12, 40, len(raw) / 2} {
		if _, err := ReadIndex(bytes.NewReader(raw[:cut]), d, w.Data); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	// Corrupt the mode byte (offset 8).
	bad := append([]byte(nil), raw...)
	bad[8] = 99
	if _, err := ReadIndex(bytes.NewReader(bad), d, w.Data); err == nil {
		t.Error("unknown mode accepted")
	}
}
