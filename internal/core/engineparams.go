package core

import (
	"errors"
	"fmt"
	"math"

	"skewsim/internal/dist"
	"skewsim/internal/hashing"
	"skewsim/internal/lsf"
)

// EngineParams constructs the per-repetition lsf engine parameters of a
// SkewSearch structure: mode-specific threshold function, the paper's
// product stopping rule for dataset size n, and one seed per repetition
// derived from opt.Seed. It is the single source of engine configuration
// — buildReps consumes it for the static index, and the serving layer
// (internal/segment, internal/server) consumes it to run the same
// scheme over mutable segmented indexes with identical filter mappings.
//
// param is b1 in Adversarial mode and α in Correlated mode, in (0, 1].
// n is the dataset size the stopping rule and default repetition count
// are tuned for; for online serving pass the expected steady-state size.
func EngineParams(mode Mode, d *dist.Product, n int, param float64, opt Options) ([]lsf.Params, error) {
	if d == nil {
		return nil, errors.New("core: nil distribution")
	}
	if n < 1 {
		return nil, fmt.Errorf("core: dataset size %d must be >= 1", n)
	}
	if param <= 0 || param > 1 {
		return nil, fmt.Errorf("core: parameter %v outside (0, 1]", param)
	}
	var threshold lsf.ThresholdFunc
	switch mode {
	case Adversarial:
		threshold = adversarialThreshold(param)
	case Correlated:
		threshold = correlatedThreshold(d, n, param)
	default:
		return nil, fmt.Errorf("core: unknown mode %v", mode)
	}
	reps := opt.Repetitions
	if reps == 0 {
		reps = int(math.Ceil(math.Log2(float64(n)))) + 1
	}
	if reps < 1 {
		return nil, fmt.Errorf("core: Repetitions %d must be >= 1", opt.Repetitions)
	}
	seeds := hashing.NewSplitMix64(opt.Seed)
	params := make([]lsf.Params, reps)
	for r := range params {
		params[r] = lsf.Params{
			Seed:                seeds.Next(),
			Probs:               d.Probs(),
			Threshold:           threshold,
			Stop:                lsf.ProductStopRule(n),
			MaxDepth:            opt.MaxDepth,
			MaxFiltersPerVector: opt.MaxFiltersPerVector,
			Weigher:             opt.Weigher,
		}
	}
	return params, nil
}

// VerificationThreshold returns the candidate-verification threshold the
// mode implies: b1 itself in Adversarial mode, α/1.3 (Lemma 10) in
// Correlated mode.
func VerificationThreshold(mode Mode, param float64) (float64, error) {
	switch mode {
	case Adversarial:
		return param, nil
	case Correlated:
		return param / 1.3, nil
	default:
		return 0, fmt.Errorf("core: unknown mode %v", mode)
	}
}
