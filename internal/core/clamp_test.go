package core

import (
	"slices"
	"testing"

	"skewsim/internal/bitvec"
	"skewsim/internal/dist"
	"skewsim/internal/hashing"
)

// TestParallelWorkerClamp: tiny batches through QueryParallel and
// BatchCandidates with an absurd worker bound must match the serial
// paths exactly (the clamp in lsf.ForEachParallel keeps the pool at
// len(qs), so no idle goroutines and no reordering).
func TestParallelWorkerClamp(t *testing.T) {
	d, err := dist.NewProduct(dist.Zipf(64, 0.5, 1.0))
	if err != nil {
		t.Fatal(err)
	}
	rng := hashing.NewSplitMix64(13)
	data := d.SampleN(rng, 200)
	ix, err := BuildAdversarial(d, data, 0.5, Options{Seed: 3, Repetitions: 3})
	if err != nil {
		t.Fatal(err)
	}
	qs := d.SampleN(rng, 2) // far fewer queries than workers

	serial := ix.BatchQuery(qs)
	parallel := ix.QueryParallel(qs, 512)
	if !slices.Equal(serial, parallel) {
		t.Fatalf("QueryParallel(workers=512) diverged on %d queries", len(qs))
	}

	wantCands := make([][]int32, len(qs))
	for i, q := range qs {
		wantCands[i] = ix.Candidates(q)
	}
	gotCands := ix.BatchCandidates(qs, 512)
	for i := range qs {
		if !slices.Equal(wantCands[i], gotCands[i]) {
			t.Fatalf("BatchCandidates(workers=512) diverged on query %d", i)
		}
	}

	var none []bitvec.Vector
	if out := ix.QueryParallel(none, 512); len(out) != 0 {
		t.Fatalf("QueryParallel on empty batch returned %d results", len(out))
	}
}
