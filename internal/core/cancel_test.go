package core

import (
	"context"
	"errors"
	"testing"

	"skewsim/internal/dist"
	"skewsim/internal/hashing"
)

// TestQueryContext: with an un-cancelable context both ctx variants are
// exactly their plain counterparts; with an expired context they abort
// with the context error and never take the linear-scan fallback.
func TestQueryContext(t *testing.T) {
	d := dist.MustProduct(dist.Zipf(400, 0.4, 1.0))
	data := d.SampleN(hashing.NewSplitMix64(5), 400)
	ix, err := BuildAdversarial(d, data, 0.5, Options{Seed: 9})
	if err != nil {
		t.Fatalf("BuildAdversarial: %v", err)
	}
	q := data[7]

	res, err := ix.QueryContext(context.Background(), q)
	if err != nil {
		t.Fatalf("QueryContext(Background): %v", err)
	}
	if want := ix.Query(q); res != want {
		t.Fatalf("QueryContext = %+v, Query = %+v", res, want)
	}
	bres, err := ix.QueryBestContext(context.Background(), q)
	if err != nil {
		t.Fatalf("QueryBestContext(Background): %v", err)
	}
	if want := ix.QueryBest(q); bres != want {
		t.Fatalf("QueryBestContext = %+v, QueryBest = %+v", bres, want)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cres, err := ix.QueryContext(ctx, q)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled QueryContext: err = %v", err)
	}
	if cres.Stats.FellBack {
		t.Fatal("canceled query took the linear-scan fallback")
	}
	if _, err := ix.QueryBestContext(ctx, q); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled QueryBestContext: err = %v", err)
	}
}
