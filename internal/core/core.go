// Package core implements SkewSearch, the paper's primary contribution
// (§4–§6): a skew-adaptive set-similarity search structure for data
// drawn from a known product distribution D[p1..pd].
//
// SkewSearch instantiates the locality-sensitive filtering engine
// (internal/lsf) with the paper's two threshold schemes:
//
//   - Adversarial mode (§5, Theorem 2): s(x, j, i) = 1/(b1·|x| − j). The
//     structure answers any query q with B(q, x) ≥ b1 for some x ∈ S in
//     time O(d·n^{ρ(q)+ε}) where ρ(q) adapts to the query's skew.
//
//   - Correlated mode (§6, Theorem 1): for q ~ D_α(x), using the
//     conditional probabilities p̂_i = p_i(1−α) + α and boost
//     δ = 3/√(αC), s(x, j, i) = (1+δ)/(p̂_i·C·log n − j), with
//     verification threshold b1 = α/1.3 (Lemma 10).
//
// Both modes share the stopping rule Π_{i∈v} p_i ≤ 1/n and sampling
// without replacement. A single filter instance succeeds with probability
// Ω(1/log n) (Lemma 5), so the index keeps R ≈ log n independent
// repetitions and queries them in sequence.
package core

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync/atomic"

	"skewsim/internal/bitvec"
	"skewsim/internal/dist"
	"skewsim/internal/lsf"
	"skewsim/internal/rho"
	"skewsim/internal/verify"
)

// Mode selects the threshold scheme.
type Mode int

const (
	// Adversarial mode gives worst-case per-query adaptive guarantees
	// (Theorem 2).
	Adversarial Mode = iota
	// Correlated mode targets planted queries q ~ D_α(x) (Theorem 1).
	Correlated
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Adversarial:
		return "adversarial"
	case Correlated:
		return "correlated"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Options tunes the index. The zero value is a sensible default.
type Options struct {
	// Seed drives all randomness; equal seeds give identical structures.
	Seed uint64
	// Repetitions is the number of independent filter instances.
	// 0 means ceil(log2 n) + 1, matching the Ω(1/log n) per-instance
	// success probability of Lemma 5.
	Repetitions int
	// Measure used for candidate verification. Defaults to Braun-Blanquet,
	// the paper's measure.
	Measure bitvec.Measure
	// MaxDepth and MaxFiltersPerVector are forwarded to the engine
	// (0 = engine defaults).
	MaxDepth            int
	MaxFiltersPerVector int
	// Workers parallelizes filter generation during preprocessing
	// (0 = serial; negative = GOMAXPROCS). The built index is
	// bit-identical regardless of the worker count.
	Workers int
	// Weigher overrides the stopping rule's path-information accounting
	// (nil = the paper's independent-coordinates rule). Use
	// lsf.NewClusterWeigher for the §9 correlation-aware extension.
	// Indexes with a custom weigher cannot be serialized.
	Weigher lsf.PathWeigher
	// DisableFallback turns off the linear-scan fallback used when a
	// query's filter generation exceeds the work budget. Mainly for
	// experiments that want to observe raw truncation behaviour.
	DisableFallback bool
}

// Stats aggregates work across repetitions for one query.
type Stats struct {
	Repetitions int // repetitions actually touched
	Filters     int // Σ |F(q)| over touched repetitions
	Candidates  int // Σ candidate occurrences (Lemma 7's quantity)
	Distinct    int // Σ per-repetition distinct candidates streamed
	// (verification itself is deduplicated index-wide, so at most
	// Distinct candidates are actually verified per query)
	FellBack bool
}

func (s *Stats) add(q lsf.QueryStats) {
	s.Repetitions++
	s.Filters += q.Filters
	s.Candidates += q.Candidates
	s.Distinct += q.Distinct
}

// Result of a query.
type Result struct {
	// ID indexes into the data slice; -1 when not found.
	ID int
	// Similarity under the verification measure.
	Similarity float64
	Found      bool
	Stats      Stats
}

// Index is a built SkewSearch structure.
type Index struct {
	mode      Mode
	d         *dist.Product
	data      []bitvec.Vector
	reps      []*lsf.Index
	threshold float64 // verification threshold b1
	measure   bitvec.Measure
	alpha     float64 // correlated mode only
	b1        float64 // adversarial mode only
	fallback  bool
	// visitPool recycles the epoch-stamped sets that deduplicate
	// candidates across repetitions (Query, QueryBest, Candidates,
	// QueryTopK).
	visitPool lsf.VisitedPool
	// packed is the word-packed form of data, built once per index and
	// shared by every repetition and by the verification engine: a
	// candidate's similarity is a popcount intersection against the
	// query's bitmap, never a re-walk of the sorted slices.
	packed *bitvec.PackedSet
	// candHint tracks the last few candidate-set sizes (EWMA-ish: plain
	// last-seen) so Candidates can preallocate its output.
	candHint atomic.Int64
	// retained for serialization: engine seeds and limits.
	seeds         []uint64
	maxDepth      int
	maxFilters    int
	customWeigher bool
}

// BuildAdversarial preprocesses data for adversarial queries with
// similarity threshold b1 ∈ (0, 1].
func BuildAdversarial(d *dist.Product, data []bitvec.Vector, b1 float64, opt Options) (*Index, error) {
	if d == nil {
		return nil, errors.New("core: nil distribution")
	}
	if len(data) == 0 {
		return nil, errors.New("core: empty dataset")
	}
	if b1 <= 0 || b1 > 1 {
		return nil, fmt.Errorf("core: b1 = %v outside (0, 1]", b1)
	}
	ix := &Index{
		mode:      Adversarial,
		d:         d,
		data:      data,
		threshold: b1,
		b1:        b1,
		measure:   opt.Measure,
		fallback:  !opt.DisableFallback,
	}
	if err := ix.buildReps(b1, opt); err != nil {
		return nil, err
	}
	return ix, nil
}

// BuildCorrelated preprocesses data for correlated queries with
// correlation α ∈ (0, 1].
func BuildCorrelated(d *dist.Product, data []bitvec.Vector, alpha float64, opt Options) (*Index, error) {
	if d == nil {
		return nil, errors.New("core: nil distribution")
	}
	if len(data) == 0 {
		return nil, errors.New("core: empty dataset")
	}
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("core: alpha = %v outside (0, 1]", alpha)
	}
	ix := &Index{
		mode: Correlated,
		d:    d,
		data: data,
		// Lemma 10: the planted pair has B ≥ α/1.3 whp while uncorrelated
		// pairs sit below α/1.5.
		threshold: alpha / 1.3,
		measure:   opt.Measure,
		alpha:     alpha,
		fallback:  !opt.DisableFallback,
	}
	if err := ix.buildReps(alpha, opt); err != nil {
		return nil, err
	}
	return ix, nil
}

// adversarialThreshold is §5's s(x, j, i) = 1/(b1·|x| − j), clamped into
// [0, 1]: once j reaches b1·|x| − 1 every remaining extension is taken
// (the stopping rule and depth cap bound the blowup).
func adversarialThreshold(b1 float64) lsf.ThresholdFunc {
	return func(x bitvec.Vector, j int, _ uint32) float64 {
		denom := b1*float64(x.Len()) - float64(j)
		if denom <= 1 {
			return 1
		}
		return 1 / denom
	}
}

// correlatedThreshold is §6's s(x, j, i) = (1+δ)/(p̂_i·C·log n − j) with
// C·log n instantiated as Σ p_i (its defining identity) and δ = 3/√(αC).
func correlatedThreshold(d *dist.Product, n int, alpha float64) lsf.ThresholdFunc {
	clogn := d.ExpectedSize() // = C·log n by definition of C
	c := d.C(n)
	delta := 0.0
	if c > 0 {
		delta = 3 / math.Sqrt(alpha*c)
	}
	phat := d.ConditionalProbs(alpha)
	return func(_ bitvec.Vector, j int, i uint32) float64 {
		ph := alpha // out-of-range elements: p = 0 ⇒ p̂ = α
		if int(i) < len(phat) {
			ph = phat[i]
		}
		denom := ph*clogn - float64(j)
		if denom <= 1+delta {
			return 1
		}
		return (1 + delta) / denom
	}
}

func (ix *Index) buildReps(param float64, opt Options) error {
	n := len(ix.data)
	params, err := EngineParams(ix.mode, ix.d, n, param, opt)
	if err != nil {
		return err
	}
	reps := len(params)
	ix.reps = make([]*lsf.Index, reps)
	ix.seeds = make([]uint64, reps)
	ix.maxDepth = opt.MaxDepth
	ix.maxFilters = opt.MaxFiltersPerVector
	ix.customWeigher = opt.Weigher != nil
	for r := range ix.reps {
		ix.seeds[r] = params[r].Seed
		engine, err := lsf.NewEngine(n, params[r])
		if err != nil {
			return err
		}
		if opt.Workers != 0 {
			workers := opt.Workers
			if workers < 0 {
				workers = 0 // BuildIndexParallel resolves to GOMAXPROCS
			}
			ix.reps[r], err = lsf.BuildIndexParallel(engine, ix.data, workers)
		} else {
			ix.reps[r], err = lsf.BuildIndex(engine, ix.data)
		}
		if err != nil {
			return err
		}
	}
	ix.attachPacked()
	return nil
}

// attachPacked builds the word-packed form of the dataset once and
// shares it with every repetition, so index-level and repetition-level
// queries verify candidates by popcount over the same arenas.
func (ix *Index) attachPacked() {
	ix.packed = bitvec.NewPackedSet(ix.data)
	for _, rep := range ix.reps {
		rep.UsePacked(ix.packed)
	}
}

// Mode returns the index's mode.
func (ix *Index) Mode() Mode { return ix.mode }

// Threshold returns the verification threshold b1 (α/1.3 in correlated
// mode).
func (ix *Index) Threshold() float64 { return ix.threshold }

// Repetitions returns the number of filter instances.
func (ix *Index) Repetitions() int { return len(ix.reps) }

// Data returns the indexed vectors.
func (ix *Index) Data() []bitvec.Vector { return ix.data }

// BuildStats sums construction statistics over repetitions.
func (ix *Index) BuildStats() lsf.BuildStats {
	var total lsf.BuildStats
	for _, r := range ix.reps {
		st := r.Stats()
		total.Vectors = st.Vectors
		total.TotalFilters += st.TotalFilters
		total.Buckets += st.Buckets
		total.Truncated += st.Truncated
	}
	return total
}

// Query searches for a vector with similarity at least the verification
// threshold, walking repetitions until one succeeds. If every repetition
// truncates (work budget) and fallback is enabled, it degrades to a
// linear scan so correctness never silently drops.
//
// The query's packed form is materialized once (a pooled verify.Session)
// and reused across every repetition, and candidates are deduplicated
// index-wide: a candidate that failed verification in one repetition is
// never re-verified when a later repetition surfaces it again.
func (ix *Index) Query(q bitvec.Vector) Result {
	var res Result
	res.ID = -1
	ses := verify.Acquire(ix.measure, q)
	defer verify.Release(ses)
	vis := ix.visitPool.Get(len(ix.data))
	defer ix.visitPool.Put(vis)
	allTruncated := true
	for _, rep := range ix.reps {
		st := rep.ForEachCandidate(q, func(id int32) bool {
			if !vis.FirstVisit(id) {
				return true
			}
			if sim, ok := ses.AtLeast(ix.packed, ix.data, id, ix.threshold); ok {
				res.ID, res.Similarity, res.Found = int(id), sim, true
				return false
			}
			return true
		})
		res.Stats.add(st)
		if !st.Truncated {
			allTruncated = false
		}
		if res.Found {
			return res
		}
	}
	if allTruncated && ix.fallback {
		res.Stats.FellBack = true
		id, sim, found := ix.linearScan(ses)
		if found {
			res.ID, res.Similarity, res.Found = id, sim, true
		}
	}
	return res
}

// QueryBest returns the most similar candidate across all repetitions,
// regardless of threshold. Found is false only when no repetition yields
// any candidate. Like Query it shares one packed query and one visited
// set across repetitions; each candidate is verified exactly once,
// pruned against the running best.
func (ix *Index) QueryBest(q bitvec.Vector) Result {
	var res Result
	res.ID = -1
	res.Similarity = -1
	ses := verify.Acquire(ix.measure, q)
	defer verify.Release(ses)
	vis := ix.visitPool.Get(len(ix.data))
	defer ix.visitPool.Put(vis)
	for _, rep := range ix.reps {
		st := rep.ForEachCandidate(q, func(id int32) bool {
			if !vis.FirstVisit(id) {
				return true
			}
			if sim, ok := ses.MoreThan(ix.packed, ix.data, id, res.Similarity); ok {
				res.ID, res.Similarity, res.Found = int(id), sim, true
			}
			return true
		})
		res.Stats.add(st)
	}
	if !res.Found {
		res.Similarity = 0
	}
	return res
}

// Candidates returns the distinct candidate ids over all repetitions.
// Used by the join driver and by experiments analyzing candidate sets.
// Each repetition streams its candidates straight into the cross-
// repetition dedup, so no per-repetition slices are materialized. The
// output is preallocated from the last-seen candidate count (seeded
// from BuildStats on the first call), so the join driver's steady-state
// loop does not regrow it element by element.
func (ix *Index) Candidates(q bitvec.Vector) []int32 {
	vis := ix.visitPool.Get(len(ix.data))
	defer ix.visitPool.Put(vis)
	out := make([]int32, 0, ix.candidateHint())
	for _, rep := range ix.reps {
		rep.ForEachCandidate(q, func(id int32) bool {
			if vis.FirstVisit(id) {
				out = append(out, id)
			}
			return true
		})
	}
	ix.candHint.Store(int64(len(out)))
	return out
}

// candidateHint estimates the distinct candidate count of the next
// query: the last query's count once one has run, otherwise a build-time
// estimate — average posting-list length (TotalFilters/Buckets) times
// the average filter count per vector (TotalFilters/Vectors) per
// repetition, which is the expected number of candidate occurrences for
// a data-like query — clamped to [8, n].
func (ix *Index) candidateHint() int {
	if h := ix.candHint.Load(); h > 0 {
		return int(h)
	}
	st := ix.BuildStats()
	est := 8
	if st.Buckets > 0 && st.Vectors > 0 {
		avgPosting := float64(st.TotalFilters) / float64(st.Buckets)
		avgFilters := float64(st.TotalFilters) / float64(st.Vectors) / float64(max(1, len(ix.reps)))
		est = int(avgPosting * avgFilters)
	}
	return min(max(est, 8), len(ix.data))
}

// linearScanSerialCutoff is the dataset size below which the fallback
// scan stays single-threaded: spawning workers costs more than scanning.
const linearScanSerialCutoff = 4096

// linearScan is the correctness fallback: an exact best-match scan over
// the whole dataset, used when every repetition truncates. It reuses the
// caller's packed verification session (length prune against the
// running best, popcount intersections) and fans out over the
// worker-clamp helper so a truncating query storm does not stall
// serving on one core.
func (ix *Index) linearScan(ses *verify.Session) (int, float64, bool) {
	n := len(ix.data)
	workers := runtime.GOMAXPROCS(0)
	if n < linearScanSerialCutoff || workers <= 1 {
		best, bestSim := ix.scanRange(ses, 0, n)
		return ix.scanVerdict(best, bestSim)
	}
	if workers > n {
		workers = n
	}
	bests := make([]int, workers)
	sims := make([]float64, workers)
	// One session for all workers — verification is read-only on it, so
	// the query is packed once, not once per worker.
	lsf.ForEachParallel(workers, workers, func(w int) {
		bests[w], sims[w] = ix.scanRange(ses, w*n/workers, (w+1)*n/workers)
	})
	best, bestSim := -1, -1.0
	for w := range bests {
		// Strict > keeps the lowest-id maximum, matching the serial scan.
		if bests[w] >= 0 && sims[w] > bestSim {
			best, bestSim = bests[w], sims[w]
		}
	}
	return ix.scanVerdict(best, bestSim)
}

// scanRange returns the first-encountered maximum over data[lo:hi).
func (ix *Index) scanRange(ses *verify.Session, lo, hi int) (int, float64) {
	best, bestSim := -1, -1.0
	for id := lo; id < hi; id++ {
		if sim, ok := ses.MoreThan(ix.packed, ix.data, int32(id), bestSim); ok {
			best, bestSim = id, sim
		}
	}
	return best, bestSim
}

func (ix *Index) scanVerdict(best int, bestSim float64) (int, float64, bool) {
	if best >= 0 && bestSim >= ix.threshold {
		return best, bestSim, true
	}
	return -1, 0, false
}

// PredictedQueryRho returns the theory's exponent for this index and a
// given query (adversarial mode: Theorem 2's ρ(q); correlated mode:
// Theorem 1's ρ, which is query-independent).
func (ix *Index) PredictedQueryRho(q bitvec.Vector) (float64, error) {
	switch ix.mode {
	case Adversarial:
		ps := make([]float64, 0, q.Len())
		for _, b := range q.Bits() {
			if int(b) < ix.d.Dim() {
				ps = append(ps, ix.d.P(int(b)))
			} else {
				ps = append(ps, 0)
			}
		}
		return rho.AdversarialQueryRho(rho.FromProbs(ps), ix.threshold)
	case Correlated:
		return rho.CorrelatedRho(rho.FromProbs(ix.d.Probs()), ix.alpha)
	default:
		return 0, fmt.Errorf("core: unknown mode %v", ix.mode)
	}
}
