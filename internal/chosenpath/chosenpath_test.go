package chosenpath

import (
	"math"
	"testing"

	"skewsim/internal/bitvec"
	"skewsim/internal/datagen"
	"skewsim/internal/dist"
)

func TestPathLength(t *testing.T) {
	// k = ceil(ln n / ln(1/b2)).
	if got := PathLength(1000, 0.1); got != 3 {
		t.Errorf("PathLength(1000, 0.1) = %d, want 3", got)
	}
	if got := PathLength(1, 0.5); got != 1 {
		t.Errorf("tiny n should give 1, got %d", got)
	}
	if got := PathLength(1024, 0.5); got != 10 {
		t.Errorf("PathLength(1024, 0.5) = %d, want 10", got)
	}
}

func TestBuildValidation(t *testing.T) {
	data := []bitvec.Vector{bitvec.New(1)}
	if _, err := Build(nil, 0.5, 0.1, Options{}); err == nil {
		t.Error("empty data should fail")
	}
	for _, c := range [][2]float64{{0.5, 0.5}, {0.1, 0.5}, {0, 0.1}, {1.5, 0.5}, {0.5, 0}} {
		if _, err := Build(data, c[0], c[1], Options{}); err == nil {
			t.Errorf("b1=%v b2=%v should fail", c[0], c[1])
		}
	}
	if _, err := Build(data, 0.5, 0.25, Options{Repetitions: -2}); err == nil {
		t.Error("negative repetitions should fail")
	}
}

func TestAccessors(t *testing.T) {
	d := dist.MustProduct(dist.Uniform(400, 0.1))
	w, _ := datagen.NewCorrelatedWorkload(d, 100, 1, 0.8, 1)
	ix, err := Build(w.Data, 0.6, 0.15, Options{Seed: 1, Repetitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Repetitions() != 4 || len(ix.Data()) != 100 {
		t.Error("accessors wrong")
	}
	if ix.Depth() != PathLength(100, 0.15) {
		t.Error("depth mismatch")
	}
	if bs := ix.BuildStats(); bs.Vectors != 100 || bs.TotalFilters <= 0 {
		t.Errorf("build stats %+v", bs)
	}
}

func TestChosenPathRecallOnCorrelatedWorkload(t *testing.T) {
	// Chosen Path solving the correlated instance via the (b1, b2)
	// reduction of §7.2: b2 = expected far similarity, b1 = expected
	// planted similarity. Recall must be high (it is a correct worst-case
	// structure — just slower than SkewSearch under skew).
	const (
		n     = 400
		alpha = 0.8
		p     = 0.1
	)
	d := dist.MustProduct(dist.Uniform(1200, p))
	w, err := datagen.NewCorrelatedWorkload(d, n, 40, alpha, 3)
	if err != nil {
		t.Fatal(err)
	}
	b2 := d.ExpectedBraunBlanquet()
	b1 := d.ExpectedCorrelatedBraunBlanquet(alpha)
	// Verify against a slightly relaxed threshold to absorb sampling
	// noise in the planted similarity.
	ix, err := Build(w.Data, b1*0.85, b2, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	recovered := 0
	for k, q := range w.Queries {
		res := ix.Query(q)
		if res.Found && res.ID == w.Targets[k] {
			recovered++
		}
	}
	if rate := float64(recovered) / float64(len(w.Queries)); rate < 0.85 {
		t.Errorf("recall %v, want ≥ 0.85", rate)
	}
}

func TestChosenPathFilterCountMatchesExponent(t *testing.T) {
	// E[|F(x)|] per repetition ≈ (1/b1)^k = n^{ln(1/b1)/ln(1/b2)}.
	const n = 300
	b1, b2 := 0.5, 0.1
	d := dist.MustProduct(dist.Uniform(900, 0.1))
	w, _ := datagen.NewCorrelatedWorkload(d, n, 1, 0.8, 5)
	ix, err := Build(w.Data, b1, b2, Options{Seed: 2, Repetitions: 8})
	if err != nil {
		t.Fatal(err)
	}
	bs := ix.BuildStats()
	perVector := float64(bs.TotalFilters) / float64(8*n)
	k := PathLength(n, b2)
	want := math.Pow(1/b1, float64(k))
	if perVector > want*2.5 || perVector < want*0.2 {
		t.Errorf("filters per vector %v, want ≈ %v", perVector, want)
	}
}

func TestQueryDeterministic(t *testing.T) {
	d := dist.MustProduct(dist.Uniform(500, 0.1))
	w, _ := datagen.NewCorrelatedWorkload(d, 150, 10, 0.8, 7)
	ix1, _ := Build(w.Data, 0.5, 0.12, Options{Seed: 9, Repetitions: 3})
	ix2, _ := Build(w.Data, 0.5, 0.12, Options{Seed: 9, Repetitions: 3})
	for _, q := range w.Queries {
		r1, r2 := ix1.Query(q), ix2.Query(q)
		if r1.Found != r2.Found || r1.ID != r2.ID {
			t.Fatal("same seed produced different results")
		}
	}
}

func TestQueryEmptyAndDisjoint(t *testing.T) {
	d := dist.MustProduct(dist.Uniform(300, 0.1))
	w, _ := datagen.NewCorrelatedWorkload(d, 80, 1, 0.8, 13)
	ix, err := Build(w.Data, 0.5, 0.12, Options{Seed: 1, Repetitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res := ix.Query(bitvec.New()); res.Found {
		t.Error("empty query found something")
	}
	if res := ix.Query(bitvec.New(9000, 9001, 9002)); res.Found {
		t.Error("disjoint query found something")
	}
}

func TestQueryBestAndCandidates(t *testing.T) {
	d := dist.MustProduct(dist.Uniform(600, 0.1))
	w, _ := datagen.NewCorrelatedWorkload(d, 200, 15, 0.8, 17)
	ix, err := Build(w.Data, 0.5, 0.12, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range w.Data[:15] {
		// Self-query: the vector itself is a candidate whenever it has a
		// filter, and QueryBest must then return similarity 1.
		res := ix.QueryBest(q)
		if res.Found && res.Similarity < 1-1e-9 {
			ids := ix.Candidates(q)
			t.Errorf("self QueryBest sim %v with %d candidates", res.Similarity, len(ids))
		}
		// Candidates must be distinct.
		ids := ix.Candidates(q)
		seen := map[int32]bool{}
		for _, id := range ids {
			if seen[id] {
				t.Fatal("duplicate candidate id")
			}
			seen[id] = true
		}
		// Stats.Distinct sums per-repetition distincts, so it can only
		// exceed the globally deduplicated candidate count.
		if len(ids) > res.Stats.Distinct {
			t.Errorf("global candidates %d exceed summed distinct %d", len(ids), res.Stats.Distinct)
		}
	}
}
