// Package chosenpath implements the Chosen Path data structure of
// Christiani and Pagh (STOC 2017) for the (b1, b2)-approximate
// Braun-Blanquet similarity problem, the principal worst-case baseline
// the paper improves on (its exponent is the comparison point of §1
// and the worked examples of §7).
//
// Chosen Path is the special case of the locality-sensitive filtering
// framework with
//
//   - a constant (skew-oblivious) threshold s(x, j, i) = 1/(b1·|x|), and
//   - a fixed path length k = ⌈ln n / ln(1/b2)⌉ instead of the paper's
//     distribution-dependent stopping rule.
//
// Its exponent is ρ = log(b1)/log(b2) regardless of the data
// distribution — which is exactly the weakness SkewSearch addresses.
//
// One deliberate deviation from the original: paths here sample without
// replacement (the engine enforces it). For the sparse regimes both
// papers target (|x| ≫ k) the difference is vanishing, and it keeps the
// two structures comparable on identical machinery.
package chosenpath

import (
	"errors"
	"fmt"
	"math"

	"skewsim/internal/bitvec"
	"skewsim/internal/hashing"
	"skewsim/internal/lsf"
)

// Options tunes the index; the zero value is a sensible default.
type Options struct {
	// Seed drives all randomness.
	Seed uint64
	// Repetitions is the number of independent filter instances
	// (0 = ceil(log2 n) + 1, as for SkewSearch, so comparisons are fair).
	Repetitions int
	// Measure used for verification (default Braun-Blanquet).
	Measure bitvec.Measure
	// MaxFiltersPerVector forwards the engine work budget (0 = default).
	MaxFiltersPerVector int
}

// Index is a built Chosen Path structure.
type Index struct {
	data      []bitvec.Vector
	reps      []*lsf.Index
	b1, b2    float64
	depth     int
	measure   bitvec.Measure
	visitPool lsf.VisitedPool
}

// PathLength returns the fixed depth k = ⌈ln n / ln(1/b2)⌉ used for
// dataset size n and far-similarity b2.
func PathLength(n int, b2 float64) int {
	if n < 2 {
		return 1
	}
	k := int(math.Ceil(math.Log(float64(n)) / math.Log(1/b2)))
	if k < 1 {
		k = 1
	}
	return k
}

// Build preprocesses data for (b1, b2)-approximate similarity search,
// 0 < b2 < b1 ≤ 1.
func Build(data []bitvec.Vector, b1, b2 float64, opt Options) (*Index, error) {
	if len(data) == 0 {
		return nil, errors.New("chosenpath: empty dataset")
	}
	if !(0 < b2 && b2 < b1 && b1 <= 1) {
		return nil, fmt.Errorf("chosenpath: need 0 < b2 < b1 <= 1, got b1=%v b2=%v", b1, b2)
	}
	n := len(data)
	k := PathLength(n, b2)
	reps := opt.Repetitions
	if reps == 0 {
		reps = int(math.Ceil(math.Log2(float64(n)))) + 1
	}
	if reps < 1 {
		return nil, fmt.Errorf("chosenpath: Repetitions %d must be >= 1", opt.Repetitions)
	}

	threshold := func(x bitvec.Vector, _ int, _ uint32) float64 {
		m := float64(x.Len())
		if m == 0 {
			return 0
		}
		s := 1 / (b1 * m)
		if s > 1 {
			return 1
		}
		return s
	}

	ix := &Index{
		data:    data,
		reps:    make([]*lsf.Index, reps),
		b1:      b1,
		b2:      b2,
		depth:   k,
		measure: opt.Measure,
	}
	seeds := hashing.NewSplitMix64(opt.Seed)
	for r := range ix.reps {
		engine, err := lsf.NewEngine(n, lsf.Params{
			Seed: seeds.Next(),
			// Chosen Path ignores the distribution entirely; probabilities
			// only feed the stopping rule, which is fixed-depth here, so
			// none are supplied.
			Probs:               nil,
			Threshold:           threshold,
			Stop:                lsf.FixedDepthStopRule(k),
			MaxDepth:            k + 1,
			MaxFiltersPerVector: opt.MaxFiltersPerVector,
		})
		if err != nil {
			return nil, err
		}
		ix.reps[r], err = lsf.BuildIndex(engine, data)
		if err != nil {
			return nil, err
		}
	}
	return ix, nil
}

// Depth returns the fixed path length k.
func (ix *Index) Depth() int { return ix.depth }

// Repetitions returns the number of filter instances.
func (ix *Index) Repetitions() int { return len(ix.reps) }

// Data returns the indexed vectors.
func (ix *Index) Data() []bitvec.Vector { return ix.data }

// BuildStats sums construction statistics over repetitions.
func (ix *Index) BuildStats() lsf.BuildStats {
	var total lsf.BuildStats
	for _, r := range ix.reps {
		st := r.Stats()
		total.Vectors = st.Vectors
		total.TotalFilters += st.TotalFilters
		total.Buckets += st.Buckets
		total.Truncated += st.Truncated
	}
	return total
}

// Result mirrors core.Result for the baseline.
type Result struct {
	ID         int
	Similarity float64
	Found      bool
	Stats      Stats
}

// Stats aggregates per-repetition query work.
type Stats struct {
	Repetitions int
	Filters     int
	Candidates  int
	Distinct    int
}

func (s *Stats) add(q lsf.QueryStats) {
	s.Repetitions++
	s.Filters += q.Filters
	s.Candidates += q.Candidates
	s.Distinct += q.Distinct
}

// Query returns a vector with similarity ≥ b1 if one is found among
// candidates, walking repetitions in order.
func (ix *Index) Query(q bitvec.Vector) Result {
	res := Result{ID: -1}
	for _, rep := range ix.reps {
		id, sim, st, found := rep.Query(q, ix.b1, ix.measure)
		res.Stats.add(st)
		if found {
			res.ID, res.Similarity, res.Found = id, sim, true
			return res
		}
	}
	return res
}

// QueryBest returns the most similar candidate over all repetitions.
func (ix *Index) QueryBest(q bitvec.Vector) Result {
	res := Result{ID: -1, Similarity: -1}
	for _, rep := range ix.reps {
		id, sim, st, found := rep.QueryBest(q, ix.measure)
		res.Stats.add(st)
		if found && sim > res.Similarity {
			res.ID, res.Similarity, res.Found = id, sim, true
		}
	}
	if !res.Found {
		res.Similarity = 0
	}
	return res
}

// QueryParallel answers the queries over `workers` goroutines (<= 0
// selects GOMAXPROCS), returning results identical to calling Query in a
// loop, in input order. Provided so the baseline stays comparable with
// SkewSearch's batched query path.
func (ix *Index) QueryParallel(qs []bitvec.Vector, workers int) []Result {
	out := make([]Result, len(qs))
	lsf.ForEachParallel(len(qs), workers, func(k int) {
		out[k] = ix.Query(qs[k])
	})
	return out
}

// Candidates returns the distinct candidate ids over all repetitions,
// for the join driver.
func (ix *Index) Candidates(q bitvec.Vector) []int32 {
	vis := ix.visitPool.Get(len(ix.data))
	defer ix.visitPool.Put(vis)
	var out []int32
	for _, rep := range ix.reps {
		rep.ForEachCandidate(q, func(id int32) bool {
			if vis.FirstVisit(id) {
				out = append(out, id)
			}
			return true
		})
	}
	return out
}
