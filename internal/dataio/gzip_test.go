package dataio

import (
	"bytes"
	"compress/gzip"
	"os"
	"path/filepath"
	"slices"
	"testing"

	"skewsim/internal/bitvec"
)

func TestReadSniffsGzip(t *testing.T) {
	var plain bytes.Buffer
	data := []bitvec.Vector{bitvec.New(3, 17, 4211), bitvec.New(8, 9)}
	if err := Write(&plain, data); err != nil {
		t.Fatalf("Write: %v", err)
	}
	var zipped bytes.Buffer
	gz := gzip.NewWriter(&zipped)
	if _, err := gz.Write(plain.Bytes()); err != nil {
		t.Fatalf("gzip write: %v", err)
	}
	if err := gz.Close(); err != nil {
		t.Fatalf("gzip close: %v", err)
	}
	got, err := Read(&zipped)
	if err != nil {
		t.Fatalf("Read(gzip): %v", err)
	}
	if len(got) != len(data) {
		t.Fatalf("got %d vectors, want %d", len(got), len(data))
	}
	for i := range got {
		if !slices.Equal(got[i].Bits(), data[i].Bits()) {
			t.Fatalf("vector %d: %v != %v", i, got[i], data[i])
		}
	}
}

func TestReadRejectsCorruptGzip(t *testing.T) {
	// Valid magic, garbage stream: must error, not hang or panic.
	if _, err := Read(bytes.NewReader([]byte{0x1f, 0x8b, 0xff, 0x00, 0x13})); err == nil {
		t.Fatal("corrupt gzip accepted")
	}
}

func TestFileRoundTripGzip(t *testing.T) {
	data := []bitvec.Vector{bitvec.New(1, 2, 3), bitvec.New(1000000), bitvec.New(5)}
	dir := t.TempDir()
	for _, name := range []string{"d.txt", "d.txt.gz"} {
		path := filepath.Join(dir, name)
		if err := WriteFile(path, data); err != nil {
			t.Fatalf("WriteFile(%s): %v", name, err)
		}
		got, err := ReadFile(path)
		if err != nil {
			t.Fatalf("ReadFile(%s): %v", name, err)
		}
		if len(got) != len(data) {
			t.Fatalf("%s: %d vectors, want %d", name, len(got), len(data))
		}
		for i := range got {
			if !slices.Equal(got[i].Bits(), data[i].Bits()) {
				t.Fatalf("%s vector %d mismatch", name, i)
			}
		}
	}
	// The .gz file must actually be compressed (magic bytes present).
	raw, err := os.ReadFile(filepath.Join(dir, "d.txt.gz"))
	if err != nil {
		t.Fatal(err)
	}
	if raw[0] != 0x1f || raw[1] != 0x8b {
		t.Fatalf("WriteFile(.gz) produced uncompressed output: % x", raw[:2])
	}
	if IsGzipPath("a/b.txt") || !IsGzipPath("a/b.txt.gz") {
		t.Fatal("IsGzipPath misclassifies")
	}
}
