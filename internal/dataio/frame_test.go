package dataio

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// TestFrameRoundTrip streams several frames, including empty and
// binary payloads, through AppendFrame → FrameReader.
func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		[]byte("hello"),
		{},
		{0x00, 0xff, 0x1f, 0x8b}, // gzip magic inside a payload must not confuse anything
		bytes.Repeat([]byte{7}, 1<<12),
	}
	var stream []byte
	for _, p := range payloads {
		stream = AppendFrame(stream, p)
	}
	if len(stream) != FrameLen(5)+FrameLen(0)+FrameLen(4)+FrameLen(1<<12) {
		t.Fatalf("stream length %d does not match FrameLen sum", len(stream))
	}
	fr := NewFrameReader(bytes.NewReader(stream))
	for i, want := range payloads {
		got, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: got %q want %q", i, got, want)
		}
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Fatalf("want io.EOF at clean end, got %v", err)
	}
	if fr.Offset() != int64(len(stream)) {
		t.Fatalf("Offset = %d, want %d", fr.Offset(), len(stream))
	}
}

// TestFrameTornTail truncates a two-frame stream at every byte inside
// the second frame: Next must return the first frame, then
// ErrTornFrame, with Offset pointing at the clean boundary.
func TestFrameTornTail(t *testing.T) {
	var stream []byte
	stream = AppendFrame(stream, []byte("first"))
	boundary := len(stream)
	stream = AppendFrame(stream, []byte("second-frame-payload"))
	for cut := boundary + 1; cut < len(stream); cut++ {
		fr := NewFrameReader(bytes.NewReader(stream[:cut]))
		if _, err := fr.Next(); err != nil {
			t.Fatalf("cut %d: first frame: %v", cut, err)
		}
		if _, err := fr.Next(); !errors.Is(err, ErrTornFrame) {
			t.Fatalf("cut %d: want ErrTornFrame, got %v", cut, err)
		}
		if fr.Offset() != int64(boundary) {
			t.Fatalf("cut %d: Offset = %d, want %d", cut, fr.Offset(), boundary)
		}
	}
}

// TestFrameCorruption flips each byte of a frame in turn; every flip
// must surface as ErrTornFrame (bad checksum, implausible length, or a
// short read), never as a silently wrong payload.
func TestFrameCorruption(t *testing.T) {
	clean := AppendFrame(nil, []byte("payload-under-test"))
	for i := range clean {
		mut := bytes.Clone(clean)
		mut[i] ^= 0x41
		fr := NewFrameReader(bytes.NewReader(mut))
		got, err := fr.Next()
		if err == nil && !bytes.Equal(got, []byte("payload-under-test")) {
			t.Fatalf("flip %d: corrupt payload %q accepted", i, got)
		}
		if err != nil && !errors.Is(err, ErrTornFrame) {
			t.Fatalf("flip %d: unexpected error %v", i, err)
		}
		if err == nil {
			t.Fatalf("flip %d: corruption not detected", i)
		}
	}
}

// FuzzFrameReader feeds arbitrary bytes: the reader must never panic
// and never hand back a payload whose checksum did not verify.
func FuzzFrameReader(f *testing.F) {
	f.Add(AppendFrame(nil, []byte("seed")))
	f.Add(AppendFrame(AppendFrame(nil, []byte{}), []byte{1, 2, 3}))
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewFrameReader(bytes.NewReader(data))
		for {
			payload, err := fr.Next()
			if err != nil {
				if err != io.EOF && !errors.Is(err, ErrTornFrame) {
					t.Fatalf("unexpected error class: %v", err)
				}
				return
			}
			_ = payload
			if fr.Offset() > int64(len(data)) {
				t.Fatalf("Offset %d beyond input %d", fr.Offset(), len(data))
			}
		}
	})
}
