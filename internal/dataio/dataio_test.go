package dataio

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"skewsim/internal/bitvec"
)

func TestReadBasic(t *testing.T) {
	in := "# comment\n3 17 4211\n\n8 9\n"
	vs, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 2 {
		t.Fatalf("got %d vectors", len(vs))
	}
	if !vs[0].Equal(bitvec.New(3, 17, 4211)) || !vs[1].Equal(bitvec.New(8, 9)) {
		t.Errorf("parsed %v, %v", vs[0], vs[1])
	}
}

func TestReadMergesDuplicates(t *testing.T) {
	vs, err := Read(strings.NewReader("5 5 5 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !vs[0].Equal(bitvec.New(1, 5)) {
		t.Errorf("got %v", vs[0])
	}
}

func TestReadRejectsBadInput(t *testing.T) {
	for _, in := range []string{"abc\n", "1 -2\n", "1 99999999999999999999\n"} {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("input %q should fail", in)
		}
	}
}

func TestReadEmpty(t *testing.T) {
	vs, err := Read(strings.NewReader("# only comments\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Errorf("got %d vectors", len(vs))
	}
}

func TestRoundTrip(t *testing.T) {
	data := []bitvec.Vector{
		bitvec.New(1, 2, 3),
		bitvec.New(42),
		bitvec.New(0, 4294967295),
	}
	var buf bytes.Buffer
	if err := Write(&buf, data); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(data) {
		t.Fatalf("round trip lost vectors: %d vs %d", len(back), len(data))
	}
	for i := range data {
		if !back[i].Equal(data[i]) {
			t.Errorf("vector %d: %v vs %v", i, back[i], data[i])
		}
	}
}

func TestRoundTripDropsEmptyVectors(t *testing.T) {
	// Documented limitation: the transaction format cannot represent
	// empty sets.
	var buf bytes.Buffer
	if err := Write(&buf, []bitvec.Vector{bitvec.New(), bitvec.New(7)}); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || !back[0].Equal(bitvec.New(7)) {
		t.Errorf("got %v", back)
	}
}

func TestReadNeverPanicsOnGarbage(t *testing.T) {
	// Robustness: arbitrary byte soup must produce an error or a valid
	// parse, never a panic.
	inputs := []string{
		"\x00\x01\x02",
		"999999999999999999999999999999",
		"1 2 3\x00",
		strings.Repeat("7 ", 10000),
		"#\n#\n#",
		"-0",
		"+1",
		"0x10",
		"1\t2\t3",
		" 42 ",
	}
	for _, in := range inputs {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("input %q panicked: %v", in, r)
				}
			}()
			_, _ = Read(strings.NewReader(in))
		}()
	}
}

func TestReadLongLine(t *testing.T) {
	// Lines beyond the default bufio.Scanner limit must still parse (the
	// reader widens its buffer).
	var sb strings.Builder
	for i := 0; i < 40000; i++ {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(strconv.Itoa(i))
	}
	vs, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 || vs[0].Len() != 40000 {
		t.Fatalf("long line parsed to %d vectors", len(vs))
	}
}
