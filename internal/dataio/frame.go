package dataio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Binary frame format shared by the durable byte streams (the write-
// ahead log in internal/wal is the primary client): each frame is a
// little-endian header followed by an opaque payload,
//
//	length uint32  payload bytes
//	crc    uint32  CRC-32C (Castagnoli) of the payload
//	payload [length]byte
//
// The CRC covers the payload only; a corrupted length field is caught
// because it either points past the end of the stream (torn tail) or at
// bytes whose checksum cannot match. MaxFramePayload bounds a single
// frame so a corrupted length cannot drive an unbounded allocation.

// MaxFramePayload is the largest payload AppendFrame accepts and
// FrameReader will allocate for. 256 MiB: far above any WAL record
// (the largest is one inserted vector) while still a sane allocation
// bound against corrupt headers.
const MaxFramePayload = 256 << 20

// frameHeaderSize is the fixed length+crc prefix.
const frameHeaderSize = 8

// ErrTornFrame reports a frame that does not decode cleanly: the stream
// ended mid-frame, the length field is implausible, or the checksum
// does not match. At the tail of a crash-interrupted log file this is
// the expected torn-write signature (the caller truncates at the last
// clean frame boundary); anywhere else it means corruption.
var ErrTornFrame = errors.New("dataio: torn or corrupt frame")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC-32C (Castagnoli) checksum of p — the same
// polynomial the frame format uses, exported so other on-disk layouts
// (the SKSEG1 segment container) checksum their sections consistently
// with the WAL frames.
func Checksum(p []byte) uint32 { return crc32.Checksum(p, castagnoli) }

// AppendFrame appends the framed encoding of payload to dst and returns
// the extended slice. Panics if payload exceeds MaxFramePayload (WAL
// records are small; a violation is a programming error, not an input
// error).
func AppendFrame(dst, payload []byte) []byte {
	if len(payload) > MaxFramePayload {
		panic(fmt.Sprintf("dataio: frame payload %d exceeds MaxFramePayload", len(payload)))
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, castagnoli))
	return append(dst, payload...)
}

// FrameLen returns the on-stream size of a frame carrying a payload of
// n bytes.
func FrameLen(n int) int { return frameHeaderSize + n }

// FrameReader decodes a stream of frames. Next returns payloads in
// order; the returned slice is reused by the following Next call.
type FrameReader struct {
	r   *bufio.Reader
	buf []byte
	off int64 // stream offset just past the last cleanly decoded frame
}

// NewFrameReader wraps r. The reader buffers internally; do not mix
// reads on r afterwards.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: bufio.NewReader(r)}
}

// Offset returns the stream offset immediately after the last frame
// that decoded cleanly — the truncation point a write-ahead log uses to
// drop a torn tail.
func (fr *FrameReader) Offset() int64 { return fr.off }

// Next returns the next payload. io.EOF marks a clean end exactly at a
// frame boundary; ErrTornFrame marks a partial, oversized, or
// checksum-failing frame (Offset still points at the last clean
// boundary). Any other error is from the underlying reader.
func (fr *FrameReader) Next() ([]byte, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(fr.r, hdr[:1]); err != nil {
		if err == io.EOF {
			return nil, io.EOF // clean boundary
		}
		return nil, err
	}
	if _, err := io.ReadFull(fr.r, hdr[1:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, ErrTornFrame // header cut short
		}
		return nil, err
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	crc := binary.LittleEndian.Uint32(hdr[4:8])
	if length > MaxFramePayload {
		return nil, ErrTornFrame
	}
	if cap(fr.buf) < int(length) {
		fr.buf = make([]byte, length)
	}
	payload := fr.buf[:length]
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, ErrTornFrame // payload cut short
		}
		return nil, err
	}
	if crc32.Checksum(payload, castagnoli) != crc {
		return nil, ErrTornFrame
	}
	fr.off += int64(frameHeaderSize) + int64(length)
	return payload, nil
}
