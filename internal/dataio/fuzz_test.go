package dataio

import (
	"bytes"
	"compress/gzip"
	"slices"
	"testing"
)

// FuzzRead feeds arbitrary bytes (plain and gzip-framed) through Read:
// it must never panic, and whatever it accepts must survive a
// Write/Read round trip unchanged (empty vectors excluded — the text
// format cannot represent them). Seeds cover the grammar corners:
// comments, blanks, duplicates, huge ids, bad tokens, gzip framing.
func FuzzRead(f *testing.F) {
	f.Add([]byte("3 17 4211\n8 9\n"))
	f.Add([]byte("# comment\n\n1\n"))
	f.Add([]byte("5 5 5\n"))
	f.Add([]byte("4294967295\n"))
	f.Add([]byte("4294967296\n")) // one past uint32: must error
	f.Add([]byte("1 2 x\n"))
	f.Add([]byte("-1\n"))
	f.Add([]byte{0x1f, 0x8b})             // truncated gzip header
	f.Add([]byte{0x1f, 0x8b, 0x08, 0x00}) // longer truncated gzip
	var gzSeed bytes.Buffer
	gw := gzip.NewWriter(&gzSeed)
	gw.Write([]byte("1 2 3\n10 20\n"))
	gw.Close()
	f.Add(gzSeed.Bytes())

	f.Fuzz(func(t *testing.T, in []byte) {
		vecs, err := Read(bytes.NewReader(in))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := Write(&out, vecs); err != nil {
			t.Fatalf("Write of accepted input failed: %v", err)
		}
		back, err := Read(&out)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		kept := vecs[:0]
		for _, v := range vecs {
			if !v.IsEmpty() {
				kept = append(kept, v)
			}
		}
		if len(back) != len(kept) {
			t.Fatalf("round trip: %d vectors, want %d", len(back), len(kept))
		}
		for i := range back {
			if !slices.Equal(back[i].Bits(), kept[i].Bits()) {
				t.Fatalf("round trip vector %d: %v != %v", i, back[i], kept[i])
			}
		}
	})
}
