// Package dataio reads and writes the library's plain-text dataset
// format, one set per line as space-separated element ids:
//
//	# optional comments
//	3 17 4211
//	8 9
//
// The format is deliberately the same "transaction file" shape used by
// the set-similarity-join benchmark datasets the paper analyzes in §8,
// so real files can be dropped in for the analysis experiments. The
// package also provides the length-prefixed, CRC-framed binary record
// format (frame.go) the write-ahead log in internal/wal journals with.
package dataio

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"skewsim/internal/bitvec"
)

// Read parses vectors from r. Blank lines and lines starting with '#' are
// skipped. Duplicate ids within a line are merged. Gzip-compressed input
// is detected by its magic bytes and decompressed transparently, so the
// benchmark dumps can stay compressed on disk and still stream straight
// into the daemon or the experiment harness.
func Read(r io.Reader) ([]bitvec.Vector, error) {
	br := bufio.NewReader(r)
	if magic, err := br.Peek(2); err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("dataio: gzip: %w", err)
		}
		defer gz.Close()
		return readPlain(gz)
	}
	return readPlain(br)
}

func readPlain(r io.Reader) ([]bitvec.Vector, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var out []bitvec.Vector
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		bits := make([]uint32, 0, len(fields))
		for _, f := range fields {
			v, err := strconv.ParseUint(f, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("dataio: line %d: bad element %q: %v", lineNo, f, err)
			}
			bits = append(bits, uint32(v))
		}
		out = append(out, bitvec.New(bits...))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataio: %w", err)
	}
	return out, nil
}

// Write emits vectors in the text format. Empty vectors produce blank
// lines, which Read skips: the transaction format cannot represent empty
// sets (real benchmark files never contain them), so a write/read round
// trip drops them.
func Write(w io.Writer, data []bitvec.Vector) error {
	bw := bufio.NewWriter(w)
	for _, v := range data {
		for i, b := range v.Bits() {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatUint(uint64(b), 10)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// IsGzipPath reports whether path names a gzip-compressed dump by
// extension. Read does not need it (it sniffs magic bytes); Write-side
// callers use it to decide whether to compress.
func IsGzipPath(path string) bool { return strings.HasSuffix(path, ".gz") }

// ReadFile reads a dataset file, decompressing transparently (by magic
// bytes, not extension — a mislabeled file still reads correctly).
func ReadFile(path string) ([]bitvec.Vector, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// WriteFile writes a dataset file, gzip-compressing when the path ends
// in ".gz" so compressed dumps round-trip through ReadFile.
func WriteFile(path string, data []bitvec.Vector) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	if !IsGzipPath(path) {
		return Write(f, data)
	}
	gz := gzip.NewWriter(f)
	if err := Write(gz, data); err != nil {
		return err
	}
	return gz.Close()
}
