// Package dataio reads and writes the library's plain-text dataset
// format, one set per line as space-separated element ids:
//
//	# optional comments
//	3 17 4211
//	8 9
//
// The format is deliberately the same "transaction file" shape used by
// the set-similarity-join benchmark datasets the paper analyzes, so real
// files can be dropped in for the analysis experiments.
package dataio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"skewsim/internal/bitvec"
)

// Read parses vectors from r. Blank lines and lines starting with '#' are
// skipped. Duplicate ids within a line are merged.
func Read(r io.Reader) ([]bitvec.Vector, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var out []bitvec.Vector
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		bits := make([]uint32, 0, len(fields))
		for _, f := range fields {
			v, err := strconv.ParseUint(f, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("dataio: line %d: bad element %q: %v", lineNo, f, err)
			}
			bits = append(bits, uint32(v))
		}
		out = append(out, bitvec.New(bits...))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataio: %w", err)
	}
	return out, nil
}

// Write emits vectors in the text format. Empty vectors produce blank
// lines, which Read skips: the transaction format cannot represent empty
// sets (real benchmark files never contain them), so a write/read round
// trip drops them.
func Write(w io.Writer, data []bitvec.Vector) error {
	bw := bufio.NewWriter(w)
	for _, v := range data {
		for i, b := range v.Bits() {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatUint(uint64(b), 10)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
