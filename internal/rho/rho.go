// Package rho solves the exponent equations that govern the running time
// of every data structure in this library (§4's bounds, instantiated on
// the §7 worked examples). The paper's bounds are all of the form
// "query time O(n^ρ) where ρ solves <equation in the item-level
// probabilities>"; this package evaluates those equations numerically so
// the experiments can compare predicted exponents against measured ones.
//
// Probability vectors are represented as weighted Terms so that the
// enormous conceptual dimensions of the paper's examples (e.g. n^0.9·C·log n
// coordinates with probability n^-0.9 in §7.2) can be handled in closed
// grouped form instead of materializing billions of entries.
package rho

import (
	"errors"
	"fmt"
	"math"
)

// Term is a group of W coordinates that all have item-level probability P.
// W may be fractional: the equations are linear in the multiplicities.
type Term struct {
	P float64 // item-level probability, in [0, 1)
	W float64 // multiplicity (number of coordinates), >= 0
}

// Terms is a grouped probability vector.
type Terms []Term

// FromProbs converts a plain probability vector to unit-weight Terms,
// merging equal probabilities to keep the representation small.
func FromProbs(ps []float64) Terms {
	counts := make(map[float64]float64, 16)
	order := make([]float64, 0, 16)
	for _, p := range ps {
		if _, ok := counts[p]; !ok {
			order = append(order, p)
		}
		counts[p]++
	}
	out := make(Terms, 0, len(order))
	for _, p := range order {
		out = append(out, Term{P: p, W: counts[p]})
	}
	return out
}

// Validate checks that all probabilities are in [0, 1) and weights are
// non-negative.
func (ts Terms) Validate() error {
	for i, t := range ts {
		if math.IsNaN(t.P) || t.P < 0 || t.P >= 1 {
			return fmt.Errorf("rho: term %d probability %v outside [0, 1)", i, t.P)
		}
		if math.IsNaN(t.W) || t.W < 0 {
			return fmt.Errorf("rho: term %d weight %v negative", i, t.W)
		}
	}
	return nil
}

// Count returns Σ W, the (weighted) number of coordinates.
func (ts Terms) Count() float64 {
	s := 0.0
	for _, t := range ts {
		s += t.W
	}
	return s
}

// SumP returns Σ W·p, the expected set size under the distribution.
func (ts Terms) SumP() float64 {
	s := 0.0
	for _, t := range ts {
		s += t.W * t.P
	}
	return s
}

// SumPPow returns Σ W·p^e. Zero-probability terms contribute 0 for any
// e > 0 and W for e = 0 (the convention 0^0 = 1, matching the count of
// coordinates).
func (ts Terms) SumPPow(e float64) float64 {
	s := 0.0
	for _, t := range ts {
		if t.P == 0 {
			if e == 0 {
				s += t.W
			}
			continue
		}
		s += t.W * math.Pow(t.P, e)
	}
	return s
}

// MinPositiveP returns the smallest strictly positive probability among
// terms with positive weight, or 0 if there is none.
func (ts Terms) MinPositiveP() float64 {
	minP := 0.0
	for _, t := range ts {
		if t.W > 0 && t.P > 0 && (minP == 0 || t.P < minP) {
			minP = t.P
		}
	}
	return minP
}

// solver tolerances. The exponent space is [0, maxRho]; paper exponents
// are in [0, 1] but we leave slack so misuse fails loudly in tests rather
// than silently saturating.
const (
	tol    = 1e-12
	maxRho = 64
)

var errNoRoot = errors.New("rho: equation has no root in [0, 64]")

// bisectDecreasing finds x in [0, maxRho] with f(x) = 0 for a continuous
// non-increasing f. If f(0) <= 0 it returns 0 (the constraint is already
// satisfied); if f(maxRho) > 0 it returns an error.
func bisectDecreasing(f func(float64) float64) (float64, error) {
	if f(0) <= 0 {
		return 0, nil
	}
	lo, hi := 0.0, float64(maxRho)
	if f(hi) > 0 {
		return 0, errNoRoot
	}
	for hi-lo > tol {
		mid := (lo + hi) / 2
		if f(mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// AdversarialQueryRho returns the smallest ρ ≥ 0 with
//
//	Σ_{i∈q} p_i^ρ ≤ b1·|q|,
//
// the per-query exponent of Theorem 2. ts must describe exactly the
// coordinates of the query (|q| = ts.Count()).
func AdversarialQueryRho(ts Terms, b1 float64) (float64, error) {
	if err := ts.Validate(); err != nil {
		return 0, err
	}
	if b1 <= 0 || b1 > 1 {
		return 0, fmt.Errorf("rho: b1 = %v outside (0, 1]", b1)
	}
	q := ts.Count()
	if q == 0 {
		return 0, errors.New("rho: empty query")
	}
	return bisectDecreasing(func(r float64) float64 {
		return ts.SumPPow(r) - b1*q
	})
}

// AdversarialDataRho returns ρ_u solving
//
//	Σ_{i∈[d]} p_i^{1+ρ} = b1·Σ_{i∈[d]} p_i,
//
// which controls preprocessing time and space in Theorem 2 (Lemma 9).
func AdversarialDataRho(ts Terms, b1 float64) (float64, error) {
	if err := ts.Validate(); err != nil {
		return 0, err
	}
	if b1 <= 0 || b1 > 1 {
		return 0, fmt.Errorf("rho: b1 = %v outside (0, 1]", b1)
	}
	target := b1 * ts.SumP()
	if target == 0 {
		return 0, errors.New("rho: distribution with zero mass")
	}
	return bisectDecreasing(func(r float64) float64 {
		return ts.SumPPow(1+r) - target
	})
}

// CorrelatedRho returns ρ solving Theorem 1's equation
//
//	Σ_{i∈[d]} p_i^{1+ρ} / p̂_i = Σ_{i∈[d]} p_i,   p̂_i = p_i(1−α) + α.
//
// The left side strictly exceeds the right at ρ = 0 whenever some p̂_i < 1
// and decreases in ρ, so the root exists and is unique.
func CorrelatedRho(ts Terms, alpha float64) (float64, error) {
	if err := ts.Validate(); err != nil {
		return 0, err
	}
	if alpha <= 0 || alpha > 1 {
		return 0, fmt.Errorf("rho: alpha = %v outside (0, 1]", alpha)
	}
	target := ts.SumP()
	if target == 0 {
		return 0, errors.New("rho: distribution with zero mass")
	}
	return bisectDecreasing(func(r float64) float64 {
		s := 0.0
		for _, t := range ts {
			if t.P == 0 {
				continue
			}
			phat := t.P*(1-alpha) + alpha
			s += t.W * math.Pow(t.P, 1+r) / phat
		}
		return s - target
	})
}

// ChosenPathRho is the closed-form exponent log(b1)/log(b2) of the
// Christiani–Pagh Chosen Path data structure for the (b1, b2)-approximate
// Braun-Blanquet similarity problem. Requires 0 < b2 < b1 ≤ 1.
func ChosenPathRho(b1, b2 float64) (float64, error) {
	if !(0 < b2 && b2 < b1 && b1 <= 1) {
		return 0, fmt.Errorf("rho: need 0 < b2 < b1 <= 1, got b1=%v b2=%v", b1, b2)
	}
	if b1 == 1 {
		return 0, nil
	}
	return math.Log(b1) / math.Log(b2), nil
}

// CorrelatedChosenPath computes the ρ-value of solving a correlated-query
// instance via the worst-case Chosen Path structure, following §7.2: the
// expected similarity of the planted pair is b1 = α + (1−α)·b2 and of an
// uncorrelated pair b2 = (Σ p²)/(Σ p). This is the blue curve of Figure 1.
func CorrelatedChosenPath(ts Terms, alpha float64) (float64, error) {
	if err := ts.Validate(); err != nil {
		return 0, err
	}
	if alpha <= 0 || alpha > 1 {
		return 0, fmt.Errorf("rho: alpha = %v outside (0, 1]", alpha)
	}
	sum := ts.SumP()
	if sum == 0 {
		return 0, errors.New("rho: distribution with zero mass")
	}
	b2 := ts.SumPPow(2) / sum
	b1 := alpha + (1-alpha)*b2
	return ChosenPathRho(b1, b2)
}

// PrefixFilterExponent models the cost exponent of prefix filtering with a
// frequency-ordered inverted index: the cheapest exact strategy probes the
// rarest query token, touching ≈ n·p_min candidates, i.e. n^γ with
//
//	γ = 1 + log_n(p_min),
//
// clamped to [0, 1]. With p_min = n^-0.9 this yields the paper's Ω(n^0.1);
// with all p_i = Ω(1) it yields the trivial exponent 1 ("no non-trivial
// worst-case guarantee").
func PrefixFilterExponent(ts Terms, n float64) (float64, error) {
	if err := ts.Validate(); err != nil {
		return 0, err
	}
	if !(n >= 2) {
		return 0, fmt.Errorf("rho: n = %v too small", n)
	}
	minP := ts.MinPositiveP()
	if minP == 0 {
		return 1, nil
	}
	g := 1 + math.Log(minP)/math.Log(n)
	if g < 0 {
		g = 0
	}
	if g > 1 {
		g = 1
	}
	return g, nil
}

// UniformRhoClosedForm is the no-skew sanity anchor: for p_i = p for all i,
// Theorem 1's equation reduces to p^ρ = p̂, i.e.
//
//	ρ = log(p(1−α)+α) / log(p),
//
// which equals the Chosen Path exponent log(b1)/log(b2) with b1 = p̂,
// b2 = p. Used by tests to pin the solver against algebra.
func UniformRhoClosedForm(p, alpha float64) float64 {
	phat := p*(1-alpha) + alpha
	return math.Log(phat) / math.Log(p)
}
