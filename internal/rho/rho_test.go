package rho

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestFromProbsGroups(t *testing.T) {
	ts := FromProbs([]float64{0.25, 0.1, 0.25, 0.1, 0.1})
	if len(ts) != 2 {
		t.Fatalf("got %d groups: %v", len(ts), ts)
	}
	if !almostEqual(ts.Count(), 5, 1e-12) {
		t.Errorf("Count = %v", ts.Count())
	}
	if !almostEqual(ts.SumP(), 0.25*2+0.1*3, 1e-12) {
		t.Errorf("SumP = %v", ts.SumP())
	}
}

func TestValidate(t *testing.T) {
	bad := []Terms{
		{{P: -0.1, W: 1}},
		{{P: 1.0, W: 1}},
		{{P: 0.2, W: -1}},
		{{P: math.NaN(), W: 1}},
	}
	for i, ts := range bad {
		if err := ts.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	good := Terms{{P: 0, W: 3}, {P: 0.999, W: 0}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid terms rejected: %v", err)
	}
}

func TestSumPPowConventions(t *testing.T) {
	ts := Terms{{P: 0, W: 2}, {P: 0.5, W: 4}}
	if got := ts.SumPPow(0); !almostEqual(got, 6, 1e-12) {
		t.Errorf("e=0: %v, want 6 (0^0 = 1)", got)
	}
	if got := ts.SumPPow(1); !almostEqual(got, 2, 1e-12) {
		t.Errorf("e=1: %v, want 2", got)
	}
	if got := ts.SumPPow(2); !almostEqual(got, 1, 1e-12) {
		t.Errorf("e=2: %v, want 1", got)
	}
}

func TestMinPositiveP(t *testing.T) {
	ts := Terms{{P: 0, W: 5}, {P: 0.3, W: 1}, {P: 0.01, W: 0}, {P: 0.2, W: 2}}
	if got := ts.MinPositiveP(); got != 0.2 {
		t.Errorf("MinPositiveP = %v (zero-weight terms must be ignored)", got)
	}
	if got := (Terms{{P: 0, W: 1}}).MinPositiveP(); got != 0 {
		t.Errorf("all-zero MinPositiveP = %v", got)
	}
}

// --- AdversarialQueryRho -------------------------------------------------

func TestAdversarialQueryRhoUniformClosedForm(t *testing.T) {
	// Uniform p: equation m·p^ρ = b1·m → ρ = log(b1)/log(p).
	p, b1 := 0.125, 1.0/3
	ts := Terms{{P: p, W: 100}}
	got, err := AdversarialQueryRho(ts, b1)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Log(b1) / math.Log(p)
	if !almostEqual(got, want, 1e-9) {
		t.Errorf("rho = %v, want %v", got, want)
	}
}

func TestAdversarialQueryRhoPaperExample1(t *testing.T) {
	// §7.1: half pa=1/4, half pb=n^-0.9, b1=1/3. As n grows the exponent
	// approaches log(2/3)/log(1/4) ≈ 0.2925.
	want := math.Log(2.0/3) / math.Log(0.25)
	prev := math.Inf(1)
	for _, n := range []float64{1e6, 1e9, 1e12, 1e24} {
		pb := math.Pow(n, -0.9)
		ts := Terms{{P: 0.25, W: 50}, {P: pb, W: 50}}
		got, err := AdversarialQueryRho(ts, 1.0/3)
		if err != nil {
			t.Fatal(err)
		}
		if got > prev+1e-12 || got < want-1e-6 {
			t.Errorf("n=%g: rho = %v not decreasing toward %v (prev %v)", n, got, want, prev)
		}
		prev = got
	}
	if prev > want+0.005 {
		t.Errorf("rho at n=1e24 is %v, want → %v", prev, want)
	}
	if want > 0.293 {
		t.Errorf("limit %v should be ≤ 0.293 as printed in the paper", want)
	}
}

func TestAdversarialQueryRhoPaperExample2(t *testing.T) {
	// §7.1 with b1=2/3: ρ should tend to 0 as n grows (rate ~1/ln n).
	prev := math.Inf(1)
	for _, n := range []float64{1e3, 1e6, 1e12, 1e24, 1e60} {
		pb := math.Pow(n, -0.9)
		ts := Terms{{P: 0.25, W: 50}, {P: pb, W: 50}}
		got, err := AdversarialQueryRho(ts, 2.0/3)
		if err != nil {
			t.Fatal(err)
		}
		if got > prev+1e-12 {
			t.Errorf("rho not decreasing in n: %v -> %v", prev, got)
		}
		prev = got
	}
	if prev > 0.01 {
		t.Errorf("rho at n=1e60 is %v, should be near 0", prev)
	}
}

func TestAdversarialQueryRhoAlreadySatisfied(t *testing.T) {
	// If Σ p^0 = |q| ≤ b1|q| can't happen for b1<1, but a query whose
	// constraint is met at ρ=0 must return 0: take b1 = 1.
	ts := Terms{{P: 0.3, W: 10}}
	got, err := AdversarialQueryRho(ts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("rho = %v, want 0", got)
	}
}

func TestAdversarialQueryRhoErrors(t *testing.T) {
	ts := Terms{{P: 0.3, W: 10}}
	if _, err := AdversarialQueryRho(ts, 0); err == nil {
		t.Error("b1=0 should fail")
	}
	if _, err := AdversarialQueryRho(ts, 1.5); err == nil {
		t.Error("b1>1 should fail")
	}
	if _, err := AdversarialQueryRho(Terms{}, 0.5); err == nil {
		t.Error("empty query should fail")
	}
	if _, err := AdversarialQueryRho(Terms{{P: -1, W: 1}}, 0.5); err == nil {
		t.Error("invalid terms should fail")
	}
}

func TestAdversarialQueryRhoMonotoneInSkew(t *testing.T) {
	// Splitting mass into a rarer/more-frequent pair with the same count
	// at the same b1 should not increase the exponent beyond the uniform
	// case when rare bits help: spread p into {p·k, p/k} and verify the
	// solved rho never exceeds uniform rho by more than epsilon... The
	// clean monotone fact: lowering every probability lowers rho.
	base := Terms{{P: 0.25, W: 100}}
	lower := Terms{{P: 0.1, W: 100}}
	r1, err1 := AdversarialQueryRho(base, 0.4)
	r2, err2 := AdversarialQueryRho(lower, 0.4)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if r2 >= r1 {
		t.Errorf("lower probabilities must give smaller rho: %v vs %v", r2, r1)
	}
}

// --- AdversarialDataRho --------------------------------------------------

func TestAdversarialDataRhoUniform(t *testing.T) {
	// Uniform: Σ p^{1+ρ} = b1 Σ p → p^ρ = b1 → ρ = log b1 / log p.
	p, b1 := 0.2, 0.5
	ts := Terms{{P: p, W: 30}}
	got, err := AdversarialDataRho(ts, b1)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Log(b1) / math.Log(p)
	if !almostEqual(got, want, 1e-9) {
		t.Errorf("rho = %v, want %v", got, want)
	}
}

func TestAdversarialDataRhoSkewRaisesPreprocessing(t *testing.T) {
	// Unlike the query exponent, the *data* exponent grows under skew at
	// fixed Σp: p ↦ p^{1+ρ} is convex, so spreading the mass raises the
	// left side of Σ p^{1+ρ} = b1·Σp at every ρ and pushes the root up.
	// (Skew helps queries, not preprocessing.)
	uniform := Terms{{P: 0.25, W: 64}}
	skew := Terms{{P: 0.4, W: 32}, {P: 0.1, W: 32}}
	if !almostEqual(uniform.SumP(), skew.SumP(), 1e-12) {
		t.Fatal("test setup: sums differ")
	}
	ru, _ := AdversarialDataRho(uniform, 0.5)
	rs, _ := AdversarialDataRho(skew, 0.5)
	if rs <= ru {
		t.Errorf("skewed data rho %v should exceed uniform %v (convexity)", rs, ru)
	}
}

func TestAdversarialDataRhoErrors(t *testing.T) {
	if _, err := AdversarialDataRho(Terms{{P: 0, W: 5}}, 0.5); err == nil {
		t.Error("zero-mass distribution should fail")
	}
	if _, err := AdversarialDataRho(Terms{{P: 0.2, W: 1}}, -1); err == nil {
		t.Error("bad b1 should fail")
	}
}

// --- CorrelatedRho -------------------------------------------------------

func TestCorrelatedRhoUniformMatchesClosedForm(t *testing.T) {
	for _, p := range []float64{0.05, 0.2, 0.45} {
		for _, alpha := range []float64{0.3, 2.0 / 3, 0.9} {
			ts := Terms{{P: p, W: 50}}
			got, err := CorrelatedRho(ts, alpha)
			if err != nil {
				t.Fatal(err)
			}
			want := UniformRhoClosedForm(p, alpha)
			if !almostEqual(got, want, 1e-9) {
				t.Errorf("p=%v alpha=%v: rho = %v, want %v", p, alpha, got, want)
			}
		}
	}
}

func TestCorrelatedRhoRecoversChosenPathOnUniform(t *testing.T) {
	// The paper's headline discussion: in the balanced case our bound
	// equals Chosen Path's optimal bound.
	p, alpha := 0.2, 2.0/3
	ts := Terms{{P: p, W: 1000}}
	ours, err := CorrelatedRho(ts, alpha)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := CorrelatedChosenPath(ts, alpha)
	if err != nil {
		t.Fatal(err)
	}
	// CP's b1 = alpha + (1-alpha)p = p̂, b2 = p: identical equations.
	if !almostEqual(ours, cp, 1e-9) {
		t.Errorf("uniform case: ours %v vs chosen path %v", ours, cp)
	}
}

func TestCorrelatedRhoBeatsChosenPathUnderSkew(t *testing.T) {
	// Figure 1's qualitative claim: for the half-p/half-p/8 profile our
	// rho is strictly below Chosen Path for every p.
	alpha := 2.0 / 3
	for _, p := range []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5} {
		ts := Terms{{P: p, W: 500}, {P: p / 8, W: 500}}
		ours, err := CorrelatedRho(ts, alpha)
		if err != nil {
			t.Fatal(err)
		}
		cp, err := CorrelatedChosenPath(ts, alpha)
		if err != nil {
			t.Fatal(err)
		}
		if ours >= cp {
			t.Errorf("p=%v: ours %v should be < chosen path %v", p, ours, cp)
		}
	}
}

func TestCorrelatedRhoPaperSection72Example(t *testing.T) {
	// 4·C·log n bits at 1/4 and n^0.9·C·log n bits at n^-0.9, α = 2/3:
	// rho must tend to 0 as n grows.
	alpha := 2.0 / 3
	Clog := 100.0
	prev := math.Inf(1)
	for _, n := range []float64{1e3, 1e6, 1e12, 1e24, 1e60} {
		ts := Terms{
			{P: 0.25, W: 4 * Clog},
			{P: math.Pow(n, -0.9), W: math.Pow(n, 0.9) * Clog},
		}
		got, err := CorrelatedRho(ts, alpha)
		if err != nil {
			t.Fatal(err)
		}
		if got > prev+1e-12 {
			t.Errorf("rho not decreasing: %v -> %v", prev, got)
		}
		prev = got
	}
	if prev > 0.01 {
		t.Errorf("rho at n=1e60 is %v, want ~0", prev)
	}
}

func TestCorrelatedRhoAlphaOne(t *testing.T) {
	// alpha=1 → p̂=1 → equation Σ p^{1+ρ} = Σ p holds at ρ=0.
	ts := Terms{{P: 0.3, W: 10}, {P: 0.1, W: 5}}
	got, err := CorrelatedRho(ts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("alpha=1 rho = %v, want 0", got)
	}
}

func TestCorrelatedRhoMonotoneInAlpha(t *testing.T) {
	// Higher correlation → easier problem → smaller rho.
	ts := Terms{{P: 0.25, W: 100}, {P: 0.05, W: 100}}
	prev := math.Inf(1)
	for _, alpha := range []float64{0.2, 0.4, 0.6, 0.8, 0.99} {
		got, err := CorrelatedRho(ts, alpha)
		if err != nil {
			t.Fatal(err)
		}
		if got >= prev {
			t.Errorf("rho should decrease with alpha: alpha=%v rho=%v prev=%v", alpha, got, prev)
		}
		prev = got
	}
}

func TestCorrelatedRhoErrors(t *testing.T) {
	ts := Terms{{P: 0.2, W: 1}}
	for _, a := range []float64{0, -0.5, 1.5} {
		if _, err := CorrelatedRho(ts, a); err == nil {
			t.Errorf("alpha=%v should fail", a)
		}
	}
	if _, err := CorrelatedRho(Terms{{P: 0, W: 4}}, 0.5); err == nil {
		t.Error("zero-mass should fail")
	}
}

func TestCorrelatedRhoInUnitIntervalProperty(t *testing.T) {
	f := func(seedP, seedA uint16) bool {
		p1 := 0.01 + 0.49*float64(seedP)/65535
		alpha := 0.05 + 0.9*float64(seedA)/65535
		ts := Terms{{P: p1, W: 10}, {P: p1 / 4, W: 90}}
		r, err := CorrelatedRho(ts, alpha)
		if err != nil {
			return false
		}
		return r >= 0 && r <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// --- ChosenPathRho & CorrelatedChosenPath --------------------------------

func TestChosenPathRhoKnownValues(t *testing.T) {
	got, err := ChosenPathRho(1.0/3, 0.125)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Log(1.0/3) / math.Log(0.125) // ≈ 0.528
	if !almostEqual(got, want, 1e-12) {
		t.Errorf("rho = %v, want %v", got, want)
	}
	if want < 0.528 {
		t.Errorf("paper quotes ≥ 0.528, got %v", want)
	}

	got2, err := ChosenPathRho(2.0/3, 0.125)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got2, 0.19498, 1e-4) { // paper prints 0.194…
		t.Errorf("rho = %v, want ≈0.195", got2)
	}
}

func TestChosenPathRhoEdges(t *testing.T) {
	if r, err := ChosenPathRho(1, 0.5); err != nil || r != 0 {
		t.Errorf("b1=1 should give rho 0: %v, %v", r, err)
	}
	for _, c := range [][2]float64{{0.5, 0.5}, {0.3, 0.5}, {0, 0.1}, {0.5, 0}, {1.2, 0.5}} {
		if _, err := ChosenPathRho(c[0], c[1]); err == nil {
			t.Errorf("b1=%v b2=%v should fail", c[0], c[1])
		}
	}
}

func TestCorrelatedChosenPathFigure1Formula(t *testing.T) {
	// For half-p/half-p/8: b2 = (65/72)·p, b1 = α + (1−α)b2.
	p, alpha := 0.3, 2.0/3
	ts := Terms{{P: p, W: 500}, {P: p / 8, W: 500}}
	got, err := CorrelatedChosenPath(ts, alpha)
	if err != nil {
		t.Fatal(err)
	}
	b2 := 65.0 / 72 * p
	b1 := alpha + (1-alpha)*b2
	want := math.Log(b1) / math.Log(b2)
	if !almostEqual(got, want, 1e-9) {
		t.Errorf("rho = %v, want %v", got, want)
	}
}

func TestCorrelatedChosenPathErrors(t *testing.T) {
	if _, err := CorrelatedChosenPath(Terms{{P: 0, W: 1}}, 0.5); err == nil {
		t.Error("zero mass should fail")
	}
	if _, err := CorrelatedChosenPath(Terms{{P: 0.2, W: 1}}, 0); err == nil {
		t.Error("alpha=0 should fail")
	}
}

// --- PrefixFilterExponent ------------------------------------------------

func TestPrefixFilterExponentRareTokens(t *testing.T) {
	// p_min = n^-0.9 → exponent 0.1 (the paper's Ω(n^0.1)).
	n := float64(1 << 20)
	pmin := math.Pow(n, -0.9)
	ts := Terms{{P: 0.25, W: 10}, {P: pmin, W: 10}}
	got, err := PrefixFilterExponent(ts, n)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 0.1, 1e-9) {
		t.Errorf("exponent = %v, want 0.1", got)
	}
}

func TestPrefixFilterExponentNoRareTokens(t *testing.T) {
	// All probabilities Ω(1) → trivial exponent 1 ("prefix filtering has
	// ρ-value 1" in Figure 1's caption).
	ts := Terms{{P: 0.25, W: 100}, {P: 0.03125, W: 100}}
	got, err := PrefixFilterExponent(ts, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if got < 0.8 {
		t.Errorf("exponent = %v, want near 1 for constant probabilities", got)
	}
}

func TestPrefixFilterExponentClampsAtZero(t *testing.T) {
	ts := Terms{{P: 1e-12, W: 5}}
	got, err := PrefixFilterExponent(ts, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("exponent = %v, want clamp to 0", got)
	}
}

func TestPrefixFilterExponentErrors(t *testing.T) {
	if _, err := PrefixFilterExponent(Terms{{P: 0.1, W: 1}}, 1); err == nil {
		t.Error("n=1 should fail")
	}
	if _, err := PrefixFilterExponent(Terms{{P: -1, W: 1}}, 100); err == nil {
		t.Error("invalid terms should fail")
	}
	if g, err := PrefixFilterExponent(Terms{{P: 0, W: 1}}, 100); err != nil || g != 1 {
		t.Errorf("all-zero distribution: %v, %v (want trivial exponent)", g, err)
	}
}

// --- bisection internals -------------------------------------------------

func TestBisectDecreasingExactRoot(t *testing.T) {
	// f(x) = 2 − x has root 2.
	got, err := bisectDecreasing(func(x float64) float64 { return 2 - x })
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 2, 1e-9) {
		t.Errorf("root = %v", got)
	}
}

func TestBisectDecreasingAlreadyNegative(t *testing.T) {
	got, err := bisectDecreasing(func(x float64) float64 { return -1 })
	if err != nil || got != 0 {
		t.Errorf("got %v, %v", got, err)
	}
}

func TestBisectDecreasingNoRoot(t *testing.T) {
	if _, err := bisectDecreasing(func(x float64) float64 { return 1 }); err == nil {
		t.Error("expected error when f stays positive")
	}
}
