//go:build amd64 && !purego

package bitvec

// popcntAndAVX2 is implemented in kernel_amd64.s: Σ popcount(a[i] &
// b[i]) over i < n, 256-bit VPAND blocks reduced with the PSHUFB
// nibble-LUT method, scalar POPCNTQ tail. Callers must have checked
// kernelAVX2 first; n must be > 0.
//
//go:noescape
func popcntAndAVX2(a, b *uint64, n int) int

// cpuid executes CPUID with the given leaf/subleaf (kernel_amd64.s).
func cpuid(leaf, subleaf uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads XCR0, the OS-enabled extended-state mask
// (kernel_amd64.s). Only valid when CPUID reports OSXSAVE.
func xgetbv0() (eax, edx uint32)

// kernelAVX2 gates the assembly kernel, decided once at init. The
// module has no dependencies, so feature detection is hand-rolled
// CPUID/XGETBV rather than golang.org/x/sys/cpu: AVX2 is
// CPUID.(7,0):EBX[5], POPCNT is CPUID.1:ECX[23], and the OS must have
// enabled XMM+YMM state saving (OSXSAVE set and XCR0[2:1] = 11b) or
// executing VEX instructions faults.
var kernelAVX2 = detectAVX2()

func detectAVX2() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, c1, _ := cpuid(1, 0)
	const (
		popcntBit  = 1 << 23
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	if c1&popcntBit == 0 || c1&osxsaveBit == 0 || c1&avxBit == 0 {
		return false
	}
	xlo, _ := xgetbv0()
	if xlo&0b110 != 0b110 { // XCR0: SSE (bit 1) and AVX (bit 2) state
		return false
	}
	_, b7, _, _ := cpuid(7, 0)
	const avx2Bit = 1 << 5
	return b7&avx2Bit != 0
}
