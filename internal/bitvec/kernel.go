package bitvec

import "math/bits"

// Kernel layer: the AND+popcount word loops every verification path
// bottoms out in, in two implementations selected once at startup:
//
//   - an AVX2 assembly kernel (kernel_amd64.s): 256-bit VPAND blocks
//     counted with the PSHUFB nibble-LUT reduction (Muła's method —
//     AVX2 has no vector popcount instruction) and a scalar POPCNTQ
//     tail. Used when CPUID reports AVX2+POPCNT and the OS has enabled
//     YMM state (XGETBV), never under the purego build tag.
//   - a portable 4×-unrolled math/bits.OnesCount64 loop, the only
//     implementation on non-amd64 targets and under -tags purego.
//
// Both kernels return the exact Σ popcount(a[i] & b[i]); the
// differential and fuzz tests in kernel_test.go assert they agree on
// every input shape, so dispatch can never change a result, only its
// speed. Early exits for threshold pruning live a layer up
// (PackedSet.IntersectWordsAtLeast) at block granularity, between
// kernel calls, so the kernels themselves stay straight-line.

// kernelMinWords is the span length at which dispatch prefers the
// assembly kernel: below it the call overhead eats the SIMD win and the
// inlined generic loop is faster.
const kernelMinWords = 8

// andCountWords returns Σ popcount(a[i] & b[i]) over i < len(a).
// len(b) must be >= len(a).
func andCountWords(a, b []uint64) int {
	if kernelAVX2 && len(a) >= kernelMinWords {
		return popcntAndAVX2(&a[0], &b[0], len(a))
	}
	return popcntAndGeneric(a, b)
}

// popcntAndGeneric is the portable kernel: a 4×-unrolled OnesCount64
// loop (the compiler emits POPCNT-guarded code for it on amd64, NEON
// CNT on arm64). It is the reference implementation the assembly is
// differentially tested against, and the only kernel under purego.
func popcntAndGeneric(a, b []uint64) int {
	n := 0
	i := 0
	for ; i+4 <= len(a); i += 4 {
		n += bits.OnesCount64(a[i]&b[i]) +
			bits.OnesCount64(a[i+1]&b[i+1]) +
			bits.OnesCount64(a[i+2]&b[i+2]) +
			bits.OnesCount64(a[i+3]&b[i+3])
	}
	for ; i < len(a); i++ {
		n += bits.OnesCount64(a[i] & b[i])
	}
	return n
}

// andCountGather returns Σ popcount(w[k] & q[idxs[k]]) over k < len(w):
// the sparse-form kernel, where each stored word carries its own word
// index into the dense bitmap q. Every idxs[k] must be < len(q)
// (callers clamp against the query span first). The reads of q are
// data-dependent gathers, so this stays a scalar loop — unrolled so the
// popcounts of independent iterations overlap.
func andCountGather(w []uint64, idxs []uint32, q []uint64) int {
	n := 0
	k := 0
	for ; k+4 <= len(w); k += 4 {
		n += bits.OnesCount64(w[k]&q[idxs[k]]) +
			bits.OnesCount64(w[k+1]&q[idxs[k+1]]) +
			bits.OnesCount64(w[k+2]&q[idxs[k+2]]) +
			bits.OnesCount64(w[k+3]&q[idxs[k+3]])
	}
	for ; k < len(w); k++ {
		n += bits.OnesCount64(w[k] & q[idxs[k]])
	}
	return n
}

// KernelName names the active intersect kernel ("avx2" or "generic"),
// for startup log lines and tests asserting the dispatch outcome.
func KernelName() string {
	if kernelAVX2 {
		return "avx2"
	}
	return "generic"
}
