package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewSortsAndDeduplicates(t *testing.T) {
	v := New(5, 1, 3, 1, 5, 2)
	want := []uint32{1, 2, 3, 5}
	got := v.Bits()
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestNewEmpty(t *testing.T) {
	v := New()
	if !v.IsEmpty() || v.Len() != 0 {
		t.Fatalf("empty vector not empty: %v", v)
	}
	if _, ok := v.MaxBit(); ok {
		t.Fatal("MaxBit on empty vector reported ok")
	}
}

func TestFromSortedValid(t *testing.T) {
	v := FromSorted([]uint32{0, 2, 9})
	if v.Len() != 3 || !v.Contains(9) {
		t.Fatalf("unexpected vector %v", v)
	}
}

func TestFromSortedPanicsOnUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unsorted input")
		}
	}()
	FromSorted([]uint32{3, 1})
}

func TestFromSortedPanicsOnDuplicate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate input")
		}
	}()
	FromSorted([]uint32{1, 1})
}

func TestDenseRoundTrip(t *testing.T) {
	dense := []bool{true, false, false, true, true, false}
	v := FromDense(dense)
	if v.Len() != 3 {
		t.Fatalf("want 3 bits, got %d", v.Len())
	}
	back := v.Dense(len(dense))
	for i := range dense {
		if back[i] != dense[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
}

func TestDenseTruncates(t *testing.T) {
	v := New(1, 10)
	dense := v.Dense(5)
	if len(dense) != 5 || !dense[1] {
		t.Fatalf("unexpected dense %v", dense)
	}
	for i := 2; i < 5; i++ {
		if dense[i] {
			t.Fatalf("bit %d should be clear", i)
		}
	}
}

func TestContains(t *testing.T) {
	v := New(2, 4, 8)
	for _, b := range []uint32{2, 4, 8} {
		if !v.Contains(b) {
			t.Errorf("Contains(%d) = false, want true", b)
		}
	}
	for _, b := range []uint32{0, 1, 3, 5, 9, 100} {
		if v.Contains(b) {
			t.Errorf("Contains(%d) = true, want false", b)
		}
	}
}

func TestGetAndMaxBit(t *testing.T) {
	v := New(7, 3, 11)
	if v.Get(0) != 3 || v.Get(1) != 7 || v.Get(2) != 11 {
		t.Fatalf("Get order wrong: %v", v)
	}
	if m, ok := v.MaxBit(); !ok || m != 11 {
		t.Fatalf("MaxBit = %d, %v", m, ok)
	}
}

func TestCloneIsDeep(t *testing.T) {
	v := New(1, 2, 3)
	c := v.Clone()
	c.bits[0] = 99
	if v.bits[0] != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestEqual(t *testing.T) {
	cases := []struct {
		a, b Vector
		want bool
	}{
		{New(1, 2), New(2, 1), true},
		{New(1, 2), New(1, 2, 3), false},
		{New(), New(), true},
		{New(5), New(6), false},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("Equal(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSetOperations(t *testing.T) {
	a := New(1, 2, 3, 5)
	b := New(2, 3, 4, 6)

	if got := a.IntersectionSize(b); got != 2 {
		t.Errorf("IntersectionSize = %d, want 2", got)
	}
	if got := a.Intersection(b); !got.Equal(New(2, 3)) {
		t.Errorf("Intersection = %v", got)
	}
	if got := a.Union(b); !got.Equal(New(1, 2, 3, 4, 5, 6)) {
		t.Errorf("Union = %v", got)
	}
	if got := a.UnionSize(b); got != 6 {
		t.Errorf("UnionSize = %d, want 6", got)
	}
	if got := a.Difference(b); !got.Equal(New(1, 5)) {
		t.Errorf("Difference = %v", got)
	}
	if got := b.Difference(a); !got.Equal(New(4, 6)) {
		t.Errorf("Difference reversed = %v", got)
	}
}

func TestSetOperationsWithEmpty(t *testing.T) {
	a := New(1, 2)
	e := New()
	if a.IntersectionSize(e) != 0 {
		t.Error("intersection with empty should be 0")
	}
	if !a.Union(e).Equal(a) {
		t.Error("union with empty should be identity")
	}
	if !a.Difference(e).Equal(a) {
		t.Error("difference with empty should be identity")
	}
	if !e.Difference(a).IsEmpty() {
		t.Error("empty minus anything should be empty")
	}
}

func TestString(t *testing.T) {
	if got := New(3, 1).String(); got != "{1, 3}" {
		t.Errorf("String = %q", got)
	}
	if got := New().String(); got != "{}" {
		t.Errorf("String empty = %q", got)
	}
}

// randomVector draws a vector with bits from [0, universe).
func randomVector(rng *rand.Rand, universe, maxBits int) Vector {
	n := rng.Intn(maxBits + 1)
	bits := make([]uint32, 0, n)
	for i := 0; i < n; i++ {
		bits = append(bits, uint32(rng.Intn(universe)))
	}
	return New(bits...)
}

func TestPropertyUnionIntersectionSizes(t *testing.T) {
	// Inclusion-exclusion: |A∪B| + |A∩B| = |A| + |B|.
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		a := randomVector(r, 200, 60)
		b := randomVector(r, 200, 60)
		return a.Union(b).Len()+a.IntersectionSize(b) == a.Len()+b.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDifferencePartition(t *testing.T) {
	// A = (A\B) ∪ (A∩B), disjointly.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomVector(r, 150, 50)
		b := randomVector(r, 150, 50)
		diff := a.Difference(b)
		inter := a.Intersection(b)
		if diff.IntersectionSize(inter) != 0 {
			return false
		}
		return diff.Union(inter).Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCommutativity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomVector(r, 100, 40)
		b := randomVector(r, 100, 40)
		return a.Union(b).Equal(b.Union(a)) &&
			a.Intersection(b).Equal(b.Intersection(a)) &&
			a.IntersectionSize(b) == b.IntersectionSize(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyBitsSortedUnique(t *testing.T) {
	f := func(raw []uint32) bool {
		v := New(raw...)
		bits := v.Bits()
		for i := 1; i < len(bits); i++ {
			if bits[i] <= bits[i-1] {
				return false
			}
		}
		// Every input bit must be present.
		for _, b := range raw {
			if !v.Contains(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
