// Package bitvec implements sparse binary vectors over a universe
// U = {0, ..., d-1} together with the set-similarity measures of the
// paper's problem statement (§2; Braun-Blanquet is the one its bounds
// are stated for) used across the skewsim library.
//
// A Vector stores the indices of its set bits as a strictly increasing
// slice of uint32, which is the natural encoding for the sparse, skewed
// data the paper targets: the cost of every operation is proportional to
// the number of 1s, not to the dimension d.
package bitvec

import (
	"fmt"
	"slices"
	"strconv"
	"strings"
)

// Vector is a sparse binary vector: the sorted, duplicate-free indices of
// its set bits. The zero value is the empty vector.
type Vector struct {
	bits []uint32
}

// New builds a Vector from the given bit indices. The input may be in any
// order and may contain duplicates; it is not retained.
func New(indices ...uint32) Vector {
	if len(indices) == 0 {
		return Vector{}
	}
	bits := make([]uint32, len(indices))
	copy(bits, indices)
	slices.Sort(bits)
	// Deduplicate in place.
	w := 1
	for r := 1; r < len(bits); r++ {
		if bits[r] != bits[w-1] {
			bits[w] = bits[r]
			w++
		}
	}
	return Vector{bits: bits[:w]}
}

// FromSorted wraps an already strictly-increasing slice of indices without
// copying. It panics if the slice is not strictly increasing, since a
// malformed vector would silently corrupt every similarity computation
// downstream.
func FromSorted(bits []uint32) Vector {
	for i := 1; i < len(bits); i++ {
		if bits[i] <= bits[i-1] {
			panic(fmt.Sprintf("bitvec: FromSorted input not strictly increasing at %d: %d <= %d",
				i, bits[i], bits[i-1]))
		}
	}
	return Vector{bits: bits}
}

// FromDense builds a Vector from a dense boolean slice.
func FromDense(dense []bool) Vector {
	var bits []uint32
	for i, b := range dense {
		if b {
			bits = append(bits, uint32(i))
		}
	}
	return Vector{bits: bits}
}

// Dense expands the vector into a dense boolean slice of length d.
// Bits at or beyond d are ignored.
func (v Vector) Dense(d int) []bool {
	out := make([]bool, d)
	for _, b := range v.bits {
		if int(b) < d {
			out[b] = true
		}
	}
	return out
}

// Bits returns the underlying sorted indices. The slice must not be
// modified by the caller.
func (v Vector) Bits() []uint32 { return v.bits }

// Len returns the Hamming weight |v| (number of set bits).
func (v Vector) Len() int { return len(v.bits) }

// IsEmpty reports whether the vector has no set bits.
func (v Vector) IsEmpty() bool { return len(v.bits) == 0 }

// Contains reports whether bit i is set.
func (v Vector) Contains(i uint32) bool {
	_, found := slices.BinarySearch(v.bits, i)
	return found
}

// Get returns the k-th smallest set bit. It panics if k is out of range.
func (v Vector) Get(k int) uint32 { return v.bits[k] }

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	if len(v.bits) == 0 {
		return Vector{}
	}
	bits := make([]uint32, len(v.bits))
	copy(bits, v.bits)
	return Vector{bits: bits}
}

// Equal reports whether v and w have exactly the same set bits.
func (v Vector) Equal(w Vector) bool {
	if len(v.bits) != len(w.bits) {
		return false
	}
	for i, b := range v.bits {
		if w.bits[i] != b {
			return false
		}
	}
	return true
}

// MaxBit returns the largest set bit and true, or (0, false) for the empty
// vector. Useful for inferring a sufficient dimension.
func (v Vector) MaxBit() (uint32, bool) {
	if len(v.bits) == 0 {
		return 0, false
	}
	return v.bits[len(v.bits)-1], true
}

// gallopRatio is the size skew at which IntersectionSize switches from
// the linear merge to the galloping merge. This package's
// BenchmarkIntersectionSizeSkewed puts the crossover between 4× (the two
// tie, ~385 ns for 64 vs 256 elements) and 8× (gallop wins, 450 vs
// 701 ns): below it the linear merge's branch-predictable loop wins,
// above it the O(|small|·log|large|) exponential search does.
const gallopRatio = 8

// IntersectionSize returns |v ∩ w|. Near-equal sizes — the common case
// under D, where both lists concentrate around C log n — use a linear
// merge; when one vector is ≥ gallopRatio× longer than the other (the
// skewed workloads this library targets: a rare-item query against a
// frequent-item data vector, restricted vectors in splitsearch), each
// element of the short list gallops through the long one instead.
func (v Vector) IntersectionSize(w Vector) int {
	a, b := v.bits, w.bits
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return 0
	}
	if len(b) >= len(a)*gallopRatio {
		return gallopIntersectionSize(a, b)
	}
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// gallopIntersectionSize counts |a ∩ b| for len(a) ≪ len(b): for each
// element of a it exponentially expands a window in b past the previous
// match position, then binary-searches inside it — O(|a|·log(|b|/|a|))
// instead of O(|a|+|b|).
func gallopIntersectionSize(a, b []uint32) int {
	n, j := 0, 0
	for _, x := range a {
		if j >= len(b) {
			break
		}
		if b[j] < x {
			// Gallop: find a window (lo, hi] with b[hi] >= x.
			step := 1
			for j+step < len(b) && b[j+step] < x {
				step <<= 1
			}
			lo, hi := j+(step>>1), j+step
			if hi > len(b) {
				hi = len(b)
			}
			// Binary search for the first element >= x in b[lo:hi].
			for lo < hi {
				mid := int(uint(lo+hi) >> 1)
				if b[mid] < x {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			j = lo
			if j >= len(b) {
				break
			}
		}
		if b[j] == x {
			n++
			j++
		}
	}
	return n
}

// Intersection returns v ∩ w as a new Vector.
func (v Vector) Intersection(w Vector) Vector {
	a, b := v.bits, w.bits
	out := make([]uint32, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return Vector{bits: out}
}

// Union returns v ∪ w as a new Vector.
func (v Vector) Union(w Vector) Vector {
	a, b := v.bits, w.bits
	out := make([]uint32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return Vector{bits: out}
}

// Difference returns v \ w as a new Vector.
func (v Vector) Difference(w Vector) Vector {
	a, b := v.bits, w.bits
	out := make([]uint32, 0, len(a))
	i, j := 0, 0
	for i < len(a) {
		switch {
		case j >= len(b) || a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			j++
		default:
			i++
			j++
		}
	}
	return Vector{bits: out}
}

// UnionSize returns |v ∪ w| without materializing the union.
func (v Vector) UnionSize(w Vector) int {
	return len(v.bits) + len(w.bits) - v.IntersectionSize(w)
}

// String renders the vector as "{b1, b2, ...}".
func (v Vector) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, b := range v.bits {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(strconv.FormatUint(uint64(b), 10))
	}
	sb.WriteByte('}')
	return sb.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
