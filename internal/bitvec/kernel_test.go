package bitvec

import (
	"encoding/binary"
	"math/bits"
	"testing"

	"skewsim/internal/hashing"
)

// refAndCount is the trivially-correct reference both kernels are
// tested against: a plain scalar loop, deliberately not shared with
// either implementation.
func refAndCount(a, b []uint64) int {
	n := 0
	for i := range a {
		n += bits.OnesCount64(a[i] & b[i])
	}
	return n
}

// TestKernelDifferential sweeps every span length through the tail and
// main-loop boundaries of the assembly kernel (0..3·loop words) at all
// four start alignments within a 256-bit block, asserting dispatch,
// the portable kernel, and (when present) the assembly agree with the
// scalar reference.
func TestKernelDifferential(t *testing.T) {
	t.Logf("active kernel: %s", KernelName())
	rng := hashing.NewSplitMix64(42)
	backing := make([]uint64, 2*(3*8+4+1))
	for i := range backing {
		backing[i] = rng.Next()
	}
	half := len(backing) / 2
	for align := 0; align < 4; align++ {
		a := backing[align:half]
		b := backing[half+align:]
		for n := 0; n <= len(a) && n <= len(b); n++ {
			want := refAndCount(a[:n], b[:n])
			if got := popcntAndGeneric(a[:n], b[:n]); got != want {
				t.Fatalf("align %d n %d: generic = %d, want %d", align, n, got, want)
			}
			if got := andCountWords(a[:n], b[:n]); got != want {
				t.Fatalf("align %d n %d: dispatch = %d, want %d", align, n, got, want)
			}
			if kernelAVX2 && n > 0 {
				if got := popcntAndAVX2(&a[0], &b[0], n); got != want {
					t.Fatalf("align %d n %d: avx2 = %d, want %d", align, n, got, want)
				}
			}
		}
	}
}

// TestKernelGatherDifferential does the same for the sparse gather
// kernel across lengths covering its unroll boundary.
func TestKernelGatherDifferential(t *testing.T) {
	rng := hashing.NewSplitMix64(7)
	q := make([]uint64, 64)
	for i := range q {
		q[i] = rng.Next()
	}
	for n := 0; n <= 19; n++ {
		w := make([]uint64, n)
		idxs := make([]uint32, n)
		for k := range w {
			w[k] = rng.Next()
			idxs[k] = uint32(rng.Next()) % uint32(len(q))
		}
		want := 0
		for k := range w {
			want += bits.OnesCount64(w[k] & q[idxs[k]])
		}
		if got := andCountGather(w, idxs, q); got != want {
			t.Fatalf("n %d: gather = %d, want %d", n, got, want)
		}
	}
}

// kernelWords decodes fuzz bytes into a word array (8 bytes per word,
// the remainder zero-padded into a final word).
func kernelWords(data []byte) []uint64 {
	words := make([]uint64, 0, len(data)/8+1)
	for len(data) >= 8 {
		words = append(words, binary.LittleEndian.Uint64(data))
		data = data[8:]
	}
	if len(data) > 0 {
		var last [8]byte
		copy(last[:], data)
		words = append(words, binary.LittleEndian.Uint64(last[:]))
	}
	return words
}

// FuzzIntersectKernel throws arbitrary word arrays at the kernel layer
// and the PackedSet paths built on it, asserting the assembly and
// portable kernels return identical counts across word alignments,
// dense/sparse span mixes (zero words in the data side shift Append's
// adaptive choice), and early-exit thresholds. Under -tags purego only
// the portable path runs, proving the same corpus green there.
func FuzzIntersectKernel(f *testing.F) {
	f.Add([]byte{}, 0)                            // empty everything
	f.Add([]byte{1, 255, 255, 255, 255, 255, 255, 255, 255}, 1) // one full word
	f.Add(func() []byte { // 20 dense words, alignment 3
		b := make([]byte, 1+20*8)
		b[0] = 3
		for i := range b[1:] {
			b[1+i] = byte(0xAA >> (i % 3))
		}
		return b
	}(), 64)
	f.Add(func() []byte { // sparse layout: occupied word every 8th, exit bound reachable
		b := make([]byte, 1+48*8)
		for w := 0; w < 48; w += 8 {
			b[1+w*8] = 0x0F
		}
		return b
	}(), 3)
	f.Fuzz(func(t *testing.T, data []byte, need int) {
		if len(data) == 0 {
			return
		}
		align := int(data[0] & 3)
		words := kernelWords(data[1:])
		half := len(words) / 2
		if align > half {
			align = half
		}
		a, b := words[align:half], words[half:]
		n := min(len(a), len(b))
		a, b = a[:n], b[:n]

		want := refAndCount(a, b)
		if got := popcntAndGeneric(a, b); got != want {
			t.Fatalf("generic = %d, want %d", got, want)
		}
		if got := andCountWords(a, b); got != want {
			t.Fatalf("dispatch = %d, want %d", got, want)
		}
		if kernelAVX2 && n > 0 {
			if got := popcntAndAVX2(&a[0], &b[0], n); got != want {
				t.Fatalf("avx2 = %d, want %d", got, want)
			}
		}

		// PackedSet layer: vector from a's bits (its zero words steer
		// Append between dense and sparse forms), b as the query bitmap.
		var vbits []uint32
		for i, w := range a {
			for w != 0 {
				vbits = append(vbits, uint32(i*64+bits.TrailingZeros64(w)))
				w &= w - 1
			}
		}
		ps := NewPackedSet([]Vector{New(vbits...)})
		if got := ps.IntersectWords(0, b); got != want {
			t.Fatalf("IntersectWords (dense=%v) = %d, want %d", ps.IsDense(0), got, want)
		}
		inter, ok := ps.IntersectWordsAtLeast(0, b, need)
		if ok != (want >= need) || (ok && inter != want) {
			t.Fatalf("IntersectWordsAtLeast(need=%d, dense=%v) = (%d, %v), intersection is %d",
				need, ps.IsDense(0), inter, ok, want)
		}
	})
}

// benchIntersectSet builds a one-vector PackedSet plus a query bitmap
// overlapping roughly half its bits. stride controls the packed form:
// adjacent bits pack dense, widely-spread bits pack sparse.
func benchIntersectSet(tb testing.TB, nbits int, stride uint32, wantDense bool) (*PackedSet, []uint64) {
	vbits := make([]uint32, nbits)
	qbits := make([]uint32, 0, nbits)
	for i := range vbits {
		vbits[i] = uint32(i) * stride
		if i%2 == 0 {
			qbits = append(qbits, uint32(i)*stride)
		}
	}
	ps := NewPackedSet([]Vector{New(vbits...)})
	if ps.IsDense(0) != wantDense {
		tb.Fatalf("stride %d packed dense=%v, want %v", stride, ps.IsDense(0), wantDense)
	}
	return ps, QueryWords(nil, New(qbits...))
}

var benchSinkInt int

// BenchmarkIntersectWords is the kernel-layer microbenchmark: one
// packed vector intersected with one query bitmap, in both packed
// forms, with and without an early-exit threshold that never fires
// (the caller's typical passing-candidate case).
func BenchmarkIntersectWords(b *testing.B) {
	for _, sh := range []struct {
		name      string
		nbits     int
		stride    uint32
		wantDense bool
	}{
		{"dense", 8192, 3, true},    // ~384-word contiguous span
		{"sparse", 2048, 777, false}, // one occupied word every ~12
	} {
		ps, qw := benchIntersectSet(b, sh.nbits, sh.stride, sh.wantDense)
		b.Run(sh.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				benchSinkInt = ps.IntersectWords(0, qw)
			}
		})
		b.Run(sh.name+"/at-least", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				benchSinkInt, _ = ps.IntersectWordsAtLeast(0, qw, sh.nbits/4)
			}
		})
	}
}
