//go:build amd64 && !purego

#include "textflag.h"

// Per-byte popcounts of the 16 nibble values, repeated across both
// 128-bit lanes for VPSHUFB.
DATA popcntLUT<>+0(SB)/8, $0x0302020102010100
DATA popcntLUT<>+8(SB)/8, $0x0403030203020201
DATA popcntLUT<>+16(SB)/8, $0x0302020102010100
DATA popcntLUT<>+24(SB)/8, $0x0403030203020201
GLOBL popcntLUT<>(SB), RODATA|NOPTR, $32

DATA nibbleMask<>+0(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibbleMask<>+8(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibbleMask<>+16(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibbleMask<>+24(SB)/8, $0x0f0f0f0f0f0f0f0f
GLOBL nibbleMask<>(SB), RODATA|NOPTR, $32

// func popcntAndAVX2(a, b *uint64, n int) int
//
// Σ popcount(a[i] & b[i]) for i in [0, n). Main loop ANDs two 256-bit
// blocks (8 words) per iteration and counts set bits with the PSHUFB
// nibble-LUT reduction: split each byte into nibbles, look up their
// popcounts, sum bytes per 64-bit lane with VPSADBW, accumulate qword
// counts. Per-iteration byte counts max out at 16 < 255, so the byte
// adds cannot overflow before the VPSADBW widening. Tail words use
// scalar POPCNTQ.
TEXT ·popcntAndAVX2(SB), NOSPLIT, $0-32
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), CX
	XORQ AX, AX
	CMPQ CX, $8
	JLT  tail

	VMOVDQU popcntLUT<>(SB), Y1
	VMOVDQU nibbleMask<>(SB), Y2
	VPXOR   Y3, Y3, Y3 // qword accumulator
	VPXOR   Y7, Y7, Y7 // zero, for VPSADBW

loop8:
	VMOVDQU (SI), Y4
	VPAND   (DI), Y4, Y4
	VMOVDQU 32(SI), Y8
	VPAND   32(DI), Y8, Y8

	// Nibble-LUT popcount of Y4 into byte counts Y5.
	VPAND   Y2, Y4, Y5
	VPSRLW  $4, Y4, Y6
	VPAND   Y2, Y6, Y6
	VPSHUFB Y5, Y1, Y5
	VPSHUFB Y6, Y1, Y6
	VPADDB  Y6, Y5, Y5

	// Same for Y8 into Y9.
	VPAND   Y2, Y8, Y9
	VPSRLW  $4, Y8, Y10
	VPAND   Y2, Y10, Y10
	VPSHUFB Y9, Y1, Y9
	VPSHUFB Y10, Y1, Y10
	VPADDB  Y10, Y9, Y9

	VPADDB  Y9, Y5, Y5
	VPSADBW Y7, Y5, Y5
	VPADDQ  Y5, Y3, Y3

	ADDQ $64, SI
	ADDQ $64, DI
	SUBQ $8, CX
	CMPQ CX, $8
	JGE  loop8

	// Horizontal sum of Y3's four qwords.
	VEXTRACTI128 $1, Y3, X5
	VPADDQ       X5, X3, X3
	VPSRLDQ      $8, X3, X5
	VPADDQ       X5, X3, X3
	MOVQ         X3, AX
	VZEROUPPER

tail:
	TESTQ CX, CX
	JZ    done

tailLoop:
	MOVQ    (SI), DX
	ANDQ    (DI), DX
	POPCNTQ DX, DX
	ADDQ    DX, AX
	ADDQ    $8, SI
	ADDQ    $8, DI
	DECQ    CX
	JNZ     tailLoop

done:
	MOVQ AX, ret+24(FP)
	RET

// func cpuid(leaf, subleaf uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL subleaf+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
