package bitvec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestBraunBlanquetKnownValues(t *testing.T) {
	a := New(1, 2, 3, 4)
	b := New(3, 4, 5, 6, 7, 8)
	// |a∩b| = 2, max = 6.
	if got := BraunBlanquet(a, b); !almostEqual(got, 2.0/6, 1e-12) {
		t.Errorf("BraunBlanquet = %v, want %v", got, 2.0/6)
	}
}

func TestJaccardKnownValues(t *testing.T) {
	a := New(1, 2, 3)
	b := New(2, 3, 4)
	if got := Jaccard(a, b); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("Jaccard = %v, want 0.5", got)
	}
}

func TestOverlapDiceCosine(t *testing.T) {
	a := New(1, 2)
	b := New(2, 3, 4, 5)
	if got := Overlap(a, b); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("Overlap = %v", got)
	}
	if got := Dice(a, b); !almostEqual(got, 2.0/6, 1e-12) {
		t.Errorf("Dice = %v", got)
	}
	if got := Cosine(a, b); !almostEqual(got, 1/math.Sqrt(8), 1e-12) {
		t.Errorf("Cosine = %v", got)
	}
}

func TestSimilarityIdentical(t *testing.T) {
	v := New(1, 5, 9)
	for _, m := range []Measure{BraunBlanquetMeasure, JaccardMeasure, DiceMeasure, OverlapMeasure, CosineMeasure} {
		if got := m.Similarity(v, v); !almostEqual(got, 1, 1e-12) {
			t.Errorf("%v self-similarity = %v, want 1", m, got)
		}
	}
}

func TestSimilarityDisjointAndEmpty(t *testing.T) {
	a := New(1, 2)
	b := New(3, 4)
	e := New()
	for _, m := range []Measure{BraunBlanquetMeasure, JaccardMeasure, DiceMeasure, OverlapMeasure, CosineMeasure} {
		if got := m.Similarity(a, b); got != 0 {
			t.Errorf("%v disjoint = %v, want 0", m, got)
		}
		if got := m.Similarity(a, e); got != 0 {
			t.Errorf("%v vs empty = %v, want 0", m, got)
		}
		if got := m.Similarity(e, e); got != 0 {
			t.Errorf("%v empty-empty = %v, want 0", m, got)
		}
	}
}

func TestMeasureStringRoundTrip(t *testing.T) {
	for _, m := range []Measure{BraunBlanquetMeasure, JaccardMeasure, DiceMeasure, OverlapMeasure, CosineMeasure} {
		back, err := ParseMeasure(m.String())
		if err != nil {
			t.Fatalf("ParseMeasure(%q): %v", m.String(), err)
		}
		if back != m {
			t.Errorf("round trip %v -> %v", m, back)
		}
	}
	if _, err := ParseMeasure("nope"); err == nil {
		t.Error("expected error for unknown measure")
	}
	if m, err := ParseMeasure("bb"); err != nil || m != BraunBlanquetMeasure {
		t.Error("alias bb should parse to Braun-Blanquet")
	}
}

func TestMeasureOrderingRelations(t *testing.T) {
	// For any pair: overlap >= dice, jaccard <= dice, BB <= overlap,
	// jaccard <= BB (since union >= max).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomVector(r, 100, 40)
		b := randomVector(r, 100, 40)
		j := Jaccard(a, b)
		bb := BraunBlanquet(a, b)
		ov := Overlap(a, b)
		di := Dice(a, b)
		const eps = 1e-12
		return j <= bb+eps && bb <= ov+eps && j <= di+eps && di <= ov+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMeasureRange(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomVector(r, 80, 30)
		b := randomVector(r, 80, 30)
		for _, m := range []Measure{BraunBlanquetMeasure, JaccardMeasure, DiceMeasure, OverlapMeasure, CosineMeasure} {
			s := m.Similarity(a, b)
			if s < 0 || s > 1+1e-12 || math.IsNaN(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	v := New(0, 2, 4)
	if got := Pearson(v, v, 8); !almostEqual(got, 1, 1e-12) {
		t.Errorf("Pearson self = %v, want 1", got)
	}
}

func TestPearsonPerfectAntiCorrelation(t *testing.T) {
	v := New(0, 1, 2, 3)
	w := New(4, 5, 6, 7)
	if got := Pearson(v, w, 8); !almostEqual(got, -1, 1e-12) {
		t.Errorf("Pearson anti = %v, want -1", got)
	}
}

func TestPearsonUndefinedCases(t *testing.T) {
	if got := Pearson(New(), New(1), 4); got != 0 {
		t.Errorf("Pearson with empty = %v, want 0", got)
	}
	all := New(0, 1, 2, 3)
	if got := Pearson(all, New(1, 2), 4); got != 0 {
		t.Errorf("Pearson with constant-ones = %v, want 0", got)
	}
	if got := Pearson(New(1), New(2), 0); got != 0 {
		t.Errorf("Pearson with d=0 = %v, want 0", got)
	}
}

func TestPearsonSymmetricAndBounded(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		const d = 64
		a := randomVector(r, d, 30)
		b := randomVector(r, d, 30)
		p1 := Pearson(a, b, d)
		p2 := Pearson(b, a, d)
		if !almostEqual(p1, p2, 1e-12) {
			return false
		}
		return p1 >= -1-1e-9 && p1 <= 1+1e-9 && !math.IsNaN(p1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPearsonMatchesExpectationOnCorrelatedDraws(t *testing.T) {
	// Draw x with p = 0.3 per bit, q alpha-correlated; empirical Pearson
	// over a large dimension should approach alpha.
	const (
		d     = 200000
		p     = 0.3
		alpha = 0.6
	)
	rng := rand.New(rand.NewSource(42))
	var xb, qb []uint32
	for i := 0; i < d; i++ {
		xi := rng.Float64() < p
		var qi bool
		if rng.Float64() < alpha {
			qi = xi
		} else {
			qi = rng.Float64() < p
		}
		if xi {
			xb = append(xb, uint32(i))
		}
		if qi {
			qb = append(qb, uint32(i))
		}
	}
	got := Pearson(FromSorted(xb), FromSorted(qb), d)
	if math.Abs(got-alpha) > 0.02 {
		t.Errorf("empirical Pearson = %v, want ~%v", got, alpha)
	}
}
