package bitvec

import (
	"fmt"
	"math"
)

// Measure identifies a set-similarity measure. The paper's analysis uses
// Braun-Blanquet similarity (as in Christiani–Pagh); the other measures are
// provided because §1 notes the results extend to them and the engine is
// parameterized over the verification measure.
type Measure int

const (
	// BraunBlanquetMeasure is |x∩q| / max(|x|, |q|).
	BraunBlanquetMeasure Measure = iota
	// JaccardMeasure is |x∩q| / |x∪q|.
	JaccardMeasure
	// DiceMeasure is 2|x∩q| / (|x|+|q|).
	DiceMeasure
	// OverlapMeasure is |x∩q| / min(|x|, |q|).
	OverlapMeasure
	// CosineMeasure is |x∩q| / sqrt(|x|·|q|).
	CosineMeasure
)

// String returns the canonical lowercase name of the measure.
func (m Measure) String() string {
	switch m {
	case BraunBlanquetMeasure:
		return "braun-blanquet"
	case JaccardMeasure:
		return "jaccard"
	case DiceMeasure:
		return "dice"
	case OverlapMeasure:
		return "overlap"
	case CosineMeasure:
		return "cosine"
	default:
		return fmt.Sprintf("measure(%d)", int(m))
	}
}

// ParseMeasure converts a name (as produced by String) back to a Measure.
func ParseMeasure(name string) (Measure, error) {
	switch name {
	case "braun-blanquet", "bb":
		return BraunBlanquetMeasure, nil
	case "jaccard":
		return JaccardMeasure, nil
	case "dice":
		return DiceMeasure, nil
	case "overlap":
		return OverlapMeasure, nil
	case "cosine":
		return CosineMeasure, nil
	}
	return 0, fmt.Errorf("bitvec: unknown similarity measure %q", name)
}

// Similarity computes the chosen measure between v and w. All measures
// return values in [0,1], with 0 for disjoint vectors; the similarity of
// two empty vectors is defined as 0 (no shared evidence).
func (m Measure) Similarity(v, w Vector) float64 {
	inter := v.IntersectionSize(w)
	if inter == 0 {
		return 0
	}
	switch m {
	case BraunBlanquetMeasure:
		return float64(inter) / float64(max(v.Len(), w.Len()))
	case JaccardMeasure:
		return float64(inter) / float64(v.Len()+w.Len()-inter)
	case DiceMeasure:
		return 2 * float64(inter) / float64(v.Len()+w.Len())
	case OverlapMeasure:
		return float64(inter) / float64(min(v.Len(), w.Len()))
	case CosineMeasure:
		return float64(inter) / math.Sqrt(float64(v.Len())*float64(w.Len()))
	default:
		panic("bitvec: invalid measure " + m.String())
	}
}

// BraunBlanquet returns B(v, w) = |v∩w| / max(|v|, |w|), the measure the
// paper's data structure verifies candidates against.
func BraunBlanquet(v, w Vector) float64 {
	return BraunBlanquetMeasure.Similarity(v, w)
}

// Jaccard returns |v∩w| / |v∪w|.
func Jaccard(v, w Vector) float64 { return JaccardMeasure.Similarity(v, w) }

// Overlap returns |v∩w| / min(|v|, |w|).
func Overlap(v, w Vector) float64 { return OverlapMeasure.Similarity(v, w) }

// Cosine returns |v∩w| / sqrt(|v|·|w|).
func Cosine(v, w Vector) float64 { return CosineMeasure.Similarity(v, w) }

// Dice returns 2|v∩w| / (|v|+|w|).
func Dice(v, w Vector) float64 { return DiceMeasure.Similarity(v, w) }

// Pearson computes the empirical Pearson correlation between two binary
// vectors viewed as 0/1 sequences of length d. This is the measure the
// paper's probabilistic model is stated in (an α-correlated query has
// per-coordinate correlation α with its planted partner).
//
// It returns 0 when either vector is constant over [0,d) (all zeros or all
// ones), where correlation is undefined.
func Pearson(v, w Vector, d int) float64 {
	if d <= 0 {
		return 0
	}
	nv, nw := 0, 0
	for _, b := range v.bits {
		if int(b) < d {
			nv++
		}
	}
	for _, b := range w.bits {
		if int(b) < d {
			nw++
		}
	}
	if nv == 0 || nw == 0 || nv == d || nw == d {
		return 0
	}
	inter := 0
	i, j := 0, 0
	for i < len(v.bits) && j < len(w.bits) {
		a, b := v.bits[i], w.bits[j]
		if int(a) >= d || int(b) >= d {
			break
		}
		switch {
		case a < b:
			i++
		case a > b:
			j++
		default:
			inter++
			i++
			j++
		}
	}
	fd := float64(d)
	mv := float64(nv) / fd
	mw := float64(nw) / fd
	cov := float64(inter)/fd - mv*mw
	return cov / math.Sqrt(mv*(1-mv)*mw*(1-mw))
}
