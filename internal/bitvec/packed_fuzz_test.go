package bitvec

import (
	"encoding/binary"
	"testing"
)

// bitsFromBytes decodes fuzz bytes into a strictly increasing bit list:
// each byte pair is a gap (+1) from the previous bit, so any input maps
// to a valid vector and small mutations explore density mixes (gap 1 =
// dense runs, large gaps = sparse spread).
func bitsFromBytes(data []byte) []uint32 {
	var bits []uint32
	cur := uint32(0)
	for len(data) >= 2 {
		gap := uint32(binary.LittleEndian.Uint16(data)) + 1
		data = data[2:]
		// Cap the universe so adversarial inputs cannot allocate huge
		// dense query bitmaps in the harness.
		if cur > 1<<26 {
			break
		}
		cur += gap
		bits = append(bits, cur)
	}
	return bits
}

// FuzzPackedRoundTrip feeds arbitrary gap-encoded bit lists through the
// packed representation and checks (a) Append/AppendBits is lossless and
// (b) popcount intersection agrees with the sorted-slice merge. The
// split byte decides where the input is cut into the vector/query pair,
// so the corpus explores dense×dense, dense×sparse, and sparse×sparse
// block layouts.
func FuzzPackedRoundTrip(f *testing.F) {
	// Seed corpus: boundary layouts the unit tests pin down explicitly.
	f.Add([]byte{0})                                              // both empty
	f.Add([]byte{1, 0, 0, 62, 0})                                 // word-boundary bits
	f.Add([]byte{4, 0, 0, 1, 0, 1, 0, 255, 255, 16, 39})          // dense run then jump
	f.Add([]byte{8, 255, 255, 255, 255, 255, 255, 1, 0, 1, 0})    // sparse vector, dense query
	f.Add([]byte{2, 63, 0, 64, 0, 65, 0})                         // straddling words
	f.Add([]byte{16, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 1, 0, 1, 0})   // duplicate-gap runs
	f.Add([]byte{6, 16, 39, 16, 39, 16, 39, 0, 0, 1, 0, 255, 16}) // 10k strides
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 1 {
			return
		}
		split := int(data[0])
		data = data[1:]
		if split > len(data) {
			split = len(data)
		}
		v := New(bitsFromBytes(data[:split])...)
		q := New(bitsFromBytes(data[split:])...)
		ps := NewPackedSet([]Vector{v, q})
		for id, want := range []Vector{v, q} {
			got := ps.AppendBits(nil, int32(id))
			if len(got) != want.Len() {
				t.Fatalf("vector %d: round trip %d bits, want %d", id, len(got), want.Len())
			}
			for k, b := range want.Bits() {
				if got[k] != b {
					t.Fatalf("vector %d bit %d: got %d want %d", id, k, got[k], b)
				}
			}
		}
		qw := QueryWords(nil, q)
		if got, want := ps.IntersectWords(0, qw), q.IntersectionSize(v); got != want {
			t.Fatalf("IntersectWords(v, q) = %d, want %d", got, want)
		}
		if got, want := ps.IntersectWords(1, qw), q.IntersectionSize(q); got != want {
			t.Fatalf("IntersectWords(q, q) = %d, want %d (self)", got, want)
		}
		for need := 0; need <= q.Len()+1; need += 1 + q.Len()/4 {
			inter, ok := ps.IntersectWordsAtLeast(0, qw, need)
			want := q.IntersectionSize(v)
			if ok != (want >= need) || (ok && inter != want) {
				t.Fatalf("IntersectWordsAtLeast(need=%d) = (%d, %v), intersection is %d", need, inter, ok, want)
			}
		}
	})
}
