//go:build purego || !amd64

package bitvec

// Without the amd64 assembly (non-amd64 targets, or -tags purego) the
// portable kernel is the only implementation; kernelAVX2 is a constant
// false so the dispatch branch and this stub compile away entirely.
const kernelAVX2 = false

func popcntAndAVX2(a, b *uint64, n int) int {
	panic("bitvec: SIMD kernel called on a purego build")
}
