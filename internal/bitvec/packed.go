package bitvec

import "math/bits"

// Packed word layout. A PackedSet stores a second representation of a
// collection of Vectors, optimized for the one operation candidate
// verification is made of: intersecting many data vectors against one
// query. Each vector is packed into 64-bit word blocks and intersected
// with a dense word bitmap of the query via popcount
// (math/bits.OnesCount64), turning the per-candidate galloping merge
// over sorted uint32 slices into a handful of AND+POPCNT per vector.
//
// The layout is adaptive per vector, chosen by density over the
// vector's own word span (not the universe):
//
//   - dense: the words covering [minWord, maxWord] stored contiguously
//     (zero words included). One sequential AND+POPCNT loop, no index
//     lookups. Chosen when the span is at most denseSlack× the number
//     of non-zero words, which covers the paper's common case of small
//     universes with concentrated mass.
//   - sparse: only the non-zero words, with a parallel sorted array of
//     their word indexes. Chosen for rare-bit vectors spread over a
//     large universe (the TwoBlock tail), where a dense span would be
//     mostly zeros.
//
// All vectors of a set share three growable arenas (meta, words, word
// indexes) — no per-vector heap objects, matching the CSR discipline of
// the frozen lsf index. Append grows the arenas with append(), which
// relocates them on capacity growth, so appends must be mutually
// exclusive with reads: callers that grow a live set serialize Append
// against IntersectWords through a lock (segment.SegmentedIndex appends
// under its write lock; queries verify under the read lock). A set that
// is no longer appended to (core's build-time packing) is safe for
// unlimited concurrent reads.
type PackedSet struct {
	meta  []packedMeta
	words []uint64 // arena: dense spans and sparse non-zero words
	idxs  []uint32 // arena: word indexes of sparse entries only
}

// packedMeta addresses one vector's packed form in the arenas.
type packedMeta struct {
	woff uint32 // offset into words
	ioff uint32 // offset into idxs (sparse only)
	nw   uint32 // word count
	base uint32 // dense: first word index; packedSparse otherwise
}

// packedSparse marks a sparse entry in packedMeta.base. Word indexes are
// bit>>6 with bits < 2^32, so no real base reaches it.
const packedSparse = ^uint32(0)

// denseSlack is the maximum ratio of span (dense words stored) to
// non-zero words at which the dense form is chosen. Dense costs
// 8·span bytes against sparse's 12·nw, and its kernel is a sequential
// loop with no per-word index load, so it is worth up to a few empty
// words per full one.
const denseSlack = 4

// NewPackedSet packs every vector of data. The typical callers are
// index builders (core build/load, segment freeze), which pack the
// dataset once so queries never re-pack a data vector.
func NewPackedSet(data []Vector) *PackedSet {
	ps := &PackedSet{meta: make([]packedMeta, 0, len(data))}
	for _, v := range data {
		ps.Append(v)
	}
	return ps
}

// Len returns the number of packed vectors.
func (ps *PackedSet) Len() int { return len(ps.meta) }

// Append packs v as the next vector of the set. Amortized O(|v|).
func (ps *PackedSet) Append(v Vector) {
	bitsList := v.bits
	if len(bitsList) == 0 {
		ps.meta = append(ps.meta, packedMeta{})
		return
	}
	minW := bitsList[0] >> 6
	maxW := bitsList[len(bitsList)-1] >> 6
	span := maxW - minW + 1
	nw := uint32(1)
	for i := 1; i < len(bitsList); i++ {
		if bitsList[i]>>6 != bitsList[i-1]>>6 {
			nw++
		}
	}
	if span <= denseSlack*nw {
		m := packedMeta{woff: uint32(len(ps.words)), nw: span, base: minW}
		start := len(ps.words)
		for i := uint32(0); i < span; i++ {
			ps.words = append(ps.words, 0)
		}
		for _, b := range bitsList {
			ps.words[start+int(b>>6-minW)] |= 1 << (b & 63)
		}
		ps.meta = append(ps.meta, m)
		return
	}
	m := packedMeta{woff: uint32(len(ps.words)), ioff: uint32(len(ps.idxs)), nw: nw, base: packedSparse}
	cur := bitsList[0] >> 6
	var w uint64
	for _, b := range bitsList {
		if b>>6 != cur {
			ps.words = append(ps.words, w)
			ps.idxs = append(ps.idxs, cur)
			cur, w = b>>6, 0
		}
		w |= 1 << (b & 63)
	}
	ps.words = append(ps.words, w)
	ps.idxs = append(ps.idxs, cur)
	ps.meta = append(ps.meta, m)
}

// IntersectWords returns |v_id ∩ q| where qw is the query's dense word
// bitmap: qw[i] holds the query bits [64i, 64i+64). Words of v_id beyond
// len(qw) contain no query bits and are skipped. The count is computed
// by the kernel layer (kernel.go): AVX2 assembly when the CPU has it,
// the portable popcount loop otherwise — identical results either way.
func (ps *PackedSet) IntersectWords(id int32, qw []uint64) int {
	m := ps.meta[id]
	if m.nw == 0 {
		return 0
	}
	if m.base != packedSparse {
		lo := int(m.base)
		hi := lo + int(m.nw)
		if hi > len(qw) {
			hi = len(qw)
		}
		if hi <= lo {
			return 0
		}
		return andCountWords(ps.words[m.woff:m.woff+uint32(hi-lo)], qw[lo:hi])
	}
	idxs := ps.idxs[m.ioff : m.ioff+m.nw]
	w := ps.words[m.woff : m.woff+m.nw]
	kmax := sparseLimit(idxs, len(qw))
	return andCountGather(w[:kmax], idxs, qw)
}

// sparseLimit returns the number of leading entries of idxs (ascending)
// that are < nq — the sparse words that can overlap the query bitmap.
func sparseLimit(idxs []uint32, nq int) int {
	kmax := len(idxs)
	for kmax > 0 && int(idxs[kmax-1]) >= nq {
		kmax--
	}
	return kmax
}

// exitBlock is the word granularity of IntersectWordsAtLeast's early
// exit: the bound is checked between kernel calls, every exitBlock
// words, so the kernels themselves stay straight-line (SIMD has no
// cheap "running count so far" to test mid-block). Coarser than the
// old per-8-words stride, but observationally identical: a pruned
// candidate still returns (0, false), and a candidate that reaches
// need can never trigger the bound (the remaining-words term is an
// upper bound on what is left).
const exitBlock = 32

// IntersectWordsAtLeast is IntersectWords with an early exit: once the
// running count plus the maximum contribution of the remaining words
// (64 per word) cannot reach need, it returns (0, false) without
// finishing. On (n, true), n is the exact intersection size and
// n >= need. need <= 0 never exits early.
func (ps *PackedSet) IntersectWordsAtLeast(id int32, qw []uint64, need int) (int, bool) {
	m := ps.meta[id]
	if m.nw == 0 {
		return 0, need <= 0
	}
	inter := 0
	if m.base != packedSparse {
		lo := int(m.base)
		hi := lo + int(m.nw)
		if hi > len(qw) {
			hi = len(qw)
		}
		w := ps.words[m.woff : m.woff+m.nw]
		for i := lo; i < hi; i += exitBlock {
			if inter+64*(hi-i) < need {
				return 0, false
			}
			end := i + exitBlock
			if end > hi {
				end = hi
			}
			inter += andCountWords(w[i-lo:end-lo], qw[i:end])
		}
		return inter, inter >= need
	}
	idxs := ps.idxs[m.ioff : m.ioff+m.nw]
	w := ps.words[m.woff : m.woff+m.nw]
	kmax := sparseLimit(idxs, len(qw))
	for k := 0; k < kmax; k += exitBlock {
		if inter+64*(kmax-k) < need {
			return 0, false
		}
		end := k + exitBlock
		if end > kmax {
			end = kmax
		}
		inter += andCountGather(w[k:end], idxs[k:], qw)
	}
	return inter, inter >= need
}

// AppendBits reconstructs vector id's set bits in ascending order,
// appending to dst. It is the round-trip counterpart of Append, used by
// the differential and fuzz tests to prove the packed forms lossless.
func (ps *PackedSet) AppendBits(dst []uint32, id int32) []uint32 {
	m := ps.meta[id]
	for k := uint32(0); k < m.nw; k++ {
		w := ps.words[m.woff+k]
		var base uint32
		if m.base != packedSparse {
			base = (m.base + k) << 6
		} else {
			base = ps.idxs[m.ioff+k] << 6
		}
		for w != 0 {
			dst = append(dst, base+uint32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return dst
}

// IsDense reports whether vector id was packed in the dense form.
// Exposed for tests asserting the adaptive split.
func (ps *PackedSet) IsDense(id int32) bool {
	return ps.meta[id].base != packedSparse
}

// WordCount returns the number of words stored for vector id.
func (ps *PackedSet) WordCount(id int32) int { return int(ps.meta[id].nw) }

// QueryWords materializes q as a dense word bitmap into dst, growing it
// as needed, and returns the bitmap. dst's reused prefix must already be
// zero (Session scrubbing in internal/verify maintains this invariant by
// clearing exactly the words it set).
func QueryWords(dst []uint64, q Vector) []uint64 {
	maxB, ok := q.MaxBit()
	if !ok {
		return dst[:0]
	}
	n := int(maxB>>6) + 1
	if cap(dst) < n {
		dst = make([]uint64, n)
	} else {
		dst = dst[:n]
	}
	for _, b := range q.bits {
		dst[b>>6] |= 1 << (b & 63)
	}
	return dst
}
