package bitvec

import (
	"testing"

	"skewsim/internal/hashing"
)

// randomVector draws n distinct bits below dim.
func packRandVector(rng *hashing.SplitMix64, n, dim int) Vector {
	bits := make([]uint32, 0, n)
	for len(bits) < n {
		bits = append(bits, uint32(rng.NextBelow(uint64(dim))))
	}
	return New(bits...)
}

func TestPackedRoundTrip(t *testing.T) {
	rng := hashing.NewSplitMix64(1)
	vecs := []Vector{
		{},               // empty
		New(0),           // single bit at origin
		New(63), New(64), // word boundary
		New(0, 63, 64, 127),   // dense two words
		New(0, 1<<20),         // extreme sparse
		New(5, 70, 1000, 1e6), // mixed stride
	}
	// Random mixes across densities and universes.
	for _, dim := range []int{64, 600, 4096, 1 << 20} {
		for _, n := range []int{1, 8, 150, 1000} {
			vecs = append(vecs, packRandVector(rng, n, dim))
		}
	}
	ps := NewPackedSet(vecs)
	if ps.Len() != len(vecs) {
		t.Fatalf("Len = %d, want %d", ps.Len(), len(vecs))
	}
	for id, v := range vecs {
		got := ps.AppendBits(nil, int32(id))
		want := v.Bits()
		if len(got) != len(want) {
			t.Fatalf("vector %d: round trip %d bits, want %d", id, len(got), len(want))
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("vector %d bit %d: got %d want %d", id, k, got[k], want[k])
			}
		}
	}
}

func TestPackedAdaptiveSplit(t *testing.T) {
	// 100 bits packed into two words: dense.
	concentrated := make([]uint32, 100)
	for i := range concentrated {
		concentrated[i] = uint32(i)
	}
	// 100 bits strided 10_000 apart: one bit per word, far beyond the
	// dense slack.
	spread := make([]uint32, 100)
	for i := range spread {
		spread[i] = uint32(i * 10000)
	}
	ps := NewPackedSet([]Vector{New(concentrated...), New(spread...)})
	if !ps.IsDense(0) {
		t.Errorf("concentrated vector packed sparse")
	}
	if ps.IsDense(1) {
		t.Errorf("spread vector packed dense")
	}
	if w := ps.WordCount(0); w != 2 {
		t.Errorf("concentrated vector stored %d words, want 2", w)
	}
	if w := ps.WordCount(1); w != 100 {
		t.Errorf("spread vector stored %d words, want 100", w)
	}
}

func TestPackedIntersectWords(t *testing.T) {
	rng := hashing.NewSplitMix64(7)
	var vecs []Vector
	for _, dim := range []int{64, 300, 2048, 1 << 18} {
		for _, n := range []int{0, 1, 20, 200} {
			vecs = append(vecs, packRandVector(rng, n, dim))
		}
	}
	ps := NewPackedSet(vecs)
	queries := []Vector{
		{},
		New(0),
		packRandVector(rng, 50, 300),
		packRandVector(rng, 150, 2048),
		packRandVector(rng, 40, 1<<18),
		packRandVector(rng, 500, 1<<10),
	}
	for qi, q := range queries {
		// QueryWords requires a zeroed buffer prefix (its reusing caller,
		// verify.Session, scrubs its own bits); tests build fresh.
		qw := QueryWords(nil, q)
		for id, v := range vecs {
			want := q.IntersectionSize(v)
			if got := ps.IntersectWords(int32(id), qw); got != want {
				t.Fatalf("query %d vector %d: IntersectWords = %d, want %d", qi, id, got, want)
			}
			for _, need := range []int{0, 1, want, want + 1, want * 2} {
				got, ok := ps.IntersectWordsAtLeast(int32(id), qw, need)
				if ok != (want >= need) {
					t.Fatalf("query %d vector %d need %d: ok = %v, want %v (inter %d)",
						qi, id, need, ok, want >= need, want)
				}
				if ok && got != want {
					t.Fatalf("query %d vector %d need %d: inter = %d, want %d", qi, id, need, got, want)
				}
			}
		}
	}
}

func TestPackedAppendGrows(t *testing.T) {
	ps := &PackedSet{}
	rng := hashing.NewSplitMix64(11)
	var vecs []Vector
	for i := 0; i < 200; i++ {
		v := packRandVector(rng, 1+int(rng.NextBelow(60)), 1<<14)
		vecs = append(vecs, v)
		ps.Append(v)
	}
	q := packRandVector(rng, 80, 1<<14)
	qw := QueryWords(nil, q)
	for id, v := range vecs {
		if got, want := ps.IntersectWords(int32(id), qw), q.IntersectionSize(v); got != want {
			t.Fatalf("vector %d: IntersectWords = %d, want %d", id, got, want)
		}
	}
}
