package bitvec

import (
	"fmt"
	"math/rand"
	"testing"
)

// linearIntersectionSize is the plain merge, kept here as the reference
// the galloping branch is tested against.
func linearIntersectionSize(a, b []uint32) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

func randomSorted(rng *rand.Rand, n, universe int) []uint32 {
	seen := make(map[uint32]bool, n)
	for len(seen) < n {
		seen[uint32(rng.Intn(universe))] = true
	}
	out := make([]uint32, 0, n)
	for v := range seen {
		out = append(out, v)
	}
	// insertion sort is fine at test sizes; keep it dependency-free
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// TestIntersectionSizeGallopMatchesLinear drives both merge branches over
// randomized size-skewed pairs, including the extremes that pick the
// galloping path, and checks them against the reference merge.
func TestIntersectionSizeGallopMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sizes := [][2]int{
		{0, 100}, {1, 1}, {1, 1000}, {3, 500}, {10, 10}, {10, 500},
		{17, 17 * gallopRatio}, {17, 17*gallopRatio - 1}, {50, 5000}, {200, 200},
	}
	for trial := 0; trial < 50; trial++ {
		for _, sz := range sizes {
			universe := 4 * (sz[0] + sz[1] + 1)
			a := randomSorted(rng, sz[0], universe)
			b := randomSorted(rng, sz[1], universe)
			va, vb := FromSorted(a), FromSorted(b)
			want := linearIntersectionSize(a, b)
			if got := va.IntersectionSize(vb); got != want {
				t.Fatalf("|a|=%d |b|=%d: IntersectionSize = %d, want %d", sz[0], sz[1], got, want)
			}
			if got := vb.IntersectionSize(va); got != want {
				t.Fatalf("|b|=%d |a|=%d (swapped): IntersectionSize = %d, want %d", sz[1], sz[0], got, want)
			}
		}
	}
}

func TestGallopIntersectionSharedElements(t *testing.T) {
	// Fully nested: a ⊂ b.
	a := []uint32{5, 100, 1000, 5000}
	b := make([]uint32, 0, 6000)
	for i := uint32(0); i < 6000; i++ {
		b = append(b, i)
	}
	if got := gallopIntersectionSize(a, b); got != len(a) {
		t.Fatalf("nested gallop = %d, want %d", got, len(a))
	}
	// Disjoint, a entirely above b's range.
	if got := gallopIntersectionSize([]uint32{9000, 9001}, b); got != 0 {
		t.Fatalf("disjoint gallop = %d, want 0", got)
	}
}

// BenchmarkIntersectionSizeSkewed locates the linear/galloping crossover:
// a short list against a ratio× longer one. Run with -bench to re-derive
// gallopRatio if the element type or hardware assumptions change; the
// "forced-linear" and "forced-gallop" variants time both branches on the
// same inputs independent of the dispatch heuristic.
func BenchmarkIntersectionSizeSkewed(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	const short = 64
	for _, ratio := range []int{1, 4, 8, 16, 64, 256} {
		long := short * ratio
		universe := 8 * long
		a := randomSorted(rng, short, universe)
		bb := randomSorted(rng, long, universe)
		b.Run(fmt.Sprintf("ratio-%d/dispatch", ratio), func(b *testing.B) {
			va, vb := FromSorted(a), FromSorted(bb)
			for i := 0; i < b.N; i++ {
				va.IntersectionSize(vb)
			}
		})
		b.Run(fmt.Sprintf("ratio-%d/forced-linear", ratio), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				linearIntersectionSize(a, bb)
			}
		})
		b.Run(fmt.Sprintf("ratio-%d/forced-gallop", ratio), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				gallopIntersectionSize(a, bb)
			}
		})
	}
}
