// Package prefix implements prefix filtering (Bayardo, Ma, Srikant, WWW
// 2007), the exact, deterministic heuristic the paper repeatedly
// compares against (§1, §8): order the universe by ascending global
// frequency, index each
// vector under its prefix of rarest tokens, and verify every vector that
// shares a prefix token with the query.
//
// For Braun-Blanquet threshold b1, two vectors with B(x, q) ≥ b1 have
// overlap at least o = ⌈b1·max(|x|, |q|)⌉ ≥ ⌈b1·|x|⌉, so indexing the
// first |x| − ⌈b1·|x|⌉ + 1 tokens of x (in the global order) and probing
// the first |q| − ⌈b1·|q|⌉ + 1 tokens of q guarantees a shared token
// (the classic prefix-filtering principle). The method is exact — recall
// 1 — but its cost is governed by the frequency of prefix tokens, which
// is why it shines with ultra-rare tokens (p_min = n^-Ω(1)) and
// degenerates toward a full scan when all frequencies are Ω(1).
package prefix

import (
	"cmp"
	"errors"
	"fmt"
	"slices"

	"skewsim/internal/bitvec"
)

// Index is a built prefix-filtering index.
type Index struct {
	data []bitvec.Vector
	b1   float64
	// rank[e] is the position of element e in the ascending-frequency
	// order (rank 0 = rarest). Elements beyond the slice rank after all
	// ranked elements (treated as frequency 0 ties broken by id — they
	// are rarer than everything, so rank them first instead; see
	// buildRank).
	rank    []int32
	lists   map[uint32][]int32 // prefix token → vector ids
	measure bitvec.Measure
}

// Options tunes the index.
type Options struct {
	Measure bitvec.Measure
}

// Build constructs the index from the item-level frequencies freqs
// (higher = more common; any non-negative scale works, e.g. true p_i or
// empirical counts) and similarity threshold b1 ∈ (0, 1].
func Build(data []bitvec.Vector, freqs []float64, b1 float64, opt Options) (*Index, error) {
	if len(data) == 0 {
		return nil, errors.New("prefix: empty dataset")
	}
	if b1 <= 0 || b1 > 1 {
		return nil, fmt.Errorf("prefix: b1 = %v outside (0, 1]", b1)
	}
	for i, f := range freqs {
		if f < 0 {
			return nil, fmt.Errorf("prefix: freqs[%d] = %v negative", i, f)
		}
	}
	ix := &Index{
		data:    data,
		b1:      b1,
		rank:    buildRank(freqs),
		lists:   make(map[uint32][]int32),
		measure: opt.Measure,
	}
	for id, x := range data {
		for _, e := range ix.prefixTokens(x) {
			ix.lists[e] = append(ix.lists[e], int32(id))
		}
	}
	return ix, nil
}

// buildRank sorts element ids by ascending frequency (ties by id for
// determinism) and returns the inverse permutation.
func buildRank(freqs []float64) []int32 {
	order := make([]int32, len(freqs))
	for i := range order {
		order[i] = int32(i)
	}
	slices.SortStableFunc(order, func(a, b int32) int {
		if fa, fb := freqs[a], freqs[b]; fa != fb {
			return cmp.Compare(fa, fb)
		}
		return cmp.Compare(a, b)
	})
	rank := make([]int32, len(freqs))
	for pos, e := range order {
		rank[e] = int32(pos)
	}
	return rank
}

// rankOf orders elements; unknown elements (outside the frequency table)
// are treated as rarer than all known ones.
func (ix *Index) rankOf(e uint32) int64 {
	if int(e) < len(ix.rank) {
		return int64(ix.rank[e]) + 1<<32
	}
	// Unknown ⇒ frequency 0 ⇒ rarest; order among unknowns by id.
	return int64(e)
}

// PrefixLen returns the prefix length for a set of size m at threshold
// b1: m − ⌈b1·m⌉ + 1 (0 for the empty set).
func PrefixLen(m int, b1 float64) int {
	if m == 0 {
		return 0
	}
	o := int(b1*float64(m) + 0.999999) // ⌈b1·m⌉ without float drift at integers
	if o < 1 {
		o = 1
	}
	l := m - o + 1
	if l < 0 {
		l = 0
	}
	return l
}

// prefixTokens returns x's prefix in the global rarity order.
func (ix *Index) prefixTokens(x bitvec.Vector) []uint32 {
	l := PrefixLen(x.Len(), ix.b1)
	if l == 0 {
		return nil
	}
	sorted := make([]uint32, x.Len())
	copy(sorted, x.Bits())
	slices.SortFunc(sorted, func(a, b uint32) int {
		return cmp.Compare(ix.rankOf(a), ix.rankOf(b))
	})
	return sorted[:l]
}

// Data returns the indexed vectors.
func (ix *Index) Data() []bitvec.Vector { return ix.data }

// Result mirrors the other indexes' result type.
type Result struct {
	ID         int
	Similarity float64
	Found      bool
	Stats      Stats
}

// Stats counts query work.
type Stats struct {
	PrefixTokens int // tokens probed
	Candidates   int // candidate occurrences over token lists
	Distinct     int // distinct candidates verified
}

// Query returns the first vector with similarity at least the build
// threshold b1. Exact: if any qualifying vector exists it is found.
func (ix *Index) Query(q bitvec.Vector) Result {
	res := Result{ID: -1}
	tokens := ix.prefixTokens(q)
	res.Stats.PrefixTokens = len(tokens)
	seen := make(map[int32]struct{})
	for _, e := range tokens {
		for _, id := range ix.lists[e] {
			res.Stats.Candidates++
			if _, dup := seen[id]; dup {
				continue
			}
			seen[id] = struct{}{}
			res.Stats.Distinct++
			if s := ix.measure.Similarity(q, ix.data[id]); s >= ix.b1 {
				res.ID, res.Similarity, res.Found = int(id), s, true
				return res
			}
		}
	}
	return res
}

// QueryBest verifies every candidate and returns the most similar.
func (ix *Index) QueryBest(q bitvec.Vector) Result {
	res := Result{ID: -1, Similarity: -1}
	tokens := ix.prefixTokens(q)
	res.Stats.PrefixTokens = len(tokens)
	seen := make(map[int32]struct{})
	for _, e := range tokens {
		for _, id := range ix.lists[e] {
			res.Stats.Candidates++
			if _, dup := seen[id]; dup {
				continue
			}
			seen[id] = struct{}{}
			res.Stats.Distinct++
			if s := ix.measure.Similarity(q, ix.data[id]); s > res.Similarity {
				res.ID, res.Similarity, res.Found = int(id), s, true
			}
		}
	}
	if !res.Found {
		res.Similarity = 0
	}
	return res
}

// Candidates returns the distinct candidate ids for q.
func (ix *Index) Candidates(q bitvec.Vector) []int32 {
	seen := make(map[int32]struct{})
	var out []int32
	for _, e := range ix.prefixTokens(q) {
		for _, id := range ix.lists[e] {
			if _, dup := seen[id]; !dup {
				seen[id] = struct{}{}
				out = append(out, id)
			}
		}
	}
	return out
}
