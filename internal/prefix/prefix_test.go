package prefix

import (
	"testing"

	"skewsim/internal/bitvec"
	"skewsim/internal/datagen"
	"skewsim/internal/dist"
	"skewsim/internal/hashing"
)

func TestPrefixLen(t *testing.T) {
	cases := []struct {
		m    int
		b1   float64
		want int
	}{
		{0, 0.5, 0},
		{10, 0.5, 6},   // o = 5, l = 10-5+1
		{10, 1.0, 1},   // o = 10
		{10, 0.05, 10}, // o = 1, l = 10
		{4, 0.5, 3},    // o = 2
		{3, 0.34, 2},   // o = ceil(1.02) = 2
	}
	for _, c := range cases {
		if got := PrefixLen(c.m, c.b1); got != c.want {
			t.Errorf("PrefixLen(%d, %v) = %d, want %d", c.m, c.b1, got, c.want)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	data := []bitvec.Vector{bitvec.New(1)}
	if _, err := Build(nil, []float64{0.1}, 0.5, Options{}); err == nil {
		t.Error("empty data should fail")
	}
	for _, b1 := range []float64{0, -1, 1.5} {
		if _, err := Build(data, []float64{0.1}, b1, Options{}); err == nil {
			t.Errorf("b1=%v should fail", b1)
		}
	}
	if _, err := Build(data, []float64{-0.1}, 0.5, Options{}); err == nil {
		t.Error("negative frequency should fail")
	}
}

func TestBuildRankOrdersByFrequency(t *testing.T) {
	rank := buildRank([]float64{0.5, 0.1, 0.3, 0.1})
	// Ascending frequency: 1 (0.1), 3 (0.1, tie by id), 2 (0.3), 0 (0.5).
	want := []int32{3, 0, 2, 1}
	for e, r := range rank {
		if r != want[e] {
			t.Errorf("rank[%d] = %d, want %d (full: %v)", e, r, want[e], rank)
		}
	}
}

func TestExactness(t *testing.T) {
	// Prefix filtering is exact: every pair with B ≥ b1 must be found.
	// Compare against brute force over a skewed dataset.
	const n = 300
	b1 := 0.5
	p := dist.Zipf(400, 1, 0.4)
	d := dist.MustProduct(p)
	rng := hashing.NewSplitMix64(3)
	data := d.SampleN(rng, n)
	ix, err := Build(data, p, b1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range data {
		if q.IsEmpty() {
			continue
		}
		// Ground truth: all ids with B ≥ b1.
		truth := map[int]bool{}
		for id, x := range data {
			if bitvec.BraunBlanquet(q, x) >= b1 {
				truth[id] = true
			}
		}
		cand := map[int]bool{}
		for _, id := range ix.Candidates(q) {
			cand[int(id)] = true
		}
		for id := range truth {
			if !cand[id] {
				t.Fatalf("query %d: qualifying vector %d missing from candidates (B=%v)",
					qi, id, bitvec.BraunBlanquet(q, data[id]))
			}
		}
	}
}

func TestQueryFindsPlantedPair(t *testing.T) {
	const n = 300
	b1 := 0.55
	p := dist.Uniform(800, 0.1)
	d := dist.MustProduct(p)
	w, err := datagen.NewAdversarialWorkload(d, n, 40, b1, 7)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(w.Data, p, b1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for k, q := range w.Queries {
		res := ix.Query(q)
		if !res.Found {
			t.Errorf("query %d: exact method failed to find planted pair (B=%v)",
				k, bitvec.BraunBlanquet(q, w.Data[w.Targets[k]]))
			continue
		}
		if res.Similarity < b1-1e-9 {
			t.Errorf("returned similarity %v below threshold", res.Similarity)
		}
	}
}

func TestRareTokensShrinkCandidates(t *testing.T) {
	// The prefix index keys on the rarest tokens: on data with ultra-rare
	// tokens the candidate lists are tiny, while uniform-frequency data
	// degenerates toward large scans. This is the paper's
	// "prefix filtering wins iff ultra-rare tokens exist".
	const n = 400
	b1 := 0.5
	rng := hashing.NewSplitMix64(9)

	rareP := dist.TwoBlock(50, 0.3, 40000, 0.001)
	rareD := dist.MustProduct(rareP)
	rareData := rareD.SampleN(rng, n)
	rareIx, err := Build(rareData, rareP, b1, Options{})
	if err != nil {
		t.Fatal(err)
	}

	unifP := dist.Uniform(100, 0.3)
	unifD := dist.MustProduct(unifP)
	unifData := unifD.SampleN(rng, n)
	unifIx, err := Build(unifData, unifP, b1, Options{})
	if err != nil {
		t.Fatal(err)
	}

	rareCand, unifCand := 0, 0
	for i := 0; i < 50; i++ {
		rareCand += len(rareIx.Candidates(rareData[i]))
		unifCand += len(unifIx.Candidates(unifData[i]))
	}
	t.Logf("candidates: rare-token data %d, uniform data %d", rareCand, unifCand)
	if rareCand >= unifCand {
		t.Errorf("rare-token candidates (%d) should be far below uniform (%d)", rareCand, unifCand)
	}
}

func TestQueryBestReturnsArgmax(t *testing.T) {
	p := dist.Uniform(300, 0.15)
	d := dist.MustProduct(p)
	rng := hashing.NewSplitMix64(13)
	data := d.SampleN(rng, 150)
	ix, err := Build(data, p, 0.4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range data[:25] {
		if q.IsEmpty() {
			continue
		}
		res := ix.QueryBest(q)
		// q itself is indexed; self-similarity 1 must dominate.
		if !res.Found || res.Similarity < 1-1e-9 {
			t.Errorf("self QueryBest = %+v", res)
		}
	}
}

func TestEmptyQuery(t *testing.T) {
	data := []bitvec.Vector{bitvec.New(1, 2)}
	ix, err := Build(data, []float64{0.1, 0.1, 0.1}, 0.5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res := ix.Query(bitvec.New()); res.Found {
		t.Error("empty query matched")
	}
	if got := ix.Candidates(bitvec.New()); len(got) != 0 {
		t.Error("empty query has candidates")
	}
}

func TestUnknownElementsRankRarest(t *testing.T) {
	// Elements outside the frequency table are treated as rarest, so a
	// vector containing one indexes under it.
	data := []bitvec.Vector{bitvec.New(0, 99)} // 99 beyond freq table
	ix, err := Build(data, []float64{0.5}, 0.9, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Prefix length of a 2-set at b1=0.9: o = 2, l = 1 → only the rarest
	// token (99) is indexed.
	if _, ok := ix.lists[99]; !ok {
		t.Error("unknown element should be the prefix token")
	}
	if _, ok := ix.lists[0]; ok {
		t.Error("frequent element should not be in the length-1 prefix")
	}
}

func TestStatsConsistency(t *testing.T) {
	p := dist.Zipf(200, 1, 0.3)
	d := dist.MustProduct(p)
	rng := hashing.NewSplitMix64(15)
	data := d.SampleN(rng, 100)
	ix, err := Build(data, p, 0.5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range data[:20] {
		res := ix.QueryBest(q)
		if res.Stats.Distinct > res.Stats.Candidates {
			t.Error("distinct exceeds candidates")
		}
		if res.Stats.PrefixTokens != PrefixLen(q.Len(), 0.5) {
			t.Errorf("prefix tokens %d, want %d", res.Stats.PrefixTokens, PrefixLen(q.Len(), 0.5))
		}
	}
}
