// Package lsf implements the locality-sensitive filtering framework of
// §3 of the paper: a randomized mapping F(x) of vectors to sets of
// "chosen paths", with a pluggable threshold function s(x, j, i) and the
// paper's distribution-dependent stopping rule, plus an inverted filter
// index for preprocessing and query answering.
//
// The engine is shared by the paper's SkewSearch data structure
// (internal/core) and the Chosen Path baseline (internal/chosenpath):
// they differ only in the threshold function and stopping rule they plug
// in, which is exactly the paper's framing of its contribution.
package lsf

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"skewsim/internal/bitvec"
	"skewsim/internal/hashing"
)

// ThresholdFunc is the paper's s(x, j, i): the probability that a path of
// length j chosen by vector x is extended with element i. Implementations
// may use |x|, j, and the identity of i (typically through its item-level
// probability). Values are clamped to [0, 1] by the engine.
type ThresholdFunc func(x bitvec.Vector, j int, i uint32) float64

// StopRule decides whether a path is complete (becomes a filter) given
// the accumulated Σ log(1/p) of its elements and its length. The paper's
// rule is logInvP >= log n (i.e. Π p ≤ 1/n); Chosen Path uses a fixed
// length.
type StopRule func(logInvP float64, length int) bool

// ProductStopRule returns the paper's stopping rule for dataset size n:
// stop as soon as Π_{i∈v} p_i ≤ 1/n.
func ProductStopRule(n int) StopRule {
	logN := math.Log(float64(n))
	return func(logInvP float64, _ int) bool { return logInvP >= logN }
}

// FixedDepthStopRule returns Chosen Path's rule: stop exactly at length k.
func FixedDepthStopRule(k int) StopRule {
	return func(_ float64, length int) bool { return length >= k }
}

// Params configures an Engine.
type Params struct {
	// Seed drives all hash function choices; equal seeds give identical
	// filter mappings (required: queries must reuse the preprocessing
	// hash functions).
	Seed uint64
	// Probs are the item-level probabilities p_i, indexed by element.
	// Elements outside the slice are treated as probability 0 (infinitely
	// rare: any path reaching them completes immediately).
	Probs []float64
	// Threshold is s(x, j, i).
	Threshold ThresholdFunc
	// Stop decides filter completion.
	Stop StopRule
	// MaxDepth caps path length. Paths that reach it without completing
	// are discarded. Defaults to log2(n)+3 via NewEngine's n argument
	// when zero.
	MaxDepth int
	// MaxFiltersPerVector is a work budget: filter generation for one
	// vector aborts (marking the result truncated) once this many paths
	// are alive or complete. Guards against adversarial corner cases the
	// expected-case analysis does not cover. Defaults to 1 << 18.
	MaxFiltersPerVector int
	// Weigher customizes how path information content accumulates toward
	// the stopping rule. nil uses the paper's independent-coordinates
	// rule Π p_i ≤ 1/n; see ClusterWeigher for the §9 correlation-aware
	// extension.
	Weigher PathWeigher
}

// Engine computes filter sets F(x).
type Engine struct {
	hasher     *hashing.PathHasher
	probs      []float64
	threshold  ThresholdFunc
	stop       StopRule
	weigher    PathWeigher
	maxDepth   int
	maxFilters int
	// logInv caches -log(p_i) per element for the default independent
	// weigher (nil for custom weighers, whose increments can depend on
	// the path). Filter generation evaluates this once per candidate
	// extension, so the table turns a math.Log per call into a load.
	logInv []float64
	// scratch recycles the frontier stacks of FiltersInto so steady-state
	// filter generation performs no allocations beyond arena growth.
	scratch sync.Pool
}

// DefaultMaxDepth is the depth cap for dataset size n: with all p_i ≤ 1/2
// every path completes within log2(n)+1 steps, so the default never
// truncates model-conforming data.
func DefaultMaxDepth(n int) int {
	if n < 2 {
		return 3
	}
	return int(math.Ceil(math.Log2(float64(n)))) + 3
}

const defaultMaxFilters = 1 << 18

// NewEngine validates parameters and builds an engine sized for datasets
// of about n vectors (n controls the default depth cap only; the stopping
// rule is supplied by the caller).
func NewEngine(n int, p Params) (*Engine, error) {
	if p.Threshold == nil {
		return nil, errors.New("lsf: Threshold is required")
	}
	if p.Stop == nil {
		return nil, errors.New("lsf: Stop rule is required")
	}
	for i, v := range p.Probs {
		if math.IsNaN(v) || v < 0 || v > 1 {
			return nil, fmt.Errorf("lsf: Probs[%d] = %v outside [0, 1]", i, v)
		}
	}
	maxDepth := p.MaxDepth
	if maxDepth == 0 {
		maxDepth = DefaultMaxDepth(n)
	}
	if maxDepth < 1 {
		return nil, fmt.Errorf("lsf: MaxDepth %d must be >= 1", maxDepth)
	}
	maxFilters := p.MaxFiltersPerVector
	if maxFilters == 0 {
		maxFilters = defaultMaxFilters
	}
	if maxFilters < 1 {
		return nil, fmt.Errorf("lsf: MaxFiltersPerVector %d must be >= 1", maxFilters)
	}
	weigher := p.Weigher
	var logInv []float64
	if weigher == nil {
		weigher = independentWeigher{probs: p.Probs}
		logInv = make([]float64, len(p.Probs))
		for i, pv := range p.Probs {
			if pv <= 0 {
				logInv[i] = math.Inf(1)
			} else {
				logInv[i] = -math.Log(pv)
			}
		}
	}
	return &Engine{
		hasher:     hashing.NewPathHasher(p.Seed, maxDepth),
		probs:      p.Probs,
		threshold:  p.Threshold,
		stop:       p.Stop,
		weigher:    weigher,
		logInv:     logInv,
		maxDepth:   maxDepth,
		maxFilters: maxFilters,
	}, nil
}

// Span addresses one path inside a FilterSet's element arena.
type Span struct {
	// Off is the index of the path's first element in Elems.
	Off uint32
	// Len is the path length.
	Len uint32
}

// FilterSet is the result of computing F(x). All path elements live in a
// single arena (Elems) addressed by (offset, length) spans, so one filter
// set costs O(1) slice headers regardless of how many filters it holds,
// and a Reset/FiltersInto cycle reuses the arena capacity.
type FilterSet struct {
	// Elems is the arena holding every completed path back to back.
	Elems []uint32
	// Spans addresses the completed filters inside Elems, in generation
	// order. Each path is a sequence of distinct elements of x in the
	// order they were chosen.
	Spans []Span
	// Paths is a compatibility view of the arena: Paths[k] aliases the
	// k-th span of Elems. It is populated by Filters but left nil by the
	// allocation-light FiltersInto; new code should use Len/Path.
	Paths [][]uint32
	// Truncated reports that the work budget was exhausted; the filter
	// set is incomplete and callers should treat the vector specially
	// (SkewSearch falls back to linear scanning for such queries).
	Truncated bool
	// Expanded counts recursion steps, the O(|x|)-cost unit of Lemma 6.
	Expanded int
}

// Len returns the number of completed filters.
func (fs *FilterSet) Len() int { return len(fs.Spans) }

// Path returns the k-th filter as a view into the arena. The slice is
// valid until the next Reset/FiltersInto and must not be modified.
func (fs *FilterSet) Path(k int) []uint32 {
	s := fs.Spans[k]
	return fs.Elems[s.Off : s.Off+s.Len]
}

// Reset empties the set, keeping the arena capacity for reuse.
func (fs *FilterSet) Reset() {
	fs.Elems = fs.Elems[:0]
	fs.Spans = fs.Spans[:0]
	fs.Paths = nil
	fs.Truncated = false
	fs.Expanded = 0
}

// filterScratch holds the per-depth frontier stacks of one FiltersInto
// call: the frontier at depth j is count(curLog) paths of exactly j
// elements each, stored back to back in cur with stride j. The two
// levels ping-pong, so a whole filter generation touches exactly two
// growable arenas plus the two logInvP stacks.
type filterScratch struct {
	cur, next       []uint32
	curLog, nextLog []float64
	// cutDepth and termDepth hold the integer form of the per-depth
	// threshold test. The threshold function sees only (x, j, i) — never
	// the path — so s(x, depth, i) is shared by every frontier node of a
	// depth; it is evaluated once per element and stored as its exact
	// hash cutoff (hashing.UnitCut), next to the element's expanded-hash
	// term (hashing.ExtTerm). The node loop then decides each candidate
	// extension with one modular addition and one integer compare,
	// bit-identical to evaluating ext.Unit(i) >= s in floats.
	cutDepth  []uint64
	termDepth []uint64
}

// Filters computes F(x) under the engine's threshold and stopping rule.
// The empty vector has no filters. Deterministic given the engine seed.
// The returned set has the Paths compatibility view populated; hot paths
// should prefer FiltersInto with a reused FilterSet.
func (e *Engine) Filters(x bitvec.Vector) FilterSet {
	var fs FilterSet
	e.FiltersInto(x, &fs)
	if n := fs.Len(); n > 0 {
		fs.Paths = make([][]uint32, n)
		for k := range fs.Paths {
			fs.Paths[k] = fs.Path(k)
		}
	}
	return fs
}

// FiltersInto computes F(x), appending the completed paths to fs's arena
// and accumulating Expanded/Truncated. It produces exactly the same
// filters in the same order as Filters but performs no allocations in
// steady state: path elements land in fs.Elems, and the frontier stacks
// come from a per-engine pool. Callers that reuse one FilterSet must
// Reset it between vectors (or deliberately batch several vectors'
// filters into one arena). The Paths view is not populated.
func (e *Engine) FiltersInto(x bitvec.Vector, fs *FilterSet) {
	e.FiltersIntoCancel(x, fs, nil)
}

// FiltersIntoCancel is FiltersInto with a cooperative cancellation
// checkpoint, polled once per frontier-node expansion (the O(|x|) cost
// unit of Lemma 6). On cancellation the filter set is abandoned
// incomplete WITHOUT setting Truncated — truncation means "work budget
// hit, fall back to exact scanning", which a canceled query must never
// trigger; callers detect cancellation through cc.Err() and abort. A
// nil cc is the plain FiltersInto.
func (e *Engine) FiltersIntoCancel(x bitvec.Vector, fs *FilterSet, cc *CancelCheck) {
	if x.IsEmpty() {
		return
	}
	base := fs.Len()
	sc, _ := e.scratch.Get().(*filterScratch)
	if sc == nil {
		sc = new(filterScratch)
	}
	cur, next := sc.cur[:0], sc.next[:0]
	curLog, nextLog := sc.curLog[:0], sc.nextLog[:0]
	cutDepth, termDepth := sc.cutDepth[:0], sc.termDepth[:0]
	defer func() {
		sc.cur, sc.next, sc.curLog, sc.nextLog = cur, next, curLog, nextLog
		sc.cutDepth, sc.termDepth = cutDepth, termDepth
		e.scratch.Put(sc)
	}()
	bitsX := x.Bits()
	curLog = append(curLog, 0) // the root: empty path, Σ log(1/p) = 0
	for depth := 0; depth < e.maxDepth && len(curLog) > 0; depth++ {
		next, nextLog = next[:0], nextLog[:0]
		// s(x, depth, i) is path-independent: evaluate it once per
		// element for this depth instead of once per (node, element),
		// and translate it straight into integer form — the exact hash
		// cutoff (s <= 0 becomes cutoff 0, rejecting every extension,
		// exactly as the old explicit skip did) and the element's
		// expanded-hash term at the extended level.
		cutDepth, termDepth = cutDepth[:0], termDepth[:0]
		for _, i := range bitsX {
			cutDepth = append(cutDepth, hashing.UnitCut(e.threshold(x, depth, i)))
			termDepth = append(termDepth, e.hasher.ExtTerm(depth+1, i))
		}
		for pi, plog := range curLog {
			if cc != nil && cc.Check() {
				return
			}
			elems := cur[pi*depth : pi*depth+depth]
			fs.Expanded++
			// One fingerprint of the path serves every candidate
			// extension, and its expanded-hash bias is hoisted too: the
			// per-element test below is one modular add and one compare,
			// bit-identical to ext.Unit(i) >= s (see hashing.UnitCut).
			bias := e.hasher.Extend(elems).Bias()
			for bi, i := range bitsX {
				// Hash rejection first: it is one add+compare and throws
				// out most elements, so the O(depth) membership scan runs
				// only for survivors. Both checks are pure rejections, so
				// the order cannot change what is emitted.
				if hashing.ExtHash(bias, termDepth[bi]) >= cutDepth[bi] {
					continue
				}
				if containsElem(elems, i) {
					continue // sampling without replacement
				}
				var logInvP float64
				if e.logInv != nil {
					if int(i) < len(e.logInv) {
						logInvP = plog + e.logInv[i]
					} else {
						logInvP = math.Inf(1)
					}
				} else {
					logInvP = plog + e.weigher.LogInvP(elems, i)
				}
				if e.stop(logInvP, depth+1) {
					off := uint32(len(fs.Elems))
					fs.Elems = append(fs.Elems, elems...)
					fs.Elems = append(fs.Elems, i)
					fs.Spans = append(fs.Spans, Span{Off: off, Len: uint32(depth + 1)})
				} else {
					next = append(next, elems...)
					next = append(next, i)
					nextLog = append(nextLog, logInvP)
				}
				if fs.Len()-base+len(nextLog) > e.maxFilters {
					fs.Truncated = true
					return
				}
			}
		}
		cur, next = next, cur
		curLog, nextLog = nextLog, curLog
	}
}

// containsElem is a linear scan on purpose: paths are at most maxDepth
// (≈ log2 n) elements long, so O(depth) beats any set structure's
// constant factors and allocates nothing.
func containsElem(elems []uint32, v uint32) bool {
	for _, e := range elems {
		if e == v {
			return true
		}
	}
	return false
}

// PathKey encodes a path as a compact string (big-endian fixed width per
// element); distinct paths get distinct keys. The inverted index now
// buckets by 64-bit path hashes, so PathKey survives only where a total
// order or exact string identity is wanted: the serialization format's
// deterministic bucket ordering and test assertions.
func PathKey(path []uint32) string {
	b := make([]byte, 4*len(path))
	for k, e := range path {
		b[4*k] = byte(e >> 24)
		b[4*k+1] = byte(e >> 16)
		b[4*k+2] = byte(e >> 8)
		b[4*k+3] = byte(e)
	}
	return string(b)
}
