package lsf

import (
	"bytes"
	"testing"

	"skewsim/internal/bitvec"
	"skewsim/internal/dist"
	"skewsim/internal/hashing"
)

// refIndex is a deliberately naive map-based inverted index — string path
// keys, one []int32 per bucket, map dedup per query — used as the
// unfrozen reference the arena/CSR implementation must match exactly:
// same candidates in the same first-encounter order, same QueryStats,
// same early-exit behaviour.
type refIndex struct {
	engine       *Engine
	data         []bitvec.Vector
	buckets      map[string][]int32
	totalFilters int
	truncated    int
}

func buildRefIndex(engine *Engine, data []bitvec.Vector) *refIndex {
	r := &refIndex{engine: engine, data: data, buckets: make(map[string][]int32)}
	for id, x := range data {
		fs := engine.Filters(x)
		if fs.Truncated {
			r.truncated++
		}
		for _, p := range fs.Paths {
			k := PathKey(p)
			r.buckets[k] = append(r.buckets[k], int32(id))
		}
		r.totalFilters += len(fs.Paths)
	}
	return r
}

// traverse mirrors Index.traverse's contract on the map representation.
func (r *refIndex) traverse(q bitvec.Vector, stats *QueryStats, sink func(id int32) bool) {
	fs := r.engine.Filters(q)
	stats.Filters = len(fs.Paths)
	stats.Truncated = fs.Truncated
	seen := make(map[int32]struct{})
	for _, p := range fs.Paths {
		for _, id := range r.buckets[PathKey(p)] {
			stats.Candidates++
			if _, dup := seen[id]; dup {
				continue
			}
			seen[id] = struct{}{}
			stats.Distinct++
			if !sink(id) {
				return
			}
		}
	}
}

func (r *refIndex) query(q bitvec.Vector, threshold float64, m bitvec.Measure) (int, float64, QueryStats, bool) {
	best, sim, found := -1, 0.0, false
	var stats QueryStats
	r.traverse(q, &stats, func(id int32) bool {
		if s := m.Similarity(q, r.data[id]); s >= threshold {
			best, sim, found = int(id), s, true
			return false
		}
		return true
	})
	return best, sim, stats, found
}

func (r *refIndex) queryBest(q bitvec.Vector, m bitvec.Measure) (int, float64, QueryStats, bool) {
	best, sim := -1, -1.0
	var stats QueryStats
	r.traverse(q, &stats, func(id int32) bool {
		if s := m.Similarity(q, r.data[id]); s > sim {
			best, sim = int(id), s
		}
		return true
	})
	if best < 0 {
		return -1, 0, stats, false
	}
	return best, sim, stats, true
}

func (r *refIndex) candidateIDs(q bitvec.Vector) ([]int32, QueryStats) {
	var stats QueryStats
	var ids []int32
	r.traverse(q, &stats, func(id int32) bool {
		ids = append(ids, id)
		return true
	})
	return ids, stats
}

// differentialWorkload builds a randomized engine + dataset + query mix
// (indexed vectors, perturbed vectors, fresh samples) from one seed.
func differentialWorkload(t *testing.T, seed uint64) (*Engine, []bitvec.Vector, []bitvec.Vector) {
	t.Helper()
	rng := hashing.NewSplitMix64(seed)
	n := 100 + int(rng.NextBelow(200))
	dim := 60 + int(rng.NextBelow(100))
	p := 0.05 + 0.25*rng.NextUnit()
	d := dist.MustProduct(dist.Uniform(dim, p))
	data := d.SampleN(rng, n)
	b1 := 0.4 + 0.4*rng.NextUnit()
	e, err := NewEngine(n, Params{
		Seed:  rng.Next(),
		Probs: d.Probs(),
		Threshold: func(v bitvec.Vector, j int, _ uint32) float64 {
			denom := b1*float64(v.Len()) - float64(j)
			if denom <= 1 {
				return 1
			}
			return 1 / denom
		},
		Stop: ProductStopRule(n),
	})
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]bitvec.Vector, 0, 60)
	queries = append(queries, data[:20]...)
	queries = append(queries, d.SampleN(rng, 20)...)
	for k := 0; k < 20; k++ {
		// Perturbed copies of indexed vectors: drop ~1/4 of the bits.
		var bits []uint32
		for _, b := range data[k].Bits() {
			if rng.NextBelow(4) != 0 {
				bits = append(bits, b)
			}
		}
		queries = append(queries, bitvec.FromSorted(bits))
	}
	return e, data, queries
}

// TestFrozenIndexMatchesMapReference is the differential property test of
// the freeze: for randomized workloads, every query entry point of the
// frozen CSR index — Query, QueryBest, CandidateIDs, and BatchQuery —
// must return byte-identical results and QueryStats to the naive
// map-based reference.
func TestFrozenIndexMatchesMapReference(t *testing.T) {
	m := bitvec.BraunBlanquetMeasure
	for seed := uint64(1); seed <= 8; seed++ {
		e, data, queries := differentialWorkload(t, seed)
		ix, err := BuildIndex(e, data)
		if err != nil {
			t.Fatal(err)
		}
		ref := buildRefIndex(e, data)

		st := ix.Stats()
		if st.TotalFilters != ref.totalFilters || st.Buckets != len(ref.buckets) || st.Truncated != ref.truncated {
			t.Fatalf("seed %d: build stats %+v, reference totalFilters=%d buckets=%d truncated=%d",
				seed, st, ref.totalFilters, len(ref.buckets), ref.truncated)
		}

		const threshold = 0.5
		results := ix.BatchQuery(queries, threshold, m)
		for k, q := range queries {
			wantID, wantSim, wantStats, wantFound := ref.query(q, threshold, m)
			gotID, gotSim, gotStats, gotFound := ix.Query(q, threshold, m)
			if gotID != wantID || gotSim != wantSim || gotStats != wantStats || gotFound != wantFound {
				t.Fatalf("seed %d query %d: Query = (%d, %v, %+v, %v), reference (%d, %v, %+v, %v)",
					seed, k, gotID, gotSim, gotStats, gotFound, wantID, wantSim, wantStats, wantFound)
			}
			br := results[k]
			if br.ID != wantID || br.Similarity != wantSim || br.Stats != wantStats || br.Found != wantFound {
				t.Fatalf("seed %d query %d: BatchQuery = %+v, reference (%d, %v, %+v, %v)",
					seed, k, br, wantID, wantSim, wantStats, wantFound)
			}

			wantID, wantSim, wantStats, wantFound = ref.queryBest(q, m)
			gotID, gotSim, gotStats, gotFound = ix.QueryBest(q, m)
			if gotID != wantID || gotSim != wantSim || gotStats != wantStats || gotFound != wantFound {
				t.Fatalf("seed %d query %d: QueryBest = (%d, %v, %+v, %v), reference (%d, %v, %+v, %v)",
					seed, k, gotID, gotSim, gotStats, gotFound, wantID, wantSim, wantStats, wantFound)
			}

			wantIDs, wantStats2 := ref.candidateIDs(q)
			gotIDs, gotStats2 := ix.CandidateIDs(q)
			if gotStats2 != wantStats2 || len(gotIDs) != len(wantIDs) {
				t.Fatalf("seed %d query %d: CandidateIDs stats %+v (%d ids), reference %+v (%d ids)",
					seed, k, gotStats2, len(gotIDs), wantStats2, len(wantIDs))
			}
			for i := range gotIDs {
				if gotIDs[i] != wantIDs[i] {
					t.Fatalf("seed %d query %d: candidate order diverged at %d: %d vs %d",
						seed, k, i, gotIDs[i], wantIDs[i])
				}
			}
		}
	}
}

// TestSerializeRoundTripThroughFrozenLayout checks that serialization out
// of the frozen arenas and deserialization back into them is lossless:
// identical bucket contents, stats, query behaviour, and re-serialized
// bytes.
func TestSerializeRoundTripThroughFrozenLayout(t *testing.T) {
	e, data, queries := differentialWorkload(t, 99)
	ix, err := BuildIndex(e, data)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	firstBytes := append([]byte(nil), buf.Bytes()...)

	back, err := ReadIndexFrom(&buf, e, data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Stats() != ix.Stats() {
		t.Fatalf("stats changed across round trip: %+v vs %+v", back.Stats(), ix.Stats())
	}
	if !indexesEqual(ix, back) {
		t.Fatal("frozen bucket contents changed across round trip")
	}
	m := bitvec.BraunBlanquetMeasure
	for k, q := range queries {
		aID, aSim, aStats, aFound := ix.Query(q, 0.5, m)
		bID, bSim, bStats, bFound := back.Query(q, 0.5, m)
		if aID != bID || aSim != bSim || aStats != bStats || aFound != bFound {
			t.Fatalf("query %d diverged after round trip", k)
		}
	}
	var buf2 bytes.Buffer
	if _, err := back.WriteTo(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(firstBytes, buf2.Bytes()) {
		t.Fatal("re-serialized bytes differ from the original dump")
	}
}
