package lsf

import (
	"bytes"
	"testing"

	"skewsim/internal/bitvec"
)

func fuzzEngine(t testing.TB, n int) *Engine {
	probs := make([]float64, 32)
	for i := range probs {
		probs[i] = 0.5 / float64(i+1)
	}
	eng, err := NewEngine(n, Params{
		Seed:      12345,
		Probs:     probs,
		Threshold: func(_ bitvec.Vector, j int, _ uint32) float64 { return 1.0 / float64(2+j) },
		Stop:      ProductStopRule(n),
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func fuzzData(n int) []bitvec.Vector {
	data := make([]bitvec.Vector, n)
	for i := range data {
		data[i] = bitvec.New(uint32(i%29), uint32(7+i%13), uint32(20+i%11))
	}
	return data
}

// FuzzReadIndexFrom feeds arbitrary bytes into the index deserializer:
// it must either error cleanly or produce an index whose re-serialized
// form round-trips (the seed corpus includes a genuine WriteTo dump, so
// the mutator explores the accepted grammar, not just the reject path).
func FuzzReadIndexFrom(f *testing.F) {
	const n = 64
	eng := fuzzEngine(f, n)
	data := fuzzData(n)
	ix, err := BuildIndex(eng, data)
	if err != nil {
		f.Fatal(err)
	}
	var genuine bytes.Buffer
	if _, err := ix.WriteTo(&genuine); err != nil {
		f.Fatal(err)
	}
	f.Add(genuine.Bytes())
	f.Add([]byte("SKLSF1"))
	f.Add(append([]byte("SKLSF1"), make([]byte, 24)...))
	f.Add([]byte("not an index"))
	truncated := genuine.Bytes()[:genuine.Len()/2]
	f.Add(truncated)

	f.Fuzz(func(t *testing.T, in []byte) {
		rix, err := ReadIndexFrom(bytes.NewReader(in), eng, data)
		if err != nil {
			return
		}
		// Accepted: the reconstruction must serialize back to a stream
		// that parses to the same buckets (WriteTo is deterministic, so
		// byte equality after one normalizing round trip).
		var out1 bytes.Buffer
		if _, err := rix.WriteTo(&out1); err != nil {
			t.Fatalf("re-serialize failed: %v", err)
		}
		rix2, err := ReadIndexFrom(bytes.NewReader(out1.Bytes()), eng, data)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		var out2 bytes.Buffer
		if _, err := rix2.WriteTo(&out2); err != nil {
			t.Fatalf("second serialize failed: %v", err)
		}
		if !bytes.Equal(out1.Bytes(), out2.Bytes()) {
			t.Fatalf("serialization not stable: %d vs %d bytes", out1.Len(), out2.Len())
		}
	})
}

// FuzzSerializeRoundTrip drives the write side: fuzzed dataset shapes
// build an index whose dump must reparse into an identical dump.
func FuzzSerializeRoundTrip(f *testing.F) {
	f.Add(uint16(8), uint32(3))
	f.Add(uint16(64), uint32(17))
	f.Add(uint16(1), uint32(0))
	f.Fuzz(func(t *testing.T, size uint16, salt uint32) {
		n := int(size%256) + 1
		eng := fuzzEngine(t, n)
		data := make([]bitvec.Vector, n)
		for i := range data {
			a := uint32(i) % 29
			b := (uint32(i) + salt) % 31
			if b == a {
				b = (b + 1) % 31
			}
			data[i] = bitvec.New(a, b)
		}
		ix, err := BuildIndex(eng, data)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := ix.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		dump := buf.Bytes()
		rix, err := ReadIndexFrom(bytes.NewReader(dump), eng, data)
		if err != nil {
			t.Fatalf("genuine dump rejected: %v", err)
		}
		var buf2 bytes.Buffer
		if _, err := rix.WriteTo(&buf2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dump, buf2.Bytes()) {
			t.Fatalf("round trip not byte-identical: %d vs %d", len(dump), buf2.Len())
		}
	})
}
