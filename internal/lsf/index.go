package lsf

import (
	"errors"

	"skewsim/internal/bitvec"
)

// Index is the inverted filter index of §3: for every path chosen by some
// data vector it stores the list of vectors that chose it. Space is
// linear in Σ_x |F(x)| plus the data itself.
type Index struct {
	engine  *Engine
	data    []bitvec.Vector
	buckets map[string][]int32
	// stats from construction
	totalFilters   int
	truncatedCount int
}

// BuildStats summarizes index construction work, the empirical counterpart
// of the preprocessing bound of Lemma 9/12.
type BuildStats struct {
	Vectors      int
	TotalFilters int // Σ_x |F(x)|
	Buckets      int // distinct paths
	Truncated    int // vectors whose filter sets hit the work budget
}

// BuildIndex computes F(x) for every data vector and constructs the
// inverted index. The data slice is retained (not copied).
func BuildIndex(engine *Engine, data []bitvec.Vector) (*Index, error) {
	if engine == nil {
		return nil, errors.New("lsf: nil engine")
	}
	ix := &Index{
		engine:  engine,
		data:    data,
		buckets: make(map[string][]int32, len(data)*2),
	}
	for id, x := range data {
		fs := engine.Filters(x)
		if fs.Truncated {
			ix.truncatedCount++
		}
		for _, p := range fs.Paths {
			k := PathKey(p)
			ix.buckets[k] = append(ix.buckets[k], int32(id))
		}
		ix.totalFilters += len(fs.Paths)
	}
	return ix, nil
}

// Stats returns construction statistics.
func (ix *Index) Stats() BuildStats {
	return BuildStats{
		Vectors:      len(ix.data),
		TotalFilters: ix.totalFilters,
		Buckets:      len(ix.buckets),
		Truncated:    ix.truncatedCount,
	}
}

// Data returns the indexed vectors.
func (ix *Index) Data() []bitvec.Vector { return ix.data }

// QueryStats records the work done by one query, the unit in which the
// scaling experiments measure n^ρ.
type QueryStats struct {
	// Filters is |F(q)|.
	Filters int
	// Candidates counts candidate occurrences over all filters of q, i.e.
	// Σ_{f∈F(q)} |{x : f ∈ F(x)}| — the quantity bounded by Lemma 7.
	Candidates int
	// Distinct counts distinct candidates verified.
	Distinct int
	// Truncated reports the query's filter generation hit the budget.
	Truncated bool
}

// Query returns the first indexed vector with measure-similarity at least
// threshold among the candidates sharing a filter with q, following the
// paper's query procedure. found reports whether any candidate passed.
func (ix *Index) Query(q bitvec.Vector, threshold float64, m bitvec.Measure) (best int, sim float64, stats QueryStats, found bool) {
	fs := ix.engine.Filters(q)
	stats.Filters = len(fs.Paths)
	stats.Truncated = fs.Truncated
	seen := make(map[int32]struct{})
	for _, p := range fs.Paths {
		for _, id := range ix.buckets[PathKey(p)] {
			stats.Candidates++
			if _, dup := seen[id]; dup {
				continue
			}
			seen[id] = struct{}{}
			stats.Distinct++
			s := m.Similarity(q, ix.data[id])
			if s >= threshold {
				return int(id), s, stats, true
			}
		}
	}
	return -1, 0, stats, false
}

// QueryBest examines every candidate (instead of stopping at the first
// above threshold) and returns the most similar one. Used by the join
// driver and by experiments that need exact candidate-set behaviour.
func (ix *Index) QueryBest(q bitvec.Vector, m bitvec.Measure) (best int, sim float64, stats QueryStats, found bool) {
	fs := ix.engine.Filters(q)
	stats.Filters = len(fs.Paths)
	stats.Truncated = fs.Truncated
	best, sim = -1, -1
	seen := make(map[int32]struct{})
	for _, p := range fs.Paths {
		for _, id := range ix.buckets[PathKey(p)] {
			stats.Candidates++
			if _, dup := seen[id]; dup {
				continue
			}
			seen[id] = struct{}{}
			stats.Distinct++
			if s := m.Similarity(q, ix.data[id]); s > sim {
				best, sim = int(id), s
			}
		}
	}
	if best < 0 {
		return -1, 0, stats, false
	}
	return best, sim, stats, true
}

// CandidateIDs returns the distinct data ids sharing at least one filter
// with q, plus stats. Exposed for experiments that analyze candidate sets
// directly.
func (ix *Index) CandidateIDs(q bitvec.Vector) ([]int32, QueryStats) {
	fs := ix.engine.Filters(q)
	stats := QueryStats{Filters: len(fs.Paths), Truncated: fs.Truncated}
	seen := make(map[int32]struct{})
	var ids []int32
	for _, p := range fs.Paths {
		for _, id := range ix.buckets[PathKey(p)] {
			stats.Candidates++
			if _, dup := seen[id]; dup {
				continue
			}
			seen[id] = struct{}{}
			ids = append(ids, id)
		}
	}
	stats.Distinct = len(ids)
	return ids, stats
}
