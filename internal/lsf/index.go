package lsf

import (
	"errors"
	"sync"

	"skewsim/internal/bitvec"
)

// Index is the inverted filter index of §3: for every path chosen by some
// data vector it stores the list of vectors that chose it. Space is
// linear in Σ_x |F(x)| plus the data itself.
//
// Buckets are keyed by a 64-bit hash of the path. Each bucket retains its
// path so lookups verify equality and hash collisions chain instead of
// mixing candidate lists; queries therefore never allocate a key (the old
// representation re-encoded every path into a string per probe).
type Index struct {
	engine  *Engine
	data    []bitvec.Vector
	buckets map[uint64]*bucket
	// visitPool recycles the epoch-stamped visited sets queries use for
	// candidate deduplication, so steady-state queries allocate nothing
	// for dedup and concurrent queries each get their own set.
	visitPool VisitedPool
	// stats from construction
	totalFilters   int
	truncatedCount int
	bucketCount    int
}

// bucket is one inverted-index posting list. next chains buckets whose
// distinct paths share a 64-bit key hash (astronomically rare, but
// correctness must not depend on that).
type bucket struct {
	path []uint32
	ids  []int32
	next *bucket
}

// hashPath maps a path to its bucket key: splitmix-style mixing folded
// over the elements, seeded with the length so prefixes of a path do not
// trivially collide with it.
func hashPath(path []uint32) uint64 {
	h := uint64(len(path))*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	for _, e := range path {
		h ^= uint64(e) + 1
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 29
	}
	h *= 0x94d049bb133111eb
	return h ^ (h >> 32)
}

func pathsEqual(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// insert appends id to the bucket of path, creating (or chaining) the
// bucket as needed. The path slice is retained.
func (ix *Index) insert(path []uint32, id int32) {
	h := hashPath(path)
	for b := ix.buckets[h]; b != nil; b = b.next {
		if pathsEqual(b.path, path) {
			b.ids = append(b.ids, id)
			return
		}
	}
	ix.buckets[h] = &bucket{path: path, ids: []int32{id}, next: ix.buckets[h]}
	ix.bucketCount++
}

// insertBucket installs a whole posting list at once (the
// deserialization path; the stream never repeats a path).
func (ix *Index) insertBucket(path []uint32, ids []int32) {
	h := hashPath(path)
	ix.buckets[h] = &bucket{path: path, ids: ids, next: ix.buckets[h]}
	ix.bucketCount++
}

// postings returns the ids sharing the path, or nil. Never allocates.
func (ix *Index) postings(path []uint32) []int32 {
	for b := ix.buckets[hashPath(path)]; b != nil; b = b.next {
		if pathsEqual(b.path, path) {
			return b.ids
		}
	}
	return nil
}

// BuildStats summarizes index construction work, the empirical counterpart
// of the preprocessing bound of Lemma 9/12.
type BuildStats struct {
	Vectors      int
	TotalFilters int // Σ_x |F(x)|
	Buckets      int // distinct paths
	Truncated    int // vectors whose filter sets hit the work budget
}

// newIndex allocates an empty index over data.
func newIndex(engine *Engine, data []bitvec.Vector) *Index {
	return &Index{
		engine:  engine,
		data:    data,
		buckets: make(map[uint64]*bucket, len(data)*2),
	}
}

// addFilterSet inserts one vector's filters, updating build statistics.
func (ix *Index) addFilterSet(id int32, fs FilterSet) {
	if fs.Truncated {
		ix.truncatedCount++
	}
	for _, p := range fs.Paths {
		ix.insert(p, id)
	}
	ix.totalFilters += len(fs.Paths)
}

// BuildIndex computes F(x) for every data vector and constructs the
// inverted index. The data slice is retained (not copied).
func BuildIndex(engine *Engine, data []bitvec.Vector) (*Index, error) {
	if engine == nil {
		return nil, errors.New("lsf: nil engine")
	}
	ix := newIndex(engine, data)
	for id, x := range data {
		ix.addFilterSet(int32(id), engine.Filters(x))
	}
	return ix, nil
}

// Stats returns construction statistics.
func (ix *Index) Stats() BuildStats {
	return BuildStats{
		Vectors:      len(ix.data),
		TotalFilters: ix.totalFilters,
		Buckets:      ix.bucketCount,
		Truncated:    ix.truncatedCount,
	}
}

// Data returns the indexed vectors.
func (ix *Index) Data() []bitvec.Vector { return ix.data }

// QueryStats records the work done by one query, the unit in which the
// scaling experiments measure n^ρ.
type QueryStats struct {
	// Filters is |F(q)|.
	Filters int
	// Candidates counts candidate occurrences over all filters of q, i.e.
	// Σ_{f∈F(q)} |{x : f ∈ F(x)}| — the quantity bounded by Lemma 7.
	Candidates int
	// Distinct counts distinct candidates verified.
	Distinct int
	// Truncated reports the query's filter generation hit the budget.
	Truncated bool
}

// Visited deduplicates candidate ids with an epoch-stamped array: reset
// is O(1) (bump the epoch) instead of O(distinct) map clearing, and
// membership is a single array load. The zero value is ready to use.
// Exported so the layers above (SkewSearch repetitions, the baselines,
// the split-search driver) share one dedup mechanism instead of
// allocating a map per query.
type Visited struct {
	stamp []uint32
	epoch uint32
}

// Begin prepares the set for a pass over ids in [0, n), forgetting any
// previous pass in O(1).
func (v *Visited) Begin(n int) {
	if cap(v.stamp) < n {
		v.stamp = make([]uint32, n)
		v.epoch = 0
	}
	v.stamp = v.stamp[:n]
	v.epoch++
	if v.epoch == 0 { // wrapped: stamps from 2^32 passes ago could alias
		for i := range v.stamp {
			v.stamp[i] = 0
		}
		v.epoch = 1
	}
}

// FirstVisit reports whether id is new this pass, marking it visited.
func (v *Visited) FirstVisit(id int32) bool {
	if v.stamp[id] == v.epoch {
		return false
	}
	v.stamp[id] = v.epoch
	return true
}

// VisitedPool recycles Visited sets so concurrent queries each get their
// own and steady-state queries allocate nothing for dedup. The zero
// value is ready to use; every consumer of Visited in this codebase
// (lsf, core, the baselines, splitsearch) shares this one implementation.
type VisitedPool struct {
	pool sync.Pool
}

// Get returns a Visited ready for a pass over ids in [0, n).
func (p *VisitedPool) Get(n int) *Visited {
	v, _ := p.pool.Get().(*Visited)
	if v == nil {
		v = &Visited{}
	}
	v.Begin(n)
	return v
}

// Put returns the set to the pool.
func (p *VisitedPool) Put(v *Visited) { p.pool.Put(v) }

// traverse is the single candidate-traversal implementation behind every
// query entry point: it computes F(q) once, walks the buckets of each
// filter, deduplicates ids, and streams each distinct candidate into sink
// in first-encounter order. The sink returns false to stop early (the
// threshold query's early exit); stats always reflect exactly the work
// performed up to the stop.
func (ix *Index) traverse(q bitvec.Vector, stats *QueryStats, sink func(id int32) bool) {
	fs := ix.engine.Filters(q)
	stats.Filters = len(fs.Paths)
	stats.Truncated = fs.Truncated
	if len(fs.Paths) == 0 {
		return
	}
	vis := ix.visitPool.Get(len(ix.data))
	defer ix.visitPool.Put(vis)
	for _, p := range fs.Paths {
		for _, id := range ix.postings(p) {
			stats.Candidates++
			if !vis.FirstVisit(id) {
				continue
			}
			stats.Distinct++
			if !sink(id) {
				return
			}
		}
	}
}

// Query returns the first indexed vector with measure-similarity at least
// threshold among the candidates sharing a filter with q, following the
// paper's query procedure. found reports whether any candidate passed.
func (ix *Index) Query(q bitvec.Vector, threshold float64, m bitvec.Measure) (best int, sim float64, stats QueryStats, found bool) {
	best, sim = -1, 0
	ix.traverse(q, &stats, func(id int32) bool {
		if s := m.Similarity(q, ix.data[id]); s >= threshold {
			best, sim, found = int(id), s, true
			return false
		}
		return true
	})
	return best, sim, stats, found
}

// QueryBest examines every candidate (instead of stopping at the first
// above threshold) and returns the most similar one. Used by the join
// driver and by experiments that need exact candidate-set behaviour.
func (ix *Index) QueryBest(q bitvec.Vector, m bitvec.Measure) (best int, sim float64, stats QueryStats, found bool) {
	best, sim = -1, -1
	ix.traverse(q, &stats, func(id int32) bool {
		if s := m.Similarity(q, ix.data[id]); s > sim {
			best, sim = int(id), s
		}
		return true
	})
	if best < 0 {
		return -1, 0, stats, false
	}
	return best, sim, stats, true
}

// CandidateIDs returns the distinct data ids sharing at least one filter
// with q, plus stats. Exposed for experiments that analyze candidate sets
// directly.
func (ix *Index) CandidateIDs(q bitvec.Vector) ([]int32, QueryStats) {
	var stats QueryStats
	var ids []int32
	ix.traverse(q, &stats, func(id int32) bool {
		ids = append(ids, id)
		return true
	})
	return ids, stats
}
