package lsf

import (
	"errors"
	"math"
	"sync"

	"skewsim/internal/bitvec"
	"skewsim/internal/verify"
)

// Index is the inverted filter index of §3: for every path chosen by some
// data vector it stores the list of vectors that chose it. Space is
// linear in Σ_x |F(x)| plus the data itself.
//
// The index is frozen: construction goes through an indexBuilder, and the
// finished structure is four flat arenas plus an open-addressing key
// table — no per-bucket heap objects, no pointers for the GC to trace,
// and traversal is pure array arithmetic:
//
//   - tableKeys/tableIdx: an open-addressing (linear-probe) table mapping
//     a 64-bit path hash to a bucket number; distinct paths that collide
//     on the hash simply occupy separate slots, and every probe verifies
//     path equality, so correctness never depends on hash quality.
//   - pathSpans/pathElems: every distinct path's elements, back to back
//     in one arena, addressed by (offset, length) spans per bucket.
//   - idOff/ids: the posting lists in CSR form — bucket b's ids are
//     ids[idOff[b]:idOff[b+1]], in insertion (= vector id) order.
type Index struct {
	engine *Engine
	data   []bitvec.Vector
	// visitPool recycles the epoch-stamped visited sets queries use for
	// candidate deduplication, so steady-state queries allocate nothing
	// for dedup and concurrent queries each get their own set.
	visitPool VisitedPool
	// fsPool recycles per-query FilterSets (arena + spans) so traversal
	// reuses filter storage across queries.
	fsPool sync.Pool
	// refPool recycles the per-query PostingRef scratch of the two-phase
	// traversal (resolve all buckets, then walk all spans).
	refPool sync.Pool
	// packed is the word-packed form of data for popcount verification,
	// shared across the repetitions of a SkewSearch index (see UsePacked).
	// nil indexes verify against the sorted slices, with identical results.
	packed *bitvec.PackedSet

	// frozen layout
	tableKeys []uint64 // path hash per slot (valid where tableIdx >= 0)
	tableIdx  []int32  // bucket number per slot; -1 = empty
	tableMask uint64   // len(tableIdx) is a power of two
	pathSpans []Span   // per bucket: the path's span in pathElems
	pathElems []uint32 // arena of all distinct paths' elements
	idOff     []uint32 // CSR offsets into ids; len = buckets + 1
	ids       []int32  // all posting lists, bucket-major (nil when cold)

	// cold, when non-nil, replaces ids with compressed decode-on-read
	// posting storage (the spilled tier of internal/segment); see
	// frozen.go. All structural validation happens at open, so decodes
	// here never fail.
	cold *coldPostings
	// coldPool recycles per-traversal decode buffers for cold indexes.
	coldPool sync.Pool

	// stats from construction
	totalFilters   int
	truncatedCount int
}

// HashPath maps a path to its bucket key: splitmix-style mixing folded
// over the elements, seeded with the length so prefixes of a path do not
// trivially collide with it. Exported so the mutable memtable layer
// (internal/segment) buckets by the same key as the frozen index.
func HashPath(path []uint32) uint64 {
	h := uint64(len(path))*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	for _, e := range path {
		h ^= uint64(e) + 1
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 29
	}
	h *= 0x94d049bb133111eb
	return h ^ (h >> 32)
}

func pathsEqual(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// bucketPath returns bucket b's path as a view into the arena.
func (ix *Index) bucketPath(b int32) []uint32 {
	s := ix.pathSpans[b]
	return ix.pathElems[s.Off : s.Off+s.Len]
}

// bucketIDs returns bucket b's posting list as a view into the CSR
// arena. Resident indexes only; cold callers go through appendColdBucket.
func (ix *Index) bucketIDs(b int32) []int32 {
	return ix.ids[ix.idOff[b]:ix.idOff[b+1]]
}

// PostingRef addresses one posting list inside the frozen CSR arena:
// ids[Off:Off+Len]. Refs are plain offsets, so a traversal can resolve
// all its buckets first (the pointer-chasing phase) and then walk the
// spans (the sequential phase) — and a batch executor can sort refs by
// Off to visit the arena in layout order. A ref is valid for the
// lifetime of its (immutable) index.
type PostingRef struct {
	Off, Len uint32
}

// PathRef resolves the exact path to its posting span, reporting
// whether the path is indexed. Never allocates: one linear-probe walk
// over the key table, path equality verified against the span arena.
func (ix *Index) PathRef(path []uint32) (PostingRef, bool) {
	return ix.PathRefHash(HashPath(path), path)
}

// PathRefHash is PathRef with a caller-precomputed HashPath(path) — the
// segmented layer hashes each query path once and probes every frozen
// segment (and its bloom filter) with the same key.
func (ix *Index) PathRefHash(h uint64, path []uint32) (PostingRef, bool) {
	if len(ix.tableIdx) == 0 {
		return PostingRef{}, false
	}
	for slot := h & ix.tableMask; ; slot = (slot + 1) & ix.tableMask {
		b := ix.tableIdx[slot]
		if b < 0 {
			return PostingRef{}, false
		}
		if ix.tableKeys[slot] == h && pathsEqual(ix.bucketPath(b), path) {
			off := ix.idOff[b]
			return PostingRef{Off: off, Len: ix.idOff[b+1] - off}, true
		}
	}
}

// RefIDs returns the posting list a PathRef resolved to — a read-only
// view into the CSR arena, or a freshly decoded slice on a cold index.
// Hot paths that may see cold indexes should prefer RefIDsBuf.
func (ix *Index) RefIDs(r PostingRef) []int32 {
	if ix.cold != nil {
		return ix.AppendRefIDs(nil, r)
	}
	return ix.ids[r.Off : r.Off+r.Len]
}

// postings returns the ids sharing the path, or nil.
func (ix *Index) postings(path []uint32) []int32 {
	r, ok := ix.PathRef(path)
	if !ok {
		return nil
	}
	return ix.RefIDs(r)
}

// Postings returns the posting list of the exact path as a read-only view
// into the CSR arena, or nil when no indexed vector chose it. It is the
// segment-facing probe: the segmented index (internal/segment) computes
// F(q) once and probes every frozen segment per path instead of paying
// one full traversal per segment.
func (ix *Index) Postings(path []uint32) []int32 { return ix.postings(path) }

// ForEachBucket visits every (path, posting list) bucket of the frozen
// index. Both slices are views into the arenas and must not be modified
// or retained across calls. Bucket order is the internal bucket
// numbering (first-insertion order), not sorted; callers needing a
// deterministic order must sort (see WriteTo). This is the replay hook
// segment compaction uses to merge frozen segments without recomputing
// any filters.
func (ix *Index) ForEachBucket(fn func(path []uint32, ids []int32)) {
	if ix.cold != nil {
		var scratch []int32
		for b := range ix.pathSpans {
			b := int32(b)
			var err error
			if scratch, err = ix.appendColdBucket(scratch[:0], b); err != nil {
				panic(err) // unreachable: validated at open
			}
			fn(ix.bucketPath(b), scratch)
		}
		return
	}
	for b := range ix.pathSpans {
		b := int32(b)
		fn(ix.bucketPath(b), ix.bucketIDs(b))
	}
}

// BuildStats summarizes index construction work, the empirical counterpart
// of the preprocessing bound of Lemma 9/12.
type BuildStats struct {
	Vectors      int
	TotalFilters int // Σ_x |F(x)|
	Buckets      int // distinct paths
	Truncated    int // vectors whose filter sets hit the work budget
}

// posting is one (bucket, id) occurrence recorded during construction;
// the freeze step counting-sorts these into the CSR arrays.
type posting struct {
	bucket int32
	id     int32
}

// indexBuilder accumulates the mutable state of index construction: a
// hash→bucket map with explicit collision chains, the (already final)
// path arena, and a flat posting log. Everything is a handful of large
// growable slices — the only per-bucket cost is one Span and one chain
// link, not a heap object.
type indexBuilder struct {
	engine    *Engine
	data      []bitvec.Vector
	byHash    map[uint64]int32 // path hash -> head of bucket chain
	chain     []int32          // per bucket: next bucket with same hash, -1 = end
	keys      []uint64         // per bucket: path hash
	pathSpans []Span
	pathElems []uint32
	postings  []posting

	totalFilters   int
	truncatedCount int
}

func newIndexBuilder(engine *Engine, data []bitvec.Vector) *indexBuilder {
	return &indexBuilder{
		engine: engine,
		data:   data,
		byHash: make(map[uint64]int32, len(data)*2),
	}
}

// bucketFor returns the bucket number for path, creating it (and copying
// the path into the arena) if new.
func (b *indexBuilder) bucketFor(path []uint32) int32 {
	h := HashPath(path)
	head, ok := b.byHash[h]
	if ok {
		for bi := head; bi >= 0; bi = b.chain[bi] {
			s := b.pathSpans[bi]
			if pathsEqual(b.pathElems[s.Off:s.Off+s.Len], path) {
				return bi
			}
		}
	} else {
		head = -1
	}
	bi := int32(len(b.keys))
	b.keys = append(b.keys, h)
	b.chain = append(b.chain, head)
	b.byHash[h] = bi
	if uint64(len(b.pathElems))+uint64(len(path)) > math.MaxUint32 {
		// Span offsets are uint32; wrapping would silently alias earlier
		// paths. Fail loudly — an index this size needs the sharded layout.
		panic("lsf: path element arena exceeds 2^32 entries")
	}
	off := uint32(len(b.pathElems))
	b.pathElems = append(b.pathElems, path...)
	b.pathSpans = append(b.pathSpans, Span{Off: off, Len: uint32(len(path))})
	return bi
}

// insert appends id to the bucket of path, creating the bucket as needed.
// The path is copied into the arena, never retained.
func (b *indexBuilder) insert(path []uint32, id int32) {
	b.postings = append(b.postings, posting{bucket: b.bucketFor(path), id: id})
}

// insertBucket installs a whole posting list at once (the
// deserialization path and the exported Builder). A repeated path
// appends to its existing bucket, which is what segment compaction
// relies on when the same path arrives from several source segments.
func (b *indexBuilder) insertBucket(path []uint32, ids []int32) {
	bi := b.bucketFor(path)
	for _, id := range ids {
		b.postings = append(b.postings, posting{bucket: bi, id: id})
	}
}

// addFilterSet inserts one vector's filters, updating build statistics.
func (b *indexBuilder) addFilterSet(id int32, fs *FilterSet) {
	if fs.Truncated {
		b.truncatedCount++
	}
	for k := 0; k < fs.Len(); k++ {
		b.insert(fs.Path(k), id)
	}
	b.totalFilters += fs.Len()
}

// freeze counting-sorts the posting log into CSR form, builds the
// open-addressing key table at load factor ≤ 1/2, and returns the
// immutable index. Posting order within a bucket is insertion order
// (the scatter below is stable), so results are identical to walking
// the old chained buckets.
func (b *indexBuilder) freeze() *Index {
	nb := len(b.keys)
	if uint64(len(b.postings)) > math.MaxUint32 {
		// CSR offsets are uint32; see the matching guard in bucketFor.
		panic("lsf: posting log exceeds 2^32 entries")
	}
	idOff := make([]uint32, nb+1)
	for _, p := range b.postings {
		idOff[p.bucket+1]++
	}
	for i := 0; i < nb; i++ {
		idOff[i+1] += idOff[i]
	}
	ids := make([]int32, len(b.postings))
	cursor := make([]uint32, nb)
	copy(cursor, idOff[:nb])
	for _, p := range b.postings {
		ids[cursor[p.bucket]] = p.id
		cursor[p.bucket]++
	}

	size := 4
	for size < 2*nb {
		size <<= 1
	}
	mask := uint64(size - 1)
	tableKeys := make([]uint64, size)
	tableIdx := make([]int32, size)
	for i := range tableIdx {
		tableIdx[i] = -1
	}
	for bi := 0; bi < nb; bi++ {
		slot := b.keys[bi] & mask
		for tableIdx[slot] >= 0 {
			slot = (slot + 1) & mask
		}
		tableIdx[slot] = int32(bi)
		tableKeys[slot] = b.keys[bi]
	}

	return &Index{
		engine:         b.engine,
		data:           b.data,
		tableKeys:      tableKeys,
		tableIdx:       tableIdx,
		tableMask:      mask,
		pathSpans:      b.pathSpans,
		pathElems:      b.pathElems,
		idOff:          idOff,
		ids:            ids,
		totalFilters:   b.totalFilters,
		truncatedCount: b.truncatedCount,
	}
}

// BuildIndex computes F(x) for every data vector and constructs the
// inverted index. The data slice is retained (not copied). One FilterSet
// arena is reused across all vectors, so filter generation allocates
// nothing after warm-up; the builder's arenas grow amortized.
func BuildIndex(engine *Engine, data []bitvec.Vector) (*Index, error) {
	if engine == nil {
		return nil, errors.New("lsf: nil engine")
	}
	b := newIndexBuilder(engine, data)
	var fs FilterSet
	for id, x := range data {
		fs.Reset()
		engine.FiltersInto(x, &fs)
		b.addFilterSet(int32(id), &fs)
	}
	return b.freeze(), nil
}

// Stats returns construction statistics.
func (ix *Index) Stats() BuildStats {
	return BuildStats{
		Vectors:      len(ix.data),
		TotalFilters: ix.totalFilters,
		Buckets:      len(ix.pathSpans),
		Truncated:    ix.truncatedCount,
	}
}

// Data returns the indexed vectors.
func (ix *Index) Data() []bitvec.Vector { return ix.data }

// QueryStats records the work done by one query, the unit in which the
// scaling experiments measure n^ρ.
type QueryStats struct {
	// Filters is |F(q)|.
	Filters int
	// Candidates counts candidate occurrences over all filters of q, i.e.
	// Σ_{f∈F(q)} |{x : f ∈ F(x)}| — the quantity bounded by Lemma 7.
	Candidates int
	// Distinct counts distinct candidates verified.
	Distinct int
	// Truncated reports the query's filter generation hit the budget.
	Truncated bool
}

// Visited deduplicates candidate ids with an epoch-stamped array: reset
// is O(1) (bump the epoch) instead of O(distinct) map clearing, and
// membership is a single array load. The zero value is ready to use.
// Exported so the layers above (SkewSearch repetitions, the baselines,
// the split-search driver) share one dedup mechanism instead of
// allocating a map per query.
type Visited struct {
	stamp []uint32
	epoch uint32
}

// Begin prepares the set for a pass over ids in [0, n), forgetting any
// previous pass in O(1).
func (v *Visited) Begin(n int) {
	if cap(v.stamp) < n {
		// A fresh slice is already zeroed; start the epoch sequence over.
		v.stamp = make([]uint32, n)
		v.epoch = 1
		return
	}
	v.stamp = v.stamp[:n]
	v.epoch++
	if v.epoch == 0 {
		// Wrapped: stamps from 2^32 passes ago could alias the new epoch.
		// Clear the full capacity, not just the current length — a later
		// Begin with a larger n would otherwise see pre-wrap stamps.
		clear(v.stamp[:cap(v.stamp)])
		v.epoch = 1
	}
}

// FirstVisit reports whether id is new this pass, marking it visited.
func (v *Visited) FirstVisit(id int32) bool {
	if v.stamp[id] == v.epoch {
		return false
	}
	v.stamp[id] = v.epoch
	return true
}

// VisitedPool recycles Visited sets so concurrent queries each get their
// own and steady-state queries allocate nothing for dedup. The zero
// value is ready to use; every consumer of Visited in this codebase
// (lsf, core, the baselines, splitsearch) shares this one implementation.
type VisitedPool struct {
	pool sync.Pool
}

// Get returns a Visited ready for a pass over ids in [0, n).
func (p *VisitedPool) Get(n int) *Visited {
	v, _ := p.pool.Get().(*Visited)
	if v == nil {
		v = &Visited{}
	}
	v.Begin(n)
	return v
}

// Put returns the set to the pool.
func (p *VisitedPool) Put(v *Visited) { p.pool.Put(v) }

// resolveRefs probes the key table for filters [from, to) of fs,
// appending the posting span of each indexed path to dst in filter
// order. Unindexed paths contribute nothing (their posting lists are
// empty). Batching the probes separates traversal's pointer-chasing
// phase (hash-table lookups, scattered loads) from its sequential phase
// (walking id spans), so each runs back to back instead of alternating
// per bucket.
func (ix *Index) resolveRefs(dst []PostingRef, fs *FilterSet, from, to int) []PostingRef {
	for k := from; k < to; k++ {
		if r, ok := ix.PathRef(fs.Path(k)); ok && r.Len > 0 {
			dst = append(dst, r)
		}
	}
	return dst
}

// refBlock is the stride of the blocked traversal: how many filters are
// resolved to posting spans before those spans are walked. Large enough
// that the probe and walk phases each run over dozens of buckets in a
// tight loop, small enough that a threshold query's early exit wastes
// at most one block of probes.
const refBlock = 64

// traverse is the single candidate-traversal implementation behind every
// query entry point. It computes F(q) once (into a pooled arena), then
// alternates two phases per block of refBlock filters: resolve the
// block's buckets to posting spans back to back (the cache-hostile hash
// probes), then walk the resolved CSR spans in filter order,
// deduplicating ids and streaming each distinct candidate into sink in
// first-encounter order (sequential arena reads). The blocking changes
// no observable behaviour: spans are walked in exactly the order the
// fused probe-then-walk-per-bucket loop visited them. The sink returns
// false to stop early (the threshold query's early exit); stats always
// reflect exactly the work performed up to the stop.
//
// cc, when non-nil, is a cooperative cancellation checkpoint polled
// during filter generation and once per block of resolved posting
// spans — coarse enough that the nil (no-deadline) path pays one
// pointer compare per block, fine enough that a canceled query stops
// within one block's span walk. A canceled traversal leaves stats
// reflecting the work actually performed; callers distinguish it from
// a sink-initiated early stop through cc.Err().
func (ix *Index) traverse(q bitvec.Vector, stats *QueryStats, cc *CancelCheck, sink func(id int32) bool) {
	fs, _ := ix.fsPool.Get().(*FilterSet)
	if fs == nil {
		fs = new(FilterSet)
	}
	defer ix.fsPool.Put(fs)
	fs.Reset()
	ix.engine.FiltersIntoCancel(q, fs, cc)
	stats.Filters = fs.Len()
	stats.Truncated = fs.Truncated
	if fs.Len() == 0 || cc.Err() != nil {
		return
	}
	rs, _ := ix.refPool.Get().(*[refBlock]PostingRef)
	if rs == nil {
		rs = new([refBlock]PostingRef)
	}
	defer ix.refPool.Put(rs)
	vis := ix.visitPool.Get(len(ix.data))
	defer ix.visitPool.Put(vis)
	var coldBuf *[]int32
	if ix.cold != nil {
		coldBuf, _ = ix.coldPool.Get().(*[]int32)
		if coldBuf == nil {
			coldBuf = new([]int32)
		}
		defer ix.coldPool.Put(coldBuf)
	}
	for base := 0; base < fs.Len(); base += refBlock {
		if cc != nil && cc.Check() {
			return
		}
		end := base + refBlock
		if end > fs.Len() {
			end = fs.Len()
		}
		refs := ix.resolveRefs(rs[:0], fs, base, end)
		for _, r := range refs {
			var ids []int32
			if coldBuf != nil {
				ids = ix.RefIDsBuf(r, coldBuf)
			} else {
				ids = ix.ids[r.Off : r.Off+r.Len]
			}
			for _, id := range ids {
				stats.Candidates++
				if !vis.FirstVisit(id) {
					continue
				}
				stats.Distinct++
				if !sink(id) {
					return
				}
			}
		}
	}
}

// AppendFilterRefs computes F(q) into fs (resetting it first) and
// appends the resolved posting span of every indexed filter to refs, in
// filter order. It returns the grown refs slice plus the filter count
// and truncation flag of the generation. Walking the returned refs
// through RefIDs streams exactly the candidate occurrences, in exactly
// the order, that ForEachCandidate would deliver — the batch executor
// uses this to run filter generation and bucket resolution for many
// queries back to back while keeping per-query results bit-identical to
// the single-query path.
func (ix *Index) AppendFilterRefs(q bitvec.Vector, fs *FilterSet, refs []PostingRef) (_ []PostingRef, filters int, truncated bool) {
	fs.Reset()
	ix.engine.FiltersInto(q, fs)
	return ix.resolveRefs(refs, fs, 0, fs.Len()), fs.Len(), fs.Truncated
}

// ForEachCandidate streams the distinct data ids sharing at least one
// filter with q into sink, in first-encounter order, until sink returns
// false. It is the exported form of the traversal core, letting the
// layers above (cross-repetition dedup in core, the baselines) consume
// candidates without materializing per-repetition slices.
func (ix *Index) ForEachCandidate(q bitvec.Vector, sink func(id int32) bool) QueryStats {
	var stats QueryStats
	ix.traverse(q, &stats, nil, sink)
	return stats
}

// ForEachCandidateCancel is ForEachCandidate with a cooperative
// cancellation checkpoint threaded into the traversal loops (polled
// during filter generation and once per posting block). The returned
// error is non-nil exactly when the traversal was cut short by cc; the
// stats then reflect the work actually performed. A nil cc never
// cancels.
func (ix *Index) ForEachCandidateCancel(q bitvec.Vector, cc *CancelCheck, sink func(id int32) bool) (QueryStats, error) {
	var stats QueryStats
	ix.traverse(q, &stats, cc, sink)
	return stats, cc.Err()
}

// UsePacked attaches a word-packed form of the index's data, aligned
// with it by id, switching candidate verification in Query/QueryBest to
// popcount intersection. The packing is built once per dataset and
// shared across all repetitions of a SkewSearch index (core attaches the
// same set to every repetition), instead of once per repetition.
// Results are bit-identical with or without it.
func (ix *Index) UsePacked(ps *bitvec.PackedSet) { ix.packed = ps }

// Packed returns the attached packed dataset, or nil.
func (ix *Index) Packed() *bitvec.PackedSet { return ix.packed }

// Query returns the first indexed vector with measure-similarity at least
// threshold among the candidates sharing a filter with q, following the
// paper's query procedure. found reports whether any candidate passed.
// Verification goes through a pooled verify.Session: the query is packed
// once, and candidates are threshold-pruned before their intersection is
// computed.
func (ix *Index) Query(q bitvec.Vector, threshold float64, m bitvec.Measure) (best int, sim float64, stats QueryStats, found bool) {
	best, sim = -1, 0
	if ix.packed == nil {
		// No packed data (baseline instantiations like chosenpath):
		// verify straight off the sorted slices, paying no session.
		ix.traverse(q, &stats, nil, func(id int32) bool {
			if s := m.Similarity(q, ix.data[id]); s >= threshold {
				best, sim, found = int(id), s, true
				return false
			}
			return true
		})
		return best, sim, stats, found
	}
	ses := verify.Acquire(m, q)
	defer verify.Release(ses)
	ix.traverse(q, &stats, nil, func(id int32) bool {
		if s, ok := ses.AtLeast(ix.packed, ix.data, id, threshold); ok {
			best, sim, found = int(id), s, true
			return false
		}
		return true
	})
	return best, sim, stats, found
}

// QueryBest examines every candidate (instead of stopping at the first
// above threshold) and returns the most similar one. Used by the join
// driver and by experiments that need exact candidate-set behaviour.
// Each candidate is pruned against the running best before its
// intersection is computed.
func (ix *Index) QueryBest(q bitvec.Vector, m bitvec.Measure) (best int, sim float64, stats QueryStats, found bool) {
	best, sim = -1, -1
	if ix.packed == nil {
		ix.traverse(q, &stats, nil, func(id int32) bool {
			if s := m.Similarity(q, ix.data[id]); s > sim {
				best, sim = int(id), s
			}
			return true
		})
	} else {
		ses := verify.Acquire(m, q)
		defer verify.Release(ses)
		ix.traverse(q, &stats, nil, func(id int32) bool {
			if s, ok := ses.MoreThan(ix.packed, ix.data, id, sim); ok {
				best, sim = int(id), s
			}
			return true
		})
	}
	if best < 0 {
		return -1, 0, stats, false
	}
	return best, sim, stats, true
}

// CandidateIDs returns the distinct data ids sharing at least one filter
// with q, plus stats. Exposed for experiments that analyze candidate sets
// directly.
func (ix *Index) CandidateIDs(q bitvec.Vector) ([]int32, QueryStats) {
	return ix.AppendCandidateIDs(nil, q)
}

// AppendCandidateIDs is CandidateIDs appending into dst (which may be
// nil), so callers looping over queries can reuse one buffer and keep the
// traversal allocation-free in steady state.
func (ix *Index) AppendCandidateIDs(dst []int32, q bitvec.Vector) ([]int32, QueryStats) {
	var stats QueryStats
	ix.traverse(q, &stats, nil, func(id int32) bool {
		dst = append(dst, id)
		return true
	})
	return dst, stats
}
