package lsf

import (
	"math"
	"testing"
	"testing/quick"

	"skewsim/internal/bitvec"
	"skewsim/internal/hashing"
)

// TestPropertyFilterInvariantsRandomConfigs re-checks the structural
// invariants of F(x) under randomized engine configurations: random
// probabilities, random constant thresholds, random vectors and dataset
// sizes. For every emitted path: (1) elements are distinct, (2) all lie
// in x, (3) the accumulated ∏p is ≤ 1/n, and (4) the path is minimal
// (its proper prefix is not yet below 1/n).
func TestPropertyFilterInvariantsRandomConfigs(t *testing.T) {
	f := func(seed uint64) bool {
		rng := hashing.NewSplitMix64(seed)
		n := 50 + int(rng.NextBelow(2000))
		dim := 16 + int(rng.NextBelow(128))
		probs := make([]float64, dim)
		for i := range probs {
			probs[i] = 0.01 + 0.49*rng.NextUnit()
		}
		s := rng.NextUnit() * 0.9
		e, err := NewEngine(n, Params{
			Seed:                rng.Next(),
			Probs:               probs,
			Threshold:           constThreshold(s),
			Stop:                ProductStopRule(n),
			MaxFiltersPerVector: 5000,
		})
		if err != nil {
			return false
		}
		// Random vector over the universe.
		var bits []uint32
		for i := 0; i < dim; i++ {
			if rng.NextUnit() < 0.3 {
				bits = append(bits, uint32(i))
			}
		}
		x := bitvec.New(bits...)
		fs := e.Filters(x)
		logN := math.Log(float64(n))
		for _, path := range fs.Paths {
			seen := map[uint32]bool{}
			logInv := 0.0
			for k, el := range path {
				if seen[el] || !x.Contains(el) {
					return false
				}
				seen[el] = true
				prefixComplete := logInv >= logN
				if prefixComplete {
					return false // continued past completion
				}
				logInv += -math.Log(probs[el])
				if k == len(path)-1 && logInv < logN {
					return false // emitted before completion
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyQuerySubsetMonotonicity: the candidate set of a query can
// only come from buckets keyed by paths inside the query; a query that
// is a superset of another (with equal engine) must reproduce at least
// the subset's own shared-with-itself filters. Concretely we verify the
// weaker but exact property that F(q) for q ⊆ x is a subset of the paths
// over elements of q, hence every candidate sharing a path with q also
// shares those elements.
func TestPropertyQueryCandidatesShareElements(t *testing.T) {
	f := func(seed uint64) bool {
		rng := hashing.NewSplitMix64(seed)
		n := 100
		dim := 64
		probs := make([]float64, dim)
		for i := range probs {
			probs[i] = 0.05 + 0.3*rng.NextUnit()
		}
		e, err := NewEngine(n, Params{
			Seed:      rng.Next(),
			Probs:     probs,
			Threshold: constThreshold(0.4),
			Stop:      ProductStopRule(n),
		})
		if err != nil {
			return false
		}
		// Dataset of a few random vectors.
		data := make([]bitvec.Vector, 20)
		for v := range data {
			var bits []uint32
			for i := 0; i < dim; i++ {
				if rng.NextUnit() < 0.25 {
					bits = append(bits, uint32(i))
				}
			}
			data[v] = bitvec.New(bits...)
		}
		ix, err := BuildIndex(e, data)
		if err != nil {
			return false
		}
		var qbits []uint32
		for i := 0; i < dim; i++ {
			if rng.NextUnit() < 0.25 {
				qbits = append(qbits, uint32(i))
			}
		}
		q := bitvec.New(qbits...)
		ids, _ := ix.CandidateIDs(q)
		for _, id := range ids {
			// A shared filter is a path inside both vectors, so the
			// intersection must be non-empty.
			if data[id].IntersectionSize(q) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
