package lsf

import (
	"errors"
	"slices"
	"testing"

	"skewsim/internal/hashing"
)

func TestPostingCodecRoundTrip(t *testing.T) {
	rng := hashing.NewSplitMix64(7)
	cases := [][]int32{
		nil,
		{0},
		{5},
		{0, 1, 2, 3},
		{1000000, 0, 999999, 1}, // out of order: deltas go negative
		{7, 7, 7, 7},            // duplicates (zero deltas)
	}
	for c := 0; c < 50; c++ {
		n := int(rng.NextBelow(300))
		ids := make([]int32, n)
		for i := range ids {
			ids[i] = int32(rng.NextBelow(1 << 20))
		}
		cases = append(cases, ids)
	}
	for ci, ids := range cases {
		enc := AppendPostings(nil, ids)
		got, err := DecodePostings(nil, enc, len(ids), 1<<20)
		if err != nil {
			t.Fatalf("case %d: decode: %v", ci, err)
		}
		if !slices.Equal(got, ids) {
			t.Fatalf("case %d: round trip %v != %v", ci, got, ids)
		}
		// Appending onto a non-empty dst must preserve the prefix.
		prefix := []int32{42, 43}
		got2, err := DecodePostings(slices.Clone(prefix), enc, len(ids), 1<<20)
		if err != nil {
			t.Fatalf("case %d: decode with prefix: %v", ci, err)
		}
		if !slices.Equal(got2[:2], prefix) || !slices.Equal(got2[2:], ids) {
			t.Fatalf("case %d: prefix decode corrupted: %v", ci, got2)
		}
	}
}

func TestPostingCodecErrors(t *testing.T) {
	ids := []int32{3, 1, 4, 1, 5, 9, 2, 6}
	enc := AppendPostings(nil, ids)
	fail := func(name string, src []byte, count int, maxID int32) {
		t.Helper()
		if _, err := DecodePostings(nil, src, count, maxID); !errors.Is(err, ErrPostingCodec) {
			t.Fatalf("%s: got %v, want ErrPostingCodec", name, err)
		}
	}
	fail("truncated", enc[:len(enc)-1], len(ids), 100)
	fail("trailing bytes", append(slices.Clone(enc), 0x00), len(ids), 100)
	fail("count too high", enc, len(ids)+1, 100)
	fail("count too low", enc, len(ids)-1, 100)
	fail("id out of range", enc, len(ids), 9) // max id present is 9, limit is exclusive
	// A varint continuing past 32 bits must be rejected, not wrapped.
	fail("overlong varint", []byte{0xff, 0xff, 0xff, 0xff, 0x7f}, 1, 0)
	if _, err := DecodePostings(nil, enc, len(ids), 0); err != nil {
		t.Fatalf("maxID 0 disables the range check: %v", err)
	}
}

// FuzzPostingCodec drives both directions: hostile byte strings must
// error cleanly (never panic, never allocate beyond the declared
// count), and whatever decodes must re-encode to bytes that decode to
// the same list.
func FuzzPostingCodec(f *testing.F) {
	f.Add([]byte{}, uint16(0))
	f.Add(AppendPostings(nil, []int32{0, 1, 2}), uint16(3))
	f.Add(AppendPostings(nil, []int32{1 << 20, 0, 55}), uint16(3))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x7f}, uint16(1))
	f.Add([]byte{0x80}, uint16(1))
	f.Fuzz(func(t *testing.T, src []byte, count16 uint16) {
		count := int(count16)
		ids, err := DecodePostings(nil, src, count, 0)
		if err != nil {
			return
		}
		if len(ids) != count {
			t.Fatalf("decoded %d ids for a declared count of %d", len(ids), count)
		}
		enc := AppendPostings(nil, ids)
		ids2, err := DecodePostings(nil, enc, count, 0)
		if err != nil {
			t.Fatalf("re-decode of re-encoded bytes failed: %v", err)
		}
		if !slices.Equal(ids, ids2) {
			t.Fatalf("re-encode round trip diverged: %v != %v", ids2, ids)
		}
	})
}

func BenchmarkPostingDecode(b *testing.B) {
	rng := hashing.NewSplitMix64(11)
	// Sorted ascending ids — the layout freeze actually produces — over
	// a dense local-id space, the best case for delta coding.
	const n = 4096
	ids := make([]int32, n)
	next := int32(0)
	for i := range ids {
		next += int32(rng.NextBelow(8))
		ids[i] = next
	}
	enc := AppendPostings(nil, ids)
	b.SetBytes(int64(n * 4))
	var buf []int32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = DecodePostings(buf[:0], enc, n, next+1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(enc))/float64(n*4), "compressed-ratio")
}
