package lsf

import (
	"math"
	"testing"

	"skewsim/internal/bitvec"
	"skewsim/internal/hashing"
)

func TestIndependentWeigherMatchesProbs(t *testing.T) {
	w := independentWeigher{probs: []float64{0.5, 0.25, 0}}
	if got := w.LogInvP(nil, 0); math.Abs(got-math.Ln2) > 1e-12 {
		t.Errorf("LogInvP(0) = %v", got)
	}
	if got := w.LogInvP([]uint32{0}, 1); math.Abs(got-2*math.Ln2) > 1e-12 {
		t.Errorf("LogInvP(1) = %v (must ignore the path)", got)
	}
	if !math.IsInf(w.LogInvP(nil, 2), 1) {
		t.Error("zero probability should be infinitely rare")
	}
	if !math.IsInf(w.LogInvP(nil, 9), 1) {
		t.Error("out-of-range should be infinitely rare")
	}
}

func TestNewClusterWeigherValidation(t *testing.T) {
	if _, err := NewClusterWeigher([]float64{0.1}, []int32{0, 1}, 0.5); err == nil {
		t.Error("length mismatch should fail")
	}
	for _, c := range []float64{0, -1, 1.5} {
		if _, err := NewClusterWeigher([]float64{0.1}, []int32{0}, c); err == nil {
			t.Errorf("condP=%v should fail", c)
		}
	}
}

func TestClusterWeigherConditionalAccounting(t *testing.T) {
	probs := []float64{0.1, 0.1, 0.1, 0.2}
	cluster := []int32{0, 0, 1, -1}
	w, err := NewClusterWeigher(probs, cluster, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	full := -math.Log(0.1)
	cond := -math.Log(0.8)

	// First cluster member: full price.
	if got := w.LogInvP(nil, 0); math.Abs(got-full) > 1e-12 {
		t.Errorf("first member = %v, want %v", got, full)
	}
	// Sibling already on the path: conditional price.
	if got := w.LogInvP([]uint32{0}, 1); math.Abs(got-cond) > 1e-12 {
		t.Errorf("sibling = %v, want %v", got, cond)
	}
	// Different cluster: full price.
	if got := w.LogInvP([]uint32{0}, 2); math.Abs(got-full) > 1e-12 {
		t.Errorf("other cluster = %v, want %v", got, full)
	}
	// Unclustered item is never discounted.
	if got := w.LogInvP([]uint32{0, 1, 2}, 3); math.Abs(got-(-math.Log(0.2))) > 1e-12 {
		t.Errorf("unclustered = %v", got)
	}
	// Out-of-range.
	if !math.IsInf(w.LogInvP(nil, 99), 1) {
		t.Error("out-of-range should be infinitely rare")
	}
}

func TestClusterWeigherPerfectCorrelationNeverCompletesOnOneCluster(t *testing.T) {
	// With condP = 1 a second same-cluster item adds zero information, so
	// a path inside a single cluster can never reach the stopping bar no
	// matter how many members it collects.
	const n = 1000
	probs := make([]float64, 8)
	cluster := make([]int32, 8)
	for i := range probs {
		probs[i] = 0.01 // individually rare: ln(1/p) = 4.6, ln n = 6.9
		cluster[i] = 0  // all one cluster
	}
	w, err := NewClusterWeigher(probs, cluster, 1)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(n, Params{
		Seed:      1,
		Probs:     probs,
		Threshold: constThreshold(1),
		Stop:      ProductStopRule(n),
		Weigher:   w,
	})
	if err != nil {
		t.Fatal(err)
	}
	x := bitvec.New(0, 1, 2, 3, 4, 5, 6, 7)
	fs := e.Filters(x)
	if len(fs.Paths) != 0 {
		t.Errorf("single-cluster paths completed %d filters; they carry at most ln(1/p) evidence", len(fs.Paths))
	}
}

// TestClusterAwareReducesSpuriousCollisions is the §9 extension's
// headline property: on data with perfectly co-occurring item pairs, the
// vanilla independent rule certifies paths inside one pair as
// 1/n-rare (p² ≤ 1/n) even though a fraction p of all vectors contains
// them, flooding buckets; the cluster-aware rule demands evidence from
// distinct pairs and collapses the candidate volume.
func TestClusterAwareReducesSpuriousCollisions(t *testing.T) {
	const (
		n        = 600
		clusters = 100
		size     = 8    // items per cluster
		pAct     = 0.02 // cluster activation; items individually look 1/50-rare
	)
	// Vanilla accounting: two same-cluster items "weigh" p² = 4e-4 ≤
	// 1/600, so such paths complete — yet 2% of all vectors contain
	// them, so their buckets hold ~12 vectors instead of O(1). With ~2
	// active clusters of 8 items per vector, about half of all length-2
	// paths are same-cluster, so the blowup dominates query cost.
	dim := clusters * size
	probs := make([]float64, dim)
	cluster := make([]int32, dim)
	for j := 0; j < clusters; j++ {
		for k := 0; k < size; k++ {
			probs[j*size+k] = pAct
			cluster[j*size+k] = int32(j)
		}
	}
	// Generate data: each cluster fully on or off.
	rng := hashing.NewSplitMix64(33)
	data := make([]bitvec.Vector, n)
	for v := range data {
		var bits []uint32
		for j := 0; j < clusters; j++ {
			if rng.NextUnit() < pAct {
				for k := 0; k < size; k++ {
					bits = append(bits, uint32(j*size+k))
				}
			}
		}
		data[v] = bitvec.FromSorted(bits)
	}

	threshold := func(x bitvec.Vector, j int, _ uint32) float64 {
		denom := 0.6*float64(x.Len()) - float64(j)
		if denom <= 1 {
			return 1
		}
		return 1 / denom
	}
	build := func(weigher PathWeigher) *Index {
		e, err := NewEngine(n, Params{
			Seed: 5, Probs: probs, Threshold: threshold,
			Stop: ProductStopRule(n), Weigher: weigher,
		})
		if err != nil {
			t.Fatal(err)
		}
		ix, err := BuildIndex(e, data)
		if err != nil {
			t.Fatal(err)
		}
		return ix
	}
	cw, err := NewClusterWeigher(probs, cluster, 0.999)
	if err != nil {
		t.Fatal(err)
	}
	vanilla := build(nil)
	aware := build(cw)

	vanillaCand, awareCand := 0, 0
	for _, q := range data[:50] {
		_, sv := vanilla.CandidateIDs(q)
		vanillaCand += sv.Candidates
		_, sa := aware.CandidateIDs(q)
		awareCand += sa.Candidates
	}
	t.Logf("candidates: vanilla %d, cluster-aware %d", vanillaCand, awareCand)
	if vanillaCand < 2*awareCand {
		t.Errorf("cluster-aware rule should cut candidates at least 2x: vanilla %d vs aware %d",
			vanillaCand, awareCand)
	}
}
