package lsf

import (
	"testing"

	"skewsim/internal/bitvec"
	"skewsim/internal/dist"
	"skewsim/internal/hashing"
)

func buildTestIndex(t *testing.T, seed uint64) (*Index, []bitvec.Vector) {
	t.Helper()
	n := 200
	p := 0.2
	d := dist.MustProduct(dist.Uniform(120, p))
	rng := hashing.NewSplitMix64(seed)
	data := d.SampleN(rng, n)
	e, err := NewEngine(n, Params{
		Seed:  seed,
		Probs: d.Probs(),
		Threshold: func(v bitvec.Vector, j int, i uint32) float64 {
			denom := 0.7*float64(v.Len()) - float64(j)
			if denom <= 1 {
				return 1
			}
			return 1 / denom
		},
		Stop: ProductStopRule(n),
	})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildIndex(e, data)
	if err != nil {
		t.Fatal(err)
	}
	return ix, data
}

func TestBuildIndexNilEngine(t *testing.T) {
	if _, err := BuildIndex(nil, nil); err == nil {
		t.Fatal("nil engine should fail")
	}
}

func TestBuildIndexStats(t *testing.T) {
	ix, data := buildTestIndex(t, 1)
	st := ix.Stats()
	if st.Vectors != len(data) {
		t.Errorf("Vectors = %d", st.Vectors)
	}
	if st.TotalFilters <= 0 || st.Buckets <= 0 {
		t.Errorf("degenerate stats: %+v", st)
	}
	if st.Buckets > st.TotalFilters {
		t.Errorf("more buckets than filters: %+v", st)
	}
	if st.Truncated != 0 {
		t.Errorf("unexpected truncations: %+v", st)
	}
	if len(ix.Data()) != len(data) {
		t.Error("Data() length mismatch")
	}
}

func TestQuerySelfRetrieval(t *testing.T) {
	// Querying with an indexed vector itself must find it whenever it has
	// at least one filter: F(q) = F(x) exactly.
	ix, data := buildTestIndex(t, 2)
	foundCount, withFilters := 0, 0
	for id, x := range data {
		if x.IsEmpty() {
			continue
		}
		best, sim, stats, found := ix.Query(x, 1.0, bitvec.BraunBlanquetMeasure)
		if stats.Filters == 0 {
			continue
		}
		withFilters++
		if !found {
			t.Errorf("vector %d has %d filters but was not self-retrieved", id, stats.Filters)
			continue
		}
		foundCount++
		if sim < 1.0-1e-9 {
			t.Errorf("self-similarity = %v", sim)
		}
		if !data[best].Equal(x) {
			t.Errorf("retrieved %d instead of an identical vector", best)
		}
	}
	if withFilters == 0 {
		t.Fatal("no vector had filters; test configuration broken")
	}
	if foundCount != withFilters {
		t.Errorf("self-retrieval %d/%d", foundCount, withFilters)
	}
}

func TestQueryNoMatchReturnsNotFound(t *testing.T) {
	ix, _ := buildTestIndex(t, 3)
	// A query over a disjoint region of the universe shares no filters.
	q := bitvec.New(200, 201, 202, 203)
	best, sim, stats, found := ix.Query(q, 0.1, bitvec.BraunBlanquetMeasure)
	if found || best != -1 || sim != 0 {
		t.Errorf("expected not-found, got %d, %v", best, sim)
	}
	if stats.Candidates != 0 {
		t.Errorf("disjoint query examined %d candidates", stats.Candidates)
	}
}

func TestQueryStatsConsistency(t *testing.T) {
	ix, data := buildTestIndex(t, 4)
	for _, q := range data[:50] {
		_, _, stats, _ := ix.Query(q, 2.0, bitvec.BraunBlanquetMeasure) // impossible threshold: exhaustive walk
		if stats.Distinct > stats.Candidates {
			t.Errorf("distinct %d > candidates %d", stats.Distinct, stats.Candidates)
		}
		if stats.Distinct > len(data) {
			t.Errorf("distinct %d > n", stats.Distinct)
		}
	}
}

func TestQueryBestFindsMostSimilar(t *testing.T) {
	ix, data := buildTestIndex(t, 5)
	for _, q := range data[:30] {
		if q.IsEmpty() {
			continue
		}
		best, sim, _, found := ix.QueryBest(q, bitvec.BraunBlanquetMeasure)
		if !found {
			continue
		}
		// QueryBest must return the true maximum over its candidate set;
		// since q itself is indexed and F(q)=F(x), the best is sim=1.
		if sim < 1.0-1e-9 {
			t.Errorf("QueryBest(self) similarity %v; best id %d", sim, best)
		}
	}
}

func TestQueryBestNoCandidates(t *testing.T) {
	ix, _ := buildTestIndex(t, 6)
	_, _, _, found := ix.QueryBest(bitvec.New(300, 301), bitvec.BraunBlanquetMeasure)
	if found {
		t.Error("expected no candidates for disjoint query")
	}
}

func TestCandidateIDsMatchesQueryAccounting(t *testing.T) {
	ix, data := buildTestIndex(t, 7)
	for _, q := range data[:30] {
		ids, stats := ix.CandidateIDs(q)
		if len(ids) != stats.Distinct {
			t.Errorf("ids %d vs distinct %d", len(ids), stats.Distinct)
		}
		seen := map[int32]bool{}
		for _, id := range ids {
			if seen[id] {
				t.Error("duplicate id in CandidateIDs")
			}
			seen[id] = true
			if int(id) >= len(data) {
				t.Errorf("id %d out of range", id)
			}
		}
	}
}

func TestQueryThresholdRespected(t *testing.T) {
	ix, data := buildTestIndex(t, 8)
	for _, q := range data[:40] {
		_, sim, _, found := ix.Query(q, 0.9, bitvec.BraunBlanquetMeasure)
		if found && sim < 0.9 {
			t.Errorf("returned similarity %v below threshold", sim)
		}
	}
}

func TestIndexDeterministicAcrossBuilds(t *testing.T) {
	ix1, data := buildTestIndex(t, 9)
	ix2, _ := buildTestIndex(t, 9)
	for _, q := range data[:20] {
		_, _, s1, f1 := ix1.Query(q, 0.5, bitvec.BraunBlanquetMeasure)
		_, _, s2, f2 := ix2.Query(q, 0.5, bitvec.BraunBlanquetMeasure)
		if f1 != f2 || s1.Filters != s2.Filters || s1.Candidates != s2.Candidates {
			t.Fatal("same seed produced different query behaviour")
		}
	}
}
