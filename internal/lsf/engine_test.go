package lsf

import (
	"math"
	"testing"

	"skewsim/internal/bitvec"
	"skewsim/internal/dist"
)

// constThreshold returns a ThresholdFunc that ignores its arguments.
func constThreshold(s float64) ThresholdFunc {
	return func(bitvec.Vector, int, uint32) float64 { return s }
}

func uniformEngine(t *testing.T, n int, p float64, dim int, s float64, seed uint64) *Engine {
	t.Helper()
	e, err := NewEngine(n, Params{
		Seed:      seed,
		Probs:     dist.Uniform(dim, p),
		Threshold: constThreshold(s),
		Stop:      ProductStopRule(n),
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewEngineValidation(t *testing.T) {
	good := Params{
		Threshold: constThreshold(0.5),
		Stop:      ProductStopRule(100),
		Probs:     []float64{0.5},
	}
	if _, err := NewEngine(100, good); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}

	bad := good
	bad.Threshold = nil
	if _, err := NewEngine(100, bad); err == nil {
		t.Error("nil threshold should fail")
	}
	bad = good
	bad.Stop = nil
	if _, err := NewEngine(100, bad); err == nil {
		t.Error("nil stop rule should fail")
	}
	bad = good
	bad.Probs = []float64{1.5}
	if _, err := NewEngine(100, bad); err == nil {
		t.Error("probability > 1 should fail")
	}
	bad = good
	bad.MaxDepth = -1
	if _, err := NewEngine(100, bad); err == nil {
		t.Error("negative depth should fail")
	}
	bad = good
	bad.MaxFiltersPerVector = -5
	if _, err := NewEngine(100, bad); err == nil {
		t.Error("negative budget should fail")
	}
}

func TestDefaultMaxDepth(t *testing.T) {
	if got := DefaultMaxDepth(1024); got != 13 {
		t.Errorf("DefaultMaxDepth(1024) = %d, want 13", got)
	}
	if got := DefaultMaxDepth(1); got != 3 {
		t.Errorf("DefaultMaxDepth(1) = %d", got)
	}
}

func TestProductStopRule(t *testing.T) {
	stop := ProductStopRule(100)
	logN := math.Log(100)
	if stop(logN-0.01, 5) {
		t.Error("should not stop before product reaches 1/n")
	}
	if !stop(logN, 1) || !stop(logN+5, 2) {
		t.Error("should stop at/after product 1/n")
	}
}

func TestFixedDepthStopRule(t *testing.T) {
	stop := FixedDepthStopRule(3)
	if stop(1e9, 2) {
		t.Error("fixed-depth rule must ignore probabilities")
	}
	if !stop(0, 3) {
		t.Error("should stop at length k")
	}
}

func TestFiltersEmptyVector(t *testing.T) {
	e := uniformEngine(t, 100, 0.25, 50, 0.5, 1)
	fs := e.Filters(bitvec.New())
	if len(fs.Paths) != 0 || fs.Truncated {
		t.Errorf("empty vector should have no filters: %+v", fs)
	}
}

func TestFiltersDeterministic(t *testing.T) {
	x := bitvec.New(1, 5, 9, 13, 22, 30)
	a := uniformEngine(t, 200, 0.25, 50, 0.8, 42).Filters(x)
	b := uniformEngine(t, 200, 0.25, 50, 0.8, 42).Filters(x)
	if len(a.Paths) != len(b.Paths) {
		t.Fatalf("same seed, different filter counts: %d vs %d", len(a.Paths), len(b.Paths))
	}
	for i := range a.Paths {
		if PathKey(a.Paths[i]) != PathKey(b.Paths[i]) {
			t.Fatal("same seed, different paths")
		}
	}
}

func TestFiltersSeedSensitivity(t *testing.T) {
	x := bitvec.New(1, 5, 9, 13, 22, 30, 35, 41)
	a := uniformEngine(t, 200, 0.25, 50, 0.8, 1).Filters(x)
	b := uniformEngine(t, 200, 0.25, 50, 0.8, 2).Filters(x)
	same := 0
	bKeys := make(map[string]bool)
	for _, p := range b.Paths {
		bKeys[PathKey(p)] = true
	}
	for _, p := range a.Paths {
		if bKeys[PathKey(p)] {
			same++
		}
	}
	if len(a.Paths) > 3 && same == len(a.Paths) {
		t.Error("different seeds produced identical filter sets")
	}
}

func TestFilterPathInvariants(t *testing.T) {
	// Every emitted path must (1) consist of distinct elements of x,
	// (2) satisfy the stopping rule, and (3) be minimal: the proper
	// prefix must NOT satisfy it (otherwise recursion continued past a
	// completed filter).
	n := 500
	p := 0.25
	probs := dist.Uniform(64, p)
	e, err := NewEngine(n, Params{
		Seed:      7,
		Probs:     probs,
		Threshold: constThreshold(0.7),
		Stop:      ProductStopRule(n),
	})
	if err != nil {
		t.Fatal(err)
	}
	x := bitvec.New(0, 3, 7, 12, 20, 33, 40, 55, 63)
	fs := e.Filters(x)
	if len(fs.Paths) == 0 {
		t.Fatal("expected some filters with these parameters")
	}
	logN := math.Log(float64(n))
	for _, path := range fs.Paths {
		seen := map[uint32]bool{}
		logInv := 0.0
		for k, el := range path {
			if seen[el] {
				t.Fatalf("path %v repeats element %d (sampling must be without replacement)", path, el)
			}
			seen[el] = true
			if !x.Contains(el) {
				t.Fatalf("path %v contains element %d not in x", path, el)
			}
			logInv += -math.Log(p)
			complete := logInv >= logN
			isLast := k == len(path)-1
			if complete && !isLast {
				t.Fatalf("path %v continued past completion at position %d", path, k)
			}
			if isLast && !complete {
				t.Fatalf("path %v emitted before completion", path)
			}
		}
	}
}

func TestFiltersExpectedCountMatchesLemma6(t *testing.T) {
	// With uniform probabilities p and constant threshold s, Lemma 6's
	// recursion gives E[|F_j|] ≈ (|x|·s)^j for paths of length j, and the
	// stopping rule fires at length L = ceil(ln n / ln(1/p)). So
	// E[|F(x)|] ≈ (|x|·s)^L when |x|s > 1. Check order of magnitude over
	// many seeds.
	n := 1000
	p := 0.25 // L = ceil(ln 1000 / ln 4) = 5
	dim := 40
	m := 20 // |x|
	s := 0.1
	L := int(math.Ceil(math.Log(float64(n)) / math.Log(1/p)))
	want := math.Pow(float64(m)*s, float64(L))

	x := bitvec.New(func() []uint32 {
		bits := make([]uint32, m)
		for i := range bits {
			bits[i] = uint32(i * 2)
		}
		return bits
	}()...)
	_ = dim

	total := 0
	const trials = 400
	for seed := 0; seed < trials; seed++ {
		e := uniformEngine(t, n, p, dim, s, uint64(seed))
		total += len(e.Filters(x).Paths)
	}
	got := float64(total) / trials
	// Sampling without replacement shrinks branch choices slightly, so
	// the observed mean sits just below the with-replacement estimate.
	if got > want*1.3 || got < want*0.3 {
		t.Errorf("mean |F(x)| = %v, want within [0.3, 1.3]× %v", got, want)
	}
}

func TestFiltersZeroThresholdNoFilters(t *testing.T) {
	e := uniformEngine(t, 100, 0.25, 50, 0, 3)
	fs := e.Filters(bitvec.New(1, 2, 3, 4, 5))
	if len(fs.Paths) != 0 {
		t.Errorf("threshold 0 should produce no filters, got %d", len(fs.Paths))
	}
}

func TestFiltersThresholdOneDeterministicBlowup(t *testing.T) {
	// s = 1 extends every path with every unused element: with m bits and
	// stop after L steps there are exactly m!/(m-L)! filters.
	n := 60 // ln 60 / ln 4 → L = 3
	e := uniformEngine(t, n, 0.25, 10, 1, 5)
	x := bitvec.New(0, 1, 2, 3)
	fs := e.Filters(x)
	want := 4 * 3 * 2
	if len(fs.Paths) != want {
		t.Errorf("got %d filters, want %d", len(fs.Paths), want)
	}
}

func TestFiltersBudgetTruncation(t *testing.T) {
	n := 1 << 16
	e, err := NewEngine(n, Params{
		Seed:                1,
		Probs:               dist.Uniform(64, 0.5),
		Threshold:           constThreshold(1),
		Stop:                ProductStopRule(n),
		MaxFiltersPerVector: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	bits := make([]uint32, 30)
	for i := range bits {
		bits[i] = uint32(i)
	}
	fs := e.Filters(bitvec.New(bits...))
	if !fs.Truncated {
		t.Error("expected truncation with tiny budget and s=1")
	}
}

func TestFiltersZeroProbabilityElementCompletesImmediately(t *testing.T) {
	// An element with p=0 (or beyond the probs slice) makes any path
	// containing it complete instantly.
	n := 1000
	probs := []float64{0.5, 0} // element 1 has p = 0; element 7 out of range
	e, err := NewEngine(n, Params{
		Seed:      2,
		Probs:     probs,
		Threshold: constThreshold(1),
		Stop:      ProductStopRule(n),
	})
	if err != nil {
		t.Fatal(err)
	}
	fs := e.Filters(bitvec.New(1, 7))
	for _, p := range fs.Paths {
		if len(p) != 1 {
			t.Errorf("path %v should have completed at length 1", p)
		}
	}
	if len(fs.Paths) != 2 {
		t.Errorf("want 2 singleton filters, got %v", fs.Paths)
	}
}

func TestFiltersMaxDepthDiscardsIncomplete(t *testing.T) {
	// With p=0.5 and n large, paths need many steps; a tiny MaxDepth
	// means nothing completes.
	e, err := NewEngine(1<<20, Params{
		Seed:      3,
		Probs:     dist.Uniform(32, 0.5),
		Threshold: constThreshold(1),
		Stop:      ProductStopRule(1 << 20),
		MaxDepth:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	fs := e.Filters(bitvec.New(0, 1, 2))
	if len(fs.Paths) != 0 {
		t.Errorf("depth-capped engine emitted %d filters", len(fs.Paths))
	}
}

func TestFiltersSharedBetweenSimilarVectors(t *testing.T) {
	// Identical vectors share all filters; overlapping vectors share
	// those whose paths stay inside the intersection.
	e := uniformEngine(t, 300, 0.25, 64, 0.6, 9)
	x := bitvec.New(1, 2, 3, 4, 5, 6, 7, 8)
	fx := e.Filters(x)
	fx2 := e.Filters(x)
	if len(fx.Paths) != len(fx2.Paths) {
		t.Fatal("identical vectors must share all filters")
	}
	// q shares 6 of 8 bits.
	q := bitvec.New(1, 2, 3, 4, 5, 6, 20, 21)
	fq := e.Filters(q)
	qKeys := map[string]bool{}
	for _, p := range fq.Paths {
		qKeys[PathKey(p)] = true
	}
	shared := 0
	for _, p := range fx.Paths {
		if qKeys[PathKey(p)] {
			shared++
			for _, el := range p {
				if !x.Contains(el) || !q.Contains(el) {
					t.Fatalf("shared path %v leaves the intersection", p)
				}
			}
		}
	}
	t.Logf("x filters %d, q filters %d, shared %d", len(fx.Paths), len(fq.Paths), shared)
}

func TestPathKeyInjective(t *testing.T) {
	keys := map[string][]uint32{}
	paths := [][]uint32{
		{}, {0}, {1}, {0, 0}, {0, 1}, {1, 0}, {256}, {0, 256}, {65536}, {1, 2, 3},
	}
	for _, p := range paths {
		k := PathKey(p)
		if prev, ok := keys[k]; ok {
			t.Fatalf("collision between %v and %v", prev, p)
		}
		keys[k] = p
	}
}

func TestPathKeyDistinctFromConcatAmbiguity(t *testing.T) {
	// Fixed-width encoding means {1,2} and a hypothetical {258} (0x0102)
	// cannot collide: lengths differ in bytes.
	if PathKey([]uint32{1, 2}) == PathKey([]uint32{258}) {
		t.Fatal("ambiguous encoding")
	}
}

func TestFiltersExpansionCounted(t *testing.T) {
	e := uniformEngine(t, 100, 0.25, 32, 0.5, 11)
	fs := e.Filters(bitvec.New(1, 2, 3, 4, 5, 6))
	if fs.Expanded < 1 {
		t.Error("expansion counter not incremented")
	}
}

// Statistical check of Lemma 5's flavor: two strongly overlapping vectors
// collide (share ≥1 filter) in a decent fraction of engine seeds, while
// disjoint vectors never do.
func TestFilterCollisionStatistics(t *testing.T) {
	n := 500
	p := 0.25
	probs := dist.Uniform(128, p)
	x := bitvec.New(0, 1, 2, 3, 4, 5, 6, 7, 8, 9)
	qClose := bitvec.New(0, 1, 2, 3, 4, 5, 6, 7, 100, 101) // 8/10 overlap
	qFar := bitvec.New(100, 101, 102, 103, 104, 105, 106, 107, 108, 109)

	collideClose, collideFar := 0, 0
	const trials = 300
	for seed := 0; seed < trials; seed++ {
		e, err := NewEngine(n, Params{
			Seed:  uint64(seed),
			Probs: probs,
			// Adversarial-style threshold for b1 = 0.6: 1/(6 - j).
			Threshold: func(v bitvec.Vector, j int, i uint32) float64 {
				return 1 / (0.6*float64(v.Len()) - float64(j))
			},
			Stop: ProductStopRule(n),
		})
		if err != nil {
			t.Fatal(err)
		}
		fx := e.Filters(x)
		keys := map[string]bool{}
		for _, pth := range fx.Paths {
			keys[PathKey(pth)] = true
		}
		hit := func(q bitvec.Vector) bool {
			for _, pth := range e.Filters(q).Paths {
				if keys[PathKey(pth)] {
					return true
				}
			}
			return false
		}
		if hit(qClose) {
			collideClose++
		}
		if hit(qFar) {
			collideFar++
		}
	}
	if collideFar != 0 {
		t.Errorf("disjoint vectors shared filters %d times (paths must lie inside x)", collideFar)
	}
	// Lemma 5 guarantees ≥ 1/log n per repetition when (1) holds; with a
	// generous threshold the empirical rate should be comfortably nonzero.
	if rate := float64(collideClose) / trials; rate < 0.05 {
		t.Errorf("close-pair collision rate %v too small", rate)
	}
}
