package lsf

import (
	"bytes"
	"strings"
	"testing"

	"skewsim/internal/bitvec"
)

func TestIndexWriteReadRoundTrip(t *testing.T) {
	e, data := parallelTestEngine(t, 250)
	ix, err := BuildIndex(e, data)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := ix.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	back, err := ReadIndexFrom(&buf, e, data)
	if err != nil {
		t.Fatal(err)
	}
	if !indexesEqual(ix, back) {
		t.Fatal("round trip changed the index")
	}
	// Queries behave identically.
	for _, q := range data[:30] {
		id1, s1, st1, f1 := ix.Query(q, 0.6, bitvec.BraunBlanquetMeasure)
		id2, s2, st2, f2 := back.Query(q, 0.6, bitvec.BraunBlanquetMeasure)
		if id1 != id2 || s1 != s2 || st1 != st2 || f1 != f2 {
			t.Fatal("restored index answers differently")
		}
	}
}

func TestIndexWriteDeterministic(t *testing.T) {
	e, data := parallelTestEngine(t, 100)
	ix, _ := BuildIndex(e, data)
	var a, b bytes.Buffer
	if _, err := ix.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("serialization not deterministic")
	}
}

func TestReadIndexFromRejectsBadMagic(t *testing.T) {
	e, data := parallelTestEngine(t, 10)
	if _, err := ReadIndexFrom(strings.NewReader("NOTANINDEX"), e, data); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestReadIndexFromRejectsTruncated(t *testing.T) {
	e, data := parallelTestEngine(t, 100)
	ix, _ := BuildIndex(e, data)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, 7, 20, buf.Len() / 2, buf.Len() - 1} {
		r := bytes.NewReader(buf.Bytes()[:cut])
		if _, err := ReadIndexFrom(r, e, data); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestReadIndexFromRejectsOutOfRangeIDs(t *testing.T) {
	e, data := parallelTestEngine(t, 100)
	ix, _ := BuildIndex(e, data)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Load against a smaller dataset: stored ids must be rejected.
	if _, err := ReadIndexFrom(bytes.NewReader(buf.Bytes()), e, data[:5]); err == nil {
		t.Fatal("out-of-range ids accepted")
	}
}

func TestReadIndexFromNilEngine(t *testing.T) {
	if _, err := ReadIndexFrom(strings.NewReader(""), nil, nil); err == nil {
		t.Fatal("nil engine accepted")
	}
}
