package lsf

import "context"

// cancelStride is how many Check calls pass between polls of the
// context's done channel: the poll is a non-blocking select (tens of
// nanoseconds), so amortizing it over a stride keeps cancellation
// checkpoints cheap enough for per-filter and per-block placement in
// the traversal loops.
const cancelStride = 32

// CancelCheck is a cooperative cancellation checkpoint for the
// traversal hot loops: Check costs a countdown decrement on most calls
// and one non-blocking channel poll every cancelStride calls. A nil
// *CancelCheck is valid and never cancels, so non-deadline query paths
// thread nil and pay only a nil compare — NewCancelCheck returns nil
// for contexts that can never be canceled (context.Background and
// friends), collapsing the no-deadline serving path to that free case.
//
// A CancelCheck carries mutable countdown state: one per goroutine, not
// shared. Once tripped it stays tripped (Err is then non-nil).
type CancelCheck struct {
	ctx  context.Context
	done <-chan struct{}
	left int
	err  error
}

// NewCancelCheck returns a checkpoint for ctx, or nil when ctx cannot
// be canceled (nil ctx, or Done() == nil).
func NewCancelCheck(ctx context.Context) *CancelCheck {
	if ctx == nil {
		return nil
	}
	done := ctx.Done()
	if done == nil {
		return nil
	}
	// left = 1 makes the very first Check poll: an already-expired
	// context trips at the first checkpoint even when the whole query
	// performs fewer than cancelStride checks.
	return &CancelCheck{ctx: ctx, done: done, left: 1}
}

// Check is the checkpoint: it reports whether the context is canceled,
// polling the done channel every cancelStride calls. Safe on a nil
// receiver (never canceled).
func (cc *CancelCheck) Check() bool {
	if cc == nil {
		return false
	}
	if cc.err != nil {
		return true
	}
	cc.left--
	if cc.left > 0 {
		return false
	}
	cc.left = cancelStride
	select {
	case <-cc.done:
		cc.err = cc.ctx.Err()
		return true
	default:
		return false
	}
}

// Err returns the context error once a Check has observed cancellation,
// nil before that (and on a nil receiver). Callers use it after a
// traversal to distinguish "sink stopped early" from "canceled".
func (cc *CancelCheck) Err() error {
	if cc == nil {
		return nil
	}
	return cc.err
}
