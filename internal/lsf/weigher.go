package lsf

import (
	"fmt"
	"math"
)

// PathWeigher estimates the information content of a path: LogInvP
// returns the increment to log(1/Pr[v∘i ⊆ x]) for x ~ D when extending
// path v with element i. The engine's stopping rule fires once the
// accumulated value reaches log n, i.e. once Pr[path ⊆ x] ≤ 1/n.
//
// The default (nil Weigher in Params) assumes independent coordinates:
// the increment is log(1/p_i) regardless of v, giving exactly the
// paper's ∏ p_i ≤ 1/n rule. Alternative weighers let the engine handle
// known, simple correlation structure — the extension suggested in the
// paper's §9 conclusion ("if the correlations are 'simple' and known
// ahead of time, there may be strategies to deal with them when sampling
// paths").
type PathWeigher interface {
	LogInvP(v []uint32, i uint32) float64
}

// independentWeigher is the paper's model: coordinates are independent.
type independentWeigher struct {
	probs []float64
}

func (w independentWeigher) LogInvP(_ []uint32, i uint32) float64 {
	if int(i) >= len(w.probs) {
		return math.Inf(1)
	}
	p := w.probs[i]
	if p <= 0 {
		return math.Inf(1)
	}
	return -math.Log(p)
}

// ClusterWeigher handles the simplest correlation structure: disjoint
// item clusters whose members co-occur with a known conditional
// probability. The first member of a cluster on a path contributes its
// full log(1/p_i); every further member of the same cluster contributes
// only log(1/condP), because given one member is present the others are
// nearly free.
//
// Why this matters: under the independent rule, a path of two same-
// cluster items with item probability p looks like probability p² ≤ 1/n
// and becomes a filter, but its true occurrence probability is ≈ p·condP
// — potentially ≫ 1/n — so the filter's bucket collects ~n·p·condP
// vectors instead of O(1), blowing up query time. Correct accounting
// forces paths to gather evidence from distinct clusters.
type ClusterWeigher struct {
	probs   []float64
	cluster []int32 // cluster id per item; -1 = unclustered
	logInvC float64 // log(1/condP)
}

// NewClusterWeigher builds a weigher for the given item probabilities,
// cluster assignment (cluster[i] = id, or -1 for unclustered items), and
// within-cluster conditional probability condP ∈ (0, 1].
func NewClusterWeigher(probs []float64, cluster []int32, condP float64) (*ClusterWeigher, error) {
	if len(cluster) != len(probs) {
		return nil, fmt.Errorf("lsf: cluster assignment length %d != probs length %d", len(cluster), len(probs))
	}
	if !(condP > 0 && condP <= 1) {
		return nil, fmt.Errorf("lsf: condP = %v outside (0, 1]", condP)
	}
	return &ClusterWeigher{
		probs:   probs,
		cluster: cluster,
		logInvC: -math.Log(condP),
	}, nil
}

// LogInvP implements PathWeigher.
func (w *ClusterWeigher) LogInvP(v []uint32, i uint32) float64 {
	if int(i) >= len(w.probs) {
		return math.Inf(1)
	}
	c := w.cluster[i]
	if c >= 0 {
		for _, e := range v {
			if int(e) < len(w.cluster) && w.cluster[e] == c {
				return w.logInvC // a cluster sibling is already on the path
			}
		}
	}
	p := w.probs[i]
	if p <= 0 {
		return math.Inf(1)
	}
	return -math.Log(p)
}
