package lsf

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestForEachParallelClampsWorkers pins the worker clamp every batch
// entry point (core.QueryParallel, core.BatchCandidates,
// BuildIndexParallel, the shard router) relies on: a bound far above n
// must not spawn idle goroutines. The observable is the process
// goroutine count sampled while all n tasks are parked inside fn. The
// check is one-sided: a correct clamp always passes, while a lost
// clamp is caught when any of the 61 excess workers are still alive at
// the sample point (and deterministically by the sequential-
// degeneration test below under the race detector).
func TestForEachParallelClampsWorkers(t *testing.T) {
	const (
		n       = 3
		workers = 64
	)
	base := runtime.NumGoroutine()
	var started atomic.Int32
	release := make(chan struct{})
	sampled := make(chan int, 1)
	go func() {
		for started.Load() < n {
			runtime.Gosched()
		}
		sampled <- runtime.NumGoroutine()
		close(release)
	}()
	var mu sync.Mutex
	seen := make(map[int]int)
	ForEachParallel(n, workers, func(k int) {
		started.Add(1)
		<-release
		mu.Lock()
		seen[k]++
		mu.Unlock()
	})
	// Allowed: base + n workers + the monitor goroutine + slack for
	// runtime/test-framework goroutines. An unclamped pool would sit at
	// base + 64 + monitor.
	if g := <-sampled; g > base+n+4 {
		t.Fatalf("%d goroutines live during a %d-task batch (base %d): worker clamp lost", g, n, base)
	}
	if len(seen) != n {
		t.Fatalf("ran %d distinct tasks, want %d", len(seen), n)
	}
	for k, c := range seen {
		if c != 1 {
			t.Fatalf("task %d ran %d times", k, c)
		}
	}
}

// TestForEachParallelSequentialDegeneration: n <= 1 (after clamping)
// must run fn synchronously on the calling goroutine — the plain
// unsynchronized counter would be flagged by the race detector (the CI
// race job) if a pooled goroutine ever executed fn.
func TestForEachParallelSequentialDegeneration(t *testing.T) {
	x := 0
	ForEachParallel(1, 64, func(k int) { x += k + 1 })
	if x != 1 {
		t.Fatalf("x = %d, want 1", x)
	}
}

func TestForEachParallelZeroTasks(t *testing.T) {
	ran := false
	ForEachParallel(0, 8, func(int) { ran = true })
	if ran {
		t.Fatal("fn ran with n = 0")
	}
}
