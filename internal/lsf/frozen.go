package lsf

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"unsafe"

	"skewsim/internal/bitvec"
)

// Relocatable frozen-index blob — the per-repetition payload of the
// SKSEG1 segment container (internal/segment). Unlike WriteTo (the
// bucket dump, which replays through the builder), this format stores
// the frozen arenas verbatim, so an open is either zero-copy (the
// arenas become views into a read-only mapping) or one flat decode —
// never a rebuild. Layout, all little-endian, blob offset 0 assumed
// 8-aligned by the container:
//
//	header (64 bytes):
//	  nb        uint32  buckets
//	  tableLen  uint32  key-table slots (power of two, >= 2*nb)
//	  nElems    uint32  path element arena length
//	  nIDs      uint32  logical posting count (idOff[nb])
//	  flags     uint32  bit0: postings are delta+varint compressed
//	  blobLen   uint32  compressed posting bytes (0 when uncompressed)
//	  total     uint64  TotalFilters
//	  trunc     uint64  Truncated
//	  reserved  to 64 bytes, zero
//	sections, in order, each padded to 8 bytes:
//	  tableKeys [tableLen]uint64
//	  tableIdx  [tableLen]int32
//	  pathSpans [nb]{Off, Len uint32}
//	  idOff     [nb+1]uint32
//	  pathElems [nElems]uint32
//	  postings  ids [nIDs]int32                      (flags bit0 clear)
//	            compOff [nb+1]uint32 + blob [blobLen] (flags bit0 set)
//
// Integrity is the container's job (each section of the container is
// CRC-32C framed via dataio); this layer validates structure — table
// load factor, span bounds, CSR monotonicity, id ranges, and a full
// decode pass over compressed postings — so a blob that passes
// OpenFrozenBytes can be traversed without further checks.

const (
	frozenHeaderLen = 64
	// frozenCompressed marks the posting section as delta+varint blocks.
	frozenCompressed = 1 << 0
)

var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// ErrFrozenBlob reports a structurally invalid frozen-index blob.
var ErrFrozenBlob = errors.New("lsf: invalid frozen index blob")

func pad8(n int) int { return (n + 7) &^ 7 }

// coldPostings is the decode-on-read posting store of a compressed
// frozen index: per-bucket byte spans into one varint blob. When it is
// non-nil, Index.ids is nil and every posting read decodes.
type coldPostings struct {
	compOff []uint32 // per bucket: byte offset into blob; len nb+1
	blob    []byte
	maxID   int32 // len(data) at open time, re-checked on decode
}

// ColdPostings reports whether posting lists decode on read (the
// compressed cold tier) rather than being served as arena views.
func (ix *Index) ColdPostings() bool { return ix.cold != nil }

// ResidentBytes is the heap footprint of the index's arenas in their
// resident (decoded, uncompressed) form — the unit the segment tier
// budget is accounted in. For a cold or compressed index it reports
// what promotion WOULD cost, not current usage.
func (ix *Index) ResidentBytes() int64 {
	n := int64(len(ix.tableKeys))*8 + int64(len(ix.tableIdx))*4 +
		int64(len(ix.pathSpans))*8 + int64(len(ix.pathElems))*4 +
		int64(len(ix.idOff))*4
	if ix.cold != nil {
		if nb := len(ix.pathSpans); nb > 0 {
			n += int64(ix.idOff[nb]) * 4
		}
	} else {
		n += int64(len(ix.ids)) * 4
	}
	return n
}

// ForEachBucketHash visits every bucket's path-hash key, in key-table
// slot order. The segment layer builds its per-segment bloom filters
// from these without re-hashing any path.
func (ix *Index) ForEachBucketHash(fn func(h uint64)) {
	for slot, b := range ix.tableIdx {
		if b >= 0 {
			fn(ix.tableKeys[slot])
		}
	}
}

// AppendFrozen appends the relocatable frozen-blob encoding of the
// index to dst (8-aligning sections relative to the blob start) and
// returns the extended slice. compress selects the delta+varint
// posting encoding.
func (ix *Index) AppendFrozen(dst []byte, compress bool) []byte {
	nb := len(ix.pathSpans)
	var compOff []uint32
	var blob []byte
	flags := uint32(0)
	if compress {
		flags |= frozenCompressed
		compOff = make([]uint32, nb+1)
		for b := 0; b < nb; b++ {
			blob = appendBucketPostings(blob, ix, int32(b))
			compOff[b+1] = uint32(len(blob))
		}
	}
	var nIDs uint32
	if nb > 0 {
		nIDs = ix.idOff[nb]
	}
	var hdr [frozenHeaderLen]byte
	le := binary.LittleEndian
	le.PutUint32(hdr[0:], uint32(nb))
	le.PutUint32(hdr[4:], uint32(len(ix.tableIdx)))
	le.PutUint32(hdr[8:], uint32(len(ix.pathElems)))
	le.PutUint32(hdr[12:], nIDs)
	le.PutUint32(hdr[16:], flags)
	le.PutUint32(hdr[20:], uint32(len(blob)))
	le.PutUint64(hdr[24:], uint64(ix.totalFilters))
	le.PutUint64(hdr[32:], uint64(ix.truncatedCount))
	dst = append(dst, hdr[:]...)

	pad := func(d []byte) []byte {
		for len(d)%8 != 0 {
			d = append(d, 0)
		}
		return d
	}
	for _, k := range ix.tableKeys {
		dst = le.AppendUint64(dst, k)
	}
	for _, v := range ix.tableIdx {
		dst = le.AppendUint32(dst, uint32(v))
	}
	dst = pad(dst)
	for _, s := range ix.pathSpans {
		dst = le.AppendUint32(dst, s.Off)
		dst = le.AppendUint32(dst, s.Len)
	}
	for _, o := range ix.idOff {
		dst = le.AppendUint32(dst, o)
	}
	dst = pad(dst)
	for _, e := range ix.pathElems {
		dst = le.AppendUint32(dst, e)
	}
	dst = pad(dst)
	if compress {
		for _, o := range compOff {
			dst = le.AppendUint32(dst, o)
		}
		dst = pad(dst)
		dst = append(dst, blob...)
	} else if ix.cold == nil {
		for _, id := range ix.ids {
			dst = le.AppendUint32(dst, uint32(id))
		}
	} else {
		// Uncompressed encoding of a cold source: stream each bucket
		// through the decoder (compaction of cold segments lands here).
		var scratch []int32
		for b := 0; b < nb; b++ {
			var err error
			if scratch, err = ix.appendColdBucket(scratch[:0], int32(b)); err != nil {
				panic(err) // unreachable: cold blobs are validated at open
			}
			for _, id := range scratch {
				dst = le.AppendUint32(dst, uint32(id))
			}
		}
	}
	return pad(dst)
}

// appendBucketPostings encodes bucket b's posting list, decoding it
// first if the source index is itself cold.
func appendBucketPostings(dst []byte, ix *Index, b int32) []byte {
	if ix.cold == nil {
		return AppendPostings(dst, ix.bucketIDs(b))
	}
	var scratch []int32
	scratch, err := ix.appendColdBucket(scratch, b)
	if err != nil {
		// Unreachable: cold blobs are fully validated at open.
		panic(err)
	}
	return AppendPostings(dst, scratch)
}

// frozenReader walks a blob's sections, validating bounds as it goes.
type frozenReader struct {
	b   []byte
	off int
}

func (r *frozenReader) section(elemSize, count int) ([]byte, error) {
	n := elemSize * count
	if n < 0 || r.off+n > len(r.b) {
		return nil, fmt.Errorf("%w: section of %d bytes at offset %d exceeds blob of %d",
			ErrFrozenBlob, n, r.off, len(r.b))
	}
	s := r.b[r.off : r.off+n : r.off+n]
	r.off = pad8(r.off + n)
	return s, nil
}

// OpenFrozenBytes reconstructs a frozen index from an AppendFrozen
// blob. With zeroCopy set (and a little-endian host) the arenas are
// unsafe views into b — b must stay immutable and mapped for the life
// of the index; otherwise the arenas are decoded onto the heap and b
// may be released. Compressed postings stay compressed under zeroCopy
// (decode-on-read) and are fully decoded otherwise.
//
// engine may be nil for structural validation and bucket enumeration
// (ForEachBucket, WriteTo); queries require the engine the index was
// built with. data is the local vector table posting ids refer to; all
// ids are validated against len(data).
func OpenFrozenBytes(b []byte, engine *Engine, data []bitvec.Vector, zeroCopy bool) (*Index, error) {
	if len(b) < frozenHeaderLen {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the header", ErrFrozenBlob, len(b))
	}
	le := binary.LittleEndian
	nb := int(le.Uint32(b[0:]))
	tableLen := int(le.Uint32(b[4:]))
	nElems := int(le.Uint32(b[8:]))
	nIDs := int(le.Uint32(b[12:]))
	flags := le.Uint32(b[16:])
	blobLen := int(le.Uint32(b[20:]))
	total := le.Uint64(b[24:])
	trunc := le.Uint64(b[32:])
	compressed := flags&frozenCompressed != 0

	// Structural sanity before any sizing math: the table must be a
	// power of two at load factor <= 1/2 (the linear probe terminates
	// only while empty slots exist), and every count must fit the blob.
	if tableLen < 4 || tableLen&(tableLen-1) != 0 || nb > tableLen/2 {
		return nil, fmt.Errorf("%w: %d buckets in a key table of %d slots", ErrFrozenBlob, nb, tableLen)
	}
	if flags&^uint32(frozenCompressed) != 0 {
		return nil, fmt.Errorf("%w: unknown flags %#x", ErrFrozenBlob, flags)
	}
	if !compressed && blobLen != 0 {
		return nil, fmt.Errorf("%w: uncompressed postings with blob length %d", ErrFrozenBlob, blobLen)
	}
	if total > math.MaxInt64 || trunc > math.MaxInt64 {
		return nil, fmt.Errorf("%w: implausible stats", ErrFrozenBlob)
	}

	r := &frozenReader{b: b, off: frozenHeaderLen}
	keysB, err := r.section(8, tableLen)
	if err != nil {
		return nil, err
	}
	idxB, err := r.section(4, tableLen)
	if err != nil {
		return nil, err
	}
	spansB, err := r.section(8, nb)
	if err != nil {
		return nil, err
	}
	offB, err := r.section(4, nb+1)
	if err != nil {
		return nil, err
	}
	elemsB, err := r.section(4, nElems)
	if err != nil {
		return nil, err
	}
	var idsB, compOffB, blobB []byte
	if compressed {
		if compOffB, err = r.section(4, nb+1); err != nil {
			return nil, err
		}
		if blobB, err = r.section(1, blobLen); err != nil {
			return nil, err
		}
	} else {
		if idsB, err = r.section(4, nIDs); err != nil {
			return nil, err
		}
	}
	// Exact-length check: the sections (padded) must consume the whole
	// blob, so truncated padding and trailing garbage are both rejected.
	if r.off != len(b) {
		return nil, fmt.Errorf("%w: blob of %d bytes, sections end at %d", ErrFrozenBlob, len(b), r.off)
	}

	ix := &Index{
		engine:         engine,
		data:           data,
		tableMask:      uint64(tableLen - 1),
		totalFilters:   int(total),
		truncatedCount: int(trunc),
	}
	if zeroCopy && hostLittleEndian {
		ix.tableKeys = viewU64(keysB)
		ix.tableIdx = viewI32(idxB)
		ix.pathSpans = viewSpans(spansB)
		ix.idOff = viewU32(offB)
		ix.pathElems = viewU32(elemsB)
		if compressed {
			ix.cold = &coldPostings{compOff: viewU32(compOffB), blob: blobB, maxID: int32(len(data))}
		} else {
			ix.ids = viewI32(idsB)
		}
	} else {
		ix.tableKeys = decodeU64(keysB)
		ix.tableIdx = decodeI32(idxB)
		ix.pathSpans = decodeSpans(spansB)
		ix.idOff = decodeU32(offB)
		ix.pathElems = decodeU32(elemsB)
		if !compressed {
			ix.ids = decodeI32(idsB)
		}
	}
	if err := ix.validateFrozen(nIDs, len(data)); err != nil {
		return nil, err
	}
	if compressed {
		if err := validateCompressed(ix.idOff, decodeOrView(compOffB, zeroCopy), blobB, len(data)); err != nil {
			return nil, err
		}
		if !zeroCopy || !hostLittleEndian {
			// Resident open: decode the whole posting arena up front so
			// serving pays no per-read decode.
			ids := make([]int32, 0, nIDs)
			compOff := decodeOrView(compOffB, zeroCopy)
			for bkt := 0; bkt < nb; bkt++ {
				span := blobB[compOff[bkt]:compOff[bkt+1]]
				count := int(ix.idOff[bkt+1] - ix.idOff[bkt])
				if ids, err = DecodePostings(ids, span, count, int32(len(data))); err != nil {
					return nil, err
				}
			}
			ix.ids = ids
		}
	}
	return ix, nil
}

// decodeOrView picks the cheap path for a uint32 section that is only
// read during validation and resident decode.
func decodeOrView(b []byte, zeroCopy bool) []uint32 {
	if zeroCopy && hostLittleEndian {
		return viewU32(b)
	}
	return decodeU32(b)
}

// validateFrozen checks the invariants traversal relies on, so a blob
// that opens cleanly can be walked with no per-access checks.
func (ix *Index) validateFrozen(nIDs, nData int) error {
	nb := len(ix.pathSpans)
	for _, bkt := range ix.tableIdx {
		if bkt < -1 || int(bkt) >= nb {
			return fmt.Errorf("%w: table slot references bucket %d of %d", ErrFrozenBlob, bkt, nb)
		}
	}
	for b, s := range ix.pathSpans {
		if uint64(s.Off)+uint64(s.Len) > uint64(len(ix.pathElems)) {
			return fmt.Errorf("%w: bucket %d path span [%d,+%d) exceeds arena of %d",
				ErrFrozenBlob, b, s.Off, s.Len, len(ix.pathElems))
		}
	}
	if ix.idOff[0] != 0 {
		return fmt.Errorf("%w: idOff[0] = %d", ErrFrozenBlob, ix.idOff[0])
	}
	for b := 0; b < nb; b++ {
		if ix.idOff[b+1] < ix.idOff[b] {
			return fmt.Errorf("%w: idOff not monotonic at bucket %d", ErrFrozenBlob, b)
		}
	}
	if int(ix.idOff[nb]) != nIDs {
		return fmt.Errorf("%w: idOff[%d] = %d, header claims %d postings", ErrFrozenBlob, nb, ix.idOff[nb], nIDs)
	}
	for _, id := range ix.ids {
		if id < 0 || int(id) >= nData {
			return fmt.Errorf("%w: posting id %d outside dataset of %d", ErrFrozenBlob, id, nData)
		}
	}
	return nil
}

// validateCompressed decodes every bucket once (into one reused
// scratch) so decode-on-read never fails later.
func validateCompressed(idOff, compOff []uint32, blob []byte, nData int) error {
	nb := len(idOff) - 1
	if compOff[0] != 0 || int(compOff[nb]) != len(blob) {
		return fmt.Errorf("%w: compressed spans cover [%d, %d) of a blob of %d",
			ErrFrozenBlob, compOff[0], compOff[nb], len(blob))
	}
	var scratch []int32
	for b := 0; b < nb; b++ {
		if compOff[b+1] < compOff[b] || int(compOff[b+1]) > len(blob) {
			return fmt.Errorf("%w: compressed span not monotonic at bucket %d", ErrFrozenBlob, b)
		}
		count := int(idOff[b+1] - idOff[b])
		var err error
		scratch, err = DecodePostings(scratch[:0], blob[compOff[b]:compOff[b+1]], count, int32(nData))
		if err != nil {
			return err
		}
	}
	return nil
}

// bucketOf maps a posting ref's logical offset back to its bucket:
// the unique b with idOff[b] <= off < idOff[b+1] (refs have Len > 0).
func (ix *Index) bucketOf(off uint32) int32 {
	nb := len(ix.pathSpans)
	return int32(sort.Search(nb, func(b int) bool { return ix.idOff[b+1] > off }))
}

// appendColdBucket decodes bucket b's compressed posting list into dst.
func (ix *Index) appendColdBucket(dst []int32, b int32) ([]int32, error) {
	c := ix.cold
	count := int(ix.idOff[b+1] - ix.idOff[b])
	return DecodePostings(dst, c.blob[c.compOff[b]:c.compOff[b+1]], count, c.maxID)
}

// AppendRefIDs appends the posting list r resolves to onto dst: a copy
// of the arena span on a resident index, a decode on a cold one. Use
// RefIDsBuf when a view (no copy) is acceptable for resident indexes.
func (ix *Index) AppendRefIDs(dst []int32, r PostingRef) []int32 {
	if ix.cold == nil {
		return append(dst, ix.ids[r.Off:r.Off+r.Len]...)
	}
	out, err := ix.appendColdBucket(dst, ix.bucketOf(r.Off))
	if err != nil {
		panic(err) // unreachable: validated at open
	}
	return out
}

// RefIDsBuf returns the posting list r resolves to: a direct arena view
// on a resident index (buf untouched), or the list decoded into *buf on
// a cold one. The returned slice is valid until the next call that
// reuses buf.
func (ix *Index) RefIDsBuf(r PostingRef, buf *[]int32) []int32 {
	if ix.cold == nil {
		return ix.ids[r.Off : r.Off+r.Len]
	}
	*buf = ix.AppendRefIDs((*buf)[:0], r)
	return *buf
}

// PostingsBuf is Postings with a caller-precomputed path hash and a
// decode buffer for cold indexes — the segment layer's per-path probe
// (one HashPath per path instead of one per segment, and no allocation
// on the decode path).
func (ix *Index) PostingsBuf(h uint64, path []uint32, buf *[]int32) []int32 {
	r, ok := ix.PathRefHash(h, path)
	if !ok || r.Len == 0 {
		return nil
	}
	return ix.RefIDsBuf(r, buf)
}

// Unsafe little-endian views: reinterpret a byte section as its typed
// arena with zero copies. Sections are 8-aligned relative to the blob,
// and the segment container 8-aligns blobs within the (page-aligned)
// mapping, so alignment holds.

func viewU64(b []byte) []uint64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), len(b)/8)
}

func viewU32(b []byte) []uint32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), len(b)/4)
}

func viewI32(b []byte) []int32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
}

func viewSpans(b []byte) []Span {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*Span)(unsafe.Pointer(&b[0])), len(b)/8)
}

// Heap decodes for the portable (big-endian or copying) open path.

func decodeU64(b []byte) []uint64 {
	out := make([]uint64, len(b)/8)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	return out
}

func decodeU32(b []byte) []uint32 {
	out := make([]uint32, len(b)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return out
}

func decodeI32(b []byte) []int32 {
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

func decodeSpans(b []byte) []Span {
	out := make([]Span, len(b)/8)
	for i := range out {
		out[i] = Span{
			Off: binary.LittleEndian.Uint32(b[8*i:]),
			Len: binary.LittleEndian.Uint32(b[8*i+4:]),
		}
	}
	return out
}
