package lsf

import (
	"context"
	"errors"
	"testing"

	"skewsim/internal/bitvec"
	"skewsim/internal/dist"
	"skewsim/internal/hashing"
)

func TestCancelCheckNilAndBackground(t *testing.T) {
	var cc *CancelCheck
	if cc.Check() || cc.Err() != nil {
		t.Fatal("nil CancelCheck must never cancel")
	}
	if got := NewCancelCheck(nil); got != nil {
		t.Fatalf("NewCancelCheck(nil) = %v, want nil", got)
	}
	// Background has a nil Done channel: the checkpoint collapses to the
	// free nil case.
	if got := NewCancelCheck(context.Background()); got != nil {
		t.Fatalf("NewCancelCheck(Background) = %v, want nil", got)
	}
}

func TestCancelCheckTripsWithinStride(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cc := NewCancelCheck(ctx)
	if cc == nil {
		t.Fatal("cancelable context must yield a checkpoint")
	}
	for i := 0; i < 2*cancelStride; i++ {
		if cc.Check() {
			t.Fatalf("tripped before cancellation (call %d)", i)
		}
	}
	cancel()
	tripped := false
	for i := 0; i < cancelStride+1; i++ {
		if cc.Check() {
			tripped = true
			break
		}
	}
	if !tripped {
		t.Fatal("checkpoint did not trip within one stride of cancellation")
	}
	if !errors.Is(cc.Err(), context.Canceled) {
		t.Fatalf("Err() = %v, want context.Canceled", cc.Err())
	}
	// Once tripped, stays tripped on the first call.
	if !cc.Check() {
		t.Fatal("tripped checkpoint reported un-canceled")
	}
}

// TestForEachCandidateCancel: a pre-canceled context aborts the
// traversal with the context error, while an un-canceled checkpoint
// leaves results identical to the plain path.
func TestForEachCandidateCancel(t *testing.T) {
	d := mustDist(t)
	data := d.SampleN(hashing.NewSplitMix64(11), 512)
	eng, err := NewEngine(len(data), testParamsFor(d, len(data)))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	ix, err := BuildIndex(eng, data)
	if err != nil {
		t.Fatalf("BuildIndex: %v", err)
	}
	q := data[3]

	var want []int32
	wantStats := ix.ForEachCandidate(q, func(id int32) bool {
		want = append(want, id)
		return true
	})
	if len(want) == 0 {
		t.Fatal("query produced no candidates; test is vacuous")
	}

	ctx, cancel := context.WithCancel(context.Background())
	var got []int32
	gotStats, err := ix.ForEachCandidateCancel(q, NewCancelCheck(ctx), func(id int32) bool {
		got = append(got, id)
		return true
	})
	if err != nil {
		t.Fatalf("un-canceled traversal errored: %v", err)
	}
	if gotStats != wantStats {
		t.Fatalf("stats differ: %+v vs %+v", gotStats, wantStats)
	}
	if len(got) != len(want) {
		t.Fatalf("candidate counts differ: %d vs %d", len(got), len(want))
	}

	cancel()
	n := 0
	_, err = ix.ForEachCandidateCancel(q, NewCancelCheck(ctx), func(id int32) bool {
		n++
		return true
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled traversal: err = %v, want context.Canceled", err)
	}
	if n >= len(want) && wantStats.Filters > refBlock {
		t.Fatalf("canceled traversal streamed all %d candidates", n)
	}
}

func mustDist(t *testing.T) *dist.Product {
	t.Helper()
	return dist.MustProduct(dist.Fig1Profile(200, 0.2))
}

func testParamsFor(d *dist.Product, n int) Params {
	return Params{
		Seed:  7,
		Probs: d.Probs(),
		Threshold: func(x bitvec.Vector, j int, i uint32) float64 {
			denom := 0.7*float64(x.Len()) - float64(j)
			if denom <= 1 {
				return 1
			}
			return 1 / denom
		},
		Stop: ProductStopRule(n),
	}
}
