package lsf

import (
	"errors"
	"fmt"
)

// Posting-list compression: delta + zigzag varint, the cold-tier
// encoding of the SKSEG1 segment format. Posting lists are stored in
// insertion order, which after freeze/compaction is ascending local id,
// so consecutive deltas are small and a list costs ~1 byte per posting
// instead of 4. Zigzag keeps the codec total (any int32 sequence round
// trips), so correctness never depends on the monotonicity holding.
//
// The decoder is blocked: it consumes postingBlock values per inner
// loop with a single slice re-bound per block, so bounds checks and the
// dst append do not dominate the byte-shift work. Hostile inputs error
// out — the caller supplies the exact expected count (from the CSR
// offsets, which the open path has already validated), so a corrupt
// blob can never drive an unbounded allocation: the destination is
// sized before a single byte is parsed.

// postingBlock is the decoder's inner-loop stride.
const postingBlock = 64

// ErrPostingCodec reports a compressed posting span that does not
// decode cleanly: truncated varint, overflow past 32 bits, leftover
// bytes, or a decoded id outside the permitted range.
var ErrPostingCodec = errors.New("lsf: corrupt compressed posting list")

// zigzag folds signed deltas into unsigned varint-friendly form.
func zigzag(v int32) uint32   { return uint32((v << 1) ^ (v >> 31)) }
func unzigzag(u uint32) int32 { return int32(u>>1) ^ -int32(u&1) }

// AppendPostings appends the delta+zigzag-varint encoding of ids to dst
// and returns the extended slice. The empty list encodes to nothing.
func AppendPostings(dst []byte, ids []int32) []byte {
	prev := int32(0)
	for _, id := range ids {
		u := zigzag(id - prev)
		prev = id
		for u >= 0x80 {
			dst = append(dst, byte(u)|0x80)
			u >>= 7
		}
		dst = append(dst, byte(u))
	}
	return dst
}

// DecodePostings appends exactly count ids decoded from src to dst,
// requiring src to be consumed exactly and every id to lie in
// [0, maxID) (maxID <= 0 skips the range check). It is the block
// decoder behind every cold posting read; on any malformed input it
// returns ErrPostingCodec without allocating beyond the count the
// caller asked for.
func DecodePostings(dst []int32, src []byte, count int, maxID int32) ([]int32, error) {
	if count < 0 {
		return dst, fmt.Errorf("%w: negative count %d", ErrPostingCodec, count)
	}
	base := len(dst)
	dst = append(dst, make([]int32, count)...)
	out := dst[base:]
	prev := int32(0)
	pos := 0
	for done := 0; done < count; {
		n := count - done
		if n > postingBlock {
			n = postingBlock
		}
		block := out[done : done+n]
		for i := range block {
			var u uint32
			var shift uint
			for {
				if pos >= len(src) {
					return dst[:base], fmt.Errorf("%w: truncated at posting %d/%d", ErrPostingCodec, done+i, count)
				}
				b := src[pos]
				pos++
				if shift == 28 && b > 0x0f {
					return dst[:base], fmt.Errorf("%w: varint overflows 32 bits", ErrPostingCodec)
				}
				u |= uint32(b&0x7f) << shift
				if b < 0x80 {
					break
				}
				shift += 7
				if shift > 28 {
					return dst[:base], fmt.Errorf("%w: varint overflows 32 bits", ErrPostingCodec)
				}
			}
			prev += unzigzag(u)
			if maxID > 0 && (prev < 0 || prev >= maxID) {
				return dst[:base], fmt.Errorf("%w: id %d outside [0, %d)", ErrPostingCodec, prev, maxID)
			}
			block[i] = prev
		}
		done += n
	}
	if pos != len(src) {
		return dst[:base], fmt.Errorf("%w: %d trailing bytes", ErrPostingCodec, len(src)-pos)
	}
	return dst, nil
}
