package lsf

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"slices"
	"strings"

	"skewsim/internal/bitvec"
)

// Serialization of the inverted filter index. The engine (hash seeds,
// thresholds) is NOT serialized — it is deterministic given its build
// parameters, which the caller owns; WriteTo stores only the bucket
// contents. Format (all little-endian):
//
//	magic   [6]byte  "SKLSF1"
//	total   uint64   total filters
//	trunc   uint64   truncated vector count
//	buckets uint64   number of buckets
//	repeat buckets times:
//	  keyLen uint32, key bytes, idCount uint32, ids []int32
//
// Buckets are written in sorted key order so output is deterministic.

var lsfMagic = [6]byte{'S', 'K', 'L', 'S', 'F', '1'}

// WriteTo serializes the index buckets. It implements io.WriterTo.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(v interface{}) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if err := write(lsfMagic); err != nil {
		return n, err
	}
	if err := write(uint64(ix.totalFilters)); err != nil {
		return n, err
	}
	if err := write(uint64(ix.truncatedCount)); err != nil {
		return n, err
	}
	if err := write(uint64(len(ix.pathSpans))); err != nil {
		return n, err
	}
	// Dump buckets in sorted PathKey order so output stays deterministic
	// (and identical to the pre-freeze and pre-hash-bucket formats). Both
	// the keys and the posting lists serialize straight out of the frozen
	// arenas; only the sort permutation is materialized here.
	type entry struct {
		key string
		ids []int32
	}
	entries := make([]entry, 0, len(ix.pathSpans))
	for b := range ix.pathSpans {
		b := int32(b)
		var ids []int32
		if ix.cold != nil {
			// Cold postings decode per bucket; entries outlive the loop, so
			// each gets its own slice rather than a shared scratch.
			var err error
			if ids, err = ix.appendColdBucket(nil, b); err != nil {
				panic(err) // unreachable: validated at open
			}
		} else {
			ids = ix.bucketIDs(b)
		}
		entries = append(entries, entry{key: PathKey(ix.bucketPath(b)), ids: ids})
	}
	slices.SortFunc(entries, func(a, b entry) int { return strings.Compare(a.key, b.key) })
	for _, e := range entries {
		if err := write(uint32(len(e.key))); err != nil {
			return n, err
		}
		if _, err := bw.WriteString(e.key); err != nil {
			return n, err
		}
		n += int64(len(e.key))
		if err := write(uint32(len(e.ids))); err != nil {
			return n, err
		}
		if err := write(e.ids); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadIndexFrom reconstructs an index from a stream produced by WriteTo.
// The caller supplies the engine (rebuilt with the original parameters —
// queries only match if the hash seeds are identical) and the data slice
// the buckets refer to. All ids are validated against len(data).
func ReadIndexFrom(r io.Reader, engine *Engine, data []bitvec.Vector) (*Index, error) {
	if engine == nil {
		return nil, errors.New("lsf: nil engine")
	}
	br := bufio.NewReader(r)
	var magic [6]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("lsf: reading magic: %w", err)
	}
	if magic != lsfMagic {
		return nil, fmt.Errorf("lsf: bad magic %q", magic)
	}
	var total, trunc, buckets uint64
	for _, v := range []*uint64{&total, &trunc, &buckets} {
		if err := binary.Read(br, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("lsf: reading header: %w", err)
		}
	}
	const maxReasonable = 1 << 40
	if total > maxReasonable || buckets > maxReasonable {
		return nil, fmt.Errorf("lsf: implausible header (total=%d buckets=%d)", total, buckets)
	}
	bld := newIndexBuilder(engine, data)
	bld.totalFilters = int(total)
	bld.truncatedCount = int(trunc)
	sum := uint64(0)
	for b := uint64(0); b < buckets; b++ {
		var keyLen uint32
		if err := binary.Read(br, binary.LittleEndian, &keyLen); err != nil {
			return nil, fmt.Errorf("lsf: bucket %d key length: %w", b, err)
		}
		if keyLen == 0 || keyLen > 1<<16 || keyLen%4 != 0 {
			return nil, fmt.Errorf("lsf: bucket %d implausible key length %d", b, keyLen)
		}
		key := make([]byte, keyLen)
		if _, err := io.ReadFull(br, key); err != nil {
			return nil, fmt.Errorf("lsf: bucket %d key: %w", b, err)
		}
		var idCount uint32
		if err := binary.Read(br, binary.LittleEndian, &idCount); err != nil {
			return nil, fmt.Errorf("lsf: bucket %d id count: %w", b, err)
		}
		if uint64(idCount) > total {
			return nil, fmt.Errorf("lsf: bucket %d id count %d exceeds total %d", b, idCount, total)
		}
		// Read posting lists in bounded chunks: a corrupt header cannot
		// force a single giant allocation before the stream runs dry.
		ids := make([]int32, 0, min(idCount, 1<<16))
		var chunk [1 << 12]int32
		for remaining := idCount; remaining > 0; {
			c := chunk[:min(remaining, uint32(len(chunk)))]
			if err := binary.Read(br, binary.LittleEndian, c); err != nil {
				return nil, fmt.Errorf("lsf: bucket %d ids: %w", b, err)
			}
			ids = append(ids, c...)
			remaining -= uint32(len(c))
		}
		for _, id := range ids {
			if id < 0 || int(id) >= len(data) {
				return nil, fmt.Errorf("lsf: bucket %d references vector %d outside dataset of %d", b, id, len(data))
			}
		}
		sum += uint64(idCount)
		bld.insertBucket(pathFromKey(key), ids)
	}
	if sum != total {
		return nil, fmt.Errorf("lsf: bucket ids sum to %d, header claims %d", sum, total)
	}
	return bld.freeze(), nil
}

// pathFromKey decodes a PathKey byte string back into its element path.
func pathFromKey(key []byte) []uint32 {
	path := make([]uint32, len(key)/4)
	for k := range path {
		path[k] = uint32(key[4*k])<<24 | uint32(key[4*k+1])<<16 |
			uint32(key[4*k+2])<<8 | uint32(key[4*k+3])
	}
	return path
}
