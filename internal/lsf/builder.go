package lsf

import "skewsim/internal/bitvec"

// Builder is the exported face of index construction for callers that
// already hold filter buckets — the segment layer's memtable freeze and
// segment compaction. BuildIndex computes F(x) per vector and is the
// right entry point when only the data is known; Builder instead replays
// pre-computed (path, ids) buckets straight into the frozen CSR layout,
// so freezing a memtable or merging two frozen segments never recomputes
// a filter.
//
// Paths may repeat across AddBucket calls (compaction merges the same
// path from several segments); postings for a repeated path concatenate
// in call order. Ids are the caller's local id space and must index into
// data. Freeze invalidates the builder.
type Builder struct {
	b *indexBuilder
}

// NewBuilder starts construction of an index over data (retained, not
// copied) that will answer queries through engine.
func NewBuilder(engine *Engine, data []bitvec.Vector) *Builder {
	return &Builder{b: newIndexBuilder(engine, data)}
}

// AddBucket appends ids to the bucket of path, creating the bucket on
// first sight. The path is copied into the arena; ids are copied into
// the posting log. Each posting counts toward TotalFilters, preserving
// the Σ_x |F(x)| identity (every posting is one (vector, filter)
// occurrence).
func (bl *Builder) AddBucket(path []uint32, ids []int32) {
	bl.b.insertBucket(path, ids)
	bl.b.totalFilters += len(ids)
}

// AddTruncated accumulates the count of vectors whose filter generation
// hit the work budget, carried over from the structures being replayed.
func (bl *Builder) AddTruncated(n int) { bl.b.truncatedCount += n }

// Freeze counting-sorts the accumulated buckets into the immutable CSR
// index. The builder must not be used afterwards.
func (bl *Builder) Freeze() *Index {
	ix := bl.b.freeze()
	bl.b = nil
	return ix
}
