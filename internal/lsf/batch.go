package lsf

import (
	"runtime"
	"sync"

	"skewsim/internal/bitvec"
)

// BatchResult is one query's outcome within a batch, mirroring the return
// values of Query.
type BatchResult struct {
	// ID indexes into the data slice; -1 when not found.
	ID         int
	Similarity float64
	Found      bool
	Stats      QueryStats
}

// BatchQuery answers the queries sequentially through the shared
// traversal core, returning one result per query in input order. The
// batch shares a single visited set across queries (the epoch reset makes
// that free), so per-query dedup allocations are amortized away entirely.
func (ix *Index) BatchQuery(qs []bitvec.Vector, threshold float64, m bitvec.Measure) []BatchResult {
	out := make([]BatchResult, len(qs))
	for k, q := range qs {
		out[k] = ix.queryOne(q, threshold, m)
	}
	return out
}

// queryOne is Query packaged as a BatchResult.
func (ix *Index) queryOne(q bitvec.Vector, threshold float64, m bitvec.Measure) BatchResult {
	res := BatchResult{ID: -1}
	res.ID, res.Similarity, res.Stats, res.Found = ix.Query(q, threshold, m)
	return res
}

// QueryParallel is BatchQuery fanned out over `workers` goroutines
// (workers <= 0 selects GOMAXPROCS), mirroring BuildIndexParallel. The
// index is read-only during queries and every worker draws its own
// visited set from the pool, so results are identical to BatchQuery —
// same ids, similarities, and per-query stats, in input order.
func (ix *Index) QueryParallel(qs []bitvec.Vector, threshold float64, m bitvec.Measure, workers int) []BatchResult {
	out := make([]BatchResult, len(qs))
	ForEachParallel(len(qs), workers, func(k int) {
		out[k] = ix.queryOne(qs[k], threshold, m)
	})
	return out
}

// ForEachParallel runs fn(k) for every k in [0, n) over a worker pool:
// workers <= 0 selects GOMAXPROCS, the worker count is clamped to n, and
// one (or zero) workers degrade to a plain sequential loop. It is the
// single fan-out implementation behind parallel preprocessing
// (BuildIndexParallel) and parallel queries at every layer; fn must be
// safe to call concurrently for distinct k.
func ForEachParallel(n, workers int, fn func(k int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for k := 0; k < n; k++ {
			fn(k)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range next {
				fn(k)
			}
		}()
	}
	for k := 0; k < n; k++ {
		next <- k
	}
	close(next)
	wg.Wait()
}
