package lsf

import (
	"bytes"
	"errors"
	"testing"

	"skewsim/internal/bitvec"
)

// openFrozenVariants reopens ix through every AppendFrozen ×
// OpenFrozenBytes combination the storage layer uses: resident
// (heap-decoded) and zero-copy, each over uncompressed and compressed
// posting encodings.
func openFrozenVariants(t *testing.T, ix *Index, e *Engine, data []bitvec.Vector) map[string]*Index {
	t.Helper()
	out := map[string]*Index{"original": ix}
	for _, compress := range []bool{false, true} {
		blob := ix.AppendFrozen(nil, compress)
		for _, zeroCopy := range []bool{false, true} {
			name := "heap"
			if zeroCopy {
				name = "zerocopy"
			}
			if compress {
				name += "+compressed"
			}
			rix, err := OpenFrozenBytes(blob, e, data, zeroCopy)
			if err != nil {
				t.Fatalf("%s: open: %v", name, err)
			}
			out[name] = rix
		}
	}
	return out
}

// TestFrozenBlobDifferential: every reopened variant of a frozen blob
// must behave bit-identically to the index it encoded — same stats,
// same candidate streams in the same order, same query answers — for
// randomized workloads. This is the zero-copy path's correctness
// anchor: the unsafe views and the decode-on-read cold postings have
// no behavior of their own to test, only equivalence.
func TestFrozenBlobDifferential(t *testing.T) {
	m := bitvec.BraunBlanquetMeasure
	for seed := uint64(20); seed <= 24; seed++ {
		e, data, queries := differentialWorkload(t, seed)
		ix, err := BuildIndex(e, data)
		if err != nil {
			t.Fatal(err)
		}
		want := ix.Stats()
		for name, rix := range openFrozenVariants(t, ix, e, data) {
			if got := rix.Stats(); got != want {
				t.Fatalf("seed %d %s: stats %+v, original %+v", seed, name, got, want)
			}
			for k, q := range queries {
				wantIDs, wantStats := ix.CandidateIDs(q)
				gotIDs, gotStats := rix.CandidateIDs(q)
				if gotStats != wantStats || len(gotIDs) != len(wantIDs) {
					t.Fatalf("seed %d %s query %d: candidates %d (%+v), original %d (%+v)",
						seed, name, k, len(gotIDs), gotStats, len(wantIDs), wantStats)
				}
				for i := range gotIDs {
					if gotIDs[i] != wantIDs[i] {
						t.Fatalf("seed %d %s query %d: candidate order diverged at %d: %d vs %d",
							seed, name, k, i, gotIDs[i], wantIDs[i])
					}
				}
				wID, wSim, _, wFound := ix.QueryBest(q, m)
				gID, gSim, _, gFound := rix.QueryBest(q, m)
				if gID != wID || gSim != wSim || gFound != wFound {
					t.Fatalf("seed %d %s query %d: QueryBest (%d, %v, %v), original (%d, %v, %v)",
						seed, name, k, gID, gSim, gFound, wID, wSim, wFound)
				}
			}
			// The bucket dump (serialization, compaction's merge source)
			// must also be identical, cold or not.
			var a, b bytes.Buffer
			if _, err := ix.WriteTo(&a); err != nil {
				t.Fatal(err)
			}
			if _, err := rix.WriteTo(&b); err != nil {
				t.Fatalf("seed %d %s: WriteTo: %v", seed, name, err)
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Fatalf("seed %d %s: bucket dump diverged (%d vs %d bytes)", seed, name, a.Len(), b.Len())
			}
		}
	}
}

// TestFrozenBlobColdReencode: a cold (compressed, zero-copy) index must
// itself re-encode into valid blobs — the compaction-of-cold-segments
// path streams through the decoder.
func TestFrozenBlobColdReencode(t *testing.T) {
	e, data, queries := differentialWorkload(t, 30)
	ix, err := BuildIndex(e, data)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := OpenFrozenBytes(ix.AppendFrozen(nil, true), e, data, true)
	if err != nil {
		t.Fatal(err)
	}
	if !cold.ColdPostings() {
		t.Fatal("zero-copy compressed open is not cold")
	}
	for _, compress := range []bool{false, true} {
		rix, err := OpenFrozenBytes(cold.AppendFrozen(nil, compress), e, data, false)
		if err != nil {
			t.Fatalf("re-encode compress=%v: %v", compress, err)
		}
		for k, q := range queries {
			wantIDs, _ := ix.CandidateIDs(q)
			gotIDs, _ := rix.CandidateIDs(q)
			if len(gotIDs) != len(wantIDs) {
				t.Fatalf("compress=%v query %d: %d candidates, original %d", compress, k, len(gotIDs), len(wantIDs))
			}
			for i := range gotIDs {
				if gotIDs[i] != wantIDs[i] {
					t.Fatalf("compress=%v query %d: diverged at %d", compress, k, i)
				}
			}
		}
	}
}

// TestFrozenBlobRejectsCorruption: every truncation must be rejected,
// and single-byte flips must either be rejected or open into an index
// that does not crash under traversal (CRC catches flips in the real
// container; this layer only guarantees structural safety).
func TestFrozenBlobRejectsCorruption(t *testing.T) {
	e, data, queries := differentialWorkload(t, 31)
	ix, err := BuildIndex(e, data)
	if err != nil {
		t.Fatal(err)
	}
	for _, compress := range []bool{false, true} {
		blob := ix.AppendFrozen(nil, compress)
		// Every cut in the header and first sections, then a bounded odd
		// stride across the rest (odd so cuts land at every alignment) —
		// full per-byte sweeps of a several-hundred-KB blob are minutes
		// under the race detector for no added structural coverage.
		cutStride := (len(blob)/1024 + 1) | 1
		cut := 0
		for cut < len(blob) {
			if _, err := OpenFrozenBytes(blob[:cut], e, data, false); !errors.Is(err, ErrFrozenBlob) && !errors.Is(err, ErrPostingCodec) {
				t.Fatalf("compress=%v truncation at %d accepted (err=%v)", compress, cut, err)
			}
			if cut < 96 {
				cut++
			} else {
				cut += cutStride
			}
		}
		flipStride := (len(blob)/512 + 1) | 1
		for off := 0; off < len(blob); off += flipStride {
			mut := bytes.Clone(blob)
			mut[off] ^= 0x5a
			for _, zeroCopy := range []bool{false, true} {
				rix, err := OpenFrozenBytes(mut, e, data, zeroCopy)
				if err != nil {
					continue
				}
				// Accepted: must traverse without panicking.
				for _, q := range queries[:5] {
					rix.CandidateIDs(q)
				}
			}
		}
	}
}
