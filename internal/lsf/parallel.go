package lsf

import (
	"errors"
	"runtime"

	"skewsim/internal/bitvec"
)

// BuildIndexParallel builds the same index as BuildIndex using `workers`
// goroutines for filter generation (workers <= 0 selects GOMAXPROCS).
// Filter computation is embarrassingly parallel — each vector's F(x)
// depends only on the shared hash functions — while bucket insertion
// stays single-threaded in id order, so the result is bit-identical to
// the serial build.
func BuildIndexParallel(engine *Engine, data []bitvec.Vector, workers int) (*Index, error) {
	if engine == nil {
		return nil, errors.New("lsf: nil engine")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(data) {
		workers = len(data)
	}
	if workers <= 1 {
		return BuildIndex(engine, data)
	}

	sets := make([]FilterSet, len(data))
	ForEachParallel(len(data), workers, func(id int) {
		sets[id] = engine.Filters(data[id])
	})

	ix := newIndex(engine, data)
	for id, fs := range sets {
		ix.addFilterSet(int32(id), fs)
	}
	return ix, nil
}
