package lsf

import (
	"errors"
	"runtime"
	"sync"

	"skewsim/internal/bitvec"
)

// BuildIndexParallel builds the same index as BuildIndex using `workers`
// goroutines for filter generation (workers <= 0 selects GOMAXPROCS).
// Filter computation is embarrassingly parallel — each vector's F(x)
// depends only on the shared hash functions — while bucket insertion
// stays single-threaded in id order, so the result is bit-identical to
// the serial build.
func BuildIndexParallel(engine *Engine, data []bitvec.Vector, workers int) (*Index, error) {
	if engine == nil {
		return nil, errors.New("lsf: nil engine")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(data) {
		workers = len(data)
	}
	if workers <= 1 {
		return BuildIndex(engine, data)
	}

	sets := make([]FilterSet, len(data))
	var wg sync.WaitGroup
	next := make(chan int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for id := range next {
				sets[id] = engine.Filters(data[id])
			}
		}()
	}
	for id := range data {
		next <- id
	}
	close(next)
	wg.Wait()

	ix := &Index{
		engine:  engine,
		data:    data,
		buckets: make(map[string][]int32, len(data)*2),
	}
	for id, fs := range sets {
		if fs.Truncated {
			ix.truncatedCount++
		}
		for _, p := range fs.Paths {
			k := PathKey(p)
			ix.buckets[k] = append(ix.buckets[k], int32(id))
		}
		ix.totalFilters += len(fs.Paths)
	}
	return ix, nil
}
