package lsf

import (
	"errors"
	"runtime"

	"skewsim/internal/bitvec"
)

// BuildIndexParallel builds the same index as BuildIndex using `workers`
// goroutines for filter generation (workers <= 0 selects GOMAXPROCS).
// Filter computation is embarrassingly parallel — each vector's F(x)
// depends only on the shared hash functions — while bucket insertion
// stays single-threaded in id order, so the result is bit-identical to
// the serial build.
func BuildIndexParallel(engine *Engine, data []bitvec.Vector, workers int) (*Index, error) {
	if engine == nil {
		return nil, errors.New("lsf: nil engine")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(data) {
		workers = len(data)
	}
	if workers <= 1 {
		return BuildIndex(engine, data)
	}

	// Each worker fills its own arena-backed FilterSet (one Elems/Spans
	// pair per vector instead of one slice per path), then insertion runs
	// single-threaded in id order so the result is bit-identical.
	sets := make([]FilterSet, len(data))
	ForEachParallel(len(data), workers, func(id int) {
		engine.FiltersInto(data[id], &sets[id])
	})

	b := newIndexBuilder(engine, data)
	for id := range sets {
		b.addFilterSet(int32(id), &sets[id])
	}
	return b.freeze(), nil
}
