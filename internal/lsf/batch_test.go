package lsf

import (
	"testing"

	"skewsim/internal/bitvec"
	"skewsim/internal/dist"
	"skewsim/internal/hashing"
)

// referenceStats recomputes one query's stats the way the pre-refactor
// traversal did — fresh map dedup, string path keys — as an independent
// check that the shared traversal preserved QueryStats semantics
// (Filters / Candidates / Distinct / Truncated) exactly.
func referenceStats(ix *Index, q bitvec.Vector) QueryStats {
	fs := ix.engine.Filters(q)
	stats := QueryStats{Filters: len(fs.Paths), Truncated: fs.Truncated}
	byKey := make(map[string][]int32)
	for b := range ix.pathSpans {
		byKey[PathKey(ix.bucketPath(int32(b)))] = ix.bucketIDs(int32(b))
	}
	seen := make(map[int32]struct{})
	for _, p := range fs.Paths {
		for _, id := range byKey[PathKey(p)] {
			stats.Candidates++
			if _, dup := seen[id]; dup {
				continue
			}
			seen[id] = struct{}{}
			stats.Distinct++
		}
	}
	return stats
}

func TestTraversalStatsMatchReference(t *testing.T) {
	ix, data := buildTestIndex(t, 31)
	for _, q := range data[:50] {
		// Exhaustive walk (impossible threshold) so no early exit hides work.
		_, _, got, _ := ix.Query(q, 2.0, bitvec.BraunBlanquetMeasure)
		want := referenceStats(ix, q)
		if got != want {
			t.Fatalf("stats diverged from reference: got %+v, want %+v", got, want)
		}
		ids, got2 := ix.CandidateIDs(q)
		if got2 != want || len(ids) != want.Distinct {
			t.Fatalf("CandidateIDs stats %+v (%d ids), want %+v", got2, len(ids), want)
		}
	}
}

func TestBatchQueryMatchesSequential(t *testing.T) {
	ix, data := buildTestIndex(t, 32)
	queries := data[:60]
	batch := ix.BatchQuery(queries, 0.6, bitvec.BraunBlanquetMeasure)
	if len(batch) != len(queries) {
		t.Fatalf("got %d results for %d queries", len(batch), len(queries))
	}
	for k, q := range queries {
		id, sim, st, found := ix.Query(q, 0.6, bitvec.BraunBlanquetMeasure)
		r := batch[k]
		if r.ID != id || r.Similarity != sim || r.Stats != st || r.Found != found {
			t.Fatalf("query %d: batch %+v != sequential (%d, %v, %+v, %v)", k, r, id, sim, st, found)
		}
	}
}

func TestQueryParallelMatchesBatch(t *testing.T) {
	ix, data := buildTestIndex(t, 33)
	queries := data[:80]
	want := ix.BatchQuery(queries, 0.5, bitvec.BraunBlanquetMeasure)
	for _, workers := range []int{1, 2, 4, 16, 0} {
		got := ix.QueryParallel(queries, 0.5, bitvec.BraunBlanquetMeasure, workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("workers=%d query %d: %+v != %+v", workers, k, got[k], want[k])
			}
		}
	}
}

func TestQueryParallelEmptyAndTinyBatches(t *testing.T) {
	ix, data := buildTestIndex(t, 34)
	if got := ix.QueryParallel(nil, 0.5, bitvec.BraunBlanquetMeasure, 4); len(got) != 0 {
		t.Errorf("empty batch returned %d results", len(got))
	}
	got := ix.QueryParallel(data[:1], 0.5, bitvec.BraunBlanquetMeasure, 64)
	if len(got) != 1 {
		t.Fatalf("got %d results", len(got))
	}
}

// TestVisitedSetReuse drives many queries through one index so the pooled
// visited set cycles epochs, and verifies dedup never leaks state between
// queries (a stale stamp would suppress real candidates).
func TestVisitedSetReuse(t *testing.T) {
	ix, data := buildTestIndex(t, 35)
	for round := 0; round < 5; round++ {
		for _, q := range data[:30] {
			ids, st := ix.CandidateIDs(q)
			if len(ids) != st.Distinct {
				t.Fatal("distinct count mismatch")
			}
			seen := map[int32]bool{}
			for _, id := range ids {
				if seen[id] {
					t.Fatal("duplicate candidate across visited-set reuse")
				}
				seen[id] = true
			}
		}
	}
}

func TestVisitedEpochWraparound(t *testing.T) {
	var v Visited
	v.Begin(4)
	if !v.FirstVisit(2) || v.FirstVisit(2) {
		t.Fatal("basic visit semantics broken")
	}
	// Force the wrap: epoch overflows to 0, which must clear all stamps
	// rather than alias stamps from 2^32 epochs ago.
	v.epoch = ^uint32(0)
	v.stamp[3] = ^uint32(0) // id 3 "visited" in the epoch about to recur
	v.Begin(4)
	if v.epoch != 1 {
		t.Fatalf("epoch after wrap = %d, want 1", v.epoch)
	}
	if !v.FirstVisit(3) {
		t.Fatal("stale stamp survived epoch wraparound")
	}
	// Growing the universe reallocates and restarts cleanly.
	v.Begin(1000)
	if !v.FirstVisit(999) {
		t.Fatal("grown visited set rejected a fresh id")
	}
}

// TestBucketCollisionChaining simulates two distinct paths landing on the
// same 64-bit key: the builder's chain and the frozen open-addressing
// table must keep their posting lists separate, for both incremental
// inserts and post-freeze lookups.
func TestBucketCollisionChaining(t *testing.T) {
	e, data := parallelTestEngine(t, 10)
	bld := newIndexBuilder(e, data)
	pathA := []uint32{1, 2, 3}
	pathB := []uint32{7, 8} // any other path; we force the collision below

	// Plant B's bucket under A's hash, as if hashPath had collided.
	hA := HashPath(pathA)
	bld.keys = append(bld.keys, hA)
	bld.chain = append(bld.chain, -1)
	bld.byHash[hA] = 0
	bld.pathSpans = append(bld.pathSpans, Span{Off: 0, Len: uint32(len(pathB))})
	bld.pathElems = append(bld.pathElems, pathB...)
	bld.postings = append(bld.postings, posting{bucket: 0, id: 5})

	// insert(A) must walk the chain, see the path mismatch, and open a
	// fresh bucket instead of contaminating B's ids.
	bld.insert(pathA, 1)
	bld.insert(pathA, 2)
	ix := bld.freeze()
	// The frozen probe for A must step past B's slot (same key, different
	// path) and land on A's bucket.
	if ids := ix.postings(pathA); len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Fatalf("postings(A) = %v, want [1 2]", ids)
	}
	// B is only reachable through its bucket number (its planted key is
	// A's hash, not HashPath(B)); read the arenas directly to confirm it
	// survived untouched.
	var viaBucket []int32
	for b := range ix.pathSpans {
		if pathsEqual(ix.bucketPath(int32(b)), pathB) {
			viaBucket = ix.bucketIDs(int32(b))
		}
	}
	if len(viaBucket) != 1 || viaBucket[0] != 5 {
		t.Fatalf("collided bucket B = %v, want [5]", viaBucket)
	}
	if got := len(ix.pathSpans); got != 2 {
		t.Fatalf("bucket count = %d, want 2", got)
	}
}

func TestHashPathPrefixAndPermutationDistinct(t *testing.T) {
	// Not a correctness requirement (chains handle collisions) but the
	// cheap structural cases must not collide systematically.
	paths := [][]uint32{
		{1}, {1, 2}, {2, 1}, {1, 2, 3}, {3, 2, 1}, {258}, {0}, {0, 0x01000000},
	}
	seen := map[uint64][]uint32{}
	for _, p := range paths {
		h := HashPath(p)
		if prev, dup := seen[h]; dup {
			t.Fatalf("HashPath(%v) == HashPath(%v)", p, prev)
		}
		seen[h] = p
	}
}

// TestBatchQueryAgainstCore ties the batch path to an end-to-end search:
// planted self-queries must retrieve themselves identically whether asked
// one at a time or in a parallel batch.
func TestBatchQueryAgainstSelfRetrieval(t *testing.T) {
	n := 300
	d := dist.MustProduct(dist.Fig1Profile(200, 0.2))
	rng := hashing.NewSplitMix64(77)
	data := d.SampleN(rng, n)
	e, err := NewEngine(n, Params{
		Seed:  3,
		Probs: d.Probs(),
		Threshold: func(v bitvec.Vector, j int, i uint32) float64 {
			denom := 0.7*float64(v.Len()) - float64(j)
			if denom <= 1 {
				return 1
			}
			return 1 / denom
		},
		Stop: ProductStopRule(n),
	})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildIndexParallel(e, data, 4)
	if err != nil {
		t.Fatal(err)
	}
	res := ix.QueryParallel(data, 1.0, bitvec.BraunBlanquetMeasure, 0)
	for id, r := range res {
		if r.Stats.Filters == 0 {
			continue
		}
		if !r.Found {
			t.Errorf("vector %d with %d filters not self-retrieved in batch", id, r.Stats.Filters)
			continue
		}
		if !data[r.ID].Equal(data[id]) {
			t.Errorf("vector %d retrieved non-identical %d", id, r.ID)
		}
	}
}
