package lsf

import (
	"testing"

	"skewsim/internal/bitvec"
	"skewsim/internal/dist"
	"skewsim/internal/hashing"
)

func parallelTestEngine(t *testing.T, n int) (*Engine, []bitvec.Vector) {
	t.Helper()
	d := dist.MustProduct(dist.Fig1Profile(150, 0.2))
	rng := hashing.NewSplitMix64(21)
	data := d.SampleN(rng, n)
	e, err := NewEngine(n, Params{
		Seed:  9,
		Probs: d.Probs(),
		Threshold: func(v bitvec.Vector, j int, i uint32) float64 {
			denom := 0.6*float64(v.Len()) - float64(j)
			if denom <= 1 {
				return 1
			}
			return 1 / denom
		},
		Stop: ProductStopRule(n),
	})
	if err != nil {
		t.Fatal(err)
	}
	return e, data
}

// bucketSnapshot flattens the frozen bucket arenas into a path-keyed map
// for representation-independent comparison.
func bucketSnapshot(ix *Index) map[string][]int32 {
	out := make(map[string][]int32, len(ix.pathSpans))
	for b := range ix.pathSpans {
		out[PathKey(ix.bucketPath(int32(b)))] = ix.bucketIDs(int32(b))
	}
	return out
}

func indexesEqual(a, b *Index) bool {
	if a.totalFilters != b.totalFilters || a.truncatedCount != b.truncatedCount {
		return false
	}
	as, bs := bucketSnapshot(a), bucketSnapshot(b)
	if len(as) != len(bs) {
		return false
	}
	for k, ids := range as {
		other, ok := bs[k]
		if !ok || len(other) != len(ids) {
			return false
		}
		for i := range ids {
			if ids[i] != other[i] {
				return false
			}
		}
	}
	return true
}

func TestBuildIndexParallelMatchesSerial(t *testing.T) {
	e, data := parallelTestEngine(t, 300)
	serial, err := BuildIndex(e, data)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 16, 0} {
		par, err := BuildIndexParallel(e, data, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !indexesEqual(serial, par) {
			t.Fatalf("workers=%d: parallel index differs from serial", workers)
		}
	}
}

func TestBuildIndexParallelNilEngine(t *testing.T) {
	if _, err := BuildIndexParallel(nil, nil, 2); err == nil {
		t.Fatal("nil engine should fail")
	}
}

func TestBuildIndexParallelMoreWorkersThanData(t *testing.T) {
	e, data := parallelTestEngine(t, 3)
	ix, err := BuildIndexParallel(e, data, 64)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Stats().Vectors != 3 {
		t.Error("wrong vector count")
	}
}

func TestBuildIndexParallelEmptyData(t *testing.T) {
	e, _ := parallelTestEngine(t, 2)
	ix, err := BuildIndexParallel(e, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Stats().TotalFilters != 0 {
		t.Error("empty data produced filters")
	}
}

func TestBuildIndexParallelQueriesMatchSerial(t *testing.T) {
	e, data := parallelTestEngine(t, 200)
	serial, _ := BuildIndex(e, data)
	par, _ := BuildIndexParallel(e, data, 8)
	for _, q := range data[:40] {
		id1, s1, st1, f1 := serial.Query(q, 0.6, bitvec.BraunBlanquetMeasure)
		id2, s2, st2, f2 := par.Query(q, 0.6, bitvec.BraunBlanquetMeasure)
		if id1 != id2 || s1 != s2 || st1 != st2 || f1 != f2 {
			t.Fatal("parallel-built index answers differently")
		}
	}
}
