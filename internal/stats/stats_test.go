package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || !almostEqual(s.Mean, 2.5, 1e-12) {
		t.Errorf("N=%d Mean=%v", s.N, s.Mean)
	}
	if !almostEqual(s.Var, 5.0/3, 1e-12) {
		t.Errorf("Var=%v, want %v", s.Var, 5.0/3)
	}
	if s.Min != 1 || s.Max != 4 {
		t.Errorf("Min=%v Max=%v", s.Min, s.Max)
	}
	if !almostEqual(s.Median, 2.5, 1e-12) {
		t.Errorf("Median=%v", s.Median)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Error("empty summary should have N=0")
	}
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.Var != 0 || s.Median != 7 {
		t.Errorf("single-element summary wrong: %+v", s)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Input must not be reordered.
	if xs[0] != 4 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantileDegenerate(t *testing.T) {
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty sample should give NaN")
	}
	if !math.IsNaN(Quantile([]float64{1}, -0.1)) || !math.IsNaN(Quantile([]float64{1}, 1.1)) {
		t.Error("out-of-range q should give NaN")
	}
	if got := Quantile([]float64{5}, 0.99); got != 5 {
		t.Errorf("single element quantile = %v", got)
	}
}

func TestMean(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Error("empty mean should be NaN")
	}
	if got := Mean([]float64{2, 4}); got != 3 {
		t.Errorf("Mean = %v", got)
	}
}

func TestFitLineExact(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7} // y = 1 + 2x
	fit, err := FitLine(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 2, 1e-12) || !almostEqual(fit.Intercept, 1, 1e-12) {
		t.Errorf("fit = %+v", fit)
	}
	if !almostEqual(fit.R2, 1, 1e-12) {
		t.Errorf("R2 = %v", fit.R2)
	}
}

func TestFitLineNoisy(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2.1, 3.9, 6.2, 7.8, 10.1}
	fit, err := FitLine(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-2) > 0.1 {
		t.Errorf("slope = %v, want ~2", fit.Slope)
	}
	if fit.R2 < 0.99 {
		t.Errorf("R2 = %v", fit.R2)
	}
}

func TestFitLineErrors(t *testing.T) {
	if _, err := FitLine([]float64{1}, []float64{1}); err == nil {
		t.Error("single point should fail")
	}
	if _, err := FitLine([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := FitLine([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Error("vertical data should fail")
	}
}

func TestFitLineConstantY(t *testing.T) {
	fit, err := FitLine([]float64{1, 2, 3}, []float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if fit.Slope != 0 || fit.R2 != 1 {
		t.Errorf("constant fit = %+v", fit)
	}
}

func TestFitExponentRecoversPowerLaw(t *testing.T) {
	ns := []int{1000, 2000, 4000, 8000, 16000}
	costs := make([]float64, len(ns))
	for i, n := range ns {
		costs[i] = 3 * math.Pow(float64(n), 0.42)
	}
	fit, err := FitExponent(ns, costs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 0.42, 1e-9) {
		t.Errorf("exponent = %v, want 0.42", fit.Slope)
	}
}

func TestFitExponentRejectsNonPositive(t *testing.T) {
	if _, err := FitExponent([]int{0, 1}, []float64{1, 1}); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := FitExponent([]int{1, 2}, []float64{1, 0}); err == nil {
		t.Error("cost=0 should fail")
	}
	if _, err := FitExponent([]int{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 0.1, 0.5, 0.9, 1.5, -1}
	h := Histogram(xs, 0, 1, 2)
	// Bin 0 = [0, 0.5): {0, 0.1, clamped -1}; bin 1 = [0.5, 1): {0.5, 0.9,
	// clamped 1.5}.
	if h[0] != 3 || h[1] != 3 {
		t.Errorf("histogram = %v", h)
	}
}

func TestHistogramDegenerate(t *testing.T) {
	if Histogram([]float64{1}, 0, 1, 0) != nil {
		t.Error("0 buckets should give nil")
	}
	if Histogram([]float64{1}, 1, 1, 3) != nil {
		t.Error("empty range should give nil")
	}
}

func TestHistogramTotalCount(t *testing.T) {
	f := func(raw []float64) bool {
		h := Histogram(raw, -10, 10, 7)
		total := 0
		for _, c := range h {
			total += c
		}
		return total == len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGeometricSpace(t *testing.T) {
	got := GeometricSpace(100, 1600, 5)
	want := []int{100, 200, 400, 800, 1600}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestGeometricSpaceDegenerate(t *testing.T) {
	if GeometricSpace(0, 10, 3) != nil {
		t.Error("lo<1 should give nil")
	}
	if GeometricSpace(10, 5, 3) != nil {
		t.Error("hi<lo should give nil")
	}
	if got := GeometricSpace(5, 100, 1); len(got) != 1 || got[0] != 100 {
		t.Errorf("k=1: %v", got)
	}
	// Heavy duplication collapses.
	got := GeometricSpace(2, 4, 10)
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("not strictly increasing: %v", got)
		}
	}
}
