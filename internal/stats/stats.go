// Package stats provides the small statistical toolkit the experiment
// harness needs: summary statistics, quantiles, histograms, and ordinary
// least squares on log-log data for fitting empirical cost exponents
// against the ρ values the theory predicts (§4, validated in the §7/§8
// reproductions).
package stats

import (
	"errors"
	"fmt"
	"math"
	"slices"
)

// Summary holds the usual moments of a sample.
type Summary struct {
	N      int
	Mean   float64
	Var    float64 // unbiased sample variance
	Std    float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary of xs. It returns a zero Summary for an
// empty sample.
func Summarize(xs []float64) Summary {
	n := len(xs)
	if n == 0 {
		return Summary{}
	}
	s := Summary{N: n, Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(n)
	if n > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Var = ss / float64(n-1)
		s.Std = math.Sqrt(s.Var)
	}
	s.Median = Quantile(xs, 0.5)
	return s
}

// Quantile returns the q-th quantile (q in [0,1]) of xs using linear
// interpolation between order statistics. It copies and sorts internally.
// Returns NaN for an empty sample or q outside [0,1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	slices.Sort(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean, or NaN for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Linear is a fitted line y = Intercept + Slope·x with goodness of fit R².
type Linear struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// FitLine performs ordinary least squares on (x, y) pairs. It needs at
// least two distinct x values.
func FitLine(x, y []float64) (Linear, error) {
	if len(x) != len(y) {
		return Linear{}, fmt.Errorf("stats: length mismatch %d vs %d", len(x), len(y))
	}
	if len(x) < 2 {
		return Linear{}, errors.New("stats: need at least 2 points")
	}
	mx, my := Mean(x), Mean(y)
	sxx, sxy, syy := 0.0, 0.0, 0.0
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Linear{}, errors.New("stats: all x values identical")
	}
	slope := sxy / sxx
	fit := Linear{Slope: slope, Intercept: my - slope*mx}
	if syy == 0 {
		fit.R2 = 1 // constant y perfectly fit by horizontal line
	} else {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	}
	return fit, nil
}

// FitExponent fits cost ≈ a·n^e by OLS on (ln n, ln cost) and returns the
// exponent e. Non-positive values are rejected since the model lives on
// the log scale.
func FitExponent(ns []int, costs []float64) (Linear, error) {
	if len(ns) != len(costs) {
		return Linear{}, fmt.Errorf("stats: length mismatch %d vs %d", len(ns), len(costs))
	}
	lx := make([]float64, len(ns))
	ly := make([]float64, len(costs))
	for i := range ns {
		if ns[i] <= 0 || costs[i] <= 0 {
			return Linear{}, fmt.Errorf("stats: non-positive point (%d, %v) at %d", ns[i], costs[i], i)
		}
		lx[i] = math.Log(float64(ns[i]))
		ly[i] = math.Log(costs[i])
	}
	return FitLine(lx, ly)
}

// Histogram counts xs into `buckets` equal-width bins over [lo, hi).
// Values outside the range are clamped into the first/last bin so the
// total count always equals len(xs).
func Histogram(xs []float64, lo, hi float64, buckets int) []int {
	if buckets < 1 || hi <= lo {
		return nil
	}
	counts := make([]int, buckets)
	w := (hi - lo) / float64(buckets)
	for _, x := range xs {
		b := int((x - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= buckets {
			b = buckets - 1
		}
		counts[b]++
	}
	return counts
}

// GeometricSpace returns k integers spaced geometrically between lo and hi
// (inclusive), deduplicated and sorted: the standard n-axis for scaling
// experiments.
func GeometricSpace(lo, hi, k int) []int {
	if lo < 1 || hi < lo || k < 1 {
		return nil
	}
	if k == 1 {
		return []int{hi}
	}
	ratio := math.Pow(float64(hi)/float64(lo), 1/float64(k-1))
	out := make([]int, 0, k)
	seen := make(map[int]bool, k)
	v := float64(lo)
	for i := 0; i < k; i++ {
		n := int(math.Round(v))
		if n < lo {
			n = lo
		}
		if n > hi {
			n = hi
		}
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
		v *= ratio
	}
	slices.Sort(out)
	return out
}
