// Package promscrape parses and validates Prometheus text exposition
// (version 0.0.4) on the client side. It backs `skewsim metrics` (the
// CI e2e gate), `skewsim load -scrape-metrics`, and the skewgate
// health/staleness probes, which read a backend's replication-lag
// gauges off its /metrics. The parser is deliberately strict — unknown
// sample families, malformed labels, or unparsable values are errors,
// not skips — so a formatting regression in the exposition writer
// (internal/obs) fails loudly at the first scrape.
package promscrape

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Family is one parsed metric family: its TYPE and every sample line
// that resolved to it (histogram _bucket/_sum/_count series included).
type Family struct {
	Name    string
	Type    string
	Help    bool
	Samples []Sample
}

// Sample is one exposition sample line.
type Sample struct {
	Name   string // full sample name (with _bucket/_sum/_count suffix)
	Labels map[string]string
	Value  float64
}

// Parse parses the text format (version 0.0.4). Every sample must
// belong to a family announced by a preceding # TYPE line.
func Parse(r io.Reader) (map[string]*Family, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	fams := make(map[string]*Family)
	n := 0
	for sc.Scan() {
		n++
		line := sc.Text()
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "# HELP "):
			name, _, _ := strings.Cut(strings.TrimPrefix(line, "# HELP "), " ")
			if name == "" {
				return nil, fmt.Errorf("line %d: HELP without a metric name", n)
			}
			fam := fams[name]
			if fam == nil {
				fam = &Family{Name: name}
				fams[name] = fam
			}
			fam.Help = true
		case strings.HasPrefix(line, "# TYPE "):
			name, typ, ok := strings.Cut(strings.TrimPrefix(line, "# TYPE "), " ")
			if !ok || name == "" {
				return nil, fmt.Errorf("line %d: malformed TYPE line %q", n, line)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown metric type %q", n, typ)
			}
			fam := fams[name]
			if fam == nil {
				fam = &Family{Name: name}
				fams[name] = fam
			}
			if fam.Type != "" && fam.Type != typ {
				return nil, fmt.Errorf("line %d: family %s re-typed %s -> %s", n, name, fam.Type, typ)
			}
			fam.Type = typ
		case strings.HasPrefix(line, "#"):
			continue // free-form comment
		default:
			s, err := parseSampleLine(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", n, err)
			}
			fam := resolveFamily(fams, s.Name)
			if fam == nil {
				return nil, fmt.Errorf("line %d: sample %s has no preceding # TYPE", n, s.Name)
			}
			fam.Samples = append(fam.Samples, s)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return fams, nil
}

// resolveFamily maps a sample name to its announced family, accounting
// for the histogram/summary series suffixes.
func resolveFamily(fams map[string]*Family, name string) *Family {
	if f := fams[name]; f != nil && f.Type != "" {
		return f
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base, found := strings.CutSuffix(name, suffix)
		if !found {
			continue
		}
		if f := fams[base]; f != nil && (f.Type == "histogram" || f.Type == "summary") {
			return f
		}
	}
	return nil
}

// parseSampleLine parses `name{k="v",...} value` or `name value`,
// unescaping label values (\\, \", \n).
func parseSampleLine(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	brace := strings.IndexByte(line, '{')
	sp := strings.IndexByte(line, ' ')
	if brace >= 0 && (sp < 0 || brace < sp) {
		s.Name = line[:brace]
		rest = line[brace+1:]
		var err error
		if rest, err = parseLabels(rest, s.Labels); err != nil {
			return s, fmt.Errorf("sample %s: %w", s.Name, err)
		}
	} else {
		if sp < 0 {
			return s, fmt.Errorf("sample line %q has no value", line)
		}
		s.Name = line[:sp]
		rest = line[sp:]
	}
	rest = strings.TrimLeft(rest, " ")
	// A trailing timestamp is legal in the format; the skewsim daemon
	// never writes one, but accept "value [timestamp]".
	valStr, _, _ := strings.Cut(rest, " ")
	v, err := parseSampleValue(valStr)
	if err != nil {
		return s, fmt.Errorf("sample %s: bad value %q", s.Name, valStr)
	}
	s.Value = v
	if !validSampleName(s.Name) {
		return s, fmt.Errorf("invalid sample name %q", s.Name)
	}
	return s, nil
}

// parseLabels consumes `k="v",...}` and returns what follows the brace.
func parseLabels(in string, out map[string]string) (string, error) {
	for {
		eq := strings.IndexByte(in, '=')
		if eq < 0 {
			return "", fmt.Errorf("label pair without '=' in %q", in)
		}
		key := in[:eq]
		if key == "" {
			return "", fmt.Errorf("empty label name")
		}
		in = in[eq+1:]
		if len(in) == 0 || in[0] != '"' {
			return "", fmt.Errorf("label %s: unquoted value", key)
		}
		in = in[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(in); i++ {
			c := in[i]
			if c == '\\' {
				if i+1 >= len(in) {
					return "", fmt.Errorf("label %s: dangling escape", key)
				}
				i++
				switch in[i] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return "", fmt.Errorf("label %s: unknown escape \\%c", key, in[i])
				}
				continue
			}
			if c == '"' {
				in = in[i+1:]
				closed = true
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return "", fmt.Errorf("label %s: unterminated value", key)
		}
		out[key] = val.String()
		if strings.HasPrefix(in, ",") {
			in = in[1:]
			continue
		}
		if strings.HasPrefix(in, "}") {
			return in[1:], nil
		}
		return "", fmt.Errorf("expected ',' or '}' after label %s", key)
	}
}

func parseSampleValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return strconv.ParseFloat("+Inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-Inf", 64)
	}
	return strconv.ParseFloat(s, 64)
}

func validSampleName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// Validate enforces the invariants the daemon's exposition must
// satisfy: every family has HELP + TYPE, and every histogram labelset
// carries a +Inf bucket whose cumulative count equals its _count.
func Validate(fams map[string]*Family) error {
	for name, fam := range fams {
		if fam.Type == "" {
			return fmt.Errorf("family %s: missing # TYPE", name)
		}
		if !fam.Help {
			return fmt.Errorf("family %s: missing # HELP", name)
		}
		if fam.Type != "histogram" {
			continue
		}
		// Group the series by labelset (le excluded).
		inf := map[string]float64{}
		count := map[string]float64{}
		seenCount := map[string]bool{}
		for _, s := range fam.Samples {
			key := labelKeyWithoutLe(s.Labels)
			switch s.Name {
			case name + "_bucket":
				if s.Labels["le"] == "+Inf" {
					inf[key] = s.Value
				}
			case name + "_count":
				count[key] = s.Value
				seenCount[key] = true
			}
		}
		for key, c := range count {
			v, ok := inf[key]
			if !ok {
				return fmt.Errorf("histogram %s{%s}: no +Inf bucket", name, key)
			}
			if v != c {
				return fmt.Errorf("histogram %s{%s}: +Inf bucket %v != count %v", name, key, v, c)
			}
		}
		for key := range inf {
			if !seenCount[key] {
				return fmt.Errorf("histogram %s{%s}: buckets without _count", name, key)
			}
		}
	}
	return nil
}

func labelKeyWithoutLe(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var sb strings.Builder
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", k, labels[k])
	}
	return sb.String()
}

// Scrape fetches, parses, and validates addr's /metrics.
func Scrape(client *http.Client, addr string) (map[string]*Family, error) {
	resp, err := client.Get(strings.TrimSuffix(addr, "/") + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	fams, err := Parse(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("parsing /metrics: %w", err)
	}
	if err := Validate(fams); err != nil {
		return nil, fmt.Errorf("validating /metrics: %w", err)
	}
	return fams, nil
}

// Sum sums a family's plain samples matching the label filter (nil
// filter sums everything; histogram series are excluded).
func Sum(fams map[string]*Family, name string, filter map[string]string) float64 {
	fam := fams[name]
	if fam == nil {
		return 0
	}
	var total float64
sample:
	for _, s := range fam.Samples {
		if s.Name != name {
			continue // histogram series
		}
		for k, want := range filter {
			if s.Labels[k] != want {
				continue sample
			}
		}
		total += s.Value
	}
	return total
}

// Value returns the single plain sample matching the label filter,
// reporting whether exactly one matched — the gauge-reading probe the
// gateway uses (a Sum over a gauge that is unexpectedly absent would
// silently read 0).
func Value(fams map[string]*Family, name string, filter map[string]string) (float64, bool) {
	fam := fams[name]
	if fam == nil {
		return 0, false
	}
	var v float64
	matched := 0
sample:
	for _, s := range fam.Samples {
		if s.Name != name {
			continue
		}
		for k, want := range filter {
			if s.Labels[k] != want {
				continue sample
			}
		}
		v = s.Value
		matched++
	}
	return v, matched == 1
}
