package promscrape

import (
	"strings"
	"testing"
)

const sampleExposition = `# HELP skewsim_http_requests_total API requests served, by endpoint and outcome.
# TYPE skewsim_http_requests_total counter
skewsim_http_requests_total{endpoint="search",outcome="ok"} 41
skewsim_http_requests_total{endpoint="search",outcome="partial"} 2
skewsim_http_requests_total{endpoint="insert",outcome="ok"} 7
# HELP skewsim_http_request_seconds API request latency, by endpoint.
# TYPE skewsim_http_request_seconds histogram
skewsim_http_request_seconds_bucket{endpoint="search",le="0.001"} 40
skewsim_http_request_seconds_bucket{endpoint="search",le="+Inf"} 43
skewsim_http_request_seconds_sum{endpoint="search"} 0.25
skewsim_http_request_seconds_count{endpoint="search"} 43
# HELP skewsim_index_live_vectors Vectors currently live in the index.
# TYPE skewsim_index_live_vectors gauge
skewsim_index_live_vectors 400
`

func TestScrapeParseAndSum(t *testing.T) {
	fams, err := Parse(strings.NewReader(sampleExposition))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if err := Validate(fams); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := Sum(fams, "skewsim_http_requests_total", nil); got != 50 {
		t.Fatalf("sum of requests = %v, want 50", got)
	}
	if got := Sum(fams, "skewsim_http_requests_total", map[string]string{"outcome": "partial"}); got != 2 {
		t.Fatalf("partial requests = %v, want 2", got)
	}
	// Histogram series must not leak into the family sum.
	if got := Sum(fams, "skewsim_http_request_seconds", nil); got != 0 {
		t.Fatalf("histogram family plain-sample sum = %v, want 0", got)
	}
	if fams["skewsim_http_request_seconds"].Type != "histogram" {
		t.Fatalf("request_seconds type = %q", fams["skewsim_http_request_seconds"].Type)
	}
}

func TestScrapeValue(t *testing.T) {
	fams, err := Parse(strings.NewReader(sampleExposition))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if v, ok := Value(fams, "skewsim_index_live_vectors", nil); !ok || v != 400 {
		t.Fatalf("Value(live_vectors) = %v, %v; want 400, true", v, ok)
	}
	if v, ok := Value(fams, "skewsim_http_requests_total", map[string]string{"outcome": "partial"}); !ok || v != 2 {
		t.Fatalf("Value(partial) = %v, %v; want 2, true", v, ok)
	}
	// Ambiguous (two samples match) and absent both report !ok.
	if _, ok := Value(fams, "skewsim_http_requests_total", map[string]string{"outcome": "ok"}); ok {
		t.Fatal("Value over two matching samples reported ok")
	}
	if _, ok := Value(fams, "no_such_family", nil); ok {
		t.Fatal("Value over an absent family reported ok")
	}
}

func TestScrapeLabelEscapes(t *testing.T) {
	in := `# HELP m help
# TYPE m counter
m{path="a\"b\\c\nd"} 1
`
	fams, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	got := fams["m"].Samples[0].Labels["path"]
	if got != "a\"b\\c\nd" {
		t.Fatalf("unescaped label = %q", got)
	}
}

func TestScrapeRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"untyped sample":        "orphan_metric 1\n",
		"bad value":             "# TYPE m counter\n# HELP m h\nm not-a-number\n",
		"unterminated label":    "# TYPE m counter\n# HELP m h\nm{a=\"x} 1\n",
		"unknown type":          "# TYPE m speedometer\n",
		"missing help":          "# TYPE m counter\nm 1\n",
		"inf bucket mismatch":   "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n",
		"buckets without count": "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\n",
	}
	for name, in := range cases {
		fams, err := Parse(strings.NewReader(in))
		if err == nil {
			err = Validate(fams)
		}
		if err == nil {
			t.Errorf("%s: accepted malformed exposition", name)
		}
	}
}
