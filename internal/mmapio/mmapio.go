// Package mmapio memory-maps files for the zero-copy segment open path
// (internal/lsf, internal/segment). On unix builds Open maps the file
// read-only and queries serve straight from the page cache; everywhere
// else — and under the purego build tag, which CI uses to prove every
// portable fallback — it degrades to reading the file into the heap, so
// callers never need to branch on platform.
package mmapio

import "os"

// Mapping is one opened file: Data is either a read-only memory mapping
// or a heap copy of the file (Mapped reports which). Data is immutable;
// it must not be written through and must not be referenced after Close.
type Mapping struct {
	data   []byte
	mapped bool
	unmap  func() error
}

// Data returns the file contents. Views into it (the zero-copy arenas)
// are valid until Close.
func (m *Mapping) Data() []byte { return m.data }

// Mapped reports whether Data is a true memory mapping (false: heap copy).
func (m *Mapping) Mapped() bool { return m.mapped }

// Bytes returns the file length.
func (m *Mapping) Bytes() int64 { return int64(len(m.data)) }

// Close releases the mapping (or frees the heap copy to the GC). Any
// outstanding view into Data becomes invalid. Safe to call twice.
func (m *Mapping) Close() error {
	u := m.unmap
	m.data, m.unmap = nil, nil
	if u != nil {
		return u()
	}
	return nil
}

// Open maps path read-only, falling back to a plain heap read where
// mapping is unavailable (non-unix, purego builds, zero-length files).
func Open(path string) (*Mapping, error) {
	return open(path)
}

// openHeap is the portable fallback: the whole file read onto the heap.
func openHeap(path string) (*Mapping, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return &Mapping{data: b}, nil
}
