//go:build !unix || purego

package mmapio

// open is the portable fallback: no mmap, plain read into the heap.
// The purego build tag forces this path on unix too, so `make
// test-purego` proves the whole storage suite against it.
func open(path string) (*Mapping, error) { return openHeap(path) }
