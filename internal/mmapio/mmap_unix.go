//go:build unix && !purego

package mmapio

import (
	"os"
	"syscall"
)

// open memory-maps path read-only. A zero-length file has nothing to
// map (mmap(2) rejects length 0), so it degrades to the heap path.
func open(path string) (*Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return &Mapping{}, nil
	}
	if size != int64(int(size)) {
		return nil, syscall.EFBIG
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		// Filesystems without mmap support (some network mounts): fall
		// back to the heap read rather than failing the open.
		return openHeap(path)
	}
	return &Mapping{data: b, mapped: true, unmap: func() error { return syscall.Munmap(b) }}, nil
}
