package segment

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"skewsim/internal/bitvec"
	"skewsim/internal/faultinject"
	"skewsim/internal/hashing"
	"skewsim/internal/verify"
	"skewsim/internal/wal"
)

// Fault-injection acceptance tests (the `make test-fault` suite). The
// invariant under every injected storage fault: writes either succeed
// durably, or fail with a clean, typed error that leaves the index
// answering correctly — never corruption. Recovery from the surviving
// files after a fault must be bit-identical to an index that executed
// the same logical prefix and never faulted.

var errInjected = errors.New("injected fault")

// TestFaultWALFsyncNotDurable: an fsync failure on the commit path
// surfaces as ErrNotDurable — the write IS applied (the id is live and
// queryable), the error is retriable, and once the fault clears the
// record recovers like any other.
func TestFaultWALFsyncNotDurable(t *testing.T) {
	d := testDist(t)
	params := testParams(t, d, 64, 2, 91)
	dir := t.TempDir()
	log, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	s, err := Recover(Config{Params: params, N: 64}, log)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}

	rng := hashing.NewSplitMix64(3)
	v0 := d.Sample(rng)
	id0, err := s.Insert(v0)
	if err != nil {
		t.Fatalf("healthy Insert: %v", err)
	}

	restore := faultinject.Set(faultinject.WALFsync, func(...any) error {
		return errInjected
	})
	v1 := d.Sample(rng)
	id1, err := s.Insert(v1)
	if !errors.Is(err, ErrNotDurable) {
		restore()
		t.Fatalf("Insert under fsync fault: err = %v, want ErrNotDurable", err)
	}
	if !errors.Is(err, errInjected) {
		restore()
		t.Fatalf("ErrNotDurable does not wrap the fsync cause: %v", err)
	}
	if id1 <= id0 {
		restore()
		t.Fatalf("not-durable insert id %d not after %d", id1, id0)
	}
	// Applied: the vector is live despite the failed fsync.
	if live := s.Stats().Live; live != 2 {
		restore()
		t.Fatalf("live count %d after not-durable insert, want 2", live)
	}
	restore()

	// Fault cleared: the next write commits and, because fsync batches
	// cover the whole file prefix, retro-actively hardens id1's record.
	v2 := d.Sample(rng)
	if _, err := s.Insert(v2); err != nil {
		t.Fatalf("Insert after fault cleared: %v", err)
	}
	s.Close()

	log2, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatalf("wal.Open after close: %v", err)
	}
	rec, err := Recover(Config{Params: params, N: 64}, log2)
	if err != nil {
		t.Fatalf("Recover after fault: %v", err)
	}
	defer rec.Close()
	if live := rec.Stats().Live; live != 3 {
		t.Fatalf("recovered live count %d, want 3", live)
	}
	// The recovered index — including the not-durable record, whose
	// bytes reached the kernel — answers exactly like a never-faulted
	// reference over the same three vectors.
	ref, err := New(Config{Params: params, N: 64})
	if err != nil {
		t.Fatalf("reference New: %v", err)
	}
	defer ref.Close()
	for _, v := range []bitvec.Vector{v0, v1, v2} {
		if _, err := ref.Insert(v); err != nil {
			t.Fatalf("reference Insert: %v", err)
		}
	}
	assertEquivalent(t, rec, ref, crashQueries(t, 20))
}

// TestFaultCheckpointDiskFull: a disk-full failure writing a freeze's
// checkpoint file leaves the log un-fenced (the records stay the
// durable copy), the index keeps serving, and recovery from the
// surviving files is bit-identical to a never-faulted reference.
func TestFaultCheckpointDiskFull(t *testing.T) {
	const n = 120
	d := testDist(t)
	params := testParams(t, d, n, 3, 92)
	cfg := Config{Params: params, N: n, MemtableSize: 24, MaxSegments: 3}
	dir := t.TempDir()
	log, err := wal.Open(dir, wal.Options{Sync: wal.SyncNever, SegmentBytes: 1 << 12})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	s, err := Recover(cfg, log)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}

	restore := faultinject.Set(faultinject.SegmentCheckpointWrite, func(...any) error {
		return errInjected // ENOSPC stand-in, before the temp file opens
	})
	defer restore()

	data := d.SampleN(hashing.NewSplitMix64(17), n)
	for i, v := range data {
		if _, err := s.Insert(v); err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
		if i%10 == 9 {
			if !s.Delete(int64(i - 5)) {
				t.Fatalf("Delete(%d) reported not live", i-5)
			}
		}
	}
	s.Flush()
	s.WaitIdle() // every freeze has attempted (and failed) its checkpoint

	// No checkpoint file may exist — a partial one would shadow the log.
	if segs, _ := filepath.Glob(filepath.Join(dir, ckptPrefix+"*"+ckptSuffix)); len(segs) != 0 {
		t.Fatalf("checkpoint files written despite injected disk-full: %v", segs)
	}
	// The index still answers: degradation is "no truncation", not
	// "no service".
	queries := crashQueries(t, 20)
	if c, _ := s.CandidatesExt(queries[0]); c == nil && len(data) > 0 {
		t.Log("query returned no candidates (allowed, but suspicious)")
	}
	s.Close()

	// "Crash" while disk is still full: recovery must rebuild the exact
	// index from log records alone.
	log2, err := wal.Open(dir, wal.Options{Sync: wal.SyncNever, SegmentBytes: 1 << 12})
	if err != nil {
		t.Fatalf("wal.Open after crash: %v", err)
	}
	rec, err := Recover(cfg, log2)
	if err != nil {
		t.Fatalf("Recover with disk still full: %v", err)
	}
	defer rec.Close()

	ref, err := New(cfg)
	if err != nil {
		t.Fatalf("reference New: %v", err)
	}
	defer ref.Close()
	for i, v := range data {
		if _, err := ref.Insert(v); err != nil {
			t.Fatalf("reference Insert %d: %v", i, err)
		}
		if i%10 == 9 {
			ref.Delete(int64(i - 5))
		}
	}
	assertEquivalent(t, rec, ref, queries)
}

// TestFaultCancelSegmentQueries: context cancellation aborts the
// segment query paths with the context error and partial (incomplete)
// results; Background-context calls are exactly the plain paths.
func TestFaultCancelSegmentQueries(t *testing.T) {
	const n = 256
	d := testDist(t)
	params := testParams(t, d, n, 3, 93)
	s, err := New(Config{Params: params, N: n, MemtableSize: 64, MaxSegments: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	data := d.SampleN(hashing.NewSplitMix64(21), n)
	for _, v := range data {
		if _, err := s.Insert(v); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	s.Flush()
	s.WaitIdle() // frozen segments + memtable layers all populated

	m := bitvec.BraunBlanquetMeasure
	q := data[5]
	ses := verify.Acquire(m, q)
	defer verify.Release(ses)

	// Background: identical to the plain path, error-free.
	wm, ws, wf := s.QueryBestWith(ses)
	gm, gs, gf, err := s.QueryBestWithContext(context.Background(), ses)
	if err != nil {
		t.Fatalf("QueryBestWithContext(Background): %v", err)
	}
	if gm != wm || gs != ws || gf != wf {
		t.Fatalf("Background QueryBestWithContext diverged: %+v/%+v/%v vs %+v/%+v/%v", gm, gs, gf, wm, ws, wf)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, _, err := s.QueryWithContext(ctx, ses, 0.5); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled QueryWithContext: err = %v", err)
	}
	if _, _, err := s.TopKWithContext(ctx, ses, 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled TopKWithContext: err = %v", err)
	}

	// Batch: Background matches the plain batch; canceled aborts.
	sess := make([]*verify.Session, 4)
	for i := range sess {
		sess[i] = verify.Acquire(m, data[i*3])
		defer verify.Release(sess[i])
	}
	wantRes, wantStats := s.SearchBatch(sess, nil)
	gotRes, gotStats, err := s.SearchBatchContext(context.Background(), sess, nil)
	if err != nil {
		t.Fatalf("SearchBatchContext(Background): %v", err)
	}
	if gotStats != wantStats {
		t.Fatalf("batch stats diverged: %+v vs %+v", gotStats, wantStats)
	}
	for i := range wantRes {
		if gotRes[i] != wantRes[i] {
			t.Fatalf("batch result %d diverged: %+v vs %+v", i, gotRes[i], wantRes[i])
		}
	}
	if _, _, err := s.SearchBatchContext(ctx, sess, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled SearchBatchContext: err = %v", err)
	}
}
