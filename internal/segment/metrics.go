package segment

import (
	"skewsim/internal/obs"
)

// Metrics is the segment layer's instrument set (see internal/obs). One
// Metrics instance is shared by every shard of a server: the counters
// and histograms aggregate naturally across shards because each
// observation is an atomic add into the shared instrument. Attach via
// Config.Metrics; a nil Metrics disables instrumentation entirely (the
// query path then pays one nil compare per query).
//
// Size gauges (memtable vectors, frozen segment count, live/total
// slots) are deliberately NOT here: they are point-in-time reads of
// state IndexStats already reports, so the serving layer registers
// scrape-time GaugeFuncs over Stats() instead of mirroring state.
type Metrics struct {
	// Freezes / Compactions count completed background operations;
	// FreezeSeconds / CompactSeconds are their durations (the freeze
	// clock starts when the worker picks the memtable up, so queue wait
	// is excluded; during WAL recovery the worker is paused and neither
	// moves).
	Freezes        *obs.Counter
	Compactions    *obs.Counter
	FreezeSeconds  *obs.Histogram
	CompactSeconds *obs.Histogram

	// Per-query work histograms, observed once per (shard-)query
	// traversal — the engine-level QueryStats made continuously
	// visible. A drift of the data distribution away from the engines'
	// probability model shows up here first, as a shift of the
	// candidate-count distribution. Batch searches observe their
	// aggregate once per (shard-)batch, tagged by the query="batch"
	// label, because batch stats are not separable per query.
	QueryCandidates *obs.Histogram
	QueryFilters    *obs.Histogram
	QueryDistinct   *obs.Histogram
	QueryTruncated  *obs.Counter

	BatchCandidates *obs.Histogram
	BatchFilters    *obs.Histogram
	BatchDistinct   *obs.Histogram

	// Storage tiering: Demotions/Promotions count completed tier moves
	// (a cold segment's heap arenas dropped / rebuilt); DecodeSeconds is
	// the duration of one promotion's full heap decode. BloomProbes /
	// BloomSkips count per-segment bloom filter consultations and the
	// probes they saved — skips/probes is the filter's hit rate on the
	// workload. Resident/cold byte and segment gauges are Stats() fields
	// (scrape-time GaugeFuncs, per the note above).
	Demotions     *obs.Counter
	Promotions    *obs.Counter
	DecodeSeconds *obs.Histogram
	BloomProbes   *obs.Counter
	BloomSkips    *obs.Counter
}

// NewMetrics registers the segment layer's instruments on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	// Durations: 1µs-ish to ~134s in powers of two, exposed in seconds.
	dur := obs.HistogramOpts{MinPow: 10, MaxPow: 37, Scale: 1e-9}
	// Work counts: 1 to ~1M in powers of two.
	work := obs.HistogramOpts{MinPow: 0, MaxPow: 20}
	single, batch := obs.L("query", "single"), obs.L("query", "batch")
	m := &Metrics{
		Freezes:        reg.Counter("skewsim_segment_freezes_total", "Memtables frozen into CSR segments."),
		Compactions:    reg.Counter("skewsim_segment_compactions_total", "Frozen-segment merges performed."),
		FreezeSeconds:  reg.Histogram("skewsim_segment_freeze_seconds", "Duration of one memtable freeze.", dur),
		CompactSeconds: reg.Histogram("skewsim_segment_compact_seconds", "Duration of one segment compaction.", dur),
		QueryTruncated: reg.Counter("skewsim_query_truncated_total", "Repetitions whose filter generation hit the budget."),
		Demotions:      reg.Counter("skewsim_segment_demotions_total", "Frozen segments demoted to cold (mmap-backed) serving."),
		Promotions:     reg.Counter("skewsim_segment_promotions_total", "Cold segments promoted back to resident heap arenas."),
		DecodeSeconds:  reg.Histogram("skewsim_segment_decode_seconds", "Duration of one promotion's segment decode.", dur),
		BloomProbes:    reg.Counter("skewsim_segment_bloom_probes_total", "Per-segment bloom filter consultations."),
		BloomSkips:     reg.Counter("skewsim_segment_bloom_skips_total", "Segment probes skipped by the bloom filter."),
	}
	m.QueryCandidates = reg.Histogram("skewsim_query_candidates", "Candidate occurrences per shard-query.", work, single)
	m.QueryFilters = reg.Histogram("skewsim_query_filters", "Generated filters per shard-query.", work, single)
	m.QueryDistinct = reg.Histogram("skewsim_query_distinct", "Distinct live candidates verified per shard-query.", work, single)
	m.BatchCandidates = reg.Histogram("skewsim_query_candidates", "Candidate occurrences per shard-query.", work, batch)
	m.BatchFilters = reg.Histogram("skewsim_query_filters", "Generated filters per shard-query.", work, batch)
	m.BatchDistinct = reg.Histogram("skewsim_query_distinct", "Distinct live candidates verified per shard-query.", work, batch)
	return m
}

// observeQuery records one completed (or canceled) single-query
// traversal's stats.
func (m *Metrics) observeQuery(st *QueryStats) {
	m.QueryCandidates.Observe(int64(st.Candidates))
	m.QueryFilters.Observe(int64(st.Filters))
	m.QueryDistinct.Observe(int64(st.Distinct))
	if st.Truncated > 0 {
		m.QueryTruncated.Add(int64(st.Truncated))
	}
	m.observeBloom(st)
}

// observeBatch records one batch traversal's aggregate stats.
func (m *Metrics) observeBatch(st *QueryStats) {
	m.BatchCandidates.Observe(int64(st.Candidates))
	m.BatchFilters.Observe(int64(st.Filters))
	m.BatchDistinct.Observe(int64(st.Distinct))
	if st.Truncated > 0 {
		m.QueryTruncated.Add(int64(st.Truncated))
	}
	m.observeBloom(st)
}

func (m *Metrics) observeBloom(st *QueryStats) {
	if st.BloomProbes > 0 {
		m.BloomProbes.Add(int64(st.BloomProbes))
	}
	if st.BloomSkips > 0 {
		m.BloomSkips.Add(int64(st.BloomSkips))
	}
}
