package segment

import (
	"context"
	"errors"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"skewsim/internal/bitvec"
	"skewsim/internal/faultinject"
	"skewsim/internal/hashing"
	"skewsim/internal/verify"
)

// TestConcurrentMutation interleaves Insert/Delete/Query/TopK/Flush/
// Stats/Snapshot across goroutines while the background worker freezes
// and compacts. Run under -race (the CI race job does) this is the
// concurrency acceptance test; the assertions check the index stays
// internally consistent under the barrage.
func TestConcurrentMutation(t *testing.T) {
	const (
		inserters   = 3
		queriers    = 3
		perInserter = 400
	)
	d := testDist(t)
	params := testParams(t, d, 1024, 3, 77)
	s, err := New(Config{Params: params, N: 1024, MemtableSize: 64, MaxSegments: 3})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()

	var wg sync.WaitGroup
	var inserted, deleted atomic.Int64

	for w := 0; w < inserters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := hashing.NewSplitMix64(uint64(1000 + w))
			for i := 0; i < perInserter; i++ {
				id, err := s.Insert(d.Sample(rng))
				if err != nil {
					t.Errorf("Insert: %v", err)
					return
				}
				inserted.Add(1)
				if i%7 == 3 {
					// Delete an id this goroutine just created so the
					// inserted/deleted accounting stays exact.
					if s.Delete(id) {
						deleted.Add(1)
					} else {
						t.Errorf("Delete(%d) of own insert failed", id)
						return
					}
				}
			}
		}(w)
	}
	for w := 0; w < queriers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := hashing.NewSplitMix64(uint64(2000 + w))
			m := bitvec.BraunBlanquetMeasure
			for i := 0; i < 300; i++ {
				q := d.Sample(rng)
				switch i % 4 {
				case 0:
					// An insert is query-visible the moment Insert's
					// critical section ends, so any returned id is fair
					// game — just exercise the path.
					s.QueryBest(q, m)
				case 1:
					s.TopK(q, 5, m)
				case 2:
					if _, qs := s.CandidatesExt(q); qs.Reps != s.Repetitions() {
						t.Errorf("stats reps %d", qs.Reps)
						return
					}
				case 3:
					s.Query(q, 0.9, m)
				}
				if i%50 == 0 {
					s.Stats()
				}
				if i%120 == 110 {
					if _, err := s.WriteSnapshot(io.Discard); err != nil {
						t.Errorf("WriteSnapshot: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			s.Flush()
		}
	}()

	wg.Wait()
	s.Flush()
	s.WaitIdle()
	st := s.Stats()
	wantLive := int(inserted.Load() - deleted.Load())
	if st.Live != wantLive {
		t.Fatalf("live = %d, want %d (%+v)", st.Live, wantLive, st)
	}
	if st.Memtable != 0 || st.Flushing != 0 {
		t.Fatalf("flush left mutable state: %+v", st)
	}
	if st.Freezes == 0 {
		t.Fatalf("background worker froze nothing: %+v", st)
	}
	if st.Compactions == 0 {
		t.Fatalf("background worker compacted nothing: %+v", st)
	}
}

// TestConcurrentBatchSearch runs SearchBatch (plain and with contexts
// that cancel mid-batch) against a barrage of inserts, deletes,
// freezes, and compactions — with the slow-freeze fault point armed so
// freezes stay in flight while batches traverse the flushing list. Run
// under -race this is the batch path's concurrency acceptance test:
// every batch must see one consistent snapshot (no torn reads, no
// panics), and a canceled batch must return the context error without
// corrupting pooled state for the next caller.
func TestConcurrentBatchSearch(t *testing.T) {
	const (
		inserters   = 2
		batchers    = 3
		perInserter = 300
		batchSize   = 6
	)
	d := testDist(t)
	params := testParams(t, d, 1024, 3, 78)
	s, err := New(Config{Params: params, N: 1024, MemtableSize: 48, MaxSegments: 3})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()

	// Widen the freeze window: each freeze yields the CPU a few times so
	// batches overlap the flushing-list state far more often.
	restore := faultinject.Set(faultinject.SegmentSlowFreeze, func(...any) error {
		for i := 0; i < 4; i++ {
			runtime.Gosched()
		}
		return nil
	})
	defer restore()

	// Seed enough data that batches have candidates from the start.
	rngSeed := hashing.NewSplitMix64(500)
	for i := 0; i < 128; i++ {
		if _, err := s.Insert(d.Sample(rngSeed)); err != nil {
			t.Fatalf("seed Insert: %v", err)
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < inserters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := hashing.NewSplitMix64(uint64(3000 + w))
			for i := 0; i < perInserter; i++ {
				id, err := s.Insert(d.Sample(rng))
				if err != nil {
					t.Errorf("Insert: %v", err)
					return
				}
				if i%5 == 2 && !s.Delete(id) {
					t.Errorf("Delete(%d) of own insert failed", id)
					return
				}
			}
		}(w)
	}
	for w := 0; w < batchers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := hashing.NewSplitMix64(uint64(4000 + w))
			m := bitvec.BraunBlanquetMeasure
			for i := 0; i < 120; i++ {
				sess := make([]*verify.Session, batchSize)
				for k := range sess {
					sess[k] = verify.Acquire(m, d.Sample(rng))
				}
				switch i % 3 {
				case 0: // plain batch, best-match mode
					res, _ := s.SearchBatch(sess, nil)
					if len(res) != batchSize {
						t.Errorf("batch returned %d results, want %d", len(res), batchSize)
					}
				case 1: // threshold mode through an un-canceled context
					th := make([]float64, batchSize)
					for k := range th {
						th[k] = 0.6
					}
					ctx, cancel := context.WithCancel(context.Background())
					if _, _, err := s.SearchBatchContext(ctx, sess, th); err != nil {
						t.Errorf("SearchBatchContext: %v", err)
					}
					cancel()
				case 2: // cancellation racing the batch mid-flight
					ctx, cancel := context.WithCancel(context.Background())
					done := make(chan struct{})
					go func() {
						runtime.Gosched()
						cancel()
						close(done)
					}()
					_, _, err := s.SearchBatchContext(ctx, sess, nil)
					if err != nil && !errors.Is(err, context.Canceled) {
						t.Errorf("canceled batch returned %v", err)
					}
					<-done
				}
				for k := range sess {
					verify.Release(sess[k])
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			s.Flush()
		}
	}()

	wg.Wait()
	s.Flush()
	s.WaitIdle()
	if st := s.Stats(); st.Freezes == 0 {
		t.Fatalf("background worker froze nothing: %+v", st)
	}
}
