package segment

import (
	"io"
	"sync"
	"sync/atomic"
	"testing"

	"skewsim/internal/bitvec"
	"skewsim/internal/hashing"
)

// TestConcurrentMutation interleaves Insert/Delete/Query/TopK/Flush/
// Stats/Snapshot across goroutines while the background worker freezes
// and compacts. Run under -race (the CI race job does) this is the
// concurrency acceptance test; the assertions check the index stays
// internally consistent under the barrage.
func TestConcurrentMutation(t *testing.T) {
	const (
		inserters   = 3
		queriers    = 3
		perInserter = 400
	)
	d := testDist(t)
	params := testParams(t, d, 1024, 3, 77)
	s, err := New(Config{Params: params, N: 1024, MemtableSize: 64, MaxSegments: 3})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()

	var wg sync.WaitGroup
	var inserted, deleted atomic.Int64

	for w := 0; w < inserters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := hashing.NewSplitMix64(uint64(1000 + w))
			for i := 0; i < perInserter; i++ {
				id, err := s.Insert(d.Sample(rng))
				if err != nil {
					t.Errorf("Insert: %v", err)
					return
				}
				inserted.Add(1)
				if i%7 == 3 {
					// Delete an id this goroutine just created so the
					// inserted/deleted accounting stays exact.
					if s.Delete(id) {
						deleted.Add(1)
					} else {
						t.Errorf("Delete(%d) of own insert failed", id)
						return
					}
				}
			}
		}(w)
	}
	for w := 0; w < queriers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := hashing.NewSplitMix64(uint64(2000 + w))
			m := bitvec.BraunBlanquetMeasure
			for i := 0; i < 300; i++ {
				q := d.Sample(rng)
				switch i % 4 {
				case 0:
					// An insert is query-visible the moment Insert's
					// critical section ends, so any returned id is fair
					// game — just exercise the path.
					s.QueryBest(q, m)
				case 1:
					s.TopK(q, 5, m)
				case 2:
					if _, qs := s.CandidatesExt(q); qs.Reps != s.Repetitions() {
						t.Errorf("stats reps %d", qs.Reps)
						return
					}
				case 3:
					s.Query(q, 0.9, m)
				}
				if i%50 == 0 {
					s.Stats()
				}
				if i%120 == 110 {
					if _, err := s.WriteSnapshot(io.Discard); err != nil {
						t.Errorf("WriteSnapshot: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			s.Flush()
		}
	}()

	wg.Wait()
	s.Flush()
	s.WaitIdle()
	st := s.Stats()
	wantLive := int(inserted.Load() - deleted.Load())
	if st.Live != wantLive {
		t.Fatalf("live = %d, want %d (%+v)", st.Live, wantLive, st)
	}
	if st.Memtable != 0 || st.Flushing != 0 {
		t.Fatalf("flush left mutable state: %+v", st)
	}
	if st.Freezes == 0 {
		t.Fatalf("background worker froze nothing: %+v", st)
	}
	if st.Compactions == 0 {
		t.Fatalf("background worker compacted nothing: %+v", st)
	}
}
