package segment

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"skewsim/internal/bitvec"
	"skewsim/internal/lsf"
)

// Snapshot format. The engines are NOT serialized (they are
// deterministic given Config.Params, which the caller owns — the same
// contract as lsf/core serialization); each frozen segment's buckets
// reuse the lsf bucket dump (lsf.Index.WriteTo / ReadIndexFrom), and
// memtable vectors are stored raw and re-inserted on restore, which
// recomputes their filters deterministically. All little-endian:
//
//	magic    [6]byte "SKSNP1"
//	reps     uint32  (validated against Config.Params on restore)
//	nextAuto int64   (auto-id high-water mark)
//	segCount uint32
//	segCount × segment:
//	  count uint32
//	  count × vector: ext int64, alive uint8, nbits uint32, bits []uint32
//	  reps × lsf bucket dump
//	memCount uint32  (memtable vectors: active + flushing)
//	memCount × vector: ext int64, alive uint8, nbits uint32, bits []uint32
//
// (The magic was "SKSEG1" through PR 9; that name now belongs to the
// on-disk segment container in storage.go. Both ends of the snapshot
// stream — WriteSnapshot and its replication wrapper — live in this
// repository, so the rename is not a wire break.)
var snapMagic = [6]byte{'S', 'K', 'S', 'N', 'P', '1'}

// WriteSnapshot serializes the index under the read lock: one
// consistent cut, concurrent with queries, blocking writers for the
// duration. Tombstoned vectors are stored with a dead flag in both
// sections: segment posting lists reference them by local id, and
// memtable ones must keep their external ids registered so a restored
// index still refuses to resurrect them (the InsertWithID contract).
func (s *SegmentedIndex) WriteSnapshot(w io.Writer) (int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	bw := bufio.NewWriter(w)
	var n int64
	write := func(v interface{}) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	writeVec := func(slot int32, withAlive bool) error {
		if err := write(s.ext[slot]); err != nil {
			return err
		}
		if withAlive {
			a := uint8(0)
			if s.alive[slot] {
				a = 1
			}
			if err := write(a); err != nil {
				return err
			}
		}
		bits := s.vecs[slot].Bits()
		if err := write(uint32(len(bits))); err != nil {
			return err
		}
		return write(bits)
	}
	if err := write(snapMagic); err != nil {
		return n, err
	}
	if err := write(uint32(len(s.engines))); err != nil {
		return n, err
	}
	if err := write(s.nextAuto); err != nil {
		return n, err
	}
	if err := write(uint32(len(s.segs))); err != nil {
		return n, err
	}
	for _, g := range s.segs {
		if err := write(uint32(len(g.slots))); err != nil {
			return n, err
		}
		for _, slot := range g.slots {
			if err := writeVec(slot, true); err != nil {
				return n, err
			}
		}
		if err := bw.Flush(); err != nil {
			return n, err
		}
		for _, rep := range g.reps {
			m, err := rep.WriteTo(w)
			n += m
			if err != nil {
				return n, err
			}
		}
	}
	memSlots := make([]int32, 0, len(s.mem.slots))
	for _, mt := range s.flushing {
		memSlots = append(memSlots, mt.slots...)
	}
	memSlots = append(memSlots, s.mem.slots...)
	if err := write(uint32(len(memSlots))); err != nil {
		return n, err
	}
	for _, slot := range memSlots {
		if err := writeVec(slot, true); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadSnapshot reconstructs an index from a WriteSnapshot stream. cfg
// must carry the same Params the snapshotted index was built with
// (identical seeds — posting lists only mean anything under the same
// filter mappings). The restored index starts its own background
// worker; the caller owns Closing it.
func ReadSnapshot(r io.Reader, cfg Config) (*SegmentedIndex, error) {
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	ok := false
	defer func() {
		if !ok {
			s.Close()
		}
	}()
	br := bufio.NewReader(r)
	var magic [6]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("segment: reading magic: %w", err)
	}
	if magic != snapMagic {
		return nil, fmt.Errorf("segment: bad magic %q", magic)
	}
	var reps, segCount uint32
	var nextAuto int64
	if err := binary.Read(br, binary.LittleEndian, &reps); err != nil {
		return nil, fmt.Errorf("segment: reading header: %w", err)
	}
	if int(reps) != len(s.engines) {
		return nil, fmt.Errorf("segment: snapshot has %d repetitions, config %d", reps, len(s.engines))
	}
	if err := binary.Read(br, binary.LittleEndian, &nextAuto); err != nil {
		return nil, fmt.Errorf("segment: reading header: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, &segCount); err != nil {
		return nil, fmt.Errorf("segment: reading header: %w", err)
	}
	const maxReasonable = 1 << 24
	if segCount > 1<<20 {
		return nil, fmt.Errorf("segment: implausible segment count %d", segCount)
	}
	readVec := func(withAlive bool) (ext int64, alive bool, v bitvec.Vector, err error) {
		if err = binary.Read(br, binary.LittleEndian, &ext); err != nil {
			return
		}
		alive = true
		if withAlive {
			var a uint8
			if err = binary.Read(br, binary.LittleEndian, &a); err != nil {
				return
			}
			alive = a == 1
		}
		var nbits uint32
		if err = binary.Read(br, binary.LittleEndian, &nbits); err != nil {
			return
		}
		if nbits > maxReasonable {
			err = fmt.Errorf("segment: implausible vector size %d", nbits)
			return
		}
		bits := make([]uint32, nbits)
		if err = binary.Read(br, binary.LittleEndian, bits); err != nil {
			return
		}
		// New (not FromSorted) so a corrupted stream cannot panic; for a
		// faithful stream the bits are already sorted and New is a copy.
		v = bitvec.New(bits...)
		return
	}
	for gi := uint32(0); gi < segCount; gi++ {
		var count uint32
		if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
			return nil, fmt.Errorf("segment: segment %d header: %w", gi, err)
		}
		if count > maxReasonable {
			return nil, fmt.Errorf("segment: implausible segment size %d", count)
		}
		seg := &frozenSeg{
			slots: make([]int32, count),
			reps:  make([]*lsf.Index, len(s.engines)),
		}
		data := make([]bitvec.Vector, count)
		for i := uint32(0); i < count; i++ {
			ext, alive, v, err := readVec(true)
			if err != nil {
				return nil, fmt.Errorf("segment: segment %d vector %d: %w", gi, i, err)
			}
			slot, err := s.restoreSlot(ext, alive, v)
			if err != nil {
				return nil, err
			}
			seg.slots[i] = slot
			data[i] = v
		}
		for ri := range seg.reps {
			ix, err := lsf.ReadIndexFrom(br, s.engines[ri], data)
			if err != nil {
				return nil, fmt.Errorf("segment: segment %d repetition %d: %w", gi, ri, err)
			}
			seg.reps[ri] = ix
		}
		s.mu.Lock()
		s.segs = append(s.segs, seg)
		s.cond.Broadcast() // the worker compacts if the snapshot overflows MaxSegments
		s.mu.Unlock()
	}
	var memCount uint32
	if err := binary.Read(br, binary.LittleEndian, &memCount); err != nil {
		return nil, fmt.Errorf("segment: memtable header: %w", err)
	}
	if memCount > maxReasonable {
		return nil, fmt.Errorf("segment: implausible memtable size %d", memCount)
	}
	for i := uint32(0); i < memCount; i++ {
		ext, alive, v, err := readVec(true)
		if err != nil {
			return nil, fmt.Errorf("segment: memtable vector %d: %w", i, err)
		}
		if err := s.InsertWithID(ext, v); err != nil {
			return nil, err
		}
		// Re-insert then tombstone: the id stays registered (never
		// resurrectable), exactly as in the snapshotted index.
		if !alive {
			s.Delete(ext)
		}
	}
	s.mu.Lock()
	if nextAuto > s.nextAuto {
		s.nextAuto = nextAuto
	}
	s.mu.Unlock()
	ok = true
	return s, nil
}

// restoreSlot allocates a slot for a snapshot-restored segment vector
// without going through the memtable (its postings already live in the
// segment being read).
func (s *SegmentedIndex) restoreSlot(ext int64, alive bool, v bitvec.Vector) (int32, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, taken := s.slotOf[ext]; taken {
		return 0, fmt.Errorf("segment: snapshot repeats id %d", ext)
	}
	slot := int32(len(s.vecs))
	s.vecs = append(s.vecs, v)
	// The snapshot never stores packed forms (the on-disk format is
	// unchanged); they are rebuilt deterministically slot by slot here.
	s.packed.Append(v)
	s.alive = append(s.alive, alive)
	s.ext = append(s.ext, ext)
	s.slotOf[ext] = slot
	if ext >= s.nextAuto {
		s.nextAuto = ext + 1
	}
	if alive {
		s.live++
	} else {
		// Keep the tombstone registry complete: future WAL checkpoint
		// files must list every dead id so fenced delete records stay
		// recoverable.
		s.deadExt = append(s.deadExt, ext)
	}
	return slot, nil
}
