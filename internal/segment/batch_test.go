package segment

import (
	"testing"

	"skewsim/internal/bitvec"
	"skewsim/internal/hashing"
	"skewsim/internal/verify"
)

// batchTestIndex builds a SegmentedIndex with frozen segments, a live
// memtable, and tombstones — every layer the batch executor walks.
func batchTestIndex(t *testing.T) (*SegmentedIndex, []bitvec.Vector) {
	t.Helper()
	const n = 500
	d := testDist(t)
	params := testParams(t, d, n, 3, 7)
	s, err := New(Config{Params: params, N: n, MemtableSize: 96, MaxSegments: 100})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(s.Close)
	rng := hashing.NewSplitMix64(3)
	data := d.SampleN(rng, n)
	ids := make([]int64, n)
	for i, v := range data {
		if ids[i], err = s.Insert(v); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	for k := 0; k < 60; k++ {
		s.Delete(ids[rng.NextBelow(n)])
	}
	s.WaitIdle()
	if st := s.Stats(); st.Segments < 2 || st.Memtable == 0 {
		t.Fatalf("layer mix not exercised: %+v", st)
	}
	qs := d.SampleN(rng, 50)
	qs = append(qs, bitvec.New(), data[3])
	return s, qs
}

// batchSessions acquires one verify session per query, released on
// test cleanup.
func batchSessions(t *testing.T, m bitvec.Measure, qs []bitvec.Vector) []*verify.Session {
	t.Helper()
	sess := make([]*verify.Session, len(qs))
	for k, q := range qs {
		sess[k] = verify.Acquire(m, q)
	}
	t.Cleanup(func() {
		for _, se := range sess {
			verify.Release(se)
		}
	})
	return sess
}

// TestSearchBatchBestDifferential asserts SearchBatch (best mode)
// against per-query QueryBestWith: found flags and best similarities
// must match exactly, the returned id must be the lowest external id
// achieving the best similarity (checked against the exhaustive TopK
// candidate list, which shares the batch's candidate set), and the
// summed work stats must equal the singles'.
func TestSearchBatchBestDifferential(t *testing.T) {
	s, qs := batchTestIndex(t)
	m := bitvec.BraunBlanquetMeasure
	sess := batchSessions(t, m, qs)

	got, gotStats := s.SearchBatch(sess, nil)
	if len(got) != len(qs) {
		t.Fatalf("SearchBatch returned %d results, want %d", len(got), len(qs))
	}
	var wantStats QueryStats
	for k := range qs {
		match, st, found := s.QueryBestWith(sess[k])
		wantStats.Filters += st.Filters
		wantStats.Truncated += st.Truncated
		wantStats.Candidates += st.Candidates
		wantStats.Distinct += st.Distinct
		if got[k].Found != found {
			t.Errorf("query %d: batch found=%v, single found=%v", k, got[k].Found, found)
			continue
		}
		if !found {
			continue
		}
		if got[k].Match.Similarity != match.Similarity {
			t.Errorf("query %d: batch sim %v != single sim %v", k, got[k].Match.Similarity, match.Similarity)
		}
		// The batch tie-break is lowest-id-among-best; TopK sorts by
		// similarity desc then id asc over the same candidate set, so
		// the expected id is the first entry at the best similarity.
		if match.Similarity > 0 {
			topAll, _ := s.TopKWith(sess[k], 1<<20)
			if len(topAll) == 0 || topAll[0].Similarity != match.Similarity {
				t.Fatalf("query %d: TopK disagrees with QueryBest", k)
			}
			if got[k].Match.ID != topAll[0].ID {
				t.Errorf("query %d: batch id %d, want lowest-id best %d", k, got[k].Match.ID, topAll[0].ID)
			}
		}
	}
	if gotStats.Filters != wantStats.Filters || gotStats.Truncated != wantStats.Truncated ||
		gotStats.Candidates != wantStats.Candidates || gotStats.Distinct != wantStats.Distinct {
		t.Errorf("batch stats %+v, want sums %+v", gotStats, wantStats)
	}
	if gotStats.Reps != s.Repetitions() {
		t.Errorf("batch Reps = %d, want %d (once per batch)", gotStats.Reps, s.Repetitions())
	}
}

// TestSearchBatchThresholdDifferential asserts threshold mode: found
// must agree with the single-query threshold path (a passing match
// exists iff one exists), and a found match must itself pass and be
// the best passing candidate.
func TestSearchBatchThresholdDifferential(t *testing.T) {
	s, qs := batchTestIndex(t)
	m := bitvec.BraunBlanquetMeasure
	sess := batchSessions(t, m, qs)
	const threshold = 0.4
	thresholds := make([]float64, len(qs))
	for k := range thresholds {
		thresholds[k] = threshold
	}

	got, _ := s.SearchBatch(sess, thresholds)
	for k := range qs {
		_, _, found := s.QueryWith(sess[k], threshold)
		if got[k].Found != found {
			t.Errorf("query %d: batch found=%v, single found=%v", k, got[k].Found, found)
			continue
		}
		if !found {
			continue
		}
		if got[k].Match.Similarity < threshold {
			t.Errorf("query %d: batch match sim %v below threshold", k, got[k].Match.Similarity)
		}
		// The batch's threshold match is the best passing candidate:
		// it must equal the best candidate overall (which passes, since
		// some candidate does).
		best, _, _ := s.QueryBestWith(sess[k])
		if got[k].Match.Similarity != best.Similarity {
			t.Errorf("query %d: batch sim %v != best sim %v", k, got[k].Match.Similarity, best.Similarity)
		}
	}

	// Mismatched thresholds length must panic loudly, not misattribute.
	defer func() {
		if recover() == nil {
			t.Error("mismatched thresholds length should panic")
		}
	}()
	s.SearchBatch(sess, thresholds[:1])
}
