package segment

import (
	"slices"
	"testing"
	"time"

	"skewsim/internal/bitvec"
	"skewsim/internal/core"
	"skewsim/internal/dist"
	"skewsim/internal/hashing"
	"skewsim/internal/obs"
)

// benchIndex builds a segmented index over n Zipf vectors. layered=true
// leaves the LSM shape ragged (several frozen segments plus a live
// memtable); layered=false compacts everything into one frozen segment,
// which is the static-index baseline the layered overhead is measured
// against. A non-nil metrics sink arms the observability hot path.
func benchIndex(b *testing.B, n int, layered bool, metrics *Metrics) (*SegmentedIndex, []bitvec.Vector) {
	b.Helper()
	d, err := dist.NewProduct(dist.Zipf(256, 0.5, 1.0))
	if err != nil {
		b.Fatal(err)
	}
	params, err := core.EngineParams(core.Adversarial, d, n, 0.5, core.Options{Seed: 9, Repetitions: 4})
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{Params: params, N: n, MemtableSize: n / 8, MaxSegments: 100, Metrics: metrics}
	if !layered {
		cfg.MaxSegments = 1
	}
	s, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.Close)
	rng := hashing.NewSplitMix64(17)
	for _, v := range d.SampleN(rng, n) {
		if _, err := s.Insert(v); err != nil {
			b.Fatal(err)
		}
	}
	if !layered {
		s.Flush()
	}
	s.WaitIdle()
	return s, d.SampleN(rng, 256)
}

// BenchmarkSegmentedQuery compares query cost through the layered shape
// (memtable + several frozen segments) against the fully compacted
// single-segment form — the price of servability over the frozen-only
// index, per query.
func BenchmarkSegmentedQuery(b *testing.B) {
	for _, bc := range []struct {
		name    string
		layered bool
	}{
		{"layered", true},
		{"frozen-only", false},
	} {
		b.Run(bc.name, func(b *testing.B) {
			s, qs := benchIndex(b, 4096, bc.layered, nil)
			st := s.Stats()
			b.ReportMetric(float64(st.Segments), "segments")
			b.ReportMetric(float64(st.Memtable), "memtable")
			m := bitvec.BraunBlanquetMeasure
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.QueryBest(qs[i%len(qs)], m)
			}
		})
	}
}

// BenchmarkQueryPathInstrumented measures what the observability layer
// adds to the query hot path: the identical layered QueryBest workload
// on ONE index, toggling its metrics sink between interleaved timed
// pairs. One index (not a bare and an instrumented twin) because
// allocation placement alone swings same-shaped indexes by double
// digits; interleaved (not back-to-back sub-benchmarks) because runs
// drift ~10% on shared runners — either effect would swamp the few
// atomic adds under test. The per-side timings surface as the
// bare-ns/op and instr-ns/op custom metrics; benchguard's -within gate
// holds instr within 5% of bare inside the one record, keeping the
// bound meaningful on any machine. The pair's order alternates each
// iteration (the second run of the same query hits warm cache, and a
// fixed order hands that ~35% discount entirely to one side), and each
// side reports its p75 rather than its mean — a single GC pause or
// scheduler preemption landing on one side shifts that side's sum by
// hundreds of ns/op, while a matching quantile of per-query samples
// shrugs off fat-tail outliers. p75 specifically because the sample
// distribution is bimodal: the warm-cache repeats cluster near 1µs
// where a fixed ~50ns sink cost reads as 5% all by itself, while p75
// sits in the cold-traversal mode — the realistic serving case, since
// production queries are distinct rather than back-to-back repeats.
// Toggling cfg.Metrics mid-run is
// safe here: the worker is idle (no inserts, so no freeze reads it)
// and queries run on this goroutine. The index is serving-sized (16k
// vectors): the sink's cost is a fixed ~70ns per query, so the ratio
// the gate bounds is only meaningful against a realistic traversal,
// not a toy index whose warm-cache queries run in under a microsecond.
func BenchmarkQueryPathInstrumented(b *testing.B) {
	s, qs := benchIndex(b, 16384, true, nil)
	met := NewMetrics(obs.NewRegistry())
	m := bitvec.BraunBlanquetMeasure
	// An odd-length query cycle, or the period-2 order alternation
	// locks onto query-index parity and each side's cold samples come
	// from disjoint query subsets — per-query cost spread then reads as
	// fake overhead (±8% observed).
	if len(qs)%2 == 0 {
		qs = qs[:len(qs)-1]
	}
	bareNs := make([]int64, 0, b.N)
	insNs := make([]int64, 0, b.N)
	run := func(metrics *Metrics, q bitvec.Vector) int64 {
		s.cfg.Metrics = metrics
		t0 := time.Now()
		s.QueryBest(q, m)
		return int64(time.Since(t0))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		if i%2 == 0 {
			bareNs = append(bareNs, run(nil, q))
			insNs = append(insNs, run(met, q))
		} else {
			insNs = append(insNs, run(met, q))
			bareNs = append(bareNs, run(nil, q))
		}
	}
	b.StopTimer()
	slices.Sort(bareNs)
	slices.Sort(insNs)
	b.ReportMetric(float64(bareNs[3*len(bareNs)/4]), "bare-ns/op")
	b.ReportMetric(float64(insNs[3*len(insNs)/4]), "instr-ns/op")
}

// BenchmarkSegmentedInsert measures online insert cost (filter
// generation plus memtable append; freeze amortizes in the background
// worker).
func BenchmarkSegmentedInsert(b *testing.B) {
	d, err := dist.NewProduct(dist.Zipf(256, 0.5, 1.0))
	if err != nil {
		b.Fatal(err)
	}
	params, err := core.EngineParams(core.Adversarial, d, 4096, 0.5, core.Options{Seed: 9, Repetitions: 4})
	if err != nil {
		b.Fatal(err)
	}
	s, err := New(Config{Params: params, N: 4096, MemtableSize: 1024, MaxSegments: 8})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.Close)
	rng := hashing.NewSplitMix64(23)
	vs := d.SampleN(rng, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Insert(vs[i%len(vs)]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	s.WaitIdle()
}
