package segment

import (
	"testing"

	"skewsim/internal/bitvec"
	"skewsim/internal/core"
	"skewsim/internal/dist"
	"skewsim/internal/hashing"
)

// benchIndex builds a segmented index over n Zipf vectors. layered=true
// leaves the LSM shape ragged (several frozen segments plus a live
// memtable); layered=false compacts everything into one frozen segment,
// which is the static-index baseline the layered overhead is measured
// against.
func benchIndex(b *testing.B, n int, layered bool) (*SegmentedIndex, []bitvec.Vector) {
	b.Helper()
	d, err := dist.NewProduct(dist.Zipf(256, 0.5, 1.0))
	if err != nil {
		b.Fatal(err)
	}
	params, err := core.EngineParams(core.Adversarial, d, n, 0.5, core.Options{Seed: 9, Repetitions: 4})
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{Params: params, N: n, MemtableSize: n / 8, MaxSegments: 100}
	if !layered {
		cfg.MaxSegments = 1
	}
	s, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.Close)
	rng := hashing.NewSplitMix64(17)
	for _, v := range d.SampleN(rng, n) {
		if _, err := s.Insert(v); err != nil {
			b.Fatal(err)
		}
	}
	if !layered {
		s.Flush()
	}
	s.WaitIdle()
	return s, d.SampleN(rng, 256)
}

// BenchmarkSegmentedQuery compares query cost through the layered shape
// (memtable + several frozen segments) against the fully compacted
// single-segment form — the price of servability over the frozen-only
// index, per query.
func BenchmarkSegmentedQuery(b *testing.B) {
	for _, bc := range []struct {
		name    string
		layered bool
	}{
		{"layered", true},
		{"frozen-only", false},
	} {
		b.Run(bc.name, func(b *testing.B) {
			s, qs := benchIndex(b, 4096, bc.layered)
			st := s.Stats()
			b.ReportMetric(float64(st.Segments), "segments")
			b.ReportMetric(float64(st.Memtable), "memtable")
			m := bitvec.BraunBlanquetMeasure
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.QueryBest(qs[i%len(qs)], m)
			}
		})
	}
}

// BenchmarkSegmentedInsert measures online insert cost (filter
// generation plus memtable append; freeze amortizes in the background
// worker).
func BenchmarkSegmentedInsert(b *testing.B) {
	d, err := dist.NewProduct(dist.Zipf(256, 0.5, 1.0))
	if err != nil {
		b.Fatal(err)
	}
	params, err := core.EngineParams(core.Adversarial, d, 4096, 0.5, core.Options{Seed: 9, Repetitions: 4})
	if err != nil {
		b.Fatal(err)
	}
	s, err := New(Config{Params: params, N: 4096, MemtableSize: 1024, MaxSegments: 8})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.Close)
	rng := hashing.NewSplitMix64(23)
	vs := d.SampleN(rng, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Insert(vs[i%len(vs)]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	s.WaitIdle()
}
