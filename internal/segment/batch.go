package segment

import (
	"cmp"
	"context"
	"slices"

	"skewsim/internal/lsf"
	"skewsim/internal/verify"
)

// BatchResult is one query's outcome in a batch search.
type BatchResult struct {
	Match Match
	Found bool
}

// SearchBatch answers a batch of queries in one pass over the index,
// under one read lock (every query sees the same snapshot). Work that
// the single-query path repeats per query is amortized across the
// batch:
//
//   - one filter generation per repetition engine covers the whole
//     batch: all queries' filter sets for a repetition are computed
//     back to back while the engine's tables are hot;
//   - each frozen segment is visited once per batch per repetition,
//     and within it every query's resolved posting spans are walked in
//     ascending arena offset (posting-array order), so the segment's
//     CSR arena is read as sequentially as the bucket mix allows;
//   - each query's verify session (its packed bitmap) is built once by
//     the caller and reused across every layer — and, at the server
//     level, every shard.
//
// thresholds selects the semantics: nil answers best-match for every
// query (found means the query had any candidate, like QueryBest);
// otherwise thresholds[k] is query k's minimum similarity and found
// means a candidate at or above it exists (the batch analogue of
// Query, which returns some passing match — SearchBatch returns the
// best one, verifying exhaustively instead of stopping at the first).
//
// Per query, the candidate set — the distinct live slots sharing a
// filter with the query — is exactly the single-query path's; only the
// visit order differs. Results are deterministic regardless of that
// order: the reported match is the candidate with the highest
// similarity, ties broken by lowest external id. (The single-query
// QueryBest keeps the first-encountered of equal-similarity
// candidates instead, so on exact ties the two paths may name
// different — equally similar — ids.)
//
// The aggregate stats count batch-level work: Reps and Segments count
// each repetition and frozen segment once per batch (not once per
// query); Filters, Truncated, Candidates, and Distinct sum over all
// queries and equal the sums of the corresponding single-query stats.
func (s *SegmentedIndex) SearchBatch(sess []*verify.Session, thresholds []float64) ([]BatchResult, QueryStats) {
	out, stats, _ := s.SearchBatchContext(nil, sess, thresholds)
	return out, stats
}

// SearchBatchContext is SearchBatch with cooperative cancellation: ctx
// is polled between filter generations and posting-span walks, so an
// abandoned batch releases the read lock within one span instead of
// finishing the pass. On cancellation the partial results gathered so
// far are returned alongside the context error and must be treated as
// incomplete. A nil or never-canceled ctx costs one nil compare per
// checkpoint.
func (s *SegmentedIndex) SearchBatchContext(ctx context.Context, sess []*verify.Session, thresholds []float64) ([]BatchResult, QueryStats, error) {
	cc := lsf.NewCancelCheck(ctx)
	var stats QueryStats
	nq := len(sess)
	if nq == 0 {
		return nil, stats, nil
	}
	if thresholds != nil && len(thresholds) != nq {
		panic("segment: SearchBatch thresholds length does not match sessions")
	}
	if m := s.cfg.Metrics; m != nil {
		// One aggregate observation per shard-batch (query="batch"
		// children), on every exit path including cancellation.
		defer func() { m.observeBatch(&stats) }()
	}
	out := make([]BatchResult, nq)
	best := make([]float64, nq)
	for k := range best {
		best[k] = -1
	}

	s.mu.RLock()
	defer s.mu.RUnlock()
	stats.Segments = len(s.segs)
	vis := make([]*lsf.Visited, nq)
	for k := range vis {
		vis[k] = s.visitPool.Get(len(s.vecs))
	}
	defer func() {
		for _, v := range vis {
			s.visitPool.Put(v)
		}
	}()

	emit := func(k int, slot int32) {
		stats.Candidates++
		if !vis[k].FirstVisit(slot) || !s.alive[slot] {
			return
		}
		stats.Distinct++
		// Prune at the running best, non-strictly: equal-similarity
		// candidates must surface so the lowest-id tie-break can apply.
		t := -1.0
		if thresholds != nil {
			t = thresholds[k]
		}
		if out[k].Found && best[k] > t {
			t = best[k]
		}
		if sim, ok := sess[k].AtLeast(&s.packed, s.vecs, slot, t); ok {
			ext := s.ext[slot]
			if !out[k].Found || sim > best[k] || (sim == best[k] && ext < out[k].Match.ID) {
				out[k] = BatchResult{Match: Match{ID: ext, Similarity: sim}, Found: true}
				best[k] = sim
			}
		}
	}

	fss := make([]*lsf.FilterSet, nq)
	releaseFss := func() {
		for k := range fss {
			if fss[k] != nil {
				s.fsPool.Put(fss[k])
				fss[k] = nil
			}
		}
	}
	hashes := make([][]uint64, nq)
	var refs []lsf.PostingRef
	var coldBuf []int32
	for r, eng := range s.engines {
		stats.Reps++
		// One filter generation for the whole batch, and one path hash
		// per (query, filter) shared by every layer below: memtable
		// bucket maps, segment bloom filters, and frozen key tables.
		for k := range sess {
			fs := s.getFilterSet()
			eng.FiltersIntoCancel(sess[k].Query(), fs, cc)
			stats.Filters += fs.Len()
			if fs.Truncated {
				stats.Truncated++
			}
			fss[k] = fs
			hashes[k] = hashes[k][:0]
			for i := 0; i < fs.Len(); i++ {
				hashes[k] = append(hashes[k], lsf.HashPath(fs.Path(i)))
			}
		}
		if cc.Err() != nil {
			releaseFss()
			return out, stats, cc.Err()
		}
		// Mutable layers: chained-bucket maps, probed per query in
		// filter order (they are small; blocking buys nothing here).
		for k, fs := range fss {
			for i := 0; i < fs.Len(); i++ {
				if cc != nil && cc.Check() {
					releaseFss()
					return out, stats, cc.Err()
				}
				path := fs.Path(i)
				for _, slot := range s.mem.reps[r].postingsHash(hashes[k][i], path) {
					emit(k, slot)
				}
				for _, mt := range s.flushing {
					for _, slot := range mt.reps[r].postingsHash(hashes[k][i], path) {
						emit(k, slot)
					}
				}
			}
		}
		// Frozen segments: visit each once for the whole batch; per
		// query, resolve all bucket probes first, then walk the posting
		// spans in ascending arena offset. The segment bloom filter
		// screens each probe; for a cold segment a skip avoids touching
		// the mapping at all.
		for _, g := range s.segs {
			ix := g.reps[r]
			for k, fs := range fss {
				if cc != nil && cc.Check() {
					releaseFss()
					return out, stats, cc.Err()
				}
				refs = refs[:0]
				for i := 0; i < fs.Len(); i++ {
					h := hashes[k][i]
					if g.bloom != nil {
						stats.BloomProbes++
						if !g.bloom.mayContain(h) {
							stats.BloomSkips++
							continue
						}
					}
					if ref, ok := ix.PathRefHash(h, fs.Path(i)); ok && ref.Len > 0 {
						refs = append(refs, ref)
					}
				}
				slices.SortFunc(refs, func(a, b lsf.PostingRef) int {
					return cmp.Compare(a.Off, b.Off)
				})
				for _, ref := range refs {
					for _, lid := range ix.RefIDsBuf(ref, &coldBuf) {
						emit(k, g.slots[lid])
					}
				}
			}
		}
		releaseFss()
	}
	return out, stats, nil
}
