package segment

import (
	"bytes"
	"fmt"
	"slices"
	"testing"

	"skewsim/internal/bitvec"
	"skewsim/internal/core"
	"skewsim/internal/dist"
	"skewsim/internal/hashing"
	"skewsim/internal/join"
	"skewsim/internal/lsf"
)

// testParams builds the paper's adversarial engine parameters the way a
// serving deployment would: core.EngineParams with a fixed expected
// size, so the segmented index and the static comparator run identical
// filter mappings.
func testParams(t *testing.T, d *dist.Product, n, reps int, seed uint64) []lsf.Params {
	t.Helper()
	params, err := core.EngineParams(core.Adversarial, d, n, 0.5, core.Options{
		Seed:        seed,
		Repetitions: reps,
	})
	if err != nil {
		t.Fatalf("EngineParams: %v", err)
	}
	return params
}

func testDist(t *testing.T) *dist.Product {
	t.Helper()
	d, err := dist.NewProduct(dist.Zipf(64, 0.5, 1.0))
	if err != nil {
		t.Fatalf("NewProduct: %v", err)
	}
	return d
}

// staticCandidates reproduces the union-over-repetitions candidate set
// of a single static build over data: one lsf.BuildIndex per repetition
// engine parameterization, deduplicated in first-encounter order.
type staticIndex struct {
	reps []*lsf.Index
	data []bitvec.Vector
}

func buildStatic(t *testing.T, params []lsf.Params, n int, data []bitvec.Vector) *staticIndex {
	t.Helper()
	st := &staticIndex{data: data}
	for _, p := range params {
		eng, err := lsf.NewEngine(n, p)
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		ix, err := lsf.BuildIndex(eng, data)
		if err != nil {
			t.Fatalf("BuildIndex: %v", err)
		}
		st.reps = append(st.reps, ix)
	}
	return st
}

func (st *staticIndex) candidates(q bitvec.Vector) []int32 {
	seen := make(map[int32]bool)
	var out []int32
	for _, rep := range st.reps {
		rep.ForEachCandidate(q, func(id int32) bool {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
			return true
		})
	}
	return out
}

// TestDifferentialStatic is the acceptance test: a SegmentedIndex with
// at least two frozen segments plus a live memtable, under a randomized
// insert/delete workload, answers with exactly the candidate set (and
// best/top-k similarities) of a static per-repetition build over the
// equivalent final data.
func TestDifferentialStatic(t *testing.T) {
	const (
		n       = 600
		reps    = 4
		deletes = 150
		queries = 80
	)
	d := testDist(t)
	params := testParams(t, d, n, reps, 42)
	rng := hashing.NewSplitMix64(99)

	s, err := New(Config{Params: params, N: n, MemtableSize: 128, MaxSegments: 100})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()

	data := d.SampleN(rng, n)
	ids := make([]int64, n)
	for i, v := range data {
		id, err := s.Insert(v)
		if err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
		ids[i] = id
	}
	// Delete a random subset, including vectors already frozen into
	// segments and vectors still in the memtable.
	deleted := make(map[int64]bool)
	for len(deleted) < deletes {
		id := ids[rng.NextBelow(uint64(n))]
		if !deleted[id] {
			if !s.Delete(id) {
				t.Fatalf("Delete(%d) reported not live", id)
			}
			deleted[id] = true
		}
	}
	s.WaitIdle()
	st := s.Stats()
	if st.Segments < 2 {
		t.Fatalf("want >= 2 frozen segments, got %+v", st)
	}
	if st.Memtable == 0 {
		t.Fatalf("want a non-empty live memtable, got %+v", st)
	}
	if st.Live != n-deletes {
		t.Fatalf("live = %d, want %d", st.Live, n-deletes)
	}

	// Equivalent final data: the live vectors in insertion order. Static
	// id i maps to external id liveIDs[i].
	var liveData []bitvec.Vector
	var liveIDs []int64
	for i, id := range ids {
		if !deleted[id] {
			liveData = append(liveData, data[i])
			liveIDs = append(liveIDs, id)
		}
	}
	static := buildStatic(t, params, n, liveData)

	qs := d.SampleN(rng, queries)
	qs = append(qs, liveData[0], liveData[len(liveData)-1]) // planted exact hits
	for qi, q := range qs {
		want := make(map[int64]bool)
		for _, sid := range static.candidates(q) {
			want[liveIDs[sid]] = true
		}
		got, _ := s.CandidatesExt(q)
		if len(got) != len(want) {
			t.Fatalf("query %d: %d candidates, want %d", qi, len(got), len(want))
		}
		for _, id := range got {
			if !want[id] {
				t.Fatalf("query %d: unexpected candidate %d", qi, id)
			}
			if deleted[id] {
				t.Fatalf("query %d: tombstoned candidate %d returned", qi, id)
			}
		}

		// Best-match similarity must agree with an exhaustive scan over
		// the static candidate set.
		m := bitvec.BraunBlanquetMeasure
		bestSim := -1.0
		bestID := int64(-1)
		for _, sid := range static.candidates(q) {
			if sim := m.Similarity(q, liveData[sid]); sim > bestSim || (sim == bestSim && liveIDs[sid] < bestID) {
				bestSim, bestID = sim, liveIDs[sid]
			}
		}
		match, _, found := s.QueryBest(q, m)
		if found != (bestSim >= 0) {
			t.Fatalf("query %d: found=%v, static best %v", qi, found, bestSim)
		}
		if found && match.Similarity != bestSim {
			t.Fatalf("query %d: best similarity %v, want %v", qi, match.Similarity, bestSim)
		}

		// Top-k agrees entry by entry (the tie order — similarity desc,
		// external id asc — is shared because auto ids are monotone in
		// insertion order, as are static ids).
		wantTop := topKStatic(q, static, liveIDs, m, 5)
		gotTop, _ := s.TopK(q, 5, m)
		if len(gotTop) != len(wantTop) {
			t.Fatalf("query %d: top-k %d entries, want %d", qi, len(gotTop), len(wantTop))
		}
		for i := range gotTop {
			if gotTop[i] != wantTop[i] {
				t.Fatalf("query %d: top-k[%d] = %+v, want %+v", qi, i, gotTop[i], wantTop[i])
			}
		}
	}
}

func topKStatic(q bitvec.Vector, st *staticIndex, liveIDs []int64, m bitvec.Measure, k int) []Match {
	var matches []Match
	for _, sid := range st.candidates(q) {
		if sim := m.Similarity(q, st.data[sid]); sim > 0 {
			matches = append(matches, Match{ID: liveIDs[sid], Similarity: sim})
		}
	}
	SortMatches(matches)
	if len(matches) > k {
		matches = matches[:k]
	}
	return matches
}

// TestCompaction forces merges and checks the candidate set survives
// them with tombstones physically dropped.
func TestCompaction(t *testing.T) {
	const n = 512
	d := testDist(t)
	params := testParams(t, d, n, 3, 7)
	rng := hashing.NewSplitMix64(3)

	s, err := New(Config{Params: params, N: n, MemtableSize: 32, MaxSegments: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	data := d.SampleN(rng, n)
	for _, v := range data {
		if _, err := s.Insert(v); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	// Tombstone every odd insert, then force the worker through its
	// backlog: segments must compact to <= MaxSegments and reclaim dead
	// vectors from merged segments.
	for id := int64(1); id < n; id += 2 {
		s.Delete(id)
	}
	s.Flush()
	s.WaitIdle()
	st := s.Stats()
	if st.Segments > 2 {
		t.Fatalf("compaction left %d segments, want <= 2", st.Segments)
	}
	if st.Compactions == 0 {
		t.Fatalf("no compactions ran: %+v", st)
	}
	total := 0
	for _, sz := range st.SegmentSizes {
		total += sz
	}
	if total >= n {
		t.Fatalf("compaction reclaimed nothing: %d vectors frozen for %d live", total, st.Live)
	}

	var liveData []bitvec.Vector
	var liveIDs []int64
	for i, v := range data {
		if int64(i)%2 == 0 {
			liveData = append(liveData, v)
			liveIDs = append(liveIDs, int64(i))
		}
	}
	static := buildStatic(t, params, n, liveData)
	for qi, q := range d.SampleN(rng, 40) {
		want := make(map[int64]bool)
		for _, sid := range static.candidates(q) {
			want[liveIDs[sid]] = true
		}
		got, _ := s.CandidatesExt(q)
		if len(got) != len(want) {
			t.Fatalf("query %d: %d candidates, want %d", qi, len(got), len(want))
		}
		for _, id := range got {
			if !want[id] {
				t.Fatalf("query %d: unexpected candidate %d", qi, id)
			}
		}
	}
}

// TestSnapshotRoundTrip: segments + memtable + tombstones survive a
// WriteSnapshot/ReadSnapshot cycle, and a second snapshot of the
// restored index is byte-identical (the format is deterministic given
// the same layered state).
func TestSnapshotRoundTrip(t *testing.T) {
	const n = 300
	d := testDist(t)
	params := testParams(t, d, n, 3, 11)
	cfg := Config{Params: params, N: n, MemtableSize: 64, MaxSegments: 100}
	rng := hashing.NewSplitMix64(8)

	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	data := d.SampleN(rng, n)
	for _, v := range data {
		if _, err := s.Insert(v); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	for id := int64(0); id < n; id += 5 {
		s.Delete(id)
	}
	s.WaitIdle() // flushing list empty: snapshot layering is stable

	var buf bytes.Buffer
	if _, err := s.WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	snap1 := slices.Clone(buf.Bytes())

	r, err := ReadSnapshot(&buf, cfg)
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	defer r.Close()
	r.WaitIdle()

	if got, want := r.Stats().Live, s.Stats().Live; got != want {
		t.Fatalf("restored live = %d, want %d", got, want)
	}
	for qi, q := range d.SampleN(rng, 40) {
		want, _ := s.CandidatesExt(q)
		got, _ := r.CandidatesExt(q)
		slices.Sort(want)
		slices.Sort(got)
		if !slices.Equal(want, got) {
			t.Fatalf("query %d: restored candidates %v, want %v", qi, got, want)
		}
	}

	// Inserting into the restored index never reuses an id.
	id, err := r.Insert(data[0])
	if err != nil {
		t.Fatalf("Insert after restore: %v", err)
	}
	if id < n {
		t.Fatalf("restored index reused id %d (nextAuto not restored)", id)
	}

	var buf2 bytes.Buffer
	r2, err := ReadSnapshot(bytes.NewReader(snap1), cfg)
	if err != nil {
		t.Fatalf("ReadSnapshot (second): %v", err)
	}
	defer r2.Close()
	if _, err := r2.WriteSnapshot(&buf2); err != nil {
		t.Fatalf("WriteSnapshot (restored): %v", err)
	}
	if !bytes.Equal(snap1, buf2.Bytes()) {
		t.Fatalf("snapshot not stable across a round trip: %d vs %d bytes", len(snap1), buf2.Len())
	}
}

// TestSnapshotBurnsDeletedMemtableIDs: an id deleted while its vector
// is still in the memtable must stay unusable after a snapshot/restore
// cycle — same never-reuse contract as the live index.
func TestSnapshotBurnsDeletedMemtableIDs(t *testing.T) {
	d := testDist(t)
	params := testParams(t, d, 64, 2, 1)
	cfg := Config{Params: params, N: 64, MemtableSize: 1024}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	v := bitvec.New(30, 31, 32)
	if err := s.InsertWithID(7, v); err != nil {
		t.Fatalf("InsertWithID: %v", err)
	}
	if !s.Delete(7) {
		t.Fatal("Delete failed")
	}
	var buf bytes.Buffer
	if _, err := s.WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	r, err := ReadSnapshot(&buf, cfg)
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	defer r.Close()
	if err := r.InsertWithID(7, v); err == nil {
		t.Fatal("restored index resurrected a deleted memtable id")
	}
	if got := r.Stats().Live; got != 0 {
		t.Fatalf("restored live = %d, want 0", got)
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	d := testDist(t)
	params := testParams(t, d, 64, 2, 1)
	cfg := Config{Params: params, N: 64}
	for _, tc := range [][]byte{
		nil,
		[]byte("not a snapshot"),
		append([]byte("SKSNP1"), bytes.Repeat([]byte{0xff}, 16)...),
	} {
		if _, err := ReadSnapshot(bytes.NewReader(tc), cfg); err == nil {
			t.Fatalf("ReadSnapshot(%q...) succeeded on garbage", tc)
		}
	}
}

// TestJoinSeam: a SegmentedIndex drops into the join driver through the
// CandidateSource interface and produces the same pairs as the same
// join over a static build (slot ids map to static ids because no
// deletes occurred).
func TestJoinSeam(t *testing.T) {
	const n = 200
	d := testDist(t)
	params := testParams(t, d, n, 3, 5)
	rng := hashing.NewSplitMix64(21)
	s, err := New(Config{Params: params, N: n, MemtableSize: 64, MaxSegments: 100})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	data := d.SampleN(rng, n)
	for _, v := range data {
		if _, err := s.Insert(v); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	s.WaitIdle()
	var _ join.CandidateSource = s // compile-time seam check

	r := d.SampleN(rng, 50)
	pairs, _, err := join.Run(s, r, 0.4, bitvec.BraunBlanquetMeasure)
	if err != nil {
		t.Fatalf("join.Run: %v", err)
	}
	static := buildStatic(t, params, n, data)
	wantPairs, _, err := join.Run(candSource{static}, r, 0.4, bitvec.BraunBlanquetMeasure)
	if err != nil {
		t.Fatalf("join.Run static: %v", err)
	}
	if !slices.Equal(pairs, wantPairs) {
		t.Fatalf("segmented join: %d pairs, static join: %d pairs", len(pairs), len(wantPairs))
	}
}

type candSource struct{ st *staticIndex }

func (c candSource) Candidates(q bitvec.Vector) []int32 { return c.st.candidates(q) }
func (c candSource) Data() []bitvec.Vector              { return c.st.data }

// TestConfigNegativeValues: non-positive sizing knobs fall back to
// defaults instead of wedging the worker (a negative MaxSegments once
// made needsCompact true with zero segments — an instant worker panic).
func TestConfigNegativeValues(t *testing.T) {
	d := testDist(t)
	params := testParams(t, d, 64, 2, 1)
	s, err := New(Config{Params: params, N: -5, MemtableSize: -1, MaxSegments: -3})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	for i := 0; i < 10; i++ {
		if _, err := s.Insert(bitvec.New(uint32(30+i), uint32(40+i))); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	s.Flush()
	s.WaitIdle() // would panic/hang before the clamp
	if got := s.Stats().Live; got != 10 {
		t.Fatalf("live = %d, want 10", got)
	}
}

func TestInsertWithIDRejectsReuse(t *testing.T) {
	d := testDist(t)
	params := testParams(t, d, 64, 2, 1)
	s, err := New(Config{Params: params, N: 64})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	v := bitvec.New(1, 2, 3)
	if err := s.InsertWithID(7, v); err != nil {
		t.Fatalf("InsertWithID: %v", err)
	}
	if err := s.InsertWithID(7, v); err == nil {
		t.Fatal("duplicate id accepted")
	}
	if !s.Delete(7) {
		t.Fatal("Delete(7) failed")
	}
	if err := s.InsertWithID(7, v); err == nil {
		t.Fatal("deleted id resurrected")
	}
	if s.Delete(7) {
		t.Fatal("double delete reported live")
	}
	// Auto ids skip past caller-chosen ones.
	id, err := s.Insert(v)
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if id <= 7 {
		t.Fatalf("auto id %d collides with caller range", id)
	}
}

func TestQueryStatsAccounting(t *testing.T) {
	const n = 256
	d := testDist(t)
	params := testParams(t, d, n, 3, 13)
	rng := hashing.NewSplitMix64(4)
	s, err := New(Config{Params: params, N: n, MemtableSize: 64, MaxSegments: 100})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	for _, v := range d.SampleN(rng, n) {
		if _, err := s.Insert(v); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	s.WaitIdle()
	q := d.Sample(rng)
	cands, qs := s.CandidatesExt(q)
	if qs.Reps != 3 {
		t.Fatalf("Reps = %d, want 3", qs.Reps)
	}
	if qs.Distinct != len(cands) {
		t.Fatalf("Distinct = %d, returned %d candidates", qs.Distinct, len(cands))
	}
	if qs.Candidates < qs.Distinct {
		t.Fatalf("Candidates %d < Distinct %d", qs.Candidates, qs.Distinct)
	}
	if qs.Segments != s.Stats().Segments {
		t.Fatalf("Segments = %d, want %d", qs.Segments, s.Stats().Segments)
	}
}

func Example() {
	d := dist.MustProduct(dist.Zipf(32, 0.5, 1.0))
	params, _ := core.EngineParams(core.Adversarial, d, 1024, 0.5, core.Options{Seed: 1, Repetitions: 3})
	s, _ := New(Config{Params: params, N: 1024})
	defer s.Close()
	id, _ := s.Insert(bitvec.New(1, 2, 3, 4))
	match, _, found := s.QueryBest(bitvec.New(1, 2, 3, 4), bitvec.BraunBlanquetMeasure)
	fmt.Println(id, found, match.ID)
	// Output: 0 true 0
}
