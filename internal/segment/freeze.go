package segment

import (
	"cmp"
	"slices"

	"skewsim/internal/bitvec"
	"skewsim/internal/faultinject"
	"skewsim/internal/lsf"
)

// buildSegment freezes a rotated (immutable) memtable into a frozenSeg:
// per repetition, the memtable's buckets replay into the lsf Builder
// with local ids, so no filter is recomputed and the result is the same
// CSR layout BuildIndex would produce over the memtable's vectors.
// Tombstoned vectors are kept (their postings reference local ids);
// compaction reclaims them. Returns nil for an empty memtable.
func (s *SegmentedIndex) buildSegment(mt *memtable) *frozenSeg {
	if len(mt.slots) == 0 {
		return nil
	}
	// Test-only stall: lets the fault harness hold a freeze in flight
	// while concurrent queries and writes proceed against the flushing
	// list. The returned error is deliberately ignored — a slow freeze
	// is a delay, not a failure.
	_ = faultinject.Fire(faultinject.SegmentSlowFreeze, len(mt.slots))
	data := make([]bitvec.Vector, len(mt.slots))
	s.mu.RLock()
	for i, slot := range mt.slots {
		data[i] = s.vecs[slot]
	}
	s.mu.RUnlock()
	local := make(map[int32]int32, len(mt.slots))
	for i, slot := range mt.slots {
		local[slot] = int32(i)
	}
	seg := &frozenSeg{
		slots: slices.Clone(mt.slots),
		reps:  make([]*lsf.Index, len(mt.reps)),
	}
	var lids []int32
	for r := range mt.reps {
		bl := lsf.NewBuilder(s.engines[r], data)
		for _, chain := range mt.reps[r].buckets {
			for _, b := range chain {
				lids = lids[:0]
				for _, slot := range b.slots {
					lids = append(lids, local[slot])
				}
				bl.AddBucket(b.path, lids)
			}
		}
		bl.AddTruncated(mt.reps[r].truncated)
		seg.reps[r] = bl.Freeze()
	}
	seg.bloom = buildSegBloom(seg.reps)
	seg.arenaBytes = segArenaBytes(seg.reps)
	return seg
}

// mergeSegments compacts two frozen segments into one, replaying both
// CSR indexes' buckets (lsf.ForEachBucket — again no filter is
// recomputed) while dropping every posting of a tombstoned vector; the
// merged data slice holds live vectors only, which is where Delete's
// space is finally reclaimed. The alive snapshot is taken once up
// front: a Delete racing the merge lands in the global tombstone array
// and stays masked at query time, so it is reclaimed by a later merge
// instead of this one. Returns nil when nothing is live.
func (s *SegmentedIndex) mergeSegments(a, b *frozenSeg) *frozenSeg {
	srcs := []*frozenSeg{a, b}
	var slots []int32
	s.mu.RLock()
	for _, g := range srcs {
		for _, slot := range g.slots {
			if s.alive[slot] {
				slots = append(slots, slot)
			}
		}
	}
	data := make([]bitvec.Vector, len(slots))
	for i, slot := range slots {
		data[i] = s.vecs[slot]
	}
	s.mu.RUnlock()
	if len(slots) == 0 {
		return nil
	}
	local := make(map[int32]int32, len(slots))
	for i, slot := range slots {
		local[slot] = int32(i)
	}
	merged := &frozenSeg{slots: slots, reps: make([]*lsf.Index, len(a.reps))}
	var lids []int32
	for r := range merged.reps {
		bl := lsf.NewBuilder(s.engines[r], data)
		for _, g := range srcs {
			g.reps[r].ForEachBucket(func(path []uint32, ids []int32) {
				lids = lids[:0]
				for _, lid := range ids {
					if nl, ok := local[g.slots[lid]]; ok {
						lids = append(lids, nl)
					}
				}
				if len(lids) > 0 {
					bl.AddBucket(path, lids)
				}
			})
			bl.AddTruncated(g.reps[r].Stats().Truncated)
		}
		merged.reps[r] = bl.Freeze()
	}
	merged.bloom = buildSegBloom(merged.reps)
	merged.arenaBytes = segArenaBytes(merged.reps)
	return merged
}

// SortMatches orders matches by decreasing similarity, ties by ascending
// id — the deterministic order shared by TopK at every layer (segment,
// shard router).
func SortMatches(matches []Match) {
	slices.SortFunc(matches, func(a, b Match) int {
		if a.Similarity != b.Similarity {
			return cmp.Compare(b.Similarity, a.Similarity)
		}
		return cmp.Compare(a.ID, b.ID)
	})
}
