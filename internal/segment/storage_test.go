package segment

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"sync"
	"testing"

	"skewsim/internal/bitvec"
	"skewsim/internal/hashing"
	"skewsim/internal/lsf"
	"skewsim/internal/mmapio"
	"skewsim/internal/verify"
)

// Differential storage suite: an index reopened from its SKSEG1 files —
// through the zero-copy mmap path, the heap-decoded resident path, and
// both posting encodings — must answer every query entry point
// bit-identically to the index that wrote them.

var allMeasures = []bitvec.Measure{
	bitvec.BraunBlanquetMeasure,
	bitvec.JaccardMeasure,
	bitvec.DiceMeasure,
	bitvec.OverlapMeasure,
	bitvec.CosineMeasure,
}

// storageOps drives a deterministic insert/delete workload with
// explicit ids and periodic flushes, so both the storage-backed index
// and its in-memory reference cut several frozen segments (and, with a
// small MaxSegments, compact) with tombstones interleaved throughout.
// The final flush freezes the tail so everything — the trailing
// deletes' tombstone snapshot included — reaches the segment files.
func storageOps(t *testing.T, s *SegmentedIndex, data []bitvec.Vector) {
	t.Helper()
	for i, v := range data {
		if err := s.InsertWithID(int64(i), v); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		if i%6 == 5 {
			if !s.Delete(int64(i - 3)) {
				t.Fatalf("Delete(%d) reported not live", i-3)
			}
		}
		if i%90 == 89 {
			s.Flush()
		}
	}
	s.Flush()
	s.WaitIdle()
}

// assertSameAnswers checks every query entry point across all five
// measures: Query (first passing match), QueryBest, TopK, and
// SearchBatch in both threshold and best-match modes.
func assertSameAnswers(t *testing.T, got, want *SegmentedIndex, queries []bitvec.Vector) {
	t.Helper()
	for _, m := range allMeasures {
		for qi, q := range queries {
			wm, _, wok := want.Query(q, 0.4, m)
			gm, _, gok := got.Query(q, 0.4, m)
			if gm != wm || gok != wok {
				t.Fatalf("measure %v query %d: Query (%+v, %v), reference (%+v, %v)", m, qi, gm, gok, wm, wok)
			}
			wm, _, wok = want.QueryBest(q, m)
			gm, _, gok = got.QueryBest(q, m)
			if gm != wm || gok != wok {
				t.Fatalf("measure %v query %d: QueryBest (%+v, %v), reference (%+v, %v)", m, qi, gm, gok, wm, wok)
			}
			wk, _ := want.TopK(q, 8, m)
			gk, _ := got.TopK(q, 8, m)
			if !slices.Equal(gk, wk) {
				t.Fatalf("measure %v query %d: TopK\n got %v\nwant %v", m, qi, gk, wk)
			}
		}
		sess := make([]*verify.Session, len(queries))
		for k, q := range queries {
			sess[k] = verify.Acquire(m, q)
		}
		thresholds := make([]float64, len(queries))
		for k := range thresholds {
			thresholds[k] = 0.4
		}
		for _, th := range [][]float64{nil, thresholds} {
			wr, _ := want.SearchBatch(sess, th)
			gr, _ := got.SearchBatch(sess, th)
			if !slices.Equal(gr, wr) {
				t.Fatalf("measure %v thresholds=%v: SearchBatch\n got %v\nwant %v", m, th != nil, gr, wr)
			}
		}
		for _, ses := range sess {
			verify.Release(ses)
		}
	}
}

const (
	storageN    = 420
	storageReps = 3
)

func storageConfig(t *testing.T, dir string, compress bool) Config {
	t.Helper()
	return Config{
		Params:           testParams(t, testDist(t), storageN, storageReps, 77),
		N:                storageN,
		MemtableSize:     48,
		MaxSegments:      3, // compaction interleaves with the workload
		StorageDir:       dir,
		CompressPostings: compress,
	}
}

func storageData(t *testing.T) ([]bitvec.Vector, []bitvec.Vector) {
	t.Helper()
	d := testDist(t)
	return d.SampleN(hashing.NewSplitMix64(501), storageN),
		d.SampleN(hashing.NewSplitMix64(777), 50)
}

func TestStorageDifferential(t *testing.T) {
	data, queries := storageData(t)
	for _, compress := range []bool{false, true} {
		t.Run(fmt.Sprintf("compress=%v", compress), func(t *testing.T) {
			dir := t.TempDir()
			s1, err := Open(storageConfig(t, dir, compress))
			if err != nil {
				t.Fatalf("Open(empty): %v", err)
			}
			defer s1.Close()
			storageOps(t, s1, data)
			if st := s1.Stats(); st.Segments < 2 {
				t.Fatalf("workload produced %d segments; need several", st.Segments)
			}

			for _, tier := range []struct {
				name   string
				budget int64
			}{
				{"cold-mmap", 1},    // everything demoted: zero-copy serving
				{"resident-heap", 0}, // everything promoted: heap decode
			} {
				t.Run(tier.name, func(t *testing.T) {
					cfg := storageConfig(t, dir, compress)
					cfg.ResidentBytes = tier.budget
					s2, err := Open(cfg)
					if err != nil {
						t.Fatalf("Open(reload): %v", err)
					}
					defer s2.Close()
					s2.WaitIdle() // tier moves settle
					st := s2.Stats()
					if tier.budget == 1 && st.ColdSegments != st.Segments {
						t.Fatalf("budget 1: %d of %d segments cold", st.ColdSegments, st.Segments)
					}
					if tier.budget == 0 && st.ColdSegments != 0 {
						t.Fatalf("budget 0: %d segments still cold", st.ColdSegments)
					}
					assertEquivalent(t, s2, s1, queries)
					assertSameAnswers(t, s2, s1, queries)
				})
			}
		})
	}
}

// TestStorageResidentBudget is the beyond-RAM acceptance: with a budget
// a quarter of the total arena footprint, the resident gauge must stay
// under budget while every answer stays exact; restoring an unlimited
// budget must promote everything back, again without drift.
func TestStorageResidentBudget(t *testing.T) {
	data, queries := storageData(t)
	dir := t.TempDir()
	cfg := storageConfig(t, dir, true)
	cfg.MaxSegments = 100 // keep many segments so tiering has granularity
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	storageOps(t, s, data)

	// The reference must segment identically (first-match Query depends
	// on segment order): same config, no compaction in either (the
	// MaxSegments headroom), no storage, no budget.
	refCfg := cfg
	refCfg.StorageDir = ""
	refCfg.CompressPostings = false
	ref, err := New(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	storageOps(t, ref, data)

	total := s.Stats().ResidentBytes
	if total == 0 {
		t.Fatal("no resident arena bytes to budget")
	}
	budget := total / 4 // dataset is 4x the resident budget
	s.SetResidentBudget(budget)
	s.WaitIdle()
	st := s.Stats()
	if st.ResidentBytes > budget {
		t.Fatalf("resident %d bytes exceeds budget %d", st.ResidentBytes, budget)
	}
	if st.ColdSegments == 0 {
		t.Fatalf("budget %d of %d left no segment cold: %+v", budget, total, st)
	}
	assertEquivalent(t, s, ref, queries)
	assertSameAnswers(t, s, ref, queries)

	s.SetResidentBudget(0)
	s.WaitIdle()
	if st := s.Stats(); st.ColdSegments != 0 || st.ResidentBytes != total {
		t.Fatalf("unlimited budget did not promote back: %+v (want %d resident bytes)", st, total)
	}
	assertEquivalent(t, s, ref, queries)
}

// TestStorageColdCompaction is the regression test for compacting
// segments whose arenas are not heap-resident: merging two cold
// (mmap-backed, possibly compressed) segments must produce exactly the
// merge of their resident forms — the merge streams bucket posting
// lists through the decoder instead of assuming arena views.
func TestStorageColdCompaction(t *testing.T) {
	data, _ := storageData(t)
	for _, compress := range []bool{false, true} {
		t.Run(fmt.Sprintf("compress=%v", compress), func(t *testing.T) {
			dir := t.TempDir()
			cfg := storageConfig(t, dir, compress)
			cfg.MaxSegments = 100 // no background compaction: this test merges by hand
			s, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			storageOps(t, s, data)

			s.mu.RLock()
			if len(s.segs) < 2 {
				s.mu.RUnlock()
				t.Fatalf("need two segments, have %d", len(s.segs))
			}
			a, b := s.segs[0], s.segs[1]
			s.mu.RUnlock()

			mergedResident := s.mergeSegments(a, b)

			s.SetResidentBudget(1)
			s.WaitIdle()
			if st := s.Stats(); st.ColdSegments != st.Segments {
				t.Fatalf("budget 1 left %d of %d segments resident", st.Segments-st.ColdSegments, st.Segments)
			}
			mergedCold := s.mergeSegments(a, b)

			if !slices.Equal(mergedResident.slots, mergedCold.slots) {
				t.Fatalf("merged slot sets differ: %v vs %v", mergedResident.slots, mergedCold.slots)
			}
			for r := range mergedResident.reps {
				var w, g bytes.Buffer
				if _, err := mergedResident.reps[r].WriteTo(&w); err != nil {
					t.Fatal(err)
				}
				if _, err := mergedCold.reps[r].WriteTo(&g); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(w.Bytes(), g.Bytes()) {
					t.Fatalf("repetition %d: cold merge diverged from resident merge (%d vs %d bytes)",
						r, w.Len(), g.Len())
				}
			}
		})
	}
}

// TestStorageEndToEndColdCompaction runs the whole machine at once:
// tiny budget, aggressive compaction, compressed postings — so the
// background worker demotes, promotes, merges cold inputs, and unmaps
// their files while the workload runs. The answers must still be exact
// and no stale file may survive.
func TestStorageEndToEndColdCompaction(t *testing.T) {
	data, queries := storageData(t)
	dir := t.TempDir()
	cfg := storageConfig(t, dir, true)
	cfg.MaxSegments = 2
	cfg.ResidentBytes = 1
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	storageOps(t, s, data)

	ref, err := New(storageConfig(t, t.TempDir(), false))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	storageOps(t, ref, data)

	assertEquivalent(t, s, ref, queries)

	// Exactly one .seg file per live segment — compaction removed its
	// inputs' files — and no torn temporaries.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	segFiles := 0
	for _, e := range ents {
		name := e.Name()
		if filepath.Ext(name) == ".tmp" {
			t.Fatalf("orphaned temp file %s", name)
		}
		if len(name) > len(ckptPrefix) && name[:len(ckptPrefix)] == ckptPrefix {
			segFiles++
		}
	}
	if want := s.Stats().Segments; segFiles != want {
		t.Fatalf("%d segment files on disk for %d live segments", segFiles, want)
	}
}

// TestTierRaceQueries hammers queries while the worker demotes and
// promotes the same segments — the swap-under-write-lock discipline is
// what the race detector checks here.
func TestTierRaceQueries(t *testing.T) {
	data, queries := storageData(t)
	dir := t.TempDir()
	cfg := storageConfig(t, dir, true)
	cfg.MaxSegments = 100
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	storageOps(t, s, data)
	want := make([]Match, len(queries))
	for qi, q := range queries {
		want[qi], _, _ = s.QueryBest(q, bitvec.BraunBlanquetMeasure)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				qi := (i*3 + w) % len(queries)
				got, _, _ := s.QueryBest(queries[qi], bitvec.BraunBlanquetMeasure)
				if got != want[qi] {
					t.Errorf("query %d diverged under tiering: %+v != %+v", qi, got, want[qi])
					return
				}
			}
		}(w)
	}
	for i := 0; i < 12; i++ {
		s.SetResidentBudget(int64(1 + (i%2)*int(^uint(0)>>1)))
		s.WaitIdle()
	}
	close(done)
	wg.Wait()
}

// FuzzSegmentHeader feeds arbitrary bytes into the SKSEG1 parser: it
// must error cleanly or produce a structurally valid container, never
// panic or allocate unboundedly. The seed corpus includes a genuine
// file so the mutator explores the accepted grammar.
func FuzzSegmentHeader(f *testing.F) {
	dir := f.TempDir()
	data, _ := func() ([]bitvec.Vector, []bitvec.Vector) {
		d := testDist(&testing.T{})
		return d.SampleN(hashing.NewSplitMix64(501), 64), nil
	}()
	params := testParams(&testing.T{}, testDist(&testing.T{}), 64, 2, 77)
	s, err := Open(Config{Params: params, N: 64, MemtableSize: 1 << 20, MaxSegments: 100, StorageDir: dir})
	if err != nil {
		f.Fatal(err)
	}
	for i, v := range data {
		if err := s.InsertWithID(int64(i), v); err != nil {
			f.Fatal(err)
		}
	}
	s.Delete(3)
	s.Flush()
	s.WaitIdle()
	s.Close()
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) == 0 {
		f.Fatalf("no segment file written (%v)", err)
	}
	genuine, err := os.ReadFile(filepath.Join(dir, ents[0].Name()))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(genuine)
	f.Add(genuine[:len(genuine)/2])
	f.Add([]byte("SKSEG1"))
	f.Add(append([]byte("SKSEG1"), make([]byte, 64)...))
	f.Add([]byte("not a segment"))

	f.Fuzz(func(t *testing.T, in []byte) {
		c, err := parseSegContainer(in, 0, true)
		if err != nil {
			return
		}
		// Accepted: the container must be internally consistent.
		if len(c.vecs) != len(c.exts) {
			t.Fatalf("%d vectors for %d ids", len(c.vecs), len(c.exts))
		}
		if c.bloom == nil || len(c.repBlobs) == 0 {
			t.Fatal("accepted container missing sections")
		}
		for _, blob := range c.repBlobs {
			// The lsf blob parser must hold the same no-panic bar.
			if _, err := lsf.OpenFrozenBytes(blob, nil, c.vecs, false); err != nil {
				continue
			}
		}
	})
}

// TestBloomFilterScreening: on a multi-segment index, queries must
// consult the per-segment filters and skip a meaningful share of
// probes; a filter can only skip, never change an answer, which the
// differential tests above establish — here the counters prove it is
// actually in the path.
func TestBloomFilterScreening(t *testing.T) {
	data, queries := storageData(t)
	cfg := storageConfig(t, t.TempDir(), false)
	cfg.MaxSegments = 100
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	storageOps(t, s, data)
	var probes, skips int
	for _, q := range queries {
		_, st, _ := s.QueryBest(q, bitvec.BraunBlanquetMeasure)
		probes += st.BloomProbes
		skips += st.BloomSkips
	}
	if probes == 0 {
		t.Fatal("no bloom probes recorded on a multi-segment index")
	}
	if skips == 0 || skips > probes {
		t.Fatalf("bloom skipped %d of %d probes", skips, probes)
	}
	sess := []*verify.Session{verify.Acquire(bitvec.BraunBlanquetMeasure, queries[0])}
	defer verify.Release(sess[0])
	_, bst := s.SearchBatch(sess, nil)
	if bst.BloomProbes == 0 {
		t.Fatal("batch path records no bloom probes")
	}
}

func TestBloomFilterUnit(t *testing.T) {
	rng := hashing.NewSplitMix64(9)
	f := newBloomFilter(1000)
	keys := make([]uint64, 1000)
	for i := range keys {
		keys[i] = rng.Next()
		f.add(keys[i])
	}
	for _, k := range keys {
		if !f.mayContain(k) {
			t.Fatalf("false negative for %x", k)
		}
	}
	fp := 0
	const misses = 20000
	for i := 0; i < misses; i++ {
		if f.mayContain(rng.Next()) {
			fp++
		}
	}
	// ~0.1% expected at 12 bits/key; 1% is far beyond any plausible
	// statistical wobble and means the hashing is broken.
	if fp > misses/100 {
		t.Fatalf("%d false positives in %d lookups", fp, misses)
	}
}

// BenchmarkSegfileOpen measures bringing one cold segment online —
// map the file, verify every checksum, open the per-repetition blobs —
// through both posting encodings and both open modes: `mmap` is the
// demotion path (zero-copy views into the mapping), `heap` is the
// promotion path (full arena decode). The file-bytes metric is the
// on-disk footprint the encoding flag trades against that decode cost.
func BenchmarkSegfileOpen(b *testing.B) {
	d := testDist(&testing.T{})
	const n = 4096
	params := testParams(&testing.T{}, d, n, 3, 77)
	data := d.SampleN(hashing.NewSplitMix64(3), n)
	for _, compress := range []bool{false, true} {
		dir := b.TempDir()
		s, err := Open(Config{Params: params, N: n, MemtableSize: 1 << 20,
			MaxSegments: 100, StorageDir: dir, CompressPostings: compress})
		if err != nil {
			b.Fatal(err)
		}
		for i, v := range data {
			if err := s.InsertWithID(int64(i), v); err != nil {
				b.Fatal(err)
			}
		}
		s.Flush()
		s.WaitIdle()
		engines := s.engines
		s.Close()
		ents, _ := os.ReadDir(dir)
		if len(ents) != 1 {
			b.Fatalf("expected one segment file, found %d", len(ents))
		}
		path := filepath.Join(dir, ents[0].Name())
		fi, err := os.Stat(path)
		if err != nil {
			b.Fatal(err)
		}
		enc := "plain"
		if compress {
			enc = "compressed"
		}
		for _, zeroCopy := range []bool{true, false} {
			mode := "mmap"
			if !zeroCopy {
				mode = "heap"
			}
			b.Run(enc+"/"+mode, func(b *testing.B) {
				b.ReportMetric(float64(fi.Size()), "file-bytes")
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					m, err := mmapio.Open(path)
					if err != nil {
						b.Fatal(err)
					}
					c, err := parseSegContainer(m.Data(), len(engines), true)
					if err != nil {
						b.Fatal(err)
					}
					for r, blob := range c.repBlobs {
						if _, err := lsf.OpenFrozenBytes(blob, engines[r], c.vecs, zeroCopy); err != nil {
							b.Fatal(err)
						}
					}
					m.Close()
				}
			})
		}
	}
}

// BenchmarkBloomSkip prices the filter consultation that replaces a
// key-table probe on the (common) segment-miss path.
func BenchmarkBloomSkip(b *testing.B) {
	rng := hashing.NewSplitMix64(5)
	f := newBloomFilter(1 << 14)
	for i := 0; i < 1<<14; i++ {
		f.add(rng.Next())
	}
	probes := make([]uint64, 1024)
	for i := range probes {
		probes[i] = rng.Next() // almost all misses
	}
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		if f.mayContain(probes[i%len(probes)]) {
			hits++
		}
	}
	b.ReportMetric(float64(hits)/float64(b.N), "hit-rate")
}
