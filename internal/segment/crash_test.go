package segment

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"slices"
	"strconv"
	"syscall"
	"testing"
	"time"

	"skewsim/internal/bitvec"
	"skewsim/internal/hashing"
	"skewsim/internal/wal"
)

// Crash-recovery acceptance tests. A helper process (this test binary
// re-executed with SKEWSIM_CRASH_* env vars) runs a deterministic
// insert/delete workload against a WAL-attached index and SIGKILLs
// itself at an injected fault point — between the WAL append and the
// memtable apply, or between a completed freeze's checkpoint file and
// its checkpoint record. The parent then recovers from the surviving
// files and asserts the result is indistinguishable from an index that
// executed the same logical prefix and never crashed: identical sorted
// candidate-id sets and bit-identical top-k similarities for a batch
// of queries. Table-driven over both fsync policies; the torn-tail
// case is exercised in-process below.

const (
	envCrashPoint   = "SKEWSIM_CRASH_POINT"
	envCrashDir     = "SKEWSIM_CRASH_DIR"
	envCrashFsync   = "SKEWSIM_CRASH_FSYNC"
	envCrashTrigger = "SKEWSIM_CRASH_TRIGGER"
	envCrashScript  = "SKEWSIM_CRASH_SCRIPT"
)

// crashOp is one step of the scripted workload.
type crashOp struct {
	del bool
	id  int64 // delete target
	vec bitvec.Vector
}

// crashWorkload is the deterministic op sequence both the helper and
// the parent's reference index execute: n inserts (auto ids 0..n-1 in
// order) with a delete of id i-2 after every fifth insert.
func crashWorkload(t *testing.T, n int) []crashOp {
	t.Helper()
	d := testDist(t)
	rng := hashing.NewSplitMix64(7)
	data := d.SampleN(rng, n)
	var ops []crashOp
	for i, v := range data {
		ops = append(ops, crashOp{vec: v})
		if i%5 == 4 {
			ops = append(ops, crashOp{del: true, id: int64(i - 2)})
		}
	}
	return ops
}

func crashQueries(t *testing.T, n int) []bitvec.Vector {
	t.Helper()
	return testDist(t).SampleN(hashing.NewSplitMix64(1234), n)
}

func applyOps(t *testing.T, s *SegmentedIndex, ops []crashOp) {
	t.Helper()
	for i, op := range ops {
		if op.del {
			if !s.Delete(op.id) {
				t.Fatalf("op %d: Delete(%d) reported not live", i, op.id)
			}
			continue
		}
		if _, err := s.Insert(op.vec); err != nil {
			t.Fatalf("op %d: Insert: %v", i, err)
		}
	}
}

const crashWorkloadN = 120

func crashConfig(t *testing.T, script string) Config {
	t.Helper()
	params := testParams(t, testDist(t), crashWorkloadN, 3, 55)
	cfg := Config{Params: params, N: crashWorkloadN}
	switch script {
	case "stream":
		// Small memtables so freezes, checkpoints, and compactions all
		// run concurrently with the op stream being crashed.
		cfg.MemtableSize = 24
		cfg.MaxSegments = 3
	case "flush":
		// No auto-rotation: freezes happen only at the explicit Flush
		// barriers, so the applied-op prefix at the crash is exact.
		cfg.MemtableSize = 1 << 20
		cfg.MaxSegments = 100
	default:
		t.Fatalf("unknown script %q", script)
	}
	return cfg
}

// TestCrashHelper is the sacrificial process. It only runs when
// re-executed by TestCrashRecoveryDifferential.
func TestCrashHelper(t *testing.T) {
	point := os.Getenv(envCrashPoint)
	if point == "" {
		t.Skip("crash helper: run only as a subprocess")
	}
	dir := os.Getenv(envCrashDir)
	script := os.Getenv(envCrashScript)
	policy, err := wal.ParseSyncPolicy(os.Getenv(envCrashFsync))
	if err != nil {
		t.Fatal(err)
	}
	trigger, err := strconv.Atoi(os.Getenv(envCrashTrigger))
	if err != nil {
		t.Fatal(err)
	}
	log, err := wal.Open(dir, wal.Options{Sync: policy, SegmentBytes: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Recover(crashConfig(t, script), log)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	hits := 0
	s.crashHook = func(p string) {
		if p != point {
			return
		}
		hits++
		if hits == trigger {
			// The record (or checkpoint file) this point follows has
			// reached the kernel; dying here must lose nothing durable.
			syscall.Kill(os.Getpid(), syscall.SIGKILL)
		}
	}
	ops := crashWorkload(t, crashWorkloadN)
	switch script {
	case "stream":
		applyOps(t, s, ops)
		s.Flush()
		s.WaitIdle()
	case "flush":
		applyOps(t, s, ops[:len(ops)/2])
		s.Flush()
		s.WaitIdle() // freeze #1: checkpoint completes
		applyOps(t, s, ops[len(ops)/2:])
		s.Flush()
		s.WaitIdle() // freeze #2: the crash point fires mid-persist
	}
	// Reaching this line means the fault point never fired.
	fmt.Println("HELPER-NOCRASH")
}

// opBoundary returns the number of leading ops whose effects must
// survive a crash at occurrence `trigger` of `point`: the triggering
// op's record reached the kernel before the kill, so it is included.
func opBoundary(t *testing.T, ops []crashOp, point string, trigger int) int {
	t.Helper()
	hits := 0
	for i, op := range ops {
		switch {
		case point == "insert-apply" && !op.del, point == "delete-apply" && op.del:
			hits++
			if hits == trigger {
				return i + 1
			}
		}
	}
	t.Fatalf("workload never reaches occurrence %d of %s", trigger, point)
	return 0
}

// assertEquivalent asserts the recovered index answers exactly like the
// reference: same live count, same id high-water mark, same sorted
// candidate sets, and bit-identical top-k results for every query.
func assertEquivalent(t *testing.T, got, want *SegmentedIndex, queries []bitvec.Vector) {
	t.Helper()
	if g, w := got.Stats().Live, want.Stats().Live; g != w {
		t.Fatalf("live count: recovered %d, reference %d", g, w)
	}
	if g, w := got.NextID(), want.NextID(); g < w {
		// Recovery may over-burn ids (a truncated insert known only from
		// its pinned delete record) but must never under-burn.
		t.Fatalf("NextID: recovered %d, reference %d", g, w)
	}
	for qi, q := range queries {
		gc, _ := got.CandidatesExt(q)
		wc, _ := want.CandidatesExt(q)
		slices.Sort(gc)
		slices.Sort(wc)
		if !slices.Equal(gc, wc) {
			t.Fatalf("query %d: candidate sets differ\nrecovered: %v\nreference: %v", qi, gc, wc)
		}
		gm, _ := got.TopK(q, 10, bitvec.BraunBlanquetMeasure)
		wm, _ := want.TopK(q, 10, bitvec.BraunBlanquetMeasure)
		if !slices.Equal(gm, wm) {
			t.Fatalf("query %d: top-k differs\nrecovered: %v\nreference: %v", qi, gm, wm)
		}
	}
}

// TestCrashRecoveryDifferential is the acceptance test for the WAL:
// SIGKILL at every injected fault point, under both fsync policies,
// must recover to candidate sets identical to the uncrashed index.
func TestCrashRecoveryDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	cases := []struct {
		point   string
		script  string
		trigger int
	}{
		// Killed between a logged insert and its memtable apply, early
		// (memtable only) and late (frozen segments + checkpoints exist).
		{"insert-apply", "stream", 5},
		{"insert-apply", "stream", 90},
		// Killed between a logged delete and its tombstone.
		{"delete-apply", "stream", 3},
		{"delete-apply", "stream", 15},
		// Killed between freeze #2's checkpoint file and its checkpoint
		// record (freeze #1 checkpointed cleanly).
		{"freeze-checkpoint", "flush", 2},
	}
	ops := crashWorkload(t, crashWorkloadN)
	queries := crashQueries(t, 40)
	for _, fsync := range []string{"always", "never"} {
		for _, tc := range cases {
			tc := tc
			t.Run(fmt.Sprintf("%s/%s@%d", fsync, tc.point, tc.trigger), func(t *testing.T) {
				dir := t.TempDir()
				runCrashHelper(t, dir, fsync, tc.point, tc.script, tc.trigger)

				boundary := len(ops)
				if tc.script == "stream" {
					boundary = opBoundary(t, ops, tc.point, tc.trigger)
				}
				ref, err := New(crashConfig(t, tc.script))
				if err != nil {
					t.Fatalf("reference New: %v", err)
				}
				defer ref.Close()
				applyOps(t, ref, ops[:boundary])

				log, err := wal.Open(dir, wal.Options{SegmentBytes: 1 << 12})
				if err != nil {
					t.Fatalf("wal.Open after crash: %v", err)
				}
				rec, err := Recover(crashConfig(t, tc.script), log)
				if err != nil {
					log.Close()
					t.Fatalf("Recover after crash: %v", err)
				}
				defer rec.Close()
				assertEquivalent(t, rec, ref, queries)
			})
		}
	}
}

// runCrashHelper re-executes the test binary as the sacrificial process
// and asserts it died by SIGKILL at the fault point.
func runCrashHelper(t *testing.T, dir, fsync, point, script string, trigger int) {
	t.Helper()
	runCrashHelperNamed(t, "TestCrashHelper", dir, fsync, point, script, trigger)
}

// runCrashHelperNamed runs `name` (a helper test function gated on the
// SKEWSIM_CRASH_* env vars) as the sacrificial subprocess.
func runCrashHelperNamed(t *testing.T, name, dir, fsync, point, script string, trigger int) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cmd := exec.CommandContext(ctx, os.Args[0], "-test.run=^"+name+"$")
	cmd.Env = append(os.Environ(),
		envCrashPoint+"="+point,
		envCrashDir+"="+dir,
		envCrashFsync+"="+fsync,
		envCrashScript+"="+script,
		envCrashTrigger+"="+strconv.Itoa(trigger),
	)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("helper exited cleanly — fault point %s@%d never fired:\n%s", point, trigger, out)
	}
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) {
		t.Fatalf("helper: %v\n%s", err, out)
	}
	ws, ok := exitErr.Sys().(syscall.WaitStatus)
	if !ok || !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
		t.Fatalf("helper died without SIGKILL (%v):\n%s", err, out)
	}
}

// TestWALRoundTripAndTruncation runs the whole workload durably with
// tiny memtables and log segments, waits for freezes/compactions to
// checkpoint, and checks (a) the log really was truncated behind the
// checkpoints, (b) a clean reopen converges to the uncrashed reference.
func TestWALRoundTripAndTruncation(t *testing.T) {
	ops := crashWorkload(t, crashWorkloadN)
	queries := crashQueries(t, 40)
	dir := t.TempDir()

	log, err := wal.Open(dir, wal.Options{Sync: wal.SyncNever, SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	s, err := Recover(crashConfig(t, "stream"), log)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	applyOps(t, s, ops)
	s.Flush()
	s.WaitIdle()
	preStats := s.Stats()
	if preStats.WAL == nil || preStats.WAL.LastCheckpoint == 0 {
		t.Fatalf("expected checkpoints to have run: %+v", preStats.WAL)
	}
	if preStats.WAL.Records >= int64(len(ops)) {
		t.Fatalf("log holds %d records for %d ops: checkpoint truncation never pruned", preStats.WAL.Records, len(ops))
	}
	s.Close()

	log2, err := wal.Open(dir, wal.Options{Sync: wal.SyncNever, SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	rec, err := Recover(crashConfig(t, "stream"), log2)
	if err != nil {
		log2.Close()
		t.Fatalf("Recover: %v", err)
	}
	defer rec.Close()

	ref, err := New(crashConfig(t, "stream"))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer ref.Close()
	applyOps(t, ref, ops)
	assertEquivalent(t, rec, ref, queries)
}

// TestTornTailRecovery cuts the log mid-record at several depths (the
// in-process half of the torn-tail story: wal.Open must truncate back
// to the last clean record and recovery must equal the reference over
// the surviving prefix). MemtableSize is huge so no checkpoint records
// interleave and op k is exactly record k+1.
func TestTornTailRecovery(t *testing.T) {
	ops := crashWorkload(t, crashWorkloadN)
	queries := crashQueries(t, 25)

	// Byte offset of each record's frame in the single log file.
	offsets := make([]int64, len(ops)+1)
	for i, op := range ops {
		payload := 1 + 8 // op + id
		if !op.del {
			payload = 1 + 8 + 4 + 4*op.vec.Len()
		}
		offsets[i+1] = offsets[i] + 8 + int64(payload)
	}

	cases := []struct {
		name string
		cut  int64 // file size after truncation
		keep int   // ops that must survive
	}{
		{"one-byte-short", offsets[len(ops)] - 1, len(ops) - 1},
		{"mid-last-record", offsets[len(ops)-1] + 9, len(ops) - 1},
		{"two-records-torn", offsets[len(ops)-2] + 3, len(ops) - 2},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			log, err := wal.Open(dir, wal.Options{Sync: wal.SyncNever})
			if err != nil {
				t.Fatalf("wal.Open: %v", err)
			}
			s, err := Recover(crashConfig(t, "flush"), log)
			if err != nil {
				t.Fatalf("Recover: %v", err)
			}
			applyOps(t, s, ops)
			s.Close()

			files, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
			if err != nil || len(files) != 1 {
				t.Fatalf("want exactly one log file, got %v (%v)", files, err)
			}
			if st, err := os.Stat(files[0]); err != nil || st.Size() != offsets[len(ops)] {
				t.Fatalf("log size %v, computed %d (%v)", st.Size(), offsets[len(ops)], err)
			}
			if err := os.Truncate(files[0], tc.cut); err != nil {
				t.Fatal(err)
			}

			log2, err := wal.Open(dir, wal.Options{Sync: wal.SyncNever})
			if err != nil {
				t.Fatalf("wal.Open on torn log: %v", err)
			}
			if log2.Stats().TornBytes == 0 {
				t.Fatal("expected a recorded torn tail")
			}
			rec, err := Recover(crashConfig(t, "flush"), log2)
			if err != nil {
				log2.Close()
				t.Fatalf("Recover on torn log: %v", err)
			}
			defer rec.Close()

			ref, err := New(crashConfig(t, "flush"))
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			defer ref.Close()
			applyOps(t, ref, ops[:tc.keep])
			assertEquivalent(t, rec, ref, queries)
		})
	}
}

// TestReplayEraFreezesGetCheckpoints pins the recovery/worker pause:
// memtables rotated while the log is still being replayed must freeze
// only after the attach, so their checkpoint segment files exist before
// any later checkpoint fences (and truncates) the replayed records that
// are otherwise their only durable copy. Without the pause the failure
// is a race (the worker must win a freeze mid-replay), so this test is
// a canary for the invariant rather than a deterministic reproducer;
// generation 3 below loses replay-era vectors when it fires.
func TestReplayEraFreezesGetCheckpoints(t *testing.T) {
	ops := crashWorkload(t, crashWorkloadN)
	queries := crashQueries(t, 25)
	dir := t.TempDir()

	// Generation 1: all records land in the log, no freezes (huge
	// memtable), so generation 2 must replay everything.
	log1, err := wal.Open(dir, wal.Options{Sync: wal.SyncNever})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	s1, err := Recover(crashConfig(t, "flush"), log1)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	applyOps(t, s1, ops)
	s1.Close()

	// Generation 2: small memtables, so the replay itself rotates
	// several times; then fresh ops push post-attach checkpoints whose
	// fences cover the replayed records and truncate them.
	log2, err := wal.Open(dir, wal.Options{Sync: wal.SyncNever, SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	s2, err := Recover(crashConfig(t, "stream"), log2)
	if err != nil {
		log2.Close()
		t.Fatalf("Recover: %v", err)
	}
	extra := testDist(t).SampleN(hashing.NewSplitMix64(21), 60)
	for i, v := range extra {
		if _, err := s2.Insert(v); err != nil {
			t.Fatalf("extra insert %d: %v", i, err)
		}
	}
	s2.Flush()
	s2.WaitIdle()
	st := s2.Stats()
	if st.WAL == nil || st.WAL.LastCheckpoint == 0 {
		t.Fatalf("no post-attach checkpoint ran: %+v", st.WAL)
	}
	if st.WAL.Records >= int64(len(ops)) {
		t.Fatalf("log still holds %d records: replayed prefix never truncated", st.WAL.Records)
	}
	s2.Close()

	// Generation 3: the truncated log plus the checkpoint files must
	// still reconstruct everything.
	log3, err := wal.Open(dir, wal.Options{Sync: wal.SyncNever, SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	s3, err := Recover(crashConfig(t, "stream"), log3)
	if err != nil {
		log3.Close()
		t.Fatalf("Recover: %v", err)
	}
	defer s3.Close()

	ref, err := New(crashConfig(t, "stream"))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer ref.Close()
	applyOps(t, ref, ops)
	for i, v := range extra {
		if _, err := ref.Insert(v); err != nil {
			t.Fatalf("reference extra insert %d: %v", i, err)
		}
	}
	assertEquivalent(t, s3, ref, queries)
}

// TestUnknownDeadIDsPropagate pins the tombstone registry for ids whose
// vectors no longer exist (compacted away before a crash): burning the
// id must also put it on the dead list exactly once, so every future
// checkpoint file keeps carrying the tombstone and no later generation
// re-derives nextAuto below it.
func TestUnknownDeadIDsPropagate(t *testing.T) {
	s, err := New(crashConfig(t, "flush"))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	s.NoteDeadID(42)
	s.NoteDeadID(42)
	s.applyDeadID(43)
	s.applyDeadID(43)
	s.mu.Lock()
	dead := append([]int64(nil), s.deadExt...)
	next := s.nextAuto
	s.mu.Unlock()
	slices.Sort(dead)
	if !slices.Equal(dead, []int64{42, 43}) {
		t.Fatalf("deadExt = %v, want exactly [42 43]", dead)
	}
	if next != 44 {
		t.Fatalf("nextAuto = %d, want 44", next)
	}
}

// TestInsertBatchDurable pins the batch path: one batch, one group
// commit, same recovery result as singles.
func TestInsertBatchDurable(t *testing.T) {
	d := testDist(t)
	data := d.SampleN(hashing.NewSplitMix64(3), 64)
	queries := crashQueries(t, 10)
	dir := t.TempDir()

	log, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	cfg := crashConfig(t, "stream")
	s, err := Recover(cfg, log)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	ids := make([]int64, len(data))
	for i := range ids {
		ids[i] = int64(i)
	}
	if err := s.InsertBatch(ids, data); err != nil {
		t.Fatalf("InsertBatch: %v", err)
	}
	if err := s.InsertBatch([]int64{5}, data[:1]); !errors.Is(err, ErrIDTaken) {
		t.Fatalf("duplicate batch id: %v, want ErrIDTaken", err)
	}
	if !s.Delete(9) {
		t.Fatal("Delete(9)")
	}
	s.Close()

	log2, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	rec, err := Recover(cfg, log2)
	if err != nil {
		log2.Close()
		t.Fatalf("Recover: %v", err)
	}
	defer rec.Close()

	ref, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer ref.Close()
	for i, v := range data {
		if err := ref.InsertWithID(int64(i), v); err != nil {
			t.Fatalf("InsertWithID: %v", err)
		}
	}
	ref.Delete(9)
	assertEquivalent(t, rec, ref, queries)
}
