package segment

import (
	"skewsim/internal/lsf"
)

// Per-segment bloom filter over path-hash keys. A query path probes
// every frozen segment per repetition; on a skewed workload most
// segments do not contain most paths, so one filter per segment (over
// the union of every repetition's bucket keys) turns the common miss
// into a couple of cache lines instead of a key-table probe — and, for
// a cold segment, instead of touching the mapping at all. Sized at
// ~12 bits per key with bloomHashes probes (~0.1% false positives), a
// false positive costs only the probe the filter would have skipped,
// never a wrong result.
//
// Filters key on lsf.HashPath, which depends only on the path elements
// (not the engine), so one filter serves all repetitions, freeze/merge
// build it from ForEachBucketHash without touching any path, and the
// SKSEG1 container persists it verbatim (sectBloom).

const (
	bloomBitsPerKey = 12
	bloomHashes     = 8
)

type bloomFilter struct {
	words []uint64 // power-of-two length
	mask  uint64   // bit-index mask: len(words)*64 - 1
}

// newBloomFilter sizes an empty filter for nkeys keys.
func newBloomFilter(nkeys int) *bloomFilter {
	bits := nkeys * bloomBitsPerKey
	words := 1
	for words*64 < bits {
		words <<= 1
	}
	return &bloomFilter{words: make([]uint64, words), mask: uint64(words)*64 - 1}
}

// bloomFromWords adopts a deserialized word array (the SKSEG1 open
// path); len(words) must be a power of two.
func bloomFromWords(words []uint64) *bloomFilter {
	return &bloomFilter{words: words, mask: uint64(len(words))*64 - 1}
}

// h2 derives the double-hashing stride from h: an independent-enough
// second mix (the odd multiplier keeps every stride odd after |1, so
// probes cycle through the whole bit space).
func bloomStride(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	return h | 1
}

func (f *bloomFilter) add(h uint64) {
	d := bloomStride(h)
	for i := 0; i < bloomHashes; i++ {
		bit := h & f.mask
		f.words[bit>>6] |= 1 << (bit & 63)
		h += d
	}
}

// mayContain reports whether h might have been added: false means
// definitely absent, true means probe the segment.
func (f *bloomFilter) mayContain(h uint64) bool {
	d := bloomStride(h)
	for i := 0; i < bloomHashes; i++ {
		bit := h & f.mask
		if f.words[bit>>6]&(1<<(bit&63)) == 0 {
			return false
		}
		h += d
	}
	return true
}

// buildSegBloom constructs a segment's filter from the bucket keys of
// all its repetition indexes (duplicate keys across repetitions are
// harmless — add is idempotent).
func buildSegBloom(reps []*lsf.Index) *bloomFilter {
	nkeys := 0
	for _, ix := range reps {
		nkeys += ix.Stats().Buckets
	}
	f := newBloomFilter(nkeys)
	for _, ix := range reps {
		ix.ForEachBucketHash(f.add)
	}
	return f
}
