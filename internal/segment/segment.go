// Package segment turns the library's build-once indexes (the paper's
// §4 structure, static by construction) into an online serving
// structure: a SegmentedIndex accepts Insert/Delete while answering
// queries, LSM-style. Writes land in a small mutable memtable
// (the chained-bucket map index); full memtables rotate into a flushing
// list and a background worker freezes them into immutable CSR segments
// (the frozen arenas of internal/lsf, via its segment-facing Builder);
// a compaction pass merges small segments and physically drops
// tombstoned vectors. Queries compute F(q) once per repetition engine
// and probe the memtables and every frozen segment per path, merging
// candidates through one epoch-stamped lsf.Visited set, so the layered
// structure answers exactly like a single static index over the live
// data (asserted differentially in the tests).
//
// Consistency model: a single RWMutex guards the index. Insert/Delete
// are atomic and immediately visible to queries that start after they
// return; a query sees one consistent snapshot (it holds the read lock
// for its whole traversal). Freezing and compaction move postings
// between layers without changing the visible candidate set: the
// memtable stays queryable in the flushing list until its CSR segment
// is installed, and deleted vectors are masked by the slot-level
// tombstone array until compaction rewrites their segment. Ids are
// never reused, including after Delete.
//
// Durability: attach a wal.Log (Recover / RecoverWAL) and every
// accepted write is journaled before the in-memory mutation, completed
// freezes persist checkpoint segment files that let the log truncate,
// and startup recovery replays the surviving records idempotently —
// see wal.go in this package and DESIGN.md "Durability".
//
// The repetition engines are fixed at construction (typically from
// core.EngineParams, so the segmented index runs the same SkewSearch
// scheme as the static core.Index); the stopping rule's n is the
// expected steady-state size. Re-estimating probabilities as the data
// drifts is a planned follow-up, not handled here.
package segment

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"skewsim/internal/bitvec"
	"skewsim/internal/lsf"
	"skewsim/internal/mmapio"
	"skewsim/internal/verify"
	"skewsim/internal/wal"
)

// Config sizes a SegmentedIndex.
type Config struct {
	// Params configures one lsf engine per repetition (required). Use
	// core.EngineParams to get the paper's threshold schemes with
	// properly derived per-repetition seeds.
	Params []lsf.Params
	// N is the dataset size the engines are tuned for (default depth
	// caps). Defaults to 1 << 16. This does not bound the index.
	N int
	// MemtableSize is the number of vectors a memtable accepts before it
	// rotates to the freeze queue. Defaults to 4096.
	MemtableSize int
	// MaxSegments triggers compaction: when more than this many frozen
	// segments exist, the background worker merges the two smallest
	// (dropping tombstoned vectors) until at or under the limit.
	// Defaults to 4.
	MaxSegments int
	// Metrics, when non-nil, receives freeze/compaction counts and
	// durations plus per-query work histograms (see NewMetrics). One
	// Metrics instance may be shared across shards. Nil disables
	// instrumentation (the query path then pays one nil compare).
	Metrics *Metrics
	// StorageDir, when set, is where frozen segments persist as SKSEG1
	// container files (see storage.go) and the root of the beyond-RAM
	// tier: segments past the resident budget drop their heap arenas
	// and serve zero-copy from the mapped file. Empty keeps the
	// pre-PR-10 behaviour — segment files live in the WAL directory
	// when a WAL is attached, nowhere otherwise, and nothing demotes.
	StorageDir string
	// ResidentBytes caps the heap bytes of frozen posting arenas:
	// newest segments stay resident until the budget is spent, older
	// file-backed ones demote to their mapping. 0 means unlimited
	// (everything resident). Adjustable at runtime (SetResidentBudget).
	ResidentBytes int64
	// CompressPostings selects delta+varint posting compression inside
	// segment files. Cold compressed segments decode posting lists on
	// read; resident ones decode once at promotion. Candidate sets are
	// identical either way (asserted by the storage tests).
	CompressPostings bool
}

// withDefaults fills unset fields. Non-positive values mean "default":
// a negative MaxSegments would otherwise make needsCompact true with an
// empty segment list and panic the worker.
func (c *Config) withDefaults() Config {
	out := *c
	if out.N <= 0 {
		out.N = 1 << 16
	}
	if out.MemtableSize <= 0 {
		out.MemtableSize = 4096
	}
	if out.MaxSegments <= 0 {
		out.MaxSegments = 4
	}
	return out
}

// frozenSeg is one immutable segment: a local data slice indexed by the
// per-repetition CSR indexes, plus the mapping from local ids back to
// index-wide slots.
type frozenSeg struct {
	slots []int32 // local id -> slot
	reps  []*lsf.Index
	// walSeq is the sequence number of the segment file persisting this
	// segment (ckpt-<seq>.seg), 0 when the segment has no durable side
	// file (no storage configured, or restored from a snapshot rather
	// than a segment file).
	walSeq uint64

	// bloom is the segment's path-key filter (see bloom.go), consulted
	// before any repetition probe; nil (snapshot restores) means always
	// probe. Immutable once the segment is visible.
	bloom *bloomFilter
	// Tiering state, owned by the worker goroutine; reps/mapping swaps
	// happen under the index write lock. path is the SKSEG1 file ("" =
	// memory only, not demotable); mapping is non-nil exactly while the
	// segment serves cold (its reps are zero-copy views into it);
	// arenaBytes is the resident heap cost of the posting arenas, the
	// unit Config.ResidentBytes budgets; tierFailed pins the segment in
	// its current tier after a failed move (set once, never cleared —
	// compaction replaces the segment wholesale).
	path       string
	mapping    *mmapio.Mapping
	arenaBytes int64
	tierFailed bool
}

func (g *frozenSeg) size() int { return len(g.slots) }

// Match is one query result.
type Match struct {
	// ID is the external id the vector was inserted under.
	ID int64
	// Similarity under the verification measure.
	Similarity float64
}

// QueryStats aggregates the work of one query across repetitions and
// layers, extending lsf.QueryStats with the segment dimension.
type QueryStats struct {
	Reps        int // repetition engines traversed
	Filters     int // Σ |F(q)| over repetitions
	Candidates  int // candidate occurrences over all layers
	Distinct    int // distinct live candidates streamed
	Truncated   int // repetitions whose filter generation hit the budget
	Segments    int // frozen segments consulted
	BloomProbes int // per-(path, segment) bloom filter checks
	BloomSkips  int // segment probes skipped by the bloom filter
}

// Merge accumulates another query's stats into s (the shard router sums
// per-shard work into one record; Segments adds up because shards hold
// disjoint segment sets).
func (s *QueryStats) Merge(o QueryStats) {
	s.Reps += o.Reps
	s.Filters += o.Filters
	s.Candidates += o.Candidates
	s.Distinct += o.Distinct
	s.Truncated += o.Truncated
	s.Segments += o.Segments
	s.BloomProbes += o.BloomProbes
	s.BloomSkips += o.BloomSkips
}

// IndexStats is a point-in-time size report.
type IndexStats struct {
	Live         int   // inserted minus deleted
	Total        int   // slots ever allocated (deletes keep their slot)
	Memtable     int   // vectors in the active memtable
	Flushing     int   // vectors in rotated, not-yet-frozen memtables
	Segments     int   // frozen segment count
	SegmentSizes []int // per-segment vector counts (tombstones included)
	Freezes      int64 // memtables frozen since construction
	Compactions  int64 // merges performed since construction
	// Storage tier sizes: segments serving from heap arenas vs from
	// their mapped file, and the heap bytes of the resident posting
	// arenas (the quantity Config.ResidentBytes caps).
	ResidentSegments int
	ColdSegments     int
	ResidentBytes    int64
	// WAL reports the attached write-ahead log's sizes; nil when the
	// index runs without durability.
	WAL *wal.Stats `json:",omitempty"`
}

// SegmentedIndex is a mutable, concurrently-usable index. The zero value
// is not usable; construct with New and release with Close.
type SegmentedIndex struct {
	cfg     Config
	engines []*lsf.Engine

	mu   sync.RWMutex
	cond *sync.Cond // signalled on any state change the worker or waiters watch

	mem      *memtable
	flushing []*memtable
	segs     []*frozenSeg

	// Dense per-slot state. A slot is allocated per insert and never
	// reused; vecs entries are immutable once written.
	vecs  []bitvec.Vector
	alive []bool
	ext   []int64 // slot -> external id
	// packed mirrors vecs slot for slot: the word-packed verification
	// form of every vector, appended under the write lock at insert time
	// so no query ever re-packs a data vector. Shared by every layer
	// (memtable, flushing, frozen segments) since postings resolve to
	// index-wide slots before verification.
	packed bitvec.PackedSet

	slotOf   map[int64]int32 // external id -> slot (live and dead)
	nextAuto int64           // next auto-assigned external id
	live     int
	// deadExt lists every external id ever tombstoned, in no particular
	// order. Checkpoint segment files persist a snapshot of it so delete
	// records at or below the checkpoint fence can be truncated from the
	// WAL without losing their tombstones. unknownDead dedups the ids in
	// it that have no slot (their vectors were compacted away before a
	// crash) — they must keep riding every future dead list, or a later
	// generation could re-derive nextAuto below them and reuse the id.
	deadExt     []int64
	unknownDead map[int64]struct{}
	// memMaxLSN is the WAL LSN of the newest insert record whose
	// in-memory apply has completed — the only safe checkpoint fence.
	// (The log's own high-water mark would over-fence during a batch,
	// whose records are all appended before the first apply.)
	memMaxLSN uint64
	// appliedLSN is the WAL LSN of the newest record of ANY kind whose
	// in-memory apply has completed: unlike memMaxLSN it advances on
	// deletes too, and during recovery it tracks the replay position.
	// It is the replication cut point — a snapshot taken now plus the
	// log from appliedLSN+1 reconstructs this state exactly, because a
	// record appended but not yet applied is above it and gets shipped.
	appliedLSN uint64

	compacting  bool
	persisting  bool // worker is writing a checkpoint segment file
	tiering     bool // worker is demoting or promoting a segment
	recovering  bool // WAL recovery in progress: worker pauses (see RecoverWAL)
	freezes     int64
	compactions int64
	closed      bool

	// wal, when attached (Recover), is appended to before every memtable
	// mutation; segSeq numbers the checkpoint segment files freezes and
	// compactions persist next to the log. crashHook is the fault-
	// injection seam the crash-recovery tests SIGKILL the process from;
	// it is a no-op outside tests.
	wal       *wal.Log
	segSeq    uint64
	crashHook func(point string)

	visitPool lsf.VisitedPool
	fsPool    sync.Pool
}

// New builds an empty index and starts its background freeze/compaction
// worker. Callers must Close it to stop the worker.
func New(cfg Config) (*SegmentedIndex, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Params) == 0 {
		return nil, errors.New("segment: Config.Params must supply at least one repetition engine")
	}
	s := &SegmentedIndex{
		cfg:       cfg,
		engines:   make([]*lsf.Engine, len(cfg.Params)),
		mem:       newMemtable(len(cfg.Params)),
		slotOf:    make(map[int64]int32),
		segSeq:    1,
		crashHook: func(string) {},
	}
	for r, p := range cfg.Params {
		eng, err := lsf.NewEngine(cfg.N, p)
		if err != nil {
			return nil, fmt.Errorf("segment: repetition %d: %w", r, err)
		}
		s.engines[r] = eng
	}
	s.cond = sync.NewCond(&s.mu)
	go s.worker()
	return s, nil
}

// Close stops the background worker and, when a WAL is attached, syncs
// and closes it. The index stays queryable but no further freezes or
// compactions run, and — with a WAL — further Insert/Delete calls fail
// rather than accept writes that can no longer be logged. Safe to call
// twice.
func (s *SegmentedIndex) Close() {
	s.mu.Lock()
	s.closed = true
	w := s.wal
	s.cond.Broadcast()
	s.mu.Unlock()
	if w != nil {
		w.Close()
	}
}

// Repetitions returns the number of repetition engines.
func (s *SegmentedIndex) Repetitions() int { return len(s.engines) }

// Insert adds v under the next auto-assigned external id and returns it.
// Do not mix with InsertWithID unless caller-chosen ids stay out of the
// auto range [0, 1, 2, ...]. Filters are computed once; losing an
// id-allocation race to a concurrent inserter retries only the cheap
// install step with a re-read counter. An ErrNotDurable error comes
// WITH the assigned id: the insert is live, only its fsync failed.
func (s *SegmentedIndex) Insert(v bitvec.Vector) (int64, error) {
	fss := s.computeFilters(v)
	defer s.releaseFilters(fss)
	for {
		s.mu.RLock()
		id := s.nextAuto
		s.mu.RUnlock()
		err := s.install(id, v, fss)
		if err == nil || errors.Is(err, ErrNotDurable) {
			return id, err
		}
		if !errors.Is(err, ErrIDTaken) {
			return 0, err
		}
	}
}

// ErrIDTaken reports an InsertWithID id that was already used (live or
// tombstoned). Callers that allocate ids optimistically (Insert, the
// shard router) match it to retry with a fresh id.
var ErrIDTaken = errors.New("segment: id already used")

// ErrNotDurable wraps a WAL commit failure on a write that WAS applied:
// the vector is live in the index and its record reached the kernel,
// but the configured fsync did not complete. Insert still returns the
// assigned id alongside it — retrying would duplicate the vector.
var ErrNotDurable = errors.New("segment: applied but not durable")

// NextID returns the lowest external id never used by this index: the
// auto-assignment high-water mark. The shard router uses the max over
// shards to re-seed its id counter after a snapshot restore.
func (s *SegmentedIndex) NextID() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.nextAuto
}

// InsertWithID adds v under a caller-chosen external id. The id must
// never have been used before, including by a since-deleted vector.
// Returns ErrIDTaken (wrapped) otherwise.
func (s *SegmentedIndex) InsertWithID(id int64, v bitvec.Vector) error {
	// Cheap pre-check before the expensive filter generation; the
	// authoritative check re-runs under the write lock in install.
	s.mu.RLock()
	_, taken := s.slotOf[id]
	s.mu.RUnlock()
	if taken {
		return fmt.Errorf("%w: %d", ErrIDTaken, id)
	}
	fss := s.computeFilters(v)
	defer s.releaseFilters(fss)
	return s.install(id, v, fss)
}

// computeFilters runs filter generation for every repetition engine —
// the expensive part of an insert, dependent only on the immutable
// engines — outside any lock, into pooled arenas.
func (s *SegmentedIndex) computeFilters(v bitvec.Vector) []*lsf.FilterSet {
	fss := make([]*lsf.FilterSet, len(s.engines))
	for r, eng := range s.engines {
		fs := s.getFilterSet()
		eng.FiltersInto(v, fs)
		fss[r] = fs
	}
	return fss
}

func (s *SegmentedIndex) releaseFilters(fss []*lsf.FilterSet) {
	for _, fs := range fss {
		s.fsPool.Put(fs)
	}
}

// install claims id, allocates a slot, and appends the pre-computed
// filters to the memtable, all under one write-lock critical section.
// install only reads fss, so Insert can retry it after a lost id race
// without regenerating filters. With a WAL attached the insert record
// is appended (reaching the kernel) before any in-memory mutation, and
// install returns only after the record is durable under the log's
// sync policy — the fsync wait happens after the lock is released, so
// concurrent inserts share group commits.
func (s *SegmentedIndex) install(id int64, v bitvec.Vector, fss []*lsf.FilterSet) error {
	s.mu.Lock()
	if _, taken := s.slotOf[id]; taken {
		s.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrIDTaken, id)
	}
	if len(s.vecs) >= math.MaxInt32 {
		s.mu.Unlock()
		return errors.New("segment: slot space exhausted (2^31 inserts)")
	}
	w := s.wal
	var lsn uint64
	if w != nil {
		var err error
		lsn, err = w.Append(wal.Record{Op: wal.OpInsert, ID: id, Bits: v.Bits()})
		if err != nil {
			s.mu.Unlock()
			return fmt.Errorf("segment: logging insert: %w", err)
		}
		s.crashHook("insert-apply")
		s.memMaxLSN = lsn
		s.appliedLSN = lsn
	}
	s.applyInsertLocked(id, v, fss)
	s.mu.Unlock()
	if w != nil {
		if err := w.Commit(lsn); err != nil {
			// The insert is applied and its record is in the kernel; only
			// media durability is in doubt. Surface that to the caller.
			return fmt.Errorf("%w: %w", ErrNotDurable, err)
		}
	}
	return nil
}

// applyInsertLocked is the in-memory half of an insert: slot
// allocation, the packed verification form, the id registry, and the
// memtable postings. Caller holds the write lock and has already
// verified the id is unused and slot space remains.
func (s *SegmentedIndex) applyInsertLocked(id int64, v bitvec.Vector, fss []*lsf.FilterSet) {
	slot := int32(len(s.vecs))
	s.vecs = append(s.vecs, v)
	s.packed.Append(v)
	s.alive = append(s.alive, true)
	s.ext = append(s.ext, id)
	s.slotOf[id] = slot
	if id >= s.nextAuto {
		s.nextAuto = id + 1
	}
	s.live++
	for r := range fss {
		fs := fss[r]
		if fs.Truncated {
			s.mem.reps[r].truncated++
		}
		for k := 0; k < fs.Len(); k++ {
			s.mem.reps[r].add(fs.Path(k), slot)
		}
	}
	s.mem.slots = append(s.mem.slots, slot)
	if len(s.mem.slots) >= s.cfg.MemtableSize {
		s.rotateLocked()
	}
}

// rotateLocked moves the active memtable to the freeze queue and wakes
// the worker, stamping the memtable with the applied-insert LSN
// high-water mark: every insert record at or below rotLSN has been
// applied into this or an earlier memtable, so once this memtable's
// frozen segment is durable the checkpoint may fence that whole
// prefix. Caller holds the write lock.
func (s *SegmentedIndex) rotateLocked() {
	if len(s.mem.slots) == 0 {
		return
	}
	s.mem.rotLSN = s.memMaxLSN
	s.flushing = append(s.flushing, s.mem)
	s.mem = newMemtable(len(s.engines))
	s.cond.Broadcast()
}

// Delete tombstones the vector inserted under id, reporting whether it
// was live. The slot is masked immediately; the bytes are reclaimed when
// compaction next rewrites the segment holding it. With a WAL attached
// the delete record is appended before the tombstone; if the log
// refuses the append (e.g. after Close) the delete is not applied and
// Delete reports false.
func (s *SegmentedIndex) Delete(id int64) bool {
	s.mu.Lock()
	slot, ok := s.slotOf[id]
	if !ok || !s.alive[slot] {
		s.mu.Unlock()
		return false
	}
	w := s.wal
	var lsn uint64
	if w != nil {
		var err error
		lsn, err = w.Append(wal.Record{Op: wal.OpDelete, ID: id})
		if err != nil {
			s.mu.Unlock()
			return false
		}
		s.crashHook("delete-apply")
		s.appliedLSN = lsn
	}
	s.alive[slot] = false
	s.live--
	s.deadExt = append(s.deadExt, id)
	s.mu.Unlock()
	if w != nil {
		// Durability wait outside the lock; an fsync failure leaves the
		// tombstone applied with the record already in the kernel.
		_ = w.Commit(lsn)
	}
	return true
}

// Flush synchronously rotates the active memtable and waits until every
// queued memtable has been frozen into a CSR segment. Mainly for tests
// and snapshot-heavy callers that want a bounded memtable on disk.
func (s *SegmentedIndex) Flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rotateLocked()
	for len(s.flushing) > 0 && !s.closed {
		s.cond.Wait()
	}
}

// WaitIdle blocks until no freeze, compaction, tier move, or WAL
// checkpoint work is pending or running. Insert/Delete/Query may of
// course create new work afterwards.
func (s *SegmentedIndex) WaitIdle() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for (len(s.flushing) > 0 || s.compacting || s.persisting || s.tiering ||
		s.needsCompactLocked() || s.needsRetierLocked()) && !s.closed {
		s.cond.Wait()
	}
}

func (s *SegmentedIndex) needsCompactLocked() bool {
	return len(s.segs) > s.cfg.MaxSegments
}

// AppliedLSN reports the WAL LSN of the newest record (insert, delete,
// or replayed checkpoint) fully applied in memory. A snapshot taken
// after reading it, replayed with the log from AppliedLSN()+1 onward,
// reconstructs this index exactly — the replication cut point. Zero
// when no WAL is attached or nothing has been applied.
func (s *SegmentedIndex) AppliedLSN() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.appliedLSN
}

// WAL returns the attached log, or nil before Recover. The replication
// feed streams frames from it; callers must not Close it.
func (s *SegmentedIndex) WAL() *wal.Log {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.wal
}

// Stats reports current sizes.
func (s *SegmentedIndex) Stats() IndexStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := IndexStats{
		Live:        s.live,
		Total:       len(s.vecs),
		Memtable:    len(s.mem.slots),
		Segments:    len(s.segs),
		Freezes:     s.freezes,
		Compactions: s.compactions,
	}
	for _, mt := range s.flushing {
		st.Flushing += len(mt.slots)
	}
	for _, g := range s.segs {
		st.SegmentSizes = append(st.SegmentSizes, g.size())
		if g.mapping != nil {
			st.ColdSegments++
		} else {
			st.ResidentSegments++
			st.ResidentBytes += g.arenaBytes
		}
	}
	if s.wal != nil {
		ws := s.wal.Stats()
		st.WAL = &ws
	}
	return st
}

func (s *SegmentedIndex) getFilterSet() *lsf.FilterSet {
	fs, _ := s.fsPool.Get().(*lsf.FilterSet)
	if fs == nil {
		fs = new(lsf.FilterSet)
	}
	fs.Reset()
	return fs
}

// forEach runs the traversal and, when metrics are attached, records
// the query's work stats — one observation per (shard-)query, canceled
// or not, so the histograms see the same population the server serves.
func (s *SegmentedIndex) forEach(q bitvec.Vector, stats *QueryStats, cc *lsf.CancelCheck, sink func(slot int32) bool) error {
	err := s.traverse(q, stats, cc, sink)
	if m := s.cfg.Metrics; m != nil {
		m.observeQuery(stats)
	}
	return err
}

// traverse is the single traversal behind every query entry point: for
// each repetition engine it computes F(q) once into a pooled arena, then
// probes the active memtable, the flushing memtables, and every frozen
// segment for each path, deduplicating slots index-wide through one
// epoch-stamped Visited set and masking tombstones, streaming each
// distinct live slot into sink in first-encounter order until sink
// returns false. Runs entirely under the read lock: one query sees one
// consistent snapshot.
//
// cc, when non-nil, is a cooperative cancellation checkpoint polled
// during each repetition's filter generation and once per filter path —
// the nil (no-deadline) path pays one pointer compare per path. The
// returned error is non-nil exactly when the traversal was cut short by
// cc; a sink-initiated early stop returns nil.
func (s *SegmentedIndex) traverse(q bitvec.Vector, stats *QueryStats, cc *lsf.CancelCheck, sink func(slot int32) bool) error {
	fs := s.getFilterSet()
	defer s.fsPool.Put(fs)
	s.mu.RLock()
	defer s.mu.RUnlock()
	stats.Segments = len(s.segs)
	vis := s.visitPool.Get(len(s.vecs))
	defer s.visitPool.Put(vis)
	emit := func(slot int32) bool {
		stats.Candidates++
		if !vis.FirstVisit(slot) {
			return true
		}
		if !s.alive[slot] {
			return true
		}
		stats.Distinct++
		return sink(slot)
	}
	// Per-traversal decode scratch for cold compressed segments (unused
	// — and never allocated — while every consulted segment is resident
	// or uncompressed).
	var coldBuf []int32
	for r, eng := range s.engines {
		fs.Reset()
		eng.FiltersIntoCancel(q, fs, cc)
		if cc.Err() != nil {
			return cc.Err()
		}
		stats.Reps++
		stats.Filters += fs.Len()
		if fs.Truncated {
			stats.Truncated++
		}
		for k := 0; k < fs.Len(); k++ {
			if cc != nil && cc.Check() {
				return cc.Err()
			}
			path := fs.Path(k)
			// One hash per (repetition, path) serves the memtable maps,
			// every segment's key table, and every segment's bloom filter.
			h := lsf.HashPath(path)
			for _, slot := range s.mem.reps[r].postingsHash(h, path) {
				if !emit(slot) {
					return nil
				}
			}
			for _, mt := range s.flushing {
				for _, slot := range mt.reps[r].postingsHash(h, path) {
					if !emit(slot) {
						return nil
					}
				}
			}
			for _, g := range s.segs {
				if g.bloom != nil {
					stats.BloomProbes++
					if !g.bloom.mayContain(h) {
						stats.BloomSkips++
						continue
					}
				}
				for _, lid := range g.reps[r].PostingsBuf(h, path, &coldBuf) {
					if !emit(g.slots[lid]) {
						return nil
					}
				}
			}
		}
	}
	return nil
}

// Query returns the first live vector with measure-similarity at least
// threshold among the candidates sharing a filter with q.
func (s *SegmentedIndex) Query(q bitvec.Vector, threshold float64, m bitvec.Measure) (Match, QueryStats, bool) {
	ses := verify.Acquire(m, q)
	defer verify.Release(ses)
	match, stats, found, _ := s.QueryWithContext(nil, ses, threshold)
	return match, stats, found
}

// QueryWith is Query over a caller-supplied verification session
// (carrying the query, the measure, and the query's packed form). The
// shard router packs a query once and fans the same session out to
// every shard — Session verification is read-only, so concurrent shard
// goroutines share it safely.
func (s *SegmentedIndex) QueryWith(ses *verify.Session, threshold float64) (Match, QueryStats, bool) {
	match, stats, found, _ := s.QueryWithContext(nil, ses, threshold)
	return match, stats, found
}

// QueryWithContext is QueryWith with cooperative cancellation: ctx is
// polled inside the traversal (filter generation and per-path probes),
// so an abandoned query releases its read lock within one posting walk
// instead of running to completion. The error is non-nil exactly when
// the query was cut short (ctx.Err()); the partial result alongside it
// must be treated as incomplete. A nil or never-canceled ctx costs one
// nil compare per checkpoint.
func (s *SegmentedIndex) QueryWithContext(ctx context.Context, ses *verify.Session, threshold float64) (Match, QueryStats, bool, error) {
	var (
		stats QueryStats
		match Match
		found bool
	)
	err := s.forEach(ses.Query(), &stats, lsf.NewCancelCheck(ctx), func(slot int32) bool {
		if sim, ok := ses.AtLeast(&s.packed, s.vecs, slot, threshold); ok {
			match = Match{ID: s.ext[slot], Similarity: sim}
			found = true
			return false
		}
		return true
	})
	return match, stats, found, err
}

// QueryBest examines every candidate and returns the most similar one
// (first encountered wins ties).
func (s *SegmentedIndex) QueryBest(q bitvec.Vector, m bitvec.Measure) (Match, QueryStats, bool) {
	ses := verify.Acquire(m, q)
	defer verify.Release(ses)
	match, stats, found, _ := s.QueryBestWithContext(nil, ses)
	return match, stats, found
}

// QueryBestWith is QueryBest over a caller-supplied session; each
// candidate is pruned against the running best before its intersection
// is computed.
func (s *SegmentedIndex) QueryBestWith(ses *verify.Session) (Match, QueryStats, bool) {
	match, stats, found, _ := s.QueryBestWithContext(nil, ses)
	return match, stats, found
}

// QueryBestWithContext is QueryBestWith with cooperative cancellation
// (see QueryWithContext for the contract).
func (s *SegmentedIndex) QueryBestWithContext(ctx context.Context, ses *verify.Session) (Match, QueryStats, bool, error) {
	var (
		stats QueryStats
		match Match
		found bool
	)
	best := -1.0
	err := s.forEach(ses.Query(), &stats, lsf.NewCancelCheck(ctx), func(slot int32) bool {
		if sim, ok := ses.MoreThan(&s.packed, s.vecs, slot, best); ok {
			best = sim
			match = Match{ID: s.ext[slot], Similarity: sim}
			found = true
		}
		return true
	})
	return match, stats, found, err
}

// TopK returns the k most similar live candidates, sorted by decreasing
// similarity with ties broken by ascending external id (deterministic,
// and identical to core.QueryTopK's order under auto-assigned ids).
func (s *SegmentedIndex) TopK(q bitvec.Vector, k int, m bitvec.Measure) ([]Match, QueryStats) {
	ses := verify.Acquire(m, q)
	defer verify.Release(ses)
	matches, stats, _ := s.TopKWithContext(nil, ses, k)
	return matches, stats
}

// TopKWith is TopK over a caller-supplied session. Every positive
// similarity is computed exactly (no threshold prune — any candidate
// can make the cut), but through the packed popcount kernel.
func (s *SegmentedIndex) TopKWith(ses *verify.Session, k int) ([]Match, QueryStats) {
	matches, stats, _ := s.TopKWithContext(nil, ses, k)
	return matches, stats
}

// TopKWithContext is TopKWith with cooperative cancellation (see
// QueryWithContext for the contract). A canceled top-k returns the
// ranked prefix gathered so far alongside the error.
func (s *SegmentedIndex) TopKWithContext(ctx context.Context, ses *verify.Session, k int) ([]Match, QueryStats, error) {
	var stats QueryStats
	if k <= 0 {
		return nil, stats, nil
	}
	var matches []Match
	err := s.forEach(ses.Query(), &stats, lsf.NewCancelCheck(ctx), func(slot int32) bool {
		if sim := ses.Similarity(&s.packed, s.vecs, slot); sim > 0 {
			matches = append(matches, Match{ID: s.ext[slot], Similarity: sim})
		}
		return true
	})
	SortMatches(matches)
	if len(matches) > k {
		matches = matches[:k]
	}
	return matches, stats, err
}

// Candidates returns the distinct live candidate slots for q over all
// repetitions and layers. Together with Data it satisfies
// join.CandidateSource, keeping the join driver the integration seam:
// a SegmentedIndex drops into join.Run/RunParallel over a quiescent
// index. The join driver captures Data() once up front, so concurrent
// inserts during a join could yield candidate slots beyond that
// snapshot — run joins with writes paused (queries are fine).
func (s *SegmentedIndex) Candidates(q bitvec.Vector) []int32 {
	var out []int32
	var stats QueryStats
	s.forEach(q, &stats, nil, func(slot int32) bool {
		out = append(out, slot)
		return true
	})
	return out
}

// CandidatesExt is Candidates in the external id space, with stats.
func (s *SegmentedIndex) CandidatesExt(q bitvec.Vector) ([]int64, QueryStats) {
	var out []int64
	var stats QueryStats
	s.forEach(q, &stats, nil, func(slot int32) bool {
		out = append(out, s.ext[slot])
		return true
	})
	return out, stats
}

// Data returns the slot-indexed vector table (dead slots keep their
// vector until compaction; they are never returned as candidates). The
// slice grows under inserts; the prefix a caller observed is immutable,
// but slots allocated after the call are not in the returned snapshot —
// callers pairing Data with later Candidates calls (the join driver)
// must hold writes quiescent for the pairing to stay index-consistent.
func (s *SegmentedIndex) Data() []bitvec.Vector {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.vecs
}

// worker is the background freeze/compaction loop: one goroutine per
// index, woken by rotations and Close. Heavy work (building CSR arenas,
// merging segments) runs outside the lock; installs are brief writes.
func (s *SegmentedIndex) worker() {
	s.mu.Lock()
	for {
		// The worker pauses during WAL recovery: a memtable frozen
		// before the log is attached would get no checkpoint segment
		// file, yet a later checkpoint could fence (and truncate) the
		// log records that are its only durable copy.
		for !s.closed && (s.recovering ||
			(len(s.flushing) == 0 && !s.needsCompactLocked() && !s.needsRetierLocked())) {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		if len(s.flushing) > 0 {
			mt := s.flushing[0]
			s.mu.Unlock()
			t0 := time.Now()
			seg := s.buildSegment(mt)
			if m := s.cfg.Metrics; m != nil {
				m.FreezeSeconds.ObserveDuration(time.Since(t0))
				m.Freezes.Inc()
			}
			s.mu.Lock()
			s.flushing = s.flushing[1:]
			if seg != nil {
				s.segs = append(s.segs, seg)
			}
			s.freezes++
			s.cond.Broadcast()
			if seg != nil && s.storageDirLocked() != "" {
				// Persist the frozen segment and, with a WAL attached,
				// fence the insert prefix it covers (drops the lock for
				// the file IO).
				s.persistFreezeLocked(seg, mt.rotLSN)
			}
			continue
		}
		if s.needsCompactLocked() {
			a, b := s.pickSmallestLocked()
			s.compacting = true
			s.mu.Unlock()
			t0 := time.Now()
			merged := s.mergeSegments(a, b)
			if m := s.cfg.Metrics; m != nil {
				m.CompactSeconds.ObserveDuration(time.Since(t0))
				m.Compactions.Inc()
			}
			s.mu.Lock()
			s.segs = removeSegs(s.segs, a, b)
			if merged != nil {
				s.segs = append(s.segs, merged)
			}
			s.compacting = false
			s.compactions++
			s.cond.Broadcast()
			if s.storageDirLocked() != "" {
				s.persistCompactionLocked(merged, a, b)
			}
			continue
		}
		// Tier maintenance: one segment per pass (re-evaluated each
		// time around, so fresh freezes and compactions take priority).
		g, demote, ok := s.retierActionLocked()
		if !ok {
			continue
		}
		s.tiering = true
		s.mu.Unlock()
		if demote {
			s.demoteSeg(g)
		} else {
			s.promoteSeg(g)
		}
		s.mu.Lock()
		s.tiering = false
		s.cond.Broadcast()
	}
}

// pickSmallestLocked returns the two smallest frozen segments. Caller
// holds the lock and has checked len(segs) >= 2 via needsCompactLocked
// (MaxSegments >= 1).
func (s *SegmentedIndex) pickSmallestLocked() (*frozenSeg, *frozenSeg) {
	i, j := -1, -1
	for k, g := range s.segs {
		switch {
		case i < 0 || g.size() < s.segs[i].size():
			j = i
			i = k
		case j < 0 || g.size() < s.segs[j].size():
			j = k
		}
	}
	return s.segs[i], s.segs[j]
}

func removeSegs(segs []*frozenSeg, drop ...*frozenSeg) []*frozenSeg {
	out := segs[:0]
	for _, g := range segs {
		keep := true
		for _, d := range drop {
			if g == d {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, g)
		}
	}
	return out
}
