package segment

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"syscall"
	"testing"

	"skewsim/internal/wal"
)

// Storage-layer crash tests: SIGKILL inside the segment-file write, the
// compaction sweep that retires superseded files, and the tier moves
// that swap a segment between its heap and mmap forms. With fsync
// SyncAlways every applied op is durable before the next is issued, so
// whatever the storage machinery was doing when it died, recovery must
// reconstruct the full workload — from whichever mix of WAL records,
// current-generation and superseded segment files survived — and leave
// no torn temporaries behind.

// storageCrashConfig keeps memtables small enough that the full tiering
// and compaction machinery runs, with a 1-byte resident budget so every
// persisted segment is demoted to its mmap form.
func storageCrashConfig(t *testing.T) Config {
	t.Helper()
	params := testParams(t, testDist(t), crashWorkloadN, 3, 55)
	return Config{
		Params:           params,
		N:                crashWorkloadN,
		MemtableSize:     32, // 120 inserts: three rotations + a final partial
		MaxSegments:      3,
		ResidentBytes:    1,
		CompressPostings: true,
	}
}

// TestStorageCrashHelper is the sacrificial process for the storage
// fault points. The crash hook stays disarmed until every op has been
// applied (each one durable under SyncAlways), so the kill always lands
// in the post-workload flush/retier phase and the parent's reference is
// simply the whole workload. Freezes, compactions, and demotions that
// run concurrently with the op stream fire the same hooks but are
// ignored; the armed phase then forces at least one of each: the final
// flush persists a fourth segment (storage-tmp), pushing the count past
// MaxSegments (compaction-sweep) and the budget retier demotes the
// survivors (tier-demote); lifting the budget promotes them all back
// (tier-promote) and re-imposing it demotes them again.
func TestStorageCrashHelper(t *testing.T) {
	point := os.Getenv(envCrashPoint)
	if point == "" {
		t.Skip("storage crash helper: run only as a subprocess")
	}
	dir := os.Getenv(envCrashDir)
	policy, err := wal.ParseSyncPolicy(os.Getenv(envCrashFsync))
	if err != nil {
		t.Fatal(err)
	}
	trigger, err := strconv.Atoi(os.Getenv(envCrashTrigger))
	if err != nil {
		t.Fatal(err)
	}
	log, err := wal.Open(dir, wal.Options{Sync: policy, SegmentBytes: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Recover(storageCrashConfig(t), log)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var armed atomic.Bool
	var hits atomic.Int64
	s.crashHook = func(p string) {
		if p != point || !armed.Load() {
			return
		}
		if int(hits.Add(1)) == trigger {
			syscall.Kill(os.Getpid(), syscall.SIGKILL)
		}
	}
	applyOps(t, s, crashWorkload(t, crashWorkloadN))
	armed.Store(true)
	s.Flush()
	s.WaitIdle()
	s.SetResidentBudget(0)
	s.WaitIdle()
	s.SetResidentBudget(1)
	s.WaitIdle()
	fmt.Println("HELPER-NOCRASH")
}

// TestStorageCrashRecovery: SIGKILL at every storage fault point must
// recover bit-identically to the uncrashed workload, with no .tmp
// debris surviving the reopen.
func TestStorageCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	cases := []struct {
		point   string
		trigger int
	}{
		// Mid segment-file write: the temp file is synced but not yet
		// renamed, so the data's only durable home is still the log.
		{"storage-tmp", 1},
		{"storage-tmp", 2},
		// After the merged file's rename, before the inputs' files are
		// removed: both generations on disk, recovery dedups by id.
		{"compaction-sweep", 1},
		// Mid-demote and mid-promote: the swap never happened, the file
		// and the heap form both still cover the segment.
		{"tier-demote", 1},
		{"tier-demote", 3},
		{"tier-promote", 1},
		{"tier-promote", 2},
	}
	ops := crashWorkload(t, crashWorkloadN)
	queries := crashQueries(t, 40)
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("%s@%d", tc.point, tc.trigger), func(t *testing.T) {
			dir := t.TempDir()
			runCrashHelperNamed(t, "TestStorageCrashHelper", dir, "always", tc.point, "", tc.trigger)

			log, err := wal.Open(dir, wal.Options{SegmentBytes: 1 << 12})
			if err != nil {
				t.Fatalf("wal.Open after crash: %v", err)
			}
			rec, err := Recover(storageCrashConfig(t), log)
			if err != nil {
				log.Close()
				t.Fatalf("Recover after crash: %v", err)
			}
			defer rec.Close()
			rec.WaitIdle()

			tmps, err := filepath.Glob(filepath.Join(dir, "*.tmp"))
			if err != nil {
				t.Fatal(err)
			}
			if len(tmps) != 0 {
				t.Fatalf("torn temp files survived recovery: %v", tmps)
			}

			refCfg := storageCrashConfig(t)
			refCfg.ResidentBytes = 0
			ref, err := New(refCfg)
			if err != nil {
				t.Fatalf("reference New: %v", err)
			}
			defer ref.Close()
			applyOps(t, ref, ops)
			assertEquivalent(t, rec, ref, queries)
		})
	}
}
