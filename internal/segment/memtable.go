package segment

import (
	"slices"

	"skewsim/internal/lsf"
)

// memtable is the mutable head of a SegmentedIndex: the pre-freeze
// chained-bucket map index the library used before the CSR layout, kept
// exactly because its strength is the opposite of the frozen arenas' —
// O(1) inserts, no rebuild — and its weakness (pointer-chasing, per-
// bucket heap objects) is bounded by the small memtable size. One
// memtable holds one bucket map per repetition engine plus the slots it
// covers, in insertion order. A memtable is mutated only while it is the
// active head (under the index write lock); once rotated into the
// flushing list it is immutable and safe to read without coordination.
type memtable struct {
	reps []memRep
	// slots are the index-wide slot numbers of the vectors in this
	// memtable, in insertion order. Freezing assigns local ids by
	// position in this slice.
	slots []int32
	// rotLSN is the WAL high-water mark captured when the memtable
	// rotated into the freeze queue: every insert in this or an earlier
	// memtable was logged at or below it, so the checkpoint written
	// after this memtable freezes may fence that whole insert prefix.
	// Zero without an attached WAL.
	rotLSN uint64
}

func newMemtable(reps int) *memtable {
	mt := &memtable{reps: make([]memRep, reps)}
	for r := range mt.reps {
		mt.reps[r].buckets = make(map[uint64][]mbucket)
	}
	return mt
}

// memRep is one repetition's bucket map: path hash → chain of buckets,
// with path equality verified per bucket so hash collisions stay
// correct (the same contract as the frozen key table).
type memRep struct {
	buckets   map[uint64][]mbucket
	truncated int // vectors whose filter generation hit the work budget
}

type mbucket struct {
	path  []uint32
	slots []int32
}

// add appends slot to the bucket of path, creating it (and copying the
// path — callers pass views into reused filter arenas) on first sight.
func (m *memRep) add(path []uint32, slot int32) {
	h := lsf.HashPath(path)
	chain := m.buckets[h]
	for i := range chain {
		if slices.Equal(chain[i].path, path) {
			chain[i].slots = append(chain[i].slots, slot)
			return
		}
	}
	m.buckets[h] = append(chain, mbucket{path: slices.Clone(path), slots: []int32{slot}})
}

// postings returns the slots sharing the exact path, or nil.
func (m *memRep) postings(path []uint32) []int32 {
	return m.postingsHash(lsf.HashPath(path), path)
}

// postingsHash is postings with the path hash precomputed — the
// traversal hashes each path once and reuses it across every memtable
// layer, frozen key table, and segment bloom filter.
func (m *memRep) postingsHash(h uint64, path []uint32) []int32 {
	for _, b := range m.buckets[h] {
		if slices.Equal(b.path, path) {
			return b.slots
		}
	}
	return nil
}
