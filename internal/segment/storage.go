package segment

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"skewsim/internal/bitvec"
	"skewsim/internal/dataio"
	"skewsim/internal/faultinject"
	"skewsim/internal/lsf"
	"skewsim/internal/mmapio"
)

// SKSEG1: the on-disk segment container. One file per frozen segment
// (still named ckpt-<seq>.seg — the recovery machinery and WAL fencing
// of wal.go are unchanged), holding everything needed to serve the
// segment without a rebuild: the vector payloads, the external-id map,
// the global tombstone snapshot, the path-key bloom filter, and one
// relocatable frozen-index blob (lsf.AppendFrozen) per repetition.
// Because the per-repetition blobs store the frozen arenas verbatim,
// opening a file is either zero-copy — the arenas become typed views
// into a read-only mmap, which is how cold segments serve queries —
// or one flat decode for the resident (heap) form.
//
// Layout, all little-endian:
//
//	[0:6]    magic "SKSEG1"
//	[6:8]    version uint16 (= 1)
//	[8:12]   hdrLen  uint32 — header payload bytes
//	[12:16]  hdrCRC  uint32 — CRC-32C of the header payload
//	[16:...] header payload:
//	  flags uint32 (bit0: posting sections are delta+varint compressed)
//	  reps  uint32
//	  count uint32 (vectors)
//	  dead  uint32 (tombstone snapshot length)
//	  nsect uint32 (= 5 + reps)
//	  nsect × section entry {kind u32, ord u32, off u64, len u64, crc u32, aux u32}
//	sections, each at an 8-aligned absolute offset, CRC-32C framed by
//	its table entry:
//	  kind 1 exts    count × int64
//	  kind 2 vecOff  (count+1) × uint32 — CSR offsets into vecBits
//	  kind 3 vecBits uint32 sorted-set elements, all vectors back to back
//	  kind 4 dead    dead × int64
//	  kind 5 bloom   power-of-two × uint64 words (aux = hash count)
//	  kind 6 rep     lsf frozen blob; ord = repetition index
//
// Every section checksum is verified at open (one sequential pass —
// which also faults the mapping in, so first-query latency is paid
// here instead of mid-traversal) and the lsf blobs are structurally
// validated by OpenFrozenBytes, so a file that opens cleanly serves
// with no per-read checks.

const (
	segFileVersion  = 1
	segFileFixedHdr = 16
	segEntryLen     = 32
	// segFlagCompressed mirrors the per-blob compression flag at the
	// container level (informational; the blobs are authoritative).
	segFlagCompressed = 1 << 0

	sectExts    = 1
	sectVecOff  = 2
	sectVecBits = 3
	sectDead    = 4
	sectBloom   = 5
	sectRep     = 6
)

var segFileMagic = [6]byte{'S', 'K', 'S', 'E', 'G', '1'}

func pad8(n int) int { return (n + 7) &^ 7 }

// segSection is one assembled section during writing.
type segSection struct {
	kind, ord, aux uint32
	data           []byte
}

// writeSegFile atomically persists one frozen segment as an SKSEG1
// container: assemble in memory, write to a temp name, fsync,
// crash-hook, rename into place, fsync the directory. Returns the
// final path. The frozen lsf indexes are immutable, so no index lock
// is held during any of this.
func writeSegFile(dir string, seq uint64, dump segDump, reps []*lsf.Index, bloom *bloomFilter, compress bool, hook func(string)) (string, error) {
	if err := faultinject.Fire(faultinject.SegmentCheckpointWrite, seq); err != nil {
		return "", fmt.Errorf("segment: checkpoint: %w", err)
	}
	le := binary.LittleEndian
	count := len(dump.exts)

	exts := make([]byte, 8*count)
	for i, ext := range dump.exts {
		le.PutUint64(exts[8*i:], uint64(ext))
	}
	vecOff := make([]byte, 4*(count+1))
	var vecBits []byte
	elems := 0
	for i, v := range dump.vecs {
		bits := v.Bits()
		for _, e := range bits {
			vecBits = le.AppendUint32(vecBits, e)
		}
		elems += len(bits)
		le.PutUint32(vecOff[4*(i+1):], uint32(elems))
	}
	deadB := make([]byte, 8*len(dump.dead))
	for i, id := range dump.dead {
		le.PutUint64(deadB[8*i:], uint64(id))
	}
	bloomB := make([]byte, 8*len(bloom.words))
	for i, w := range bloom.words {
		le.PutUint64(bloomB[8*i:], w)
	}
	sections := []segSection{
		{kind: sectExts, data: exts},
		{kind: sectVecOff, data: vecOff},
		{kind: sectVecBits, data: vecBits},
		{kind: sectDead, data: deadB},
		{kind: sectBloom, aux: bloomHashes, data: bloomB},
	}
	for r, rep := range reps {
		sections = append(sections, segSection{kind: sectRep, ord: uint32(r), data: rep.AppendFrozen(nil, compress)})
	}

	flags := uint32(0)
	if compress {
		flags |= segFlagCompressed
	}
	hdrLen := 20 + segEntryLen*len(sections)
	payload := make([]byte, hdrLen)
	le.PutUint32(payload[0:], flags)
	le.PutUint32(payload[4:], uint32(len(reps)))
	le.PutUint32(payload[8:], uint32(count))
	le.PutUint32(payload[12:], uint32(len(dump.dead)))
	le.PutUint32(payload[16:], uint32(len(sections)))
	off := pad8(segFileFixedHdr + hdrLen)
	for i, s := range sections {
		e := payload[20+segEntryLen*i:]
		le.PutUint32(e[0:], s.kind)
		le.PutUint32(e[4:], s.ord)
		le.PutUint64(e[8:], uint64(off))
		le.PutUint64(e[16:], uint64(len(s.data)))
		le.PutUint32(e[24:], dataio.Checksum(s.data))
		le.PutUint32(e[28:], s.aux)
		off = pad8(off + len(s.data))
	}

	file := make([]byte, 0, off)
	file = append(file, segFileMagic[:]...)
	file = le.AppendUint16(file, segFileVersion)
	file = le.AppendUint32(file, uint32(hdrLen))
	file = le.AppendUint32(file, dataio.Checksum(payload))
	file = append(file, payload...)
	for _, s := range sections {
		for len(file)%8 != 0 {
			file = append(file, 0)
		}
		file = append(file, s.data...)
	}

	final := filepath.Join(dir, ckptName(seq))
	tmp := final + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return "", fmt.Errorf("segment: checkpoint: %w", err)
	}
	if _, err = f.Write(file); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("segment: checkpoint: %w", err)
	}
	hook("storage-tmp")
	if err = os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("segment: checkpoint: %w", err)
	}
	if err = syncDir(dir); err != nil {
		return "", fmt.Errorf("segment: checkpoint: %w", err)
	}
	return final, nil
}

// segContainer is a parsed SKSEG1 file. All byte-backed fields
// (repBlobs) are views into the input buffer; exts/dead/vecs/bloom are
// heap-decoded, since they stay resident at every tier.
type segContainer struct {
	flags    uint32
	exts     []int64
	dead     []int64
	vecs     []bitvec.Vector // nil unless decodeVecs
	bloom    *bloomFilter
	repBlobs [][]byte
}

// parseSegContainer validates an SKSEG1 container against b — header,
// section table, every section checksum, structural bounds — without
// touching the lsf blobs' internals (OpenFrozenBytes owns those). It
// never allocates more than O(len(b)), so hostile inputs (the fuzz
// target) fail cheaply. wantReps > 0 requires that repetition count;
// decodeVecs selects decoding the vector payloads (skippable when the
// caller already holds the segment's vectors, i.e. tier moves).
func parseSegContainer(b []byte, wantReps int, decodeVecs bool) (*segContainer, error) {
	le := binary.LittleEndian
	fail := func(format string, args ...interface{}) (*segContainer, error) {
		return nil, fmt.Errorf("segment: invalid segment file: "+format, args...)
	}
	if len(b) < segFileFixedHdr {
		return fail("%d bytes is shorter than the header", len(b))
	}
	if [6]byte(b[0:6]) != segFileMagic {
		return fail("bad magic %q", b[0:6])
	}
	if v := le.Uint16(b[6:]); v != segFileVersion {
		return fail("unsupported version %d", v)
	}
	hdrLen := int(le.Uint32(b[8:]))
	if hdrLen < 20 || hdrLen > len(b)-segFileFixedHdr {
		return fail("header length %d exceeds file of %d", hdrLen, len(b))
	}
	payload := b[segFileFixedHdr : segFileFixedHdr+hdrLen]
	if got, want := dataio.Checksum(payload), le.Uint32(b[12:]); got != want {
		return fail("header checksum mismatch")
	}
	flags := le.Uint32(payload[0:])
	reps := int(le.Uint32(payload[4:]))
	count := int(le.Uint32(payload[8:]))
	dead := int(le.Uint32(payload[12:]))
	nsect := int(le.Uint32(payload[16:]))
	if flags&^uint32(segFlagCompressed) != 0 {
		return fail("unknown flags %#x", flags)
	}
	if reps < 1 || reps > 1024 {
		return fail("implausible repetition count %d", reps)
	}
	if wantReps > 0 && reps != wantReps {
		return fail("file has %d repetitions, config %d", reps, wantReps)
	}
	const maxReasonable = 1 << 24
	if count > maxReasonable || dead > maxReasonable {
		return fail("implausible sizes (count=%d dead=%d)", count, dead)
	}
	if nsect != 5+reps || hdrLen != 20+segEntryLen*nsect {
		return fail("section table of %d entries in a header of %d bytes for %d repetitions", nsect, hdrLen, reps)
	}

	c := &segContainer{flags: flags, repBlobs: make([][]byte, reps)}
	var vecOffB, vecBitsB []byte
	seen := make(map[uint64]bool, nsect)
	for i := 0; i < nsect; i++ {
		e := payload[20+segEntryLen*i:]
		kind := le.Uint32(e[0:])
		ord := le.Uint32(e[4:])
		off := le.Uint64(e[8:])
		length := le.Uint64(e[16:])
		if off%8 != 0 || off > uint64(len(b)) || length > uint64(len(b))-off {
			return fail("section %d spans [%d,+%d) outside file of %d", i, off, length, len(b))
		}
		data := b[off : off+length : off+length]
		if dataio.Checksum(data) != le.Uint32(e[24:]) {
			return fail("section %d (kind %d) checksum mismatch", i, kind)
		}
		key := uint64(kind)<<32 | uint64(ord)
		if seen[key] {
			return fail("duplicate section kind %d ord %d", kind, ord)
		}
		seen[key] = true
		switch kind {
		case sectExts:
			if len(data) != 8*count {
				return fail("exts section of %d bytes for %d vectors", len(data), count)
			}
			c.exts = make([]int64, count)
			for j := range c.exts {
				c.exts[j] = int64(le.Uint64(data[8*j:]))
			}
		case sectVecOff:
			if len(data) != 4*(count+1) {
				return fail("vecOff section of %d bytes for %d vectors", len(data), count)
			}
			vecOffB = data
		case sectVecBits:
			if len(data)%4 != 0 {
				return fail("vecBits section of %d bytes", len(data))
			}
			vecBitsB = data
		case sectDead:
			if len(data) != 8*dead {
				return fail("dead section of %d bytes for %d ids", len(data), dead)
			}
			c.dead = make([]int64, dead)
			for j := range c.dead {
				c.dead[j] = int64(le.Uint64(data[8*j:]))
			}
		case sectBloom:
			words := len(data) / 8
			if len(data)%8 != 0 || words == 0 || words&(words-1) != 0 {
				return fail("bloom section of %d bytes", len(data))
			}
			if aux := le.Uint32(e[28:]); aux != bloomHashes {
				return fail("bloom filter with %d hashes, built with %d", aux, bloomHashes)
			}
			w := make([]uint64, words)
			for j := range w {
				w[j] = le.Uint64(data[8*j:])
			}
			c.bloom = bloomFromWords(w)
		case sectRep:
			if int(ord) >= reps {
				return fail("repetition section %d of %d", ord, reps)
			}
			c.repBlobs[ord] = data
		default:
			return fail("unknown section kind %d", kind)
		}
	}
	if c.exts == nil || vecOffB == nil || vecBitsB == nil || c.bloom == nil || (dead > 0 && c.dead == nil) {
		return fail("missing section")
	}
	for r, blob := range c.repBlobs {
		if blob == nil {
			return fail("missing repetition %d", r)
		}
	}
	// Vector payload structure is validated whether or not the payloads
	// are decoded — tier moves skip the decode, not the checks.
	nElems := len(vecBitsB) / 4
	prev := uint32(0)
	if le.Uint32(vecOffB) != 0 {
		return fail("vector offsets do not start at 0")
	}
	for j := 1; j <= count; j++ {
		o := le.Uint32(vecOffB[4*j:])
		if o < prev || int(o) > nElems {
			return fail("vector offsets not monotonic at %d", j)
		}
		prev = o
	}
	if int(prev) != nElems {
		return fail("vector payloads cover %d of %d elements", prev, nElems)
	}
	if decodeVecs {
		c.vecs = make([]bitvec.Vector, count)
		elems := make([]uint32, nElems)
		for j := range elems {
			elems[j] = le.Uint32(vecBitsB[4*j:])
		}
		for j := 0; j < count; j++ {
			lo, hi := le.Uint32(vecOffB[4*j:]), le.Uint32(vecOffB[4*(j+1):])
			// New, not FromSorted: a stream that passes checksums could
			// still carry unsorted elements; New sorts and dedups.
			c.vecs[j] = bitvec.New(elems[lo:hi]...)
		}
	}
	return c, nil
}

// openSegReps opens every repetition blob of a parsed SKSEG1 container
// as zero-copy cold indexes over data (the segment's local vector
// slice). Used by demotion and the initial cold load.
func (s *SegmentedIndex) openSegReps(c *segContainer, data []bitvec.Vector) ([]*lsf.Index, error) {
	reps := make([]*lsf.Index, len(s.engines))
	for r := range reps {
		ix, err := lsf.OpenFrozenBytes(c.repBlobs[r], s.engines[r], data, true)
		if err != nil {
			return nil, err
		}
		reps[r] = ix
	}
	return reps, nil
}

// loadSegFiles opens every segment file in dir (ascending sequence)
// into s — cold, serving straight from the mappings; the worker's
// retier pass promotes the newest into the resident budget afterwards.
// Returns the highest sequence seen. Vectors whose id is already
// registered reuse their existing slot — the idempotence that makes
// snapshot-plus-tail and crash-repeated freezes safe.
func (s *SegmentedIndex) loadSegFiles(dir string) (uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("segment: %w", err)
	}
	type ckpt struct {
		seq  uint64
		path string
	}
	var files []ckpt
	for _, e := range ents {
		name := e.Name()
		if !e.Type().IsRegular() || !strings.HasPrefix(name, ckptPrefix) {
			continue
		}
		if strings.HasSuffix(name, ckptSuffix+".tmp") {
			// A crash between a segment file's tmp write and its rename
			// left this orphan; the WAL still covers its records.
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if !strings.HasSuffix(name, ckptSuffix) {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, ckptPrefix), ckptSuffix), 10, 64)
		if err != nil {
			return 0, fmt.Errorf("segment: malformed checkpoint file name %q", name)
		}
		files = append(files, ckpt{seq, filepath.Join(dir, name)})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].seq < files[j].seq })
	var maxSeq uint64
	dead := make(map[int64]bool)
	for _, c := range files {
		if err := s.loadSegFile(c.path, c.seq, dead); err != nil {
			return 0, err
		}
		maxSeq = c.seq
	}
	// Apply the union of every file's tombstone list only after all
	// vectors are registered: an id may be listed dead by an older file
	// while its vector arrives with a newer one.
	for id := range dead {
		s.applyDeadID(id)
	}
	return maxSeq, nil
}

// loadSegFile maps one SKSEG1 file and installs it as a cold frozen
// segment, folding its tombstone snapshot into dead.
func (s *SegmentedIndex) loadSegFile(path string, seq uint64, dead map[int64]bool) (err error) {
	m, err := mmapio.Open(path)
	if err != nil {
		return fmt.Errorf("segment: %w", err)
	}
	defer func() {
		if err != nil {
			m.Close()
		}
	}()
	c, err := parseSegContainer(m.Data(), len(s.engines), true)
	if err != nil {
		return fmt.Errorf("segment: %s: %w", filepath.Base(path), err)
	}
	seg := &frozenSeg{
		slots:   make([]int32, len(c.exts)),
		walSeq:  seq,
		path:    path,
		mapping: m,
		bloom:   c.bloom,
	}
	for i, ext := range c.exts {
		seg.slots[i] = s.findOrRestoreSlot(ext, c.vecs[i])
	}
	seg.reps, err = s.openSegReps(c, c.vecs)
	if err != nil {
		return fmt.Errorf("segment: %s: %w", filepath.Base(path), err)
	}
	seg.arenaBytes = segArenaBytes(seg.reps)
	for _, id := range c.dead {
		dead[id] = true
	}
	s.mu.Lock()
	s.segs = append(s.segs, seg)
	s.cond.Broadcast() // compaction or retier may be due after the load
	s.mu.Unlock()
	return nil
}

// segArenaBytes is the resident heap cost of a segment's posting
// arenas — the unit Config.ResidentBytes budgets.
func segArenaBytes(reps []*lsf.Index) int64 {
	var n int64
	for _, ix := range reps {
		n += ix.ResidentBytes()
	}
	return n
}

// Tiering. The budget policy is newest-resident-first: walking the
// segment list newest to oldest, segments stay resident (heap arenas)
// until their cumulative arena bytes exceed Config.ResidentBytes, and
// everything older serves cold from its mapped file. Segments without
// a file yet (freshly frozen, pre-persist; snapshot restores) are
// always resident and charge the budget. All tier moves run on the
// worker goroutine, which also owns compaction — so a mapping is never
// unmapped while compaction streams from it, and queries are excluded
// by the swap happening under the write lock.

// storageDirLocked resolves where segment files live: the explicit
// Config.StorageDir, else the WAL directory (the pre-PR-10 layout),
// else nowhere (no persistence).
func (s *SegmentedIndex) storageDirLocked() string {
	if s.cfg.StorageDir != "" {
		return s.cfg.StorageDir
	}
	if s.wal != nil {
		return s.wal.Dir()
	}
	return ""
}

// SetResidentBudget replaces the resident-arena byte budget (0 =
// unlimited) and wakes the worker to re-tier. Exposed for operational
// adjustment and the storage tests.
func (s *SegmentedIndex) SetResidentBudget(bytes int64) {
	s.mu.Lock()
	s.cfg.ResidentBytes = bytes
	s.cond.Broadcast()
	s.mu.Unlock()
}

// retierActionLocked returns the next segment whose tier mismatches
// the budget policy, and the direction to move it.
func (s *SegmentedIndex) retierActionLocked() (g *frozenSeg, demote, ok bool) {
	budget := s.cfg.ResidentBytes
	used := int64(0)
	for i := len(s.segs) - 1; i >= 0; i-- {
		g := s.segs[i]
		if g.path == "" || g.tierFailed {
			used += g.arenaBytes
			continue
		}
		wantResident := budget <= 0 || used+g.arenaBytes <= budget
		if wantResident {
			used += g.arenaBytes
		}
		if wantResident == (g.mapping != nil) {
			return g, !wantResident, true
		}
	}
	return nil, false, false
}

func (s *SegmentedIndex) needsRetierLocked() bool {
	_, _, ok := s.retierActionLocked()
	return ok
}

// demoteSeg moves one resident segment to the cold tier: reopen its
// file (full checksum + structural re-validation — bit rot surfaces
// here, not mid-query), build zero-copy indexes over the mapping, and
// swap them in under the write lock. The heap arenas are then
// garbage. Worker goroutine only.
func (s *SegmentedIndex) demoteSeg(g *frozenSeg) {
	m, err := mmapio.Open(g.path)
	var reps []*lsf.Index
	if err == nil {
		var c *segContainer
		c, err = parseSegContainer(m.Data(), len(s.engines), false)
		if err == nil {
			reps, err = s.openSegReps(c, g.reps[0].Data())
		}
	}
	if err != nil {
		if m != nil {
			m.Close()
		}
		// A file that no longer round-trips must not serve; pin the
		// segment resident (its arenas are still correct) and stop
		// retrying — the next compaction rewrites the file.
		s.mu.Lock()
		g.tierFailed = true
		s.cond.Broadcast()
		s.mu.Unlock()
		return
	}
	s.crashHook("tier-demote")
	s.mu.Lock()
	g.reps = reps
	g.mapping = m
	s.cond.Broadcast()
	s.mu.Unlock()
	if mt := s.cfg.Metrics; mt != nil {
		mt.Demotions.Inc()
	}
}

// promoteSeg moves one cold segment back to the resident tier: decode
// the mapped blobs onto the heap (postings decompress here if the file
// is compressed), swap under the write lock, release the mapping.
// Worker goroutine only.
func (s *SegmentedIndex) promoteSeg(g *frozenSeg) {
	t0 := time.Now()
	c, err := parseSegContainer(g.mapping.Data(), len(s.engines), false)
	reps := make([]*lsf.Index, len(s.engines))
	if err == nil {
		data := g.reps[0].Data()
		for r := range reps {
			if reps[r], err = lsf.OpenFrozenBytes(c.repBlobs[r], s.engines[r], data, false); err != nil {
				break
			}
		}
	}
	if err != nil {
		s.mu.Lock()
		g.tierFailed = true // serve on cold, stop flapping
		s.cond.Broadcast()
		s.mu.Unlock()
		return
	}
	s.crashHook("tier-promote")
	s.mu.Lock()
	old := g.mapping
	g.reps = reps
	g.mapping = nil
	s.cond.Broadcast()
	s.mu.Unlock()
	old.Close()
	if mt := s.cfg.Metrics; mt != nil {
		mt.Promotions.Inc()
		mt.DecodeSeconds.ObserveDuration(time.Since(t0))
	}
}

// closeSegFile releases a retired segment's mapping (compaction drops
// its inputs). The caller guarantees no traversal can still reach the
// segment: it was removed from the visible list under the write lock.
func closeSegFile(g *frozenSeg) {
	if g.mapping != nil {
		g.mapping.Close()
		g.mapping = nil
	}
}

// Open is New plus a load of the segment files persisted under
// cfg.StorageDir — the durable-segments-without-WAL startup path. The
// directory is created if missing. For WAL-backed indexes use Recover
// instead (it loads the same files via RecoverWAL, plus the log tail);
// do not combine Open with RecoverWAL, or the files would load twice.
func Open(cfg Config) (*SegmentedIndex, error) {
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if s.cfg.StorageDir == "" {
		return s, nil
	}
	if err := os.MkdirAll(s.cfg.StorageDir, 0o777); err != nil {
		s.Close()
		return nil, fmt.Errorf("segment: %w", err)
	}
	// Pause the worker for the load, like WAL recovery does: a
	// compaction racing the scan could double-handle a segment.
	s.mu.Lock()
	s.recovering = true
	s.mu.Unlock()
	maxSeq, err := s.loadSegFiles(s.cfg.StorageDir)
	s.mu.Lock()
	s.recovering = false
	if maxSeq >= s.segSeq {
		s.segSeq = maxSeq + 1
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	if err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}
