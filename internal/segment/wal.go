package segment

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"skewsim/internal/bitvec"
	"skewsim/internal/lsf"
	"skewsim/internal/wal"
)

// Durability (write-ahead log + checkpoint segment files).
//
// A SegmentedIndex with an attached wal.Log persists its input, not its
// structure: every accepted Insert/Delete appends a record before the
// in-memory mutation, and the deterministic engines rebuild identical
// filter mappings on replay. Two kinds of files share the log
// directory:
//
//   - wal-<lsn>.log     rotated record files (owned by internal/wal)
//   - ckpt-<seq>.seg    one frozen segment each, written by the
//     background worker after a freeze or compaction completes
//
// A completed freeze makes its memtable's vectors durable twice over
// (log records and the new ckpt file), and every ckpt file also
// carries a snapshot of the global tombstone list, so the worker's
// checkpoint record fences inserts AND deletes up to the applied-LSN
// high-water mark of the frozen memtable; internal/wal then deletes
// whole log files at or below the fence. The fence is the applied
// mark, not the log's own high-water mark: a batch appends all its
// records before the first apply, and fencing unapplied, unfrozen
// inserts would lose them.
//
// Recovery (RecoverWAL) is a reconciliation, not a strict redo: load
// every ckpt segment file (skipping ids already present, e.g. from a
// snapshot restored first), then replay the surviving log records in
// LSN order — inserts at or below the checkpoint fence or with a known
// id are skipped, deletes always re-apply. Every step is idempotent, so
// a crash at any point (mid-append, between append and apply, between
// freeze and checkpoint, mid-compaction) converges to the same
// candidate sets the uncrashed index would serve; the crash tests
// assert exactly that differentially.

// Checkpoint segment files are SKSEG1 containers (storage.go): the
// vectors, the global tombstone snapshot at write time, the bloom
// filter, and the frozen per-repetition arenas verbatim — so recovery
// (and the cold tier) opens them without rebuilding anything. No
// per-vector alive flags: tombstones are the union of every file's
// dead list plus the surviving delete records. (Through PR 9 these
// files were "SKCKP1" bucket dumps; the format carried no
// compatibility promise — recovery and writing live in this package.)

const ckptPrefix, ckptSuffix = "ckpt-", ".seg"

func ckptName(seq uint64) string { return fmt.Sprintf("%s%016d%s", ckptPrefix, seq, ckptSuffix) }

// Recover builds an index from the durable state in log's directory —
// checkpoint segment files plus the surviving record tail — and
// attaches the log so subsequent writes are journaled. On an empty
// directory this is New plus an attach. The caller owns Closing the
// returned index (which closes the log).
func Recover(cfg Config, log *wal.Log) (*SegmentedIndex, error) {
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if err := s.RecoverWAL(log); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// RecoverWAL reconciles the durable state in log's directory into s and
// attaches the log. s may already hold data (a snapshot restored by
// ReadSnapshot): ids already present win, replayed deletes re-apply on
// top — the snapshot-plus-WAL-tail startup path of cmd/skewsimd. Must
// be called before any logged writes; the log must not have been
// appended to yet this session.
func (s *SegmentedIndex) RecoverWAL(log *wal.Log) error {
	// Pause the background worker for the whole recovery: replayed
	// inserts can rotate memtables, and freezing one before the log is
	// attached would leave a segment with no checkpoint file while its
	// records remain fence-able — a later checkpoint would truncate the
	// only durable copy. Queued memtables freeze (and write their
	// checkpoint files) after the attach below; their rotation stamp is
	// the pre-attach memMaxLSN of 0, so recovery-era checkpoints never
	// advance the fence past records they do not cover.
	s.mu.Lock()
	s.recovering = true
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.recovering = false
		s.cond.Broadcast()
		s.mu.Unlock()
	}()
	// Segment files live in Config.StorageDir when set, else next to
	// the log (the pre-PR-10 layout).
	dir := s.cfg.StorageDir
	if dir == "" {
		dir = log.Dir()
	} else if err := os.MkdirAll(dir, 0o777); err != nil {
		return fmt.Errorf("segment: %w", err)
	}
	maxSeq, err := s.loadSegFiles(dir)
	if err != nil {
		return err
	}
	fence := log.LastCheckpoint()
	err = log.Replay(func(lsn uint64, rec wal.Record) error {
		switch rec.Op {
		case wal.OpInsert:
			if lsn <= fence {
				return nil // covered by a ckpt segment file
			}
			err := s.InsertWithID(rec.ID, bitvec.New(rec.Bits...))
			if errors.Is(err, ErrIDTaken) {
				return nil // already present (ckpt file or snapshot)
			}
			return err
		case wal.OpDelete:
			if !s.Delete(rec.ID) {
				// Unknown or already-dead id (checkpointed dead list, or
				// an insert fenced away and dropped by compaction): still
				// burn the id so auto-assignment never reuses it.
				s.NoteDeadID(rec.ID)
			}
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("segment: wal replay: %w", err)
	}
	s.mu.Lock()
	s.wal = log
	if maxSeq >= s.segSeq {
		s.segSeq = maxSeq + 1
	}
	// Everything at or below the log head is now reflected in memory
	// (replayed, fenced into a ckpt file, or a checkpoint record) — the
	// replication cursor resumes from here.
	s.appliedLSN = log.LastLSN()
	s.mu.Unlock()
	return nil
}

// NoteDeadID registers id as used-and-dead without a slot:
// auto-assignment skips past it, and the id joins the dead list so
// every future checkpoint file keeps carrying the tombstone — dropping
// it would let a third-generation recovery re-derive nextAuto below the
// id and reuse it, breaking the "ids are never reused" contract.
func (s *SegmentedIndex) NoteDeadID(id int64) {
	s.mu.Lock()
	s.noteDeadIDLocked(id)
	s.mu.Unlock()
}

func (s *SegmentedIndex) noteDeadIDLocked(id int64) {
	if id >= s.nextAuto {
		s.nextAuto = id + 1
	}
	if s.unknownDead == nil {
		s.unknownDead = make(map[int64]struct{})
	}
	if _, seen := s.unknownDead[id]; !seen {
		s.unknownDead[id] = struct{}{}
		s.deadExt = append(s.deadExt, id)
	}
}

// InsertBatch inserts vs under caller-chosen ids as one group-committed
// WAL append (a single write and, under SyncAlways, a single fsync wait
// for the whole batch). All ids must be unused; ErrIDTaken (wrapped)
// reports the first collision with nothing applied. Without a WAL it
// degrades to the same one-lock apply loop.
func (s *SegmentedIndex) InsertBatch(ids []int64, vs []bitvec.Vector) error {
	if len(ids) != len(vs) {
		return fmt.Errorf("segment: InsertBatch got %d ids for %d vectors", len(ids), len(vs))
	}
	if len(ids) == 0 {
		return nil
	}
	// The expensive, engine-only work runs outside the lock for the
	// whole batch, exactly like single inserts.
	all := make([][]*lsf.FilterSet, len(vs))
	for i, v := range vs {
		all[i] = s.computeFilters(v)
	}
	defer func() {
		for _, fss := range all {
			s.releaseFilters(fss)
		}
	}()

	s.mu.Lock()
	for _, id := range ids {
		if _, taken := s.slotOf[id]; taken {
			s.mu.Unlock()
			return fmt.Errorf("%w: %d", ErrIDTaken, id)
		}
	}
	if len(s.vecs)+len(vs) > int(^uint32(0)>>1) {
		s.mu.Unlock()
		return errors.New("segment: slot space exhausted (2^31 inserts)")
	}
	w := s.wal
	var lsn uint64
	if w != nil {
		recs := make([]wal.Record, len(ids))
		for i, id := range ids {
			recs[i] = wal.Record{Op: wal.OpInsert, ID: id, Bits: vs[i].Bits()}
		}
		var err error
		lsn, err = w.AppendBatch(recs)
		if err != nil {
			s.mu.Unlock()
			return fmt.Errorf("segment: logging insert batch: %w", err)
		}
		s.crashHook("insert-apply")
	}
	base := lsn - uint64(len(ids)) // record i of the batch is LSN base+1+i
	for i, id := range ids {
		if w != nil {
			// Advance the checkpoint fence record by record: a rotation
			// inside this loop must not fence batch inserts that have
			// not been applied into a memtable yet.
			s.memMaxLSN = base + 1 + uint64(i)
			s.appliedLSN = s.memMaxLSN
		}
		s.applyInsertLocked(id, vs[i], all[i])
	}
	s.mu.Unlock()
	if w != nil {
		if err := w.Commit(lsn); err != nil {
			return fmt.Errorf("%w: batch: %w", ErrNotDurable, err)
		}
	}
	return nil
}

// segDump is the lock-free snapshot of a frozen segment's vector table
// and the global tombstone list, taken before the worker writes a
// checkpoint file.
type segDump struct {
	exts []int64
	vecs []bitvec.Vector
	dead []int64
}

// gatherSegLocked copies the external ids and vector references of
// seg's slots plus the current tombstone list. Caller holds the lock
// (the ext/vecs/deadExt tables may be appended to concurrently
// otherwise); vectors themselves are immutable, so the references stay
// valid after release.
func (s *SegmentedIndex) gatherSegLocked(seg *frozenSeg) segDump {
	d := segDump{
		exts: make([]int64, len(seg.slots)),
		vecs: make([]bitvec.Vector, len(seg.slots)),
		dead: append([]int64(nil), s.deadExt...),
	}
	for i, slot := range seg.slots {
		d.exts[i] = s.ext[slot]
		d.vecs[i] = s.vecs[slot]
	}
	return d
}

// persistFreezeLocked writes seg's SKSEG1 segment file and, with a WAL
// attached, appends the checkpoint record fencing inserts through
// rotLSN. Caller holds the write lock; the file IO runs with it
// released. Failures leave the log un-fenced — recovery replays the
// records instead, so durability is preserved either way.
func (s *SegmentedIndex) persistFreezeLocked(seg *frozenSeg, rotLSN uint64) {
	w := s.wal
	dir := s.storageDirLocked()
	seq := s.segSeq
	s.segSeq++
	seg.walSeq = seq
	dump := s.gatherSegLocked(seg)
	compress := s.cfg.CompressPostings
	s.persisting = true
	s.mu.Unlock()
	path, err := writeSegFile(dir, seq, dump, seg.reps, seg.bloom, compress, s.crashHook)
	s.crashHook("freeze-checkpoint")
	if err == nil && w != nil {
		// Log-file truncation and replay-skip fence; an error (e.g. log
		// closed during shutdown) only delays truncation.
		_ = w.Checkpoint(seq, rotLSN)
	}
	s.mu.Lock()
	if err == nil {
		seg.path = path // now demotable
	}
	s.persisting = false
	s.cond.Broadcast()
}

// persistCompactionLocked writes the merged segment's file and removes
// the inputs' files (closing their mappings — the inputs left the
// visible segment list under the write lock, so no traversal can still
// reach them). No checkpoint record: compaction does not extend the
// durable insert prefix, it only rewrites it. The new file lands
// before the old ones go, so a crash in between at worst re-loads both
// generations (idempotent by id). Caller holds the lock.
func (s *SegmentedIndex) persistCompactionLocked(merged, a, b *frozenSeg) {
	dir := s.storageDirLocked()
	var seq uint64
	var dump segDump
	compress := s.cfg.CompressPostings
	if merged != nil {
		seq = s.segSeq
		s.segSeq++
		merged.walSeq = seq
		dump = s.gatherSegLocked(merged)
	}
	s.persisting = true
	s.mu.Unlock()
	ok := true
	var path string
	if merged != nil {
		var err error
		if path, err = writeSegFile(dir, seq, dump, merged.reps, merged.bloom, compress, s.crashHook); err != nil {
			ok = false // keep the inputs' files: they still cover the data
		}
	}
	closeSegFile(a)
	closeSegFile(b)
	s.crashHook("compaction-sweep")
	if ok {
		removeCkptFile(dir, a.walSeq)
		removeCkptFile(dir, b.walSeq)
	}
	s.mu.Lock()
	if merged != nil && ok {
		merged.path = path
	}
	s.persisting = false
	s.cond.Broadcast()
}

func removeCkptFile(dir string, seq uint64) {
	if seq == 0 {
		return // no durable side file (pre-WAL segment or snapshot restore)
	}
	_ = os.Remove(filepath.Join(dir, ckptName(seq)))
}

// syncDir fsyncs a directory so a just-renamed file's entry is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// applyDeadID re-applies one checkpointed tombstone: kill the slot if
// the id is known and live; otherwise burn the id AND keep it on the
// dead list (its vector was compacted away — the checkpoint dead lists
// are now the tombstone's only durable home, so it must propagate into
// every future checkpoint file).
func (s *SegmentedIndex) applyDeadID(id int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if slot, ok := s.slotOf[id]; ok {
		if s.alive[slot] {
			s.alive[slot] = false
			s.live--
			s.deadExt = append(s.deadExt, id)
		}
		return
	}
	s.noteDeadIDLocked(id)
}

// findOrRestoreSlot returns the slot already registered for ext, or
// allocates one for v outside the memtable (postings arrive with the
// checkpoint segment being loaded). New slots start alive; pinned
// delete records re-kill them during replay.
func (s *SegmentedIndex) findOrRestoreSlot(ext int64, v bitvec.Vector) int32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if slot, ok := s.slotOf[ext]; ok {
		return slot
	}
	slot := int32(len(s.vecs))
	s.vecs = append(s.vecs, v)
	s.packed.Append(v)
	s.alive = append(s.alive, true)
	s.ext = append(s.ext, ext)
	s.slotOf[ext] = slot
	if ext >= s.nextAuto {
		s.nextAuto = ext + 1
	}
	s.live++
	return slot
}
