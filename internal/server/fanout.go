package server

import (
	"context"
	"errors"
	"runtime"
	"sort"
	"sync/atomic"

	"skewsim/internal/bitvec"
	"skewsim/internal/faultinject"
	"skewsim/internal/segment"
	"skewsim/internal/verify"
)

// Deadline-aware query fan-out. The *Context query methods thread the
// caller's context through admission (a queue-full or expired wait
// rejects before any work), into every shard's traversal (cooperative
// cancellation checkpoints release the shard read lock within one
// posting walk), and into the aggregation (a shard that misses the
// deadline is abandoned, not awaited). Degradation is graceful: the
// merged answer from the shards that did answer is returned with the
// fan-out marked partial, so a single stalled shard degrades result
// completeness instead of availability.

// ShardError reports one shard's failure within a fan-out, including
// where the shard was when it failed: "running" when its goroutine had
// started the traversal (or returned an error from it), "queued" when
// the deadline expired before any worker picked the shard up. The
// distinction separates a slow shard (running) from a starved worker
// pool (queued) when diagnosing partial results.
type ShardError struct {
	Shard int    `json:"shard"`
	Stage string `json:"stage,omitempty"`
	Err   string `json:"error"`
}

// ShardError stages.
const (
	StageQueued  = "queued"
	StageRunning = "running"
)

// Fanout reports how a query's shard fan-out went: how many shards
// contributed to the merged answer and what happened to the rest.
// Returned alongside the (possibly partial) results of every *Context
// query method.
type Fanout struct {
	// Shards is the fan-out width (the server's shard count).
	Shards int
	// Answered counts shards whose results are merged into the answer.
	Answered int
	// Errs details the failed shards, ascending by shard.
	Errs []ShardError

	ok       []bool
	firstErr error
}

// OK reports whether shard i's results are part of the merged answer.
func (f *Fanout) OK(i int) bool { return f.ok[i] }

// Complete reports whether every shard answered.
func (f *Fanout) Complete() bool { return f.Answered == f.Shards }

// Partial reports whether the answer merges some but not all shards —
// a usable, degraded result.
func (f *Fanout) Partial() bool { return f.Answered > 0 && f.Answered < f.Shards }

// Err returns nil when the fan-out produced a usable answer (complete
// or partial) and the reason otherwise: the admission rejection
// (ErrOverloaded, ErrShed), the context error when every shard missed
// the deadline, or the first shard failure.
func (f *Fanout) Err() error {
	if f.Answered == 0 {
		return f.firstErr
	}
	return nil
}

func (f *Fanout) fail(i int, err error, stage string) {
	f.Errs = append(f.Errs, ShardError{Shard: i, Stage: stage, Err: err.Error()})
	if f.firstErr == nil {
		f.firstErr = err
	}
}

// rejected builds the Fanout for a request that never got past
// admission: zero shards answered, every query slot unused.
func (s *Server) rejected(err error) *Fanout {
	if m := s.metrics; m != nil {
		switch {
		case errors.Is(err, ErrOverloaded):
			m.RejectedQueueFull.Inc()
		case errors.Is(err, ErrShed):
			m.RejectedShed.Inc()
		}
	}
	return &Fanout{Shards: len(s.shards), ok: make([]bool, len(s.shards)), firstErr: err}
}

// fanOut runs work(i) for every shard on the bounded worker pool and
// aggregates per-shard success. If ctx expires mid-flight the
// un-reported shards are marked failed and the call returns without
// awaiting them; a reaper goroutine drains the stragglers and only then
// runs cleanup, so shared state (the pooled verify session, the
// admission slot) stays live for exactly as long as any shard goroutine
// can touch it. Callers must read result slots only for shards with
// f.OK(i) — the report channel orders those writes before this return,
// while an abandoned shard may still be writing its slot.
func (s *Server) fanOut(ctx context.Context, work func(i int) error, cleanup func()) *Fanout {
	n := len(s.shards)
	f := &Fanout{Shards: n, ok: make([]bool, n)}
	type report struct {
		i   int
		err error
	}
	ch := make(chan report, n)
	var idx atomic.Int64
	started := make([]atomic.Bool, n)
	workers := s.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	for w := 0; w < workers; w++ {
		go func() {
			for {
				i := int(idx.Add(1)) - 1
				if i >= n {
					return
				}
				started[i].Store(true)
				// The stall point lets the fault harness hold a shard's
				// goroutine exactly where a slow disk or a lock convoy
				// would.
				err := faultinject.Fire(faultinject.ServerShardStall, ctx, i)
				if err == nil {
					err = work(i)
				}
				ch <- report{i, err}
			}
		}()
	}
	reported := make([]bool, n)
	done := ctx.Done()
	for got := 0; got < n; {
		select {
		case r := <-ch:
			reported[r.i] = true
			got++
			if r.err == nil {
				f.ok[r.i] = true
				f.Answered++
			} else {
				f.fail(r.i, r.err, StageRunning)
			}
		case <-done:
			err := ctx.Err()
			for i := 0; i < n; i++ {
				if !reported[i] {
					// A shard whose goroutine never started was still
					// waiting for a pool worker; one that started is a
					// straggler the reaper will drain.
					stage := StageQueued
					if started[i].Load() {
						stage = StageRunning
					}
					f.fail(i, err, stage)
				}
			}
			remaining := n - got
			go func() {
				for j := 0; j < remaining; j++ {
					<-ch
				}
				cleanup()
			}()
			sortShardErrs(f.Errs)
			if m := s.metrics; m != nil {
				m.AbandonedShards.Add(int64(remaining))
				if f.Partial() {
					m.PartialFanouts.Inc()
				}
			}
			return f
		}
	}
	cleanup()
	sortShardErrs(f.Errs)
	if m := s.metrics; m != nil && f.Partial() {
		m.PartialFanouts.Inc()
	}
	return f
}

func sortShardErrs(errs []ShardError) {
	sort.Slice(errs, func(a, b int) bool { return errs[a].Shard < errs[b].Shard })
}

// QueryContext is Query under a deadline: admission-gated, canceled
// cooperatively inside every shard, degraded to the answering shards'
// merged match when some miss the deadline. The Fanout is never nil;
// its Err is non-nil exactly when there is no usable answer (rejected,
// or zero shards answered).
func (s *Server) QueryContext(ctx context.Context, q bitvec.Vector, threshold float64, m bitvec.Measure) (segment.Match, segment.QueryStats, bool, *Fanout) {
	if err := s.gate.acquire(ctx); err != nil {
		return segment.Match{}, segment.QueryStats{}, false, s.rejected(err)
	}
	ses := verify.Acquire(m, q)
	n := len(s.shards)
	matches := make([]segment.Match, n)
	founds := make([]bool, n)
	stats := make([]segment.QueryStats, n)
	f := s.fanOut(ctx, func(i int) error {
		var err error
		matches[i], stats[i], founds[i], err = s.shards[i].QueryWithContext(ctx, ses, threshold)
		return err
	}, func() {
		verify.Release(ses)
		s.gate.release()
	})
	match, agg, found := aggregateOK(f, matches, founds, stats, func(a, b segment.Match) bool {
		return a.ID < b.ID
	})
	return match, agg, found, f
}

// QueryBestContext is QueryBest under a deadline (see QueryContext).
func (s *Server) QueryBestContext(ctx context.Context, q bitvec.Vector, m bitvec.Measure) (segment.Match, segment.QueryStats, bool, *Fanout) {
	if err := s.gate.acquire(ctx); err != nil {
		return segment.Match{}, segment.QueryStats{}, false, s.rejected(err)
	}
	ses := verify.Acquire(m, q)
	n := len(s.shards)
	matches := make([]segment.Match, n)
	founds := make([]bool, n)
	stats := make([]segment.QueryStats, n)
	f := s.fanOut(ctx, func(i int) error {
		var err error
		matches[i], stats[i], founds[i], err = s.shards[i].QueryBestWithContext(ctx, ses)
		return err
	}, func() {
		verify.Release(ses)
		s.gate.release()
	})
	match, agg, found := aggregateOK(f, matches, founds, stats, func(a, b segment.Match) bool {
		if a.Similarity != b.Similarity {
			return a.Similarity > b.Similarity
		}
		return a.ID < b.ID
	})
	return match, agg, found, f
}

// aggregateOK merges the shard results that actually answered; slots of
// failed shards are never read (their goroutines may still be writing).
func aggregateOK(f *Fanout, matches []segment.Match, founds []bool, stats []segment.QueryStats, better func(a, b segment.Match) bool) (segment.Match, segment.QueryStats, bool) {
	var (
		agg   segment.QueryStats
		best  segment.Match
		found bool
	)
	for i := range matches {
		if !f.OK(i) {
			continue
		}
		agg.Merge(stats[i])
		if founds[i] && (!found || better(matches[i], best)) {
			best, found = matches[i], true
		}
	}
	return best, agg, found
}

// TopKContext is TopK under a deadline (see QueryContext). A partial
// fan-out returns the merged top-k of the answering shards.
func (s *Server) TopKContext(ctx context.Context, q bitvec.Vector, k int, m bitvec.Measure) ([]segment.Match, segment.QueryStats, *Fanout) {
	if k <= 0 {
		return nil, segment.QueryStats{}, &Fanout{Shards: len(s.shards), Answered: len(s.shards), ok: okAll(len(s.shards))}
	}
	if err := s.gate.acquire(ctx); err != nil {
		return nil, segment.QueryStats{}, s.rejected(err)
	}
	ses := verify.Acquire(m, q)
	n := len(s.shards)
	perShard := make([][]segment.Match, n)
	stats := make([]segment.QueryStats, n)
	f := s.fanOut(ctx, func(i int) error {
		var err error
		perShard[i], stats[i], err = s.shards[i].TopKWithContext(ctx, ses, k)
		return err
	}, func() {
		verify.Release(ses)
		s.gate.release()
	})
	var agg segment.QueryStats
	var all []segment.Match
	for i := range perShard {
		if !f.OK(i) {
			continue
		}
		agg.Merge(stats[i])
		all = append(all, perShard[i]...)
	}
	segment.SortMatches(all)
	if len(all) > k {
		all = all[:k]
	}
	return all, agg, f
}

func okAll(n int) []bool {
	ok := make([]bool, n)
	for i := range ok {
		ok[i] = true
	}
	return ok
}

// SearchBatchContext is SearchBatch under a deadline (see
// QueryContext): one admission slot covers the whole batch, and a
// partial fan-out merges each query's winners over the answering
// shards only.
func (s *Server) SearchBatchContext(ctx context.Context, qs []bitvec.Vector, thresholds []float64, m bitvec.Measure) ([]segment.BatchResult, segment.QueryStats, *Fanout) {
	nq := len(qs)
	if nq == 0 {
		return nil, segment.QueryStats{}, &Fanout{Shards: len(s.shards), Answered: len(s.shards), ok: okAll(len(s.shards))}
	}
	if err := s.gate.acquire(ctx); err != nil {
		return nil, segment.QueryStats{}, s.rejected(err)
	}
	sess := make([]*verify.Session, nq)
	for k, q := range qs {
		sess[k] = verify.Acquire(m, q)
	}
	n := len(s.shards)
	perShard := make([][]segment.BatchResult, n)
	stats := make([]segment.QueryStats, n)
	f := s.fanOut(ctx, func(i int) error {
		var err error
		perShard[i], stats[i], err = s.shards[i].SearchBatchContext(ctx, sess, thresholds)
		return err
	}, func() {
		for _, se := range sess {
			verify.Release(se)
		}
		s.gate.release()
	})
	out := make([]segment.BatchResult, nq)
	var agg segment.QueryStats
	for i := 0; i < n; i++ {
		if !f.OK(i) {
			continue
		}
		agg.Merge(stats[i])
		for k := range out {
			r := perShard[i][k]
			if r.Found && (!out[k].Found ||
				r.Match.Similarity > out[k].Match.Similarity ||
				(r.Match.Similarity == out[k].Match.Similarity && r.Match.ID < out[k].Match.ID)) {
				out[k] = r
			}
		}
	}
	return out, agg, f
}
