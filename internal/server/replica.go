package server

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"skewsim/internal/bitvec"
	"skewsim/internal/faultinject"
	"skewsim/internal/segment"
	"skewsim/internal/wal"
)

// Replication surface: a durable primary ships its per-shard WAL
// records to followers as the same CRC-framed bytes the logs store.
//
//	GET /v1/replica/wal?shard=N&from_lsn=M
//	   200  headers X-Skewsim-Shard-Count / X-Skewsim-First-Lsn /
//	        X-Skewsim-Last-Lsn, body = CRC frames for LSNs first..last
//	   204  caught up (nothing at or above from_lsn yet)
//	   410  from_lsn truncated by checkpoint — bootstrap from snapshot
//	GET /v1/replica/snapshot
//	   200  SKREP1 stream: replica header (per-shard applied LSNs, the
//	        resume cursors) followed by the standard SKSRV1 snapshot
//	POST /v1/admin/promote
//	   follower only (HandlerConfig.Promote): stop replicating, leave
//	   read-only mode, start accepting writes
//
// Checkpoint records ride the feed so LSNs stay contiguous; the
// follower advances its cursor over them without applying. Apply is
// the idempotent recovery path (re-sent records are tolerated), so a
// follower cursor may safely under-report — never over-report — what
// it has applied. internal/replica implements the follower side;
// cmd/skewgate routes around dead primaries using /healthz roles.

// repMagic heads a replica bootstrap snapshot:
//
//	magic  [6]byte "SKREP1"
//	shards uint32
//	shards × applied LSN uint64   (feed resume cursor per shard)
//	standard SKSRV1 server snapshot
var repMagic = [6]byte{'S', 'K', 'R', 'E', 'P', '1'}

// maxReplicaChunk bounds one feed response. Large enough to drain a
// big backlog in few round trips, small enough to keep the primary's
// per-request buffer and the follower's apply batches bounded.
const maxReplicaChunk = 4 << 20

// SetReadOnly flips follower mode: while set, the HTTP insert and
// delete endpoints refuse with 403 and /healthz reports role
// "follower". In-process applies (ApplyReplicated) are unaffected.
func (s *Server) SetReadOnly(v bool) { s.readOnly.Store(v) }

// IsReadOnly reports whether the server refuses HTTP writes.
func (s *Server) IsReadOnly() bool { return s.readOnly.Load() }

// ApplyReplicated applies a batch of feed records to one shard through
// the same idempotent reconciliation recovery uses: an insert whose id
// is already present is skipped (a resumed feed may re-send applied
// records), a delete of an unknown id still burns the id, checkpoint
// records are position-only. The shard journals the applies to its own
// WAL, so a follower is durable in its own right.
func (s *Server) ApplyReplicated(shard int, recs []wal.Record) error {
	if shard < 0 || shard >= len(s.shards) {
		return fmt.Errorf("server: replicated shard %d out of range (%d shards)", shard, len(s.shards))
	}
	sh := s.shards[shard]
	for _, rec := range recs {
		switch rec.Op {
		case wal.OpInsert:
			err := sh.InsertWithID(rec.ID, bitvec.New(rec.Bits...))
			if err != nil && !errors.Is(err, segment.ErrIDTaken) && !errors.Is(err, segment.ErrNotDurable) {
				return fmt.Errorf("server: replicated insert %d: %w", rec.ID, err)
			}
		case wal.OpDelete:
			if !sh.Delete(rec.ID) {
				sh.NoteDeadID(rec.ID)
			}
		case wal.OpCheckpoint:
			// The primary's durability fence; nothing to apply here.
		default:
			return fmt.Errorf("server: replicated record with unknown op %d", rec.Op)
		}
	}
	return nil
}

// ReseedNextID advances the id counter past every id any shard has
// seen. Promotion calls it after catch-up: replicated applies bypass
// the server counter, so a freshly promoted primary must not hand out
// ids the old primary already assigned.
func (s *Server) ReseedNextID() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sh := range s.shards {
		if next := sh.NextID(); next > s.next {
			s.next = next
		}
	}
}

// shardAppliedLSNs captures every shard's applied-LSN cursor. Taken
// BEFORE the snapshot bytes are cut so the cursors can only
// under-report the snapshot's contents — re-applied records are
// idempotent, skipped ones would be lost.
func (s *Server) shardAppliedLSNs() []uint64 {
	lsns := make([]uint64, len(s.shards))
	for i, sh := range s.shards {
		lsns[i] = sh.AppliedLSN()
	}
	return lsns
}

// WriteReplicaSnapshot writes the SKREP1 bootstrap stream: per-shard
// feed cursors, then the ordinary server snapshot. Concurrent writes
// during the dump are fine — anything a later shard dump includes is
// also above the captured cursors and will simply re-apply.
func (s *Server) WriteReplicaSnapshot(w io.Writer) (int64, error) {
	lsns := s.shardAppliedLSNs()
	hdr := make([]byte, 0, 10+8*len(lsns))
	hdr = append(hdr, repMagic[:]...)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(s.shards)))
	for _, lsn := range lsns {
		hdr = binary.LittleEndian.AppendUint64(hdr, lsn)
	}
	n, err := w.Write(hdr)
	if err != nil {
		return int64(n), err
	}
	if err := faultinject.Fire(faultinject.ReplicaSnapshotTruncate); err != nil {
		return int64(n), err
	}
	m, err := s.WriteSnapshot(w)
	return int64(n) + m, err
}

// ReadReplicaSnapshot restores a Server from a WriteReplicaSnapshot
// stream and returns the per-shard feed cursors to resume from. cfg
// rules are exactly ReadSnapshot's; the follower passes its own WALDir
// so the restored state is durable locally.
func ReadReplicaSnapshot(r io.Reader, cfg Config) (*Server, []uint64, error) {
	br := bufio.NewReader(r)
	var magic [6]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, nil, fmt.Errorf("server: reading replica magic: %w", err)
	}
	if magic != repMagic {
		return nil, nil, fmt.Errorf("server: bad replica magic %q", magic)
	}
	var shards uint32
	if err := binary.Read(br, binary.LittleEndian, &shards); err != nil {
		return nil, nil, fmt.Errorf("server: reading replica header: %w", err)
	}
	if shards == 0 || shards > 1<<16 {
		return nil, nil, fmt.Errorf("server: replica snapshot claims %d shards", shards)
	}
	lsns := make([]uint64, shards)
	for i := range lsns {
		if err := binary.Read(br, binary.LittleEndian, &lsns[i]); err != nil {
			return nil, nil, fmt.Errorf("server: reading replica cursors: %w", err)
		}
	}
	srv, err := ReadSnapshot(br, cfg)
	if err != nil {
		return nil, nil, err
	}
	return srv, lsns, nil
}

// replicaRoutes mounts the primary-side replication endpoints and the
// follower promotion hook onto NewHandler's mux.
func replicaRoutes(srv *Server, hc HandlerConfig, handle func(pattern, endpoint string, h http.HandlerFunc)) {
	handle("GET /v1/replica/wal", "replica_wal", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		shard, err := strconv.Atoi(q.Get("shard"))
		if err != nil || shard < 0 || shard >= len(srv.shards) {
			httpError(w, http.StatusBadRequest, fmt.Errorf("replica/wal: shard %q out of range (%d shards)", q.Get("shard"), len(srv.shards)))
			return
		}
		from, err := strconv.ParseUint(q.Get("from_lsn"), 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("replica/wal: invalid from_lsn %q", q.Get("from_lsn")))
			return
		}
		log := srv.shards[shard].WAL()
		if log == nil {
			httpError(w, http.StatusConflict, errors.New("replica/wal: server is not durable (no -wal); nothing to ship"))
			return
		}
		if err := faultinject.Fire(faultinject.ReplicaFeedStall, shard, from); err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		buf, count, err := log.ReadFrom(from, maxReplicaChunk)
		w.Header().Set("X-Skewsim-Shard-Count", strconv.Itoa(len(srv.shards)))
		switch {
		case errors.Is(err, wal.ErrCompacted):
			// The records below the oldest live log file survive only in
			// checkpoint segment files: the follower must bootstrap.
			httpError(w, http.StatusGone, err)
			return
		case err != nil:
			httpError(w, http.StatusInternalServerError, err)
			return
		case count == 0:
			w.WriteHeader(http.StatusNoContent)
			return
		}
		first := from
		if first == 0 {
			first = 1
		}
		w.Header().Set("X-Skewsim-First-Lsn", strconv.FormatUint(first, 10))
		w.Header().Set("X-Skewsim-Last-Lsn", strconv.FormatUint(first+uint64(count)-1, 10))
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write(buf)
	})
	handle("GET /v1/replica/snapshot", "replica_snapshot", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Skewsim-Shard-Count", strconv.Itoa(len(srv.shards)))
		w.Header().Set("Content-Type", "application/octet-stream")
		if _, err := srv.WriteReplicaSnapshot(w); err != nil {
			// Bytes are already on the wire; the only honest signal left
			// is tearing the stream so the follower's parse fails.
			panic(http.ErrAbortHandler)
		}
	})
	handle("POST /v1/admin/promote", "promote", func(w http.ResponseWriter, r *http.Request) {
		if hc.Promote == nil {
			httpError(w, http.StatusConflict, errors.New("promote: this server is not a follower"))
			return
		}
		if err := hc.Promote(); err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, map[string]string{"role": "primary"})
	})
}

// healthzHandler is the cheap liveness probe: every shard answers a
// stats read (responsive under its own lock) and reports whether its
// WAL is attached. Mounted uninstrumented — probes every few hundred
// milliseconds must not dilute the API outcome counters.
func healthzHandler(srv *Server) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		durable := true
		for _, sh := range srv.shards {
			_ = sh.Stats()
			if sh.WAL() == nil {
				durable = false
			}
		}
		role := "primary"
		if srv.IsReadOnly() {
			role = "follower"
		}
		writeJSON(w, map[string]any{
			"status":  "ok",
			"role":    role,
			"shards":  len(srv.shards),
			"durable": durable,
		})
	}
}
