package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"skewsim/internal/dataio"
	"skewsim/internal/wal"
)

// pullFeed drains one shard's replication feed over HTTP from fromLSN
// to the head, decoding the frames back into records.
func pullFeed(t *testing.T, ts *httptest.Server, shard int, fromLSN uint64) []wal.Record {
	t.Helper()
	var recs []wal.Record
	for {
		url := ts.URL + "/v1/replica/wal?shard=" + strconv.Itoa(shard) + "&from_lsn=" + strconv.FormatUint(fromLSN, 10)
		resp, err := ts.Client().Get(url)
		if err != nil {
			t.Fatalf("feed: %v", err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("feed body: %v", err)
		}
		switch resp.StatusCode {
		case http.StatusNoContent:
			return recs
		case http.StatusOK:
		default:
			t.Fatalf("feed status %d: %s", resp.StatusCode, body)
		}
		first, err := strconv.ParseUint(resp.Header.Get("X-Skewsim-First-Lsn"), 10, 64)
		if err != nil {
			t.Fatalf("first-lsn header: %v", err)
		}
		last, err := strconv.ParseUint(resp.Header.Get("X-Skewsim-Last-Lsn"), 10, 64)
		if err != nil {
			t.Fatalf("last-lsn header: %v", err)
		}
		want := fromLSN
		if want == 0 {
			want = 1
		}
		if first != want {
			t.Fatalf("feed first lsn %d, requested %d", first, fromLSN)
		}
		n := 0
		fr := dataio.NewFrameReader(bytes.NewReader(body))
		for {
			payload, err := fr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("feed frame: %v", err)
			}
			rec, err := wal.DecodeRecord(payload)
			if err != nil {
				t.Fatalf("feed record: %v", err)
			}
			recs = append(recs, rec)
			n++
		}
		if got := first + uint64(n) - 1; got != last {
			t.Fatalf("feed body holds %d records (through %d), header says %d", n, got, last)
		}
		fromLSN = last + 1
	}
}

// TestReplicaFeedAndApply: a follower built purely from the primary's
// HTTP feed answers identically to the primary.
func TestReplicaFeedAndApply(t *testing.T) {
	cfg := durableConfig(t, t.TempDir(), wal.SyncNever)
	primary, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer primary.Close()
	data := sampleVectors(t, 200, 5)
	ids, err := primary.InsertBatch(data)
	if err != nil {
		t.Fatalf("InsertBatch: %v", err)
	}
	for i := 0; i < len(ids); i += 7 {
		primary.Delete(ids[i])
	}
	ts := httptest.NewServer(NewHandler(primary, HandlerConfig{}))
	defer ts.Close()

	fcfg := durableConfig(t, t.TempDir(), wal.SyncNever)
	follower, err := New(fcfg)
	if err != nil {
		t.Fatalf("New follower: %v", err)
	}
	defer follower.Close()
	follower.SetReadOnly(true)
	for shard := 0; shard < primary.Shards(); shard++ {
		recs := pullFeed(t, ts, shard, 0)
		if err := follower.ApplyReplicated(shard, recs); err != nil {
			t.Fatalf("apply shard %d: %v", shard, err)
		}
		// Re-applying the same batch must be a no-op (resume after a
		// lost cursor write re-sends applied records).
		if err := follower.ApplyReplicated(shard, recs); err != nil {
			t.Fatalf("re-apply shard %d: %v", shard, err)
		}
	}
	follower.ReseedNextID()
	assertServersAgree(t, follower, primary, sampleVectors(t, 20, 99))
}

// TestReplicaSnapshotRoundTrip: bootstrap from the SKREP1 stream plus
// the feed tail reconstructs the primary exactly, and the returned
// cursors resume the feed without loss.
func TestReplicaSnapshotRoundTrip(t *testing.T) {
	cfg := durableConfig(t, t.TempDir(), wal.SyncNever)
	primary, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer primary.Close()
	if _, err := primary.InsertBatch(sampleVectors(t, 150, 6)); err != nil {
		t.Fatalf("InsertBatch: %v", err)
	}
	var snap bytes.Buffer
	if _, err := primary.WriteReplicaSnapshot(&snap); err != nil {
		t.Fatalf("WriteReplicaSnapshot: %v", err)
	}
	// Writes after the cut ride the feed, not the snapshot.
	ids, err := primary.InsertBatch(sampleVectors(t, 50, 61))
	if err != nil {
		t.Fatalf("InsertBatch 2: %v", err)
	}
	primary.Delete(ids[0])

	fcfg := durableConfig(t, t.TempDir(), wal.SyncNever)
	follower, cursors, err := ReadReplicaSnapshot(&snap, fcfg)
	if err != nil {
		t.Fatalf("ReadReplicaSnapshot: %v", err)
	}
	defer follower.Close()
	if len(cursors) != primary.Shards() {
		t.Fatalf("%d cursors for %d shards", len(cursors), primary.Shards())
	}
	ts := httptest.NewServer(NewHandler(primary, HandlerConfig{}))
	defer ts.Close()
	for shard, cur := range cursors {
		recs := pullFeed(t, ts, shard, cur+1)
		if err := follower.ApplyReplicated(shard, recs); err != nil {
			t.Fatalf("apply shard %d: %v", shard, err)
		}
	}
	follower.ReseedNextID()
	assertServersAgree(t, follower, primary, sampleVectors(t, 20, 98))
}

// TestReplicaFeedCompacted: a cursor below the checkpoint-truncated
// prefix gets 410 Gone, the bootstrap signal.
func TestReplicaFeedCompacted(t *testing.T) {
	cfg := durableConfig(t, t.TempDir(), wal.SyncNever)
	cfg.Segment.MemtableSize = 16
	cfg.WAL.SegmentBytes = 1 << 10
	primary, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer primary.Close()
	if _, err := primary.InsertBatch(sampleVectors(t, 400, 7)); err != nil {
		t.Fatalf("InsertBatch: %v", err)
	}
	primary.Flush()
	primary.WaitIdle() // checkpoints land, prefix files are deleted
	ts := httptest.NewServer(NewHandler(primary, HandlerConfig{}))
	defer ts.Close()
	gone := false
	for shard := 0; shard < primary.Shards(); shard++ {
		resp, err := ts.Client().Get(ts.URL + "/v1/replica/wal?shard=" + strconv.Itoa(shard) + "&from_lsn=1")
		if err != nil {
			t.Fatalf("feed: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusGone {
			gone = true
		}
	}
	if !gone {
		t.Fatal("no shard reported 410 Gone after checkpoint truncation")
	}
}

// TestReadOnlyGatingAndPromote: followers refuse HTTP writes with 403,
// report role follower on /healthz, and flip to primary via the
// promote endpoint.
func TestReadOnlyGatingAndPromote(t *testing.T) {
	cfg := testConfig(t, 512, 3, 2)
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer srv.Close()
	srv.SetReadOnly(true)
	promote := func() error {
		srv.SetReadOnly(false)
		srv.ReseedNextID()
		return nil
	}
	ts := httptest.NewServer(NewHandler(srv, HandlerConfig{Promote: promote}))
	defer ts.Close()

	resp, err := ts.Client().Post(ts.URL+"/v1/insert", "application/json", bytes.NewBufferString(`{"sets":[[1,2,3]]}`))
	if err != nil {
		t.Fatalf("insert: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("follower insert status %d, want 403", resp.StatusCode)
	}
	var health struct {
		Role string `json:"role"`
	}
	resp, err = ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatalf("healthz decode: %v", err)
	}
	resp.Body.Close()
	if health.Role != "follower" {
		t.Fatalf("healthz role %q, want follower", health.Role)
	}

	resp, err = ts.Client().Post(ts.URL+"/v1/admin/promote", "application/json", nil)
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote status %d", resp.StatusCode)
	}
	resp, err = ts.Client().Post(ts.URL+"/v1/insert", "application/json", bytes.NewBufferString(`{"sets":[[1,2,3]]}`))
	if err != nil {
		t.Fatalf("insert after promote: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert after promote status %d: %s", resp.StatusCode, body)
	}
}

// TestReplicaSnapshotTruncated: a torn SKREP1 stream must fail the
// parse, never produce a silently short follower.
func TestReplicaSnapshotTruncated(t *testing.T) {
	cfg := durableConfig(t, t.TempDir(), wal.SyncNever)
	primary, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer primary.Close()
	if _, err := primary.InsertBatch(sampleVectors(t, 100, 8)); err != nil {
		t.Fatalf("InsertBatch: %v", err)
	}
	var snap bytes.Buffer
	if _, err := primary.WriteReplicaSnapshot(&snap); err != nil {
		t.Fatalf("WriteReplicaSnapshot: %v", err)
	}
	torn := snap.Bytes()[:snap.Len()*2/3]
	fcfg := durableConfig(t, t.TempDir(), wal.SyncNever)
	_, _, err = ReadReplicaSnapshot(bytes.NewReader(torn), fcfg)
	if err == nil {
		t.Fatal("truncated replica snapshot parsed without error")
	}
	if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
		// Any error is acceptable as long as there IS one; this branch
		// just documents the common shape.
		_ = err
	}
}
