package server

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
)

// Admission control: a bounded gate in front of the query fan-out.
// Unlimited concurrent queries would fan out to every shard at once and
// convoy on the shards' read locks — past saturation, added load only
// adds latency until every request misses its deadline (congestion
// collapse). The gate bounds concurrent fan-outs at MaxInFlight and
// holds at most MaxQueue requests in a deadline-aware wait queue;
// beyond that, requests are rejected immediately so the callers retry
// with backoff while admitted requests keep meeting their deadlines.

// ErrOverloaded is returned when the admission queue is full: the
// request was rejected without doing any work. HTTP maps it to 429.
var ErrOverloaded = errors.New("server: overloaded, admission queue full")

// ErrShed is returned when a request's deadline expired while it was
// queued for admission: the server was too busy to start it in time.
// The context error is wrapped. HTTP maps it to 503.
var ErrShed = errors.New("server: shed while queued for admission")

// configGate builds the server's gate from Config: negative
// MaxInFlight disables admission entirely.
func configGate(cfg Config) *gate {
	if cfg.MaxInFlight < 0 {
		return nil
	}
	return newGate(cfg.MaxInFlight, cfg.MaxQueue)
}

// gate is the admission semaphore. A nil *gate admits everything.
type gate struct {
	slots    chan struct{} // buffered; a held slot is an in-flight query
	queued   atomic.Int64
	maxQueue int64
}

// newGate sizes the gate: maxInFlight <= 0 defaults to 4×GOMAXPROCS
// (enough to hide shard-lock stalls without convoying), maxQueue < 0
// defaults to 4×maxInFlight, maxQueue == 0 disables queuing (reject
// the moment the in-flight slots are taken). The 4×GOMAXPROCS queue
// default bounds waiting requests — and therefore queue memory and
// goroutines — at a small multiple of what the machine can execute.
func newGate(maxInFlight, maxQueue int) *gate {
	if maxInFlight <= 0 {
		maxInFlight = 4 * runtime.GOMAXPROCS(0)
	}
	if maxQueue < 0 {
		maxQueue = 4 * maxInFlight
	}
	return &gate{
		slots:    make(chan struct{}, maxInFlight),
		maxQueue: int64(maxQueue),
	}
}

// acquire admits the request or rejects it: nil on admission (the
// caller must release), ErrOverloaded when the queue is full, ErrShed
// (wrapping ctx.Err()) when the context expires while queued. The
// queue is a counter plus the channel's blocked senders, so waiters
// drain in roughly FIFO order and an expired waiter costs nothing.
func (g *gate) acquire(ctx context.Context) error {
	if g == nil {
		return ctx.Err()
	}
	select {
	case g.slots <- struct{}{}:
		return nil
	default:
	}
	if g.queued.Add(1) > g.maxQueue {
		g.queued.Add(-1)
		return ErrOverloaded
	}
	defer g.queued.Add(-1)
	select {
	case g.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("%w: %w", ErrShed, ctx.Err())
	}
}

// inflight reports how many admission slots are currently held.
func (g *gate) inflight() int64 {
	if g == nil {
		return 0
	}
	return int64(len(g.slots))
}

// queueDepth reports how many requests are waiting for a slot.
func (g *gate) queueDepth() int64 {
	if g == nil {
		return 0
	}
	return g.queued.Load()
}

// release frees an admitted request's slot. Must be called exactly once
// per successful acquire — after every shard goroutine of the fan-out
// has finished, so a stalled shard keeps its slot held and the gate's
// bound stays honest.
func (g *gate) release() {
	if g != nil {
		<-g.slots
	}
}
