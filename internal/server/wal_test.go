package server

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"testing"

	"skewsim/internal/bitvec"
	"skewsim/internal/dist"
	"skewsim/internal/hashing"
	"skewsim/internal/segment"
	"skewsim/internal/wal"
)

func durableConfig(t *testing.T, dir string, policy wal.SyncPolicy) Config {
	t.Helper()
	cfg := testConfig(t, 512, 3, 3)
	cfg.Segment.MemtableSize = 32
	cfg.Segment.MaxSegments = 3
	cfg.WALDir = dir
	cfg.WAL = wal.Options{Sync: policy, SegmentBytes: 1 << 12}
	return cfg
}

func sampleVectors(t *testing.T, n int, seed uint64) []bitvec.Vector {
	t.Helper()
	d, err := dist.NewProduct(dist.Zipf(64, 0.5, 1.0))
	if err != nil {
		t.Fatalf("NewProduct: %v", err)
	}
	return d.SampleN(hashing.NewSplitMix64(seed), n)
}

// assertServersAgree compares two servers' answers over a query batch:
// identical sorted candidate-bearing top-k lists and identical live
// counts — the server-level "recovered equals uncrashed" assertion.
func assertServersAgree(t *testing.T, got, want *Server, queries []bitvec.Vector) {
	t.Helper()
	if g, w := got.Stats().Live, want.Stats().Live; g != w {
		t.Fatalf("live: recovered %d, reference %d", g, w)
	}
	for qi, q := range queries {
		gm, _ := got.TopK(q, 10, bitvec.BraunBlanquetMeasure)
		wm, _ := want.TopK(q, 10, bitvec.BraunBlanquetMeasure)
		if !slices.Equal(gm, wm) {
			t.Fatalf("query %d: top-k differs\nrecovered: %v\nreference: %v", qi, gm, wm)
		}
		gb, _, gok := got.QueryBest(q, bitvec.BraunBlanquetMeasure)
		wb, _, wok := want.QueryBest(q, bitvec.BraunBlanquetMeasure)
		if gok != wok || gb != wb {
			t.Fatalf("query %d: best differs: %v/%v vs %v/%v", qi, gb, gok, wb, wok)
		}
	}
}

// TestServerWALRecovery: a durable server absorbs batch inserts and
// deletes, is abandoned without any snapshot, and a fresh server.New
// over the same WALDir must serve identical results. Table-driven over
// both fsync policies.
func TestServerWALRecovery(t *testing.T) {
	for _, policy := range []wal.SyncPolicy{wal.SyncAlways, wal.SyncNever} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			cfg := durableConfig(t, dir, policy)
			data := sampleVectors(t, 300, 11)
			queries := sampleVectors(t, 30, 77)

			srv, err := New(cfg)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			ids, err := srv.InsertBatch(data)
			if err != nil {
				t.Fatalf("InsertBatch: %v", err)
			}
			for i := 0; i < len(ids); i += 9 {
				if !srv.Delete(ids[i]) {
					t.Fatalf("Delete(%d)", ids[i])
				}
			}
			srv.WaitIdle()
			wantNext := srv.NextIDForTest()
			srv.Close()

			rec, err := New(cfg)
			if err != nil {
				t.Fatalf("recovery New: %v", err)
			}
			defer rec.Close()
			if got := rec.NextIDForTest(); got < wantNext {
				t.Fatalf("id counter regressed: %d < %d", got, wantNext)
			}

			ref, err := New(Config{Shards: cfg.Shards, Workers: cfg.Workers, Segment: cfg.Segment})
			if err != nil {
				t.Fatalf("reference New: %v", err)
			}
			defer ref.Close()
			if _, err := ref.InsertBatch(data); err != nil {
				t.Fatalf("reference InsertBatch: %v", err)
			}
			for i := 0; i < len(ids); i += 9 {
				ref.Delete(ids[i])
			}
			assertServersAgree(t, rec, ref, queries)

			// Fresh inserts after recovery must not collide with ids the
			// dead process assigned.
			more, err := rec.InsertBatch(data[:16])
			if err != nil {
				t.Fatalf("post-recovery InsertBatch: %v", err)
			}
			for _, id := range more {
				if slices.Contains(ids, id) {
					t.Fatalf("recovered server reused id %d", id)
				}
			}
		})
	}
}

// TestServerSnapshotPlusTail: snapshot mid-stream, keep writing, then
// recover from snapshot + WAL tail — the reconciliation must equal the
// uncrashed endstate, and the log must keep working afterwards.
func TestServerSnapshotPlusTail(t *testing.T) {
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	cfg := durableConfig(t, walDir, wal.SyncNever)
	data := sampleVectors(t, 240, 13)
	queries := sampleVectors(t, 30, 78)

	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	half := len(data) / 2
	ids, err := srv.InsertBatch(data[:half])
	if err != nil {
		t.Fatalf("InsertBatch: %v", err)
	}
	snapPath := filepath.Join(dir, "index.snap")
	f, err := os.Create(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.WriteSnapshot(f); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// Post-snapshot tail: more inserts, plus deletes of pre-snapshot ids
	// (the reconciliation must apply them on top of the snapshot state).
	if _, err := srv.InsertBatch(data[half:]); err != nil {
		t.Fatalf("InsertBatch: %v", err)
	}
	for i := 0; i < len(ids); i += 7 {
		if !srv.Delete(ids[i]) {
			t.Fatalf("Delete(%d)", ids[i])
		}
	}
	srv.WaitIdle()
	srv.Close()

	sf, err := os.Open(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := ReadSnapshot(sf, cfg)
	sf.Close()
	if err != nil {
		t.Fatalf("ReadSnapshot+tail: %v", err)
	}
	defer rec.Close()

	ref, err := New(Config{Shards: cfg.Shards, Workers: cfg.Workers, Segment: cfg.Segment})
	if err != nil {
		t.Fatalf("reference New: %v", err)
	}
	defer ref.Close()
	refIDs, err := ref.InsertBatch(data[:half])
	if err != nil {
		t.Fatalf("reference InsertBatch: %v", err)
	}
	if !slices.Equal(refIDs, ids) {
		t.Fatalf("reference ids diverged")
	}
	if _, err := ref.InsertBatch(data[half:]); err != nil {
		t.Fatalf("reference InsertBatch: %v", err)
	}
	for i := 0; i < len(ids); i += 7 {
		ref.Delete(ids[i])
	}
	assertServersAgree(t, rec, ref, queries)

	// The recovered server keeps journaling: one more write cycle must
	// land in the same WAL and the servers must still agree.
	if _, err := rec.InsertBatch(data[:8]); err != nil {
		t.Fatalf("post-restore InsertBatch: %v", err)
	}
	if _, err := ref.InsertBatch(data[:8]); err != nil {
		t.Fatalf("reference InsertBatch: %v", err)
	}
	st := rec.Stats()
	if st.WALRecords == 0 || st.WALBytes == 0 {
		t.Fatalf("restored server is not journaling: %+v", st)
	}
	assertServersAgree(t, rec, ref, queries)
}

// TestNotDurableOnly pins the error triage the HTTP handler and the
// daemon preload rely on: durability-only failures keep their ids, any
// real failure does not.
func TestNotDurableOnly(t *testing.T) {
	nd := fmt.Errorf("%w: fsync: disk on fire", segment.ErrNotDurable)
	other := fmt.Errorf("shard exploded")
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{nd, true},
		{errors.Join(nd, nd), true},
		{errors.Join(nd, other), false},
		{other, false},
	}
	for i, tc := range cases {
		if got := NotDurableOnly(tc.err); got != tc.want {
			t.Fatalf("case %d (%v): NotDurableOnly = %v, want %v", i, tc.err, got, tc.want)
		}
	}
}

// NextIDForTest exposes the id counter for recovery assertions.
func (s *Server) NextIDForTest() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.next
}
