package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"skewsim/internal/bitvec"
	"skewsim/internal/faultinject"
)

// Overload and fault tests for the serving layer (the `make test-fault`
// suite): a stalled shard degrades to a partial answer within the
// deadline, sustained overload is rejected with 429/503 + Retry-After
// and bounded goroutine growth, a fully-missed deadline is a 504, and
// a handler panic is a logged 500 — never a dropped connection.

// stallShard arms the shard-stall fault point: shard `target` (every
// shard when target < 0) blocks until its request context is done.
// The returned channel receives one signal per stalled call entering
// the stall; call restore to disarm.
func stallShard(target int) (entered chan struct{}, restore func()) {
	entered = make(chan struct{}, 64)
	restore = faultinject.Set(faultinject.ServerShardStall, func(args ...any) error {
		ctx := args[0].(context.Context)
		shard := args[1].(int)
		if target >= 0 && shard != target {
			return nil
		}
		select {
		case entered <- struct{}{}:
		default:
		}
		<-ctx.Done()
		return ctx.Err()
	})
	return entered, restore
}

func newFaultServer(t *testing.T, cfg Config, n int) (*Server, []bitvec.Vector) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(srv.Close)
	data := testData(n)
	if _, err := srv.InsertBatch(data); err != nil {
		t.Fatalf("InsertBatch: %v", err)
	}
	return srv, data
}

// TestFaultStalledShardPartial: one shard stalling past the deadline
// degrades the query to the other shards' merged answer, returned
// within (a small multiple of) the deadline and marked partial.
func TestFaultStalledShardPartial(t *testing.T) {
	cfg := testConfig(t, 400, 2, 4)
	cfg.Workers = 4 // one worker per shard: the stall must not starve the healthy shards
	srv, data := newFaultServer(t, cfg, 400)

	_, restore := stallShard(0)
	defer restore()

	m := bitvec.BraunBlanquetMeasure
	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	defer cancel()
	_, _, _, f := srv.QueryBestContext(ctx, data[3], m)
	elapsed := time.Since(start)
	if err := f.Err(); err != nil {
		t.Fatalf("stalled-shard query failed entirely: %v", err)
	}
	if !f.Partial() || f.Answered != 3 {
		t.Fatalf("want partial answer from 3/4 shards, got answered=%d partial=%v errs=%v", f.Answered, f.Partial(), f.Errs)
	}
	if len(f.Errs) != 1 || f.Errs[0].Shard != 0 {
		t.Fatalf("shard errors = %v, want exactly shard 0", f.Errs)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("partial answer took %v, deadline was 250ms", elapsed)
	}

	// The stalled fan-out's reaper released the session and admission
	// slot: healthy queries still run and the gate does not leak.
	restore()
	for i := 0; i < 8; i++ {
		if _, _, _, f := srv.QueryBestContext(context.Background(), data[i], m); !f.Complete() {
			t.Fatalf("post-stall query %d not complete: %+v", i, f.Errs)
		}
	}
}

// TestFaultStalledShardPartialHTTP: the same degradation through the
// HTTP face — 200 with "partial": true and the stalled shard detailed.
func TestFaultStalledShardPartialHTTP(t *testing.T) {
	cfg := testConfig(t, 400, 2, 4)
	cfg.Workers = 4
	srv, _ := newFaultServer(t, cfg, 400)
	h := NewHandler(srv, HandlerConfig{})

	_, restore := stallShard(0)
	defer restore()

	body := bytes.NewBufferString(`{"set": [1, 5, 9], "mode": "best"}`)
	req := httptest.NewRequest("POST", "/v1/search?timeout_ms=250", body)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rr.Code, rr.Body)
	}
	var resp searchResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding response: %v (%s)", err, rr.Body)
	}
	if !resp.Partial {
		t.Fatalf("response not marked partial: %s", rr.Body)
	}
	if len(resp.ShardErrors) != 1 || resp.ShardErrors[0].Shard != 0 {
		t.Fatalf("shard_errors = %v, want exactly shard 0", resp.ShardErrors)
	}
}

// TestFaultGateOverloadAndShed exercises the admission gate directly:
// a full queue rejects immediately (ErrOverloaded), a queued waiter
// whose deadline expires is shed (ErrShed wrapping the context error),
// and a released slot re-admits.
func TestFaultGateOverloadAndShed(t *testing.T) {
	g := newGate(1, 1)
	if err := g.acquire(context.Background()); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	queued := make(chan error, 1)
	go func() { queued <- g.acquire(ctx) }()
	for g.queued.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	// Queue full: the third request is rejected without waiting.
	if err := g.acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("acquire with full queue: %v, want ErrOverloaded", err)
	}
	// The queued waiter's deadline expires: shed, with the cause wrapped.
	err := <-queued
	if !errors.Is(err, ErrShed) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued acquire: %v, want ErrShed wrapping DeadlineExceeded", err)
	}
	g.release()
	if err := g.acquire(context.Background()); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	g.release()
}

// TestFaultOverloadHTTP: with one in-flight slot held by a stalled
// request, further requests get 429 (no queue) or 503 (queued past
// deadline), both with Retry-After — and a rejected burst leaves no
// goroutine growth behind (rejections do no work).
func TestFaultOverloadHTTP(t *testing.T) {
	cfg := testConfig(t, 200, 2, 2)
	cfg.Workers = 2
	cfg.MaxInFlight = 1
	cfg.MaxQueue = 0 // reject the moment the slot is taken
	srv, _ := newFaultServer(t, cfg, 200)
	h := NewHandler(srv, HandlerConfig{})

	entered, restore := stallShard(-1)
	defer restore()

	// Request 1: admitted, stalls on every shard until its deadline.
	var wg sync.WaitGroup
	wg.Add(1)
	first := &httptest.ResponseRecorder{Body: new(bytes.Buffer), Code: 200}
	go func() {
		defer wg.Done()
		req := httptest.NewRequest("POST", "/v1/search?timeout_ms=1000", bytes.NewBufferString(`{"set": [1, 2, 3]}`))
		h.ServeHTTP(first, req)
	}()
	<-entered // request 1 is in flight and holding the slot

	// Burst of rejected requests: all 429, bounded goroutines.
	before := runtime.NumGoroutine()
	for i := 0; i < 100; i++ {
		req := httptest.NewRequest("POST", "/v1/search", bytes.NewBufferString(`{"set": [1, 2, 3]}`))
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		if rr.Code != http.StatusTooManyRequests {
			t.Fatalf("overloaded request %d: status %d, want 429 (%s)", i, rr.Code, rr.Body)
		}
		if rr.Header().Get("Retry-After") == "" {
			t.Fatalf("429 without Retry-After")
		}
	}
	if after := runtime.NumGoroutine(); after > before+20 {
		t.Fatalf("goroutines grew %d → %d across a rejected burst", before, after)
	}

	// Request 1 misses its deadline on every shard: 504.
	wg.Wait()
	if first.Code != http.StatusGatewayTimeout {
		t.Fatalf("fully-timed-out request: status %d, want 504 (%s)", first.Code, first.Body)
	}
}

// TestFaultShedHTTP: with a one-deep admission queue, a queued request
// whose deadline passes while waiting gets 503 + Retry-After.
func TestFaultShedHTTP(t *testing.T) {
	cfg := testConfig(t, 200, 2, 2)
	cfg.Workers = 2
	cfg.MaxInFlight = 1
	cfg.MaxQueue = 1
	srv, _ := newFaultServer(t, cfg, 200)
	h := NewHandler(srv, HandlerConfig{})

	entered, restore := stallShard(-1)
	defer restore()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		req := httptest.NewRequest("POST", "/v1/search?timeout_ms=1000", bytes.NewBufferString(`{"set": [1, 2, 3]}`))
		h.ServeHTTP(httptest.NewRecorder(), req)
	}()
	<-entered

	req := httptest.NewRequest("POST", "/v1/search?timeout_ms=50", bytes.NewBufferString(`{"set": [1, 2, 3]}`))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("shed request: status %d, want 503 (%s)", rr.Code, rr.Body)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Fatalf("503 without Retry-After")
	}
	wg.Wait()
}

// TestFaultBadTimeout: an unparseable or non-positive timeout_ms is a
// 400, not a silently defaulted deadline.
func TestFaultBadTimeout(t *testing.T) {
	srv, _ := newFaultServer(t, testConfig(t, 100, 2, 2), 100)
	h := NewHandler(srv, HandlerConfig{})
	for _, raw := range []string{"abc", "-5", "0", "1.5"} {
		req := httptest.NewRequest("POST", "/v1/search?timeout_ms="+raw, bytes.NewBufferString(`{"set": [1]}`))
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		if rr.Code != http.StatusBadRequest {
			t.Fatalf("timeout_ms=%q: status %d, want 400", raw, rr.Code)
		}
	}
}

// TestFaultPanicRecovery: a panicking handler yields a JSON 500 through
// the recovery middleware; http.ErrAbortHandler passes through for
// net/http to handle.
func TestFaultPanicRecovery(t *testing.T) {
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	h := recoverMiddleware(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom: handler bug")
	}), quiet)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/stats", nil))
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler: status %d, want 500", rr.Code)
	}
	var body map[string]string
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil || body["error"] == "" {
		t.Fatalf("panicking handler body %q: want JSON with an error field", rr.Body)
	}

	abort := recoverMiddleware(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic(http.ErrAbortHandler)
	}), quiet)
	func() {
		defer func() {
			if recover() != http.ErrAbortHandler {
				t.Fatal("ErrAbortHandler did not pass through the middleware")
			}
		}()
		abort.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	}()
}

// TestFaultPartialBatch: batch search degrades per query to the
// answering shards' winners when a shard stalls.
func TestFaultPartialBatch(t *testing.T) {
	cfg := testConfig(t, 400, 2, 4)
	cfg.Workers = 4
	srv, data := newFaultServer(t, cfg, 400)

	_, restore := stallShard(2)
	defer restore()

	ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	defer cancel()
	qs := data[:8]
	results, _, f := srv.SearchBatchContext(ctx, qs, nil, bitvec.BraunBlanquetMeasure)
	if err := f.Err(); err != nil {
		t.Fatalf("batch with one stalled shard failed entirely: %v", err)
	}
	if !f.Partial() || f.Answered != 3 {
		t.Fatalf("want partial batch from 3/4 shards, got answered=%d errs=%v", f.Answered, f.Errs)
	}
	if len(results) != len(qs) {
		t.Fatalf("batch returned %d results for %d queries", len(results), len(qs))
	}
	// The answering shards' results must match a direct (stall-free)
	// merge over those same shards.
	restore()
	full, _, ff := srv.SearchBatchContext(context.Background(), qs, nil, bitvec.BraunBlanquetMeasure)
	if !ff.Complete() {
		t.Fatalf("stall-free batch incomplete: %+v", ff.Errs)
	}
	for k := range results {
		if results[k].Found && results[k].Match.Similarity > full[k].Match.Similarity {
			t.Fatalf("query %d: partial result %v beats the full merge %v", k, results[k], full[k])
		}
	}
}
