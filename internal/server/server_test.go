package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"slices"
	"sync"
	"testing"

	"skewsim/internal/bitvec"
	"skewsim/internal/core"
	"skewsim/internal/dist"
	"skewsim/internal/hashing"
	"skewsim/internal/segment"
)

func testConfig(t testing.TB, n, reps, shards int) Config {
	t.Helper()
	d, err := dist.NewProduct(dist.Zipf(64, 0.5, 1.0))
	if err != nil {
		t.Fatalf("NewProduct: %v", err)
	}
	params, err := core.EngineParams(core.Adversarial, d, n, 0.5, core.Options{Seed: 19, Repetitions: reps})
	if err != nil {
		t.Fatalf("EngineParams: %v", err)
	}
	return Config{
		Shards:  shards,
		Segment: segment.Config{Params: params, N: n, MemtableSize: 64, MaxSegments: 4},
	}
}

func testData(n int) []bitvec.Vector {
	d := dist.MustProduct(dist.Zipf(64, 0.5, 1.0))
	return d.SampleN(hashing.NewSplitMix64(31), n)
}

// TestShardedEquivalence: the sharded router answers exactly like one
// unsharded SegmentedIndex over the same data and engines — sharding is
// a throughput decision, never a results decision.
func TestShardedEquivalence(t *testing.T) {
	const n = 500
	cfg := testConfig(t, n, 3, 4)
	data := testData(n)

	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer srv.Close()
	ids, err := srv.InsertBatch(data)
	if err != nil {
		t.Fatalf("InsertBatch: %v", err)
	}
	for i, id := range ids {
		if id != int64(i) {
			t.Fatalf("ids[%d] = %d, want %d", i, id, i)
		}
	}
	single, err := segment.New(cfg.Segment)
	if err != nil {
		t.Fatalf("segment.New: %v", err)
	}
	defer single.Close()
	for _, v := range data {
		if _, err := single.Insert(v); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	// Delete the same ids on both sides.
	for id := int64(0); id < n; id += 7 {
		if !srv.Delete(id) || !single.Delete(id) {
			t.Fatalf("Delete(%d) failed", id)
		}
	}
	srv.WaitIdle()
	single.WaitIdle()
	if got, want := srv.Stats().Live, single.Stats().Live; got != want {
		t.Fatalf("live %d, want %d", got, want)
	}

	m := bitvec.BraunBlanquetMeasure
	qs := testData(60)
	for qi, q := range qs {
		// Full ranked candidate list (k = n) must agree entry by entry.
		got, _ := srv.TopK(q, n, m)
		want, _ := single.TopK(q, n, m)
		if !slices.Equal(got, want) {
			t.Fatalf("query %d: sharded top-k %v, single %v", qi, got, want)
		}
		gm, _, gf := srv.QueryBest(q, m)
		wm, _, wf := single.QueryBest(q, m)
		if gf != wf {
			t.Fatalf("query %d: found %v vs %v", qi, gf, wf)
		}
		if gf && gm.Similarity != wm.Similarity {
			t.Fatalf("query %d: best %v vs %v", qi, gm, wm)
		}
		// Threshold query: any hit the router reports must also exist in
		// the single index's candidate set at that similarity.
		tm, _, tf := srv.Query(q, 0.5, m)
		if tf {
			if tm.Similarity < 0.5 {
				t.Fatalf("query %d: threshold hit below threshold: %v", qi, tm)
			}
		}
	}
}

func TestServerSnapshotRoundTrip(t *testing.T) {
	const n = 300
	cfg := testConfig(t, n, 3, 3)
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer srv.Close()
	if _, err := srv.InsertBatch(testData(n)); err != nil {
		t.Fatalf("InsertBatch: %v", err)
	}
	for id := int64(0); id < n; id += 9 {
		srv.Delete(id)
	}
	srv.WaitIdle()

	var buf bytes.Buffer
	if _, err := srv.WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	restored, err := ReadSnapshot(&buf, cfg)
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	defer restored.Close()
	restored.WaitIdle()
	if got, want := restored.Stats().Live, srv.Stats().Live; got != want {
		t.Fatalf("restored live %d, want %d", got, want)
	}
	m := bitvec.BraunBlanquetMeasure
	for qi, q := range testData(40) {
		got, _ := restored.TopK(q, n, m)
		want, _ := srv.TopK(q, n, m)
		if !slices.Equal(got, want) {
			t.Fatalf("query %d: restored top-k differs", qi)
		}
	}
	// New inserts on the restored server continue the id sequence.
	id, err := restored.Insert(testData(1)[0])
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if id != n {
		t.Fatalf("post-restore id = %d, want %d", id, n)
	}
}

// postJSONErr is the goroutine-safe request helper (no t.Fatalf — the
// testing package forbids FailNow off the test goroutine).
func postJSONErr(client *http.Client, url string, body, out interface{}) (int, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return 0, fmt.Errorf("marshal: %w", err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		return 0, fmt.Errorf("POST %s: %w", url, err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, fmt.Errorf("decode %s: %w", url, err)
		}
	}
	return resp.StatusCode, nil
}

func postJSON(t *testing.T, client *http.Client, url string, body, out interface{}) int {
	t.Helper()
	code, err := postJSONErr(client, url, body, out)
	if err != nil {
		t.Fatalf("%v", err)
	}
	return code
}

// TestHTTPEndpoints exercises every daemon endpoint through httptest.
func TestHTTPEndpoints(t *testing.T) {
	cfg := testConfig(t, 256, 2, 2)
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer srv.Close()
	snapDir := t.TempDir()
	ts := httptest.NewServer(NewHandler(srv, HandlerConfig{SnapshotDir: snapDir, DefaultThreshold: 0.5}))
	defer ts.Close()

	// Element ids are deliberately rare under the Zipf profile: paths
	// only complete (and filters only exist) once Σ log(1/p) reaches
	// log n, which frequent elements like {1,2,3} never do.
	var ins insertResponse
	if code := postJSON(t, ts.Client(), ts.URL+"/v1/insert", insertRequest{Sets: [][]uint32{{40, 41, 42, 43}, {41, 42, 43, 44}, {50, 51, 52, 53}}}, &ins); code != 200 {
		t.Fatalf("insert status %d", code)
	}
	if len(ins.IDs) != 3 {
		t.Fatalf("insert ids %v", ins.IDs)
	}

	var search searchResponse
	if code := postJSON(t, ts.Client(), ts.URL+"/v1/search", searchRequest{Set: []uint32{40, 41, 42, 43}}, &search); code != 200 {
		t.Fatalf("search status %d", code)
	}
	if !search.Found || search.Matches[0].ID != ins.IDs[0] || search.Matches[0].Similarity != 1 {
		t.Fatalf("search response %+v", search)
	}
	if code := postJSON(t, ts.Client(), ts.URL+"/v1/search", searchRequest{Set: []uint32{40, 41, 42, 43}, Mode: "topk", K: 2}, &search); code != 200 {
		t.Fatalf("topk status %d", code)
	}
	if len(search.Matches) == 0 || search.Stats.Reps == 0 {
		t.Fatalf("topk response %+v", search)
	}
	if code := postJSON(t, ts.Client(), ts.URL+"/v1/search", searchRequest{Set: []uint32{40, 41, 42, 43}, Mode: "bogus"}, nil); code != http.StatusBadRequest {
		t.Fatalf("bogus mode status %d", code)
	}

	var del deleteResponse
	if code := postJSON(t, ts.Client(), ts.URL+"/v1/delete", deleteRequest{IDs: []int64{ins.IDs[0], 999}}, &del); code != 200 {
		t.Fatalf("delete status %d", code)
	}
	if del.Deleted != 1 {
		t.Fatalf("deleted %d, want 1", del.Deleted)
	}
	if code := postJSON(t, ts.Client(), ts.URL+"/v1/search", searchRequest{Set: []uint32{40, 41, 42, 43}}, &search); code != 200 {
		t.Fatalf("search status %d", code)
	}
	if search.Found && search.Matches[0].ID == ins.IDs[0] {
		t.Fatalf("deleted vector still served: %+v", search)
	}

	resp, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("stats decode: %v", err)
	}
	resp.Body.Close()
	if st.Shards != 2 || st.Live != 2 {
		t.Fatalf("stats %+v", st)
	}

	// Snapshot paths are relative to the configured directory; escaping
	// paths are rejected outright.
	for _, bad := range []string{"../evil.snap", "/etc/evil.snap"} {
		if code := postJSON(t, ts.Client(), ts.URL+"/v1/snapshot", snapshotRequest{Path: bad}, nil); code != http.StatusBadRequest {
			t.Fatalf("escaping snapshot path %q: status %d, want 400", bad, code)
		}
	}
	var snap snapshotResponse
	if code := postJSON(t, ts.Client(), ts.URL+"/v1/snapshot", snapshotRequest{Path: "srv.snap"}, &snap); code != 200 {
		t.Fatalf("snapshot status %d", code)
	}
	f, err := os.Open(filepath.Join(snapDir, "srv.snap"))
	if err != nil {
		t.Fatalf("snapshot file: %v", err)
	}
	defer f.Close()
	if fi, _ := f.Stat(); fi.Size() != snap.Bytes || snap.Bytes == 0 {
		t.Fatalf("snapshot bytes %d, file %d", snap.Bytes, fi.Size())
	}
	if _, err := ReadSnapshot(f, cfg); err != nil {
		t.Fatalf("snapshot unreadable: %v", err)
	}
}

// TestHTTPConcurrentTraffic is the daemon-level race acceptance: mixed
// insert/delete/search/stats traffic against the handler from many
// goroutines (run under -race by the CI race job).
func TestHTTPConcurrentTraffic(t *testing.T) {
	cfg := testConfig(t, 1024, 2, 4)
	cfg.Segment.MemtableSize = 32 // force freezes under the traffic
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer srv.Close()
	ts := httptest.NewServer(NewHandler(srv, HandlerConfig{}))
	defer ts.Close()

	const (
		writers = 4
		readers = 4
		rounds  = 60
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := hashing.NewSplitMix64(uint64(100 + w))
			d := dist.MustProduct(dist.Zipf(64, 0.5, 1.0))
			for i := 0; i < rounds; i++ {
				var ins insertResponse
				sets := [][]uint32{d.Sample(rng).Bits(), d.Sample(rng).Bits()}
				code, err := postJSONErr(ts.Client(), ts.URL+"/v1/insert", insertRequest{Sets: sets}, &ins)
				if err != nil || code != 200 {
					t.Errorf("insert status %d: %v", code, err)
					return
				}
				if i%3 == 0 && len(ins.IDs) > 0 {
					if code, err := postJSONErr(ts.Client(), ts.URL+"/v1/delete", deleteRequest{IDs: ins.IDs[:1]}, nil); err != nil || code != 200 {
						t.Errorf("delete status %d: %v", code, err)
						return
					}
				}
			}
		}(w)
	}
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := hashing.NewSplitMix64(uint64(200 + w))
			d := dist.MustProduct(dist.Zipf(64, 0.5, 1.0))
			threshold := 0.5
			for i := 0; i < rounds; i++ {
				mode := []string{"best", "first", "topk"}[i%3]
				if code, err := postJSONErr(ts.Client(), ts.URL+"/v1/search", searchRequest{Set: d.Sample(rng).Bits(), Mode: mode, Threshold: &threshold, K: 3}, nil); err != nil || code != 200 {
					t.Errorf("search status %d: %v", code, err)
					return
				}
				if i%20 == 0 {
					resp, err := ts.Client().Get(ts.URL + "/v1/stats")
					if err == nil {
						resp.Body.Close()
					}
				}
			}
		}(w)
	}
	wg.Wait()
	srv.Flush()
	srv.WaitIdle()
	st := srv.Stats()
	deletesPerWriter := (rounds + 2) / 3 // i%3 == 0 for i in [0, rounds)
	wantLive := writers*rounds*2 - writers*deletesPerWriter
	if st.Live != wantLive {
		t.Fatalf("live = %d, want %d (%+v)", st.Live, wantLive, st)
	}
	if st.Freezes == 0 {
		t.Fatalf("no freezes under traffic: %+v", st)
	}
}

func TestWorkerClampShardFanout(t *testing.T) {
	// A worker bound far above the shard count must not break fan-out
	// (ForEachParallel clamps to n; this is the regression guard at the
	// router layer).
	cfg := testConfig(t, 64, 2, 2)
	cfg.Workers = 64
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer srv.Close()
	if _, err := srv.InsertBatch(testData(10)); err != nil {
		t.Fatalf("InsertBatch: %v", err)
	}
	// Plant a rare vector (guaranteed non-empty filter set under the
	// Zipf profile) and find it through the over-provisioned pool.
	planted := bitvec.New(30, 31, 32, 33)
	if _, err := srv.Insert(planted); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if _, _, found := srv.QueryBest(planted, bitvec.BraunBlanquetMeasure); !found {
		t.Fatal("planted query found nothing")
	}
}
