package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"runtime/debug"
	"strconv"
	"time"

	"skewsim/internal/bitvec"
	"skewsim/internal/segment"
)

// HTTP/JSON face of the shard router, served by cmd/skewsimd:
//
//	POST /v1/insert   {"sets": [[3,17,42], ...]}            → {"ids": [...]}
//	POST /v1/delete   {"ids": [0, 7]}                       → {"deleted": 2}
//	POST /v1/search   {"set": [...], "mode": "best"}        → {"found": ..., "matches": [...], "stats": {...}}
//	POST /v1/search/batch {"sets": [[...], ...]}            → {"results": [{"found": ..., "id": ..., "similarity": ...}, ...], "stats": {...}}
//	GET  /v1/stats                                          → aggregated + per-shard sizes
//	POST /v1/snapshot {"path": "index.snap"}                → {"bytes": n}
//
// Search modes: "best" (default; most similar candidate), "first"
// (first candidate at or above "threshold"), "topk" ("k" most similar).
// "measure" names a similarity measure (bitvec.ParseMeasure);
// Braun-Blanquet — the paper's — when omitted. Batch search runs the
// amortizing batch executor (one filter generation and one segment
// pass per shard for the whole batch) and supports modes "best" and
// "first"; in batch form "first" returns each query's best match at or
// above the threshold, deterministically (ties to the lowest id).

type insertRequest struct {
	Sets [][]uint32 `json:"sets"`
}

type insertResponse struct {
	IDs []int64 `json:"ids"`
	// NotDurable is set when the batch was fully applied and journaled
	// but the configured fsync did not complete: the ids are valid and
	// live, only media durability is unconfirmed. Retrying would insert
	// duplicates under fresh ids.
	NotDurable bool `json:"not_durable,omitempty"`
}

type deleteRequest struct {
	IDs []int64 `json:"ids"`
}

type deleteResponse struct {
	Deleted int `json:"deleted"`
}

type searchRequest struct {
	Set  []uint32 `json:"set"`
	Mode string   `json:"mode"`
	// Threshold is a pointer so an explicit 0 ("any similarity") stays
	// distinguishable from an omitted field (use the default).
	Threshold *float64 `json:"threshold"`
	K         int      `json:"k"`
	Measure   string   `json:"measure"`
}

type matchJSON struct {
	ID         int64   `json:"id"`
	Similarity float64 `json:"similarity"`
}

type searchResponse struct {
	Found   bool               `json:"found"`
	Matches []matchJSON        `json:"matches"`
	Stats   segment.QueryStats `json:"stats"`
	// Partial is set when some shards missed the request deadline: the
	// result merges only the shards that answered (ShardErrors details
	// the rest). See API.md "Errors, deadlines, and overload".
	Partial     bool         `json:"partial,omitempty"`
	ShardErrors []ShardError `json:"shard_errors,omitempty"`
}

type batchSearchRequest struct {
	Sets [][]uint32 `json:"sets"`
	// Mode "best" (default) returns each query's most similar candidate;
	// "first" returns each query's best candidate at or above the
	// threshold. "topk" is not offered in batch form.
	Mode      string   `json:"mode"`
	Threshold *float64 `json:"threshold"`
	Measure   string   `json:"measure"`
}

type batchResultJSON struct {
	Found      bool    `json:"found"`
	ID         int64   `json:"id"`
	Similarity float64 `json:"similarity"`
}

type batchSearchResponse struct {
	Results []batchResultJSON  `json:"results"`
	Stats   segment.QueryStats `json:"stats"`
	// Partial and ShardErrors as in searchResponse: a deadline that a
	// subset of shards missed degrades the batch, per query, to the
	// answering shards' merged winners.
	Partial     bool         `json:"partial,omitempty"`
	ShardErrors []ShardError `json:"shard_errors,omitempty"`
}

type snapshotRequest struct {
	Path string `json:"path"`
}

type snapshotResponse struct {
	Bytes int64 `json:"bytes"`
}

// HandlerConfig tunes the HTTP face.
type HandlerConfig struct {
	// SnapshotDir is the directory /v1/snapshot may write into; request
	// paths are confined to it (relative, no escaping). Empty disables
	// the endpoint — a network client must not get to pick arbitrary
	// server filesystem paths.
	SnapshotDir string
	// DefaultThreshold is used by mode "first" searches that omit a
	// threshold; typically the mode's verification threshold from
	// core.VerificationThreshold.
	DefaultThreshold float64
	// DefaultTimeout is the per-request deadline applied to search
	// requests that do not pass ?timeout_ms=. Zero means no deadline
	// beyond MaxTimeout.
	DefaultTimeout time.Duration
	// MaxTimeout caps every search request's deadline, including
	// requests that ask for more via ?timeout_ms= and requests that ask
	// for none. Zero means no cap.
	MaxTimeout time.Duration
	// Metrics, when non-nil, mounts GET /metrics (Prometheus text
	// exposition) and records per-endpoint request counters and latency
	// histograms. Usually the same Metrics handed to Config.Metrics.
	Metrics *Metrics
	// Logger receives structured server logs: handler panics and, with
	// SlowQuery set, slow-request lines. Nil falls back to
	// slog.Default() for panics and disables slow-request logging.
	Logger *slog.Logger
	// SlowQuery, when positive, logs any request slower than this at
	// level WARN with its request id, endpoint, outcome, and the query
	// shape/fan-out detail the handler annotated. Zero disables.
	SlowQuery time.Duration
	// Promote, when non-nil, is invoked by POST /v1/admin/promote: a
	// follower daemon wires it to stop replicating and leave read-only
	// mode. Nil (a primary) makes the endpoint refuse with 409.
	Promote func() error
}

// NewHandler wraps srv in the HTTP/JSON API above. With hc.Metrics set
// it also serves GET /metrics and instruments every route (see
// instrument.go); with hc.Logger and hc.SlowQuery it logs slow
// requests.
func NewHandler(srv *Server, hc HandlerConfig) http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern, endpoint string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, instrument(hc, endpoint, h))
	}
	if hc.Metrics != nil {
		// The exposition endpoint itself is deliberately uninstrumented:
		// scrapes should not dilute the API outcome counters.
		mux.Handle("GET /metrics", hc.Metrics.Registry().Handler())
	}
	// Liveness probe: uninstrumented for the same reason as /metrics.
	mux.HandleFunc("GET /healthz", healthzHandler(srv))
	replicaRoutes(srv, hc, handle)
	handle("POST /v1/insert", "insert", func(w http.ResponseWriter, r *http.Request) {
		if srv.IsReadOnly() {
			httpError(w, http.StatusForbidden, errors.New("insert: read-only follower; send writes to the primary"))
			return
		}
		var req insertRequest
		if !decode(w, r, &req) {
			return
		}
		if len(req.Sets) == 0 {
			httpError(w, http.StatusBadRequest, errors.New("insert: empty sets"))
			return
		}
		vs := make([]bitvec.Vector, len(req.Sets))
		for i, bits := range req.Sets {
			vs[i] = bitvec.New(bits...)
		}
		ids, err := srv.InsertBatch(vs)
		if err != nil && !NotDurableOnly(err) {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		// A durability-only failure still assigned and applied every id;
		// report them (retrying would duplicate the batch).
		writeJSON(w, insertResponse{IDs: ids, NotDurable: err != nil})
	})
	handle("POST /v1/delete", "delete", func(w http.ResponseWriter, r *http.Request) {
		if srv.IsReadOnly() {
			httpError(w, http.StatusForbidden, errors.New("delete: read-only follower; send writes to the primary"))
			return
		}
		var req deleteRequest
		if !decode(w, r, &req) {
			return
		}
		resp := deleteResponse{}
		for _, id := range req.IDs {
			if srv.Delete(id) {
				resp.Deleted++
			}
		}
		writeJSON(w, resp)
	})
	handle("POST /v1/search", "search", func(w http.ResponseWriter, r *http.Request) {
		var req searchRequest
		if !decode(w, r, &req) {
			return
		}
		m := bitvec.BraunBlanquetMeasure
		if req.Measure != "" {
			var err error
			if m, err = bitvec.ParseMeasure(req.Measure); err != nil {
				httpError(w, http.StatusBadRequest, err)
				return
			}
		}
		ctx, cancel, err := requestContext(r, hc)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		defer cancel()
		q := bitvec.New(req.Set...)
		var resp searchResponse
		var f *Fanout
		switch req.Mode {
		case "", "best":
			var match segment.Match
			var found bool
			match, resp.Stats, found, f = srv.QueryBestContext(ctx, q, m)
			resp.Found = found
			if found {
				resp.Matches = []matchJSON{{ID: match.ID, Similarity: match.Similarity}}
			}
		case "first":
			threshold := hc.DefaultThreshold
			if req.Threshold != nil {
				threshold = *req.Threshold
			}
			var match segment.Match
			var found bool
			match, resp.Stats, found, f = srv.QueryContext(ctx, q, threshold, m)
			resp.Found = found
			if found {
				resp.Matches = []matchJSON{{ID: match.ID, Similarity: match.Similarity}}
			}
		case "topk":
			k := req.K
			if k <= 0 {
				k = 10
			}
			var matches []segment.Match
			matches, resp.Stats, f = srv.TopKContext(ctx, q, k, m)
			resp.Found = len(matches) > 0
			for _, mt := range matches {
				resp.Matches = append(resp.Matches, matchJSON{ID: mt.ID, Similarity: mt.Similarity})
			}
		default:
			httpError(w, http.StatusBadRequest, fmt.Errorf("search: unknown mode %q", req.Mode))
			return
		}
		annotateFanout(w, f, slog.Int("set_bits", len(req.Set)), req.Mode, resp.Stats)
		if err := f.Err(); err != nil {
			httpFanoutError(w, err)
			return
		}
		resp.Partial, resp.ShardErrors = f.Partial(), f.Errs
		if resp.Partial {
			markPartial(w)
		}
		writeJSON(w, resp)
	})
	handle("POST /v1/search/batch", "search_batch", func(w http.ResponseWriter, r *http.Request) {
		var req batchSearchRequest
		if !decode(w, r, &req) {
			return
		}
		if len(req.Sets) == 0 {
			httpError(w, http.StatusBadRequest, errors.New("search/batch: empty sets"))
			return
		}
		m := bitvec.BraunBlanquetMeasure
		if req.Measure != "" {
			var err error
			if m, err = bitvec.ParseMeasure(req.Measure); err != nil {
				httpError(w, http.StatusBadRequest, err)
				return
			}
		}
		var thresholds []float64
		switch req.Mode {
		case "", "best":
		case "first":
			threshold := hc.DefaultThreshold
			if req.Threshold != nil {
				threshold = *req.Threshold
			}
			thresholds = make([]float64, len(req.Sets))
			for i := range thresholds {
				thresholds[i] = threshold
			}
		default:
			httpError(w, http.StatusBadRequest, fmt.Errorf("search/batch: unknown mode %q", req.Mode))
			return
		}
		qs := make([]bitvec.Vector, len(req.Sets))
		for i, bits := range req.Sets {
			qs[i] = bitvec.New(bits...)
		}
		ctx, cancel, err := requestContext(r, hc)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		defer cancel()
		results, stats, f := srv.SearchBatchContext(ctx, qs, thresholds, m)
		annotateFanout(w, f, slog.Int("batch_queries", len(req.Sets)), req.Mode, stats)
		if err := f.Err(); err != nil {
			httpFanoutError(w, err)
			return
		}
		if f.Partial() {
			markPartial(w)
		}
		resp := batchSearchResponse{
			Results:     make([]batchResultJSON, len(results)),
			Stats:       stats,
			Partial:     f.Partial(),
			ShardErrors: f.Errs,
		}
		for i, res := range results {
			if res.Found {
				resp.Results[i] = batchResultJSON{Found: true, ID: res.Match.ID, Similarity: res.Match.Similarity}
			}
		}
		writeJSON(w, resp)
	})
	handle("GET /v1/stats", "stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, srv.Stats())
	})
	handle("POST /v1/snapshot", "snapshot", func(w http.ResponseWriter, r *http.Request) {
		if hc.SnapshotDir == "" {
			httpError(w, http.StatusForbidden, errors.New("snapshot: disabled (no snapshot directory configured)"))
			return
		}
		var req snapshotRequest
		if !decode(w, r, &req) {
			return
		}
		if req.Path == "" {
			httpError(w, http.StatusBadRequest, errors.New("snapshot: path required"))
			return
		}
		// Confine the write to the configured directory: the path must
		// be relative and must not escape (no "..", no absolute, no
		// volume prefix).
		if !filepath.IsLocal(req.Path) {
			httpError(w, http.StatusBadRequest, fmt.Errorf("snapshot: path %q escapes the snapshot directory", req.Path))
			return
		}
		full := filepath.Join(hc.SnapshotDir, req.Path)
		if dir := filepath.Dir(full); dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				httpError(w, http.StatusInternalServerError, err)
				return
			}
		}
		f, err := os.Create(full)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		n, err := srv.WriteSnapshot(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, snapshotResponse{Bytes: n})
	})
	return recoverMiddleware(mux, hc.Logger)
}

// requestContext derives the request's deadline context: ?timeout_ms=
// when present (must be a positive integer), else the configured
// default, both capped by the configured max. The CancelFunc is always
// non-nil.
func requestContext(r *http.Request, hc HandlerConfig) (context.Context, context.CancelFunc, error) {
	timeout := hc.DefaultTimeout
	if raw := r.URL.Query().Get("timeout_ms"); raw != "" {
		ms, err := strconv.ParseInt(raw, 10, 64)
		if err != nil || ms <= 0 {
			return nil, nil, fmt.Errorf("invalid timeout_ms %q: want a positive integer", raw)
		}
		timeout = time.Duration(ms) * time.Millisecond
	}
	if hc.MaxTimeout > 0 && (timeout == 0 || timeout > hc.MaxTimeout) {
		timeout = hc.MaxTimeout
	}
	if timeout <= 0 {
		return r.Context(), func() {}, nil
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	return ctx, cancel, nil
}

// httpFanoutError maps a fan-out failure to its status code:
//
//	429 Too Many Requests  admission queue full (ErrOverloaded)
//	503 Service Unavailable deadline expired while queued (ErrShed)
//	504 Gateway Timeout     deadline expired in flight, no shard answered
//	500                     anything else
//
// 429 and 503 carry Retry-After: the rejection did no work, so an
// immediate retry would meet the same wall.
func httpFanoutError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrShed):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		httpError(w, http.StatusGatewayTimeout, err)
	default:
		httpError(w, http.StatusInternalServerError, err)
	}
}

// recoverMiddleware turns a handler panic into a logged 500 instead of
// killing the connection with an opaque reset: one bad request must not
// look like a server crash to every client sharing the connection.
// http.ErrAbortHandler passes through — it is the sanctioned way to
// abort a response and net/http handles it quietly.
func recoverMiddleware(next http.Handler, logger *slog.Logger) http.Handler {
	if logger == nil {
		logger = slog.Default()
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			logger.Error("panic serving request",
				"method", r.Method, "path", r.URL.Path,
				"panic", fmt.Sprint(rec), "stack", string(debug.Stack()))
			// Best effort: if the handler already wrote, this is a no-op
			// on the status line and the client sees a torn body.
			httpError(w, http.StatusInternalServerError, fmt.Errorf("internal error: %v", rec))
		}()
		next.ServeHTTP(w, r)
	})
}

// maxRequestBytes bounds request bodies: large enough for bulk insert
// batches (tens of thousands of sets), small enough that one client
// cannot balloon the daemon's memory with a single request.
const maxRequestBytes = 64 << 20

func decode(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		// Headers are gone; nothing to do beyond noting it server-side.
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
