package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"

	"skewsim/internal/bitvec"
	"skewsim/internal/segment"
)

// HTTP/JSON face of the shard router, served by cmd/skewsimd:
//
//	POST /v1/insert   {"sets": [[3,17,42], ...]}            → {"ids": [...]}
//	POST /v1/delete   {"ids": [0, 7]}                       → {"deleted": 2}
//	POST /v1/search   {"set": [...], "mode": "best"}        → {"found": ..., "matches": [...], "stats": {...}}
//	POST /v1/search/batch {"sets": [[...], ...]}            → {"results": [{"found": ..., "id": ..., "similarity": ...}, ...], "stats": {...}}
//	GET  /v1/stats                                          → aggregated + per-shard sizes
//	POST /v1/snapshot {"path": "index.snap"}                → {"bytes": n}
//
// Search modes: "best" (default; most similar candidate), "first"
// (first candidate at or above "threshold"), "topk" ("k" most similar).
// "measure" names a similarity measure (bitvec.ParseMeasure);
// Braun-Blanquet — the paper's — when omitted. Batch search runs the
// amortizing batch executor (one filter generation and one segment
// pass per shard for the whole batch) and supports modes "best" and
// "first"; in batch form "first" returns each query's best match at or
// above the threshold, deterministically (ties to the lowest id).

type insertRequest struct {
	Sets [][]uint32 `json:"sets"`
}

type insertResponse struct {
	IDs []int64 `json:"ids"`
	// NotDurable is set when the batch was fully applied and journaled
	// but the configured fsync did not complete: the ids are valid and
	// live, only media durability is unconfirmed. Retrying would insert
	// duplicates under fresh ids.
	NotDurable bool `json:"not_durable,omitempty"`
}

type deleteRequest struct {
	IDs []int64 `json:"ids"`
}

type deleteResponse struct {
	Deleted int `json:"deleted"`
}

type searchRequest struct {
	Set  []uint32 `json:"set"`
	Mode string   `json:"mode"`
	// Threshold is a pointer so an explicit 0 ("any similarity") stays
	// distinguishable from an omitted field (use the default).
	Threshold *float64 `json:"threshold"`
	K         int      `json:"k"`
	Measure   string   `json:"measure"`
}

type matchJSON struct {
	ID         int64   `json:"id"`
	Similarity float64 `json:"similarity"`
}

type searchResponse struct {
	Found   bool               `json:"found"`
	Matches []matchJSON        `json:"matches"`
	Stats   segment.QueryStats `json:"stats"`
}

type batchSearchRequest struct {
	Sets [][]uint32 `json:"sets"`
	// Mode "best" (default) returns each query's most similar candidate;
	// "first" returns each query's best candidate at or above the
	// threshold. "topk" is not offered in batch form.
	Mode      string   `json:"mode"`
	Threshold *float64 `json:"threshold"`
	Measure   string   `json:"measure"`
}

type batchResultJSON struct {
	Found      bool    `json:"found"`
	ID         int64   `json:"id"`
	Similarity float64 `json:"similarity"`
}

type batchSearchResponse struct {
	Results []batchResultJSON  `json:"results"`
	Stats   segment.QueryStats `json:"stats"`
}

type snapshotRequest struct {
	Path string `json:"path"`
}

type snapshotResponse struct {
	Bytes int64 `json:"bytes"`
}

// HandlerConfig tunes the HTTP face.
type HandlerConfig struct {
	// SnapshotDir is the directory /v1/snapshot may write into; request
	// paths are confined to it (relative, no escaping). Empty disables
	// the endpoint — a network client must not get to pick arbitrary
	// server filesystem paths.
	SnapshotDir string
	// DefaultThreshold is used by mode "first" searches that omit a
	// threshold; typically the mode's verification threshold from
	// core.VerificationThreshold.
	DefaultThreshold float64
}

// NewHandler wraps srv in the HTTP/JSON API above.
func NewHandler(srv *Server, hc HandlerConfig) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/insert", func(w http.ResponseWriter, r *http.Request) {
		var req insertRequest
		if !decode(w, r, &req) {
			return
		}
		if len(req.Sets) == 0 {
			httpError(w, http.StatusBadRequest, errors.New("insert: empty sets"))
			return
		}
		vs := make([]bitvec.Vector, len(req.Sets))
		for i, bits := range req.Sets {
			vs[i] = bitvec.New(bits...)
		}
		ids, err := srv.InsertBatch(vs)
		if err != nil && !NotDurableOnly(err) {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		// A durability-only failure still assigned and applied every id;
		// report them (retrying would duplicate the batch).
		writeJSON(w, insertResponse{IDs: ids, NotDurable: err != nil})
	})
	mux.HandleFunc("POST /v1/delete", func(w http.ResponseWriter, r *http.Request) {
		var req deleteRequest
		if !decode(w, r, &req) {
			return
		}
		resp := deleteResponse{}
		for _, id := range req.IDs {
			if srv.Delete(id) {
				resp.Deleted++
			}
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("POST /v1/search", func(w http.ResponseWriter, r *http.Request) {
		var req searchRequest
		if !decode(w, r, &req) {
			return
		}
		m := bitvec.BraunBlanquetMeasure
		if req.Measure != "" {
			var err error
			if m, err = bitvec.ParseMeasure(req.Measure); err != nil {
				httpError(w, http.StatusBadRequest, err)
				return
			}
		}
		q := bitvec.New(req.Set...)
		var resp searchResponse
		switch req.Mode {
		case "", "best":
			match, stats, found := srv.QueryBest(q, m)
			resp.Found, resp.Stats = found, stats
			if found {
				resp.Matches = []matchJSON{{ID: match.ID, Similarity: match.Similarity}}
			}
		case "first":
			threshold := hc.DefaultThreshold
			if req.Threshold != nil {
				threshold = *req.Threshold
			}
			match, stats, found := srv.Query(q, threshold, m)
			resp.Found, resp.Stats = found, stats
			if found {
				resp.Matches = []matchJSON{{ID: match.ID, Similarity: match.Similarity}}
			}
		case "topk":
			k := req.K
			if k <= 0 {
				k = 10
			}
			matches, stats := srv.TopK(q, k, m)
			resp.Found, resp.Stats = len(matches) > 0, stats
			for _, mt := range matches {
				resp.Matches = append(resp.Matches, matchJSON{ID: mt.ID, Similarity: mt.Similarity})
			}
		default:
			httpError(w, http.StatusBadRequest, fmt.Errorf("search: unknown mode %q", req.Mode))
			return
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("POST /v1/search/batch", func(w http.ResponseWriter, r *http.Request) {
		var req batchSearchRequest
		if !decode(w, r, &req) {
			return
		}
		if len(req.Sets) == 0 {
			httpError(w, http.StatusBadRequest, errors.New("search/batch: empty sets"))
			return
		}
		m := bitvec.BraunBlanquetMeasure
		if req.Measure != "" {
			var err error
			if m, err = bitvec.ParseMeasure(req.Measure); err != nil {
				httpError(w, http.StatusBadRequest, err)
				return
			}
		}
		var thresholds []float64
		switch req.Mode {
		case "", "best":
		case "first":
			threshold := hc.DefaultThreshold
			if req.Threshold != nil {
				threshold = *req.Threshold
			}
			thresholds = make([]float64, len(req.Sets))
			for i := range thresholds {
				thresholds[i] = threshold
			}
		default:
			httpError(w, http.StatusBadRequest, fmt.Errorf("search/batch: unknown mode %q", req.Mode))
			return
		}
		qs := make([]bitvec.Vector, len(req.Sets))
		for i, bits := range req.Sets {
			qs[i] = bitvec.New(bits...)
		}
		results, stats := srv.SearchBatch(qs, thresholds, m)
		resp := batchSearchResponse{Results: make([]batchResultJSON, len(results)), Stats: stats}
		for i, res := range results {
			if res.Found {
				resp.Results[i] = batchResultJSON{Found: true, ID: res.Match.ID, Similarity: res.Match.Similarity}
			}
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, srv.Stats())
	})
	mux.HandleFunc("POST /v1/snapshot", func(w http.ResponseWriter, r *http.Request) {
		if hc.SnapshotDir == "" {
			httpError(w, http.StatusForbidden, errors.New("snapshot: disabled (no snapshot directory configured)"))
			return
		}
		var req snapshotRequest
		if !decode(w, r, &req) {
			return
		}
		if req.Path == "" {
			httpError(w, http.StatusBadRequest, errors.New("snapshot: path required"))
			return
		}
		// Confine the write to the configured directory: the path must
		// be relative and must not escape (no "..", no absolute, no
		// volume prefix).
		if !filepath.IsLocal(req.Path) {
			httpError(w, http.StatusBadRequest, fmt.Errorf("snapshot: path %q escapes the snapshot directory", req.Path))
			return
		}
		full := filepath.Join(hc.SnapshotDir, req.Path)
		if dir := filepath.Dir(full); dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				httpError(w, http.StatusInternalServerError, err)
				return
			}
		}
		f, err := os.Create(full)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		n, err := srv.WriteSnapshot(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, snapshotResponse{Bytes: n})
	})
	return mux
}

// maxRequestBytes bounds request bodies: large enough for bulk insert
// batches (tens of thousands of sets), small enough that one client
// cannot balloon the daemon's memory with a single request.
const maxRequestBytes = 64 << 20

func decode(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		// Headers are gone; nothing to do beyond noting it server-side.
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
