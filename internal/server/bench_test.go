package server

import (
	"fmt"
	"testing"

	"skewsim/internal/bitvec"
)

// BenchmarkShardFanout measures query fan-out cost across shard counts
// over a fixed corpus: the per-query price of partitioning (each shard
// recomputes F(q)) against the smaller per-shard candidate sets and the
// parallel walk.
func BenchmarkShardFanout(b *testing.B) {
	const n = 4096
	data := testData(n)
	qs := testData(256)
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cfg := testConfig(b, n, 4, shards)
			cfg.Segment.MemtableSize = 512
			srv, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(srv.Close)
			if _, err := srv.InsertBatch(data); err != nil {
				b.Fatal(err)
			}
			srv.Flush()
			srv.WaitIdle()
			m := bitvec.BraunBlanquetMeasure
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				srv.QueryBest(qs[i%len(qs)], m)
			}
		})
	}
}

// BenchmarkShardInsert measures batched online insert throughput
// through the router's per-shard fan-out.
func BenchmarkShardInsert(b *testing.B) {
	const batch = 256
	data := testData(batch)
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cfg := testConfig(b, 1<<16, 4, shards)
			cfg.Segment.MemtableSize = 4096
			srv, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(srv.Close)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := srv.InsertBatch(data); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			srv.WaitIdle()
			b.ReportMetric(float64(batch), "vecs/op")
		})
	}
}
