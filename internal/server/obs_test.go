package server

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"skewsim/internal/obs"
)

// Observability tests for the serving layer: per-endpoint counters and
// latency histograms record the right outcomes, the /metrics endpoint
// serves valid exposition with the index gauges, the stalled-shard
// fault path increments the partial-fan-out counters and emits a
// slow-query log line carrying the shard-error stage detail.

func newObsServer(t *testing.T, cfg Config, n int) (*Server, *Metrics) {
	t.Helper()
	m := NewMetrics(obs.NewRegistry())
	cfg.Metrics = m
	srv, _ := newFaultServer(t, cfg, n)
	return srv, m
}

func doJSON(t *testing.T, h http.Handler, method, url, body string) *httptest.ResponseRecorder {
	t.Helper()
	var rd *bytes.Buffer
	if body != "" {
		rd = bytes.NewBufferString(body)
	} else {
		rd = new(bytes.Buffer)
	}
	req := httptest.NewRequest(method, url, rd)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr
}

// TestObsStalledShardMetricsAndSlowLog: a fault-injected stalled shard
// through the instrumented HTTP face must (a) return 200 partial with
// the stalled shard's stage in shard_errors, (b) increment the
// partial-fan-out and abandoned-shard counters and the "partial"
// outcome for the endpoint, and (c) emit a slow-query log line naming
// the endpoint, the partial flag, and the shard errors.
func TestObsStalledShardMetricsAndSlowLog(t *testing.T) {
	cfg := testConfig(t, 400, 2, 4)
	cfg.Workers = 4
	srv, m := newObsServer(t, cfg, 400)

	var logBuf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, nil))
	h := NewHandler(srv, HandlerConfig{
		Metrics:   m,
		Logger:    logger,
		SlowQuery: time.Nanosecond, // every request is "slow": the line must fire
	})

	_, restore := stallShard(0)
	defer restore()

	rr := doJSON(t, h, "POST", "/v1/search?timeout_ms=250", `{"set": [1, 5, 9], "mode": "best"}`)
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rr.Code, rr.Body)
	}
	if rr.Header().Get("X-Request-Id") == "" {
		t.Fatal("response missing X-Request-Id")
	}
	var resp searchResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding response: %v (%s)", err, rr.Body)
	}
	if !resp.Partial {
		t.Fatalf("response not marked partial: %s", rr.Body)
	}
	if len(resp.ShardErrors) != 1 || resp.ShardErrors[0].Shard != 0 {
		t.Fatalf("shard_errors = %v, want exactly shard 0", resp.ShardErrors)
	}
	if st := resp.ShardErrors[0].Stage; st != StageQueued && st != StageRunning {
		t.Fatalf("shard error stage = %q, want %q or %q", st, StageQueued, StageRunning)
	}

	if got := m.PartialFanouts.Value(); got != 1 {
		t.Fatalf("PartialFanouts = %d, want 1", got)
	}
	if got := m.AbandonedShards.Value(); got != 1 {
		t.Fatalf("AbandonedShards = %d, want 1", got)
	}

	line := logBuf.String()
	if line == "" {
		t.Fatal("no slow-query log line emitted")
	}
	for _, want := range []string{`"msg":"slow request"`, `"endpoint":"search"`, `"partial":true`, `"shard_errors"`, `"stage"`, `"request_id"`, `"set_bits":3`} {
		if !strings.Contains(line, want) {
			t.Fatalf("slow-query log line missing %s:\n%s", want, line)
		}
	}

	// The endpoint counter recorded the partial outcome, and the scrape
	// reflects it.
	body := scrapeBody(t, h)
	if !strings.Contains(body, `skewsim_http_requests_total{endpoint="search",outcome="partial"} 1`) {
		t.Fatalf("scrape missing the partial-outcome counter:\n%s", grepFamily(body, "skewsim_http_requests_total"))
	}
	if !strings.Contains(body, "skewsim_fanout_partial_total 1") {
		t.Fatalf("scrape missing skewsim_fanout_partial_total:\n%s", grepFamily(body, "skewsim_fanout_partial_total"))
	}
}

// TestObsEndpointMetrics: ok / bad_request outcomes are attributed to
// the right endpoint, the latency histogram counts every request, and
// the /metrics endpoint serves the index gauges with live values.
func TestObsEndpointMetrics(t *testing.T) {
	cfg := testConfig(t, 400, 2, 2)
	srv, m := newObsServer(t, cfg, 400)
	h := NewHandler(srv, HandlerConfig{Metrics: m})

	if rr := doJSON(t, h, "POST", "/v1/search", `{"set": [1, 5, 9]}`); rr.Code != http.StatusOK {
		t.Fatalf("search: status %d (%s)", rr.Code, rr.Body)
	}
	if rr := doJSON(t, h, "POST", "/v1/search", `not json`); rr.Code != http.StatusBadRequest {
		t.Fatalf("bad search: status %d, want 400", rr.Code)
	}
	if rr := doJSON(t, h, "GET", "/v1/stats", ""); rr.Code != http.StatusOK {
		t.Fatalf("stats: status %d", rr.Code)
	}

	rr := doJSON(t, h, "GET", "/metrics", "")
	if rr.Code != http.StatusOK {
		t.Fatalf("/metrics: status %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("/metrics Content-Type = %q, want %q", ct, obs.ContentType)
	}
	body := rr.Body.String()
	for _, want := range []string{
		`skewsim_http_requests_total{endpoint="search",outcome="ok"} 1`,
		`skewsim_http_requests_total{endpoint="search",outcome="bad_request"} 1`,
		`skewsim_http_requests_total{endpoint="stats",outcome="ok"} 1`,
		`skewsim_http_request_seconds_count{endpoint="search"} 2`,
		"skewsim_index_live_vectors 400",
		"skewsim_admission_inflight 0",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("scrape missing %q:\n%s", want, body)
		}
	}

	// The segment layer observed the query traversal and the memtable
	// freezes from the 400 inserts.
	if m.Segment.QueryCandidates.Count() == 0 {
		t.Fatal("segment query-candidates histogram never observed")
	}
	// Freezes run on the background worker; give it a moment.
	deadline := time.Now().Add(5 * time.Second)
	for m.Segment.Freezes.Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if m.Segment.Freezes.Value() == 0 {
		t.Fatal("freeze counter never incremented (400 inserts, memtable 64)")
	}
}

// TestObsRequestIDsUnique: every response carries a distinct request id
// even without metrics or logging configured.
func TestObsRequestIDsUnique(t *testing.T) {
	srv, _ := newFaultServer(t, testConfig(t, 100, 2, 2), 100)
	h := NewHandler(srv, HandlerConfig{})
	seen := map[string]bool{}
	for i := 0; i < 5; i++ {
		rr := doJSON(t, h, "GET", "/v1/stats", "")
		id := rr.Header().Get("X-Request-Id")
		if id == "" || seen[id] {
			t.Fatalf("request %d: id %q empty or duplicated", i, id)
		}
		seen[id] = true
	}
}

// TestObsBatchEndpointOutcome: batch search lands on its own endpoint
// label and the batch-labeled query histograms.
func TestObsBatchEndpointOutcome(t *testing.T) {
	cfg := testConfig(t, 400, 2, 2)
	srv, m := newObsServer(t, cfg, 400)
	h := NewHandler(srv, HandlerConfig{Metrics: m})

	if rr := doJSON(t, h, "POST", "/v1/search/batch", `{"sets": [[1, 5], [2, 6]], "mode": "best"}`); rr.Code != http.StatusOK {
		t.Fatalf("batch: status %d (%s)", rr.Code, rr.Body)
	}
	body := scrapeBody(t, h)
	if !strings.Contains(body, `skewsim_http_requests_total{endpoint="search_batch",outcome="ok"} 1`) {
		t.Fatalf("scrape missing the batch ok counter:\n%s", grepFamily(body, "skewsim_http_requests_total"))
	}
	if !strings.Contains(body, `skewsim_query_candidates_count{query="batch"} `) {
		t.Fatalf("scrape missing batch-labeled query histogram:\n%s", grepFamily(body, "skewsim_query_candidates"))
	}
}

func scrapeBody(t *testing.T, h http.Handler) string {
	t.Helper()
	rr := doJSON(t, h, "GET", "/metrics", "")
	if rr.Code != http.StatusOK {
		t.Fatalf("/metrics: status %d", rr.Code)
	}
	return rr.Body.String()
}

// grepFamily filters a scrape to one family's lines for a readable
// failure message.
func grepFamily(body, fam string) string {
	var out []string
	for _, line := range strings.Split(body, "\n") {
		if strings.Contains(line, fam) {
			out = append(out, line)
		}
	}
	if len(out) == 0 {
		return "(family absent from scrape)"
	}
	return strings.Join(out, "\n")
}
