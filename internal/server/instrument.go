package server

import (
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"skewsim/internal/obs"
	"skewsim/internal/segment"
)

// HTTP request instrumentation: every API route is wrapped by
// instrument, which stamps a request id, captures the response status,
// records the per-endpoint outcome counter and latency histogram, and
// emits the slow-request log line. The per-endpoint children are
// pre-registered at handler construction (obs children must exist
// before the hot path), so serving a request touches only atomics.

// Outcome labels for skewsim_http_requests_total. An outcome is derived
// from the response status plus the partial marker: a 200 that merged
// only a subset of shards counts as "partial", not "ok".
const (
	outcomeOK         = "ok"
	outcomePartial    = "partial"
	outcomeBadRequest = "bad_request" // 4xx other than 429
	outcomeRejected   = "rejected"    // 429, admission queue full
	outcomeShed       = "shed"        // 503, deadline expired while queued
	outcomeTimeout    = "timeout"     // 504, deadline expired in flight
	outcomeError      = "error"       // 5xx other than 503/504
)

var outcomes = []string{outcomeOK, outcomePartial, outcomeBadRequest, outcomeRejected, outcomeShed, outcomeTimeout, outcomeError}

// endpointInstruments is one route's pre-registered children.
type endpointInstruments struct {
	byOutcome map[string]*obs.Counter
	latency   *obs.Histogram
}

func newEndpointInstruments(reg *obs.Registry, endpoint string) *endpointInstruments {
	ins := &endpointInstruments{byOutcome: make(map[string]*obs.Counter, len(outcomes))}
	for _, o := range outcomes {
		ins.byOutcome[o] = reg.Counter("skewsim_http_requests_total",
			"API requests served, by endpoint and outcome.",
			obs.L("endpoint", endpoint), obs.L("outcome", o))
	}
	ins.latency = reg.Histogram("skewsim_http_request_seconds",
		"API request latency, by endpoint.",
		obs.HistogramOpts{MinPow: 13, MaxPow: 37, Scale: 1e-9}, // ~8µs .. ~137s
		obs.L("endpoint", endpoint))
	return ins
}

func outcomeOf(status int, partial bool) string {
	switch {
	case status == http.StatusTooManyRequests:
		return outcomeRejected
	case status == http.StatusServiceUnavailable:
		return outcomeShed
	case status == http.StatusGatewayTimeout:
		return outcomeTimeout
	case status >= 500:
		return outcomeError
	case status >= 400:
		return outcomeBadRequest
	case partial:
		return outcomePartial
	}
	return outcomeOK
}

// statusWriter captures the response status plus the per-request
// observability state the handlers annotate: the partial marker and the
// slow-log attributes.
type statusWriter struct {
	http.ResponseWriter
	status  int
	partial bool
	attrs   []slog.Attr
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// markPartial tags the in-flight request as a partial (degraded)
// answer; annotate attaches attributes to its slow-request log line.
// Both are no-ops on an uninstrumented ResponseWriter.
func markPartial(w http.ResponseWriter) {
	if sw, ok := w.(*statusWriter); ok {
		sw.partial = true
	}
}

func annotate(w http.ResponseWriter, attrs ...slog.Attr) {
	if sw, ok := w.(*statusWriter); ok {
		sw.attrs = append(sw.attrs, attrs...)
	}
}

// annotateFanout attaches a search request's query shape, fan-out
// outcome, and traversal work to its slow-request log line. shape is
// the mode-specific size attribute (set_bits for a single query,
// batch_queries for a batch).
func annotateFanout(w http.ResponseWriter, f *Fanout, shape slog.Attr, mode string, stats segment.QueryStats) {
	if f == nil {
		return
	}
	if mode == "" {
		mode = "best"
	}
	attrs := []slog.Attr{
		shape,
		slog.String("mode", mode),
		slog.Int("shards", f.Shards),
		slog.Int("answered", f.Answered),
		slog.Int("candidates", stats.Candidates),
		slog.Int("distinct", stats.Distinct),
		slog.Int("filters", stats.Filters),
	}
	if len(f.Errs) > 0 {
		attrs = append(attrs, slog.Any("shard_errors", f.Errs))
	}
	annotate(w, attrs...)
}

// Request ids: a per-process random prefix plus a sequence number —
// unique across restarts without coordination, short enough to grep.
var (
	ridPrefix = func() string {
		var b [4]byte
		if _, err := rand.Read(b[:]); err != nil {
			return "00000000"
		}
		return hex.EncodeToString(b[:])
	}()
	ridSeq atomic.Int64
)

func nextRequestID() string {
	return ridPrefix + "-" + strconv.FormatInt(ridSeq.Add(1), 10)
}

// instrument wraps one route: request id, status capture, metrics,
// slow-request logging. With no Metrics and no Logger configured the
// wrapper still stamps X-Request-Id (it is cheap and helps clients
// correlate), but records nothing.
func instrument(hc HandlerConfig, endpoint string, next http.HandlerFunc) http.HandlerFunc {
	var ins *endpointInstruments
	if hc.Metrics != nil {
		ins = newEndpointInstruments(hc.Metrics.Registry(), endpoint)
	}
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		rid := nextRequestID()
		sw.Header().Set("X-Request-Id", rid)
		t0 := time.Now()
		next(sw, r)
		elapsed := time.Since(t0)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		if ins != nil {
			ins.latency.ObserveDuration(elapsed)
			ins.byOutcome[outcomeOf(sw.status, sw.partial)].Inc()
		}
		if hc.Logger != nil && hc.SlowQuery > 0 && elapsed >= hc.SlowQuery {
			attrs := append([]slog.Attr{
				slog.String("request_id", rid),
				slog.String("endpoint", endpoint),
				slog.Int("status", sw.status),
				slog.Bool("partial", sw.partial),
				slog.Duration("elapsed", elapsed),
			}, sw.attrs...)
			hc.Logger.LogAttrs(r.Context(), slog.LevelWarn, "slow request", attrs...)
		}
	}
}
