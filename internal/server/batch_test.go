package server

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"skewsim/internal/bitvec"
	"skewsim/internal/dist"
	"skewsim/internal/hashing"
)

// TestServerSearchBatchDifferential asserts the sharded batch executor
// against per-query QueryBest: found flags and best similarities must
// match exactly (the batch tie-break names the lowest id among
// equally-best candidates, so ids are compared through similarity).
func TestServerSearchBatchDifferential(t *testing.T) {
	const n = 400
	cfg := testConfig(t, n, 3, 4)
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer srv.Close()
	data := testData(n)
	if _, err := srv.InsertBatch(data); err != nil {
		t.Fatalf("InsertBatch: %v", err)
	}
	srv.WaitIdle()

	d := dist.MustProduct(dist.Zipf(64, 0.5, 1.0))
	qs := d.SampleN(hashing.NewSplitMix64(23), 40)
	qs = append(qs, data[5], bitvec.New())
	m := bitvec.BraunBlanquetMeasure

	results, stats := srv.SearchBatch(qs, nil, m)
	if len(results) != len(qs) {
		t.Fatalf("SearchBatch returned %d results, want %d", len(results), len(qs))
	}
	anyFound := false
	for k, q := range qs {
		match, _, found := srv.QueryBest(q, m)
		if results[k].Found != found {
			t.Errorf("query %d: batch found=%v, single found=%v", k, results[k].Found, found)
			continue
		}
		if !found {
			continue
		}
		anyFound = true
		if results[k].Match.Similarity != match.Similarity {
			t.Errorf("query %d: batch sim %v != single sim %v", k, results[k].Match.Similarity, match.Similarity)
		}
	}
	if !anyFound {
		t.Fatal("workload produced no matches; test is vacuous")
	}
	if stats.Reps == 0 || stats.Candidates == 0 {
		t.Errorf("batch stats look empty: %+v", stats)
	}

	// Threshold mode agrees with the single-query threshold path on
	// existence, and every reported match passes.
	const threshold = 0.4
	thresholds := make([]float64, len(qs))
	for k := range thresholds {
		thresholds[k] = threshold
	}
	tres, _ := srv.SearchBatch(qs, thresholds, m)
	for k, q := range qs {
		_, _, found := srv.Query(q, threshold, m)
		if tres[k].Found != found {
			t.Errorf("query %d: batch found=%v, single found=%v", k, tres[k].Found, found)
		}
		if tres[k].Found && tres[k].Match.Similarity < threshold {
			t.Errorf("query %d: batch match sim %v below threshold", k, tres[k].Match.Similarity)
		}
	}

	if out, _ := srv.SearchBatch(nil, nil, m); out != nil {
		t.Errorf("empty batch should return nil, got %v", out)
	}
}

// TestHTTPSearchBatch exercises /v1/search/batch end to end: best and
// first modes agree with the single-query endpoint, and bad requests
// are rejected.
func TestHTTPSearchBatch(t *testing.T) {
	cfg := testConfig(t, 256, 2, 2)
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer srv.Close()
	ts := httptest.NewServer(NewHandler(srv, HandlerConfig{DefaultThreshold: 0.5}))
	defer ts.Close()

	var ins insertResponse
	if code := postJSON(t, ts.Client(), ts.URL+"/v1/insert", insertRequest{Sets: [][]uint32{{40, 41, 42, 43}, {41, 42, 43, 44}, {50, 51, 52, 53}}}, &ins); code != 200 {
		t.Fatalf("insert status %d", code)
	}

	sets := [][]uint32{{40, 41, 42, 43}, {50, 51, 52, 53}, {60, 61}}
	var batch batchSearchResponse
	if code := postJSON(t, ts.Client(), ts.URL+"/v1/search/batch", batchSearchRequest{Sets: sets}, &batch); code != 200 {
		t.Fatalf("search/batch status %d", code)
	}
	if len(batch.Results) != len(sets) {
		t.Fatalf("batch results %+v", batch)
	}
	for i, set := range sets {
		var single searchResponse
		if code := postJSON(t, ts.Client(), ts.URL+"/v1/search", searchRequest{Set: set}, &single); code != 200 {
			t.Fatalf("search status %d", code)
		}
		if batch.Results[i].Found != single.Found {
			t.Errorf("set %d: batch found=%v, single found=%v", i, batch.Results[i].Found, single.Found)
			continue
		}
		if single.Found && batch.Results[i].Similarity != single.Matches[0].Similarity {
			t.Errorf("set %d: batch sim %v != single sim %v", i, batch.Results[i].Similarity, single.Matches[0].Similarity)
		}
	}
	if !batch.Results[0].Found || batch.Results[0].ID != ins.IDs[0] || batch.Results[0].Similarity != 1 {
		t.Errorf("exact-match query: %+v", batch.Results[0])
	}
	if batch.Stats.Reps == 0 {
		t.Errorf("batch stats empty: %+v", batch.Stats)
	}

	// First mode with a threshold no candidate of query 3 reaches.
	th := 0.9
	if code := postJSON(t, ts.Client(), ts.URL+"/v1/search/batch", batchSearchRequest{Sets: sets, Mode: "first", Threshold: &th}, &batch); code != 200 {
		t.Fatalf("search/batch first status %d", code)
	}
	if !batch.Results[0].Found || batch.Results[0].Similarity < th {
		t.Errorf("first mode exact match: %+v", batch.Results[0])
	}
	if batch.Results[2].Found {
		t.Errorf("first mode should not match set %v at threshold %v: %+v", sets[2], th, batch.Results[2])
	}

	if code := postJSON(t, ts.Client(), ts.URL+"/v1/search/batch", batchSearchRequest{Sets: sets, Mode: "topk"}, nil); code != http.StatusBadRequest {
		t.Fatalf("topk batch mode status %d, want 400", code)
	}
	if code := postJSON(t, ts.Client(), ts.URL+"/v1/search/batch", batchSearchRequest{}, nil); code != http.StatusBadRequest {
		t.Fatalf("empty batch status %d, want 400", code)
	}
}
