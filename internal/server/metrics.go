package server

import (
	"skewsim/internal/obs"
	"skewsim/internal/segment"
	"skewsim/internal/wal"
)

// Metrics bundles the whole serving stack's instruments over one
// obs.Registry: the segment and WAL layer sets (shared by every shard —
// their atomic counters aggregate naturally), the fan-out and admission
// counters observed by the Server itself, and scrape-time gauges over
// the server's size report. Build one with NewMetrics, hand it to
// Config.Metrics (and HandlerConfig.Metrics for the HTTP face), one
// Server per Metrics: the gauges registered by New close over that
// server, and a second registration on the same registry would panic.
type Metrics struct {
	reg *obs.Registry

	// Segment and WAL are passed through to every shard.
	Segment *segment.Metrics
	WAL     *wal.Metrics

	// Admission-gate rejections, by reason: queue_full is ErrOverloaded
	// (HTTP 429), shed is ErrShed — the deadline expired while queued
	// (HTTP 503).
	RejectedQueueFull *obs.Counter
	RejectedShed      *obs.Counter

	// PartialFanouts counts fan-outs that produced a degraded answer
	// (some but not all shards merged); AbandonedShards counts shard
	// goroutines left running past a fan-out's deadline (drained by the
	// reaper, stage queued or running in the ShardError detail).
	PartialFanouts  *obs.Counter
	AbandonedShards *obs.Counter
}

// NewMetrics registers the serving stack's instruments on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		reg:     reg,
		Segment: segment.NewMetrics(reg),
		WAL:     wal.NewMetrics(reg),
		RejectedQueueFull: reg.Counter("skewsim_admission_rejected_total",
			"Requests rejected by the admission gate, by reason.", obs.L("reason", "queue_full")),
		RejectedShed: reg.Counter("skewsim_admission_rejected_total",
			"Requests rejected by the admission gate, by reason.", obs.L("reason", "shed")),
		PartialFanouts: reg.Counter("skewsim_fanout_partial_total",
			"Fan-outs answered by some but not all shards (degraded results)."),
		AbandonedShards: reg.Counter("skewsim_fanout_abandoned_shards_total",
			"Shard goroutines abandoned past a fan-out deadline."),
	}
}

// Registry returns the underlying registry (the HTTP face mounts its
// exposition handler and registers the per-endpoint instruments there).
func (m *Metrics) Registry() *obs.Registry { return m.reg }

// registerServerGauges registers scrape-time gauges over s: index and
// WAL sizes read from Stats(), gate occupancy read from the admission
// channel. Called once by New/ReadSnapshot after the shards exist.
func (m *Metrics) registerServerGauges(s *Server) {
	stat := func(pick func(Stats) float64) func() float64 {
		return func() float64 { return pick(s.Stats()) }
	}
	reg := m.reg
	reg.GaugeFunc("skewsim_index_live_vectors", "Live vectors (inserted minus deleted) across shards.",
		stat(func(st Stats) float64 { return float64(st.Live) }))
	reg.GaugeFunc("skewsim_index_total_slots", "Slots ever allocated across shards (deletes keep theirs).",
		stat(func(st Stats) float64 { return float64(st.Total) }))
	reg.GaugeFunc("skewsim_index_memtable_vectors", "Vectors in the active memtables.",
		stat(func(st Stats) float64 { return float64(st.Memtable) }))
	reg.GaugeFunc("skewsim_index_flushing_vectors", "Vectors in rotated, not-yet-frozen memtables.",
		stat(func(st Stats) float64 { return float64(st.Flushing) }))
	reg.GaugeFunc("skewsim_index_segments", "Frozen CSR segments across shards.",
		stat(func(st Stats) float64 { return float64(st.Segments) }))
	reg.GaugeFunc("skewsim_index_resident_segments", "Heap-resident frozen segments across shards.",
		stat(func(st Stats) float64 { return float64(st.ResidentSegments) }))
	reg.GaugeFunc("skewsim_index_cold_segments", "Mmap-backed cold frozen segments across shards.",
		stat(func(st Stats) float64 { return float64(st.ColdSegments) }))
	reg.GaugeFunc("skewsim_index_resident_bytes", "Heap bytes held by resident frozen-segment arenas.",
		stat(func(st Stats) float64 { return float64(st.ResidentBytes) }))
	reg.GaugeFunc("skewsim_wal_bytes", "Live write-ahead log bytes across shards.",
		stat(func(st Stats) float64 { return float64(st.WALBytes) }))
	reg.GaugeFunc("skewsim_wal_files", "Live write-ahead log files across shards.",
		stat(func(st Stats) float64 {
			var files int
			for _, is := range st.PerShard {
				if is.WAL != nil {
					files += is.WAL.Files
				}
			}
			return float64(files)
		}))
	reg.GaugeFunc("skewsim_admission_inflight", "Query fan-outs holding an admission slot.",
		func() float64 { return float64(s.gate.inflight()) })
	reg.GaugeFunc("skewsim_admission_queue_depth", "Requests waiting for an admission slot.",
		func() float64 { return float64(s.gate.queueDepth()) })
}
