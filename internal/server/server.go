// Package server shards a segmented index for serving (the scale-out
// face of the paper's §4 structure, beyond the paper's scope): K
// independent segment.SegmentedIndex shards, data partitioned by id
// hash, queries fanned out over a bounded worker pool and aggregated.
// Each shard owns its own memtable, freeze queue, compaction worker,
// and (when configured) write-ahead log, so writes scale with the
// shard count and a freeze in one shard never stalls another. The HTTP
// face lives in http.go and is documented in API.md; cmd/skewsimd
// wires it to a listener.
package server

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sync"
	"sync/atomic"

	"skewsim/internal/bitvec"
	"skewsim/internal/lsf"
	"skewsim/internal/segment"
	"skewsim/internal/wal"
)

// Config sizes a Server.
type Config struct {
	// Shards is the number of SegmentedIndex partitions. Defaults to 4.
	Shards int
	// Workers bounds the fan-out pool for queries and batch inserts
	// (<= 0 selects GOMAXPROCS; always clamped to the shard count).
	Workers int
	// Segment configures every shard (same engines everywhere — a
	// query's filter set is computed per shard against identical
	// parameters, so shard placement never changes results).
	Segment segment.Config
	// WALDir, when non-empty, makes the server durable: each shard
	// journals to a write-ahead log under WALDir/shard-NNN, New recovers
	// whatever durable state those directories hold, and ReadSnapshot
	// reconciles the snapshot with each shard's log tail. The shard
	// count must not change across runs of the same WALDir (shard
	// placement is an id-hash over the shard count).
	WALDir string
	// WAL tunes the per-shard logs (fsync policy, rotation size).
	WAL wal.Options
	// StorageDir, when non-empty, gives each shard a segment-file
	// directory under StorageDir/shard-NNN: frozen segments persist as
	// mmap-able SKSEG1 files there, New reopens whatever files the
	// directories hold, and segments past the resident budget serve
	// straight from the map. Without WALDir this is persistence of
	// frozen segments only (memtable contents are lost on crash); with
	// WALDir the log replays the unfrozen tail, and the segment files
	// simply live here instead of in the log directory. The shard count
	// must not change across runs of the same StorageDir.
	StorageDir string
	// ResidentBytes, when positive, bounds the heap bytes the shards
	// collectively spend on frozen-segment arenas (split evenly across
	// shards); segments past the budget are demoted to mmap-backed cold
	// serving, newest-first resident. Requires StorageDir (or WALDir —
	// segment files are the demotion target). 0 keeps everything
	// resident.
	ResidentBytes int64
	// CompressPostings writes new segment files with delta+varint
	// compressed posting arenas (smaller files and cold footprint,
	// decode-on-read when serving cold). Readable either way.
	CompressPostings bool
	// MaxInFlight bounds concurrently executing query fan-outs (the
	// admission gate; see admission.go). 0 selects 4×GOMAXPROCS,
	// negative disables admission control entirely.
	MaxInFlight int
	// MaxQueue bounds requests waiting for admission once MaxInFlight
	// fan-outs are executing; beyond it requests fail ErrOverloaded
	// immediately. 0 rejects the moment the in-flight slots are taken,
	// negative selects 4×MaxInFlight.
	MaxQueue int
	// Metrics, when non-nil, instruments the whole stack: the segment
	// and WAL instrument sets are threaded into every shard, fan-out
	// and admission counters are observed by the server, and size
	// gauges over Stats() are registered at construction. One Server
	// per Metrics (the gauges close over the server). Nil disables
	// instrumentation.
	Metrics *Metrics
}

// Server is a sharded segmented index. Safe for concurrent use.
type Server struct {
	shards  []*segment.SegmentedIndex
	workers int
	gate    *gate    // query admission; nil admits everything
	metrics *Metrics // nil when uninstrumented

	// readOnly marks a replication follower: the HTTP insert/delete
	// endpoints refuse while set (see replica.go). In-process applies
	// stay allowed.
	readOnly atomic.Bool

	mu   sync.Mutex
	next int64 // next external id
}

// New builds the shards and starts their background workers. With
// Config.WALDir set, each shard opens (or creates) its write-ahead log
// and recovers the durable state it finds — an empty directory yields
// an empty durable server, a directory left by a crashed process
// yields the pre-crash state.
func New(cfg Config) (*Server, error) {
	k := cfg.Shards
	if k == 0 {
		k = 4
	}
	if k < 1 {
		return nil, fmt.Errorf("server: Shards %d must be >= 1", cfg.Shards)
	}
	s := &Server{workers: cfg.Workers, gate: configGate(cfg), metrics: cfg.Metrics}
	if cfg.Metrics != nil {
		cfg.Segment.Metrics = cfg.Metrics.Segment
		cfg.WAL.Metrics = cfg.Metrics.WAL
	}
	for i := 0; i < k; i++ {
		sh, err := newShard(cfg, i)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("server: shard %d: %w", i, err)
		}
		s.shards = append(s.shards, sh)
	}
	// With recovery in play the id counter resumes past everything any
	// shard has ever seen (a no-op for fresh shards).
	for _, sh := range s.shards {
		if next := sh.NextID(); next > s.next {
			s.next = next
		}
	}
	if cfg.Metrics != nil {
		cfg.Metrics.registerServerGauges(s)
	}
	return s, nil
}

// newShard builds shard i: a bare segmented index with neither WALDir
// nor StorageDir, a storage-opened one with only StorageDir, a
// log-recovered one with WALDir.
func newShard(cfg Config, i int) (*segment.SegmentedIndex, error) {
	seg := shardSegConfig(cfg, i)
	if cfg.WALDir == "" {
		if seg.StorageDir != "" {
			return segment.Open(seg)
		}
		return segment.New(seg)
	}
	log, err := wal.Open(shardWALDir(cfg.WALDir, i), cfg.WAL)
	if err != nil {
		return nil, err
	}
	sh, err := segment.Recover(seg, log)
	if err != nil {
		log.Close()
		return nil, err
	}
	return sh, nil
}

// shardSegConfig specializes the shared segment config for shard i:
// its own storage subdirectory and an even share of the resident
// budget.
func shardSegConfig(cfg Config, i int) segment.Config {
	seg := cfg.Segment
	if cfg.StorageDir != "" {
		seg.StorageDir = shardWALDir(cfg.StorageDir, i)
	}
	if cfg.ResidentBytes > 0 {
		k := cfg.Shards
		if k == 0 {
			k = 4
		}
		seg.ResidentBytes = cfg.ResidentBytes / int64(k)
		if seg.ResidentBytes == 0 {
			seg.ResidentBytes = 1 // a positive budget must stay a bound
		}
	}
	if cfg.CompressPostings {
		seg.CompressPostings = true
	}
	return seg
}

func shardWALDir(root string, i int) string {
	return filepath.Join(root, fmt.Sprintf("shard-%03d", i))
}

// Close stops every shard's background worker.
func (s *Server) Close() {
	for _, sh := range s.shards {
		sh.Close()
	}
}

// Shards returns the shard count.
func (s *Server) Shards() int { return len(s.shards) }

// shardIndex partitions by id hash. Ids are assigned by a monotone
// counter, so the split-mix finalizer spreads consecutive ids uniformly
// across shards while keeping the mapping computable from the id alone
// (no routing table to persist).
func (s *Server) shardIndex(id int64) int {
	h := uint64(id) * 0x9e3779b97f4a7c15
	h ^= h >> 32
	return int(h % uint64(len(s.shards)))
}

func (s *Server) shardOf(id int64) *segment.SegmentedIndex {
	return s.shards[s.shardIndex(id)]
}

// Insert routes v to its id-hash shard and returns the assigned id. A
// collision with an id already present in a shard (possible only after
// restoring a snapshot taken under live writes, where the saved counter
// can trail ids committed to later-dumped shards) burns the id and
// retries with a fresh one.
func (s *Server) Insert(v bitvec.Vector) (int64, error) {
	for {
		s.mu.Lock()
		id := s.next
		s.next++
		s.mu.Unlock()
		err := s.shardOf(id).InsertWithID(id, v)
		if err == nil || errors.Is(err, segment.ErrNotDurable) {
			// A durability failure still applied the insert; hand the id
			// back with the error so the caller can reference it.
			return id, err
		}
		if !errors.Is(err, segment.ErrIDTaken) {
			return 0, err
		}
	}
}

// InsertBatch assigns ids to all vectors up front, then fans the
// per-shard insert streams out over the bounded worker pool. Each
// shard's stream lands as one segment.InsertBatch — with a WAL
// attached, one group-committed append and a single fsync wait per
// shard instead of one per vector. Returns the ids in input order.
func (s *Server) InsertBatch(vs []bitvec.Vector) ([]int64, error) {
	if len(vs) == 0 {
		return nil, nil
	}
	ids := make([]int64, len(vs))
	s.mu.Lock()
	for i := range vs {
		ids[i] = s.next
		s.next++
	}
	s.mu.Unlock()
	k := len(s.shards)
	perShard := make([][]int, k) // indexes into vs, in id order
	for i, id := range ids {
		sh := s.shardIndex(id)
		perShard[sh] = append(perShard[sh], i)
	}
	errs := make([]error, k)
	lsf.ForEachParallel(k, s.workers, func(sh int) {
		idxs := perShard[sh]
		if len(idxs) == 0 {
			return
		}
		bids := make([]int64, len(idxs))
		bvs := make([]bitvec.Vector, len(idxs))
		for j, i := range idxs {
			bids[j], bvs[j] = ids[i], vs[i]
		}
		errs[sh] = s.shards[sh].InsertBatch(bids, bvs)
	})
	return ids, errors.Join(errs...)
}

// NotDurableOnly reports whether err consists solely of
// segment.ErrNotDurable wraps: every affected write WAS applied and its
// record reached the kernel — only media durability is unconfirmed.
// Callers use it to keep the assigned ids (retrying would duplicate the
// vectors) instead of failing the whole operation.
func NotDurableOnly(err error) bool {
	if err == nil {
		return false
	}
	if u, ok := err.(interface{ Unwrap() []error }); ok {
		for _, e := range u.Unwrap() {
			if !NotDurableOnly(e) {
				return false
			}
		}
		return true
	}
	return errors.Is(err, segment.ErrNotDurable)
}

// Delete tombstones id in its shard.
func (s *Server) Delete(id int64) bool {
	if id < 0 {
		return false
	}
	return s.shardOf(id).Delete(id)
}

// Query fans the threshold query out and returns a match with
// similarity >= threshold if any shard finds one (the lowest-id match
// among shard winners, so results are deterministic under parallelism).
// The query is packed once into a pooled verification session shared by
// every shard goroutine (Session verification is read-only, so the
// concurrent fan-out is safe); steady-state serving allocates only the
// fan-out bookkeeping.
func (s *Server) Query(q bitvec.Vector, threshold float64, m bitvec.Measure) (segment.Match, segment.QueryStats, bool) {
	match, stats, found, _ := s.QueryContext(context.Background(), q, threshold, m)
	return match, stats, found
}

// QueryBest fans out and returns the globally most similar candidate
// (ties to the lowest id). Like Query, one packed session serves every
// shard.
func (s *Server) QueryBest(q bitvec.Vector, m bitvec.Measure) (segment.Match, segment.QueryStats, bool) {
	match, stats, found, _ := s.QueryBestContext(context.Background(), q, m)
	return match, stats, found
}

// SearchBatch answers a batch of queries through the amortizing batch
// executor: each query is packed into a verify session exactly once,
// the sessions are fanned out to every shard together (sessions are
// read-only during verification, so the concurrent fan-out is safe),
// and each shard runs one segment.SearchBatch pass — one read lock,
// one filter generation per repetition, each frozen segment visited
// once per batch in posting-array order. thresholds selects the
// semantics exactly as in segment.SearchBatch: nil means best-match
// per query, otherwise thresholds[k] is query k's minimum similarity.
// Per query, shard winners aggregate by similarity desc, id asc — the
// same deterministic rule QueryBest uses.
func (s *Server) SearchBatch(qs []bitvec.Vector, thresholds []float64, m bitvec.Measure) ([]segment.BatchResult, segment.QueryStats) {
	out, stats, _ := s.SearchBatchContext(context.Background(), qs, thresholds, m)
	return out, stats
}

// TopK fans out, merges the shard top-k lists, and returns the global
// top k (similarity desc, id asc — same order as segment.TopK).
func (s *Server) TopK(q bitvec.Vector, k int, m bitvec.Measure) ([]segment.Match, segment.QueryStats) {
	all, stats, _ := s.TopKContext(context.Background(), q, k, m)
	return all, stats
}

// Stats aggregates shard size reports. The WAL* fields sum the
// per-shard write-ahead logs and stay zero for a non-durable server
// (per-shard detail, including each log's last checkpoint fence, is in
// PerShard[i].WAL).
type Stats struct {
	Shards     int
	Live       int
	Total      int
	Memtable   int
	Flushing   int
	Segments   int
	Freezes    int64
	Compacts   int64
	WALRecords int64
	WALBytes   int64
	// Storage tiering across shards: heap-resident vs mmap-backed cold
	// frozen segments and the heap bytes the resident ones hold.
	ResidentSegments int
	ColdSegments     int
	ResidentBytes    int64
	PerShard         []segment.IndexStats
}

// Stats reports aggregated sizes plus the per-shard breakdown.
func (s *Server) Stats() Stats {
	st := Stats{Shards: len(s.shards)}
	for _, sh := range s.shards {
		is := sh.Stats()
		st.Live += is.Live
		st.Total += is.Total
		st.Memtable += is.Memtable
		st.Flushing += is.Flushing
		st.Segments += is.Segments
		st.Freezes += is.Freezes
		st.Compacts += is.Compactions
		st.ResidentSegments += is.ResidentSegments
		st.ColdSegments += is.ColdSegments
		st.ResidentBytes += is.ResidentBytes
		if is.WAL != nil {
			st.WALRecords += is.WAL.Records
			st.WALBytes += is.WAL.Bytes
		}
		st.PerShard = append(st.PerShard, is)
	}
	return st
}

// Flush forces every shard through its freeze queue.
func (s *Server) Flush() {
	lsf.ForEachParallel(len(s.shards), s.workers, func(i int) {
		s.shards[i].Flush()
	})
}

// WaitIdle blocks until no shard has pending background work.
func (s *Server) WaitIdle() {
	for _, sh := range s.shards {
		sh.WaitIdle()
	}
}

// Snapshot format: a header plus each shard's segment snapshot, back to
// back (segment snapshots are self-delimiting).
//
//	magic  [6]byte "SKSRV1"
//	shards uint32
//	next   int64
//	shards × segment snapshot
var srvMagic = [6]byte{'S', 'K', 'S', 'R', 'V', '1'}

// WriteSnapshot serializes all shards. Shards are snapshotted in
// sequence, each under its own read lock; for a cut that is globally
// consistent with respect to writes, pause writers first.
func (s *Server) WriteSnapshot(w io.Writer) (int64, error) {
	var n int64
	s.mu.Lock()
	next := s.next
	s.mu.Unlock()
	hdr := make([]byte, 0, 18)
	hdr = append(hdr, srvMagic[:]...)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(s.shards)))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(next))
	if _, err := w.Write(hdr); err != nil {
		return n, err
	}
	n += int64(len(hdr))
	for i, sh := range s.shards {
		m, err := sh.WriteSnapshot(w)
		n += m
		if err != nil {
			return n, fmt.Errorf("server: shard %d: %w", i, err)
		}
	}
	return n, nil
}

// ReadSnapshot reconstructs a Server from a WriteSnapshot stream. cfg
// must carry the same shard count and segment Params as the writer.
// With cfg.WALDir set, each restored shard is additionally reconciled
// with its log tail: records for ids the snapshot already contains are
// skipped, newer inserts and all surviving deletes re-apply, and the
// shard journals its future writes to the same log. Snapshot-restored
// segments have no checkpoint files, so the log is authoritative for
// anything the snapshot predates.
func ReadSnapshot(r io.Reader, cfg Config) (*Server, error) {
	br := bufio.NewReader(r)
	var magic [6]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("server: reading magic: %w", err)
	}
	if magic != srvMagic {
		return nil, fmt.Errorf("server: bad magic %q", magic)
	}
	var shards uint32
	var next uint64
	if err := binary.Read(br, binary.LittleEndian, &shards); err != nil {
		return nil, fmt.Errorf("server: reading header: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, &next); err != nil {
		return nil, fmt.Errorf("server: reading header: %w", err)
	}
	k := cfg.Shards
	if k == 0 {
		k = 4
	}
	if int(shards) != k {
		return nil, fmt.Errorf("server: snapshot has %d shards, config %d", shards, k)
	}
	s := &Server{workers: cfg.Workers, gate: configGate(cfg), metrics: cfg.Metrics, next: int64(next)}
	if cfg.Metrics != nil {
		cfg.Segment.Metrics = cfg.Metrics.Segment
		cfg.WAL.Metrics = cfg.Metrics.WAL
	}
	ok := false
	defer func() {
		if !ok {
			s.Close()
		}
	}()
	for i := 0; i < k; i++ {
		sh, err := segment.ReadSnapshot(br, shardSegConfig(cfg, i))
		if err != nil {
			return nil, fmt.Errorf("server: shard %d: %w", i, err)
		}
		s.shards = append(s.shards, sh)
		if cfg.WALDir != "" {
			log, err := wal.Open(shardWALDir(cfg.WALDir, i), cfg.WAL)
			if err != nil {
				return nil, fmt.Errorf("server: shard %d: %w", i, err)
			}
			if err := sh.RecoverWAL(log); err != nil {
				log.Close()
				return nil, fmt.Errorf("server: shard %d: %w", i, err)
			}
		}
	}
	// The header counter was captured before the shards were dumped; a
	// snapshot taken under live writes can therefore contain ids at or
	// above it. Re-seed from the shard high-water marks so fresh inserts
	// never collide.
	for _, sh := range s.shards {
		if next := sh.NextID(); next > s.next {
			s.next = next
		}
	}
	if cfg.Metrics != nil {
		cfg.Metrics.registerServerGauges(s)
	}
	ok = true
	return s, nil
}
