// Package hashing provides the seeded randomness substrate the
// locality-sensitive filtering engine's analysis assumes (the paper's
// Lemma 5: pairwise-independent path hashing):
//
//   - SplitMix64, a tiny, high-quality deterministic PRNG used to derive
//     per-level hash-function seeds so that an entire index is reproducible
//     from a single uint64 seed;
//   - PathHasher, a family of per-level hash functions h_j mapping element
//     paths (i1, ..., ij) ∈ [d]^j to [0,1), drawn from a pairwise
//     independent family as required by the second-moment argument of
//     Lemma 5 of the paper.
//
// The pairwise-independent family is the classic degree-1 polynomial
// (a·x + b) mod p over the Mersenne prime p = 2^61 − 1, applied to a
// 61-bit fingerprint of the path. The fingerprint itself is a polynomial
// rolling hash over the path's elements in a random base, which keeps
// distinct short paths distinct with probability 1 − O(k/p); combined with
// the outer pairwise layer this is the standard practical instantiation of
// "pick h_j : [d]^j → [0,1] pairwise independently".
package hashing

import "math/bits"

// MersennePrime61 is 2^61 − 1, the modulus of the hash family.
const MersennePrime61 = (uint64(1) << 61) - 1

// SplitMix64 is a deterministic 64-bit PRNG with a single word of state.
// It is used only for seed derivation and parameter sampling, never in any
// place where the pairwise-independence argument matters.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a generator seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next pseudo-random 64-bit value.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NextUnit returns a float64 uniform in [0, 1).
func (s *SplitMix64) NextUnit() float64 {
	return float64(s.Next()>>11) / float64(uint64(1)<<53)
}

// NextBelow returns a value uniform in [0, n). It panics if n == 0.
func (s *SplitMix64) NextBelow(n uint64) uint64 {
	if n == 0 {
		panic("hashing: NextBelow(0)")
	}
	// Rejection sampling for unbiased output.
	limit := ^uint64(0) - (^uint64(0) % n)
	for {
		v := s.Next()
		if v < limit {
			return v % n
		}
	}
}

// mulmod61 computes (a * b) mod (2^61 − 1) without overflow using a
// 128-bit intermediate product.
func mulmod61(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	// Split the 128-bit product into 61-bit chunks:
	// product = hi·2^64 + lo = (hi·8 + lo>>61)·2^61 + (lo & M).
	// Since 2^61 ≡ 1 (mod M), the value is congruent to the chunk sum.
	sum := (lo & MersennePrime61) + ((lo >> 61) | (hi << 3))
	sum = (sum & MersennePrime61) + (sum >> 61)
	if sum >= MersennePrime61 {
		sum -= MersennePrime61
	}
	return sum
}

// addmod61 computes (a + b) mod (2^61 − 1) for a, b < 2^61 − 1.
func addmod61(a, b uint64) uint64 {
	s := a + b
	if s >= MersennePrime61 {
		s -= MersennePrime61
	}
	return s
}

// levelHash is one h_j: a rolling-base fingerprint followed by a pairwise
// independent map to [0, 2^61 − 1).
type levelHash struct {
	base uint64 // rolling hash base, uniform in [2, p)
	a    uint64 // pairwise layer multiplier, uniform in [1, p)
	b    uint64 // pairwise layer offset, uniform in [0, p)
}

func (h levelHash) hash(path []uint32) uint64 {
	fp := uint64(0)
	for _, e := range path {
		// fp = fp·base + (e+1), all mod 2^61−1. The +1 keeps element 0
		// from acting as a prefix no-op.
		fp = addmod61(mulmod61(fp, h.base), uint64(e)+1)
	}
	return addmod61(mulmod61(h.a, fp), h.b)
}

// PathHasher holds one hash function per path length 1..k. It is safe for
// concurrent use after construction.
type PathHasher struct {
	levels []levelHash
}

// NewPathHasher draws k independent level hash functions from the seed.
// Level j (1-based) hashes paths of length j.
func NewPathHasher(seed uint64, k int) *PathHasher {
	if k < 1 {
		panic("hashing: NewPathHasher needs k >= 1")
	}
	rng := NewSplitMix64(seed)
	levels := make([]levelHash, k)
	for i := range levels {
		levels[i] = levelHash{
			base: 2 + rng.NextBelow(MersennePrime61-2),
			a:    1 + rng.NextBelow(MersennePrime61-1),
			b:    rng.NextBelow(MersennePrime61),
		}
	}
	return &PathHasher{levels: levels}
}

// Levels returns the number of levels k the hasher supports.
func (p *PathHasher) Levels() int { return len(p.levels) }

// Unit returns h_j(path) ∈ [0, 1) for a path of length len(path) = j.
// It panics if the path is empty or longer than the configured k; the
// engine sizes k from its depth cap so this indicates a logic error.
func (p *PathHasher) Unit(path []uint32) float64 {
	j := len(path)
	if j == 0 || j > len(p.levels) {
		panic("hashing: path length out of range")
	}
	return float64(p.levels[j-1].hash(path)) / float64(MersennePrime61)
}

// UnitExt returns h_j(v ∘ i) where the extension element i is passed
// separately, avoiding an allocation for the concatenated path.
func (p *PathHasher) UnitExt(v []uint32, i uint32) float64 {
	return p.Extend(v).Unit(i)
}

// Extender caches the rolling fingerprint of one path at the level its
// extensions hash at (len(v)+1), so hashing each candidate extension
// costs O(1) modular work instead of re-fingerprinting the whole path.
// This is the shape of the filter engine's inner loop: one path, ~|x|
// candidate extensions. Extend(v).Unit(i) is bit-identical to
// UnitExt(v, i).
type Extender struct {
	h  levelHash
	fp uint64
}

// Extend fingerprints v for extension hashing. It panics if extended
// paths would exceed the configured k, like UnitExt.
func (p *PathHasher) Extend(v []uint32) Extender {
	j := len(v) + 1
	if j > len(p.levels) {
		panic("hashing: path length out of range")
	}
	h := p.levels[j-1]
	fp := uint64(0)
	for _, e := range v {
		fp = addmod61(mulmod61(fp, h.base), uint64(e)+1)
	}
	return Extender{h: h, fp: fp}
}

// Unit returns h_j(v ∘ i) for the path v the extender was built from.
func (e Extender) Unit(i uint32) float64 {
	fp := addmod61(mulmod61(e.fp, e.h.base), uint64(i)+1)
	return float64(addmod61(mulmod61(e.h.a, fp), e.h.b)) / float64(MersennePrime61)
}

// Expanded extension hashing. The extension hash distributes over the
// modulus:
//
//	h_j(v ∘ i) = (a·(fp·base + (i+1)) + b) mod p
//	           = ((a·(fp·base) + b) mod p  +  (a·(i+1)) mod p) mod p
//	           =  Bias(v)                  ⊕  ExtTerm(j, i)
//
// All operations are exact on canonical residues, so ExtHash(Bias,
// ExtTerm) equals the nested computation inside Unit bit for bit. The
// filter engine exploits this: Bias is hoisted per frontier node,
// ExtTerm per (depth, element), leaving one modular addition per
// candidate extension — and the threshold comparison Unit(i) >= s
// moves to the integer side through UnitCut, eliminating the float
// divide entirely.

// Bias returns (a·(fp·base) + b) mod p: the per-path constant of the
// expanded extension hash.
func (e Extender) Bias() uint64 {
	return addmod61(mulmod61(e.h.a, mulmod61(e.fp, e.h.base)), e.h.b)
}

// ExtTerm returns (a_j·(i+1)) mod p, the per-element term of the
// expanded extension hash at level j (the length of the extended path,
// 1-based). It panics if j is out of range, like Unit.
func (p *PathHasher) ExtTerm(j int, i uint32) uint64 {
	if j < 1 || j > len(p.levels) {
		panic("hashing: path length out of range")
	}
	return mulmod61(p.levels[j-1].a, uint64(i)+1)
}

// ExtHash combines a path bias with an element term into the canonical
// extension hash value: Extend(v).Unit(i) == float64(ExtHash(bias,
// term)) / float64(MersennePrime61) exactly.
func ExtHash(bias, term uint64) uint64 { return addmod61(bias, term) }

// UnitCut translates a unit-interval threshold s into its exact integer
// cutoff: the smallest canonical hash value h with
// float64(h)/float64(MersennePrime61) >= s, so that
//
//	Unit >= s  ⟺  ExtHash(bias, term) >= UnitCut(s)
//
// for every hash value. The equivalence is exact, not approximate:
// float64(MersennePrime61) rounds to 2^61, so the division only shifts
// the exponent and float64(h)/float64(p) >= s holds iff float64(h) >=
// s·2^61, with both scalings exact; the conversion float64(h) is
// monotone in h, so a short binary search around s·2^61 (whose rounding
// granularity is at most 256 below 2^61) pins the boundary without a
// single approximate step. Out-of-range thresholds keep their
// comparison semantics: s <= 0 maps to 0 (every hash is >= it), s >= 1
// and NaN map to MersennePrime61 (no canonical hash reaches it — for
// NaN, every float comparison against s is false, and no h passes
// h >= p either).
func UnitCut(s float64) uint64 {
	if !(s > 0) { // s <= 0 or NaN; NaN must map high, not low
		if s != s {
			return MersennePrime61
		}
		return 0
	}
	if s >= 1 {
		return MersennePrime61
	}
	const mf = float64(MersennePrime61) // rounds to 2^61 exactly
	t := s * mf                         // exact: power-of-two scaling
	// Smallest h with float64(h) >= t. |float64(h) - h| <= 128 for
	// h < 2^61, so the boundary lies strictly inside a ±1024 window
	// around t; float64() is monotone, so binary search it.
	lo, hi := uint64(0), uint64(MersennePrime61)
	if t > 1024 {
		lo = uint64(t) - 1024
	}
	if c := uint64(t) + 1024; c < hi {
		hi = c
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if float64(mid) >= t {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
